let () =
  Alcotest.run "eds-rewriter"
    [
      ("value", Test_value.suite);
      ("collection", Test_collection.suite);
      ("vtype", Test_vtype.suite);
      ("adt", Test_adt.suite);
      ("term", Test_term.suite);
      ("lera", Test_lera.suite);
      ("engine", Test_engine.suite);
      ("physical", Test_physical.suite);
      ("esql", Test_esql.suite);
      ("rule-parser", Test_rule_parser.suite);
      ("rule-analysis", Test_rule_analysis.suite);
      ("rulelab", Test_rulelab.suite);
      ("rewriter", Test_rewriter.suite);
      ("engine-fast", Test_engine_fast.suite);
      ("magic", Test_magic.suite);
      ("session", Test_session.suite);
      ("repl", Test_repl.suite);
      ("soundness", Test_soundness.suite);
      ("cost", Test_cost.suite);
      ("storage", Test_storage.suite);
      ("wal", Test_wal.suite);
      ("materializer", Test_materializer.suite);
      ("robustness", Test_robustness.suite);
      ("conformance", Test_conformance.suite);
      ("obs", Test_obs.suite);
      ("metrics", Test_metrics.suite);
      ("analyze", Test_analyze.suite);
      ("server", Test_server.suite);
    ]
