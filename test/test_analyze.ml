(* EXPLAIN ANALYZE tests: the per-operator report of
   {!Eds_engine.Eval.run_analyzed} must account for every unit of work —
   summing any counter over the report tree reproduces the {!Eval.stats}
   delta of the same run exactly — and the session rendering must carry
   the planning and execution phases. *)

module Session = Eds.Session
module Loadtest = Eds_server.Loadtest
module Eval = Eds_engine.Eval
module Relation = Eds_engine.Relation

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let fig8_session () =
  let s = Session.create () in
  Loadtest.apply_setup s;
  s

(* Work queries spanning the paper shapes: selection-pushdown joins, a
   3-way chain join, and the recursive reachability view. *)
let work_queries =
  [
    "SELECT Title FROM FILM, APPEARS_IN WHERE FILM.Numf = APPEARS_IN.Numf \
     AND APPEARS_IN.Actor = 'A3'";
    "SELECT R.A, T.B FROM R, S, T WHERE R.J = S.J AND S.K = T.K";
    "SELECT Dst FROM REACH WHERE Src = 2";
  ]

let report_total get report =
  Eval.fold_report (fun acc n -> acc + get n) 0 report

let check_query_accounting physical domains q =
  let s = fig8_session () in
  Session.set_physical s physical;
  Session.set_domains s domains;
  let plan = Session.explain s q in
  let stats = Eval.fresh_stats () in
  let rel, report =
    Eval.run_analyzed ~physical ~domains ~stats (Session.snapshot_db s)
      plan.Session.rewritten
  in
  let label name = Fmt.str "%s %s: %s" (Eval.Physical.to_string physical) name q in
  Alcotest.(check int) (label "combinations") stats.Eval.combinations
    (report_total (fun n -> n.Eval.combinations) report);
  Alcotest.(check int) (label "tuples_read") stats.Eval.tuples_read
    (report_total (fun n -> n.Eval.tuples_read) report);
  Alcotest.(check int) (label "probes") stats.Eval.probes
    (report_total (fun n -> n.Eval.probes) report);
  Alcotest.(check int) (label "builds") stats.Eval.builds
    (report_total (fun n -> n.Eval.builds) report);
  Alcotest.(check int) (label "root rows") (Relation.cardinality rel)
    report.Eval.rows;
  (* the analyzed run returns the same relation as the plain one *)
  Alcotest.(check bool) (label "result identical") true
    (Relation.equal rel
       (Eval.run ~physical ~domains (Session.snapshot_db s)
          plan.Session.rewritten))

let test_report_sums_indexed () =
  List.iter (check_query_accounting Eval.Physical.Indexed 1) work_queries

let test_report_sums_naive () =
  List.iter (check_query_accounting Eval.Physical.Naive 1) work_queries

let test_report_sums_parallel () =
  List.iter (check_query_accounting Eval.Physical.Parallel 2) work_queries

let test_report_shape () =
  let s = fig8_session () in
  let plan =
    Session.explain s
      "SELECT Title FROM FILM, APPEARS_IN WHERE FILM.Numf = APPEARS_IN.Numf"
  in
  let _, report =
    Eval.run_analyzed (Session.snapshot_db s) plan.Session.rewritten
  in
  let ops = Eval.fold_report (fun acc n -> n.Eval.op :: acc) [] report in
  Alcotest.(check bool) "FILM scan reported" true
    (List.exists (fun op -> contains ~sub:"FILM" op) ops);
  Alcotest.(check bool) "APPEARS_IN scan reported" true
    (List.exists (fun op -> contains ~sub:"APPEARS_IN" op) ops);
  let rendered = Fmt.str "%a" Eval.pp_report report in
  Alcotest.(check bool) "rendering mentions rows" true
    (contains ~sub:"rows=" rendered)

let expect_report s stmt =
  match Session.exec_string s stmt with
  | Session.Report text -> text
  | _ -> Alcotest.failf "%s: expected a Report result" stmt

let test_session_explain () =
  let s = fig8_session () in
  let text =
    expect_report s
      "EXPLAIN SELECT Title FROM FILM, APPEARS_IN WHERE FILM.Numf = \
       APPEARS_IN.Numf"
  in
  Alcotest.(check bool) "plain EXPLAIN shows translated plan" true
    (contains ~sub:"translated" text);
  Alcotest.(check bool) "plain EXPLAIN shows rewritten plan" true
    (contains ~sub:"rewritten" text)

let test_session_explain_analyze () =
  let s = fig8_session () in
  let text =
    expect_report s
      "EXPLAIN ANALYZE SELECT Title FROM FILM, APPEARS_IN WHERE FILM.Numf = \
       APPEARS_IN.Numf AND APPEARS_IN.Actor = 'A3'"
  in
  Alcotest.(check bool) "header" true (contains ~sub:"EXPLAIN ANALYZE" text);
  Alcotest.(check bool) "planning phase" true (contains ~sub:"planning" text);
  Alcotest.(check bool) "execution phase" true (contains ~sub:"execution" text);
  Alcotest.(check bool) "per-operator rows" true (contains ~sub:"rows=" text);
  (* analyze executes the query for real: eval stats advance *)
  let before = (Session.eval_stats s).Eval.tuples_read in
  ignore (expect_report s "EXPLAIN ANALYZE SELECT Title FROM FILM WHERE Numf = 1");
  Alcotest.(check bool) "analyze recorded work" true
    ((Session.eval_stats s).Eval.tuples_read > before)

let test_explain_rejects_non_select () =
  let s = fig8_session () in
  (match Session.exec_string s "EXPLAIN INSERT INTO FILM VALUES (99, 'x')" with
  | exception Session.Session_error msg ->
      Alcotest.(check bool) "error names the restriction" true
        (contains ~sub:"SELECT" msg)
  | _ -> Alcotest.fail "EXPLAIN of an INSERT should raise Session_error");
  match Session.exec_string s "EXPLAIN ANALYZE DELETE FROM FILM WHERE Numf = 1" with
  | exception Session.Session_error _ -> ()
  | _ -> Alcotest.fail "EXPLAIN ANALYZE of a DELETE should raise Session_error"

let test_recursive_report () =
  let s = fig8_session () in
  let plan = Session.explain s "SELECT Dst FROM REACH WHERE Src = 2" in
  let stats = Eval.fresh_stats () in
  let _, report =
    Eval.run_analyzed ~stats (Session.snapshot_db s) plan.Session.rewritten
  in
  (* the fixpoint folds per-iteration arm re-evaluations into loop
     counts instead of duplicating subtrees *)
  let max_loops = Eval.fold_report (fun acc n -> max acc n.Eval.loops) 0 report in
  Alcotest.(check bool) "fixpoint iterations folded into loops" true
    (max_loops > 1);
  Alcotest.(check int) "recursive accounting exact" stats.Eval.combinations
    (report_total (fun n -> n.Eval.combinations) report)

let suite =
  [
    Alcotest.test_case "report sums = stats (indexed)" `Quick
      test_report_sums_indexed;
    Alcotest.test_case "report sums = stats (naive)" `Quick test_report_sums_naive;
    Alcotest.test_case "report sums = stats (parallel)" `Quick
      test_report_sums_parallel;
    Alcotest.test_case "report tree shape" `Quick test_report_shape;
    Alcotest.test_case "EXPLAIN renders plans" `Quick test_session_explain;
    Alcotest.test_case "EXPLAIN ANALYZE renders phases" `Quick
      test_session_explain_analyze;
    Alcotest.test_case "EXPLAIN rejects non-SELECT" `Quick
      test_explain_rejects_non_select;
    Alcotest.test_case "recursive report accounting" `Quick test_recursive_report;
  ]
