(* Integration tests for the rewrite engine and the default rule library:
   the paper's Figures 7-12 transformations, the §4.2 control strategy,
   and end-to-end semantics preservation. *)

module Value = Eds_value.Value
module Term = Eds_term.Term
module Lera = Eds_lera.Lera
module Lera_term = Eds_lera.Lera_term
module Schema = Eds_lera.Schema
module Relation = Eds_engine.Relation
module Database = Eds_engine.Database
module Eval = Eds_engine.Eval
module Parser = Eds_esql.Parser
module Catalog = Eds_esql.Catalog
module Translate = Eds_esql.Translate
module Rule = Eds_rewriter.Rule
module Rule_parser = Eds_rewriter.Rule_parser
module Engine = Eds_rewriter.Engine
module Methods = Eds_rewriter.Methods
module Magic = Eds_rewriter.Magic
module Rulesets = Eds_rewriter.Rulesets
module Optimizer = Eds_rewriter.Optimizer

let term = Alcotest.testable Term.pp Term.equal
let rel = Alcotest.testable Lera.pp Lera.equal

(* Building a catalog whose tables match the fixture database requires the
   original DDL; reuse the test_esql declarations. *)
let figure2_ddl =
  {|
  TYPE Category ENUMERATION OF ('Comedy', 'Adventure', 'Science Fiction', 'Western') ;
  TYPE Point TUPLE (ABS : REAL, ORD : REAL) ;
  TYPE Person OBJECT TUPLE (Name : CHAR, Firstname : SET OF CHAR, Caricature : LIST OF Point) ;
  TYPE Actor SUBTYPE OF Person OBJECT TUPLE (Salary : NUMERIC) ;
  TYPE Text LIST OF CHAR ;
  TYPE SetCategory SET OF Category ;
  TYPE Pairs LIST OF TUPLE (Pros : INT, Cons : INT) ;
  TABLE FILM (Numf : NUMERIC, Title : Text, Categories : SetCategory) ;
  TABLE APPEARS_IN (Numf : NUMERIC, Refactor : Actor) ;
  TABLE DOMINATE (Numf : NUMERIC, Refactor1 : Actor, Refactor2 : Actor, Score : Pairs) ;
  CREATE VIEW FilmActors (Title, Categories, Actors) AS
    SELECT Title, Categories, MakeSet(Refactor)
    FROM FILM, APPEARS_IN
    WHERE FILM.Numf = APPEARS_IN.Numf
    GROUP BY Title, Categories ;
  CREATE VIEW BETTER_THAN (Refactor1, Refactor2) AS
    ( SELECT Refactor1, Refactor2 FROM DOMINATE
      UNION
      SELECT B1.Refactor1, B2.Refactor2
      FROM BETTER_THAN B1, BETTER_THAN B2
      WHERE B1.Refactor2 = B2.Refactor1 ) ;
|}

let film_setup () =
  let db, actors = Fixtures.film_db () in
  let cat = Catalog.create () in
  List.iter (Catalog.apply_ddl cat) (Parser.parse_program figure2_ddl);
  (db, cat, actors)

let ctx_of cat = Optimizer.make_ctx (Catalog.schema_env cat)

let ctx_of_db db = Optimizer.make_ctx (Database.schema_env db)

let translate cat q = Translate.select cat (Parser.parse_select q)

(* -- Figure 7: merging --------------------------------------------------- *)

let merging_program =
  { Rule.blocks = [ Rule.block "merging" (Rulesets.merging ()) ]; rounds = 1 }

let test_search_merge_flattens_composed_query () =
  let db, cat, _ = film_setup () in
  (* a query over a non-recursive view of a plain search: two stacked
     searches that must merge into one *)
  Catalog.apply_ddl cat
    (Parser.parse_stmt
       {|CREATE VIEW Adventures (Numf, Title) AS
         SELECT Numf, Title FROM FILM WHERE MEMBER('Adventure', Categories)|});
  let q = translate cat "SELECT Title FROM Adventures WHERE Numf = 1" in
  Alcotest.(check int) "two operators before" 2 (Lera.operator_count q);
  let q' = Optimizer.rewrite ~program:merging_program (ctx_of cat) q in
  Alcotest.(check int) "one operator after" 1 (Lera.operator_count q');
  (match q' with
  | Lera.Search ([ Lera.Base "FILM" ], qual, [ proj ]) ->
    Alcotest.(check int) "qualifications merged by AND" 2
      (List.length (Lera.conjuncts qual));
    (match proj with
    | Lera.Col (1, 2) -> ()
    | _ -> Alcotest.failf "projection rewired: %a" Lera.pp_scalar proj)
  | _ -> Alcotest.failf "unexpected shape %a" Lera.pp q');
  (* semantics preserved *)
  let before = Eval.run db q and after = Eval.run db q' in
  Alcotest.(check bool) "same result" true (Relation.equal before after)

let test_merge_renumbers_through_projection () =
  let db, cat, _ = film_setup () in
  (* view that permutes and computes columns; outer query references them *)
  Catalog.apply_ddl cat
    (Parser.parse_stmt
       {|CREATE VIEW Salaries (Who, Pay) AS
         SELECT Name(Refactor), Salary(Refactor) FROM APPEARS_IN|});
  let q = translate cat "SELECT Who FROM Salaries WHERE Pay > 10000" in
  let q' = Optimizer.rewrite ~program:merging_program (ctx_of cat) q in
  Alcotest.(check int) "merged to one search" 1 (Lera.operator_count q');
  let before = Eval.run db q and after = Eval.run db q' in
  Alcotest.(check bool) "same result" true (Relation.equal before after);
  Alcotest.(check int) "three well-paid appearances" 3 (Relation.cardinality after)

let test_union_merge () =
  let t =
    Rule_parser.parse_term
      "union(set(rel('A'), union(set(rel('B'), rel('C')))))"
  in
  let flat = Rule_parser.parse_term "union(set(rel('A'), rel('B'), rel('C')))" in
  let cat = Catalog.create () in
  (* the Figure-7 rule flattens on its own when applied directly… *)
  (match Engine.apply_rule_at (ctx_of cat) Engine.top_env (Rulesets.find "union_merge") t with
  | Some t' -> Alcotest.check term "rule flattens" flat t'
  | None -> Alcotest.fail "union_merge did not apply");
  (* …and the pipeline reaches the same canonical form (its normalization
     also flattens nested unions structurally) *)
  let t' = Optimizer.rewrite_term ~program:merging_program (ctx_of cat) t in
  Alcotest.check term "pipeline flattens" flat t'

let test_filter_join_canonicalize () =
  let _, cat, _ = film_setup () in
  let q =
    Lera.Project
      ( Lera.Filter
          ( Lera.Join
              ( Lera.Base "FILM",
                Lera.Base "APPEARS_IN",
                Lera.eq (Lera.col 1 1) (Lera.col 2 1) ),
            Lera.Call (">", [ Lera.col 1 1; Lera.Cst (Value.Int 1) ]) ),
        [ Lera.col 1 2 ] )
  in
  let q' = Optimizer.rewrite ~program:merging_program (ctx_of cat) q in
  match q' with
  | Lera.Search ([ Lera.Base "FILM"; Lera.Base "APPEARS_IN" ], _, _) -> ()
  | _ -> Alcotest.failf "not canonicalized: %a" Lera.pp q'

(* -- Figure 8: permutation ------------------------------------------------ *)

let merge_then_permute =
  {
    Rule.blocks =
      [
        Rule.block "merging" (Rulesets.merging ());
        Rule.block "permutation" (Rulesets.permutation ());
      ];
    rounds = 1;
  }

let test_push_select_to_inputs () =
  let db, cat, _ = film_setup () in
  let q =
    translate cat
      {|SELECT Title FROM FILM, APPEARS_IN
        WHERE FILM.Numf = APPEARS_IN.Numf AND FILM.Numf = 1|}
  in
  let q' = Optimizer.rewrite ~program:merge_then_permute (ctx_of cat) q in
  (match q' with
  | Lera.Search (inputs, qual, _) ->
    Alcotest.(check bool) "a filter appeared on an input" true
      (List.exists (function Lera.Filter _ -> true | _ -> false) inputs);
    Alcotest.(check int) "only the join predicate remains" 1
      (List.length (Lera.conjuncts qual))
  | _ -> Alcotest.failf "unexpected shape %a" Lera.pp q');
  let s_before = Eval.fresh_stats () and s_after = Eval.fresh_stats () in
  (* naive layer: the assertion is about the enumerated space the rewrite
     removes, which indexed hash joins collapse on their own *)
  let before = Eval.run ~physical:Eval.Physical.Naive ~stats:s_before db q in
  let after = Eval.run ~physical:Eval.Physical.Naive ~stats:s_after db q' in
  Alcotest.(check bool) "same result" true (Relation.equal before after);
  Alcotest.(check bool)
    (Fmt.str "fewer combinations (%d < %d)" s_after.Eval.combinations
       s_before.Eval.combinations)
    true
    (s_after.Eval.combinations < s_before.Eval.combinations)

let test_push_search_through_union () =
  let db = Fixtures.chain_db 5 in
  let reversed =
    Lera.Project (Lera.Base "EDGE", [ Lera.col 1 2; Lera.col 1 1 ])
  in
  let q =
    Lera.Search
      ( [
          Lera.Union [ Lera.Base "EDGE"; reversed ];
        ],
        Lera.eq (Lera.col 1 1) (Lera.Cst (Value.Int 1)),
        [ Lera.col 1 2 ] )
  in
  let q' = Optimizer.rewrite ~program:merge_then_permute (ctx_of_db db) q in
  (match q' with
  | Lera.Union arms ->
    Alcotest.(check int) "two pushed searches" 2 (List.length arms)
  | _ -> Alcotest.failf "expected a union of searches: %a" Lera.pp q');
  Alcotest.(check bool) "same result" true
    (Relation.equal (Eval.run db q) (Eval.run db q'))

let test_push_search_through_nest () =
  let db, cat, _ = film_setup () in
  (* Figure-4 query restricted on a grouping attribute (Title): the
     restriction must slide inside the nest *)
  let q =
    translate cat
      {|SELECT Title FROM FilmActors WHERE MEMBER('Adventure', Categories)|}
  in
  let q' = Optimizer.rewrite ~program:merge_then_permute (ctx_of cat) q in
  let rec has_search_inside_nest = function
    | Lera.Nest (Lera.Search _, _, _) | Lera.Nest (Lera.Filter _, _, _) -> true
    | r -> List.exists has_search_inside_nest (Lera.inputs r)
  in
  Alcotest.(check bool)
    (Fmt.str "restriction inside the nest: %a" Lera.pp q')
    true (has_search_inside_nest q');
  Alcotest.(check bool) "same result" true
    (Relation.equal (Eval.run db q) (Eval.run db q'))

let test_split_or_to_union () =
  (* the disjuncts span different operands, so the plain select push
     cannot take the OR as a whole; distribution turns it into a union
     whose arms push independently *)
  let db = Fixtures.graph_db ~nodes:30 ~edges:120 in
  let q =
    Lera.Search
      ( [ Lera.Base "EDGE"; Lera.Base "EDGE" ],
        Lera.disj
          [
            Lera.eq (Lera.col 1 1) (Lera.Cst (Value.Int 3));
            Lera.eq (Lera.col 2 2) (Lera.Cst (Value.Int 5));
          ],
        [ Lera.col 1 2; Lera.col 2 1 ] )
  in
  let q' = Optimizer.rewrite ~program:merge_then_permute (ctx_of_db db) q in
  (match q' with
  | Lera.Union arms -> Alcotest.(check int) "two arms" 2 (List.length arms)
  | _ -> Alcotest.failf "expected a union: %a" Lera.pp q');
  Alcotest.(check bool) "same result" true
    (Relation.equal (Eval.run db q) (Eval.run db q'));
  let s_before = Eval.fresh_stats () and s_after = Eval.fresh_stats () in
  ignore (Eval.run ~stats:s_before db q);
  ignore (Eval.run ~stats:s_after db q');
  Alcotest.(check bool)
    (Fmt.str "distribution pays off (%d vs %d)" s_after.Eval.combinations
       s_before.Eval.combinations)
    true
    (s_after.Eval.combinations < s_before.Eval.combinations)

let test_figure8_refer_constraint_form () =
  (* the PAPER's form of the nest rule: the split of the qualification
     into quali*/qualj* is found by the matcher enumerating partitions of
     the conjunct bag, filtered by the REFER constraint — no split method *)
  let db, cat, _ = film_setup () in
  let paper_rule =
    Rule_parser.parse_rule
      {|paper_nest_push:
        search(list(x*, nest(z, g, c), y*), and(bag(quali*, qualj*)), e)
        / refer_only(list(quali*), list(x*), g), nonempty(quali*)
        --> search(list(x*, nest(search(list(z), qi2, zp), g, c), y*), and(bag(qualj*)), e)
        / split_nest_qual(and(bag(quali*)), x*, g, qi2, junk), schema(list(z), zp) ;|}
  in
  let program =
    {
      Rule.blocks =
        [
          Rule.block "merging" (Rulesets.merging ());
          Rule.block "paper" ~limit:10 [ paper_rule ];
        ];
      rounds = 1;
    }
  in
  let q =
    translate cat
      {|SELECT Title FROM FilmActors
        WHERE MEMBER('Adventure', Categories) AND ALL (Salary(Actors) > 10000)|}
  in
  let stats = Engine.fresh_stats () in
  let q' = Optimizer.rewrite ~program ~stats (ctx_of cat) q in
  Alcotest.(check bool) "the paper-form rule fired" true
    (List.mem_assoc "paper_nest_push" stats.Engine.by_rule);
  let rec filtered_nest = function
    | Lera.Nest ((Lera.Search _ | Lera.Filter _), _, _) -> true
    | r -> List.exists filtered_nest (Lera.inputs r)
  in
  Alcotest.(check bool) "member pushed inside the nest" true (filtered_nest q');
  Alcotest.(check bool) "same result" true
    (Relation.equal (Eval.run db q) (Eval.run db q'))

let test_push_search_through_unnest () =
  let db, cat, _ = film_setup () in
  (* unnest the categories of films and restrict on the film number: the
     restriction must slide below the unnest *)
  let q =
    Lera.Search
      ( [ Lera.Unnest (Lera.Base "FILM", 3) ],
        Lera.conj
          [
            Lera.eq (Lera.col 1 1) (Lera.Cst (Value.Int 1));
            Lera.eq (Lera.col 1 3) (Lera.Cst (Value.Enum ("Category", "Comedy")));
          ],
        [ Lera.col 1 1 ] )
  in
  let q' = Optimizer.rewrite ~program:merge_then_permute (ctx_of cat) q in
  let rec filter_below_unnest = function
    | Lera.Unnest (Lera.Filter _, _) -> true
    | r -> List.exists filter_below_unnest (Lera.inputs r)
  in
  Alcotest.(check bool)
    (Fmt.str "filter below unnest: %a" Lera.pp q')
    true (filter_below_unnest q');
  Alcotest.(check bool) "same result" true
    (Relation.equal (Eval.run db q) (Eval.run db q'))

let test_negation_normalization () =
  let cat = Catalog.create () in
  let ctx = ctx_of cat in
  let program =
    {
      Rule.blocks = [ Rule.block "simplification" (Rulesets.simplification ()) ];
      rounds = 1;
    }
  in
  let check src expected =
    Alcotest.check term src
      (Rule_parser.parse_term expected)
      (Optimizer.rewrite_term ~program ctx
         (Lera_term.normalize (Rule_parser.parse_term src)))
  in
  check "not(@(1,1) < 3)" "@(1,1) >= 3";
  check "not(@(1,1) >= 3)" "@(1,1) < 3";
  check "not(@(1,1) = 3)" "@(1,1) <> 3";
  (* and negation feeds the contradiction rules *)
  Alcotest.check term "negated pair collapses" Term.fls
    (Optimizer.rewrite_term ~program ctx
       (Lera_term.normalize
          (Rule_parser.parse_term "@(1,1) < 3 AND not(@(1,1) < 3)")))

let test_adaptive_config () =
  let _, cat, _ = film_setup () in
  let simple = translate cat "SELECT Title FROM FILM WHERE Numf = 1" in
  let complex =
    translate cat
      {|SELECT Title FROM FilmActors
        WHERE MEMBER('Adventure', Categories) AND ALL (Salary(Actors) > 6000)|}
  in
  Alcotest.(check bool) "simple query is below the threshold" true
    (Optimizer.complexity simple < Optimizer.complexity complex);
  let cfg_simple = Optimizer.adaptive_config simple in
  let cfg_complex = Optimizer.adaptive_config complex in
  Alcotest.(check bool) "simple gets 0 limits" true
    (cfg_simple.Optimizer.merging_limit = Some 0);
  (match cfg_complex.Optimizer.merging_limit with
  | Some n -> Alcotest.(check bool) "complex gets scaled limits" true (n > 20)
  | None -> Alcotest.fail "complex limits should be finite")

let test_session_adaptive_flag () =
  let db, cat, _ = film_setup () in
  ignore db;
  ignore cat;
  let s = Eds.Session.create () in
  ignore (Eds.Session.exec_script s figure2_ddl);
  Eds.Session.set_adaptive s true;
  (* simple: no rewriting happens at all *)
  let plan = Eds.Session.explain s "SELECT Title FROM FILM WHERE Numf = 1" in
  Alcotest.(check int) "no rewrites on a key lookup" 0
    plan.Eds.Session.rewrite_stats.Engine.rewrites_applied;
  (* complex: rewriting happens *)
  let plan =
    Eds.Session.explain s
      {|SELECT Title FROM FilmActors WHERE MEMBER('Adventure', Categories)|}
  in
  Alcotest.(check bool) "complex query rewritten" true
    (plan.Eds.Session.rewrite_stats.Engine.rewrites_applied > 0)

(* -- Figure 9: fixpoint reduction ----------------------------------------- *)

let tc_fix base =
  Lera.Fix
    ( "TC",
      Lera.Union
        [
          base;
          Lera.Search
            ( [ Lera.Rvar "TC"; Lera.Rvar "TC" ],
              Lera.eq (Lera.col 1 2) (Lera.col 2 1),
              [ Lera.col 1 1; Lera.col 2 2 ] );
        ] )

let test_linearize_tc () =
  match Magic.linearize_tc (tc_fix (Lera.Base "EDGE")) with
  | Some (Lera.Fix ("TC", Lera.Union [ _; Lera.Search ([ a; b ], _, _) ])) ->
    Alcotest.check rel "first operand is the base" (Lera.Base "EDGE") a;
    Alcotest.check rel "second operand is the recursion" (Lera.Rvar "TC") b
  | Some r -> Alcotest.failf "unexpected linearization %a" Lera.pp r
  | None -> Alcotest.fail "linearization did not apply"

let test_linearize_preserves_semantics () =
  let db = Fixtures.graph_db ~nodes:10 ~edges:18 in
  let q = tc_fix (Lera.Base "EDGE") in
  let linear = Option.get (Magic.linearize_tc q) in
  Alcotest.(check bool) "same closure" true
    (Relation.equal (Eval.run db q) (Eval.run db linear))

let test_adornment_extraction () =
  let qual =
    Lera.conj
      [
        Lera.eq (Lera.col 1 2) (Lera.Cst (Value.Int 7));
        Lera.eq (Lera.col 2 1) (Lera.Cst (Value.Int 9));
        Lera.eq (Lera.Cst (Value.Str "x")) (Lera.col 1 1);
      ]
  in
  let bound = Magic.adornment qual ~slot:1 ~arity:2 in
  Alcotest.(check (list int)) "columns 1 and 2 bound" [ 1; 2 ] (List.map fst bound);
  Alcotest.(check (list int)) "nothing bound in slot 3" []
    (List.map fst (Magic.adornment qual ~slot:3 ~arity:2))

(* whole-query equivalence and work reduction for the magic rewrite *)
let magic_program =
  {
    Rule.blocks =
      [
        Rule.block "merging" (Rulesets.merging ());
        Rule.block "fixpoint" (Rulesets.fixpoint ());
        Rule.block "merging_again" (Rulesets.merging ());
      ];
    rounds = 1;
  }

let reachable_query ~from =
  Lera.Search
    ( [ tc_fix (Lera.Base "EDGE") ],
      Lera.eq (Lera.col 1 1) (Lera.Cst (Value.Int from)),
      [ Lera.col 1 2 ] )

let test_magic_equivalence_chain () =
  let db = Fixtures.chain_db 12 in
  let q = reachable_query ~from:8 in
  let stats = Engine.fresh_stats () in
  let q' = Optimizer.rewrite ~program:magic_program ~stats (ctx_of_db db) q in
  Alcotest.(check bool) "alexander fired" true
    (List.mem_assoc "alexander_rule" stats.Engine.by_rule);
  let before = Eval.run db q and after = Eval.run db q' in
  Alcotest.(check bool)
    (Fmt.str "same answers %a / %a" Relation.pp before Relation.pp after)
    true (Relation.equal before after);
  Alcotest.(check int) "reachable from 8 in a 12-chain" 4 (Relation.cardinality after)

let test_magic_equivalence_graph_both_adornments () =
  let db = Fixtures.graph_db ~nodes:14 ~edges:25 in
  List.iter
    (fun (slot_col, const) ->
      let q =
        Lera.Search
          ( [ tc_fix (Lera.Base "EDGE") ],
            Lera.eq (Lera.col 1 slot_col) (Lera.Cst (Value.Int const)),
            [ Lera.col 1 1; Lera.col 1 2 ] )
      in
      let q' = Optimizer.rewrite ~program:magic_program (ctx_of_db db) q in
      Alcotest.(check bool)
        (Fmt.str "adornment on column %d" slot_col)
        true
        (Relation.equal (Eval.run db q) (Eval.run db q')))
    [ (1, 3); (2, 5) ]

let test_magic_reduces_work () =
  let db = Fixtures.chain_db 40 in
  let q = reachable_query ~from:35 in
  let q' = Optimizer.rewrite ~program:magic_program (ctx_of_db db) q in
  let s_before = Eval.fresh_stats () and s_after = Eval.fresh_stats () in
  ignore (Eval.run ~stats:s_before db q);
  ignore (Eval.run ~stats:s_after db q');
  Alcotest.(check bool)
    (Fmt.str "magic cheaper: %d < %d" s_after.Eval.combinations
       s_before.Eval.combinations)
    true
    (s_after.Eval.combinations < s_before.Eval.combinations)

let test_magic_same_generation () =
  (* sg(x,y) :- flat(x,y) | up(x,z), sg(z,w), down(w,y): binding flows
     through an EDB relation, so the magic set genuinely grows *)
  let db = Database.create () in
  let schema = [ ("A", Eds_value.Vtype.Int); ("B", Eds_value.Vtype.Int) ] in
  let pairs ps = List.map (fun (a, b) -> [ Value.Int a; Value.Int b ]) ps in
  Database.add_relation db "UP"
    (Relation.make schema (pairs [ (1, 2); (2, 3); (5, 2); (6, 5) ]));
  Database.add_relation db "FLAT"
    (Relation.make schema (pairs [ (3, 4); (2, 7); (4, 4) ]));
  Database.add_relation db "DOWN"
    (Relation.make schema (pairs [ (4, 9); (7, 8); (9, 9) ]));
  let sg =
    Lera.Fix
      ( "SG",
        Lera.Union
          [
            Lera.Base "FLAT";
            Lera.Search
              ( [ Lera.Base "UP"; Lera.Rvar "SG"; Lera.Base "DOWN" ],
                Lera.conj
                  [
                    Lera.eq (Lera.col 1 2) (Lera.col 2 1);
                    Lera.eq (Lera.col 2 2) (Lera.col 3 1);
                  ],
                [ Lera.col 1 1; Lera.col 3 2 ] );
          ] )
  in
  let q =
    Lera.Search
      ( [ sg ],
        Lera.eq (Lera.col 1 1) (Lera.Cst (Value.Int 1)),
        [ Lera.col 1 2 ] )
  in
  let stats = Engine.fresh_stats () in
  let q' = Optimizer.rewrite ~program:magic_program ~stats (ctx_of_db db) q in
  Alcotest.(check bool) "alexander fired on SG" true
    (List.mem_assoc "alexander_rule" stats.Engine.by_rule);
  let before = Eval.run db q and after = Eval.run db q' in
  Alcotest.(check bool)
    (Fmt.str "same answers %a vs %a" Relation.pp before Relation.pp after)
    true (Relation.equal before after)

let test_magic_not_applied_without_constants () =
  let db = Fixtures.chain_db 5 in
  let q =
    Lera.Search
      ( [ tc_fix (Lera.Base "EDGE") ],
        Lera.tru,
        [ Lera.col 1 1; Lera.col 1 2 ] )
  in
  let stats = Engine.fresh_stats () in
  ignore (Optimizer.rewrite ~program:magic_program ~stats (ctx_of_db db) q);
  Alcotest.(check bool) "alexander did not fire" false
    (List.mem_assoc "alexander_rule" stats.Engine.by_rule)

(* -- Figures 10-12: semantic rewriting and simplification ----------------- *)

let simplify_program ?(semantic = false) ?(constraints = []) cat =
  let blocks =
    (if semantic then [ Rule.block "semantic" ~limit:200 (Rulesets.semantic ()) ]
     else [])
    @ [ Rule.block "simplification" (Rulesets.simplification ()) ]
  in
  let ctx =
    Optimizer.make_ctx ~semantic_constraints:constraints (Catalog.schema_env cat)
  in
  (ctx, { Rule.blocks; rounds = 1 })

let rewrite_qual ?semantic ?constraints cat q =
  let ctx, program = simplify_program ?semantic ?constraints cat in
  let t =
    Rule_parser.parse_term q |> Lera_term.normalize
  in
  Optimizer.rewrite_term ~program ctx t

let test_contradiction_detection () =
  let cat = Catalog.create () in
  Alcotest.check term "x>y and x<=y is false" Term.fls
    (rewrite_qual cat "@(1,1) > @(1,2) AND @(1,1) <= @(1,2) AND @(1,3) = 4");
  Alcotest.check term "equal and distinct is false" Term.fls
    (rewrite_qual cat "@(1,1) = 3 AND @(1,1) <> 3");
  Alcotest.check term "swapped orientation" Term.fls
    (rewrite_qual cat "@(1,1) < @(1,2) AND @(1,2) < @(1,1)")

let test_tautology_removal () =
  let cat = Catalog.create () in
  Alcotest.check term "reflexive equality erased"
    (Rule_parser.parse_term "@(1,1) > 2")
    (rewrite_qual cat "@(1,1) = @(1,1) AND @(1,1) > 2");
  Alcotest.check term "not(not(p)) collapses"
    (Rule_parser.parse_term "@(1,1) > 2")
    (rewrite_qual cat "not(not(@(1,1) > 2))")

let test_constant_folding () =
  let cat = Catalog.create () in
  Alcotest.check term "arithmetic folds" (Term.int 7)
    (rewrite_qual cat "3 + 4");
  Alcotest.check term "comparison folds to true" Term.tru
    (rewrite_qual cat "3 < 4");
  Alcotest.check term "member folds (the §6.1 example)" Term.fls
    (rewrite_qual cat
       "member('Cartoon', {'Comedy', 'Adventure', 'Science Fiction', 'Western'})");
  Alcotest.check term "folding cascades through conjunctions" Term.fls
    (rewrite_qual cat "@(1,1) = 1 AND member(2, {3, 4})")

let test_minus_zero_rule () =
  let cat = Catalog.create () in
  Alcotest.check term "x - y = 0 becomes x = y"
    (Rule_parser.parse_term "@(1,1) = @(1,2)")
    (rewrite_qual cat "@(1,1) - @(1,2) = 0")

let test_bound_subsumption () =
  let cat = Catalog.create () in
  Alcotest.check term "weaker lower bound erased"
    (Rule_parser.parse_term "@(1,1) > 5")
    (rewrite_qual cat "@(1,1) > 5 AND @(1,1) > 3");
  Alcotest.check term "weaker upper bound erased"
    (Rule_parser.parse_term "@(1,1) < 3")
    (rewrite_qual cat "@(1,1) < 3 AND @(1,1) < 7");
  Alcotest.check term "mixed strictness" Term.fls
    (rewrite_qual cat "@(1,1) > 5 AND @(1,1) <= 5");
  Alcotest.check term "empty interval" Term.fls
    (rewrite_qual cat "@(1,1) > 7 AND @(1,1) < 3");
  Alcotest.check term "point outside bound" Term.fls
    (rewrite_qual cat "@(1,1) = 2 AND @(1,1) > 4");
  (* satisfiable intervals survive *)
  let kept = rewrite_qual cat "@(1,1) > 3 AND @(1,1) < 7" in
  Alcotest.(check bool) "open interval kept" true (not (Term.equal kept Term.fls))

let test_push_through_diff_and_inter () =
  let db = Fixtures.graph_db ~nodes:20 ~edges:60 in
  let sel = Lera.eq (Lera.col 1 1) (Lera.Cst (Value.Int 3)) in
  let mk op =
    Lera.Search ([ op ], sel, [ Lera.col 1 2 ] )
  in
  let reversed = Lera.Project (Lera.Base "EDGE", [ Lera.col 1 2; Lera.col 1 1 ]) in
  List.iter
    (fun (label, op) ->
      let q = mk op in
      let q' = Optimizer.rewrite ~program:merge_then_permute (ctx_of_db db) q in
      let rec has_inner_filter = function
        | Lera.Diff (Lera.Filter _, _) | Lera.Inter (Lera.Filter _, _) -> true
        | r -> List.exists has_inner_filter (Lera.inputs r)
      in
      Alcotest.(check bool) (label ^ ": filter pushed to the kept side") true
        (has_inner_filter q');
      Alcotest.(check bool) (label ^ ": same result") true
        (Relation.equal (Eval.run db q) (Eval.run db q')))
    [
      ("difference", Lera.Diff (Lera.Base "EDGE", reversed));
      ("intersection", Lera.Inter (Lera.Base "EDGE", reversed));
    ]

let test_transitivity_enables_contradiction () =
  let cat = Catalog.create () in
  (* a < b, b < c, c < a is unsatisfiable; only transitivity exposes it *)
  let q = "@(1,1) < @(1,2) AND @(1,2) < @(1,3) AND @(1,3) < @(1,1)" in
  Alcotest.check term "cycle of < collapses to false" Term.fls
    (rewrite_qual ~semantic:true cat q);
  (* without the semantic block the contradiction is invisible *)
  let kept = rewrite_qual ~semantic:false cat q in
  Alcotest.(check bool) "without semantics it survives" true
    (not (Term.equal kept Term.fls))

let test_equality_substitution () =
  let cat = Catalog.create () in
  (* x = y and x > 3 lets y > 3 be derived; combined with y <= 3 it dies *)
  let q = "@(1,1) = @(1,2) AND @(1,1) > 3 AND @(1,2) <= 3" in
  Alcotest.check term "substitution exposes the contradiction" Term.fls
    (rewrite_qual ~semantic:true cat q)

let test_figure10_constraint_addition () =
  let _, cat, _ = film_setup () in
  (* Figure 10's Category domain + §6.1: member('Cartoon', Categories)
     becomes inconsistent *)
  let constraints = Optimizer.enum_domain_constraints (Catalog.types cat) in
  let q = translate cat "SELECT Numf FROM FILM WHERE MEMBER('Cartoon', Categories)" in
  let ctx =
    Optimizer.make_ctx ~semantic_constraints:constraints (Catalog.schema_env cat)
  in
  let program =
    {
      Rule.blocks =
        [
          Rule.block "semantic" ~limit:100 (Rulesets.semantic ());
          Rule.block "simplification" (Rulesets.simplification ());
        ];
      rounds = 1;
    }
  in
  let q' = Optimizer.rewrite ~program ctx q in
  match q' with
  | Lera.Search (_, Lera.Cst (Value.Bool false), _) -> ()
  | _ -> Alcotest.failf "inconsistency not detected: %a" Lera.pp q'

let test_enum_inconsistency_direct () =
  let _, cat, _ = film_setup () in
  (* even without constraint addition, the domain check fires on the
     qualification thanks to the not_in_domain constraint *)
  let q = translate cat "SELECT Numf FROM FILM WHERE MEMBER('Cartoon', Categories)" in
  let ctx, program = simplify_program cat in
  let q' = Optimizer.rewrite ~program ctx q in
  match q' with
  | Lera.Search (_, Lera.Cst (Value.Bool false), _) -> ()
  | _ -> Alcotest.failf "domain violation not detected: %a" Lera.pp q'

let test_declared_constraint_pipeline () =
  (* the full Figure 10 + 11 + 12 pipeline: a declared domain constraint
     on a scalar Category column, plus equality substitution and constant
     folding, expose the inconsistency of MainCat = 'Cartoon' *)
  let _, cat, _ = film_setup () in
  Catalog.apply_ddl cat
    (Parser.parse_stmt "TABLE STYLE (Numf : NUMERIC, MainCat : Category)");
  let c =
    Optimizer.parse_integrity_constraint
      "F(x) / ISA(x, Category) --> F(x) AND member(x, {'Comedy', 'Adventure', 'Science Fiction', 'Western'})"
  in
  let ctx =
    Optimizer.make_ctx ~semantic_constraints:[ c ] (Catalog.schema_env cat)
  in
  let program =
    {
      Rule.blocks =
        [
          Rule.block "semantic" ~limit:100 (Rulesets.semantic ());
          Rule.block "simplification" (Rulesets.simplification ());
        ];
      rounds = 1;
    }
  in
  (* consistent query: the constraint is added but nothing collapses *)
  let q_ok = translate cat "SELECT Numf FROM STYLE WHERE MainCat = 'Western'" in
  let stats = Engine.fresh_stats () in
  let q_ok' = Optimizer.rewrite ~program ~stats ctx q_ok in
  Alcotest.(check bool) "add_constraints fired" true
    (List.mem_assoc "add_constraints" stats.Engine.by_rule);
  (match q_ok' with
  | Lera.Search (_, Lera.Cst (Value.Bool false), _) ->
    Alcotest.fail "consistent query wrongly collapsed"
  | _ -> ());
  (* inconsistent query: 'Cartoon' violates the declared domain *)
  let q_bad = translate cat "SELECT Numf FROM STYLE WHERE MainCat = 'Cartoon'" in
  let q_bad' = Optimizer.rewrite ~program ctx q_bad in
  match q_bad' with
  | Lera.Search (_, Lera.Cst (Value.Bool false), _) -> ()
  | _ -> Alcotest.failf "inconsistency not exposed: %a" Lera.pp q_bad'

let test_trace_records_applications () =
  let _, cat, _ = film_setup () in
  let q = translate cat "SELECT Title FROM FILM WHERE Numf = 1 AND 2 < 1" in
  let stats = Engine.fresh_stats () in
  ignore (Optimizer.rewrite ~stats (ctx_of cat) q);
  let steps = Engine.steps stats in
  Alcotest.(check int) "one step per recorded rewrite"
    stats.Engine.rewrites_applied (List.length steps);
  Alcotest.(check bool) "steps name their blocks" true
    (List.for_all (fun s -> s.Engine.block_name <> "") steps);
  (* 2 < 1 must have been folded somewhere along the way *)
  Alcotest.(check bool) "const_fold traced" true
    (List.exists (fun s -> s.Engine.rule_name = "const_fold") steps)

(* -- §4.2: control ---------------------------------------------------------- *)

let test_block_limit_bounds_work () =
  let cat = Catalog.create () in
  let t = Rule_parser.parse_term "@(1,1) = 1 AND 2 = 2 AND 3 = 3 AND 4 = 4" in
  let run limit =
    let stats = Engine.fresh_stats () in
    let program =
      {
        Rule.blocks = [ { Rule.block_name = "simplify"; rules = Rulesets.simplification (); limit } ];
        rounds = 1;
      }
    in
    let t' = Optimizer.rewrite_term ~program ~stats (ctx_of cat) t in
    (t', stats)
  in
  let t0, s0 = run (Some 0) in
  ignore s0;
  Alcotest.check term "limit 0 leaves the query unchanged" (Lera_term.normalize t) t0;
  let t_inf, s_inf = run None in
  Alcotest.check term "saturation folds everything"
    (Rule_parser.parse_term "@(1,1) = 1")
    t_inf;
  Alcotest.(check bool) "conditions were counted" true
    (s_inf.Engine.conditions_checked > 0);
  (* a small limit does strictly less work than saturation *)
  let _, s_small = run (Some 3) in
  Alcotest.(check bool) "small limit checked fewer conditions" true
    (s_small.Engine.conditions_checked <= 3)

let test_seq_rounds_and_early_stop () =
  let cat = Catalog.create () in
  let t = Rule_parser.parse_term "3 + 4" in
  let program =
    {
      Rule.blocks = [ Rule.block "simplify" (Rulesets.simplification ()) ];
      rounds = 5;
    }
  in
  let stats = Engine.fresh_stats () in
  let t' = Optimizer.rewrite_term ~program ~stats (ctx_of cat) t in
  Alcotest.check term "folded" (Term.int 7) t';
  (* early stop: after the term stabilizes no further rewrites happen *)
  Alcotest.(check int) "exactly one rewrite" 1 stats.Engine.rewrites_applied

let test_same_rule_in_two_blocks () =
  (* §4.2: "the same rule may appear in different blocks" — merging runs
     before and after the fixpoint block in the default program *)
  let program = Optimizer.program () in
  let merge_blocks =
    List.filter
      (fun b ->
        List.exists (fun (r : Rule.t) -> r.Rule.name = "search_merge") b.Rule.rules)
      program.Rule.blocks
  in
  Alcotest.(check int) "search_merge present in two blocks" 2
    (List.length merge_blocks)

(* -- end to end: the default program on the paper's queries ---------------- *)

let test_default_program_figure3 () =
  let db, cat, _ = film_setup () in
  let q =
    translate cat
      {|SELECT Title, Categories, Salary(Refactor)
        FROM FILM, APPEARS_IN
        WHERE FILM.Numf = APPEARS_IN.Numf AND Name(Refactor) = 'Quinn'
          AND MEMBER('Adventure', Categories)|}
  in
  let q' = Optimizer.rewrite (ctx_of cat) q in
  let before = Eval.run db q and after = Eval.run db q' in
  Alcotest.(check bool) "same result" true (Relation.equal before after);
  Alcotest.(check int) "Quinn's adventure films" 1 (Relation.cardinality after)

let figure5_query =
  {|SELECT Name(Refactor1) FROM BETTER_THAN WHERE Name(Refactor2) = 'Quinn'|}

let test_default_program_figure5 () =
  let db, cat, _ = film_setup () in
  let q = translate cat figure5_query in
  let q' = Optimizer.rewrite (ctx_of cat) q in
  let before = Eval.run db q and after = Eval.run db q' in
  Alcotest.(check bool)
    (Fmt.str "same result: %a vs %a" Relation.pp before Relation.pp after)
    true (Relation.equal before after);
  (* Marlon dominates Quinn directly *)
  Alcotest.(check int) "one dominator of Quinn" 1 (Relation.cardinality after)

let test_default_program_figure4 () =
  let db, cat, _ = film_setup () in
  let q =
    translate cat
      {|SELECT Title FROM FilmActors
        WHERE MEMBER('Adventure', Categories) AND ALL (Salary(Actors) > 10000)|}
  in
  let q' = Optimizer.rewrite (ctx_of cat) q in
  let before = Eval.run db q and after = Eval.run db q' in
  Alcotest.(check bool) "same result" true (Relation.equal before after);
  (* Zorba (Quinn 12k + Marlon 25k) and The Wild One (Marlon) qualify *)
  Alcotest.(check int) "two films where all actors earn > 10000" 2
    (Relation.cardinality after)

let test_rewriting_never_changes_results =
  (* property: on random chain graphs, the default program preserves the
     semantics of reachability queries *)
  QCheck2.Test.make ~name:"default program preserves semantics" ~count:20
    QCheck2.Gen.(pair (int_range 3 12) (int_range 1 8))
    (fun (n, from) ->
      let db = Fixtures.chain_db n in
      let q = reachable_query ~from in
      let q' = Optimizer.rewrite (ctx_of_db db) q in
      Relation.equal (Eval.run db q) (Eval.run db q'))

let suite =
  [
    Alcotest.test_case "F7 search merging over a view" `Quick test_search_merge_flattens_composed_query;
    Alcotest.test_case "F7 merge renumbers through projection" `Quick test_merge_renumbers_through_projection;
    Alcotest.test_case "F7 union merging" `Quick test_union_merge;
    Alcotest.test_case "F7 filter/join canonicalization" `Quick test_filter_join_canonicalize;
    Alcotest.test_case "F8 select pushdown" `Quick test_push_select_to_inputs;
    Alcotest.test_case "F8 push search through union" `Quick test_push_search_through_union;
    Alcotest.test_case "F8 push search through nest" `Quick test_push_search_through_nest;
    Alcotest.test_case "F8 push search through unnest" `Quick test_push_search_through_unnest;
    Alcotest.test_case "F8 paper-form REFER constraint rule" `Quick test_figure8_refer_constraint_form;
    Alcotest.test_case "OR distribution to union" `Quick test_split_or_to_union;
    Alcotest.test_case "F12+ negation normalization" `Quick test_negation_normalization;
    Alcotest.test_case "C3 adaptive limits (§7)" `Quick test_adaptive_config;
    Alcotest.test_case "C3 session adaptive flag" `Quick test_session_adaptive_flag;
    Alcotest.test_case "F9 TC linearization" `Quick test_linearize_tc;
    Alcotest.test_case "F9 linearization preserves semantics" `Quick test_linearize_preserves_semantics;
    Alcotest.test_case "F9 adornment extraction" `Quick test_adornment_extraction;
    Alcotest.test_case "F9 magic equivalence on a chain" `Quick test_magic_equivalence_chain;
    Alcotest.test_case "F9 magic on both adornments" `Quick test_magic_equivalence_graph_both_adornments;
    Alcotest.test_case "F9 magic reduces work" `Quick test_magic_reduces_work;
    Alcotest.test_case "F9 magic on same-generation" `Quick test_magic_same_generation;
    Alcotest.test_case "F9 no constants, no magic" `Quick test_magic_not_applied_without_constants;
    Alcotest.test_case "F12 contradictions" `Quick test_contradiction_detection;
    Alcotest.test_case "F12 tautologies" `Quick test_tautology_removal;
    Alcotest.test_case "F12 constant folding" `Quick test_constant_folding;
    Alcotest.test_case "F12 minus-zero rule" `Quick test_minus_zero_rule;
    Alcotest.test_case "bound subsumption" `Quick test_bound_subsumption;
    Alcotest.test_case "push through difference/intersection" `Quick test_push_through_diff_and_inter;
    Alcotest.test_case "F11 transitivity exposes contradictions" `Quick test_transitivity_enables_contradiction;
    Alcotest.test_case "F11 equality substitution" `Quick test_equality_substitution;
    Alcotest.test_case "F10 constraint addition detects inconsistency" `Quick test_figure10_constraint_addition;
    Alcotest.test_case "F10 direct domain violation" `Quick test_enum_inconsistency_direct;
    Alcotest.test_case "F10 declared constraint pipeline" `Quick test_declared_constraint_pipeline;
    Alcotest.test_case "rewrite trace" `Quick test_trace_records_applications;
    Alcotest.test_case "C1 block limits bound work" `Quick test_block_limit_bounds_work;
    Alcotest.test_case "C1 seq rounds with early stop" `Quick test_seq_rounds_and_early_stop;
    Alcotest.test_case "C2 same rule in two blocks" `Quick test_same_rule_in_two_blocks;
    Alcotest.test_case "end-to-end Figure 3" `Quick test_default_program_figure3;
    Alcotest.test_case "end-to-end Figure 4" `Quick test_default_program_figure4;
    Alcotest.test_case "end-to-end Figure 5" `Quick test_default_program_figure5;
  ]
  @ [ QCheck_alcotest.to_alcotest test_rewriting_never_changes_results ]
