(* Tests for the always-on metrics registry (Eds_obs.Metrics): the fixed
   log₂ histogram (bucket boundaries, merge/sub algebra, quantiles,
   lock-freedom under concurrent domains), registration semantics,
   STATS-RESET value semantics, and a Prometheus text-exposition lint
   reused by the server tests over the wire. *)

module Metrics = Eds_obs.Metrics

(* -- Prometheus exposition lint ------------------------------------------- *)

(* A structural lint of the text format, returning every violation:
   HELP/TYPE present exactly once per family and before its samples,
   metric/label names in the legal charset, label values correctly
   quoted and escaped, every sample value parseable, and for histograms
   the full _bucket/_sum/_count complement with cumulative monotone
   buckets ending in +Inf == _count. *)

type family = {
  mutable f_help : int;
  mutable f_type : int;
  mutable f_kind : string option;
  mutable f_samples : int;
}

type hist_series = {
  mutable h_buckets : (float * float) list;  (* (le, cumulative) in file order *)
  mutable h_sum : float option;
  mutable h_count : float option;
}

let name_ok name =
  let ok_first c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'
  in
  let ok c = ok_first c || (c >= '0' && c <= '9') in
  name <> "" && ok_first name.[0] && String.for_all ok name

let label_name_ok name =
  let ok_first c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' in
  let ok c = ok_first c || (c >= '0' && c <= '9') in
  name <> "" && ok_first name.[0] && String.for_all ok name

(* Parse a sample line: a name, an optional label block, then a value.
   Label values are quoted and may contain backslash escapes for
   backslash, quote and newline — nothing else may be backslashed. *)
let parse_sample line =
  let n = String.length line in
  match String.index_opt line '{' with
  | None -> (
      match String.rindex_opt line ' ' with
      | None -> Error "sample line has no value"
      | Some i -> (
          let name = String.sub line 0 i in
          match float_of_string_opt (String.sub line (i + 1) (n - i - 1)) with
          | Some v -> Ok (name, [], v)
          | None -> Error ("unparseable sample value in: " ^ line)))
  | Some brace ->
      let name = String.sub line 0 brace in
      let labels = ref [] in
      let j = ref (brace + 1) in
      let error = ref None in
      let fail msg = if !error = None then error := Some msg in
      let rec pairs () =
        if !j < n && line.[!j] = '}' then incr j
        else begin
          let k0 = !j in
          while !j < n && line.[!j] <> '=' do incr j done;
          if !j >= n then fail "label without '='"
          else begin
            let key = String.sub line k0 (!j - k0) in
            incr j;
            if !j >= n || line.[!j] <> '"' then fail "label value not quoted"
            else begin
              incr j;
              let b = Buffer.create 16 in
              let closed = ref false in
              while (not !closed) && !j < n && !error = None do
                match line.[!j] with
                | '\\' ->
                    if !j + 1 >= n then fail "dangling backslash"
                    else begin
                      (match line.[!j + 1] with
                      | '\\' -> Buffer.add_char b '\\'
                      | '"' -> Buffer.add_char b '"'
                      | 'n' -> Buffer.add_char b '\n'
                      | c -> fail (Printf.sprintf "illegal escape \\%c" c));
                      j := !j + 2
                    end
                | '"' ->
                    closed := true;
                    incr j
                | c ->
                    Buffer.add_char b c;
                    incr j
              done;
              if (not !closed) && !error = None then fail "unterminated label value";
              labels := (key, Buffer.contents b) :: !labels;
              if !error = None then
                if !j < n && line.[!j] = ',' then begin
                  incr j;
                  pairs ()
                end
                else if !j < n && line.[!j] = '}' then incr j
                else fail "expected ',' or '}' after label"
            end
          end
        end
      in
      pairs ();
      (match !error with
      | Some e -> Error (e ^ " in: " ^ line)
      | None ->
          let rest = String.trim (String.sub line !j (n - !j)) in
          (match float_of_string_opt rest with
          | Some v -> Ok (name, List.rev !labels, v)
          | None -> Error ("unparseable sample value in: " ^ line)))

let chop_suffix name suffix =
  if String.length name > String.length suffix
     && String.sub name (String.length name - String.length suffix)
          (String.length suffix)
        = suffix
  then Some (String.sub name 0 (String.length name - String.length suffix))
  else None

let lint_prometheus text =
  let errors = ref [] in
  let err fmt = Fmt.kstr (fun s -> errors := s :: !errors) fmt in
  let families : (string, family) Hashtbl.t = Hashtbl.create 64 in
  let fam name =
    match Hashtbl.find_opt families name with
    | Some f -> f
    | None ->
        let f = { f_help = 0; f_type = 0; f_kind = None; f_samples = 0 } in
        Hashtbl.add families name f;
        f
  in
  let hists : (string * string, hist_series) Hashtbl.t = Hashtbl.create 64 in
  let hist_series fname labels_key =
    match Hashtbl.find_opt hists (fname, labels_key) with
    | Some h -> h
    | None ->
        let h = { h_buckets = []; h_sum = None; h_count = None } in
        Hashtbl.add hists (fname, labels_key) h;
        h
  in
  let comment_payload prefix line =
    let rest = String.sub line (String.length prefix)
        (String.length line - String.length prefix)
    in
    match String.index_opt rest ' ' with
    | None -> (rest, "")
    | Some i -> (String.sub rest 0 i, String.sub rest (i + 1) (String.length rest - i - 1))
  in
  List.iter
    (fun line ->
      if line = "" then ()
      else if String.starts_with ~prefix:"# HELP " line then begin
        let name, _ = comment_payload "# HELP " line in
        let f = fam name in
        f.f_help <- f.f_help + 1;
        if f.f_help > 1 then err "duplicate HELP for %s" name;
        if f.f_samples > 0 then err "HELP for %s after its samples" name
      end
      else if String.starts_with ~prefix:"# TYPE " line then begin
        let name, kind = comment_payload "# TYPE " line in
        let f = fam name in
        f.f_type <- f.f_type + 1;
        f.f_kind <- Some kind;
        if f.f_type > 1 then err "duplicate TYPE for %s" name;
        if f.f_samples > 0 then err "TYPE for %s after its samples" name;
        if not (List.mem kind [ "counter"; "gauge"; "histogram" ]) then
          err "unknown TYPE %s for %s" kind name
      end
      else if String.length line > 0 && line.[0] = '#' then ()
      else
        match parse_sample line with
        | Error e -> err "%s" e
        | Ok (name, labels, value) ->
            if not (name_ok name) then err "illegal metric name %s" name;
            List.iter
              (fun (k, _) ->
                if not (label_name_ok k) then err "illegal label name %s in %s" k name)
              labels;
            (* resolve the family: histogram series use suffixed names *)
            let fname, suffix =
              let candidate suffixes =
                List.find_map
                  (fun s ->
                    match chop_suffix name s with
                    | Some base
                      when (match Hashtbl.find_opt families base with
                           | Some f -> f.f_kind = Some "histogram"
                           | None -> false) ->
                        Some (base, s)
                    | _ -> None)
                  suffixes
              in
              match candidate [ "_bucket"; "_sum"; "_count" ] with
              | Some (base, s) -> (base, s)
              | None -> (name, "")
            in
            let f = fam fname in
            f.f_samples <- f.f_samples + 1;
            if f.f_help = 0 then err "sample of %s without a preceding HELP" fname;
            if f.f_type = 0 then err "sample of %s without a preceding TYPE" fname;
            (match f.f_kind with
            | Some "histogram" ->
                let labels_no_le = List.filter (fun (k, _) -> k <> "le") labels in
                let key =
                  String.concat ","
                    (List.map (fun (k, v) -> k ^ "=" ^ v) labels_no_le)
                in
                let h = hist_series fname key in
                (match suffix with
                | "_bucket" -> (
                    match List.assoc_opt "le" labels with
                    | None -> err "%s_bucket without an le label" fname
                    | Some le -> (
                        match float_of_string_opt le with
                        | Some le_v -> h.h_buckets <- h.h_buckets @ [ (le_v, value) ]
                        | None -> err "unparseable le %S on %s" le fname))
                | "_sum" -> h.h_sum <- Some value
                | "_count" -> h.h_count <- Some value
                | _ -> err "bare sample %s of histogram family %s" name fname)
            | _ ->
                if List.mem_assoc "le" labels then
                  err "le label on non-histogram %s" name))
    (String.split_on_char '\n' text);
  Hashtbl.iter
    (fun name f ->
      if f.f_samples > 0 && f.f_help = 0 then err "family %s has no HELP" name;
      if f.f_samples > 0 && f.f_type = 0 then err "family %s has no TYPE" name)
    families;
  Hashtbl.iter
    (fun (fname, key) h ->
      let where = if key = "" then fname else fname ^ "{" ^ key ^ "}" in
      (match h.h_buckets with
      | [] -> err "histogram %s has no buckets" where
      | buckets ->
          let les = List.map fst buckets in
          if not (List.exists (fun le -> le = infinity) les) then
            err "histogram %s lacks a +Inf bucket" where;
          let sorted = List.sort compare les in
          if sorted <> les then err "histogram %s buckets not in ascending le order" where;
          let rec monotone prev = function
            | [] -> true
            | (_, v) :: rest -> v >= prev && monotone v rest
          in
          if not (monotone 0. buckets) then
            err "histogram %s cumulative buckets not monotone" where;
          (match (List.rev buckets, h.h_count) with
          | (le, last) :: _, Some count when le = infinity && last <> count ->
              err "histogram %s +Inf bucket %g <> count %g" where last count
          | _ -> ()));
      if h.h_sum = None then err "histogram %s lacks _sum" where;
      if h.h_count = None then err "histogram %s lacks _count" where)
    hists;
  List.rev !errors

let check_lint label text =
  match lint_prometheus text with
  | [] -> ()
  | errs ->
      Alcotest.failf "%s: %d lint error(s):\n%s" label (List.length errs)
        (String.concat "\n" errs)

(* -- histogram core -------------------------------------------------------- *)

let test_bucket_boundaries () =
  let bounds = Metrics.Histogram.bounds in
  let n = Array.length bounds in
  Alcotest.(check bool) "bounds ascending" true
    (Array.for_all (fun i -> bounds.(i) < bounds.(i + 1)) (Array.init (n - 1) Fun.id));
  (* le semantics: a value exactly on a bound is inclusive *)
  Array.iteri
    (fun i b ->
      Alcotest.(check int)
        (Fmt.str "bound %g lands in its own bucket" b)
        i
        (Metrics.Histogram.bucket_index b))
    bounds;
  Alcotest.(check int) "below the first bound" 0
    (Metrics.Histogram.bucket_index (bounds.(0) /. 2.));
  Alcotest.(check int) "just over a bound spills to the next bucket" 6
    (Metrics.Histogram.bucket_index (bounds.(5) *. 1.0001));
  Alcotest.(check int) "over the last bound is overflow" n
    (Metrics.Histogram.bucket_index (bounds.(n - 1) *. 2.));
  Alcotest.(check int) "infinity is overflow" n
    (Metrics.Histogram.bucket_index infinity)

let test_merge_equals_combined () =
  let a = Metrics.histogram "test_merge_a_seconds" in
  let b = Metrics.histogram "test_merge_b_seconds" in
  let c = Metrics.histogram "test_merge_c_seconds" in
  let stream_a = [ 0.0001; 0.003; 0.003; 0.5; 3.; 200. ] in
  let stream_b = [ 0.002; 0.9; 0.9; 0.9; 1e-9 ] in
  List.iter (Metrics.Histogram.observe a) stream_a;
  List.iter (Metrics.Histogram.observe b) stream_b;
  List.iter (Metrics.Histogram.observe c) (stream_a @ stream_b);
  let merged =
    Metrics.Histogram.merge (Metrics.Histogram.snapshot a)
      (Metrics.Histogram.snapshot b)
  in
  let combined = Metrics.Histogram.snapshot c in
  Alcotest.(check (array int)) "merged counts equal combined recording"
    combined.Metrics.Histogram.counts merged.Metrics.Histogram.counts;
  Alcotest.(check (float 1e-9)) "merged sum equals combined sum"
    combined.Metrics.Histogram.sum merged.Metrics.Histogram.sum;
  (* sub is merge's inverse: (a+b) - b = a *)
  let back = Metrics.Histogram.sub merged (Metrics.Histogram.snapshot b) in
  Alcotest.(check (array int)) "sub undoes merge"
    (Metrics.Histogram.snapshot a).Metrics.Histogram.counts
    back.Metrics.Histogram.counts

let test_quantile_monotone () =
  let h = Metrics.histogram "test_quantile_seconds" in
  List.iter
    (Metrics.Histogram.observe h)
    [ 0.0001; 0.0002; 0.001; 0.004; 0.004; 0.01; 0.05; 0.3; 1.2; 7.; 90. ];
  let s = Metrics.Histogram.snapshot h in
  let qs =
    List.map
      (fun p -> Metrics.Histogram.quantile s p)
      [ 0.; 0.1; 0.25; 0.5; 0.75; 0.9; 0.95; 0.99; 1. ]
  in
  let rec check_monotone = function
    | a :: (b :: _ as rest) ->
        Alcotest.(check bool) (Fmt.str "quantile monotone (%g <= %g)" a b) true
          (a <= b);
        check_monotone rest
    | _ -> ()
  in
  check_monotone qs;
  (* an empty snapshot quantiles to zero *)
  let empty = Metrics.histogram "test_quantile_empty_seconds" in
  Alcotest.(check (float 0.)) "empty quantile" 0.
    (Metrics.Histogram.quantile (Metrics.Histogram.snapshot empty) 0.99);
  (* a single-bucket histogram localises within that bucket *)
  let one = Metrics.histogram "test_quantile_one_seconds" in
  Metrics.Histogram.observe one 0.003;
  let q = Metrics.Histogram.quantile (Metrics.Histogram.snapshot one) 0.5 in
  let i = Metrics.Histogram.bucket_index 0.003 in
  let lower = if i = 0 then 0. else Metrics.Histogram.bounds.(i - 1) in
  Alcotest.(check bool) "median inside the recorded bucket" true
    (q >= lower && q <= Metrics.Histogram.bounds.(i))

let test_concurrent_recording () =
  let h = Metrics.histogram "test_concurrent_seconds" in
  let per_domain = 25_000 in
  let domains = 4 in
  let worker () =
    for i = 1 to per_domain do
      Metrics.Histogram.observe h (0.0001 *. float_of_int ((i mod 13) + 1))
    done
  in
  let spawned = List.init domains (fun _ -> Domain.spawn worker) in
  List.iter Domain.join spawned;
  let s = Metrics.Histogram.snapshot h in
  Alcotest.(check int) "no observation lost across domains"
    (domains * per_domain) (Metrics.Histogram.count s);
  let expected_one =
    let sum = ref 0 in
    for i = 1 to per_domain do
      sum := !sum + int_of_float (0.0001 *. float_of_int ((i mod 13) + 1) *. 1e9)
    done;
    float_of_int !sum /. 1e9
  in
  Alcotest.(check (float 1e-6)) "sum intact across domains"
    (expected_one *. float_of_int domains)
    s.Metrics.Histogram.sum

(* -- registration and reset ------------------------------------------------ *)

let test_registration_idempotent () =
  let c1 = Metrics.counter "test_idem_total" in
  let c2 = Metrics.counter "test_idem_total" in
  Metrics.Counter.incr c1;
  Metrics.Counter.incr c2;
  Alcotest.(check int) "same cell through both handles" 2 (Metrics.Counter.value c1);
  (* same name with different labels is a distinct series *)
  let l1 = Metrics.counter ~labels:[ ("k", "a") ] "test_idem_labelled_total" in
  let l2 = Metrics.counter ~labels:[ ("k", "b") ] "test_idem_labelled_total" in
  Metrics.Counter.incr l1;
  Alcotest.(check int) "labels separate series" 0 (Metrics.Counter.value l2);
  (* re-registering under a different kind is a bug, loudly *)
  (match Metrics.gauge "test_idem_total" with
  | _ -> Alcotest.fail "kind mismatch should raise"
  | exception Invalid_argument _ -> ());
  match Metrics.find_sample "test_idem_total" with
  | Some { Metrics.value = Metrics.Counter_v 2; _ } -> ()
  | Some _ -> Alcotest.fail "find_sample returned the wrong value"
  | None -> Alcotest.fail "find_sample missed a registered counter"

let test_reset_values () =
  let plain = Metrics.counter "test_reset_plain_total" in
  let perm = Metrics.counter ~permanent:true "test_reset_perm_total" in
  let g = Metrics.gauge "test_reset_gauge" in
  let h = Metrics.histogram "test_reset_seconds" in
  Metrics.Counter.add plain 5;
  Metrics.Counter.add perm 7;
  Metrics.Gauge.set g 3;
  Metrics.Histogram.observe h 0.01;
  Metrics.reset_values ();
  Alcotest.(check int) "plain counter zeroed" 0 (Metrics.Counter.value plain);
  Alcotest.(check int) "permanent counter survives" 7 (Metrics.Counter.value perm);
  Alcotest.(check int) "gauge survives" 3 (Metrics.Gauge.value g);
  Alcotest.(check int) "histogram zeroed" 0
    (Metrics.Histogram.count (Metrics.Histogram.snapshot h));
  (* cells keep working after a reset *)
  Metrics.Counter.incr plain;
  Alcotest.(check int) "counter records after reset" 1 (Metrics.Counter.value plain)

let test_disabled_recording () =
  let c = Metrics.counter "test_disable_total" in
  let h = Metrics.histogram "test_disable_seconds" in
  let g = Metrics.gauge "test_disable_gauge" in
  Fun.protect
    ~finally:(fun () -> Metrics.set_enabled true)
    (fun () ->
      Metrics.set_enabled false;
      Metrics.Counter.incr c;
      Metrics.Histogram.observe h 0.5;
      Metrics.Gauge.set g 9;
      Alcotest.(check int) "counter gated off" 0 (Metrics.Counter.value c);
      Alcotest.(check int) "histogram gated off" 0
        (Metrics.Histogram.count (Metrics.Histogram.snapshot h));
      (* gauges track current state, never gated *)
      Alcotest.(check int) "gauge still records" 9 (Metrics.Gauge.value g));
  Metrics.Counter.incr c;
  Alcotest.(check int) "counter records once re-enabled" 1 (Metrics.Counter.value c)

(* -- exposition ------------------------------------------------------------ *)

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_prometheus_lint () =
  (* exercise the painful corners: escaped label values, a labelled
     histogram, and the full registry accumulated by every other test
     and module-initialisation in this process *)
  let c =
    Metrics.counter ~help:"escape torture"
      ~labels:[ ("q", "a\"b\\c\nd") ]
      "test_escape_total"
  in
  Metrics.Counter.incr c;
  let h =
    Metrics.histogram ~help:"labelled histogram"
      ~labels:[ ("verb", "select") ]
      "test_lint_duration_seconds"
  in
  Metrics.Histogram.observe h 0.004;
  Metrics.Histogram.observe h 3.;
  let text = Metrics.prometheus () in
  check_lint "whole registry" text;
  Alcotest.(check bool) "escaped label value rendered" true
    (contains ~sub:{|q="a\"b\\c\nd"|} text);
  Alcotest.(check bool) "+Inf bucket present" true
    (contains ~sub:{|test_lint_duration_seconds_bucket{verb="select",le="+Inf"}|} text);
  Alcotest.(check bool) "sum present" true
    (contains ~sub:{|test_lint_duration_seconds_sum{verb="select"}|} text);
  Alcotest.(check bool) "count present" true
    (contains ~sub:{|test_lint_duration_seconds_count{verb="select"}|} text);
  (* the lint itself must catch violations *)
  Alcotest.(check bool) "lint flags missing TYPE" true
    (lint_prometheus "orphan_total 3\n" <> []);
  Alcotest.(check bool) "lint flags non-monotone buckets" true
    (lint_prometheus
       "# HELP bad_seconds x\n\
        # TYPE bad_seconds histogram\n\
        bad_seconds_bucket{le=\"1\"} 5\n\
        bad_seconds_bucket{le=\"+Inf\"} 3\n\
        bad_seconds_sum 1\n\
        bad_seconds_count 3\n"
     <> [])

let test_collector () =
  let calls = ref 0 in
  let id =
    Metrics.register_collector (fun () ->
        incr calls;
        [
          {
            Metrics.name = "test_collector_gauge";
            help = "collector output";
            kind = Metrics.K_gauge;
            labels = [];
            value = Metrics.Gauge_v 42.;
          };
        ])
  in
  let text = Metrics.prometheus () in
  Alcotest.(check bool) "collector sample rendered" true
    (contains ~sub:"test_collector_gauge 42" text);
  check_lint "registry with collector" text;
  Metrics.unregister_collector id;
  let text' = Metrics.prometheus () in
  Alcotest.(check bool) "unregistered collector gone" false
    (contains ~sub:"test_collector_gauge" text');
  Alcotest.(check bool) "collector ran" true (!calls > 0)

let suite =
  [
    Alcotest.test_case "histogram bucket boundaries" `Quick test_bucket_boundaries;
    Alcotest.test_case "merge equals combined recording" `Quick
      test_merge_equals_combined;
    Alcotest.test_case "quantile monotone in p" `Quick test_quantile_monotone;
    Alcotest.test_case "concurrent recording loses nothing" `Quick
      test_concurrent_recording;
    Alcotest.test_case "registration idempotent" `Quick test_registration_idempotent;
    Alcotest.test_case "reset spares permanent cells and gauges" `Quick
      test_reset_values;
    Alcotest.test_case "disabled gate" `Quick test_disabled_recording;
    Alcotest.test_case "prometheus exposition lint" `Quick test_prometheus_lint;
    Alcotest.test_case "collectors" `Quick test_collector;
  ]
