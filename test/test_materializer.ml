(* Materialized-view maintenance: unit tests for the incremental paths
   (semi-naive insert propagation, delete-and-rederive, fallback
   recompute for non-monotone plans), the shared per-relation fixpoint
   cache, the columnar Enum flavor, and two qcheck properties — random
   DML/refresh interleavings keep every maintained extent bit-identical
   to a never-materialized oracle under all four physical/columnar
   configurations, and a kill-and-replay run recovers the extents. *)

module Value = Eds_value.Value
module Session = Eds.Session
module Storage = Eds.Storage
module Wal = Eds.Wal
module Eval = Eds_engine.Eval
module Relation = Eds_engine.Relation
module Database = Eds_engine.Database
module Materializer = Eds_engine.Materializer
module Column = Eds_engine.Column

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let exec s stmt =
  match Session.exec_string s stmt with
  | _ -> ()
  | exception Session.Session_error msg -> Alcotest.failf "exec %S: %s" stmt msg

let setup_statements =
  [
    "TYPE COLOR ENUMERATION OF ('red', 'green', 'blue')";
    "TABLE EDGE (Src : INT, Dst : INT)";
    "TABLE NODE (Id : INT, Tint : COLOR)";
    "TABLE OTHER (X : INT)";
  ]

let setup s = List.iter (exec s) setup_statements

(* the view pool: name, declared-columns clause, body.  VT is recursive
   (transitive closure), VG is non-monotone (Nest), VS stacks on VT. *)
let view_pool =
  [
    ("VJ", "", "SELECT EDGE.Src, NODE.Tint FROM EDGE, NODE WHERE EDGE.Dst = NODE.Id");
    ( "VT",
      " (A, B)",
      "SELECT Src, Dst FROM EDGE UNION SELECT EDGE.Src, VT.B FROM EDGE, VT \
       WHERE EDGE.Dst = VT.A" );
    ("VF", "", "SELECT Src FROM EDGE WHERE Dst > 3");
    ("VU", "", "SELECT Src FROM EDGE UNION SELECT Id FROM NODE");
    ("VG", " (Gsrc, Dsts)", "SELECT Src, MakeSet(Dst) FROM EDGE GROUP BY Src");
    ("VS", " (A)", "SELECT VT.A FROM VT WHERE VT.B = 4");
  ]

let create_view ~materialized s (name, cols, body) =
  exec s
    (Fmt.str "CREATE %sVIEW %s%s AS ( %s )"
       (if materialized then "MATERIALIZED " else "")
       name cols body)

let probe_of (name, _, _) =
  match name with
  | "VJ" -> "SELECT VJ.Src, VJ.Tint FROM VJ"
  | "VT" -> "SELECT VT.A, VT.B FROM VT"
  | "VG" -> "SELECT VG.Gsrc, VG.Dsts FROM VG"
  | "VS" -> "SELECT VS.A FROM VS"
  | n -> Fmt.str "SELECT %s.Src FROM %s" n n

(* compare the materialized session against a never-materialized oracle
   on every pool view (through SELECTs, so the whole read path is
   exercised) and, for the materialized side, also check the stored
   extent against a from-scratch recompute of the registered plan *)
let check_against_oracle ~ctx subject oracle views =
  List.iter
    (fun ((name, _, _) as v) ->
      let q = probe_of v in
      let got = Session.query subject q in
      let want = Session.query oracle q in
      if not (Relation.equal got want) then
        Alcotest.failf "%s: view %s diverged from oracle@.got  %a@.want %a" ctx
          name Relation.pp got Relation.pp want;
      let db = Session.database subject in
      match Materializer.find (Session.mviews subject) name with
      | None -> Alcotest.failf "%s: %s not registered" ctx name
      | Some mv -> (
        match Database.relation_opt db name with
        | None -> Alcotest.failf "%s: %s has no stored extent" ctx name
        | Some extent ->
          let recomputed = Session.run_plan subject mv.Materializer.plan in
          if not (Relation.equal extent recomputed) then
            Alcotest.failf
              "%s: %s extent is not the fixpoint of its definition" ctx name))
    views

(* -- unit: join view insert/delete/update maintenance -------------------- *)

let test_nonrecursive_maintenance () =
  let s = Session.create () and oracle = Session.create () in
  setup s;
  setup oracle;
  let vj = List.nth view_pool 0 in
  create_view ~materialized:true s vj;
  create_view ~materialized:false oracle vj;
  let both stmt =
    exec s stmt;
    exec oracle stmt
  in
  both "INSERT INTO NODE VALUES (2, 'red')";
  both "INSERT INTO NODE VALUES (3, 'blue')";
  both "INSERT INTO EDGE VALUES (1, 2)";
  both "INSERT INTO EDGE VALUES (1, 3)";
  both "INSERT INTO EDGE VALUES (4, 2)";
  check_against_oracle ~ctx:"insert" s oracle [ vj ];
  let runs_before = (Session.mv_stats s).Materializer.maintenance_runs in
  both "DELETE FROM EDGE WHERE Src = 1";
  check_against_oracle ~ctx:"delete" s oracle [ vj ];
  both "UPDATE NODE SET Tint = 'green' WHERE Id = 2";
  check_against_oracle ~ctx:"update" s oracle [ vj ];
  Alcotest.(check bool)
    "maintenance ran incrementally" true
    ((Session.mv_stats s).Materializer.maintenance_runs > runs_before);
  (* REFRESH is a no-op on an already-correct extent *)
  exec s "REFRESH VJ";
  check_against_oracle ~ctx:"refresh" s oracle [ vj ];
  Alcotest.(check bool)
    "refresh counted" true
    ((Session.mv_stats s).Materializer.refreshes >= 1)

(* -- unit: recursive view, semi-naive inserts + delete-and-rederive ------ *)

let test_recursive_maintenance () =
  let s = Session.create () and oracle = Session.create () in
  setup s;
  setup oracle;
  let vt = List.nth view_pool 1 in
  create_view ~materialized:true s vt;
  create_view ~materialized:false oracle vt;
  let both stmt =
    exec s stmt;
    exec oracle stmt
  in
  (* chain 1→2→3→4 plus a diamond 1→5→4 giving 1⇝4 two derivations *)
  List.iter both
    [
      "INSERT INTO EDGE VALUES (1, 2)"; "INSERT INTO EDGE VALUES (2, 3)";
      "INSERT INTO EDGE VALUES (3, 4)"; "INSERT INTO EDGE VALUES (1, 5)";
      "INSERT INTO EDGE VALUES (5, 4)";
    ];
  check_against_oracle ~ctx:"tc inserts" s oracle [ vt ];
  (* new edge closing a cycle: semi-naive continuation must still stop *)
  both "INSERT INTO EDGE VALUES (4, 1)";
  check_against_oracle ~ctx:"tc cycle" s oracle [ vt ];
  both "DELETE FROM EDGE WHERE Src = 4";
  (* 1⇝4 must survive the over-deletion via its 1→5→4 support *)
  check_against_oracle ~ctx:"tc delete rederive" s oracle [ vt ];
  both "DELETE FROM EDGE WHERE Src = 5";
  check_against_oracle ~ctx:"tc cascade delete" s oracle [ vt ];
  Alcotest.(check bool)
    "incremental steps happened" true
    ((Session.mv_stats s).Materializer.maintenance_runs > 0)

(* -- unit: non-monotone view falls back to recompute, stays correct ------ *)

let test_nonmonotone_fallback () =
  let s = Session.create () and oracle = Session.create () in
  setup s;
  setup oracle;
  let vg = List.nth view_pool 4 in
  create_view ~materialized:true s vg;
  create_view ~materialized:false oracle vg;
  let both stmt =
    exec s stmt;
    exec oracle stmt
  in
  both "INSERT INTO EDGE VALUES (1, 2)";
  both "INSERT INTO EDGE VALUES (1, 3)";
  both "DELETE FROM EDGE WHERE Dst = 2";
  check_against_oracle ~ctx:"nest fallback" s oracle [ vg ];
  Alcotest.(check bool)
    "fallbacks counted" true
    ((Session.mv_stats s).Materializer.fallback_recomputes > 0)

(* -- unit: stacked views maintain topologically -------------------------- *)

let test_stacked_views () =
  let s = Session.create () and oracle = Session.create () in
  setup s;
  setup oracle;
  let vt = List.nth view_pool 1 and vs = List.nth view_pool 5 in
  List.iter (create_view ~materialized:true s) [ vt; vs ];
  List.iter (create_view ~materialized:false oracle) [ vt; vs ];
  let both stmt =
    exec s stmt;
    exec oracle stmt
  in
  List.iter both
    [
      "INSERT INTO EDGE VALUES (1, 2)"; "INSERT INTO EDGE VALUES (2, 4)";
      "INSERT INTO EDGE VALUES (3, 1)";
    ];
  check_against_oracle ~ctx:"stack inserts" s oracle [ vt; vs ];
  both "DELETE FROM EDGE WHERE Src = 2";
  check_against_oracle ~ctx:"stack delete" s oracle [ vt; vs ];
  (* base change plus both dependent extents land under a single
     publish: one generation bump per DML statement *)
  let g0 = Session.data_generation s in
  both "INSERT INTO EDGE VALUES (9, 4)";
  Alcotest.(check int) "one publish per DML" (g0 + 1) (Session.data_generation s)

(* -- unit: EXPLAIN ANALYZE tags extent scans ----------------------------- *)

let test_explain_analyze_tags_mviews () =
  let s = Session.create () in
  setup s;
  create_view ~materialized:true s (List.nth view_pool 1);
  exec s "INSERT INTO EDGE VALUES (1, 2)";
  match Session.exec_string s "EXPLAIN ANALYZE SELECT VT.A, VT.B FROM VT" with
  | Session.Report text ->
    Alcotest.(check bool) "mview scan tagged" true (contains ~sub:"mview:VT" text)
  | _ -> Alcotest.fail "expected a report"

(* -- unit: shared fix cache with per-relation invalidation --------------- *)

let test_shared_fix_cache () =
  let s = Session.create () in
  setup s;
  (* a plain (expanded) recursive view: every SELECT re-evaluates the
     closed fixpoint unless the shared cache serves it *)
  create_view ~materialized:false s (List.nth view_pool 1);
  List.iter (exec s)
    [ "INSERT INTO EDGE VALUES (1, 2)"; "INSERT INTO EDGE VALUES (2, 3)" ];
  let es = Session.eval_stats s in
  let q () = ignore (Session.query s "SELECT VT.A, VT.B FROM VT") in
  q ();
  let hits0 = es.Eval.fix_cache_hits in
  q ();
  Alcotest.(check bool) "second run served from cache" true
    (es.Eval.fix_cache_hits > hits0);
  (* DML on an unrelated relation keeps the entry valid *)
  exec s "INSERT INTO OTHER VALUES (1)";
  let hits1 = es.Eval.fix_cache_hits in
  q ();
  Alcotest.(check bool) "unrelated DML does not invalidate" true
    (es.Eval.fix_cache_hits > hits1);
  let _, invalidations0 = Session.fix_cache_stats s in
  Alcotest.(check int) "no invalidations so far" 0 invalidations0;
  (* DML on a dependency evicts exactly that entry *)
  exec s "INSERT INTO EDGE VALUES (3, 4)";
  let misses0 = es.Eval.fix_cache_misses in
  q ();
  let _, invalidations1 = Session.fix_cache_stats s in
  Alcotest.(check bool) "dependency DML forces recompute" true
    (es.Eval.fix_cache_misses > misses0);
  Alcotest.(check bool) "eviction counted" true (invalidations1 > 0);
  (* and the recomputed answer reflects the write *)
  let rel = Session.query s "SELECT VT.A, VT.B FROM VT" in
  Alcotest.(check bool) "fresh result includes new edge" true
    (Relation.mem [ Value.Int 1; Value.Int 4 ] rel)

(* -- unit: columnar Enum flavor ------------------------------------------ *)

let test_columnar_enum () =
  let tuples =
    [
      [ Value.Int 1; Value.Enum ("color", "red") ];
      [ Value.Int 2; Value.Enum ("color", "blue") ];
    ]
  in
  (match Column.of_tuples ~arity:2 2 tuples with
  | None -> Alcotest.fail "enum-keyed tuples should qualify for columnar"
  | Some t ->
    Alcotest.(check bool) "enum column has id flavor" true
      (Column.flavor t.Column.cols.(1) = Column.F_id);
    let v = Column.value_at t ~row:1 ~col:1 in
    Alcotest.(check bool) "type name survives round trip" true
      (v = Value.Enum ("color", "blue")));
  (* mixing enum types, or enum with plain strings, still bails *)
  Alcotest.(check bool) "mixed enum types bail" true
    (Column.of_tuples ~arity:1 2
       [ [ Value.Enum ("a", "x") ]; [ Value.Enum ("b", "x") ] ]
    = None);
  Alcotest.(check bool) "enum/str mix bails" true
    (Column.of_tuples ~arity:1 2 [ [ Value.Enum ("a", "x") ]; [ Value.Str "x" ] ]
    = None);
  (* end to end: a hash join keyed on enum columns takes the vectorized
     path — before the Enums flavor any enum operand forced the whole
     join back to the boxed executor *)
  let s = Session.create () in
  setup s;
  List.iter (exec s)
    [
      "TABLE PAINT (Hue : COLOR, Price : INT)";
      "INSERT INTO NODE VALUES (1, 'red')"; "INSERT INTO NODE VALUES (2, 'blue')";
      "INSERT INTO NODE VALUES (3, 'red')";
      "INSERT INTO PAINT VALUES ('red', 10)"; "INSERT INTO PAINT VALUES ('green', 20)";
    ];
  let was = Column.enabled () in
  Column.set_enabled true;
  Fun.protect
    ~finally:(fun () -> Column.set_enabled was)
    (fun () ->
      let es = Session.eval_stats s in
      let before = es.Eval.columnar_ops in
      let rel =
        Session.query s
          "SELECT NODE.Id, PAINT.Price FROM NODE, PAINT WHERE NODE.Tint = \
           PAINT.Hue"
      in
      Alcotest.(check int) "join result" 2 (Relation.cardinality rel);
      Alcotest.(check bool) "columnar fast path engaged" true
        (es.Eval.columnar_ops > before))

(* -- unit: storage round trip preserves extents -------------------------- *)

let test_storage_round_trip () =
  let s = Session.create () in
  setup s;
  List.iter (create_view ~materialized:true s)
    [ List.nth view_pool 0; List.nth view_pool 1 ];
  List.iter (exec s)
    [
      "INSERT INTO NODE VALUES (2, 'red')"; "INSERT INTO EDGE VALUES (1, 2)";
      "INSERT INTO EDGE VALUES (2, 3)";
    ];
  let dump = Storage.dump s in
  Alcotest.(check bool) "dump carries extent lines" true
    (contains ~sub:"--* VT" dump);
  let s' = Storage.restore dump in
  Alcotest.(check string) "restored dump is bit-identical" dump (Storage.dump s');
  (* and the restored extents keep maintaining *)
  exec s "INSERT INTO EDGE VALUES (3, 4)";
  exec s' "INSERT INTO EDGE VALUES (3, 4)";
  Alcotest.(check string) "maintenance after restore agrees" (Storage.dump s)
    (Storage.dump s')

(* -- qcheck: random interleavings vs oracle, 4 configurations ------------ *)

type op =
  | Ins_edge of int * int
  | Del_edge of int
  | Upd_edge of int * int
  | Ins_node of int * int
  | Del_node of int
  | Do_refresh of int

let color_of i = List.nth [ "'red'"; "'green'"; "'blue'" ] (i mod 3)

let stmt_of_op views = function
  | Ins_edge (u, v) -> Some (Fmt.str "INSERT INTO EDGE VALUES (%d, %d)" u v)
  | Del_edge u -> Some (Fmt.str "DELETE FROM EDGE WHERE Src = %d" u)
  | Upd_edge (u, v) ->
    Some (Fmt.str "UPDATE EDGE SET Dst = %d WHERE Src = %d" v u)
  | Ins_node (i, c) ->
    Some (Fmt.str "INSERT INTO NODE VALUES (%d, %s)" i (color_of c))
  | Del_node i -> Some (Fmt.str "DELETE FROM NODE WHERE Id = %d" i)
  | Do_refresh k ->
    if views = [] then None
    else
      let name, _, _ = List.nth views (k mod List.length views) in
      Some ("REFRESH " ^ name)

let gen_op =
  QCheck2.Gen.(
    oneof
      [
        map2 (fun u v -> Ins_edge (u, v)) (int_range 0 5) (int_range 0 5);
        map (fun u -> Del_edge u) (int_range 0 5);
        map2 (fun u v -> Upd_edge (u, v)) (int_range 0 5) (int_range 0 5);
        map2 (fun i c -> Ins_node (i, c)) (int_range 0 5) (int_range 0 2);
        map (fun i -> Del_node i) (int_range 0 5);
        map (fun k -> Do_refresh k) (int_range 0 9);
      ])

(* a scenario: which pool views to materialize (VS kept only when VT is
   picked too — it reads VT), and an op sequence *)
let gen_scenario =
  QCheck2.Gen.(
    pair
      (list_size (int_range 1 6) (int_range 0 5))
      (list_size (int_range 1 12) gen_op))

let views_of_selection sel =
  let chosen = List.sort_uniq compare sel in
  let has i = List.mem i chosen in
  List.filteri (fun i _ -> has i && (i <> 5 || has 1)) view_pool

let print_scenario (sel, ops) =
  Fmt.str "views=%a ops=%d"
    (Fmt.list ~sep:Fmt.comma (fun ppf (n, _, _) -> Fmt.string ppf n))
    (views_of_selection sel) (List.length ops)

let configs =
  [
    (Eval.Physical.Naive, false);
    (Eval.Physical.Indexed, false);
    (Eval.Physical.Indexed, true);
    (Eval.Physical.Parallel, true);
  ]

let run_scenario ~physical ~columnar (sel, ops) =
  let views = views_of_selection sel in
  let was = Column.enabled () in
  Column.set_enabled columnar;
  Fun.protect
    ~finally:(fun () -> Column.set_enabled was)
    (fun () ->
      let subject = Session.create () and oracle = Session.create () in
      List.iter
        (fun s ->
          Session.set_physical s physical;
          if physical = Eval.Physical.Parallel then Session.set_domains s 2;
          setup s)
        [ subject; oracle ];
      List.iter (create_view ~materialized:true subject) views;
      List.iter (create_view ~materialized:false oracle) views;
      List.iteri
        (fun i op ->
          match stmt_of_op views op with
          | None -> ()
          | Some stmt ->
            exec subject stmt;
            (* REFRESH only exists on the materialized side *)
            (match op with Do_refresh _ -> () | _ -> exec oracle stmt);
            check_against_oracle
              ~ctx:
                (Fmt.str "op %d (%s) under %s/columnar=%b" i stmt
                   (Eval.Physical.to_string physical)
                   columnar)
              subject oracle views)
        ops)

let prop_maintenance_matches_recompute =
  QCheck2.Test.make ~name:"maintained extents = full recompute (4 configs)"
    ~count:15 ~print:print_scenario gen_scenario (fun scenario ->
      List.iter
        (fun (physical, columnar) -> run_scenario ~physical ~columnar scenario)
        configs;
      true)

(* -- qcheck: kill-and-replay recovers extents ---------------------------- *)

let temp_db () =
  let path = Filename.temp_file "eds_mv" ".esql" in
  Sys.remove path;
  path

let cleanup db =
  List.iter
    (fun p -> if Sys.file_exists p then Sys.remove p)
    [ db; db ^ ".tmp"; Wal.Manager.wal_path db ]

let replay_statements =
  setup_statements
  @ [
      "CREATE MATERIALIZED VIEW VT (A, B) AS ( SELECT Src, Dst FROM EDGE \
       UNION SELECT EDGE.Src, VT.B FROM EDGE, VT WHERE EDGE.Dst = VT.A )";
      "INSERT INTO EDGE VALUES (1, 2)";
      "INSERT INTO EDGE VALUES (2, 3)";
      "CREATE MATERIALIZED VIEW VF AS ( SELECT Src FROM EDGE WHERE Dst > 3 )";
      "INSERT INTO EDGE VALUES (3, 4)";
      "DELETE FROM EDGE WHERE Src = 2";
      "REFRESH VT";
      "INSERT INTO EDGE VALUES (2, 5)";
      "UPDATE EDGE SET Dst = 3 WHERE Src = 1";
    ]

let prop_kill_and_replay =
  let gen =
    QCheck2.Gen.(
      pair
        (int_range 0 (List.length replay_statements))
        (option (int_range 0 (List.length replay_statements))))
  in
  let print (n, ck) =
    Fmt.str "prefix=%d checkpoint=%s" n
      (match ck with None -> "none" | Some c -> string_of_int c)
  in
  QCheck2.Test.make ~name:"kill-and-replay recovers materialized extents"
    ~count:20 ~print gen (fun (n, ck) ->
      let prefix = List.filteri (fun i _ -> i < n) replay_statements in
      let checkpoint_at = match ck with Some c when c <= n -> Some c | _ -> None in
      let db = temp_db () in
      Fun.protect
        ~finally:(fun () -> cleanup db)
        (fun () ->
          let session, handle, _ = Wal.Manager.recover ~sync:false ~db () in
          List.iteri
            (fun i stmt ->
              exec session stmt;
              Wal.Manager.log handle stmt;
              if checkpoint_at = Some (i + 1) then
                Wal.Manager.checkpoint handle session)
            prefix;
          (* crash: abandon the session, recover from checkpoint + log *)
          Wal.Manager.close handle;
          let recovered, handle2, _ = Wal.Manager.recover ~sync:false ~db () in
          Wal.Manager.close handle2;
          let oracle = Session.create () in
          List.iter (exec oracle) prefix;
          let got = Storage.dump recovered and want = Storage.dump oracle in
          if got <> want then
            QCheck2.Test.fail_reportf "recovered dump differs:@.%s@.vs@.%s" got
              want;
          (* extents keep maintaining after recovery *)
          if n >= List.length replay_statements then begin
            exec recovered "INSERT INTO EDGE VALUES (5, 6)";
            exec oracle "INSERT INTO EDGE VALUES (5, 6)";
            Storage.dump recovered = Storage.dump oracle
          end
          else true))

let suite =
  [
    Alcotest.test_case "join view: insert/delete/update" `Quick
      test_nonrecursive_maintenance;
    Alcotest.test_case "recursive view: semi-naive + delete-rederive" `Quick
      test_recursive_maintenance;
    Alcotest.test_case "non-monotone view falls back to recompute" `Quick
      test_nonmonotone_fallback;
    Alcotest.test_case "stacked views, one publish per DML" `Quick
      test_stacked_views;
    Alcotest.test_case "EXPLAIN ANALYZE tags mview scans" `Quick
      test_explain_analyze_tags_mviews;
    Alcotest.test_case "shared fix cache invalidates per relation" `Quick
      test_shared_fix_cache;
    Alcotest.test_case "columnar enum flavor" `Quick test_columnar_enum;
    Alcotest.test_case "storage round trip preserves extents" `Quick
      test_storage_round_trip;
    QCheck_alcotest.to_alcotest prop_maintenance_matches_recompute;
    QCheck_alcotest.to_alcotest prop_kill_and_replay;
  ]
