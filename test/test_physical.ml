(* The physical evaluation layer (Eval.Physical): the indexed hash-join
   evaluator against the naive cartesian reference, and the parallel
   partitioned evaluator against both.

   - golden cross-mode suite: on every fixture plan, Naive, Indexed and
     Parallel (at several domain counts) produce Relation.equal results;
   - work bounds: the Figure-8-shaped selective join stays within a
     hash-work budget that the naive layer exceeds by orders of
     magnitude;
   - set-operation operand validation (union/diff/inter arity errors);
   - Join_plan equi-conjunct extraction;
   - a qcheck property over random schema-correct LERA plans: all four
     configurations (Naive, boxed Indexed, columnar Indexed, columnar
     Parallel) agree, the indexed layer's combinations and probes never
     exceed the naive layer's combinations, and the parallel layer's
     aggregated counters equal the indexed layer's exactly at every
     domain count in {1, 2, 4};
   - determinism: two Parallel runs at d=4 produce identical relations
     and identical aggregated work counters;
   - columnar activation: qualifying all-scalar plans actually take the
     vectorized paths (columnar_ops > 0) and mixed-flavor or
     disqualified inputs fall back with identical results. *)

module Value = Eds_value.Value
module Vtype = Eds_value.Vtype
module Lera = Eds_lera.Lera
module Relation = Eds_engine.Relation
module Database = Eds_engine.Database
module Eval = Eds_engine.Eval
module Join_plan = Eds_engine.Join_plan

(* boxed runs: ~columnar:false pins the representation so the matrix
   below stays meaningful even though EDS_COLUMNAR defaults on *)
let run_both ?mode db rel =
  let sn = Eval.fresh_stats () and si = Eval.fresh_stats () in
  let rn = Eval.run ?mode ~physical:Eval.Physical.Naive ~stats:sn db rel in
  let ri =
    Eval.run ?mode ~physical:Eval.Physical.Indexed ~columnar:false ~stats:si db
      rel
  in
  ((rn, sn), (ri, si))

let run_parallel ?mode ~domains db rel =
  let sp = Eval.fresh_stats () in
  let rp =
    Eval.run ?mode ~physical:Eval.Physical.Parallel ~domains ~columnar:false
      ~stats:sp db rel
  in
  (rp, sp)

let run_columnar ?mode ?domains ~physical db rel =
  let s = Eval.fresh_stats () in
  let r = Eval.run ?mode ?domains ~physical ~columnar:true ~stats:s db rel in
  (r, s)

(* every counter, including the hash work and the fix-cache ones: the
   parallel layer must aggregate to exactly the indexed totals *)
let stats_equal (a : Eval.stats) (b : Eval.stats) =
  a.Eval.combinations = b.Eval.combinations
  && a.Eval.tuples_read = b.Eval.tuples_read
  && a.Eval.tuples_produced = b.Eval.tuples_produced
  && a.Eval.fix_iterations = b.Eval.fix_iterations
  && a.Eval.probes = b.Eval.probes
  && a.Eval.builds = b.Eval.builds
  && a.Eval.fix_cache_hits = b.Eval.fix_cache_hits
  && a.Eval.fix_cache_misses = b.Eval.fix_cache_misses

let check_agree ?mode name db rel =
  let (rn, sn), (ri, si) = run_both ?mode db rel in
  Alcotest.(check bool) (name ^ ": results equal") true (Relation.equal rn ri);
  Alcotest.(check bool)
    (Fmt.str "%s: indexed combos %d <= naive combos %d" name si.Eval.combinations
       sn.Eval.combinations)
    true
    (si.Eval.combinations <= sn.Eval.combinations);
  Alcotest.(check bool)
    (Fmt.str "%s: probes %d <= naive combos %d" name si.Eval.probes
       sn.Eval.combinations)
    true
    (si.Eval.probes <= sn.Eval.combinations);
  List.iter
    (fun domains ->
      let rp, sp = run_parallel ?mode ~domains db rel in
      Alcotest.(check bool)
        (Fmt.str "%s: parallel(d=%d) equals indexed" name domains)
        true (Relation.equal ri rp);
      Alcotest.(check bool)
        (Fmt.str "%s: parallel(d=%d) counters equal indexed (%a vs %a)" name
           domains Eval.pp_stats sp Eval.pp_stats si)
        true (stats_equal sp si))
    [ 1; 2; 4 ];
  let rc, sc = run_columnar ?mode ~physical:Eval.Physical.Indexed db rel in
  Alcotest.(check bool)
    (name ^ ": columnar indexed equals boxed indexed")
    true (Relation.equal ri rc);
  Alcotest.(check bool)
    (Fmt.str "%s: columnar counters equal boxed (%a vs %a)" name Eval.pp_stats
       sc Eval.pp_stats si)
    true (stats_equal sc si);
  List.iter
    (fun domains ->
      let rp, sp =
        run_columnar ?mode ~domains ~physical:Eval.Physical.Parallel db rel
      in
      Alcotest.(check bool)
        (Fmt.str "%s: columnar parallel(d=%d) equals indexed" name domains)
        true (Relation.equal ri rp);
      Alcotest.(check bool)
        (Fmt.str "%s: columnar parallel(d=%d) counters equal indexed (%a vs %a)"
           name domains Eval.pp_stats sp Eval.pp_stats si)
        true (stats_equal sp si))
    [ 1; 2; 4 ]

(* -- golden cross-mode fixtures ----------------------------------------- *)

let test_golden_film () =
  let db, _ = Fixtures.film_db () in
  let join =
    Lera.Search
      ( [ Lera.Base "FILM"; Lera.Base "APPEARS_IN" ],
        Lera.conj
          [
            Lera.eq (Lera.col 1 1) (Lera.col 2 1);
            Lera.Call (">", [ Lera.Call ("salary", [ Lera.col 2 2 ]); Lera.Cst (Value.Real 10_000.) ]);
          ],
        [ Lera.col 1 2; Lera.col 2 2 ] )
  in
  check_agree "film join + ADT residual" db join;
  let three_way =
    Lera.Search
      ( [ Lera.Base "FILM"; Lera.Base "APPEARS_IN"; Lera.Base "DOMINATE" ],
        Lera.conj
          [
            Lera.eq (Lera.col 1 1) (Lera.col 2 1);
            Lera.eq (Lera.col 2 1) (Lera.col 3 1);
          ],
        [ Lera.col 1 2; Lera.col 3 2 ] )
  in
  check_agree "three-way join" db three_way;
  (* no equi conjunct at all: indexed falls back to cartesian *)
  let cross =
    Lera.Join
      ( Lera.Base "FILM",
        Lera.Base "APPEARS_IN",
        Lera.Call ("<", [ Lera.col 1 1; Lera.col 2 1 ]) )
  in
  check_agree "inequality join (cartesian fallback)" db cross

let tc_fix =
  Lera.Fix
    ( "TC",
      Lera.Union
        [
          Lera.Base "EDGE";
          Lera.Search
            ( [ Lera.Base "TC"; Lera.Base "TC" ],
              Lera.eq (Lera.col 1 2) (Lera.col 2 1),
              [ Lera.col 1 1; Lera.col 2 2 ] );
        ] )

let test_golden_fixpoints () =
  let db = Fixtures.chain_db 12 in
  check_agree ~mode:Eval.Seminaive "chain closure, semi-naive" db tc_fix;
  check_agree ~mode:Eval.Naive "chain closure, naive fix" db tc_fix;
  let g = Fixtures.graph_db ~nodes:15 ~edges:40 in
  let reach =
    Lera.Search
      ( [ tc_fix ],
        Lera.eq (Lera.col 1 1) (Lera.Cst (Value.Int 3)),
        [ Lera.col 1 2 ] )
  in
  check_agree "graph reachability" g reach;
  (* the two physical layers must also agree across fix modes *)
  let r1 = Eval.run ~mode:Eval.Naive ~physical:Eval.Physical.Naive db tc_fix in
  let r2 = Eval.run ~mode:Eval.Seminaive ~physical:Eval.Physical.Indexed db tc_fix in
  Alcotest.(check bool) "naive/naive = seminaive/indexed" true (Relation.equal r1 r2)

let test_golden_nest_unnest () =
  let db, _ = Fixtures.film_db () in
  let nested = Lera.Nest (Lera.Base "APPEARS_IN", [ 1 ], [ 2 ]) in
  check_agree "nest" db nested;
  check_agree "unnest of nest" db (Lera.Unnest (nested, 2));
  check_agree "diff/inter"
    db
    (Lera.Diff
       ( Lera.Project (Lera.Base "APPEARS_IN", [ Lera.col 1 1 ]),
         Lera.Inter
           ( Lera.Project (Lera.Base "FILM", [ Lera.col 1 1 ]),
             Lera.Project (Lera.Base "APPEARS_IN", [ Lera.col 1 1 ]) ) ))

(* -- the Figure-8 shape within a hash-work budget ------------------------ *)

let fig8_shape_db () =
  let db = Database.create () in
  let schema a b = [ (a, Vtype.Int); (b, Vtype.Int) ] in
  let state = ref 987654321 in
  let rng bound =
    state := (!state * 1103515245) + 12345;
    abs !state mod bound
  in
  Database.add_relation db "FILM"
    (Relation.make (schema "Numf" "X")
       (List.init 200 (fun f -> [ Value.Int (f + 1); Value.Int f ])));
  Database.add_relation db "APPEARS_IN"
    (Relation.make (schema "Numf" "Actor")
       (List.init 594 (fun i -> [ Value.Int (1 + rng 200); Value.Int i ])));
  db

let test_fig8_budget () =
  let db = fig8_shape_db () in
  (* the unrewritten selective join: constant selection still buried in
     the qualification *)
  let q =
    Lera.Search
      ( [ Lera.Base "FILM"; Lera.Base "APPEARS_IN" ],
        Lera.conj
          [
            Lera.eq (Lera.col 1 1) (Lera.col 2 1);
            Lera.eq (Lera.col 1 1) (Lera.Cst (Value.Int 7));
          ],
        [ Lera.col 1 2; Lera.col 2 2 ] )
  in
  let (rn, sn), (ri, si) = run_both db q in
  Alcotest.(check bool) "results equal" true (Relation.equal rn ri);
  Alcotest.(check int) "naive enumerates the full product" (200 * 594)
    sn.Eval.combinations;
  Alcotest.(check bool)
    (Fmt.str "indexed hash work %d+%d within the 2000 budget" si.Eval.probes
       si.Eval.builds)
    true
    (si.Eval.probes + si.Eval.builds <= 2_000)

(* -- set-operation operand validation ------------------------------------ *)

let contains s sub =
  let n = String.length sub and k = String.length s in
  let rec at i = i + n <= k && (String.sub s i n = sub || at (i + 1)) in
  at 0

let test_setop_arity_errors () =
  let two = [ ("A", Vtype.Int); ("B", Vtype.Int) ] in
  let three = [ ("A", Vtype.Int); ("B", Vtype.Int); ("C", Vtype.Int) ] in
  let r2 = Relation.make two [ [ Value.Int 1; Value.Int 2 ] ] in
  let r3 = Relation.make three [ [ Value.Int 1; Value.Int 2; Value.Int 3 ] ] in
  let raises name f =
    Alcotest.(check bool) (name ^ " raises Invalid_argument") true
      (try
         ignore (f ());
         false
       with Invalid_argument msg ->
         (* the message names the operation and both arities *)
         contains msg name && contains msg "2 vs 3")
  in
  raises "union" (fun () -> Relation.union r2 r3);
  raises "diff" (fun () -> Relation.diff r2 r3);
  raises "inter" (fun () -> Relation.inter r2 r3);
  (* agreeing operands still work *)
  Alcotest.(check int) "union of compatible operands" 1
    (Relation.cardinality (Relation.union r2 r2))

(* -- Join_plan extraction ------------------------------------------------ *)

let test_join_plan_analyze () =
  let q =
    Lera.conj
      [
        Lera.eq (Lera.col 1 2) (Lera.col 2 1);
        Lera.eq (Lera.col 1 1) (Lera.Cst (Value.Int 3));
        Lera.eq (Lera.col 2 2) (Lera.col 2 1);
        Lera.Call ("<", [ Lera.col 1 1; Lera.col 2 2 ]);
      ]
  in
  let p = Join_plan.analyze ~operands:2 q in
  Alcotest.(check int) "one equi conjunct" 1 (Join_plan.equi_count p);
  Alcotest.(check int) "three residual conjuncts" 3
    (List.length (Lera.conjuncts (Join_plan.residual p)));
  (* a col=col pair that refers outside the operand range is residual *)
  let p1 = Join_plan.analyze ~operands:1 (Lera.eq (Lera.col 1 2) (Lera.col 2 1)) in
  Alcotest.(check bool) "out-of-range pair is not an equi" false
    (Join_plan.has_equis p1);
  let p0 = Join_plan.analyze ~operands:2 Lera.tru in
  Alcotest.(check bool) "true has no equis" false (Join_plan.has_equis p0)

(* -- random plans: the cross-layer property ------------------------------ *)

(* the plan/instance generators now live in lib/rulelab/gen.ml so the
   rule verifier draws from the same distribution as this suite *)
module Gen = Eds_rulelab.Gen

let qdb () = Gen.db ()
let gen_plan = Gen.gen_plan
let print_plan = Gen.print_plan

let test_random_plans_agree =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make
       ~name:
         "naive, boxed/columnar indexed and parallel agree on 250 random plans"
       ~count:250 ~print:print_plan gen_plan
       (fun (rel, _) ->
         let db = qdb () in
         let (rn, sn), (ri, si) = run_both db rel in
         let rc, sc = run_columnar ~physical:Eval.Physical.Indexed db rel in
         Relation.equal rn ri
         && Relation.equal ri rc
         && stats_equal sc si
         && si.Eval.combinations <= sn.Eval.combinations
         && si.Eval.probes <= sn.Eval.combinations
         && List.for_all
              (fun domains ->
                let rp, sp = run_parallel ~domains db rel in
                let rpc, spc =
                  run_columnar ~domains ~physical:Eval.Physical.Parallel db rel
                in
                Relation.equal ri rp && stats_equal sp si
                && Relation.equal ri rpc && stats_equal spc si)
              [ 1; 2; 4 ]))

(* -- columnar activation and representation normalization ---------------- *)

(* the vectorized paths must actually fire on qualifying all-scalar
   plans: a silent universal fallback would keep every parity test green
   while losing the whole point of the layer *)
let test_columnar_fires () =
  let db = fig8_shape_db () in
  let join =
    Lera.Search
      ( [ Lera.Base "FILM"; Lera.Base "APPEARS_IN" ],
        Lera.eq (Lera.col 1 1) (Lera.col 2 1),
        [ Lera.col 1 2; Lera.col 2 2 ] )
  in
  let check_fires name plan =
    let _, s = run_columnar ~physical:Eval.Physical.Indexed db plan in
    Alcotest.(check bool)
      (Fmt.str "%s: columnar_ops %d > 0" name s.Eval.columnar_ops)
      true
      (s.Eval.columnar_ops > 0)
  in
  check_fires "hash join" join;
  check_fires "filter"
    (Lera.Filter
       (Lera.Base "FILM", Lera.eq (Lera.col 1 1) (Lera.Cst (Value.Int 7))));
  check_fires "project" (Lera.Project (Lera.Base "FILM", [ Lera.col 1 2 ]));
  check_fires "diff"
    (Lera.Diff
       ( Lera.Project (Lera.Base "APPEARS_IN", [ Lera.col 1 1 ]),
         Lera.Project (Lera.Base "FILM", [ Lera.col 1 1 ]) ));
  let tc_db = Fixtures.chain_db 12 in
  let _, s = run_columnar ~physical:Eval.Physical.Indexed tc_db tc_fix in
  Alcotest.(check bool)
    (Fmt.str "semi-naive closure: columnar_ops %d > 0" s.Eval.columnar_ops)
    true
    (s.Eval.columnar_ops > 0);
  (* the switch really is a switch *)
  let _, s0 =
    let st = Eval.fresh_stats () in
    ( Eval.run ~physical:Eval.Physical.Indexed ~columnar:false ~stats:st db join,
      st )
  in
  Alcotest.(check int) "boxed run takes no columnar path" 0 s0.Eval.columnar_ops;
  (* Naive is the boxed oracle: the flag must not reach it *)
  let sn = Eval.fresh_stats () in
  ignore (Eval.run ~physical:Eval.Physical.Naive ~columnar:true ~stats:sn db join);
  Alcotest.(check int) "naive never goes columnar" 0 sn.Eval.columnar_ops

(* mixed-flavor operands (Int column vs Real column) must fall back:
   the packed-key path cannot see Value.compare's Int/Real
   cross-equality, so parity here proves the flavor gate works *)
let test_columnar_mixed_flavor () =
  let db = Database.create () in
  let num = [ ("A", Vtype.Int); ("B", Vtype.Int) ] in
  Database.add_relation db "RI"
    (Relation.make num
       (List.init 20 (fun i -> [ Value.Int i; Value.Int (i * i) ])));
  Database.add_relation db "RF"
    (Relation.make num
       (List.init 20 (fun i -> [ Value.Real (float_of_int i); Value.Int i ])));
  let join =
    Lera.Search
      ( [ Lera.Base "RI"; Lera.Base "RF" ],
        Lera.eq (Lera.col 1 1) (Lera.col 2 1),
        [ Lera.col 1 2; Lera.col 2 2 ] )
  in
  check_agree "Int/Real cross-equality join" db join;
  check_agree "Int/Real diff" db
    (Lera.Diff
       ( Lera.Project (Lera.Base "RI", [ Lera.col 1 1 ]),
         Lera.Project (Lera.Base "RF", [ Lera.col 1 1 ]) ));
  (* same-flavor float keys, including the -0./NaN normal forms *)
  let dbf = Database.create () in
  Database.add_relation dbf "F1"
    (Relation.make num
       [
         [ Value.Real 0.; Value.Int 1 ];
         [ Value.Real (-0.); Value.Int 2 ];
         [ Value.Real 2.5; Value.Int 3 ];
         [ Value.Real Float.nan; Value.Int 4 ];
       ]);
  Database.add_relation dbf "F2"
    (Relation.make num
       [
         [ Value.Real (-0.); Value.Int 10 ];
         [ Value.Real 2.5; Value.Int 20 ];
         [ Value.Real Float.nan; Value.Int 30 ];
       ]);
  check_agree "float-keyed join (-0./NaN)" dbf
    (Lera.Search
       ( [ Lera.Base "F1"; Lera.Base "F2" ],
         Lera.eq (Lera.col 1 1) (Lera.col 2 1),
         [ Lera.col 1 2; Lera.col 2 2 ] ))

(* satellite: set operations must re-derive the columnar layout from the
   result's content — union with an empty or boxed-only side must not
   drop (or wrongly keep) the shadow *)
let test_union_layout_normalized () =
  let two = [ ("A", Vtype.Int); ("B", Vtype.Int) ] in
  let ri =
    Relation.make two (List.init 5 (fun i -> [ Value.Int i; Value.Int (i + 1) ]))
  in
  let re = Relation.empty two in
  let mixed = Relation.make two [ [ Value.Null; Value.Int 9 ] ] in
  let has_cols r = Relation.columns r <> None in
  Alcotest.(check bool) "columnar side qualifies" true (has_cols ri);
  Alcotest.(check bool) "empty side has no shadow" false (has_cols re);
  Alcotest.(check bool) "empty ∪ columnar keeps the layout" true
    (has_cols (Relation.union re ri));
  Alcotest.(check bool) "columnar ∪ empty keeps the layout" true
    (has_cols (Relation.union ri re));
  Alcotest.(check bool) "columnar ∪ boxed is boxed (Null present)" false
    (has_cols (Relation.union ri mixed));
  Alcotest.(check bool) "boxed ∖ columnar stays boxed" false
    (has_cols (Relation.diff mixed ri));
  Alcotest.(check bool) "columnar ∖ boxed keeps the layout" true
    (has_cols (Relation.diff ri mixed));
  Alcotest.(check bool) "inter re-derives the layout" true
    (has_cols (Relation.inter ri ri));
  (* subset extraction preserves canonical order and the shadow *)
  let sub = Relation.filteri (fun i _ -> i mod 2 = 0) ri in
  Alcotest.(check int) "filteri keeps the kept rows" 3 (Relation.cardinality sub);
  Alcotest.(check bool) "filteri result has a shadow" true (has_cols sub)

(* -- parallel determinism ------------------------------------------------ *)

let test_parallel_determinism () =
  let plans =
    [
      ("chain closure", Fixtures.chain_db 12, tc_fix);
      ( "fig8 join",
        fig8_shape_db (),
        Lera.Search
          ( [ Lera.Base "FILM"; Lera.Base "APPEARS_IN" ],
            Lera.eq (Lera.col 1 1) (Lera.col 2 1),
            [ Lera.col 1 2; Lera.col 2 2 ] ) );
    ]
  in
  List.iter
    (fun (name, db, rel) ->
      let r1, s1 = run_parallel ~domains:4 db rel in
      let r2, s2 = run_parallel ~domains:4 db rel in
      Alcotest.(check bool)
        (name ^ ": two d=4 runs produce identical relations")
        true (Relation.equal r1 r2);
      Alcotest.(check bool)
        (Fmt.str "%s: two d=4 runs produce identical counters (%a vs %a)" name
           Eval.pp_stats s1 Eval.pp_stats s2)
        true (stats_equal s1 s2))
    plans

let suite =
  [
    Alcotest.test_case "golden: film joins" `Quick test_golden_film;
    Alcotest.test_case "golden: fixpoints" `Quick test_golden_fixpoints;
    Alcotest.test_case "golden: nest/unnest/set ops" `Quick test_golden_nest_unnest;
    Alcotest.test_case "Fig. 8 shape within hash budget" `Quick test_fig8_budget;
    Alcotest.test_case "set-op arity validation" `Quick test_setop_arity_errors;
    Alcotest.test_case "join plan extraction" `Quick test_join_plan_analyze;
    test_random_plans_agree;
    Alcotest.test_case "columnar paths fire on qualifying plans" `Quick
      test_columnar_fires;
    Alcotest.test_case "columnar flavor gate and float keys" `Quick
      test_columnar_mixed_flavor;
    Alcotest.test_case "set ops normalize columnar layout" `Quick
      test_union_layout_normalized;
    Alcotest.test_case "parallel determinism at d=4" `Quick
      test_parallel_determinism;
  ]
