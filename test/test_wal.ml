(* Tests for the write-ahead log: frame round-trips, torn-tail and
   corruption handling, the checkpoint/recovery manager with its epoch
   fencing, and a qcheck kill-and-replay property — any committed prefix
   of the server workload, with or without an interleaved checkpoint,
   recovers byte-identical to an oracle that never crashed. *)

module Session = Eds.Session
module Storage = Eds.Storage
module Wal = Eds.Wal
module Eval = Eds_engine.Eval
module Relation = Eds_engine.Relation
module Loadtest = Eds_server.Loadtest

let temp_db () =
  let path = Filename.temp_file "eds_wal" ".esql" in
  Sys.remove path;  (* recovery must cope with a missing checkpoint *)
  path

let cleanup db =
  List.iter
    (fun p -> if Sys.file_exists p then Sys.remove p)
    [ db; db ^ ".tmp"; Wal.Manager.wal_path db ]

let with_db f =
  let db = temp_db () in
  Fun.protect ~finally:(fun () -> cleanup db) (fun () -> f db)

let read_file path = In_channel.with_open_bin path In_channel.input_all

let append_raw path bytes =
  let oc = Out_channel.open_gen [ Open_append; Open_binary ] 0o644 path in
  Out_channel.output_string oc bytes;
  Out_channel.close oc

(* -- framed log ----------------------------------------------------------- *)

let test_append_scan_round_trip () =
  with_db (fun db ->
      let path = Wal.Manager.wal_path db in
      let wal = Wal.open_log ~sync:false path in
      let payloads = [ "one"; ""; "three statements"; String.make 1000 'x' ] in
      List.iter (Wal.append wal) payloads;
      Wal.close wal;
      let seen = ref [] in
      let r = Wal.scan path (fun p -> seen := p :: !seen) in
      Alcotest.(check (list string)) "payloads in order" payloads (List.rev !seen);
      Alcotest.(check int) "applied" (List.length payloads) r.Wal.applied;
      Alcotest.(check int) "no torn bytes" 0 r.Wal.torn_bytes)

let test_torn_tail_truncated_on_open () =
  with_db (fun db ->
      let path = Wal.Manager.wal_path db in
      let wal = Wal.open_log ~sync:false path in
      Wal.append wal "intact";
      Wal.close wal;
      (* a crash mid-append: a header promising more bytes than exist *)
      append_raw path "\042\000\000\000XXXX partial";
      let r = Wal.scan path ignore in
      Alcotest.(check int) "only the intact record" 1 r.Wal.applied;
      Alcotest.(check bool) "tail detected" true (r.Wal.torn_bytes > 0);
      (* reopening truncates the tail and appends after the survivor *)
      let wal = Wal.open_log ~sync:false path in
      Alcotest.(check int) "reopened sees 1 record" 1 (Wal.records wal);
      Wal.append wal "after crash";
      Wal.close wal;
      let seen = ref [] in
      ignore (Wal.scan path (fun p -> seen := p :: !seen));
      Alcotest.(check (list string))
        "append lands after the survivor"
        [ "intact"; "after crash" ]
        (List.rev !seen))

let test_corrupt_record_stops_replay () =
  with_db (fun db ->
      let path = Wal.Manager.wal_path db in
      let wal = Wal.open_log ~sync:false path in
      List.iter (Wal.append wal) [ "good 1"; "good 2"; "good 3" ];
      Wal.close wal;
      (* flip one payload byte of the second record in place *)
      let data = Bytes.of_string (read_file path) in
      let second_payload = 8 + String.length "good 1" + 8 in
      Bytes.set data second_payload 'X';
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_bytes oc data);
      let seen = ref [] in
      let r = Wal.scan path (fun p -> seen := p :: !seen) in
      Alcotest.(check (list string)) "replay stops at corruption" [ "good 1" ]
        (List.rev !seen);
      Alcotest.(check bool) "corrupt suffix reported" true (r.Wal.torn_bytes > 0))

let test_oversized_record_rejected () =
  with_db (fun db ->
      let wal = Wal.open_log ~sync:false (Wal.Manager.wal_path db) in
      Fun.protect
        ~finally:(fun () -> Wal.close wal)
        (fun () ->
          Alcotest.(check bool) "oversized append raises" true
            (try
               Wal.append wal (String.make ((1 lsl 26) + 1) 'x');
               false
             with Wal.Wal_error _ -> true)))

let test_crc32_known_value () =
  (* the standard check value for CRC-32/IEEE *)
  Alcotest.(check int32) "crc32 of '123456789'" 0xCBF43926l (Wal.crc32 "123456789")

(* With sync on, concurrent appenders elect a group-commit leader: every
   commit waits for durability, but the fsyncs are shared.  The hard
   invariants are fsyncs ≤ commits and no record lost; actual batching
   (fsyncs < commits) depends on scheduling, so it is reported but not
   asserted. *)
let test_group_commit_shares_fsyncs () =
  with_db (fun db ->
      let path = Wal.Manager.wal_path db in
      let wal = Wal.open_log ~sync:true path in
      let clients = 8 and per_client = 25 in
      let threads =
        List.init clients (fun i ->
            Thread.create
              (fun () ->
                for j = 0 to per_client - 1 do
                  Wal.append wal (Printf.sprintf "c%d-%d" i j)
                done)
              ())
      in
      List.iter Thread.join threads;
      let commits = Wal.commits wal and fsyncs = Wal.fsyncs wal in
      Wal.close wal;
      Alcotest.(check int) "every append committed" (clients * per_client) commits;
      Alcotest.(check bool) "at least one fsync" true (fsyncs >= 1);
      Alcotest.(check bool) "fsyncs never exceed commits" true (fsyncs <= commits);
      let r = Wal.scan path ignore in
      Alcotest.(check int) "no record lost" (clients * per_client) r.Wal.applied;
      Alcotest.(check int) "no torn bytes" 0 r.Wal.torn_bytes)

(* The split commit protocol the server uses: append under its write
   lock, sync after release.  A watermark below the current one must be
   satisfiable by a later leader's fsync. *)
let test_nosync_then_sync_to () =
  with_db (fun db ->
      let wal = Wal.open_log ~sync:true (Wal.Manager.wal_path db) in
      let w1 = Wal.append_nosync wal "first" in
      let w2 = Wal.append_nosync wal "second" in
      Alcotest.(check bool) "watermarks increase" true (w2 > w1);
      Wal.sync_to wal w2;
      (* w1 < w2 is already durable: this must return without an fsync *)
      let fsyncs_before = Wal.fsyncs wal in
      Wal.sync_to wal w1;
      Alcotest.(check int) "covered watermark needs no new fsync"
        fsyncs_before (Wal.fsyncs wal);
      Alcotest.(check int) "both sync_to calls counted as commits" 2
        (Wal.commits wal);
      Wal.close wal)

(* -- manager: recovery, checkpointing, epoch fencing ---------------------- *)

let exec session stmt = ignore (Session.exec_string session stmt)

let dump_of_recovery db =
  let session, handle, _ = Wal.Manager.recover ~sync:false ~db () in
  let text = Storage.dump session in
  Wal.Manager.close handle;
  text

let test_recover_fresh_then_log_then_replay () =
  with_db (fun db ->
      let session, handle, replayed = Wal.Manager.recover ~sync:false ~db () in
      Alcotest.(check int) "nothing to replay on first boot" 0 replayed;
      let stmts =
        [
          "TABLE NUMS (N : INT)";
          "INSERT INTO NUMS VALUES (1)";
          "INSERT INTO NUMS VALUES (2)";
        ]
      in
      List.iter
        (fun stmt ->
          exec session stmt;
          Wal.Manager.log handle stmt)
        stmts;
      let want = Storage.dump session in
      Wal.Manager.close handle;
      (* "kill -9": no checkpoint was ever written *)
      Alcotest.(check bool) "no checkpoint file" false (Sys.file_exists db);
      let session', handle', replayed' = Wal.Manager.recover ~sync:false ~db () in
      Alcotest.(check int) "all statements replayed" 3 replayed';
      Alcotest.(check string) "byte-identical recovery" want (Storage.dump session');
      Wal.Manager.close handle')

let test_checkpoint_truncates_and_replays_nothing () =
  with_db (fun db ->
      let session, handle, _ = Wal.Manager.recover ~sync:false ~db () in
      exec session "TABLE NUMS (N : INT)";
      Wal.Manager.log handle "TABLE NUMS (N : INT)";
      exec session "INSERT INTO NUMS VALUES (7)";
      Wal.Manager.log handle "INSERT INTO NUMS VALUES (7)";
      Alcotest.(check int) "2 records before checkpoint" 2
        (Wal.Manager.stats handle).Wal.Manager.wal_records;
      Wal.Manager.checkpoint handle session;
      Alcotest.(check int) "log truncated" 0
        (Wal.Manager.stats handle).Wal.Manager.wal_records;
      Alcotest.(check int) "epoch bumped" 1
        (Wal.Manager.stats handle).Wal.Manager.epoch;
      let want = Storage.dump session in
      Wal.Manager.close handle;
      let session', handle', replayed = Wal.Manager.recover ~sync:false ~db () in
      Alcotest.(check int) "checkpoint boot replays nothing" 0 replayed;
      Alcotest.(check string) "checkpoint state intact" want (Storage.dump session');
      Wal.Manager.close handle')

(* the crash window checkpoint is fenced against: new dump renamed into
   place, crash before the log truncate.  The stale log must NOT replay
   (its statements are already inside the checkpoint — a second UPDATE
   application would corrupt). *)
let test_stale_epoch_log_discarded () =
  with_db (fun db ->
      let session, handle, _ = Wal.Manager.recover ~sync:false ~db () in
      let stmts =
        [
          "TABLE ACCT (Id : INT, Bal : INT)";
          "INSERT INTO ACCT VALUES (1, 100)";
          (* non-idempotent: replaying it twice would yield 300 *)
          "UPDATE ACCT SET Bal = Bal + 100 WHERE Id = 1";
        ]
      in
      List.iter
        (fun stmt ->
          exec session stmt;
          Wal.Manager.log handle stmt)
        stmts;
      let stale_log = read_file (Wal.Manager.wal_path db) in
      Wal.Manager.checkpoint handle session;
      let want = Storage.dump session in
      Wal.Manager.close handle;
      (* crash re-enactment: the pre-checkpoint log reappears next to
         the post-checkpoint dump *)
      Out_channel.with_open_bin (Wal.Manager.wal_path db) (fun oc ->
          Out_channel.output_string oc stale_log);
      let session', handle', replayed = Wal.Manager.recover ~sync:false ~db () in
      Alcotest.(check int) "stale log not replayed" 0 replayed;
      Alcotest.(check string) "balance not double-applied" want
        (Storage.dump session');
      Alcotest.(check int) "Bal is 200, not 300" 1
        (Relation.cardinality
           (Session.query session' "SELECT Id FROM ACCT WHERE Bal = 200"));
      Wal.Manager.close handle')

let test_recover_plain_save_without_wal () =
  (* a dump written by plain Storage.save (no epoch line) plus no log:
     the manager must boot it as epoch 0 and keep working *)
  with_db (fun db ->
      let s = Session.create () in
      exec s "TABLE NUMS (N : INT)";
      exec s "INSERT INTO NUMS VALUES (5)";
      Storage.save s db;
      let session, handle, replayed = Wal.Manager.recover ~sync:false ~db () in
      Alcotest.(check int) "nothing replayed" 0 replayed;
      Alcotest.(check int) "epoch 0" 0 (Wal.Manager.stats handle).Wal.Manager.epoch;
      Alcotest.(check int) "data present" 1
        (Relation.cardinality (Session.query session "SELECT N FROM NUMS"));
      Wal.Manager.close handle)

(* -- kill-and-replay property --------------------------------------------- *)

(* Run a random committed prefix of the server workload through a
   logged session, optionally checkpointing at a random midpoint, then
   "kill -9" (drop the session, keep the files) and recover: the
   recovered database must dump byte-identical to an oracle session
   that executed the same prefix without ever crashing — and answer a
   workload query identically under every physical layer. *)
let prop_kill_and_replay =
  let gen =
    QCheck2.Gen.(
      pair
        (int_range 0 (List.length Loadtest.setup_statements))
        (option (int_range 0 (List.length Loadtest.setup_statements))))
  in
  let print (n, ck) =
    Printf.sprintf "prefix=%d checkpoint=%s" n
      (match ck with None -> "none" | Some c -> string_of_int c)
  in
  QCheck2.Test.make ~name:"wal kill-and-replay recovers committed prefix"
    ~count:30 ~print gen (fun (n, ck) ->
      let prefix = List.filteri (fun i _ -> i < n) Loadtest.setup_statements in
      let checkpoint_at = match ck with Some c when c <= n -> Some c | _ -> None in
      let db = temp_db () in
      Fun.protect
        ~finally:(fun () -> cleanup db)
        (fun () ->
          let session, handle, _ = Wal.Manager.recover ~sync:false ~db () in
          List.iteri
            (fun i stmt ->
              exec session stmt;
              Wal.Manager.log handle stmt;
              if checkpoint_at = Some (i + 1) then
                Wal.Manager.checkpoint handle session)
            prefix;
          (* kill -9: the handle is simply abandoned *)
          Wal.Manager.close handle;
          let oracle = Session.create () in
          List.iter (exec oracle) prefix;
          let want = Storage.dump oracle in
          let recovered, handle', _ = Wal.Manager.recover ~sync:false ~db () in
          let got = Storage.dump recovered in
          Wal.Manager.close handle';
          if want <> got then
            QCheck2.Test.fail_reportf "recovered dump differs:@.%s@.vs@.%s" got want;
          (* the recovered state answers queries identically under every
             physical layer (only meaningful once the tables exist) *)
          if n >= 7 then begin
            let q = "SELECT Title FROM FILM WHERE Numf = 11" in
            let render s =
              let buf = Buffer.create 64 in
              let ppf = Format.formatter_of_buffer buf in
              Eds.Repl.print_result ppf (Session.Rows (Session.query s q));
              Format.pp_print_flush ppf ();
              Buffer.contents buf
            in
            let want_rows = render oracle in
            List.iter
              (fun physical ->
                let s' = Storage.restore got in
                Session.set_physical s' physical;
                if physical = Eval.Physical.Parallel then Session.set_domains s' 2;
                if render s' <> want_rows then
                  QCheck2.Test.fail_reportf "layer %s disagrees after recovery"
                    (Eval.Physical.to_string physical))
              [ Eval.Physical.Naive; Eval.Physical.Indexed; Eval.Physical.Parallel ]
          end;
          (* and recovery is idempotent: a second crash-boot is stable *)
          dump_of_recovery db = want))

let suite =
  [
    Alcotest.test_case "append/scan round trip" `Quick test_append_scan_round_trip;
    Alcotest.test_case "torn tail truncated on open" `Quick
      test_torn_tail_truncated_on_open;
    Alcotest.test_case "corrupt record stops replay" `Quick
      test_corrupt_record_stops_replay;
    Alcotest.test_case "oversized record rejected" `Quick
      test_oversized_record_rejected;
    Alcotest.test_case "crc32 known value" `Quick test_crc32_known_value;
    Alcotest.test_case "group commit shares fsyncs" `Quick
      test_group_commit_shares_fsyncs;
    Alcotest.test_case "append_nosync / sync_to split" `Quick
      test_nosync_then_sync_to;
    Alcotest.test_case "recover, log, crash, replay" `Quick
      test_recover_fresh_then_log_then_replay;
    Alcotest.test_case "checkpoint truncates the log" `Quick
      test_checkpoint_truncates_and_replays_nothing;
    Alcotest.test_case "stale-epoch log discarded" `Quick
      test_stale_epoch_log_discarded;
    Alcotest.test_case "plain save boots as epoch 0" `Quick
      test_recover_plain_save_without_wal;
  ]
  @ [ QCheck_alcotest.to_alcotest prop_kill_and_replay ]
