(* Tests for the static cost model: estimates must agree in *shape* with
   the instrumented evaluator (pushed < unpushed, magic < naive on
   selective queries) even though absolute numbers are heuristic. *)

module Value = Eds_value.Value
module Lera = Eds_lera.Lera
module Cost = Eds_lera.Cost
module Database = Eds_engine.Database
module Eval = Eds_engine.Eval
module Optimizer = Eds_rewriter.Optimizer

let env_of db = Database.schema_env db

let card_of db name =
  match Database.relation_opt db name with
  | Some r -> Some (Eds_engine.Relation.cardinality r)
  | None -> None

let estimate db q =
  Cost.estimate ~relation_cardinality:(card_of db) (env_of db) q

let test_selectivity_shapes () =
  let open Lera in
  let col = Lera.col 1 1 in
  let const = Cst (Value.Int 5) in
  Alcotest.(check bool) "eq-const more selective than range" true
    (Cost.selectivity (eq col const) < Cost.selectivity (Call ("<", [ col; const ])));
  Alcotest.(check bool) "conjunction multiplies" true
    (Cost.selectivity (conj [ eq col const; eq (Lera.col 1 2) const ])
    < Cost.selectivity (eq col const));
  Alcotest.(check bool) "disjunction adds" true
    (Cost.selectivity (disj [ eq col const; eq (Lera.col 1 2) const ])
    > Cost.selectivity (eq col const));
  Alcotest.(check (float 0.0001)) "true is 1" 1. (Cost.selectivity tru);
  Alcotest.(check (float 0.0001)) "false is 0" 0. (Cost.selectivity fls);
  Alcotest.(check (float 0.0001)) "not inverts" 0.7
    (Cost.selectivity (Call ("not", [ Call ("<", [ col; const ]) ])))

let test_base_uses_live_cardinality () =
  let db = Fixtures.chain_db 11 in
  let e = estimate db (Lera.Base "EDGE") in
  Alcotest.(check (float 0.01)) "ten edges" 10. e.Cost.cardinality

let test_pushdown_estimated_cheaper () =
  let db = Fixtures.graph_db ~nodes:30 ~edges:120 in
  let sel = Lera.eq (Lera.col 1 1) (Lera.Cst (Value.Int 3)) in
  let unpushed =
    Lera.Search
      ( [ Lera.Base "EDGE"; Lera.Base "EDGE" ],
        Lera.conj [ Lera.eq (Lera.col 1 2) (Lera.col 2 1); sel ],
        [ Lera.col 1 1; Lera.col 2 2 ] )
  in
  let pushed =
    Lera.Search
      ( [ Lera.Filter (Lera.Base "EDGE", sel); Lera.Base "EDGE" ],
        Lera.eq (Lera.col 1 2) (Lera.col 2 1),
        [ Lera.col 1 1; Lera.col 2 2 ] )
  in
  let eu = estimate db unpushed and ep = estimate db pushed in
  Alcotest.(check bool)
    (Fmt.str "pushed (%a) cheaper than unpushed (%a)" Cost.pp ep Cost.pp eu)
    true (ep.Cost.cost < eu.Cost.cost);
  (* and the estimate agrees with the measured ordering *)
  let work q =
    (* naive layer: the estimate models the enumerated space, which the
       indexed hash joins collapse regardless of pushdown *)
    let stats = Eval.fresh_stats () in
    ignore (Eval.run ~physical:Eval.Physical.Naive ~stats db q);
    stats.Eval.combinations
  in
  Alcotest.(check bool) "measured ordering matches" true (work pushed < work unpushed)

let test_estimate_tracks_default_rewriting () =
  (* the default program should never increase the estimated cost on the
     canonical pushdown query *)
  let db = Fixtures.graph_db ~nodes:20 ~edges:60 in
  let q =
    Lera.Search
      ( [ Lera.Base "EDGE"; Lera.Base "EDGE" ],
        Lera.conj
          [
            Lera.eq (Lera.col 1 2) (Lera.col 2 1);
            Lera.eq (Lera.col 1 1) (Lera.Cst (Value.Int 3));
          ],
        [ Lera.col 2 2 ] )
  in
  let ctx = Optimizer.make_ctx (env_of db) in
  let q' = Optimizer.rewrite ctx q in
  let before = estimate db q and after = estimate db q' in
  Alcotest.(check bool)
    (Fmt.str "after (%a) ≤ before (%a)" Cost.pp after Cost.pp before)
    true
    (after.Cost.cost <= before.Cost.cost)

let test_fixpoint_estimate_scales () =
  let db = Fixtures.chain_db 10 in
  let tc =
    Lera.Fix
      ( "TC",
        Lera.Union
          [
            Lera.Base "EDGE";
            Lera.Search
              ( [ Lera.Base "EDGE"; Lera.Rvar "TC" ],
                Lera.eq (Lera.col 1 2) (Lera.col 2 1),
                [ Lera.col 1 1; Lera.col 2 2 ] );
          ] )
  in
  let e_edge = estimate db (Lera.Base "EDGE") in
  let e_tc = estimate db tc in
  Alcotest.(check bool) "closure estimated larger than the base" true
    (e_tc.Cost.cardinality > e_edge.Cost.cardinality);
  Alcotest.(check bool) "fixpoint costs more than one scan" true
    (e_tc.Cost.cost > e_edge.Cost.cost)

(* Session.estimate must see the relation the session actually holds,
   not the default-cardinality fallback: pin the estimate for a freshly
   loaded table *)
let test_session_estimate_uses_loaded_cardinality () =
  let module Session = Eds.Session in
  let s = Session.create () in
  ignore (Session.exec_string s "TABLE T7 (A : INT)");
  for i = 1 to 7 do
    ignore (Session.exec_string s (Fmt.str "INSERT INTO T7 VALUES (%d)" i))
  done;
  let e = Session.estimate s (Lera.Base "T7") in
  Alcotest.(check (float 0.01)) "seven live tuples, not the default" 7.
    e.Cost.cardinality;
  (* an undeclared relation still falls back to the default guess *)
  let e' = Session.estimate s (Lera.Base "NOWHERE") in
  Alcotest.(check bool) "unknown table keeps the fallback" true
    (e'.Cost.cardinality > 7.)

let test_never_raises_on_junk () =
  let db = Database.create () in
  (* unknown relation, unbound rvar: estimates still come back *)
  let e = estimate db (Lera.Filter (Lera.Base "NOWHERE", Lera.tru)) in
  Alcotest.(check bool) "default cardinality" true (e.Cost.cardinality > 0.);
  let e2 = estimate db (Lera.Rvar "LOOSE") in
  Alcotest.(check bool) "rvar default" true (e2.Cost.cardinality > 0.)

let suite =
  [
    Alcotest.test_case "selectivity shapes" `Quick test_selectivity_shapes;
    Alcotest.test_case "live base cardinalities" `Quick test_base_uses_live_cardinality;
    Alcotest.test_case "pushdown estimated cheaper" `Quick test_pushdown_estimated_cheaper;
    Alcotest.test_case "default rewriting never raises estimate" `Quick test_estimate_tracks_default_rewriting;
    Alcotest.test_case "fixpoint estimate scales" `Quick test_fixpoint_estimate_scales;
    Alcotest.test_case "session estimate uses loaded cardinality" `Quick
      test_session_estimate_uses_loaded_cardinality;
    Alcotest.test_case "robust on junk input" `Quick test_never_raises_on_junk;
  ]
