(* Tests for the concurrent query server: the readers-writer lock, the
   LRU plan cache, the cache-keyed planner (generation invalidation),
   the wire protocol, per-query timeouts, admission control and the
   load-test harness. *)

module Value = Eds_value.Value
module Relation = Eds_engine.Relation
module Database = Eds_engine.Database
module Eval = Eds_engine.Eval
module Cancel = Eds_engine.Cancel
module Session = Eds.Session
module Repl = Eds.Repl
module Storage = Eds.Storage
module Wal = Eds.Wal
module Rwlock = Eds_server.Rwlock
module Plan_cache = Eds_server.Plan_cache
module Planner = Eds_server.Planner
module Server = Eds_server.Server
module Client = Eds_server.Client
module Protocol = Eds_server.Protocol
module Loadtest = Eds_server.Loadtest

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec probe i = i + n <= m && (String.sub s i n = affix || probe (i + 1)) in
  n = 0 || probe 0

(* -- rwlock -------------------------------------------------------------- *)

let test_rwlock_readers_share () =
  let rw = Rwlock.create () in
  let inside = Atomic.make 0 in
  let seen_two = Atomic.make false in
  let reader () =
    Rwlock.with_read rw (fun () ->
        Atomic.incr inside;
        let t0 = Unix.gettimeofday () in
        while Atomic.get inside < 2 && Unix.gettimeofday () -. t0 < 2.0 do
          Thread.yield ()
        done;
        if Atomic.get inside >= 2 then Atomic.set seen_two true;
        Atomic.decr inside)
  in
  let t1 = Thread.create reader () in
  let t2 = Thread.create reader () in
  Thread.join t1;
  Thread.join t2;
  Alcotest.(check bool) "two readers held the lock at once" true
    (Atomic.get seen_two)

let test_rwlock_writers_exclude () =
  let rw = Rwlock.create () in
  let counter = ref 0 in
  let writer () =
    for _ = 1 to 5_000 do
      (* unsynchronized incr: only exclusive writers make this exact *)
      Rwlock.with_write rw (fun () -> incr counter)
    done
  in
  let threads = List.init 4 (fun _ -> Thread.create writer ()) in
  List.iter Thread.join threads;
  Alcotest.(check int) "every write-locked increment survived" 20_000 !counter

let test_rwlock_readers_see_invariant () =
  let rw = Rwlock.create () in
  let a = ref 0 and b = ref 0 in
  let broken = Atomic.make false in
  let writer () =
    for i = 1 to 2_000 do
      Rwlock.with_write rw (fun () ->
          a := i;
          Thread.yield ();
          b := i)
    done
  in
  let reader () =
    for _ = 1 to 2_000 do
      Rwlock.with_read rw (fun () -> if !a <> !b then Atomic.set broken true)
    done
  in
  let w = Thread.create writer () in
  let rs = List.init 3 (fun _ -> Thread.create reader ()) in
  Thread.join w;
  List.iter Thread.join rs;
  Alcotest.(check bool) "readers never saw a half-applied write" false
    (Atomic.get broken)

(* -- plan cache ---------------------------------------------------------- *)

let test_plan_cache_lru () =
  let c = Plan_cache.create ~capacity:2 in
  Plan_cache.add c "a" 1;
  Plan_cache.add c "b" 2;
  Alcotest.(check (option int)) "a cached" (Some 1) (Plan_cache.find c "a");
  (* "b" is now the LRU entry; inserting "c" evicts it *)
  Plan_cache.add c "c" 3;
  Alcotest.(check (option int)) "b evicted" None (Plan_cache.find c "b");
  Alcotest.(check (option int)) "a survived" (Some 1) (Plan_cache.find c "a");
  Alcotest.(check (option int)) "c cached" (Some 3) (Plan_cache.find c "c");
  let s = Plan_cache.stats c in
  Alcotest.(check int) "insertions" 3 s.Plan_cache.insertions;
  Alcotest.(check int) "evictions" 1 s.Plan_cache.evictions;
  Alcotest.(check int) "hits" 3 s.Plan_cache.hits;
  Alcotest.(check int) "misses" 1 s.Plan_cache.misses;
  Alcotest.(check int) "size bounded" 2 s.Plan_cache.size;
  Plan_cache.clear c;
  Alcotest.(check int) "cleared" 0 (Plan_cache.stats c).Plan_cache.size;
  Alcotest.(check (option int)) "miss after clear" None (Plan_cache.find c "a")

let test_plan_cache_overwrite () =
  let c = Plan_cache.create ~capacity:2 in
  Plan_cache.add c "a" 1;
  Plan_cache.add c "a" 9;
  Alcotest.(check (option int)) "overwritten in place" (Some 9)
    (Plan_cache.find c "a");
  Alcotest.(check int) "one insertion" 1 (Plan_cache.stats c).Plan_cache.insertions

(* -- planner ------------------------------------------------------------- *)

let test_normalize () =
  Alcotest.(check string) "collapses and strips" "SELECT A FROM P"
    (Planner.normalize "  SELECT\t A \n FROM   P ; ");
  Alcotest.(check bool) "select detected" true (Planner.is_select "  select A from P");
  Alcotest.(check bool) "directive is not a select" false (Planner.is_select ".stats");
  Alcotest.(check bool) "prefix word is not a select" false
    (Planner.is_select "SELECTIVITY 3")

let planner_session () =
  let s = Session.create () in
  ignore (Session.exec_string s "TABLE P (A : INT)");
  for i = 1 to 5 do
    ignore (Session.exec_string s (Fmt.str "INSERT INTO P VALUES (%d)" i))
  done;
  s

let origin =
  Alcotest.testable
    (fun ppf o -> Fmt.string ppf (match o with `Hit -> "hit" | `Miss -> "miss"))
    ( = )

let test_planner_generation () =
  let s = planner_session () in
  let p = Planner.create s in
  let _, o1 = Planner.execute p "SELECT A FROM P" in
  Alcotest.check origin "first plan is a miss" `Miss o1;
  let _, o2 = Planner.execute p "  SELECT   A FROM P ;" in
  Alcotest.check origin "normalized repeat hits" `Hit o2;
  (* data changes do NOT invalidate: plans are data-independent, the
     cached plan must see the new tuple *)
  ignore (Session.exec_string s "INSERT INTO P VALUES (6)");
  let rel, o3 = Planner.execute p "SELECT A FROM P" in
  Alcotest.check origin "insert keeps the plan" `Hit o3;
  Alcotest.(check int) "cached plan sees fresh data" 6 (Relation.cardinality rel);
  (* DDL bumps the generation: stale keys never match again *)
  ignore (Session.exec_string s "TABLE Q (B : INT)");
  let _, o4 = Planner.execute p "SELECT A FROM P" in
  Alcotest.check origin "DDL invalidates" `Miss o4;
  (* so does an optimizer-config change *)
  Session.set_config s (Repl.limits_config 5);
  let _, o5 = Planner.execute p "SELECT A FROM P" in
  Alcotest.check origin "config change invalidates" `Miss o5;
  (* and the adaptive-limits toggle *)
  Session.set_adaptive s true;
  let _, o6 = Planner.execute p "SELECT A FROM P" in
  Alcotest.check origin "adaptive toggle invalidates" `Miss o6;
  let _, o7 = Planner.execute p "SELECT A FROM P" in
  Alcotest.check origin "steady state hits again" `Hit o7

let test_planner_records_session_stats () =
  let s = planner_session () in
  let p = Planner.create s in
  let before = Session.statements_run s in
  ignore (Planner.execute p "SELECT A FROM P");
  ignore (Planner.execute p "SELECT A FROM P");
  Alcotest.(check int) "cached executions still counted" (before + 2)
    (Session.statements_run s);
  Alcotest.(check bool) "eval work folded into the session" true
    ((Session.eval_stats s).Eval.tuples_read > 0)

(* -- copy-on-write snapshots --------------------------------------------- *)

let test_database_snapshot_isolation () =
  let s = planner_session () in
  let db = Session.database s in
  let g0 = Database.data_generation db in
  let snap = Database.snapshot db in
  ignore (Session.exec_string s "INSERT INTO P VALUES (99)");
  Alcotest.(check bool) "data generation bumped by the insert" true
    (Database.data_generation db > g0);
  Alcotest.(check int) "snapshot is isolated from the insert" 5
    (Relation.cardinality (Database.relation snap "P"));
  Alcotest.(check int) "live database sees the insert" 6
    (Relation.cardinality (Database.relation db "P"));
  Alcotest.(check int) "snapshot generation frozen" g0 (Database.data_generation snap)

let test_planner_sweeps_stale_generation () =
  let s = planner_session () in
  let p = Planner.create ~capacity:4 s in
  ignore (Planner.execute p "SELECT A FROM P");
  ignore (Planner.execute p "SELECT A FROM P WHERE A = 1");
  Alcotest.(check int) "two live entries" 2 (Planner.cache_stats p).Plan_cache.size;
  (* DDL bumps the plan generation, orphaning both keys *)
  ignore (Session.exec_string s "TABLE QQ (B : INT)");
  ignore (Planner.execute p "SELECT A FROM P");
  let st = Planner.cache_stats p in
  Alcotest.(check int) "stale entries swept eagerly" 2 st.Plan_cache.swept;
  Alcotest.(check int) "capacity spent on live keys only" 1 st.Plan_cache.size

(* -- cancellation hygiene ------------------------------------------------- *)

let test_cancel_deadline_never_leaks () =
  (* a Timeout leaves no deadline behind *)
  Alcotest.(check bool) "timeout fires" true
    (try
       Cancel.with_timeout 0.000_001 (fun () ->
           Thread.delay 0.005;
           Cancel.tick ();
           false)
     with Cancel.Timeout _ -> true);
  Alcotest.(check bool) "uninstalled after Timeout" false (Cancel.active ());
  Cancel.tick ();
  (* nor does any other exception *)
  (try Cancel.with_timeout 30. (fun () -> failwith "boom") with Failure _ -> ());
  Alcotest.(check bool) "uninstalled after exception" false (Cancel.active ());
  (* nesting restores the outer deadline, and the outermost exit clears *)
  Cancel.with_timeout 30. (fun () ->
      Cancel.with_timeout 20. (fun () -> Cancel.tick ());
      Alcotest.(check bool) "outer deadline restored" true (Cancel.active ()));
  Alcotest.(check bool) "cleared after outermost exit" false (Cancel.active ());
  (* the backstop is idempotent and safe with nothing installed *)
  Cancel.clear ();
  Cancel.clear ();
  Cancel.tick ()

(* -- wire protocol ------------------------------------------------------- *)

let with_server ?config ?wal session f =
  let srv = Server.start ?config ?wal session in
  Fun.protect ~finally:(fun () -> Server.stop srv) (fun () -> f srv)

let with_client srv f =
  let c = Client.connect (Server.port srv) in
  Fun.protect ~finally:(fun () -> Client.close c) (fun () -> f c)

let status =
  Alcotest.testable
    (fun ppf s -> Fmt.string ppf (Protocol.status_to_string s))
    ( = )

let test_wire_basics () =
  with_server (Session.create ()) (fun srv ->
      with_client srv (fun c ->
          let st, payload = Client.request c "PING" in
          Alcotest.check status "ping ok" Protocol.Ok st;
          Alcotest.(check string) "pong" "pong\n" payload;
          let st, payload = Client.request c "HELP" in
          Alcotest.check status "help ok" Protocol.Ok st;
          Alcotest.(check bool) "help mentions SAVE" true
            (contains ~affix:"SAVE" payload);
          (* one unknown command must not drop the connection *)
          let st, payload = Client.request c "FROB" in
          Alcotest.check status "unknown command errors" Protocol.Error st;
          Alcotest.(check string) "one-line hint"
            "error: unknown command FROB (try HELP)\n" payload;
          let st, _ = Client.request c "PING" in
          Alcotest.check status "connection survived" Protocol.Ok st;
          (* malformed ESQL is a per-line error too *)
          let st, payload = Client.request c "SELECT FROM WHERE" in
          Alcotest.check status "parse error reported" Protocol.Error st;
          Alcotest.(check bool) "error payload prefixed" true
            (String.length payload > 7 && String.sub payload 0 7 = "error: ");
          let st, _ = Client.request c "PING" in
          Alcotest.check status "still alive after parse error" Protocol.Ok st;
          (* QUIT closes cleanly *)
          let st, payload = Client.request c "QUIT" in
          Alcotest.check status "quit ok" Protocol.Ok st;
          Alcotest.(check string) "bye" "bye\n" payload))

let test_wire_matches_local_session () =
  with_server (Session.create ()) (fun srv ->
      let twin = Session.create () in
      Loadtest.apply_setup twin;
      let expected = Loadtest.expected_payloads twin in
      with_client srv (fun c ->
          Loadtest.setup_over_wire c;
          List.iter
            (fun q ->
              let st, payload = Client.request c q in
              Alcotest.check status (Fmt.str "ok: %s" q) Protocol.Ok st;
              Alcotest.(check string)
                (Fmt.str "bit-identical: %s" q)
                (List.assoc q expected) payload)
            Loadtest.queries))

let test_wire_cache_and_invalidation () =
  let s = planner_session () in
  with_server s (fun srv ->
      with_client srv (fun c ->
          let hits () = (Server.counters srv).Server.cache.Plan_cache.hits in
          let misses () = (Server.counters srv).Server.cache.Plan_cache.misses in
          ignore (Client.request c "SELECT A FROM P");
          Alcotest.(check int) "first select misses" 1 (misses ());
          ignore (Client.request c "SELECT A FROM P ;");
          Alcotest.(check int) "repeat hits" 1 (hits ());
          (* DDL over the wire bumps the generation *)
          let st, _ = Client.request c "TABLE Q2 (B : INT)" in
          Alcotest.check status "ddl ok" Protocol.Ok st;
          ignore (Client.request c "SELECT A FROM P");
          Alcotest.(check int) "post-DDL select misses" 2 (misses ());
          (* a config directive does too *)
          let st, _ = Client.request c ".limits 5" in
          Alcotest.check status "directive ok" Protocol.Ok st;
          ignore (Client.request c "SELECT A FROM P");
          Alcotest.(check int) "post-.limits select misses" 3 (misses ());
          ignore (Client.request c "SELECT A FROM P");
          Alcotest.(check int) "then hits again" 2 (hits ())))

let test_wire_save_then_load () =
  let path = Filename.temp_file "eds_server_save" ".esql" in
  with_server (Session.create ()) (fun srv ->
      with_client srv (fun c ->
          Loadtest.setup_over_wire c;
          let st, _ = Client.request c "SAVE" in
          Alcotest.check status "SAVE without a path errors" Protocol.Error st;
          let st, payload = Client.request c (Fmt.str "SAVE %s" path) in
          Alcotest.check status "save ok" Protocol.Ok st;
          Alcotest.(check bool) "save echoes path" true
            (contains ~affix:path payload);
          (* a session loaded from the dump answers identically *)
          let loaded = Storage.load path in
          let q = List.hd Loadtest.queries in
          let want =
            let st, p = Client.request c q in
            Alcotest.check status "query ok" Protocol.Ok st;
            p
          in
          let buf = Buffer.create 256 in
          let ppf = Format.formatter_of_buffer buf in
          Repl.print_result ppf (Session.Rows (Session.query loaded q));
          Format.pp_print_flush ppf ();
          Alcotest.(check string) "loaded dump answers identically" want
            (Buffer.contents buf)));
  Sys.remove path

let test_wire_metrics_json () =
  with_server (planner_session ()) (fun srv ->
      with_client srv (fun c ->
          ignore (Client.request c "SELECT A FROM P");
          let st, payload = Client.request c "METRICS" in
          Alcotest.check status "metrics ok" Protocol.Ok st;
          match Eds_obs.Obs.Json.parse (String.trim payload) with
          | Error e -> Alcotest.failf "METRICS is not JSON: %s" e
          | Ok json ->
              let geti k =
                match Eds_obs.Obs.Json.member k json with
                | Some v -> Eds_obs.Obs.Json.to_int v
                | None -> None
              in
              Alcotest.(check (option int))
                "one miss recorded" (Some 1) (geti "server.plan_cache.misses");
              Alcotest.(check bool) "statements counted" true
                (match geti "session.statements_run" with
                | Some n -> n >= 1
                | None -> false)))

let test_wire_metrics_prom () =
  with_server (planner_session ()) (fun srv ->
      with_client srv (fun c ->
          ignore (Client.request c "SELECT A FROM P");
          let st, payload = Client.request c "METRICS PROM" in
          Alcotest.check status "prom ok" Protocol.Ok st;
          (match Test_metrics.lint_prometheus payload with
          | [] -> ()
          | errs ->
              Alcotest.failf "METRICS PROM fails exposition lint:\n%s"
                (String.concat "\n" errs));
          Alcotest.(check bool) "query counter exposed" true
            (contains ~affix:{|eds_queries_total{verb="select",outcome="ok"}|}
               payload);
          Alcotest.(check bool) "latency histogram exposed" true
            (contains ~affix:"eds_query_duration_seconds_bucket" payload);
          Alcotest.(check bool) "instance collector exposed" true
            (contains ~affix:"eds_plan_cache_entries" payload)))

let test_wire_stats_reset () =
  with_server (planner_session ()) (fun srv ->
      with_client srv (fun c ->
          ignore (Client.request c "TABLE Q9 (B : INT)");
          ignore (Client.request c "SELECT A FROM P");
          ignore (Client.request c "SELECT A FROM P");
          let geti payload k =
            match Eds_obs.Obs.Json.parse (String.trim payload) with
            | Error e -> Alcotest.failf "METRICS is not JSON: %s" e
            | Ok json -> (
                match Eds_obs.Obs.Json.member k json with
                | Some v -> Eds_obs.Obs.Json.to_int v
                | None -> None)
          in
          let _, before = Client.request c "METRICS" in
          let gen0 = geti before "session.generation" in
          let dgen0 = geti before "session.data_generation" in
          Alcotest.(check bool) "tallies advanced" true
            (match geti before "server.queries.ok" with
            | Some n -> n >= 3
            | None -> false);
          Alcotest.(check (option int)) "a miss accumulated" (Some 1)
            (geti before "server.plan_cache.misses");
          let st, payload = Client.request c "STATS RESET" in
          Alcotest.check status "stats reset ok" Protocol.Ok st;
          Alcotest.(check bool) "reset names what survives" true
            (contains ~affix:"preserved" payload);
          let _, after = Client.request c "METRICS" in
          (* the STATS RESET request itself was the only query since *)
          Alcotest.(check (option int)) "query tally zeroed" (Some 1)
            (geti after "server.queries.ok");
          Alcotest.(check (option int)) "cache misses zeroed" (Some 0)
            (geti after "server.plan_cache.misses");
          Alcotest.(check (option int)) "cache hits zeroed" (Some 0)
            (geti after "server.plan_cache.hits");
          (* integrity markers survive: generations are monotone history *)
          Alcotest.(check (option int)) "generation preserved" gen0
            (geti after "session.generation");
          Alcotest.(check (option int)) "data generation preserved" dgen0
            (geti after "session.data_generation")))

let test_slow_query_log () =
  let lines = ref [] in
  let lock = Mutex.create () in
  let sink line =
    Mutex.lock lock;
    lines := line :: !lines;
    Mutex.unlock lock
  in
  let config =
    {
      Server.default_config with
      slow_query_ms = Some 0.;
      slow_log = Some sink;
    }
  in
  with_server ~config (planner_session ()) (fun srv ->
      with_client srv (fun c ->
          ignore (Client.request c "SELECT A FROM P");
          ignore (Client.request c "SELECT A FROM P")));
  let captured = List.rev !lines in
  Alcotest.(check bool) "slow log captured both queries" true
    (List.length captured >= 2);
  List.iter
    (fun line ->
      match Eds_obs.Obs.Json.parse line with
      | Error e -> Alcotest.failf "slow-log line is not JSON (%s): %s" e line
      | Ok json ->
          let mem k = Eds_obs.Obs.Json.member k json in
          Alcotest.(check bool) "has query" true (mem "query" <> None);
          Alcotest.(check bool) "has total_ms" true (mem "total_ms" <> None);
          Alcotest.(check bool) "has cache" true (mem "cache" <> None);
          Alcotest.(check bool) "has rows" true (mem "rows" <> None))
    captured;
  (* second execution is a plan-cache hit and says so *)
  Alcotest.(check bool) "cache origin recorded" true
    (contains ~affix:{|"cache":"hit"|} (List.nth captured 1))

let test_wire_explain_analyze () =
  with_server (planner_session ()) (fun srv ->
      with_client srv (fun c ->
          let st, payload = Client.request c "EXPLAIN SELECT A FROM P" in
          Alcotest.check status "explain ok" Protocol.Ok st;
          Alcotest.(check bool) "shows rewritten plan" true
            (contains ~affix:"rewritten" payload);
          let st, payload =
            Client.request c "EXPLAIN ANALYZE SELECT A FROM P"
          in
          Alcotest.check status "explain analyze ok" Protocol.Ok st;
          Alcotest.(check bool) "analyze header" true
            (contains ~affix:"EXPLAIN ANALYZE" payload);
          Alcotest.(check bool) "per-operator rows" true
            (contains ~affix:"rows=" payload);
          Alcotest.(check bool) "execution phase" true
            (contains ~affix:"execution" payload);
          (* the connection survives an EXPLAIN of a non-SELECT *)
          let st, _ = Client.request c "EXPLAIN INSERT INTO P VALUES (1)" in
          Alcotest.check status "explain non-select errors" Protocol.Error st;
          let st, _ = Client.request c "PING" in
          Alcotest.check status "still alive" Protocol.Ok st))

(* -- timeouts ------------------------------------------------------------ *)

(* a 60^4 cartesian product under the naive physical layer: far more
   work than the budget allows, cancelled cooperatively mid-join *)
let slow_session () =
  let s = Session.create () in
  Session.set_physical s Eval.Physical.Naive;
  ignore
    (Session.exec_script s
       "TABLE A (X : INT) ; TABLE B (Y : INT) ; TABLE C (Z : INT) ; \
        TABLE D (W : INT) ;");
  let db = Session.database s in
  for i = 0 to 59 do
    Database.insert db "A" [ Value.Int i ];
    Database.insert db "B" [ Value.Int i ];
    Database.insert db "C" [ Value.Int i ];
    Database.insert db "D" [ Value.Int i ]
  done;
  s

let test_query_timeout_spares_connection () =
  let config = { Server.default_config with query_timeout = Some 0.05 } in
  with_server ~config (slow_session ()) (fun srv ->
      with_client srv (fun c ->
          let st, payload =
            Client.request c "SELECT X FROM A, B, C, D WHERE X = W"
          in
          Alcotest.check status "overrunning query errors" Protocol.Error st;
          Alcotest.(check bool) "error names the timeout" true
            (contains ~affix:"timeout" payload);
          (* the connection survives and serves quick queries *)
          let st, payload = Client.request c "SELECT X FROM A" in
          Alcotest.check status "quick query after timeout" Protocol.Ok st;
          Alcotest.(check bool) "full scan answered" true
            (contains ~affix:"(60 tuples)" payload));
      let counters = Server.counters srv in
      Alcotest.(check int) "timeout counted" 1 counters.Server.timeouts;
      Alcotest.(check int) "not an ordinary error" 0 counters.Server.query_errors)

(* regression: a deadline surviving a timed-out statement would make the
   same connection's next statements die instantly with stale Timeouts *)
let test_backtoback_queries_after_timeout () =
  let config = { Server.default_config with query_timeout = Some 0.05 } in
  with_server ~config (slow_session ()) (fun srv ->
      with_client srv (fun c ->
          let st, _ = Client.request c "SELECT X FROM A, B, C, D WHERE X = W" in
          Alcotest.check status "overrunning query errors" Protocol.Error st;
          for i = 1 to 6 do
            let st, payload = Client.request c "SELECT X FROM A" in
            Alcotest.check status (Fmt.str "query %d after the timeout" i)
              Protocol.Ok st;
            Alcotest.(check bool)
              (Fmt.str "query %d answered in full" i)
              true
              (contains ~affix:"(60 tuples)" payload)
          done);
      Alcotest.(check int) "exactly one timeout" 1 (Server.counters srv).Server.timeouts)

(* -- admission control --------------------------------------------------- *)

let test_admission_busy () =
  let config = { Server.default_config with max_connections = 1 } in
  with_server ~config (Session.create ()) (fun srv ->
      let c1 = Client.connect (Server.port srv) in
      let st, _ = Client.request c1 "PING" in
      Alcotest.check status "first connection served" Protocol.Ok st;
      (* the second connection is refused with a busy frame *)
      let c2 = Client.connect (Server.port srv) in
      let st, payload = Client.request c2 "PING" in
      Alcotest.check status "second connection refused" Protocol.Busy st;
      Alcotest.(check bool) "busy names the limit" true
        (contains ~affix:"busy" payload);
      Client.close c2;
      Client.close c1;
      (* capacity freed: a later connection is admitted.  Poll: the
         server notices the close asynchronously. *)
      let rec retry n =
        let c3 = Client.connect (Server.port srv) in
        let st, _ = Client.request c3 "PING" in
        Client.close c3;
        if st = Protocol.Ok then ()
        else if n = 0 then Alcotest.fail "capacity never freed"
        else begin
          Thread.delay 0.05;
          retry (n - 1)
        end
      in
      retry 40;
      Alcotest.(check bool) "refusals counted" true
        ((Server.counters srv).Server.refused >= 1))

(* -- durability over the wire --------------------------------------------- *)

let with_temp_db f =
  let db = Filename.temp_file "eds_srv_wal" ".esql" in
  Sys.remove db;
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> if Sys.file_exists p then Sys.remove p)
        [ db; db ^ ".tmp"; Wal.Manager.wal_path db ])
    (fun () -> f db)

let test_wire_wal_crash_recovery () =
  with_temp_db (fun db ->
      let session, handle, _ = Wal.Manager.recover ~sync:false ~db () in
      let want = ref "" in
      with_server ~wal:handle session (fun srv ->
          with_client srv (fun c ->
              List.iter
                (fun stmt ->
                  let st, _ = Client.request c stmt in
                  Alcotest.check status (Fmt.str "ok: %s" stmt) Protocol.Ok st)
                [
                  "TABLE P (A : INT)";
                  "INSERT INTO P VALUES (1)";
                  "INSERT INTO P VALUES (2)";
                  "UPDATE P SET A = 10 WHERE A = 1";
                  "SELECT A FROM P";
                  "DELETE FROM P WHERE A = 2";
                ]);
          want := Storage.dump (Server.session srv));
      Alcotest.(check int) "5 writes logged, SELECT not" 5
        (Wal.Manager.stats handle).Wal.Manager.wal_records;
      (* crash: no checkpoint, the handle is abandoned *)
      Wal.Manager.close handle;
      let recovered, handle', replayed = Wal.Manager.recover ~sync:false ~db () in
      Alcotest.(check int) "committed statements replayed" 5 replayed;
      Alcotest.(check string) "recovered byte-identical" !want
        (Storage.dump recovered);
      Wal.Manager.close handle')

let test_wire_save_checkpoints_wal () =
  with_temp_db (fun db ->
      let session, handle, _ = Wal.Manager.recover ~sync:false ~db () in
      let want = ref "" in
      with_server ~wal:handle session (fun srv ->
          with_client srv (fun c ->
              ignore (Client.request c "TABLE P (A : INT)");
              ignore (Client.request c "INSERT INTO P VALUES (1)");
              let st, payload = Client.request c (Fmt.str "SAVE %s" db) in
              Alcotest.check status "save ok" Protocol.Ok st;
              Alcotest.(check bool) "save names the checkpoint" true
                (contains ~affix:"checkpoint" payload);
              Alcotest.(check int) "wal truncated by the checkpoint" 0
                (Wal.Manager.stats handle).Wal.Manager.wal_records;
              (* post-checkpoint writes land in the fresh log *)
              ignore (Client.request c "INSERT INTO P VALUES (2)");
              Alcotest.(check int) "new write logged after checkpoint" 1
                (Wal.Manager.stats handle).Wal.Manager.wal_records);
          want := Storage.dump (Server.session srv));
      Wal.Manager.close handle;
      let recovered, handle', replayed = Wal.Manager.recover ~sync:false ~db () in
      Alcotest.(check int) "only the post-checkpoint write replays" 1 replayed;
      Alcotest.(check string) "checkpoint + tail recover byte-identical" !want
        (Storage.dump recovered);
      Wal.Manager.close handle')

(* -- concurrent load ----------------------------------------------------- *)

let test_loadtest_concurrent_bit_identical () =
  let s = Session.create () in
  Loadtest.apply_setup s;
  let twin = Session.create () in
  Loadtest.apply_setup twin;
  let expected = Loadtest.expected_payloads twin in
  with_server s (fun srv ->
      let o =
        Loadtest.run ~expected ~port:(Server.port srv) ~clients:16 ~per_client:12 ()
      in
      Alcotest.(check int) "all requests answered ok" (16 * 12) o.Loadtest.ok;
      Alcotest.(check int) "no dropped connections" 0 o.Loadtest.dropped_connections;
      Alcotest.(check int) "no protocol errors" 0 o.Loadtest.protocol_errors;
      Alcotest.(check int) "no busy refusals" 0 o.Loadtest.busy;
      Alcotest.(check bool) "responses bit-identical to a lone session" true
        o.Loadtest.bit_identical;
      Alcotest.(check bool)
        (Fmt.str "plan-cache hit rate %.2f > 0.5" o.Loadtest.hit_rate)
        true
        (o.Loadtest.hit_rate > 0.5);
      (* the acceptance criterion: SELECTs never touch the read lock —
         they evaluate against snapshots; only plan-cache misses took
         the write side *)
      let c = Server.counters srv in
      Alcotest.(check int) "zero read-lock acquisitions" 0
        c.Server.locks.Rwlock.read_acquired;
      Alcotest.(check bool) "misses planned under the write lock" true
        (c.Server.locks.Rwlock.write_acquired > 0))

let test_loadtest_mixed_verified () =
  let s = Session.create () in
  Loadtest.apply_setup s;
  let twin = Session.create () in
  Loadtest.apply_setup twin;
  let expected = Loadtest.expected_payloads twin in
  with_server s (fun srv ->
      let o =
        Loadtest.run_mixed ~expected ~port:(Server.port srv) ~clients:8
          ~per_client:20 ()
      in
      Alcotest.(check int) "all requests answered ok" (8 * 20) o.Loadtest.ok;
      Alcotest.(check int) "2 writes per 5 ops" (8 * 20 * 2 / 5) o.Loadtest.writes;
      Alcotest.(check int) "no error responses" 0 o.Loadtest.errors;
      Alcotest.(check int) "no dropped connections" 0 o.Loadtest.dropped_connections;
      Alcotest.(check int) "no protocol errors" 0 o.Loadtest.protocol_errors;
      Alcotest.(check bool)
        "every response — write acks included — matches the oracle" true
        o.Loadtest.bit_identical;
      let c = Server.counters srv in
      Alcotest.(check int) "snapshot reads acquired zero read locks" 0
        c.Server.locks.Rwlock.read_acquired)

(* VERIFY RULES gates an untrusted pack over the wire: a sound pack is
   appended to block "verified", an unsound one is rejected with the
   counterexample report and leaves the program untouched (ISSUE 10) *)
let test_wire_verify_rules () =
  with_server (Session.create ()) (fun srv ->
      with_client srv (fun c ->
          let st, payload = Client.request c "VERIFY NONSENSE" in
          Alcotest.check status "usage error" Protocol.Error st;
          Alcotest.(check bool) "usage hint" true
            (contains ~affix:"usage: VERIFY RULES" payload);
          let st, payload =
            Client.request c "VERIFY RULES bad: filter(r, f) --> r ;"
          in
          Alcotest.check status "unsound pack rejected" Protocol.Error st;
          Alcotest.(check bool) "rejection names the rule" true
            (contains ~affix:"bad" payload);
          Alcotest.(check bool) "counterexample shown" true
            (contains ~affix:"counterexample" payload);
          let st, _ = Client.request c ".rules" in
          Alcotest.check status "program intact" Protocol.Ok st;
          let st, payload =
            Client.request c
              "VERIFY RULES good: filter(filter(r, f), g) --> filter(r, \
               and(bag(f, g))) ;"
          in
          Alcotest.check status "sound pack accepted" Protocol.Ok st;
          Alcotest.(check bool) "acceptance reported" true
            (contains ~affix:"pack accepted" payload);
          let st, payload = Client.request c ".rules" in
          Alcotest.check status "rules listed" Protocol.Ok st;
          Alcotest.(check bool) "block verified present" true
            (contains ~affix:"verified" payload)))

let suite =
  [
    Alcotest.test_case "rwlock: readers share" `Quick test_rwlock_readers_share;
    Alcotest.test_case "rwlock: writers exclude" `Quick test_rwlock_writers_exclude;
    Alcotest.test_case "rwlock: readers see invariant" `Quick
      test_rwlock_readers_see_invariant;
    Alcotest.test_case "plan cache: LRU eviction" `Quick test_plan_cache_lru;
    Alcotest.test_case "plan cache: overwrite" `Quick test_plan_cache_overwrite;
    Alcotest.test_case "planner: normalize" `Quick test_normalize;
    Alcotest.test_case "planner: generation invalidation" `Quick
      test_planner_generation;
    Alcotest.test_case "planner: session stats recorded" `Quick
      test_planner_records_session_stats;
    Alcotest.test_case "database: snapshot isolation" `Quick
      test_database_snapshot_isolation;
    Alcotest.test_case "planner: stale generation swept" `Quick
      test_planner_sweeps_stale_generation;
    Alcotest.test_case "cancel: deadline never leaks" `Quick
      test_cancel_deadline_never_leaks;
    Alcotest.test_case "wire: basics and error recovery" `Quick test_wire_basics;
    Alcotest.test_case "wire: bit-identical to local session" `Quick
      test_wire_matches_local_session;
    Alcotest.test_case "wire: plan cache and invalidation" `Quick
      test_wire_cache_and_invalidation;
    Alcotest.test_case "wire: SAVE dump loads back" `Quick test_wire_save_then_load;
    Alcotest.test_case "wire: METRICS is JSON" `Quick test_wire_metrics_json;
    Alcotest.test_case "wire: METRICS PROM passes exposition lint" `Quick
      test_wire_metrics_prom;
    Alcotest.test_case "wire: STATS RESET spares integrity markers" `Quick
      test_wire_stats_reset;
    Alcotest.test_case "slow-query log captures structured lines" `Quick
      test_slow_query_log;
    Alcotest.test_case "wire: EXPLAIN ANALYZE" `Quick test_wire_explain_analyze;
    Alcotest.test_case "wire: VERIFY RULES gate" `Slow test_wire_verify_rules;
    Alcotest.test_case "timeout kills query, spares connection" `Quick
      test_query_timeout_spares_connection;
    Alcotest.test_case "back-to-back queries after a timeout" `Quick
      test_backtoback_queries_after_timeout;
    Alcotest.test_case "admission: busy beyond the cap" `Quick test_admission_busy;
    Alcotest.test_case "wal: crash recovery over the wire" `Quick
      test_wire_wal_crash_recovery;
    Alcotest.test_case "wal: SAVE checkpoints and truncates" `Quick
      test_wire_save_checkpoints_wal;
    Alcotest.test_case "16 concurrent clients, bit-identical" `Quick
      test_loadtest_concurrent_bit_identical;
    Alcotest.test_case "mixed read/write load, oracle-verified" `Quick
      test_loadtest_mixed_verified;
  ]
