(* The edsql REPL loop (Eds.Repl), driven end-to-end through a scripted
   conversation: a bad statement (parse error), a bad directive argument
   and a runtime evaluation error must each print a one-line [error: ...]
   and leave the session alive for the statements that follow. *)

module Session = Eds.Session
module Repl = Eds.Repl

let contains s sub =
  let n = String.length sub and k = String.length s in
  let rec at i = i + n <= k && (String.sub s i n = sub || at (i + 1)) in
  at 0

let count_occurrences s sub =
  let n = String.length sub and k = String.length s in
  let rec at i acc =
    if i + n > k then acc
    else if String.sub s i n = sub then at (i + 1) (acc + 1)
    else at (i + 1) acc
  in
  if n = 0 then 0 else at 0 0

let drive lines =
  let remaining = ref lines in
  let read_line () =
    match !remaining with
    | [] -> None
    | l :: tl ->
      remaining := tl;
      Some l
  in
  let buf = Buffer.create 1024 in
  let ppf = Format.formatter_of_buffer buf in
  let session = Session.create () in
  let final = Repl.repl ~banner:false ~ppf ~read_line session in
  Format.pp_print_flush ppf ();
  (Buffer.contents buf, final)

let test_survives_bad_statement () =
  let out, _ =
    drive
      [
        "CREATE TABLE T (A INT, B INT);";
        "INSERT INTO T VALUES (1, 2);";
        "SELECT FROM WHERE;" (* parse error *);
        "SELECT A FROM NOPE;" (* runtime error: unknown relation *);
        "SELECT A FROM T;" (* the session must still answer *);
        ".quit";
      ]
  in
  Alcotest.(check bool) "both failures reported" true
    (count_occurrences out "error:" >= 2);
  Alcotest.(check bool) "good statement after the bad ones still runs" true
    (contains out "(1 tuple)")

let test_directive_errors_kept_alive () =
  let out, _ =
    drive
      [
        ".explain not esql at all" (* Session_error inside a directive *);
        ".load /nonexistent/edsql-session" (* Sys/Storage error *);
        ".limits nonsense";
        ".help";
        ".quit";
      ]
  in
  Alcotest.(check bool) "directive failures reported" true
    (count_occurrences out "error:" >= 2);
  Alcotest.(check bool) "loop survived to .help" true
    (contains out "directives:")

let test_domains_and_parallel_directives () =
  let out, final =
    drive
      [
        "CREATE TABLE T (A INT, B INT);";
        "INSERT INTO T VALUES (1, 2);";
        ".domains 0" (* rejected: must stay at the default *);
        ".domains 2";
        ".physical parallel";
        "SELECT A FROM T WHERE A = 1;";
        ".stats";
        ".quit";
      ]
  in
  Alcotest.(check bool) "domains 0 rejected" true
    (contains out "usage: .domains N");
  Alcotest.(check bool) "domains set" true (contains out "domains: 2");
  Alcotest.(check bool) "parallel layer selected" true
    (contains out "physical layer: parallel");
  Alcotest.(check bool) "query ran under the parallel layer" true
    (contains out "(1 tuple)");
  Alcotest.(check bool) ".stats reports the layer" true
    (contains out "physical layer   : parallel");
  Alcotest.(check int) "session really holds the knob" 2 (Session.domains final)

let suite =
  [
    Alcotest.test_case "bad statements don't kill the loop" `Quick
      test_survives_bad_statement;
    Alcotest.test_case "bad directives don't kill the loop" `Quick
      test_directive_errors_kept_alive;
    Alcotest.test_case ".domains/.physical parallel" `Quick
      test_domains_and_parallel_directives;
  ]
