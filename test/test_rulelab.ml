(* Tests for lib/rulelab: the differential rule verifier, the seeded
   known-bad corpus, counterexample shrinking, pack-level liveness and
   the discovery loop (ISSUE 10). *)

module Lera = Eds_lera.Lera
module Relation = Eds_engine.Relation
module Database = Eds_engine.Database
module Rule = Eds_rewriter.Rule
module Rule_parser = Eds_rewriter.Rule_parser
module Rulesets = Eds_rewriter.Rulesets
module Gen = Eds_rulelab.Gen
module Corpus = Eds_rulelab.Corpus
module Verify = Eds_rulelab.Verify
module Discover = Eds_rulelab.Discover

(* -- the extracted generators -------------------------------------------- *)

let test_gen_fixture_stable () =
  let db = Gen.db () in
  Alcotest.(check (list string))
    "schema" [ "EDGE"; "R0"; "R1"; "R2" ]
    (List.sort compare (Database.relation_names db));
  (* deterministic: two draws of the canonical instance are identical *)
  let db' = Gen.db () in
  List.iter
    (fun n ->
      Alcotest.(check bool) (Fmt.str "%s reproducible" n) true
        (Relation.equal (Database.relation db n) (Database.relation db' n)))
    [ "R0"; "R1"; "R2"; "EDGE" ]

let test_gen_instances_share_schema () =
  let rand = Random.State.make [| 7 |] in
  let reference = Gen.db () in
  for _ = 1 to 20 do
    let db = Gen.instance rand in
    Alcotest.(check (list string))
      "same relations"
      (List.sort compare (Database.relation_names reference))
      (List.sort compare (Database.relation_names db));
    List.iter
      (fun n ->
        Alcotest.(check int)
          (Fmt.str "%s arity" n)
          (List.length (Database.relation reference n).Relation.schema)
          (List.length (Database.relation db n).Relation.schema))
      (Database.relation_names db)
  done

(* -- the verifier on the seeded known-bad corpus ------------------------- *)

let test_known_bad_all_flagged () =
  let rules = Rule_parser.parse_rules Corpus.known_bad in
  Alcotest.(check int) "corpus size" 14 (List.length rules);
  let report = Verify.verify_rules ~trials:32 rules in
  List.iter
    (fun (rr : Verify.rule_report) ->
      match rr.Verify.soundness with
      | Verify.Unsound ce ->
        Alcotest.(check bool)
          (Fmt.str "%s: counterexample replays" rr.Verify.rule.Rule.name)
          true
          (Verify.check_counterexample rr.Verify.rule ce)
      | _ -> Alcotest.failf "%s not flagged unsound" rr.Verify.rule.Rule.name)
    report.Verify.rules;
  Alcotest.(check bool) "report is not clean" false (Verify.clean report)

let test_paper_rules_clean () =
  let report = Verify.verify_rules ~trials:32 (Rulesets.all ()) in
  List.iter
    (fun (rr : Verify.rule_report) ->
      match rr.Verify.soundness with
      | Verify.Unsound ce ->
        Alcotest.failf "paper rule %s flagged: %a" rr.Verify.rule.Rule.name
          Verify.pp_counterexample ce
      | _ -> ())
    report.Verify.rules;
  Alcotest.(check bool) "clean" true (Verify.clean report);
  Alcotest.(check bool)
    (Fmt.str "at least 8 rules exercised (%d)" (Verify.exercised report))
    true
    (Verify.exercised report >= 8)

let test_counterexamples_are_shrunk () =
  let rule =
    Rule_parser.parse_rule "bad: filter(r, f) / distinct(f, true) --> r"
  in
  match (Verify.verify_rules ~trials:24 [ rule ]).Verify.rules with
  | [ { Verify.soundness = Verify.Unsound ce; _ } ] ->
    Alcotest.(check bool)
      (Fmt.str "plan is minimal (%s)" (Lera.to_string ce.Verify.plan))
      true
      (Lera.operator_count ce.Verify.plan <= 6);
    let tuples =
      List.fold_left
        (fun acc (_, r) -> acc + Relation.cardinality r)
        0 ce.Verify.relations
    in
    Alcotest.(check bool)
      (Fmt.str "instance is minimal (%d tuples)" tuples)
      true (tuples <= 20)
  | _ -> Alcotest.fail "expected exactly one unsound rule"

(* -- pack-level liveness: dead and shadowed rules ------------------------ *)

let test_liveness_dead_and_shadowed () =
  let rules =
    Rule_parser.parse_rules
      "first: filter(filter(r, f), g) --> filter(r, and(bag(f, g))) ;\n\
       second: filter(filter(r, f), g) --> filter(r, and(bag(g, f))) ;\n\
       dead_rule: fix(n, fix(m, b)) --> fix(n, b) ;"
  in
  let report = Verify.verify_rules ~trials:24 rules in
  let liveness name =
    (List.find
       (fun (rr : Verify.rule_report) -> rr.Verify.rule.Rule.name = name)
       report.Verify.rules)
      .Verify.liveness
  in
  (match liveness "first" with
  | Verify.Live -> ()
  | _ -> Alcotest.fail "first should be live");
  (match liveness "second" with
  | Verify.Shadowed by -> Alcotest.(check string) "shadowed by" "first" by
  | Verify.Live -> Alcotest.fail "second should not fire after first"
  | Verify.Dead -> Alcotest.fail "second should be reported shadowed, not dead");
  match liveness "dead_rule" with
  | Verify.Dead -> ()
  | _ -> Alcotest.fail "dead_rule should be dead"

(* -- discovery ----------------------------------------------------------- *)

let test_discovery_finds_profitable_rules () =
  let result =
    Discover.run ~screen_trials:16 ~verify_trials:16 ~max_candidates:80 ()
  in
  Alcotest.(check bool)
    (Fmt.str "at least one survivor (%d enumerated, %d screened out)"
       result.Discover.enumerated result.Discover.screened_out)
    true
    (List.length result.Discover.survivors >= 1);
  List.iter
    (fun (c : Discover.candidate) ->
      Alcotest.(check bool)
        (Fmt.str "%s has positive savings" c.Discover.rule.Rule.name)
        true (c.Discover.savings > 0);
      Alcotest.(check bool)
        (Fmt.str "%s fired during verification" c.Discover.rule.Rule.name)
        true (c.Discover.fired > 0))
    result.Discover.survivors

let test_metrics_registered () =
  ignore
    (Verify.verify_rules ~trials:4
       [ Rule_parser.parse_rule "noop: union(set(r)) --> r" ]);
  let prom = Eds_obs.Metrics.prometheus () in
  let contains sub s =
    let n = String.length sub and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  List.iter
    (fun name ->
      Alcotest.(check bool) (Fmt.str "%s exposed" name) true (contains name prom))
    [ "eds_rulelab_rules_checked_total"; "eds_rulelab_trials_total" ]

let suite =
  [
    Alcotest.test_case "generator fixture is stable" `Quick
      test_gen_fixture_stable;
    Alcotest.test_case "random instances share the schema" `Quick
      test_gen_instances_share_schema;
    Alcotest.test_case "known-bad corpus: 14/14 flagged with replayable \
                        counterexamples" `Slow test_known_bad_all_flagged;
    Alcotest.test_case "paper rules verify clean" `Slow test_paper_rules_clean;
    Alcotest.test_case "counterexamples are shrunk" `Quick
      test_counterexamples_are_shrunk;
    Alcotest.test_case "liveness: dead and shadowed rules" `Quick
      test_liveness_dead_and_shadowed;
    Alcotest.test_case "discovery finds profitable rules" `Slow
      test_discovery_finds_profitable_rules;
    Alcotest.test_case "rulelab metrics exposed" `Quick test_metrics_registered;
  ]
