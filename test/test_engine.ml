(* Tests for the execution substrate: expression evaluation, operators,
   fixpoints (naive vs semi-naive) and the work counters. *)

module Value = Eds_value.Value
module Vtype = Eds_value.Vtype
module Lera = Eds_lera.Lera
module Relation = Eds_engine.Relation
module Database = Eds_engine.Database
module Expr_eval = Eds_engine.Expr_eval
module Eval = Eds_engine.Eval

let value = Alcotest.testable Value.pp Value.equal

let run = Eval.run

let tuples (r : Relation.t) = r.Relation.tuples

let test_expr_basics () =
  let db = Database.create () in
  let eval = Expr_eval.eval db ~inputs:[ [ Value.Int 7; Value.Str "a" ] ] in
  Alcotest.check value "column" (Value.Int 7) (eval (Lera.col 1 1));
  Alcotest.check value "arith" (Value.Int 10)
    (eval (Lera.Call ("+", [ Lera.col 1 1; Lera.Cst (Value.Int 3) ])));
  Alcotest.check value "comparison" (Value.Bool true)
    (eval (Lera.Call ("<", [ Lera.Cst (Value.Int 1); Lera.col 1 1 ])));
  Alcotest.check value "n-ary and short-circuits" (Value.Bool false)
    (eval
       (Lera.conj
          [
            Lera.fls;
            Lera.Call ("this_function_does_not_exist", [ Lera.col 1 1 ]);
          ]))

let test_expr_value_and_projection () =
  let db, actors = Fixtures.film_db () in
  let quinn = List.assoc "Quinn" actors in
  let eval = Expr_eval.eval db ~inputs:[ [ quinn ] ] in
  Alcotest.check value "value() dereferences"
    (Value.Str "Quinn")
    (eval
       (Lera.Call
          ( "project",
            [ Lera.Call ("value", [ Lera.col 1 1 ]); Lera.Cst (Value.Str "Name") ] )));
  Alcotest.check value "attribute-as-function sugar" (Value.Real 12_000.)
    (eval (Lera.Call ("salary", [ Lera.col 1 1 ])))

let test_filter_and_project () =
  let db, _ = Fixtures.film_db () in
  let q =
    Lera.Project
      ( Lera.Filter
          ( Lera.Base "FILM",
            Lera.Call
              ("member", [ Lera.Cst (Fixtures.category "Adventure"); Lera.col 1 3 ]) ),
        [ Lera.col 1 1 ] )
  in
  let result = run db q in
  Alcotest.(check int) "two adventure films" 2 (Relation.cardinality result);
  Alcotest.(check bool) "film 1 kept" true (Relation.mem [ Value.Int 1 ] result)

let test_member_enum_vs_string () =
  (* enum values compare by label and equal their string spelling (SQL
     literal semantics), so both the coerced enum constant and the raw
     string literal are members *)
  let cats = Value.set [ Fixtures.category "Adventure" ] in
  let db = Database.create () in
  let eval = Expr_eval.eval db ~inputs:[ [ cats ] ] in
  Alcotest.check value "enum constant is member" (Value.Bool true)
    (eval
       (Lera.Call
          ("member", [ Lera.Cst (Fixtures.category "Adventure"); Lera.col 1 1 ])));
  Alcotest.check value "string literal is member too" (Value.Bool true)
    (eval (Lera.Call ("member", [ Lera.Cst (Value.Str "Adventure"); Lera.col 1 1 ])))

let test_search_equivalent_to_filter_join () =
  let db, _ = Fixtures.film_db () in
  let join_quals =
    Lera.conj
      [
        Lera.eq (Lera.col 1 1) (Lera.col 2 1);
        Lera.eq
          (Lera.Call ("name", [ Lera.col 1 2 ]))
          (Lera.Cst (Value.Str "Quinn"));
      ]
  in
  let search =
    Lera.Search
      ( [ Lera.Base "APPEARS_IN"; Lera.Base "FILM" ],
        join_quals,
        [ Lera.col 2 2 ] )
  in
  let composed =
    Lera.Project
      (Lera.Join (Lera.Base "APPEARS_IN", Lera.Base "FILM", join_quals), [ Lera.col 1 4 ])
  in
  (* col 1 4 in the joined 5-wide schema = FILM.Title *)
  let rs = run db search and rc = run db composed in
  Alcotest.(check int) "same cardinality" (Relation.cardinality rs) (Relation.cardinality rc);
  Alcotest.(check bool) "same tuples" true (Relation.equal rs rc);
  Alcotest.(check int) "Quinn appears in two films" 2 (Relation.cardinality rs)

let test_union_diff_inter () =
  let db = Fixtures.chain_db 4 in
  let edge = Lera.Base "EDGE" in
  let first = Lera.Filter (edge, Lera.eq (Lera.col 1 1) (Lera.Cst (Value.Int 1))) in
  Alcotest.(check int) "union dedups" 3
    (Relation.cardinality (run db (Lera.Union [ edge; first ])));
  Alcotest.(check int) "diff" 2 (Relation.cardinality (run db (Lera.Diff (edge, first))));
  Alcotest.(check int) "inter" 1 (Relation.cardinality (run db (Lera.Inter (edge, first))))

let tc_fix =
  (* transitive closure, the Figure-5 shape (non-linear) *)
  Lera.Fix
    ( "TC",
      Lera.Union
        [
          Lera.Base "EDGE";
          Lera.Search
            ( [ Lera.Base "TC"; Lera.Base "TC" ],
              Lera.eq (Lera.col 1 2) (Lera.col 2 1),
              [ Lera.col 1 1; Lera.col 2 2 ] );
        ] )

let test_fixpoint_chain () =
  let db = Fixtures.chain_db 6 in
  let result = run db tc_fix in
  (* chain of 6 nodes: closure has n(n-1)/2 = 15 pairs *)
  Alcotest.(check int) "15 closure pairs" 15 (Relation.cardinality result);
  Alcotest.(check bool) "1 reaches 6" true (Relation.mem [ Value.Int 1; Value.Int 6 ] result)

let test_fixpoint_modes_agree () =
  let db = Fixtures.graph_db ~nodes:12 ~edges:20 in
  let naive = run ~mode:Eval.Naive db tc_fix in
  let semi = run ~mode:Eval.Seminaive db tc_fix in
  Alcotest.(check bool) "naive = semi-naive" true (Relation.equal naive semi)

let test_seminaive_cheaper () =
  let db = Fixtures.chain_db 16 in
  let s_naive = Eval.fresh_stats () in
  let s_semi = Eval.fresh_stats () in
  ignore (run ~mode:Eval.Naive ~stats:s_naive db tc_fix);
  ignore (run ~mode:Eval.Seminaive ~stats:s_semi db tc_fix);
  Alcotest.(check bool)
    (Fmt.str "semi-naive (%d) < naive (%d)" s_semi.Eval.combinations
       s_naive.Eval.combinations)
    true
    (s_semi.Eval.combinations < s_naive.Eval.combinations)

let test_nest_unnest () =
  let db, _ = Fixtures.film_db () in
  let nested = Lera.Nest (Lera.Base "APPEARS_IN", [ 1 ], [ 2 ]) in
  let r = run db nested in
  Alcotest.(check int) "one group per film" 4 (Relation.cardinality r);
  let film1 =
    List.find (fun t -> Value.equal (List.hd t) (Value.Int 1)) (tuples r)
  in
  (match film1 with
  | [ _; actors ] ->
    Alcotest.(check int) "film 1 has two actors" 2
      (List.length (Value.elements actors))
  | _ -> Alcotest.fail "bad tuple shape");
  (* unnest is a left inverse on this data *)
  let back = run db (Lera.Unnest (nested, 2)) in
  Alcotest.(check bool) "unnest(nest(r)) = r" true
    (Relation.equal back (run db (Lera.Base "APPEARS_IN")))

let test_filter_pushdown_reduces_work () =
  (* the permutation rules' benefit, measured: filtering EDGE before the
     join enumerates far fewer combinations *)
  let db = Fixtures.graph_db ~nodes:30 ~edges:120 in
  let unpushed =
    Lera.Search
      ( [ Lera.Base "EDGE"; Lera.Base "EDGE" ],
        Lera.conj
          [
            Lera.eq (Lera.col 1 2) (Lera.col 2 1);
            Lera.eq (Lera.col 1 1) (Lera.Cst (Value.Int 3));
          ],
        [ Lera.col 1 1; Lera.col 2 2 ] )
  in
  let pushed =
    Lera.Search
      ( [
          Lera.Filter
            (Lera.Base "EDGE", Lera.eq (Lera.col 1 1) (Lera.Cst (Value.Int 3)));
          Lera.Base "EDGE";
        ],
        Lera.eq (Lera.col 1 2) (Lera.col 2 1),
        [ Lera.col 1 1; Lera.col 2 2 ] )
  in
  let s1 = Eval.fresh_stats () and s2 = Eval.fresh_stats () in
  (* pin the naive layer: the point is the rewrite's effect on the
     enumerated space, which indexed joins collapse on their own *)
  let r1 = run ~physical:Eval.Physical.Naive ~stats:s1 db unpushed in
  let r2 = run ~physical:Eval.Physical.Naive ~stats:s2 db pushed in
  Alcotest.(check bool) "same result" true (Relation.equal r1 r2);
  Alcotest.(check bool)
    (Fmt.str "pushed (%d) < unpushed (%d)" s2.Eval.combinations s1.Eval.combinations)
    true
    (s2.Eval.combinations < s1.Eval.combinations)

let test_rvar_binding () =
  let db = Fixtures.chain_db 3 in
  let edge = Eval.run db (Lera.Base "EDGE") in
  let r = Eval.run ~rvars:[ ("X", edge) ] db (Lera.Rvar "X") in
  Alcotest.(check bool) "rvar resolves" true (Relation.equal r edge);
  Alcotest.(check bool) "unbound rvar fails" true
    (try
       ignore (Eval.run db (Lera.Rvar "Y"));
       false
     with Eval.Eval_error _ -> true)

let test_unnest_empty_collections () =
  (* unnesting an empty set yields no tuples for that row *)
  let db = Database.create () in
  let schema = [ ("K", Vtype.Int); ("S", Vtype.Set Vtype.Int) ] in
  Database.add_relation db "T"
    (Relation.make schema
       [
         [ Value.Int 1; Value.set [ Value.Int 7; Value.Int 8 ] ];
         [ Value.Int 2; Value.set [] ];
       ]);
  let r = run db (Lera.Unnest (Lera.Base "T", 2)) in
  Alcotest.(check int) "two exploded tuples" 2 (Relation.cardinality r);
  Alcotest.(check bool) "row with empty set vanished" false
    (List.exists (fun t -> Value.equal (List.hd t) (Value.Int 2)) r.Relation.tuples)

let test_nest_unnest_property =
  (* unnest(nest(r)) = r whenever every group is non-empty (always true
     of a nest's own output) *)
  QCheck2.Test.make ~name:"unnest ∘ nest is the identity" ~count:50
    QCheck2.Gen.(list_size (int_range 0 20) (pair (int_range 0 5) (int_range 0 5)))
    (fun pairs ->
      let db = Database.create () in
      let schema = [ ("A", Vtype.Int); ("B", Vtype.Int) ] in
      Database.add_relation db "T"
        (Relation.make schema
           (List.map (fun (a, b) -> [ Value.Int a; Value.Int b ]) pairs));
      let back = run db (Lera.Unnest (Lera.Nest (Lera.Base "T", [ 1 ], [ 2 ]), 2)) in
      Relation.equal back (run db (Lera.Base "T")))

let test_deep_nesting_eval () =
  (* five stacked operators evaluate without issue *)
  let db = Fixtures.chain_db 8 in
  let q =
    Lera.Project
      ( Lera.Filter
          ( Lera.Union
              [
                Lera.Search
                  ( [ Lera.Base "EDGE"; Lera.Base "EDGE" ],
                    Lera.eq (Lera.col 1 2) (Lera.col 2 1),
                    [ Lera.col 1 1; Lera.col 2 2 ] );
                Lera.Base "EDGE";
              ],
            Lera.Call ("<", [ Lera.col 1 1; Lera.Cst (Value.Int 5) ]) ),
        [ Lera.col 1 2 ] )
  in
  Alcotest.(check bool) "non-empty" true (Relation.cardinality (run db q) > 0)

let test_fix_inside_search_inside_fix () =
  (* a closed fixpoint nested as an operand of another fixpoint's arm *)
  let db = Fixtures.chain_db 5 in
  let inner_tc =
    Lera.Fix
      ( "I",
        Lera.Union
          [
            Lera.Base "EDGE";
            Lera.Search
              ( [ Lera.Base "EDGE"; Lera.Rvar "I" ],
                Lera.eq (Lera.col 1 2) (Lera.col 2 1),
                [ Lera.col 1 1; Lera.col 2 2 ] );
          ] )
  in
  let outer =
    Lera.Fix
      ( "O",
        Lera.Union
          [
            inner_tc;
            Lera.Search
              ( [ Lera.Rvar "O"; Lera.Base "EDGE" ],
                Lera.eq (Lera.col 1 2) (Lera.col 2 1),
                [ Lera.col 1 1; Lera.col 2 2 ] );
          ] )
  in
  (* outer adds nothing beyond the closure *)
  Alcotest.(check bool) "nested fix evaluates to the closure" true
    (Relation.equal (run db outer) (run db inner_tc))

let suite =
  [
    Alcotest.test_case "scalar expression basics" `Quick test_expr_basics;
    Alcotest.test_case "value() and projection" `Quick test_expr_value_and_projection;
    Alcotest.test_case "filter and project" `Quick test_filter_and_project;
    Alcotest.test_case "member over enum set" `Quick test_member_enum_vs_string;
    Alcotest.test_case "search = filter∘join∘project" `Quick test_search_equivalent_to_filter_join;
    Alcotest.test_case "union/diff/inter" `Quick test_union_diff_inter;
    Alcotest.test_case "fixpoint on a chain" `Quick test_fixpoint_chain;
    Alcotest.test_case "naive and semi-naive agree" `Quick test_fixpoint_modes_agree;
    Alcotest.test_case "semi-naive does less work" `Quick test_seminaive_cheaper;
    Alcotest.test_case "nest and unnest" `Quick test_nest_unnest;
    Alcotest.test_case "filter pushdown reduces work" `Quick test_filter_pushdown_reduces_work;
    Alcotest.test_case "recursion variable binding" `Quick test_rvar_binding;
    Alcotest.test_case "unnest of empty collections" `Quick test_unnest_empty_collections;
    Alcotest.test_case "deep operator nesting" `Quick test_deep_nesting_eval;
    Alcotest.test_case "fix nested in fix" `Quick test_fix_inside_search_inside_fix;
  ]
  @ [ QCheck_alcotest.to_alcotest test_nest_unnest_property ]
