(* Tests for the observability subsystem (Eds_obs): the JSON codec, the
   Chrome trace-event sink, the disabled-by-default guarantees, per-pass
   rewrite statistics and the rule profiler. *)

module Obs = Eds_obs.Obs
module Json = Eds_obs.Obs.Json
module Session = Eds.Session
module Engine = Eds_rewriter.Engine
module Rule = Eds_rewriter.Rule
module Rulesets = Eds_rewriter.Rulesets
module Optimizer = Eds_rewriter.Optimizer
module Value = Eds_value.Value
module Database = Eds_engine.Database

(* every test must leave the global observability state untouched *)
let isolated f =
  Fun.protect
    ~finally:(fun () ->
      Obs.set_sink None;
      Obs.Profile.set_current None;
      Obs.reset_metrics ())
    f

(* -- JSON codec ---------------------------------------------------------- *)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("name", Json.Str "rule:push_select \"quoted\"\n");
        ("ts", Json.Float 1786022096406572.);
        ("n", Json.Int (-42));
        ("ok", Json.Bool true);
        ("nothing", Json.Null);
        ("xs", Json.List [ Json.Int 1; Json.Float 2.5; Json.Str "é" ]);
      ]
  in
  let s = Json.to_string v in
  match Json.parse s with
  | Error e -> Alcotest.failf "roundtrip parse failed: %s" e
  | Ok v' ->
    Alcotest.(check string) "roundtrip identical" s (Json.to_string v');
    Alcotest.(check (option int)) "int member" (Some (-42)) (Option.bind (Json.member "n" v') Json.to_int);
    Alcotest.(check (option string))
      "unicode string survives" (Some "é")
      (match Json.member "xs" v' with
      | Some (Json.List [ _; _; s ]) -> Json.to_str s
      | _ -> None)

let test_json_parse_errors () =
  (match Json.parse "{\"a\": }" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "malformed object should not parse");
  (match Json.parse "[1, 2" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unterminated array should not parse");
  match Json.parse {|"A\n"|} with
  | Ok (Json.Str "A\n") -> ()
  | Ok j -> Alcotest.failf "unexpected escape decode: %s" (Json.to_string j)
  | Error e -> Alcotest.failf "escape parse failed: %s" e

let test_json_float_repr () =
  (* timestamps in epoch microseconds must survive printing *)
  let big = 1786022096406572.25 in
  match Json.parse (Json.to_string (Json.Float big)) with
  | Ok (Json.Float f) -> Alcotest.(check (float 0.)) "round-trips" big f
  | _ -> Alcotest.fail "float did not parse back"

(* -- disabled-by-default guarantees -------------------------------------- *)

let test_disabled_noop () =
  isolated @@ fun () ->
  Obs.set_sink None;
  Obs.reset_metrics ();
  Alcotest.(check bool) "disabled" false (Obs.enabled ());
  (* every tracing entry point must be callable and inert with no sink *)
  Alcotest.(check int) "span is transparent" 7 (Obs.span "s" (fun () -> 7));
  Obs.span_begin "x";
  Obs.span_end "x";
  Obs.instant "i";
  Obs.counter "c" 1.;
  Obs.histogram "h" 2.;
  (* regression: measurements are never dropped — counters and
     histograms record even with tracing off (they used to be gated on
     a sink being installed, silently losing every observation) *)
  let j = Obs.metrics () in
  let get name field =
    Option.bind (Json.member name j) (fun m ->
        Option.bind (Json.member field m) Json.to_float)
  in
  Alcotest.(check (option (float 0.))) "counter recorded without sink" (Some 1.)
    (get "c" "sum");
  Alcotest.(check (option (float 0.))) "histogram recorded without sink" (Some 2.)
    (get "h" "sum");
  let v, events = Obs.with_collector (fun () -> 9) in
  Alcotest.(check int) "collector transparent" 9 v;
  Alcotest.(check int) "no events collected when disabled" 0 (List.length events)

let test_span_balances_on_exception () =
  isolated @@ fun () ->
  let sink, get = Obs.memory_sink () in
  Obs.set_sink (Some sink);
  (try Obs.span "boom" (fun () -> failwith "no") with Failure _ -> ());
  Obs.set_sink None;
  match get () with
  | [ Obs.Begin { name = "boom"; _ }; Obs.End { name = "boom"; _ } ] -> ()
  | evs -> Alcotest.failf "expected balanced B/E, got %d events" (List.length evs)

(* -- the Chrome trace-event sink ----------------------------------------- *)

let view_stack_session ~depth =
  let s = Session.create () in
  ignore (Session.exec_string s "TABLE BASE (A : NUMERIC, B : NUMERIC, C : NUMERIC)");
  let db = Session.database s in
  for i = 1 to 30 do
    Database.insert db "BASE"
      [ Value.Int (i * 7 mod 100); Value.Int (i * 13 mod 100); Value.Int i ]
  done;
  for i = 1 to depth do
    let prev = if i = 1 then "BASE" else Fmt.str "V%d" (i - 1) in
    ignore
      (Session.exec_string s
         (Fmt.str "CREATE VIEW V%d (A, B, C) AS SELECT A, B, C FROM %s WHERE A > %d"
            i prev i))
  done;
  s

let test_trace_file_valid () =
  isolated @@ fun () ->
  let path = Filename.temp_file "eds_trace" ".json" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let oc = open_out path in
  Obs.set_sink (Some (Obs.trace_sink oc));
  let s = view_stack_session ~depth:2 in
  ignore (Session.query s "SELECT A FROM V2 WHERE B > 50");
  Obs.set_sink None;
  close_out oc;
  let text = In_channel.with_open_text path In_channel.input_all in
  (* the whole file is one JSON array… *)
  let records =
    match Json.parse text with
    | Ok (Json.List rs) -> rs
    | Ok _ -> Alcotest.fail "trace file is not a JSON array"
    | Error e -> Alcotest.failf "trace file does not parse: %s" e
  in
  Alcotest.(check bool) "trace has events" true (List.length records > 0);
  (* …and each line between the brackets is a self-contained record
     (JSON-Lines style, so a truncated trace is still greppable) *)
  String.split_on_char '\n' (String.trim text)
  |> List.iter (fun line ->
         let line = String.trim line in
         if line <> "[" && line <> "]" && line <> "" then begin
           let line =
             if String.length line > 0 && line.[String.length line - 1] = ','
             then String.sub line 0 (String.length line - 1)
             else line
           in
           match Json.parse line with
           | Ok (Json.Obj _) -> ()
           | _ -> Alcotest.failf "line is not a JSON object: %s" line
         end);
  let field name r = Json.member name r in
  let begins = Hashtbl.create 16 and ends = Hashtbl.create 16 in
  List.iter
    (fun r ->
      List.iter
        (fun key ->
          if field key r = None then
            Alcotest.failf "record missing %s: %s" key (Json.to_string r))
        [ "name"; "ph"; "ts"; "pid"; "tid" ];
      let name = Option.get (Option.bind (field "name" r) Json.to_str) in
      let bump tbl =
        Hashtbl.replace tbl name (1 + Option.value ~default:0 (Hashtbl.find_opt tbl name))
      in
      match Option.bind (field "ph" r) Json.to_str with
      | Some "B" -> bump begins
      | Some "E" -> bump ends
      | Some ("X" | "i" | "C") -> ()
      | ph ->
        Alcotest.failf "unknown phase %s" (Option.value ~default:"<none>" ph))
    records;
  Hashtbl.iter
    (fun name b ->
      let e = Option.value ~default:0 (Hashtbl.find_opt ends name) in
      Alcotest.(check int) (Fmt.str "balanced B/E for %s" name) b e)
    begins;
  (* the pipeline phases all show up *)
  let names =
    List.filter_map (fun r -> Option.bind (field "name" r) Json.to_str) records
  in
  List.iter
    (fun expected ->
      Alcotest.(check bool) (Fmt.str "%s present" expected) true
        (List.mem expected names))
    [ "parse"; "translate"; "rewrite"; "execute" ]

let test_trace_agrees_with_stats () =
  isolated @@ fun () ->
  let sink, _get = Obs.memory_sink () in
  Obs.set_sink (Some sink);
  let s = view_stack_session ~depth:3 in
  let plan = Session.explain s "SELECT A FROM V3 WHERE B > 50" in
  Obs.set_sink None;
  (* fired rule:NAME complete-events in the plan's own trace must agree
     exactly with the engine's by_rule statistics *)
  let fired = Hashtbl.create 16 in
  List.iter
    (fun e ->
      match e with
      | Obs.Complete { name; attrs; _ }
        when String.length name > 5 && String.sub name 0 5 = "rule:" ->
        let outcome =
          Option.bind (List.assoc_opt "outcome" attrs) Json.to_str
        in
        if outcome = Some "fired" then begin
          let rule = String.sub name 5 (String.length name - 5) in
          Hashtbl.replace fired rule
            (1 + Option.value ~default:0 (Hashtbl.find_opt fired rule))
        end
      | _ -> ())
    plan.Session.trace;
  let by_rule = plan.Session.rewrite_stats.Engine.by_rule in
  Alcotest.(check bool) "some rule fired" true (List.length by_rule > 0);
  List.iter
    (fun (rule, n) ->
      Alcotest.(check int) (Fmt.str "trace fires for %s" rule) n
        (Option.value ~default:0 (Hashtbl.find_opt fired rule)))
    by_rule;
  Alcotest.(check int) "no extra fired rules in trace" (List.length by_rule)
    (Hashtbl.length fired)

(* -- per-pass block statistics ------------------------------------------- *)

let test_per_pass_stats () =
  isolated @@ fun () ->
  let s = view_stack_session ~depth:3 in
  let cat = Session.catalog s in
  let translated =
    Eds_esql.Translate.select cat
      (Eds_esql.Parser.parse_select "SELECT A FROM V3 WHERE B > 50")
  in
  let ctx = Optimizer.make_ctx (Eds_esql.Catalog.schema_env cat) in
  let program =
    {
      Rule.blocks =
        [
          Rule.block "merging" (Rulesets.merging ());
          Rule.block "merging" (Rulesets.merging ());
        ];
      rounds = 1;
    }
  in
  let stats = Engine.fresh_stats () in
  ignore (Optimizer.rewrite ~program ~stats ctx translated);
  (* one entry per executed pass, in execution order *)
  Alcotest.(check int) "two passes recorded" 2 (List.length stats.Engine.passes);
  List.iter
    (fun (name, _) -> Alcotest.(check string) "pass name" "merging" name)
    stats.Engine.passes;
  (* the name-summed view equals the fold of the passes *)
  let summed = Engine.block_stats stats "merging" in
  let fold f = List.fold_left (fun acc (_, bs) -> acc + f bs) 0 stats.Engine.passes in
  Alcotest.(check int) "conditions sum" summed.Engine.conditions
    (fold (fun bs -> bs.Engine.conditions));
  Alcotest.(check int) "rewrites sum" summed.Engine.rewrites
    (fold (fun bs -> bs.Engine.rewrites));
  Alcotest.(check int) "nodes sum" summed.Engine.nodes
    (fold (fun bs -> bs.Engine.nodes));
  (* the first pass does the merging; the second finds nothing new *)
  (match stats.Engine.passes with
  | [ (_, p1); (_, p2) ] ->
    Alcotest.(check bool) "first pass rewrites" true (p1.Engine.rewrites > 0);
    Alcotest.(check int) "second pass idle" 0 p2.Engine.rewrites
  | _ -> Alcotest.fail "expected exactly two passes");
  Alcotest.(check bool) "rewrites happened" true (summed.Engine.rewrites > 0)

(* -- the rule profiler ---------------------------------------------------- *)

let test_profile_view_stack () =
  isolated @@ fun () ->
  Obs.Profile.set_current (Some (Obs.Profile.create ()));
  let s = view_stack_session ~depth:3 in
  let plan = Session.explain s "SELECT A FROM V3 WHERE B > 50" in
  let profile = Option.get (Obs.Profile.current ()) in
  Obs.Profile.set_current None;
  let cells = Obs.Profile.cells profile in
  Alcotest.(check bool) "profile has cells" true (List.length cells > 0);
  (* the merging rules must show nonzero fire counts on a view stack *)
  let fires_of rule =
    List.fold_left
      (fun acc ((_, r), (c : Obs.Profile.cell)) ->
        if r = rule then acc + c.Obs.Profile.fires else acc)
      0 cells
  in
  Alcotest.(check bool) "search_merge fired" true (fires_of "search_merge" > 0);
  (* fire counts agree with the engine's statistics *)
  List.iter
    (fun (rule, n) ->
      Alcotest.(check int) (Fmt.str "profile fires for %s" rule) n (fires_of rule))
    plan.Session.rewrite_stats.Engine.by_rule;
  (* attempted-but-never-fired cells are flagged, per (block, rule):
     search_merge can fire in "merging" yet be dead in "merging_again" *)
  let cell_fires key =
    List.fold_left
      (fun acc (k, (c : Obs.Profile.cell)) ->
        if k = key then acc + c.Obs.Profile.fires else acc)
      0 cells
  in
  let attempted_unfired = Obs.Profile.never_fired profile in
  List.iter
    (fun ((_, rule) as key) ->
      Alcotest.(check int) (Fmt.str "%s reported unfired" rule) 0 (cell_fires key))
    attempted_unfired;
  (* rules the program contains but never even attempted are flagged when
     the full rule list is supplied *)
  let all_rules =
    List.concat_map
      (fun b -> List.map (fun r -> (b.Rule.block_name, r.Rule.name)) b.Rule.rules)
      (Session.program s).Rule.blocks
  in
  let flagged = Obs.Profile.never_fired ~all_rules profile in
  Alcotest.(check bool) "some rules never fired" true (List.length flagged > 0);
  (* e.g. the fixpoint rules have nothing to do on a non-recursive query *)
  Alcotest.(check bool) "alexander_rule flagged" true
    (List.exists (fun (_, r) -> r = "alexander_rule") flagged)

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_profile_report_text () =
  isolated @@ fun () ->
  Obs.Profile.set_current (Some (Obs.Profile.create ()));
  let s = view_stack_session ~depth:3 in
  ignore (Session.explain s "SELECT A FROM V3 WHERE B > 50");
  let profile = Option.get (Obs.Profile.current ()) in
  Obs.Profile.set_current None;
  let all_rules =
    List.concat_map
      (fun b -> List.map (fun r -> (b.Rule.block_name, r.Rule.name)) b.Rule.rules)
      (Session.program s).Rule.blocks
  in
  let report = Fmt.str "%a" (Obs.Profile.pp ~all_rules) profile in
  Alcotest.(check bool) "mentions search_merge" true
    (contains ~sub:"search_merge" report);
  Alcotest.(check bool) "flags dead rules" true
    (contains ~sub:"never fired" report)

(* -- metrics -------------------------------------------------------------- *)

let test_metrics_collection () =
  isolated @@ fun () ->
  Obs.enable_metrics ();
  Obs.counter "widgets" 2.;
  Obs.counter "widgets" 3.;
  Obs.histogram "latency" 10.;
  Obs.histogram "latency" 20.;
  let j = Obs.metrics () in
  let get name field =
    Option.bind (Json.member name j) (fun m ->
        Option.bind (Json.member field m) Json.to_float)
  in
  Alcotest.(check (option (float 0.))) "counter sum" (Some 5.) (get "widgets" "sum");
  Alcotest.(check (option (float 0.))) "histogram count" (Some 2.)
    (get "latency" "count");
  Alcotest.(check (option (float 0.))) "histogram max" (Some 20.)
    (get "latency" "max");
  Obs.reset_metrics ();
  match Obs.metrics () with
  | Json.Obj [] -> ()
  | j -> Alcotest.failf "reset left metrics behind: %s" (Json.to_string j)

let suite =
  [
    Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
    Alcotest.test_case "json parse errors" `Quick test_json_parse_errors;
    Alcotest.test_case "json float repr" `Quick test_json_float_repr;
    Alcotest.test_case "disabled is a no-op" `Quick test_disabled_noop;
    Alcotest.test_case "span balances on exception" `Quick
      test_span_balances_on_exception;
    Alcotest.test_case "trace file is valid Chrome JSON" `Quick
      test_trace_file_valid;
    Alcotest.test_case "trace fire counts agree with stats" `Quick
      test_trace_agrees_with_stats;
    Alcotest.test_case "per-pass block stats" `Quick test_per_pass_stats;
    Alcotest.test_case "profile: view-stack golden" `Quick test_profile_view_stack;
    Alcotest.test_case "profile: report text" `Quick test_profile_report_text;
    Alcotest.test_case "metrics collection" `Quick test_metrics_collection;
  ]
