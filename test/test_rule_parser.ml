(* Tests for the rule-language parser (paper §4.1-4.2, Figure 6). *)

module Value = Eds_value.Value
module Term = Eds_term.Term
module Rule = Eds_rewriter.Rule
module Rule_parser = Eds_rewriter.Rule_parser
module Rulesets = Eds_rewriter.Rulesets

let term = Alcotest.testable Term.pp Term.equal

let test_parse_simple_rule () =
  let r = Rule_parser.parse_rule "r1: f(x, y) / x = y --> g(x) / m(x, out)" in
  Alcotest.(check string) "name" "r1" r.Rule.name;
  Alcotest.check term "lhs" (Term.app "f" [ Term.var "x"; Term.var "y" ]) r.Rule.lhs;
  Alcotest.(check int) "one constraint" 1 (List.length r.Rule.constraints);
  Alcotest.check term "rhs" (Term.app "g" [ Term.var "x" ]) r.Rule.rhs;
  Alcotest.(check int) "one method" 1 (List.length r.Rule.methods)

let test_parse_paper_syntax_example () =
  (* the syntactically-correct rule of §4.1:
     F(SET(x#, G(y, f))) / MEMBER(y, x#), f = TRUE --> F(x#) where # marks a cvar *)
  let r =
    Rule_parser.parse_rule
      "F(SET(x*, G(y, f))) / MEMBER(y, x*), f = TRUE --> F(SET(x*)) /"
  in
  (match r.Rule.lhs with
  | Term.App (f, [ Term.Coll (Term.Set, [ Term.Cvar "x"; Term.App (g, _) ]) ]) ->
    Alcotest.(check bool) "F is a function variable" true (Term.is_fvar f);
    Alcotest.(check bool) "G is a function variable" true (Term.is_fvar g)
  | t -> Alcotest.failf "lhs shape: %a" Term.pp t);
  Alcotest.(check int) "two constraints" 2 (List.length r.Rule.constraints)

let test_parse_collection_variables () =
  Alcotest.check term "cvar vs multiplication"
    (Term.app "*" [ Term.var "x"; Term.var "y" ])
    (Rule_parser.parse_term "x * y");
  Alcotest.check term "trailing star is a cvar"
    (Term.Coll (Term.List, [ Term.Cvar "x"; Term.var "y" ]))
    (Rule_parser.parse_term "list(x*, y)")

let test_parse_and_or_normal_form () =
  Alcotest.check term "infix AND chains flatten"
    (Term.app "and"
       [
         Term.Coll
           ( Term.Bag,
             [
               Term.app "=" [ Term.var "a"; Term.var "b" ];
               Term.app "<" [ Term.var "c"; Term.var "d" ];
               Term.var "e";
             ] );
       ])
    (Rule_parser.parse_term "a = b AND c < d AND e");
  Alcotest.check term "prefix AND over a bag stays"
    (Rule_parser.parse_term "and(bag(p, q))")
    (Rule_parser.parse_term "p AND q")

let test_parse_set_literal_and_column () =
  Alcotest.check term "constant set"
    (Term.Cst (Value.set [ Value.Str "a"; Value.Str "b" ]))
    (Rule_parser.parse_term "{'a', 'b'}");
  Alcotest.check term "column reference"
    (Term.app "@" [ Term.int 1; Term.int 2 ])
    (Rule_parser.parse_term "@(1, 2)")

let test_parse_errors () =
  let fails s =
    try
      ignore (Rule_parser.parse_rule s);
      false
    with Rule_parser.Rule_parse_error _ -> true
  in
  Alcotest.(check bool) "missing arrow" true (fails "f(x) / x = 1");
  Alcotest.(check bool) "garbage" true (fails "f(x) --> g(x) extra");
  Alcotest.(check bool) "unterminated" true (fails "f(x --> g(x)")

(* malformed rules carry line/column and the offending token (ISSUE 10
   satellite): the positions below are pinned against the probe inputs *)
let test_error_positions () =
  let err s =
    try
      ignore (Rule_parser.parse_rules s);
      Alcotest.failf "expected a parse error on %S" s
    with Rule_parser.Rule_parse_error e -> e
  in
  let contains sub s =
    let n = String.length sub and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  let e = err "r: f(x) / x = 1 ;" in
  Alcotest.(check int) "missing arrow: line" 1 e.Rule_parser.line;
  Alcotest.(check int) "missing arrow: column" 17 e.Rule_parser.column;
  Alcotest.(check string) "missing arrow: token" ";" e.Rule_parser.token;
  let e = err "r: f(x --> g(x) ;" in
  Alcotest.(check int) "unclosed paren: column" 8 e.Rule_parser.column;
  Alcotest.(check string) "unclosed paren: token" "-->" e.Rule_parser.token;
  Alcotest.(check bool) "unclosed paren: message" true
    (contains "expected )" e.Rule_parser.message);
  (* errors in later rules report the right line of a multi-line pack *)
  let e = err "ok: f(x) --> g(x) ;\nbad: f( --> g(x) ;" in
  Alcotest.(check int) "second rule: line" 2 e.Rule_parser.line;
  Alcotest.(check int) "second rule: column" 9 e.Rule_parser.column;
  (* lexical errors are positioned too *)
  let e = err "r: f(?) --> g(x) ;" in
  Alcotest.(check int) "lex error: line" 1 e.Rule_parser.line;
  Alcotest.(check int) "lex error: column" 6 e.Rule_parser.column;
  Alcotest.(check bool) "lex error: message" true
    (contains "lexical error" e.Rule_parser.message);
  (* the rendering used by the shell's error line carries it all *)
  let rendered = Rule_parser.error_to_string (err "r f(x) --> g(x) ;") in
  Alcotest.(check bool) "rendered position" true (contains "line 1" rendered);
  Alcotest.(check bool) "rendered token" true
    (contains "identifier f" rendered)

let test_default_library_parses () =
  (* every figure-derived rule set loads *)
  Alcotest.(check int) "merging rules" 6 (List.length (Rulesets.merging ()));
  Alcotest.(check int) "permutation rules" 8 (List.length (Rulesets.permutation ()));
  Alcotest.(check int) "fixpoint rules" 2 (List.length (Rulesets.fixpoint ()));
  Alcotest.(check int) "semantic rules" 6 (List.length (Rulesets.semantic ()));
  Alcotest.(check bool) "simplification rules present" true
    (List.length (Rulesets.simplification ()) >= 20);
  (* names are unique within each set (the same rule may appear in
     several blocks, §4.2 — union_singleton does) *)
  List.iter
    (fun (label, rules) ->
      let names = List.map (fun (r : Rule.t) -> r.Rule.name) rules in
      Alcotest.(check int)
        (Fmt.str "unique names in %s" label)
        (List.length names)
        (List.length (List.sort_uniq String.compare names)))
    [
      ("merging", Rulesets.merging ());
      ("permutation", Rulesets.permutation ());
      ("fixpoint", Rulesets.fixpoint ());
      ("semantic", Rulesets.semantic ());
      ("simplification", Rulesets.simplification ());
    ]

let test_rule_pp_round_trip () =
  (* printing a parsed rule and reparsing yields the same rule *)
  List.iter
    (fun (r : Rule.t) ->
      let printed = Fmt.str "%a" Rule.pp r in
      let r' = Rule_parser.parse_rule printed in
      Alcotest.(check bool)
        (Fmt.str "round trip %s" r.Rule.name)
        true
        (Term.equal r.Rule.lhs r'.Rule.lhs && Term.equal r.Rule.rhs r'.Rule.rhs
        && List.equal Term.equal r.Rule.constraints r'.Rule.constraints))
    (Rulesets.all ())

let test_meta_parsing () =
  let metas =
    Rule_parser.parse_meta
      {|
      block(merge, {search_merge, union_merge}, infinite) ;
      block(simplify, {and_false}, 50) ;
      seq({merge, simplify, merge}, 2) ;
    |}
  in
  Alcotest.(check int) "three declarations" 3 (List.length metas);
  let prog = Rule_parser.resolve_program ~rules:(Rulesets.all ()) metas in
  Alcotest.(check int) "three blocks in sequence (merge twice)" 3
    (List.length prog.Rule.blocks);
  Alcotest.(check int) "rounds" 2 prog.Rule.rounds;
  (match (List.nth prog.Rule.blocks 1).Rule.limit with
  | Some 50 -> ()
  | _ -> Alcotest.fail "simplify limit");
  Alcotest.(check bool) "unknown rule rejected" true
    (try
       ignore
         (Rule_parser.resolve_program ~rules:[]
            [ Rule_parser.Block_decl { name = "b"; rule_names = [ "nope" ]; limit = None } ]);
       false
     with Rule_parser.Rule_parse_error _ -> true)

let test_figure10_constraint_declarations () =
  (* the exact Figure-10 declarations parse into (type, template) pairs *)
  let open Eds_rewriter.Optimizer in
  let ty, template =
    parse_integrity_constraint "F(x) / ISA(x, Point) --> F(x) AND ABS(x) > 0"
  in
  Alcotest.(check string) "type" "point" ty;
  Alcotest.check term "template"
    (Term.app ">" [ Term.app "abs" [ Term.var "x" ]; Term.int 0 ])
    template;
  let ty2, template2 =
    parse_integrity_constraint
      "F(x) / ISA(x, Category) --> F(x) AND member(x, {'Comedy', 'Adventure'})"
  in
  Alcotest.(check string) "type 2" "category" ty2;
  (match template2 with
  | Term.App ("member", [ Term.Var "x"; Term.Cst _ ]) -> ()
  | t -> Alcotest.failf "template 2: %a" Term.pp t);
  Alcotest.(check bool) "non-constraint shape rejected" true
    (try
       ignore (parse_integrity_constraint "f(x) --> g(x)");
       false
     with Rule_parser.Rule_parse_error _ -> true)

let suite =
  [
    Alcotest.test_case "simple rule" `Quick test_parse_simple_rule;
    Alcotest.test_case "§4.1 example rule" `Quick test_parse_paper_syntax_example;
    Alcotest.test_case "cvar vs multiplication" `Quick test_parse_collection_variables;
    Alcotest.test_case "AND/OR normal form" `Quick test_parse_and_or_normal_form;
    Alcotest.test_case "set literals and columns" `Quick test_parse_set_literal_and_column;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "error positions" `Quick test_error_positions;
    Alcotest.test_case "default library parses" `Quick test_default_library_parses;
    Alcotest.test_case "rule pp round trip" `Quick test_rule_pp_round_trip;
    Alcotest.test_case "meta-rules: block and seq" `Quick test_meta_parsing;
    Alcotest.test_case "Figure-10 declarations" `Quick test_figure10_constraint_declarations;
  ]
