(* Tests for the ESQL front end: lexer, parser, catalog and the
   translating type checker, exercised on the paper's Figures 2-5. *)

module Value = Eds_value.Value
module Vtype = Eds_value.Vtype
module Lera = Eds_lera.Lera
module Schema = Eds_lera.Schema
module Lexer = Eds_esql.Lexer
module Parser = Eds_esql.Parser
module Ast = Eds_esql.Ast
module Catalog = Eds_esql.Catalog
module Translate = Eds_esql.Translate

let rel = Alcotest.testable Lera.pp Lera.equal

(* The Figure-2 schema, as ESQL DDL. *)
let figure2_ddl =
  {|
  TYPE Category ENUMERATION OF ('Comedy', 'Adventure', 'Science Fiction', 'Western') ;
  TYPE Point TUPLE (ABS : REAL, ORD : REAL) ;
  TYPE Person OBJECT TUPLE (
    Name : CHAR,
    Firstname : SET OF CHAR,
    Caricature : LIST OF Point) ;
  TYPE Actor SUBTYPE OF Person OBJECT TUPLE (Salary : NUMERIC)
    FUNCTION IncreaseSalary(This Actor, Val NUMERIC) ;
  TYPE Text LIST OF CHAR ;
  TYPE SetCategory SET OF Category ;
  TYPE Pairs LIST OF TUPLE (Pros : INT, Cons : INT) ;
  TABLE FILM (Numf : NUMERIC, Title : Text, Categories : SetCategory) ;
  TABLE APPEARS_IN (Numf : NUMERIC, Refactor : Actor) ;
  TABLE DOMINATE (Numf : NUMERIC, Refactor1 : Actor, Refactor2 : Actor, Score : Pairs) ;
|}

let catalog () =
  let cat = Catalog.create () in
  List.iter (Catalog.apply_ddl cat) (Parser.parse_program figure2_ddl);
  cat

(* Figure 3 query *)
let figure3 =
  {|SELECT Title, Categories, Salary(Refactor)
    FROM FILM, APPEARS_IN
    WHERE FILM.Numf = APPEARS_IN.Numf
      AND Name(Refactor) = 'Quinn'
      AND MEMBER('Adventure', Categories)|}

(* Figure 4 view + query *)
let figure4_view =
  {|CREATE VIEW FilmActors (Title, Categories, Actors) AS
    SELECT Title, Categories, MakeSet(Refactor)
    FROM FILM, APPEARS_IN
    WHERE FILM.Numf = APPEARS_IN.Numf
    GROUP BY Title, Categories|}

let figure4_query =
  {|SELECT Title FROM FilmActors
    WHERE MEMBER('Adventure', Categories) AND ALL (Salary(Actors) > 10000)|}

(* Figure 5 view + query *)
let figure5_view =
  {|CREATE VIEW BETTER_THAN (Refactor1, Refactor2) AS
    ( SELECT Refactor1, Refactor2 FROM DOMINATE
      UNION
      SELECT B1.Refactor1, B2.Refactor2
      FROM BETTER_THAN B1, BETTER_THAN B2
      WHERE B1.Refactor2 = B2.Refactor1 )|}

let figure5_query =
  {|SELECT Name(Refactor1) FROM BETTER_THAN WHERE Name(Refactor2) = 'Quinn'|}

(* -- lexer -------------------------------------------------------------- *)

let test_lexer_basics () =
  let toks = List.map fst (Lexer.tokenize "SELECT x, 'it''s' FROM t WHERE a <= 1.5 --c\n;") in
  Alcotest.(check int) "token count" 12 (List.length toks);
  (match toks with
  | Lexer.IDENT "SELECT" :: Lexer.IDENT "x" :: Lexer.COMMA
    :: Lexer.STRING "it's" :: _ ->
    ()
  | _ -> Alcotest.fail "unexpected tokens");
  Alcotest.(check bool) "arrow token" true
    (List.exists (fun (t, _) -> t = Lexer.ARROW) (Lexer.tokenize "a --> b"))

let test_lexer_errors () =
  Alcotest.(check bool) "unterminated string" true
    (try
       ignore (Lexer.tokenize "'oops");
       false
     with Lexer.Lex_error _ -> true);
  Alcotest.(check bool) "bad character" true
    (try
       ignore (Lexer.tokenize "a ? b");
       false
     with Lexer.Lex_error _ -> true)

(* -- parser ------------------------------------------------------------- *)

let test_parse_figure2 () =
  let stmts = Parser.parse_program figure2_ddl in
  Alcotest.(check int) "ten statements" 10 (List.length stmts);
  match List.nth stmts 3 with
  | Ast.Create_type { name = "Actor"; supertype = Some "Person"; is_object = true;
                      functions = [ "IncreaseSalary" ]; _ } ->
    ()
  | s -> Alcotest.failf "Actor decl mis-parsed: %a" Ast.pp_stmt s

let test_parse_select_shape () =
  let s = Parser.parse_select figure3 in
  Alcotest.(check int) "three projections" 3 (List.length s.Ast.proj);
  Alcotest.(check int) "two FROM items" 2 (List.length s.Ast.from);
  Alcotest.(check bool) "has WHERE" true (Option.is_some s.Ast.where)

let test_parse_union_view () =
  match Parser.parse_stmt figure5_view with
  | Ast.Create_view
      { name = "BETTER_THAN"; columns = [ "Refactor1"; "Refactor2" ]; body; _ } ->
    Alcotest.(check bool) "body is a union" true (Option.is_some body.Ast.union);
    let arm2 = Option.get body.Ast.union in
    Alcotest.(check (list (pair string (option string))))
      "aliased self-references"
      [ ("BETTER_THAN", Some "B1"); ("BETTER_THAN", Some "B2") ]
      arm2.Ast.from
  | s -> Alcotest.failf "view mis-parsed: %a" Ast.pp_stmt s

let test_parse_operator_precedence () =
  match Parser.parse_expr "a = 1 AND b = 2 OR NOT c < 3" with
  | Ast.Binop ("or", Ast.Binop ("and", _, _), Ast.Not (Ast.Binop ("<", _, _))) -> ()
  | e -> Alcotest.failf "precedence wrong: %a" Ast.pp_expr e

let test_parse_quantifier_and_collections () =
  (match Parser.parse_expr "ALL (Salary(Actors) > 10000)" with
  | Ast.Quant (Ast.All, Ast.Binop (">", Ast.Call ("Salary", [ Ast.Ident "Actors" ]), _)) -> ()
  | e -> Alcotest.failf "quantifier: %a" Ast.pp_expr e);
  match Parser.parse_expr "x IN ('a', 'b')" with
  | Ast.In (Ast.Ident "x", Ast.Set_lit [ _; _ ]) -> ()
  | e -> Alcotest.failf "IN list: %a" Ast.pp_expr e

let test_parse_errors () =
  let fails input =
    try
      ignore (Parser.parse_stmt input);
      false
    with Parser.Parse_error _ | Lexer.Lex_error _ -> true
  in
  Alcotest.(check bool) "missing FROM" true (fails "SELECT x");
  Alcotest.(check bool) "trailing garbage" true (fails "SELECT x FROM t t2 t3");
  Alcotest.(check bool) "reserved as name" true (fails "TABLE SELECT (a : INT)")

let test_parse_dml () =
  (match Parser.parse_stmt "DELETE FROM FILM WHERE Numf = 1" with
  | Ast.Delete { table = "FILM"; where = Some _ } -> ()
  | s -> Alcotest.failf "delete: %a" Ast.pp_stmt s);
  (match Parser.parse_stmt "DELETE FROM FILM" with
  | Ast.Delete { where = None; _ } -> ()
  | s -> Alcotest.failf "unconditional delete: %a" Ast.pp_stmt s);
  (match Parser.parse_stmt "UPDATE FILM SET Numf = Numf + 1, Title = ['x'] WHERE Numf > 2" with
  | Ast.Update { table = "FILM"; assignments = [ ("Numf", _); ("Title", _) ]; where = Some _ } ->
    ()
  | s -> Alcotest.failf "update: %a" Ast.pp_stmt s);
  let fails input =
    try
      ignore (Parser.parse_stmt input);
      false
    with Parser.Parse_error _ -> true
  in
  Alcotest.(check bool) "update without SET" true (fails "UPDATE FILM Numf = 1");
  Alcotest.(check bool) "delete without FROM" true (fails "DELETE FILM")

let test_stmt_pp_reparses () =
  (* every statement's printer emits text the parser accepts again *)
  let stmts =
    Parser.parse_program figure2_ddl
    @ [
        Parser.parse_stmt figure4_view;
        Parser.parse_stmt figure5_view;
        Parser.parse_stmt "INSERT INTO FILM VALUES (9, ['t'], {'Comedy'})";
        Parser.parse_stmt "DELETE FROM FILM WHERE Numf = 9";
        Parser.parse_stmt "UPDATE FILM SET Numf = 1 WHERE Numf = 9";
        Parser.parse_stmt figure3;
      ]
  in
  List.iter
    (fun stmt ->
      let printed = Fmt.str "%a" Ast.pp_stmt stmt in
      match Parser.parse_stmt printed with
      | _ -> ()
      | exception (Parser.Parse_error msg | Lexer.Lex_error (msg, _)) ->
        Alcotest.failf "did not reparse: %s@.%s" printed msg)
    stmts

let test_lexer_positions () =
  let toks = Lexer.tokenize "ab cd" in
  (match toks with
  | [ (Lexer.IDENT "ab", 0); (Lexer.IDENT "cd", 3); (Lexer.EOF, _) ] -> ()
  | _ -> Alcotest.fail "positions wrong");
  (* error position points at the offending character *)
  match Lexer.tokenize "ab ? cd" with
  | _ -> Alcotest.fail "expected a lex error"
  | exception Lexer.Lex_error (_, 3) -> ()
  | exception Lexer.Lex_error (_, p) -> Alcotest.failf "position %d" p

(* -- catalog ------------------------------------------------------------ *)

let test_catalog_types () =
  let cat = catalog () in
  Alcotest.(check bool) "Actor ISA Person" true
    (Vtype.isa (Catalog.types cat) (Vtype.Object "Actor") (Vtype.Object "Person"));
  match Catalog.table cat "film" with
  | Some schema ->
    Alcotest.(check (list string)) "FILM columns (ci lookup)"
      [ "Numf"; "Title"; "Categories" ]
      (List.map fst schema)
  | None -> Alcotest.fail "FILM not found"

let test_catalog_view_recursion_flag () =
  let cat = catalog () in
  Catalog.apply_ddl cat (Parser.parse_stmt figure4_view);
  Catalog.apply_ddl cat (Parser.parse_stmt figure5_view);
  Alcotest.(check bool) "FilmActors non-recursive" false
    (Option.get (Catalog.view cat "FilmActors")).Catalog.recursive;
  Alcotest.(check bool) "BETTER_THAN recursive" true
    (Option.get (Catalog.view cat "BETTER_THAN")).Catalog.recursive

let test_catalog_duplicate_rejected () =
  let cat = catalog () in
  Alcotest.(check bool) "duplicate table" true
    (try
       Catalog.apply_ddl cat (Parser.parse_stmt "TABLE FILM (x : INT)");
       false
     with Catalog.Catalog_error _ -> true)

(* -- translation -------------------------------------------------------- *)

(* the paper's §3.1 target, modulo FROM-clause operand order (we keep the
   user's order FILM, APPEARS_IN; the paper lists APPEARS_IN first) *)
let expected_fig3 =
  Lera.Search
    ( [ Lera.Base "FILM"; Lera.Base "APPEARS_IN" ],
      Lera.conj
        [
          Lera.eq (Lera.col 1 1) (Lera.col 2 1);
          Lera.eq
            (Lera.Call
               ( "project",
                 [ Lera.Call ("value", [ Lera.col 2 2 ]); Lera.Cst (Value.Str "Name") ] ))
            (Lera.Cst (Value.Str "Quinn"));
          Lera.Call
            ( "member",
              [ Lera.Cst (Value.Enum ("Category", "Adventure")); Lera.col 1 3 ] );
        ],
      [
        Lera.col 1 2;
        Lera.col 1 3;
        Lera.Call
          ( "project",
            [ Lera.Call ("value", [ Lera.col 2 2 ]); Lera.Cst (Value.Str "Salary") ] );
      ] )

let test_translate_figure3 () =
  let cat = catalog () in
  let r = Translate.select cat (Parser.parse_select figure3) in
  Alcotest.check rel "canonical compound search" expected_fig3 r

let test_translate_inserts_conversions () =
  (* Salary(Refactor) > 1000 must become project(value(…), 'Salary') — the
     §3.3 example *)
  let cat = catalog () in
  let r =
    Translate.select cat
      (Parser.parse_select "SELECT Numf FROM APPEARS_IN WHERE Salary(Refactor) > 1000")
  in
  match r with
  | Lera.Search
      ( _,
        Lera.Call
          ( ">",
            [
              Lera.Call
                ( "project",
                  [ Lera.Call ("value", [ Lera.Col (1, 2) ]); Lera.Cst (Value.Str "Salary") ]
                );
              Lera.Cst (Value.Int 1000);
            ] ),
        _ ) ->
    ()
  | _ -> Alcotest.failf "conversions missing: %a" Lera.pp r

let test_translate_enum_coercion () =
  let cat = catalog () in
  let r =
    Translate.select cat
      (Parser.parse_select
         "SELECT Numf FROM FILM WHERE MEMBER('Western', Categories)")
  in
  match r with
  | Lera.Search (_, Lera.Call ("member", [ Lera.Cst (Value.Enum ("Category", "Western")); _ ]), _)
    ->
    ()
  | _ -> Alcotest.failf "enum literal not coerced: %a" Lera.pp r

let test_translate_figure4_nest () =
  let cat = catalog () in
  Catalog.apply_ddl cat (Parser.parse_stmt figure4_view);
  let v = Option.get (Catalog.view cat "FilmActors") in
  ignore v;
  let r = Translate.relation_of_name cat "FilmActors" in
  (match r with
  | Lera.Nest (Lera.Search ([ _; _ ], _, proj), [ 1; 2 ], [ 3 ]) ->
    Alcotest.(check int) "inner projection has 3 items" 3 (List.length proj)
  | _ -> Alcotest.failf "expected nest over search: %a" Lera.pp r);
  let sch = Translate.schema_of_name cat "FilmActors" in
  Alcotest.(check (list string)) "view column names"
    [ "Title"; "Categories"; "Actors" ]
    (List.map fst sch)

let test_translate_figure4_query () =
  let cat = catalog () in
  Catalog.apply_ddl cat (Parser.parse_stmt figure4_view);
  let r = Translate.select cat (Parser.parse_select figure4_query) in
  (* the view body appears as an operand of the outer search: the
     "arbitrary processing order imposed by the user-written views" *)
  match r with
  | Lera.Search ([ Lera.Nest _ ], qual, [ Lera.Col (1, 1) ]) ->
    let quals = Lera.conjuncts qual in
    Alcotest.(check int) "two conjuncts" 2 (List.length quals);
    Alcotest.(check bool) "quantifier translated" true
      (List.exists
         (fun q ->
           match q with
           | Lera.Call ("all", [ Lera.Call (">", [ Lera.Call ("project", _); _ ]) ]) -> true
           | _ -> false)
         quals)
  | _ -> Alcotest.failf "unexpected translation: %a" Lera.pp r

let test_translate_figure5_fix () =
  let cat = catalog () in
  Catalog.apply_ddl cat (Parser.parse_stmt figure5_view);
  let r = Translate.select cat (Parser.parse_select figure5_query) in
  match r with
  | Lera.Search ([ Lera.Fix ("BETTER_THAN", Lera.Union [ base; recursive ]) ], _, _) ->
    (match base with
    | Lera.Search ([ Lera.Base "DOMINATE" ], _, [ Lera.Col (1, 2); Lera.Col (1, 3) ]) -> ()
    | _ -> Alcotest.failf "base arm: %a" Lera.pp base);
    (match recursive with
    | Lera.Search
        ( [ Lera.Base "BETTER_THAN"; Lera.Base "BETTER_THAN" ],
          Lera.Call ("=", [ Lera.Col (1, 2); Lera.Col (2, 1) ]),
          [ Lera.Col (1, 1); Lera.Col (2, 2) ] ) ->
      ()
    | _ -> Alcotest.failf "recursive arm: %a" Lera.pp recursive)
  | _ -> Alcotest.failf "expected search over fix: %a" Lera.pp r

let test_translate_errors () =
  let cat = catalog () in
  let fails q =
    try
      ignore (Translate.select cat (Parser.parse_select q));
      false
    with Translate.Type_error _ -> true
  in
  Alcotest.(check bool) "unknown column" true (fails "SELECT zzz FROM FILM");
  Alcotest.(check bool) "ambiguous column" true
    (fails "SELECT Numf FROM FILM, APPEARS_IN");
  Alcotest.(check bool) "unknown attribute" true
    (fails "SELECT Wage(Refactor) FROM APPEARS_IN");
  Alcotest.(check bool) "quantifier over scalar" true
    (fails "SELECT Numf FROM FILM WHERE ALL (Numf > 1)");
  Alcotest.(check bool) "unknown table" true (fails "SELECT a FROM NOWHERE")

let test_aggregates_over_makeset () =
  (* aggregates are collection ADT functions over the MakeSet nest:
     cardinality = COUNT, all/exist = quantified predicates *)
  let cat = catalog () in
  let r =
    Translate.select cat
      (Parser.parse_select
         {|SELECT Title, cardinality(MakeSet(Refactor))
           FROM FILM, APPEARS_IN WHERE FILM.Numf = APPEARS_IN.Numf
           GROUP BY Title|})
  in
  (match r with
  | Lera.Project
      ( Lera.Nest (Lera.Search _, [ 1 ], [ 2 ]),
        [ Lera.Col (1, 1); Lera.Call ("cardinality", [ Lera.Col (1, 2) ]) ] ) ->
    ()
  | _ -> Alcotest.failf "aggregate shape: %a" Lera.pp r);
  (* non-grouped, non-nested projection rejected *)
  Alcotest.(check bool) "stray projection rejected" true
    (try
       ignore
         (Translate.select cat
            (Parser.parse_select
               {|SELECT Categories, MakeSet(Refactor)
                 FROM FILM, APPEARS_IN WHERE FILM.Numf = APPEARS_IN.Numf
                 GROUP BY Title|}));
       false
     with Translate.Type_error _ -> true)

let test_translate_more_errors () =
  let cat = catalog () in
  let fails q =
    try
      ignore (Translate.select cat (Parser.parse_select q));
      false
    with Translate.Type_error _ -> true
  in
  Alcotest.(check bool) "non-boolean WHERE" true
    (fails "SELECT Numf FROM FILM WHERE Numf + 1");
  Alcotest.(check bool) "attribute on scalar" true
    (fails "SELECT Name(Numf) FROM FILM");
  Alcotest.(check bool) "two different MakeSet args" true
    (fails
       "SELECT Title, MakeSet(Refactor), MakeSet(APPEARS_IN.Numf) FROM FILM, APPEARS_IN WHERE FILM.Numf = APPEARS_IN.Numf GROUP BY Title");
  Alcotest.(check bool) "self-reference outside recursive view is unknown" true
    (fails "SELECT a FROM NOT_A_VIEW");
  (* mutual recursion between views is detected, not looped on *)
  Catalog.apply_ddl cat
    (Parser.parse_stmt "CREATE VIEW VA (Numf) AS SELECT Numf FROM VB");
  Catalog.apply_ddl cat
    (Parser.parse_stmt "CREATE VIEW VB (Numf) AS SELECT Numf FROM VA");
  Alcotest.(check bool) "mutual recursion rejected" true
    (fails "SELECT Numf FROM VA")

let test_view_column_count_mismatch () =
  let cat = catalog () in
  Catalog.apply_ddl cat
    (Parser.parse_stmt "CREATE VIEW BAD (OnlyOne) AS SELECT Numf, Title FROM FILM");
  Alcotest.(check bool) "arity mismatch reported" true
    (try
       ignore (Translate.relation_of_name cat "BAD");
       false
     with Translate.Type_error _ -> true)

let test_union_view_arity_checked () =
  let cat = catalog () in
  Catalog.apply_ddl cat
    (Parser.parse_stmt
       {|CREATE VIEW MIXED (A) AS
         ( SELECT Numf FROM FILM UNION SELECT Numf, Title FROM FILM )|});
  Alcotest.(check bool) "union arm arity mismatch detected" true
    (try
       ignore
         (Schema.of_rel
            (Catalog.schema_env cat)
            (Translate.relation_of_name cat "MIXED"));
       false
     with Schema.Schema_error _ | Translate.Type_error _ -> true)

let test_expr_to_value () =
  let cat = catalog () in
  let v =
    Translate.expr_to_value cat
      ~expected:(Vtype.Named "SetCategory")
      (Parser.parse_expr "{'Comedy', 'Western'}")
  in
  Alcotest.(check bool) "coerced to enum set" true
    (Value.equal v
       (Value.set
          [ Value.Enum ("Category", "Comedy"); Value.Enum ("Category", "Western") ]))

let suite =
  [
    Alcotest.test_case "lexer basics" `Quick test_lexer_basics;
    Alcotest.test_case "lexer errors" `Quick test_lexer_errors;
    Alcotest.test_case "parse Figure-2 DDL" `Quick test_parse_figure2;
    Alcotest.test_case "parse select shape" `Quick test_parse_select_shape;
    Alcotest.test_case "parse recursive union view" `Quick test_parse_union_view;
    Alcotest.test_case "operator precedence" `Quick test_parse_operator_precedence;
    Alcotest.test_case "quantifiers and IN lists" `Quick test_parse_quantifier_and_collections;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "parse DML" `Quick test_parse_dml;
    Alcotest.test_case "statement printers reparse" `Quick test_stmt_pp_reparses;
    Alcotest.test_case "lexer positions" `Quick test_lexer_positions;
    Alcotest.test_case "catalog types (Fig. 2)" `Quick test_catalog_types;
    Alcotest.test_case "view recursion detection" `Quick test_catalog_view_recursion_flag;
    Alcotest.test_case "catalog duplicate rejected" `Quick test_catalog_duplicate_rejected;
    Alcotest.test_case "Fig. 3 translates to the paper's search" `Quick test_translate_figure3;
    Alcotest.test_case "§3.3 conversion insertion" `Quick test_translate_inserts_conversions;
    Alcotest.test_case "enum literal coercion" `Quick test_translate_enum_coercion;
    Alcotest.test_case "Fig. 4 view becomes nest" `Quick test_translate_figure4_nest;
    Alcotest.test_case "Fig. 4 query with quantifier" `Quick test_translate_figure4_query;
    Alcotest.test_case "Fig. 5 view becomes fix" `Quick test_translate_figure5_fix;
    Alcotest.test_case "translation errors" `Quick test_translate_errors;
    Alcotest.test_case "aggregates over MakeSet" `Quick test_aggregates_over_makeset;
    Alcotest.test_case "more translation errors" `Quick test_translate_more_errors;
    Alcotest.test_case "view column count mismatch" `Quick test_view_column_count_mismatch;
    Alcotest.test_case "union view arity checked" `Quick test_union_view_arity_checked;
    Alcotest.test_case "INSERT constant folding" `Quick test_expr_to_value;
  ]
