(* Tests for the value-text round trip and session dump/restore. *)

module Value = Eds_value.Value
module Value_text = Eds_value.Value_text
module Relation = Eds_engine.Relation
module Database = Eds_engine.Database
module Session = Eds.Session
module Storage = Eds.Storage

let value = Alcotest.testable Value.pp Value.equal

let test_value_text_basics () =
  let round s = Value_text.parse s in
  Alcotest.check value "int" (Value.Int 42) (round "42");
  Alcotest.check value "negative real" (Value.Real (-2.5)) (round "-2.5");
  Alcotest.check value "string with quote" (Value.Str "it's") (round "'it''s'");
  Alcotest.check value "null" Value.Null (round "null");
  Alcotest.check value "bool" (Value.Bool true) (round "true");
  Alcotest.check value "oid" (Value.Oid 7) (round "@7");
  Alcotest.check value "set" (Value.set [ Value.Int 1; Value.Int 2 ]) (round "{1, 2}");
  Alcotest.check value "bag" (Value.bag [ Value.Int 1; Value.Int 1 ]) (round "bag{1, 1}");
  Alcotest.check value "list" (Value.list [ Value.Int 1 ]) (round "[1]");
  Alcotest.check value "array" (Value.array [ Value.Int 1 ]) (round "[|1|]");
  Alcotest.check value "tuple"
    (Value.tuple [ ("a", Value.Int 1); ("b", Value.Str "x") ])
    (round "<a: 1, b: 'x'>");
  (* the ambiguity that motivated the bag syntax: set of sets *)
  Alcotest.check value "set of sets"
    (Value.set [ Value.set [ Value.Int 1 ] ])
    (round "{{1}}")

let test_value_text_errors () =
  let fails s = Value_text.parse_opt s = None in
  Alcotest.(check bool) "trailing garbage" true (fails "1 2");
  Alcotest.(check bool) "unterminated string" true (fails "'x");
  Alcotest.(check bool) "unterminated set" true (fails "{1, 2");
  Alcotest.(check bool) "bad oid" true (fails "@x");
  Alcotest.(check bool) "empty" true (fails "")

let rec value_gen depth =
  let open QCheck2.Gen in
  let scalar =
    oneof
      [
        return Value.Null;
        map (fun b -> Value.Bool b) bool;
        map (fun i -> Value.Int i) (int_range (-1000) 1000);
        map (fun f -> Value.Real (Float.round (f *. 4.) /. 4.)) (float_range (-50.) 50.);
        map (fun s -> Value.Str s) (string_size ~gen:(char_range 'a' 'z') (int_range 0 8));
        map (fun s -> Value.Str (s ^ "'" ^ s)) (string_size ~gen:(char_range 'a' 'c') (int_range 0 2));
        map (fun i -> Value.Oid i) (int_range 1 50);
      ]
  in
  if depth = 0 then scalar
  else
    frequency
      [
        (4, scalar);
        (1, map Value.set (list_size (int_range 0 3) (value_gen (depth - 1))));
        (1, map Value.bag (list_size (int_range 0 3) (value_gen (depth - 1))));
        (1, map Value.list (list_size (int_range 0 3) (value_gen (depth - 1))));
        (1, map Value.array (list_size (int_range 0 3) (value_gen (depth - 1))));
        ( 1,
          map
            (fun xs -> Value.tuple (List.mapi (fun i v -> (Fmt.str "f%d" i, v)) xs))
            (list_size (int_range 1 3) (value_gen (depth - 1))) );
      ]

let prop_value_round_trip =
  QCheck2.Test.make ~name:"value text round trip" ~count:300
    ~print:Value.to_string (value_gen 3) (fun v ->
      Value.equal v (Value_text.parse (Value.to_string v)))

(* -- session dump/restore ------------------------------------------------- *)

let film_session () =
  let s = Session.create () in
  ignore
    (Session.exec_script s
       {|
       TYPE Category ENUMERATION OF ('Comedy', 'Adventure') ;
       TYPE Person OBJECT TUPLE (Name : CHAR, Salary : NUMERIC) ;
       TYPE Text LIST OF CHAR ;
       TABLE FILM (Numf : NUMERIC, Title : Text, Categories : SET OF Category) ;
       TABLE CAST_IN (Numf : NUMERIC, Who : Person) ;
       CREATE VIEW Adventures (Numf) AS
         SELECT Numf FROM FILM WHERE MEMBER('Adventure', Categories) ;
     |});
  let quinn =
    Session.new_object s
      (Value.tuple [ ("Name", Value.Str "Quinn"); ("Salary", Value.Real 12000.) ])
  in
  let db = Session.database s in
  Database.insert db "FILM"
    [
      Value.Int 1;
      Value.list [ Value.Str "Zorba" ];
      Value.set [ Value.Enum ("Category", "Adventure") ];
    ];
  Database.insert db "FILM"
    [ Value.Int 2; Value.list [ Value.Str "Gilda" ]; Value.set [] ];
  Database.insert db "CAST_IN" [ Value.Int 1; quinn ];
  s

let test_dump_restore_round_trip () =
  let s = film_session () in
  let dumped = Storage.dump s in
  let s' = Storage.restore dumped in
  (* relations identical *)
  List.iter
    (fun name ->
      Alcotest.(check bool)
        (Fmt.str "relation %s preserved" name)
        true
        (Relation.equal
           (Database.relation (Session.database s) name)
           (Database.relation (Session.database s') name)))
    [ "FILM"; "CAST_IN" ];
  (* object store preserved *)
  Alcotest.(check int) "objects preserved" 1
    (List.length (Database.objects (Session.database s')));
  (* views still work, including through objects *)
  Alcotest.(check int) "view works after restore" 1
    (Relation.cardinality (Session.query s' "SELECT Numf FROM Adventures"));
  Alcotest.(check int) "object deref works after restore" 1
    (Relation.cardinality
       (Session.query s' "SELECT Numf FROM CAST_IN WHERE Name(Who) = 'Quinn'"))

let test_dump_is_stable () =
  let s = film_session () in
  let d1 = Storage.dump s in
  let d2 = Storage.dump (Storage.restore d1) in
  Alcotest.(check string) "dump(restore(dump)) = dump" d1 d2

let test_restore_rejects_garbage () =
  Alcotest.(check bool) "bad object payload" true
    (try
       ignore (Storage.restore "--@ 1 <oops\n");
       false
     with Storage.Storage_error _ -> true);
  Alcotest.(check bool) "bad tuple table" true
    (try
       ignore (Storage.restore "--+ NOPE [1]\n");
       false
     with Storage.Storage_error _ | Session.Session_error _ | Not_found -> true)

(* the server workload must survive dump → restore bit-identically on
   every physical layer: render each query on the original session, then
   re-render on the restored one under Naive, Indexed and Parallel *)
let test_dump_restore_across_physical_layers () =
  let module Loadtest = Eds_server.Loadtest in
  let module Eval = Eds_engine.Eval in
  let s = Session.create () in
  Loadtest.apply_setup s;
  let expected = Loadtest.expected_payloads s in
  let dumped = Storage.dump s in
  List.iter
    (fun physical ->
      let s' = Storage.restore dumped in
      Session.set_physical s' physical;
      if physical = Eval.Physical.Parallel then Session.set_domains s' 2;
      List.iter
        (fun (q, want) ->
          let got = List.assoc q (Loadtest.expected_payloads s') in
          Alcotest.(check string)
            (Fmt.str "%s under %s" q (Eval.Physical.to_string physical))
            want got)
        expected)
    [ Eval.Physical.Naive; Eval.Physical.Indexed; Eval.Physical.Parallel ]

let test_save_load_files () =
  let s = film_session () in
  let path = Filename.temp_file "eds_dump" ".esql" in
  Storage.save s path;
  let s' = Storage.load path in
  Sys.remove path;
  Alcotest.(check int) "loaded session answers queries" 2
    (Relation.cardinality (Session.query s' "SELECT Numf FROM FILM"))

(* Crash-safety of SAVE: the dump goes to <path>.tmp first and is
   renamed over the target only once complete, so a failure mid-write —
   a full disk, a kill — can corrupt only the temporary copy. *)
let test_atomic_save_failure_preserves_old () =
  let s = film_session () in
  let path = Filename.temp_file "eds_atomic" ".esql" in
  Storage.save s path;
  let before = In_channel.with_open_bin path In_channel.input_all in
  (* a writer that dies halfway through, as a crashing dump would *)
  let boom () =
    Storage.atomic_write ~path (fun oc ->
        Out_channel.output_string oc "TABLE GARBAGE (";
        failwith "disk full")
  in
  Alcotest.(check bool) "failure propagates" true
    (try
       boom ();
       false
     with Failure _ -> true);
  let after = In_channel.with_open_bin path In_channel.input_all in
  Alcotest.(check string) "old file intact after mid-save failure" before after;
  Alcotest.(check bool) "no .tmp left behind" false (Sys.file_exists (path ^ ".tmp"));
  (* and the survivor still loads *)
  let s' = Storage.load path in
  Sys.remove path;
  Alcotest.(check int) "survivor loads" 2
    (Relation.cardinality (Session.query s' "SELECT Numf FROM FILM"))

let test_atomic_save_overwrites_cleanly () =
  let s = film_session () in
  let path = Filename.temp_file "eds_atomic2" ".esql" in
  Storage.save s path;
  Database.insert (Session.database s) "FILM"
    [ Value.Int 3; Value.list [ Value.Str "Brazil" ]; Value.set [] ];
  Storage.save s path;
  let s' = Storage.load path in
  Alcotest.(check bool) "no .tmp left behind" false (Sys.file_exists (path ^ ".tmp"));
  Sys.remove path;
  Alcotest.(check int) "second save wins" 3
    (Relation.cardinality (Session.query s' "SELECT Numf FROM FILM"))

(* -- interned-column round trip (qcheck) ----------------------------------- *)

(* A database whose CHAR columns ride the intern table must survive
   save / checkpoint / crash-recover byte-identically, render the same
   rows under every physical layer (columnar included), and never move
   an already-issued intern id: ids are grow-only for the process
   lifetime, so relations loaded before and after recovery agree. *)
let prop_interned_column_round_trip =
  let module Wal = Eds.Wal in
  let module Eval = Eds_engine.Eval in
  let open QCheck2 in
  let name_pool = [| "zorba"; "gilda"; "brazil"; "quinn"; "ran"; "alien" |] in
  let row_gen =
    Gen.(
      pair (int_range 0 999)
        (oneof
           [
             map (fun i -> name_pool.(i mod Array.length name_pool)) (int_range 0 5);
             string_size ~gen:(char_range 'a' 'z') (int_range 1 8);
           ]))
  in
  let gen =
    Gen.(
      pair
        (list_size (int_range 1 40) row_gen)
        (option (int_range 0 40)))
  in
  let print (rows, ck) =
    Printf.sprintf "rows=%d checkpoint=%s distinct=%d" (List.length rows)
      (match ck with None -> "none" | Some c -> string_of_int c)
      (List.length (List.sort_uniq compare (List.map snd rows)))
  in
  Test.make ~name:"interned columns survive save/checkpoint/recover" ~count:30
    ~print gen (fun (rows, ck) ->
      let stmts =
        "TABLE NAMED (K : INT, Name : CHAR)"
        :: List.map
             (fun (k, s) -> Printf.sprintf "INSERT INTO NAMED VALUES (%d, '%s')" k s)
             rows
      in
      let checkpoint_at =
        match ck with Some c when c < List.length stmts -> Some c | _ -> None
      in
      let db = Filename.temp_file "eds_intern" ".esql" in
      Sys.remove db;
      Fun.protect
        ~finally:(fun () ->
          List.iter
            (fun p -> if Sys.file_exists p then Sys.remove p)
            [ db; db ^ ".tmp"; Wal.Manager.wal_path db ])
        (fun () ->
          let session, handle, _ = Wal.Manager.recover ~sync:false ~db () in
          List.iteri
            (fun i stmt ->
              ignore (Session.exec_string session stmt);
              Wal.Manager.log handle stmt;
              if checkpoint_at = Some (i + 1) then
                Wal.Manager.checkpoint handle session)
            stmts;
          (* force the columnar path once pre-crash so every Name is
             interned, then pin the ids we expect to survive *)
          ignore (Session.query session "SELECT K FROM NAMED WHERE Name = 'zorba'");
          let distinct = List.sort_uniq compare (List.map snd rows) in
          let ids_before =
            List.map (fun s -> (s, Eds_value.Intern.id_of_string s)) distinct
          in
          Wal.Manager.close handle;
          let oracle = Session.create () in
          List.iter (fun st -> ignore (Session.exec_string oracle st)) stmts;
          let want_dump = Storage.dump oracle in
          let recovered, handle', _ = Wal.Manager.recover ~sync:false ~db () in
          let got_dump = Storage.dump recovered in
          Wal.Manager.close handle';
          if want_dump <> got_dump then
            Test.fail_reportf "recovered dump differs:@.%s@.vs@.%s" got_dump
              want_dump;
          (* every physical layer renders the probe queries identically,
             with the columnar path live on Indexed/Parallel *)
          let probe = List.nth rows (List.length rows / 2) in
          let queries =
            [
              Printf.sprintf "SELECT K FROM NAMED WHERE Name = '%s'" (snd probe);
              "SELECT Name FROM NAMED WHERE K < 500";
            ]
          in
          let render s q =
            let buf = Buffer.create 64 in
            let ppf = Format.formatter_of_buffer buf in
            Eds.Repl.print_result ppf (Session.Rows (Session.query s q));
            Format.pp_print_flush ppf ();
            Buffer.contents buf
          in
          let wants = List.map (render oracle) queries in
          List.iter
            (fun physical ->
              let s' = Storage.restore got_dump in
              Session.set_physical s' physical;
              if physical = Eval.Physical.Parallel then Session.set_domains s' 2;
              List.iter2
                (fun q want ->
                  if render s' q <> want then
                    Test.fail_reportf "layer %s disagrees on %s"
                      (Eval.Physical.to_string physical)
                      q)
                queries wants)
            [ Eval.Physical.Naive; Eval.Physical.Indexed; Eval.Physical.Parallel ];
          (* intern-id stability: recovery re-interns the same strings,
             and ids already issued never move *)
          List.for_all
            (fun (s, id) -> Eds_value.Intern.id_of_string s = id)
            ids_before))

let suite =
  [
    Alcotest.test_case "value text basics" `Quick test_value_text_basics;
    Alcotest.test_case "value text errors" `Quick test_value_text_errors;
    Alcotest.test_case "dump/restore round trip" `Quick test_dump_restore_round_trip;
    Alcotest.test_case "dump is stable" `Quick test_dump_is_stable;
    Alcotest.test_case "restore rejects garbage" `Quick test_restore_rejects_garbage;
    Alcotest.test_case "dump/restore across physical layers" `Quick
      test_dump_restore_across_physical_layers;
    Alcotest.test_case "save/load files" `Quick test_save_load_files;
    Alcotest.test_case "atomic save: mid-write failure keeps old file" `Quick
      test_atomic_save_failure_preserves_old;
    Alcotest.test_case "atomic save: overwrite leaves no temp" `Quick
      test_atomic_save_overwrites_cleanly;
  ]
  @ [
      QCheck_alcotest.to_alcotest prop_value_round_trip;
      QCheck_alcotest.to_alcotest prop_interned_column_round_trip;
    ]
