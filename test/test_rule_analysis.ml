(* Tests for the §4.2 termination analysis. *)

module Rule = Eds_rewriter.Rule
module Rule_parser = Eds_rewriter.Rule_parser
module Rule_analysis = Eds_rewriter.Rule_analysis
module Rulesets = Eds_rewriter.Rulesets
module Optimizer = Eds_rewriter.Optimizer

let behaviour =
  Alcotest.testable Rule_analysis.pp_size_behaviour (fun a b -> a = b)

let classify text = Rule_analysis.size_behaviour (Rule_parser.parse_rule text)

let test_classification () =
  Alcotest.check behaviour "projection-style rule shrinks" Rule_analysis.Decreasing
    (classify "shrink: f(g(x), y) --> g(x)");
  Alcotest.check behaviour "renaming keeps size" Rule_analysis.Nonincreasing
    (classify "rename: f(x, y) --> g(y, x)");
  Alcotest.check behaviour "duplication grows" Rule_analysis.Increasing
    (classify "dup: f(x) --> g(x, x)");
  Alcotest.check behaviour "extra structure grows" Rule_analysis.Increasing
    (classify "wrap: f(x) --> f(g(x))");
  Alcotest.check behaviour "notin guards growth" Rule_analysis.Guarded_growth
    (classify
       "trans: and(bag(c*, x = y, y = z)) / notin(x = z, c*) --> and(bag(c*, x = y, y = z, x = z))");
  Alcotest.check behaviour "method outputs are unknown" Rule_analysis.Unknown
    (classify "m: f(x) --> g(out) / compute(x, out)")

let test_figure11_rules_are_guarded () =
  (* the paper's growth rules all carry NOTIN guards *)
  List.iter
    (fun name ->
      let rule = Rulesets.find name in
      Alcotest.check behaviour name Rule_analysis.Guarded_growth
        (Rule_analysis.size_behaviour rule))
    [ "eq_transitivity"; "lt_transitivity"; "le_transitivity"; "eq_substitution" ]

let test_default_program_is_warning_free () =
  (* every potentially growing block of the default program either has a
     finite limit or only guarded/shrinking rules *)
  let warnings = Rule_analysis.check_program (Optimizer.program ()) in
  List.iter (fun w -> Fmt.epr "%a@." Rule_analysis.pp_warning w) warnings;
  Alcotest.(check int) "no warnings" 0 (List.length warnings)

let test_looping_rule_flagged () =
  let bad = Rule_parser.parse_rule "loop: f(x) --> f(g(x))" in
  let block = Rule.block "user" [ bad ] in
  let warnings = Rule_analysis.check_block block in
  Alcotest.(check int) "one warning" 1 (List.length warnings);
  Alcotest.(check string) "names the rule" "loop" (List.hd warnings).Rule_analysis.rule;
  (* a finite limit silences it — the paper's own remedy *)
  Alcotest.(check int) "finite limit accepted" 0
    (List.length (Rule_analysis.check_block (Rule.block ~limit:10 "user" [ bad ])))

let test_overlap_detection () =
  let parse = Rule_parser.parse_rule in
  let r1 = parse "a: f(x, g(y)) --> x" in
  let r2 = parse "b: f(g(z), w) --> w" in
  let r3 = parse "c: h(x) --> x" in
  Alcotest.(check bool) "same head overlaps" true (Rule_analysis.could_overlap r1 r2);
  Alcotest.(check bool) "different head does not" false
    (Rule_analysis.could_overlap r1 r3);
  Alcotest.(check bool) "incompatible constants do not" false
    (Rule_analysis.could_overlap (parse "d: f(1) --> g(1)") (parse "e: f(2) --> g(2)"));
  Alcotest.(check bool) "function variable overlaps anything applied" true
    (Rule_analysis.could_overlap (parse "fv: F(x) --> x") r3)

(* -- no false negatives: joint matchability implies could_overlap -------- *)

module Term = Eds_term.Term

(* A ground matcher that under-approximates the engine's: collections
   are matched in order, a collection variable absorbs any contiguous
   run, and function variables bind their head symbol consistently.
   Anything it accepts is a genuine match, so two left sides that both
   match one ground term must be reported by [could_overlap] — the
   over-approximation may cry wolf but must never stay silent. *)
let rec bmatch (vars, fvars) p t =
  match (p, t) with
  | Term.Var v, _ -> (
    match List.assoc_opt v vars with
    | Some t' -> if Term.equal t' t then Some (vars, fvars) else None
    | None -> Some ((v, t) :: vars, fvars))
  | Term.Cst a, Term.Cst b ->
    if Eds_value.Value.equal a b then Some (vars, fvars) else None
  | Term.App (f, ps), Term.App (g, ts) when Term.is_fvar f -> (
    match List.assoc_opt f fvars with
    | Some g' when g' <> g -> None
    | _ -> bmatch_seq (vars, (f, g) :: fvars) ps ts)
  | Term.App (f, ps), Term.App (g, ts) when String.equal f g ->
    bmatch_seq (vars, fvars) ps ts
  | Term.Coll (k, ps), Term.Coll (k', ts) when k = k' ->
    bmatch_seq (vars, fvars) ps ts
  | _ -> None

and bmatch_seq env ps ts =
  match (ps, ts) with
  | [], [] -> Some env
  | Term.Cvar _ :: ps', _ ->
    (* generated patterns use each cvar once, so absorption needs no
       binding consistency *)
    let rec try_drop ts =
      match bmatch_seq env ps' ts with
      | Some e -> Some e
      | None -> ( match ts with [] -> None | _ :: rest -> try_drop rest)
    in
    try_drop ts
  | p :: ps', t :: ts' -> (
    match bmatch env p t with Some e -> bmatch_seq e ps' ts' | None -> None)
  | _ -> None

let matches lhs t = bmatch ([], []) lhs t <> None

(* every ground term of depth <= 2 over f/g/h, constants 1/2 and the
   three collection kinds (bounded to keep the sweep cheap) *)
let ground_pool =
  let d0 = [ Term.int 1; Term.int 2 ] in
  let arg_lists xs =
    List.map (fun a -> [ a ]) xs
    @ List.concat_map (fun a -> List.map (fun b -> [ a; b ]) xs) xs
  in
  let layer xs =
    List.concat_map
      (fun args -> List.map (fun h -> Term.app h args) [ "f"; "g"; "h" ])
      (arg_lists xs)
    @ List.concat_map
        (fun k -> List.map (fun es -> Term.Coll (k, es)) ([] :: arg_lists xs))
        [ Term.Set; Term.Bag; Term.List ]
  in
  let d1 = layer d0 in
  d0 @ d1 @ layer (d0 @ List.filteri (fun i _ -> i < 10) d1)

let cvar_counter = ref 0

let gen_lhs =
  let open QCheck2.Gen in
  let leaf = oneofl [ Term.var "x"; Term.var "y"; Term.int 1; Term.int 2 ] in
  let rec go depth =
    if depth = 0 then leaf
    else
      frequency
        [
          (2, leaf);
          ( 4,
            oneofl [ "f"; "g"; "h"; "?p"; "?q" ] >>= fun head ->
            list_size (int_range 1 2) (go (depth - 1)) >|= Term.app head );
          ( 1,
            oneofl [ Term.Set; Term.Bag; Term.List ] >>= fun kind ->
            list_size (int_range 0 2) (go (depth - 1)) >>= fun elems ->
            bool >|= fun with_cvar ->
            let elems =
              if with_cvar then begin
                incr cvar_counter;
                Term.Cvar (Fmt.str "c%d" !cvar_counter) :: elems
              end
              else elems
            in
            Term.Coll (kind, elems) );
        ]
  in
  oneofl [ "f"; "g"; "h"; "?p" ] >>= fun head ->
  QCheck2.Gen.list_size (QCheck2.Gen.int_range 1 2) (go 1) >|= Term.app head

let rule_of_lhs name lhs =
  { Rule.name; lhs; constraints = []; rhs = Eds_term.Term.int 1; methods = [] }

let test_overlap_no_false_negatives =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"joint matchability implies could_overlap"
       ~count:400
       ~print:(fun (a, b) ->
         Fmt.str "%a  vs  %a" Term.pp a Term.pp b)
       QCheck2.Gen.(pair gen_lhs gen_lhs)
       (fun (la, lb) ->
         let jointly =
           List.exists (fun t -> matches la t && matches lb t) ground_pool
         in
         (not jointly)
         || Rule_analysis.could_overlap (rule_of_lhs "a" la)
              (rule_of_lhs "b" lb)))

let test_overlap_cvar_fvar_edges () =
  let parse = Rule_parser.parse_rule in
  Alcotest.(check bool) "cvar collection overlaps a concrete collection" true
    (Rule_analysis.could_overlap
       (parse "a: f(set(x*)) --> f(set(x*))")
       (parse "b: f(set(1, 2)) --> f(set(1))"));
  Alcotest.(check bool) "cvar absorbs an arity mismatch" true
    (Rule_analysis.could_overlap
       (parse "a: and(bag(c*, q)) --> q")
       (parse "b: and(bag(x, y, z)) --> x"));
  Alcotest.(check bool) "fvar head overlaps a concrete head" true
    (Rule_analysis.could_overlap
       (parse "fv: F(x) --> x")
       (parse "g1: g(1) --> g(1)"));
  Alcotest.(check bool) "K is still a function variable" true
    (Rule_analysis.could_overlap
       (parse "kv: K(x) --> x")
       (parse "g1: g(1) --> g(1)"));
  Alcotest.(check bool) "fvar binds one head, arity still matters" false
    (Rule_analysis.could_overlap
       (parse "fv: F(x, y) --> x")
       (parse "g1: g(1) --> g(1)"))

let test_known_competing_rules () =
  (* the development history of this repo: push_select used to steal the
     redexes of the more specific nest/unnest pushes — the analysis makes
     that visible *)
  let block =
    Rule.block "permutation" (Rulesets.permutation ())
  in
  let pairs = Rule_analysis.overlaps block in
  let mem a b = List.mem (a, b) pairs || List.mem (b, a) pairs in
  Alcotest.(check bool) "unnest push competes with select push" true
    (mem "push_search_unnest" "push_select");
  Alcotest.(check bool) "nest push competes with select push" true
    (mem "push_search_nest" "push_select")

let suite =
  [
    Alcotest.test_case "size-behaviour classification" `Quick test_classification;
    Alcotest.test_case "Figure-11 rules are guarded" `Quick test_figure11_rules_are_guarded;
    Alcotest.test_case "default program warning-free" `Quick test_default_program_is_warning_free;
    Alcotest.test_case "looping user rule flagged" `Quick test_looping_rule_flagged;
    Alcotest.test_case "overlap detection" `Quick test_overlap_detection;
    test_overlap_no_false_negatives;
    Alcotest.test_case "overlap cvar/fvar edge cases" `Quick
      test_overlap_cvar_fvar_edges;
    Alcotest.test_case "known competing rules found" `Quick test_known_competing_rules;
  ]
