(* Tests for the engine hot path: head-symbol rule indexing, the
   incremental re-scan, per-substitution budget accounting, the
   [nonempty] constraint, and the golden-trace equivalence between the
   indexed engine and the reference engine. *)

module Value = Eds_value.Value
module Term = Eds_term.Term
module Subst = Eds_term.Subst
module Matcher = Eds_term.Matcher
module Lera = Eds_lera.Lera
module Lera_term = Eds_lera.Lera_term
module Catalog = Eds_esql.Catalog
module Parser = Eds_esql.Parser
module Translate = Eds_esql.Translate
module Session = Eds.Session
module Database = Eds_engine.Database
module Rule = Eds_rewriter.Rule
module Rule_parser = Eds_rewriter.Rule_parser
module Rulesets = Eds_rewriter.Rulesets
module Engine = Eds_rewriter.Engine
module Optimizer = Eds_rewriter.Optimizer

let term = Alcotest.testable Term.pp Term.equal
let empty_ctx () = Optimizer.make_ctx (Catalog.schema_env (Catalog.create ()))

(* -- nonempty (satellite b) ---------------------------------------------- *)

let nonempty args = Term.app "nonempty" args

let test_nonempty_constraint () =
  let c = empty_ctx () in
  let eval t = Engine.eval_constraint c Engine.top_env t in
  Alcotest.(check bool) "nonempty(list()) is false" false
    (eval (nonempty [ Term.Coll (Term.List, []) ]));
  Alcotest.(check bool) "nonempty(set()) is false" false
    (eval (nonempty [ Term.Coll (Term.Set, []) ]));
  Alcotest.(check bool) "nonempty(list(1)) is true" true
    (eval (nonempty [ Term.Coll (Term.List, [ Term.int 1 ]) ]));
  Alcotest.(check bool) "nonempty of an empty set value is false" false
    (eval (nonempty [ Term.Cst (Value.set []) ]));
  Alcotest.(check bool) "nonempty of a set value with elements is true" true
    (eval (nonempty [ Term.Cst (Value.set [ Value.Int 1 ]) ]));
  (* spliced collection variables: the elements become the arguments *)
  Alcotest.(check bool) "no spliced elements is false" false (eval (nonempty []));
  Alcotest.(check bool) "spliced elements are true" true
    (eval (nonempty [ Term.int 1; Term.int 2 ]))

let test_nonempty_guards_variable_binding () =
  (* a plain variable bound to an empty collection term must not pass the
     guard: before the fix, the lone collection argument made it true *)
  let c = empty_ctx () in
  let rule = Rule_parser.parse_rule "r: f(x) / nonempty(x) --> g(x)" in
  let applied t = Engine.apply_rule_at c Engine.top_env rule t in
  Alcotest.(check bool) "empty list binding rejected" true
    (applied (Term.app "f" [ Term.Coll (Term.List, []) ]) = None);
  Alcotest.(check bool) "non-empty list binding accepted" true
    (applied (Term.app "f" [ Term.Coll (Term.List, [ Term.int 1 ] ) ]) <> None)

(* the three library rules guarded by nonempty: and_true / or_false must
   drop the neutral element only when conjuncts remain, and
   empty_union_arm must never remove the last arm of a union *)
let simplification_block ?limit () =
  {
    Rule.blocks = [ Rule.block "simplify" ?limit (Rulesets.simplification ()) ];
    rounds = 1;
  }

let test_and_true_or_false_rules () =
  let c = empty_ctx () in
  let p = Rule_parser.parse_term "@(1,1) = 1" in
  let conj op rest = Term.app op [ Term.Coll (Term.Bag, rest) ] in
  let run t = Engine.run c (simplification_block ()) t in
  Alcotest.check term "and_true drops the true"
    (Rule_parser.parse_term "@(1,1) = 1 AND @(1,2) = 2")
    (run (conj "and" [ p; Rule_parser.parse_term "@(1,2) = 2"; Term.Cst (Value.Bool true) ]));
  Alcotest.check term "or_false drops the false" p
    (run (conj "or" [ p; Term.Cst (Value.Bool false) ]));
  (* with no other conjunct the guard refuses: and(bag(true)) must not
     become the empty conjunction and(bag()) *)
  let lone = conj "and" [ Term.Cst (Value.Bool true) ] in
  Alcotest.check term "and_true refuses a lone true" lone (run lone)

let test_empty_union_arm_keeps_last () =
  let c = empty_ctx () in
  let empty_arm = Term.app "filter" [ Term.app "rel" [ Term.str "R" ]; Term.Cst (Value.Bool false) ] in
  let live_arm = Term.app "rel" [ Term.str "S" ] in
  let union arms = Term.app "union" [ Term.Coll (Term.Set, arms) ] in
  let run t = Engine.run c (simplification_block ()) t in
  (* an empty arm next to a live one disappears; union_singleton then
     collapses the wrapper *)
  Alcotest.check term "empty arm dropped" live_arm (run (union [ empty_arm; live_arm ]));
  (* the only arm, even provably empty, must stay: the nonempty guard
     over the collection variable fails, and only union_singleton
     unwraps — empty_union_arm must never produce union(set()) *)
  Alcotest.check term "last arm kept" empty_arm (run (union [ empty_arm ]))

(* -- budget semantics (satellites a, d) ----------------------------------- *)

(* one rule, one node, six match substitutions: and(bag(c*, x, y)) against
   a three-conjunct bag enumerates the 3×2 ordered picks of (x, y), and
   the never-true constraint forces every one to be condition-checked *)
let test_limit_counts_every_substitution () =
  let c = empty_ctx () in
  let rule = Rule_parser.parse_rule "r: and(bag(c*, x, y)) / distinct(x, x) --> false" in
  let subject =
    Term.app "and"
      [
        Term.Coll
          ( Term.Bag,
            [
              Rule_parser.parse_term "@(1,1) = 1";
              Rule_parser.parse_term "@(1,2) = 2";
              Rule_parser.parse_term "@(1,3) = 3";
            ] );
      ]
  in
  let run limit =
    let stats = Engine.fresh_stats () in
    let block = Rule.block "b" ?limit [ rule ] in
    let t' = Engine.run_block c ~stats block subject in
    (t', stats)
  in
  let t_inf, s_inf = run None in
  Alcotest.check term "rule never applies" subject t_inf;
  Alcotest.(check int) "every substitution is one condition check" 6
    s_inf.Engine.conditions_checked;
  let _, s4 = run (Some 4) in
  Alcotest.(check int) "limit 4 stops after four checks" 4 s4.Engine.conditions_checked;
  let _, s0 = run (Some 0) in
  Alcotest.(check int) "limit 0 checks nothing" 0 s0.Engine.conditions_checked

let test_limit_bounds_block_work () =
  (* a block with limit n evaluates at most n condition checks, across
     rules, nodes and re-scans *)
  let c = empty_ctx () in
  let t = Rule_parser.parse_term "@(1,1) = 1 AND 2 = 2 AND 3 = 3 AND 4 = 4 AND 5 = 5" in
  List.iter
    (fun n ->
      let stats = Engine.fresh_stats () in
      let program = simplification_block ~limit:n () in
      ignore (Optimizer.rewrite_term ~program ~stats c t);
      Alcotest.(check bool)
        (Fmt.str "limit %d bounds condition checks" n)
        true
        (stats.Engine.conditions_checked <= n))
    [ 0; 1; 3; 7; 20 ]

(* -- matcher and index properties (satellite d) ---------------------------- *)

(* ground LERA-flavoured terms whose heads overlap the rule library's *)
let subject_gen =
  let open QCheck2.Gen in
  let rec go depth =
    let leaf =
      oneof
        [
          map Term.int (int_range 0 5);
          map Term.str (oneofl [ "a"; "b"; "R" ]);
          return (Term.Cst (Value.Bool true));
          return (Term.Cst (Value.Bool false));
        ]
    in
    if depth = 0 then leaf
    else
      frequency
        [
          (2, leaf);
          ( 3,
            map2
              (fun f args -> Term.app f args)
              (oneofl [ "and"; "or"; "not"; "union"; "filter"; "member"; "<"; "="; "rel"; "+" ])
              (list_size (int_range 0 3) (go (depth - 1))) );
          ( 2,
            map2
              (fun k args -> Term.Coll (k, args))
              (oneofl Term.[ Set; Bag; List ])
              (list_size (int_range 0 3) (go (depth - 1))) );
        ]
  in
  go 3

(* generalize a ground term into a pattern: each node may be replaced by
   a fresh variable, chosen by the bits of the mask in visit order *)
let generalize mask t =
  let k = ref 0 in
  let rec go t =
    let here = !k in
    incr k;
    if (mask lsr (here mod 30)) land 1 = 1 then Term.var (Fmt.str "v%d" here)
    else
      match t with
      | Term.App (f, args) -> Term.App (f, List.map go args)
      | Term.Coll (kind, args) -> Term.Coll (kind, List.map go args)
      | Term.Var _ | Term.Cvar _ | Term.Cst _ -> t
  in
  go t

let prop_match_rebuilds_subject =
  QCheck2.Test.make ~name:"every match substitution rebuilds the subject" ~count:300
    QCheck2.Gen.(pair subject_gen (int_bound ((1 lsl 30) - 1)))
    (fun (subject, mask) ->
      let pattern = generalize mask subject in
      Matcher.all ~pattern subject
      |> Seq.for_all (fun s -> Term.equal (Subst.apply s pattern) subject))

let prop_head_compatible_necessary =
  QCheck2.Test.make ~name:"head_compatible=false implies no matches" ~count:300
    QCheck2.Gen.(triple subject_gen subject_gen (int_bound ((1 lsl 30) - 1)))
    (fun (a, b, mask) ->
      let pattern = generalize mask a in
      Matcher.head_compatible ~pattern b
      || Seq.is_empty (Matcher.all ~pattern b))

(* the dispatch table against the linear scan, over the whole built-in
   library in one block: same rules found, original order preserved *)
let prop_index_equals_linear_scan =
  let rules =
    Rulesets.merging () @ Rulesets.fixpoint () @ Rulesets.permutation ()
    @ Rulesets.semantic () @ Rulesets.simplification ()
  in
  let compiled = Rule.compile (Rule.block "all" rules) in
  let position r = Option.get (List.find_index (fun r' -> r' == r) rules) in
  QCheck2.Test.make ~name:"head index finds what the linear scan finds" ~count:300
    subject_gen
    (fun t ->
      let cands = Rule.candidates compiled t in
      (* soundness: every rule with at least one match is a candidate *)
      List.for_all
        (fun r ->
          Seq.is_empty (Matcher.all ~pattern:r.Rule.lhs t)
          || List.exists (fun r' -> r' == r) cands)
        rules
      (* precision: every candidate is head-compatible *)
      && List.for_all (fun r -> Matcher.head_compatible ~pattern:r.Rule.lhs t) cands
      (* order: candidates appear in the block's rule order *)
      && List.for_all2 ( <= )
           (List.map position cands)
           (List.sort compare (List.map position cands)))

(* -- golden traces (satellite d / tentpole acceptance) --------------------- *)

let same_traces a b =
  List.length a = List.length b
  && List.for_all2
       (fun (x : Engine.step) (y : Engine.step) ->
         x.Engine.rule_name = y.Engine.rule_name
         && x.Engine.block_name = y.Engine.block_name
         && Term.equal x.Engine.redex y.Engine.redex
         && Term.equal x.Engine.replacement y.Engine.replacement)
       a b

let no_limit_program () =
  Optimizer.program
    ~config:
      {
        Optimizer.merging_limit = None;
        fixpoint_limit = None;
        permutation_limit = None;
        semantic_limit = None;
        simplification_limit = None;
        rounds = 4;
      }
    ()

let check_golden ?(program = fun () -> no_limit_program ()) name ctx t =
  let s_idx = Engine.fresh_stats () and s_ref = Engine.fresh_stats () in
  let t_idx = Optimizer.rewrite_term ~program:(program ()) ~stats:s_idx ctx t in
  let t_ref = Optimizer.rewrite_term_reference ~program:(program ()) ~stats:s_ref ctx t in
  Alcotest.check term (name ^ ": same final term") t_ref t_idx;
  Alcotest.(check bool) (name ^ ": same trace") true
    (same_traces (Engine.steps s_idx) (Engine.steps s_ref));
  Alcotest.(check int) (name ^ ": same rewrite count") s_ref.Engine.rewrites_applied
    s_idx.Engine.rewrites_applied

(* a view stack like the bench workload: depth chained selections *)
let view_stack_query depth =
  let s = Session.create () in
  ignore (Session.exec_script s {|TABLE BASE (A : NUMERIC, B : NUMERIC, C : NUMERIC) ;|});
  for i = 1 to depth do
    let prev = if i = 1 then "BASE" else Fmt.str "V%d" (i - 1) in
    ignore
      (Session.exec_string s
         (Fmt.str "CREATE VIEW V%d (A, B, C) AS SELECT A, B, C FROM %s WHERE A > %d" i
            prev i))
  done;
  let cat = Session.catalog s in
  let translated =
    Translate.select cat
      (Parser.parse_select (Fmt.str "SELECT A FROM V%d WHERE B > 50" depth))
  in
  (Optimizer.make_ctx (Catalog.schema_env cat), Lera_term.to_term translated)

let test_golden_view_stack () =
  let ctx, t = view_stack_query 6 in
  check_golden "view stack" ctx t

let test_golden_recursion () =
  (* the bench's transitive-closure query: fixpoint + merging + magic *)
  let db = Database.create () in
  Database.add_relation db "EDGE"
    (Eds_engine.Relation.make
       [ ("Src", Eds_value.Vtype.Int); ("Dst", Eds_value.Vtype.Int) ]
       (List.init 7 (fun i -> [ Value.Int (i + 1); Value.Int (i + 2) ])));
  let tc =
    Lera.Fix
      ( "TC",
        Lera.Union
          [
            Lera.Base "EDGE";
            Lera.Search
              ( [ Lera.Base "TC"; Lera.Base "TC" ],
                Lera.eq (Lera.col 1 2) (Lera.col 2 1),
                [ Lera.col 1 1; Lera.col 2 2 ] );
          ] )
  in
  let q =
    Lera.Search
      ( [ tc ],
        Lera.eq (Lera.col 1 1) (Lera.Cst (Value.Int 2)),
        [ Lera.col 1 2 ] )
  in
  let ctx = Optimizer.make_ctx (Database.schema_env db) in
  check_golden "recursion" ctx (Lera_term.to_term q)

let test_golden_semantic_chain () =
  let ctx = empty_ctx () in
  let t =
    Rule_parser.parse_term
      (String.concat " AND "
         (List.init 5 (fun i -> Fmt.str "@(1,%d) < @(1,%d)" (i + 1) (i + 2))))
  in
  let program () =
    {
      Rule.blocks =
        [
          Rule.block "semantic" (Rulesets.semantic ());
          Rule.block "simplification" (Rulesets.simplification ());
        ];
      rounds = 2;
    }
  in
  check_golden ~program "semantic chain" ctx t

let suite =
  [
    Alcotest.test_case "nonempty constraint forms" `Quick test_nonempty_constraint;
    Alcotest.test_case "nonempty rejects empty bindings" `Quick
      test_nonempty_guards_variable_binding;
    Alcotest.test_case "and_true / or_false guards" `Quick test_and_true_or_false_rules;
    Alcotest.test_case "empty_union_arm keeps the last arm" `Quick
      test_empty_union_arm_keeps_last;
    Alcotest.test_case "limit counts every substitution" `Quick
      test_limit_counts_every_substitution;
    Alcotest.test_case "limit n bounds checks by n" `Quick test_limit_bounds_block_work;
    QCheck_alcotest.to_alcotest prop_match_rebuilds_subject;
    QCheck_alcotest.to_alcotest prop_head_compatible_necessary;
    QCheck_alcotest.to_alcotest prop_index_equals_linear_scan;
    Alcotest.test_case "golden trace: view stack" `Quick test_golden_view_stack;
    Alcotest.test_case "golden trace: recursion" `Quick test_golden_recursion;
    Alcotest.test_case "golden trace: semantic chain" `Quick test_golden_semantic_chain;
  ]
