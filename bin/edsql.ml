(* edsql — an interactive shell and script runner for the EDS rewriter.

   Statements are ESQL; shell directives start with a dot — see [.help]
   for the full list.  All the shell logic lives in {!Eds.Repl} (so the
   test suite can drive it); this executable only parses the command
   line and wires stdin/stdout.  Setting EDS_TRACE=<file> in the
   environment traces the whole run to a Chrome trace-event file. *)

module Session = Eds.Session
module Repl = Eds.Repl
module Storage = Eds.Storage
module Client = Eds_server.Client
module Protocol = Eds_server.Protocol

open Cmdliner

let file_arg =
  Arg.(value & opt (some string) None & info [ "f"; "file" ] ~docv:"FILE"
         ~doc:"Execute the ESQL script $(docv) instead of starting the REPL.")

let explain_arg =
  Arg.(value & flag & info [ "explain" ] ~doc:"Print plans for every SELECT.")

let norewrite_arg =
  Arg.(value & flag & info [ "no-rewrite" ] ~doc:"Disable the query rewriter.")

let limits_arg =
  Arg.(value & opt (some int) None & info [ "limits" ]
         ~doc:"Apply this limit to every rule block (negative = infinite).")

let domains_arg =
  Arg.(value & opt (some int) None & info [ "domains" ] ~docv:"N"
         ~doc:"Worker domains for the parallel physical layer (same as the \
               .domains directive; defaults to EDS_DOMAINS or the hardware \
               count).")

let connect_arg =
  Arg.(value & opt (some string) None & info [ "connect" ] ~docv:"HOST:PORT"
         ~doc:"Attach to a running edsd server instead of evaluating \
               locally; every line is sent over the wire verbatim.")

let db_arg =
  Arg.(value & opt (some string) None & info [ "db" ] ~docv:"FILE"
         ~doc:"Load this database dump (written by .save) on boot.")

(* the remote loop: the server already does per-line recovery, rendering
   and prompt-less framing, so the client just shuttles lines *)
let remote_repl target =
  let host, port =
    match String.rindex_opt target ':' with
    | Some i -> (
      let host = String.sub target 0 i in
      let port = String.sub target (i + 1) (String.length target - i - 1) in
      match int_of_string_opt port with
      | Some p -> ((if host = "" then "127.0.0.1" else host), p)
      | None -> Fmt.epr "error: bad port in %S@." target; exit 1)
    | None -> Fmt.epr "error: --connect expects HOST:PORT@."; exit 1
  in
  let client =
    try Client.connect ~host port with
    | Unix.Unix_error (e, _, _) ->
      Fmt.epr "error: cannot connect to %s:%d: %s@." host port
        (Unix.error_message e);
      exit 1
  in
  Fmt.pr "edsql — connected to edsd at %s:%d (.quit or QUIT to leave)@." host port;
  let rec loop () =
    match In_channel.input_line stdin with
    | None -> Client.close client
    | Some line when String.trim line = "" -> loop ()
    | Some line -> (
      match Client.request client line with
      | Protocol.Ok, payload ->
        print_string payload;
        flush stdout;
        let quit =
          let t = String.uppercase_ascii (String.trim line) in
          t = "QUIT" || t = ".QUIT"
        in
        if quit then Client.close client else loop ()
      | (Protocol.Error | Protocol.Busy), payload ->
        print_string payload;
        flush stdout;
        loop ()
      | exception (End_of_file | Unix.Unix_error _ | Sys_error _) ->
        Fmt.epr "error: server closed the connection@.";
        Client.close client;
        exit 1)
  in
  loop ()

let main file explain norewrite limits domains connect db =
  match connect with
  | Some target -> remote_repl target
  | None ->
  let session =
    match db with
    | Some path ->
      (try Storage.load path with
       | Storage.Storage_error msg | Session.Session_error msg | Sys_error msg ->
         Fmt.epr "error: cannot load %s: %s@." path msg;
         exit 1)
    | None -> Session.create ()
  in
  if norewrite then Session.set_rewriting session false;
  (match limits with
  | Some n -> Session.set_config session (Repl.limits_config n)
  | None -> ());
  (match domains with
  | Some d -> Session.set_domains session d
  | None -> ());
  (* EDS_TRACE=<file> traces the whole run; the finaliser writes the
     closing bracket even on early exit *)
  (match Sys.getenv_opt "EDS_TRACE" with
  | Some path when path <> "" -> Repl.start_tracing path
  | _ -> ());
  at_exit Repl.stop_tracing;
  match file with
  | Some path -> (
    try Repl.run_file ~explain session path with
    | Session.Session_error msg | Eds_esql.Parser.Parse_error msg ->
      Fmt.epr "error: %s@." msg;
      exit 1)
  | None ->
    ignore
      (Repl.repl ~read_line:(fun () -> In_channel.input_line stdin) session)

let cmd =
  let doc = "an extensible rule-based query rewriter (ICDE 1991 reproduction)" in
  Cmd.v (Cmd.info "edsql" ~doc)
    Term.(const main $ file_arg $ explain_arg $ norewrite_arg $ limits_arg
          $ domains_arg $ connect_arg $ db_arg)

let () = exit (Cmd.eval cmd)
