(* edsql — an interactive shell and script runner for the EDS rewriter.

   Statements are ESQL; shell directives start with a dot — see [.help]
   for the full list.  All the shell logic lives in {!Eds.Repl} (so the
   test suite can drive it); this executable only parses the command
   line and wires stdin/stdout.  Setting EDS_TRACE=<file> in the
   environment traces the whole run to a Chrome trace-event file. *)

module Session = Eds.Session
module Repl = Eds.Repl

open Cmdliner

let file_arg =
  Arg.(value & opt (some string) None & info [ "f"; "file" ] ~docv:"FILE"
         ~doc:"Execute the ESQL script $(docv) instead of starting the REPL.")

let explain_arg =
  Arg.(value & flag & info [ "explain" ] ~doc:"Print plans for every SELECT.")

let norewrite_arg =
  Arg.(value & flag & info [ "no-rewrite" ] ~doc:"Disable the query rewriter.")

let limits_arg =
  Arg.(value & opt (some int) None & info [ "limits" ]
         ~doc:"Apply this limit to every rule block (negative = infinite).")

let domains_arg =
  Arg.(value & opt (some int) None & info [ "domains" ] ~docv:"N"
         ~doc:"Worker domains for the parallel physical layer (same as the \
               .domains directive; defaults to EDS_DOMAINS or the hardware \
               count).")

let main file explain norewrite limits domains =
  let session = Session.create () in
  if norewrite then Session.set_rewriting session false;
  (match limits with
  | Some n -> Session.set_config session (Repl.limits_config n)
  | None -> ());
  (match domains with
  | Some d -> Session.set_domains session d
  | None -> ());
  (* EDS_TRACE=<file> traces the whole run; the finaliser writes the
     closing bracket even on early exit *)
  (match Sys.getenv_opt "EDS_TRACE" with
  | Some path when path <> "" -> Repl.start_tracing path
  | _ -> ());
  at_exit Repl.stop_tracing;
  match file with
  | Some path -> (
    try Repl.run_file ~explain session path with
    | Session.Session_error msg | Eds_esql.Parser.Parse_error msg ->
      Fmt.epr "error: %s@." msg;
      exit 1)
  | None ->
    ignore
      (Repl.repl ~read_line:(fun () -> In_channel.input_line stdin) session)

let cmd =
  let doc = "an extensible rule-based query rewriter (ICDE 1991 reproduction)" in
  Cmd.v (Cmd.info "edsql" ~doc)
    Term.(const main $ file_arg $ explain_arg $ norewrite_arg $ limits_arg
          $ domains_arg)

let () = exit (Cmd.eval cmd)
