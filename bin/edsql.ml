(* edsql — an interactive shell and script runner for the EDS rewriter.

   Statements are ESQL; shell directives start with a dot — see [.help]
   (or [help_text] below) for the full list.  Setting EDS_TRACE=<file> in
   the environment traces the whole run to a Chrome trace-event file. *)

module Session = Eds.Session
module Relation = Eds.Session.Relation
module Lera = Eds.Session.Lera
module Rule = Eds.Session.Rule
module Engine = Eds.Session.Engine
module Optimizer = Eds.Session.Optimizer
module Obs = Eds_obs.Obs

let print_result = function
  | Session.Done -> Fmt.pr "ok@."
  | Session.Inserted n -> Fmt.pr "%d tuple%s inserted@." n (if n = 1 then "" else "s")
  | Session.Deleted n -> Fmt.pr "%d tuple%s deleted@." n (if n = 1 then "" else "s")
  | Session.Updated n -> Fmt.pr "%d tuple%s updated@." n (if n = 1 then "" else "s")
  | Session.Rows rel ->
    Fmt.pr "%a(%d tuple%s)@." Relation.pp rel (Relation.cardinality rel)
      (if Relation.cardinality rel = 1 then "" else "s")

let print_plan session (p : Session.plan) =
  let side label rel =
    if Lera.operator_count rel <= 3 then
      Fmt.pr "%s: %a@.            (%a)@." label Lera.pp rel Eds_lera.Cost.pp
        (Session.estimate session rel)
    else begin
      Fmt.pr "%s: (%a)@.%a" label Eds_lera.Cost.pp (Session.estimate session rel)
        Lera.pp_tree rel
    end
  in
  side "translated" p.Session.translated;
  side "rewritten " p.Session.rewritten;
  Fmt.pr "rewriting : %a@." Engine.pp_stats p.Session.rewrite_stats

let limits_config n =
  let l = if n < 0 then None else Some n in
  {
    Optimizer.merging_limit = l;
    fixpoint_limit = l;
    permutation_limit = l;
    semantic_limit = l;
    simplification_limit = l;
    rounds = 1;
  }

(* split ".directive the rest" into the directive token and its argument *)
let cut_directive line =
  let n = String.length line in
  let rec blank i =
    if i >= n then n
    else match line.[i] with ' ' | '\t' -> i | _ -> blank (i + 1)
  in
  let i = blank 0 in
  (String.sub line 0 i, String.trim (String.sub line i (n - i)))

let help_text =
  "directives:\n\
  \  .explain SELECT ...   show the LERA expression before/after rewriting\n\
  \  .trace SELECT ...     show every rule application, in order\n\
  \  .trace-file FILE      write a Chrome trace-event file (.trace-file off stops)\n\
  \  .profile on|off       collect per-rule attempt/fire/veto statistics;\n\
  \                        'off' (or bare .profile) prints the report\n\
  \  .stats                cumulative evaluator counters and last rewrite stats\n\
  \  .rules                list the current rule program\n\
  \  .check                termination warnings for the rule program (\xc2\xa74.2)\n\
  \  .limits N             set every block limit to N (negative = infinite)\n\
  \  .norewrite / .rewrite disable / enable the rewriter\n\
  \  .physical naive|indexed   select the physical evaluation layer\n\
  \  .constraint TEXT      declare an integrity constraint (Fig. 10)\n\
  \  .save FILE / .load FILE   dump or restore the whole session\n\
  \  .help                 this message\n\
  \  .quit                 leave"

(* the out_channel behind the current trace sink, so we can close it *)
let trace_channel : out_channel option ref = ref None

let stop_tracing () =
  Obs.set_sink None;
  match !trace_channel with
  | Some oc ->
    close_out oc;
    trace_channel := None
  | None -> ()

let start_tracing path =
  stop_tracing ();
  let oc = open_out path in
  trace_channel := Some oc;
  Obs.set_sink (Some (Obs.trace_sink oc))

let all_rules session =
  List.concat_map
    (fun b -> List.map (fun r -> (b.Rule.block_name, r.Rule.name)) b.Rule.rules)
    (Session.program session).Rule.blocks

let print_profile session p =
  Fmt.pr "%a@." (Obs.Profile.pp ~all_rules:(all_rules session)) p

let print_session_stats session =
  let es = Session.eval_stats session in
  Fmt.pr "statements run   : %d@." (Session.statements_run session);
  Fmt.pr "eval combinations: %d@." es.Session.Eval.combinations;
  Fmt.pr "tuples read      : %d@." es.Session.Eval.tuples_read;
  Fmt.pr "tuples produced  : %d@." es.Session.Eval.tuples_produced;
  Fmt.pr "fixpoint iters   : %d@." es.Session.Eval.fix_iterations;
  Fmt.pr "index probes     : %d@." es.Session.Eval.probes;
  Fmt.pr "index builds     : %d@." es.Session.Eval.builds;
  match Session.last_rewrite_stats session with
  | None -> Fmt.pr "last rewrite     : (none)@."
  | Some rs -> Fmt.pr "last rewrite     : %a@." Engine.pp_stats rs

let handle_directive session line =
  let directive, arg = cut_directive line in
  match directive with
  | ".quit" | ".exit" -> `Quit
  | ".help" ->
    Fmt.pr "%s@." help_text;
    `Continue
  | ".explain" ->
    print_plan session (Session.explain session arg);
    `Continue
  | ".trace" ->
    let plan = Session.explain session arg in
    List.iter
      (fun step -> Fmt.pr "%a@." Engine.pp_step step)
      (Engine.steps plan.Session.rewrite_stats);
    print_plan session plan;
    `Continue
  | ".trace-file" ->
    (match arg with
    | "" | "off" ->
      stop_tracing ();
      Fmt.pr "tracing off@."
    | path ->
      start_tracing path;
      Fmt.pr "tracing to %s (Chrome trace-event format)@." path);
    `Continue
  | ".profile" ->
    (match (arg, Obs.Profile.current ()) with
    | "on", _ ->
      Obs.Profile.set_current (Some (Obs.Profile.create ()));
      Fmt.pr "profiling on@."
    | "off", Some p ->
      print_profile session p;
      Obs.Profile.set_current None
    | "off", None -> Fmt.pr "profiling was already off@."
    | "", Some p -> print_profile session p
    | _ -> Fmt.pr "usage: .profile on|off@.");
    `Continue
  | ".stats" ->
    print_session_stats session;
    `Continue
  | ".rules" ->
    let program = Session.program session in
    List.iter
      (fun b ->
        Fmt.pr "%a@." Rule.pp_block b;
        List.iter (fun r -> Fmt.pr "  %a@." Rule.pp r) b.Rule.rules)
      program.Rule.blocks;
    `Continue
  | ".check" ->
    (match Session.check_program session with
    | [] -> Fmt.pr "rule program is termination-safe (§4.2)@."
    | warnings ->
      List.iter
        (fun w -> Fmt.pr "%a@." Eds_rewriter.Rule_analysis.pp_warning w)
        warnings);
    `Continue
  | ".limits" ->
    (match int_of_string_opt arg with
    | Some n -> Session.set_config session (limits_config n)
    | None -> Fmt.pr "usage: .limits N   (negative N = infinite)@.");
    `Continue
  | ".norewrite" ->
    Session.set_rewriting session false;
    `Continue
  | ".rewrite" ->
    Session.set_rewriting session true;
    `Continue
  | ".physical" ->
    (match Session.Eval.Physical.of_string arg with
    | Some p ->
      Session.set_physical session p;
      Fmt.pr "physical layer: %s@." (Session.Eval.Physical.to_string p)
    | None ->
      Fmt.pr "physical layer: %s (usage: .physical naive|indexed)@."
        (Session.Eval.Physical.to_string (Session.physical session)));
    `Continue
  | ".constraint" ->
    Session.add_integrity_constraint session arg;
    Fmt.pr "constraint recorded@.";
    `Continue
  | _ ->
    Fmt.pr "unknown directive %s, try .help@." directive;
    `Continue

let handle_save_load session line strip =
  if String.length line >= 5 && String.sub line 0 5 = ".save" then begin
    Eds.Storage.save session (strip ".save");
    Fmt.pr "saved@.";
    Some session
  end
  else if String.length line >= 5 && String.sub line 0 5 = ".load" then begin
    let s' = Eds.Storage.load (strip ".load") in
    Fmt.pr "loaded@.";
    Some s'
  end
  else None

let repl session =
  Fmt.pr "edsql — EDS extensible query rewriter (ICDE'91 reproduction)@.";
  Fmt.pr "terminate statements with ';', directives with newline; .quit to leave@.";
  let session = ref session in
  let buffer = Buffer.create 256 in
  let rec loop () =
    if Buffer.length buffer = 0 then Fmt.pr "edsql> @?" else Fmt.pr "  ...> @?";
    match In_channel.input_line stdin with
    | None -> ()
    | Some line ->
      let trimmed = String.trim line in
      if Buffer.length buffer = 0 && String.length trimmed > 0 && trimmed.[0] = '.'
      then begin
        let strip prefix =
          String.sub trimmed (String.length prefix)
            (String.length trimmed - String.length prefix)
          |> String.trim
        in
        match
          try
            match handle_save_load !session trimmed strip with
            | Some s' ->
              session := s';
              `Continue
            | None -> handle_directive !session trimmed
          with
          | Session.Session_error msg | Eds.Storage.Storage_error msg ->
            Fmt.pr "error: %s@." msg
            ;
            `Continue
          | Sys_error msg ->
            Fmt.pr "error: %s@." msg;
            `Continue
        with
        | `Quit -> ()
        | `Continue -> loop ()
      end
      else begin
        Buffer.add_string buffer line;
        Buffer.add_char buffer '\n';
        if String.length trimmed > 0 && trimmed.[String.length trimmed - 1] = ';'
        then begin
          let stmt = Buffer.contents buffer in
          Buffer.clear buffer;
          (try print_result (Session.exec_string !session stmt)
           with Session.Session_error msg -> Fmt.pr "error: %s@." msg);
          loop ()
        end
        else loop ()
      end
  in
  loop ()

let run_file session path explain =
  let text = In_channel.with_open_text path In_channel.input_all in
  let stmts = Eds_esql.Parser.parse_program text in
  List.iter
    (fun stmt ->
      match stmt with
      | Eds_esql.Ast.Select_stmt _ when explain ->
        let input = Fmt.str "%a" Eds_esql.Ast.pp_stmt stmt in
        print_plan session (Session.explain session input);
        print_result (Session.exec session stmt)
      | _ -> print_result (Session.exec session stmt))
    stmts

open Cmdliner

let file_arg =
  Arg.(value & opt (some string) None & info [ "f"; "file" ] ~docv:"FILE"
         ~doc:"Execute the ESQL script $(docv) instead of starting the REPL.")

let explain_arg =
  Arg.(value & flag & info [ "explain" ] ~doc:"Print plans for every SELECT.")

let norewrite_arg =
  Arg.(value & flag & info [ "no-rewrite" ] ~doc:"Disable the query rewriter.")

let limits_arg =
  Arg.(value & opt (some int) None & info [ "limits" ]
         ~doc:"Apply this limit to every rule block (negative = infinite).")

let main file explain norewrite limits =
  let session = Session.create () in
  if norewrite then Session.set_rewriting session false;
  (match limits with
  | Some n -> Session.set_config session (limits_config n)
  | None -> ());
  (* EDS_TRACE=<file> traces the whole run; the finaliser writes the
     closing bracket even on early exit *)
  (match Sys.getenv_opt "EDS_TRACE" with
  | Some path when path <> "" -> start_tracing path
  | _ -> ());
  at_exit stop_tracing;
  match file with
  | Some path -> (
    try run_file session path explain with
    | Session.Session_error msg | Eds_esql.Parser.Parse_error msg ->
      Fmt.epr "error: %s@." msg;
      exit 1)
  | None -> repl session

let cmd =
  let doc = "an extensible rule-based query rewriter (ICDE 1991 reproduction)" in
  Cmd.v (Cmd.info "edsql" ~doc)
    Term.(const main $ file_arg $ explain_arg $ norewrite_arg $ limits_arg)

let () = exit (Cmd.eval cmd)
