(* rulelab — verify rule packs and discover new rules from the command
   line.

   [rulelab verify FILE] differentially tests every rule of the pack
   against the paper program and prints one soundness / termination /
   liveness report; exit status 0 means the pack is clean (loadable).
   [rulelab verify --builtin] self-verifies the paper's shipped rule
   set.  [--expect-unsound] inverts the contract for known-bad packs:
   every rule must be flagged with a counterexample (the CI
   catch-rate gate).  [rulelab discover] runs the enumeration loop and
   prints the verified candidates with their measured savings. *)

module Verify = Eds_rulelab.Verify
module Discover = Eds_rulelab.Discover
module Rulesets = Eds_rewriter.Rulesets
module Rule_parser = Eds_rewriter.Rule_parser

open Cmdliner

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N"
         ~doc:"Random seed for trial generation (deterministic per seed).")

let trials_arg =
  Arg.(value & opt int 48 & info [ "trials" ] ~docv:"N"
         ~doc:"Differential trials per rule.")

let file_arg =
  Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE"
         ~doc:"Rule pack to verify (rules separated by ';', -- comments).")

let builtin_arg =
  Arg.(value & flag & info [ "builtin" ]
         ~doc:"Verify the paper's shipped rule set instead of a file.")

let expect_unsound_arg =
  Arg.(value & flag & info [ "expect-unsound" ]
         ~doc:"Invert the contract: succeed only if $(i,every) rule is \
               flagged unsound with a counterexample.")

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let verify_run seed trials file builtin expect_unsound =
  let rules =
    match (builtin, file) with
    | true, _ -> Ok (Rulesets.all ())
    | false, Some path -> (
      try Ok (Rule_parser.parse_rules (read_file path))
      with Rule_parser.Rule_parse_error e ->
        Error (Fmt.str "cannot parse %s: %s" path (Rule_parser.error_to_string e)))
    | false, None -> Error "give a rule pack FILE or --builtin"
  in
  match rules with
  | Error msg ->
    Fmt.epr "error: %s@." msg;
    1
  | Ok rules ->
    let report = Verify.verify_rules ~seed ~trials rules in
    Fmt.pr "%a@." Verify.pp_report report;
    if expect_unsound then begin
      let missed =
        List.filter
          (fun (rr : Verify.rule_report) ->
            match rr.Verify.soundness with
            | Verify.Unsound _ -> false
            | _ -> true)
          report.Verify.rules
      in
      match missed with
      | [] ->
        Fmt.pr "catch rate: %d/%d known-bad rules flagged@."
          (List.length report.Verify.rules)
          (List.length report.Verify.rules);
        0
      | l ->
        Fmt.epr "error: %d known-bad rule(s) NOT flagged: %s@." (List.length l)
          (String.concat ", "
             (List.map (fun (rr : Verify.rule_report) -> rr.Verify.rule.name) l));
        1
    end
    else if Verify.clean report then 0
    else 1

let verify_cmd =
  let doc = "differentially verify a rule pack (soundness, termination, liveness)" in
  Cmd.v (Cmd.info "verify" ~doc)
    Term.(const verify_run $ seed_arg $ trials_arg $ file_arg $ builtin_arg
          $ expect_unsound_arg)

let max_candidates_arg =
  Arg.(value & opt int 200 & info [ "max-candidates" ] ~docv:"N"
         ~doc:"Cap on enumerated candidates taken into screening.")

let min_survivors_arg =
  Arg.(value & opt int 0 & info [ "min-survivors" ] ~docv:"N"
         ~doc:"Fail unless at least $(docv) verified candidates with \
               positive savings survive.")

let discover_run seed trials max_candidates min_survivors =
  let result =
    Discover.run ~seed ~verify_trials:trials ~max_candidates ()
  in
  Fmt.pr "%a@." Discover.pp result;
  if List.length result.Discover.survivors >= min_survivors then 0
  else begin
    Fmt.epr "error: %d survivor(s), expected at least %d@."
      (List.length result.Discover.survivors)
      min_survivors;
    1
  end

let discover_cmd =
  let doc = "enumerate, verify and rank candidate rewrite rules" in
  Cmd.v (Cmd.info "discover" ~doc)
    Term.(const discover_run $ seed_arg $ trials_arg $ max_candidates_arg
          $ min_survivors_arg)

let () =
  let doc = "rule lab: differential rule verification and rule discovery" in
  exit
    (Cmd.eval'
       (Cmd.group (Cmd.info "rulelab" ~doc ~version:"%%VERSION%%")
          [ verify_cmd; discover_cmd ]))
