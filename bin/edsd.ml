(* edsd — the EDS query server daemon.

   Serves the edsd wire protocol (see {!Eds_server.Protocol}) on a TCP
   port: ESQL statements, edsql dot-directives and the uppercase server
   commands (HELP / PING / STATS / METRICS / SAVE / QUIT).  Attach an
   interactive shell with [edsql --connect HOST:PORT], or talk to it
   with [nc].  Stops cleanly on SIGINT/SIGTERM.

   With --db the daemon is durable: boot recovers the checkpoint dump
   plus the paired write-ahead log (FILE.wal), every committed write is
   fsync'd to the log before it is acknowledged, SAVE FILE compacts the
   log into a fresh checkpoint, and a clean shutdown checkpoints so the
   next boot replays nothing.  kill -9 loses at most unacknowledged
   statements. *)

module Session = Eds.Session
module Storage = Eds.Storage
module Wal = Eds.Wal
module Server = Eds_server.Server

open Cmdliner

let host_arg =
  Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"ADDR"
         ~doc:"Bind address.")

let port_arg =
  Arg.(value & opt int 7878 & info [ "p"; "port" ] ~docv:"PORT"
         ~doc:"TCP port (0 picks an ephemeral one, printed on boot).")

let db_arg =
  Arg.(value & opt (some string) None & info [ "db" ] ~docv:"FILE"
         ~doc:"Durable database: recover $(docv) plus its write-ahead log \
               ($(docv).wal) on boot, log every committed write, checkpoint \
               on SAVE $(docv) and on clean shutdown.")

let no_fsync_arg =
  Arg.(value & flag & info [ "no-fsync" ]
         ~doc:"Do not fsync the write-ahead log on every commit (faster, \
               but a crash may lose acknowledged statements).")

let max_conns_arg =
  Arg.(value & opt int 64 & info [ "max-connections" ] ~docv:"N"
         ~doc:"Serve at most $(docv) connections at once; beyond that new \
               connections are refused with a busy response.")

let backlog_arg =
  Arg.(value & opt int 16 & info [ "backlog" ] ~docv:"N"
         ~doc:"Kernel accept-queue bound.")

let timeout_arg =
  Arg.(value & opt int 30000 & info [ "timeout-ms" ] ~docv:"MS"
         ~doc:"Per-statement wall-clock budget; an overrunning query is \
               cancelled with an error while its connection survives.  \
               0 disables the budget.")

let cache_arg =
  Arg.(value & opt int 256 & info [ "cache" ] ~docv:"N"
         ~doc:"Shared rewrite-plan cache capacity (entries).")

let domains_arg =
  Arg.(value & opt (some int) None & info [ "domains" ] ~docv:"N"
         ~doc:"Worker domains for the parallel physical layer.")

let norewrite_arg =
  Arg.(value & flag & info [ "no-rewrite" ] ~doc:"Disable the query rewriter.")

let slow_ms_arg =
  Arg.(value & opt (some float) None & info [ "slow-ms" ] ~docv:"MS"
         ~doc:"Slow-query log: append one JSON line (query text, total and \
               per-phase latency, plan-cache origin, work counters) for every \
               request taking at least $(docv) milliseconds.")

let slow_log_arg =
  Arg.(value & opt (some string) None & info [ "slow-log" ] ~docv:"FILE"
         ~doc:"Append slow-query lines to $(docv) instead of stderr \
               (implies nothing without --slow-ms).")

(* one line per append, O_APPEND so concurrent daemons interleave whole
   lines; opened lazily on the first slow query *)
let file_sink path =
  let lock = Mutex.create () in
  let oc =
    lazy (open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path)
  in
  fun line ->
    Mutex.lock lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock lock)
      (fun () ->
        let oc = Lazy.force oc in
        output_string oc (line ^ "\n");
        flush oc)

let main host port db no_fsync max_connections backlog timeout_ms cache domains
    norewrite slow_ms slow_log =
  let session, wal =
    match db with
    | Some file ->
      (try
         let session, handle, replayed =
           Wal.Manager.recover ~sync:(not no_fsync) ~db:file ()
         in
         if replayed > 0 then
           Fmt.pr "edsd: replayed %d statement%s from %s@." replayed
             (if replayed = 1 then "" else "s")
             (Wal.Manager.wal_path file);
         (session, Some handle)
       with
       | Storage.Storage_error msg | Session.Session_error msg | Sys_error msg ->
         Fmt.epr "edsd: cannot recover %s: %s@." file msg;
         exit 1
       | Wal.Wal_error msg ->
         Fmt.epr "edsd: cannot open %s: %s@." (Wal.Manager.wal_path file) msg;
         exit 1)
    | None -> (Session.create (), None)
  in
  if norewrite then Session.set_rewriting session false;
  (match domains with Some d -> Session.set_domains session d | None -> ());
  let config =
    {
      Server.host;
      port;
      max_connections;
      backlog;
      query_timeout =
        (if timeout_ms <= 0 then None else Some (float_of_int timeout_ms /. 1000.));
      cache_capacity = cache;
      slow_query_ms = slow_ms;
      slow_log = Option.map file_sink slow_log;
    }
  in
  let server =
    try Server.start ~config ?wal session with
    | Unix.Unix_error (e, _, _) ->
      Fmt.epr "edsd: cannot listen on %s:%d: %s@." host port (Unix.error_message e);
      exit 1
  in
  Fmt.pr "edsd: listening on %s:%d (%d max connections, plan cache %d)@." host
    (Server.port server) max_connections cache;
  (match db with
  | Some file -> Fmt.pr "edsd: durable database at %s (wal: %s)@." file
                   (Wal.Manager.wal_path file)
  | None -> ());
  let running = ref true in
  let request_stop _ = running := false in
  Sys.set_signal Sys.sigint (Sys.Signal_handle request_stop);
  Sys.set_signal Sys.sigterm (Sys.Signal_handle request_stop);
  (* the delay loop is the signal-polling point: handlers only set the
     flag, the main thread notices it here *)
  while !running do
    Thread.delay 0.1
  done;
  Fmt.pr "edsd: shutting down@.";
  Server.stop server;
  (* clean shutdown compacts: the next boot replays nothing *)
  (match wal with
  | Some handle ->
    Server.checkpoint server;
    Wal.Manager.close handle;
    Fmt.pr "edsd: checkpointed %s@." (Wal.Manager.db_path handle)
  | None -> ());
  let c = Server.counters server in
  Fmt.pr "edsd: served %d connections (%d refused), %d ok / %d errors / %d timeouts@."
    c.Server.accepted c.Server.refused c.Server.queries_ok c.Server.query_errors
    c.Server.timeouts

let cmd =
  let doc = "EDS query server: shared sessions, plan cache, admission control" in
  Cmd.v (Cmd.info "edsd" ~doc)
    Term.(const main $ host_arg $ port_arg $ db_arg $ no_fsync_arg $ max_conns_arg
          $ backlog_arg $ timeout_arg $ cache_arg $ domains_arg $ norewrite_arg
          $ slow_ms_arg $ slow_log_arg)

let () = exit (Cmd.eval cmd)
