(* edsd — the EDS query server daemon.

   Serves the edsd wire protocol (see {!Eds_server.Protocol}) on a TCP
   port: ESQL statements, edsql dot-directives and the uppercase server
   commands (HELP / PING / STATS / METRICS / SAVE / QUIT).  Attach an
   interactive shell with [edsql --connect HOST:PORT], or talk to it
   with [nc].  Stops cleanly on SIGINT/SIGTERM. *)

module Session = Eds.Session
module Storage = Eds.Storage
module Server = Eds_server.Server

open Cmdliner

let host_arg =
  Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"ADDR"
         ~doc:"Bind address.")

let port_arg =
  Arg.(value & opt int 7878 & info [ "p"; "port" ] ~docv:"PORT"
         ~doc:"TCP port (0 picks an ephemeral one, printed on boot).")

let db_arg =
  Arg.(value & opt (some string) None & info [ "db" ] ~docv:"FILE"
         ~doc:"Load this database dump (see the .save directive / SAVE \
               command) on boot.")

let max_conns_arg =
  Arg.(value & opt int 64 & info [ "max-connections" ] ~docv:"N"
         ~doc:"Serve at most $(docv) connections at once; beyond that new \
               connections are refused with a busy response.")

let backlog_arg =
  Arg.(value & opt int 16 & info [ "backlog" ] ~docv:"N"
         ~doc:"Kernel accept-queue bound.")

let timeout_arg =
  Arg.(value & opt int 30000 & info [ "timeout-ms" ] ~docv:"MS"
         ~doc:"Per-statement wall-clock budget; an overrunning query is \
               cancelled with an error while its connection survives.  \
               0 disables the budget.")

let cache_arg =
  Arg.(value & opt int 256 & info [ "cache" ] ~docv:"N"
         ~doc:"Shared rewrite-plan cache capacity (entries).")

let domains_arg =
  Arg.(value & opt (some int) None & info [ "domains" ] ~docv:"N"
         ~doc:"Worker domains for the parallel physical layer.")

let norewrite_arg =
  Arg.(value & flag & info [ "no-rewrite" ] ~doc:"Disable the query rewriter.")

let main host port db max_connections backlog timeout_ms cache domains norewrite =
  let session =
    match db with
    | Some file ->
      (try Storage.load file with
       | Storage.Storage_error msg | Session.Session_error msg | Sys_error msg ->
         Fmt.epr "edsd: cannot load %s: %s@." file msg;
         exit 1)
    | None -> Session.create ()
  in
  if norewrite then Session.set_rewriting session false;
  (match domains with Some d -> Session.set_domains session d | None -> ());
  let config =
    {
      Server.host;
      port;
      max_connections;
      backlog;
      query_timeout =
        (if timeout_ms <= 0 then None else Some (float_of_int timeout_ms /. 1000.));
      cache_capacity = cache;
    }
  in
  let server =
    try Server.start ~config session with
    | Unix.Unix_error (e, _, _) ->
      Fmt.epr "edsd: cannot listen on %s:%d: %s@." host port (Unix.error_message e);
      exit 1
  in
  Fmt.pr "edsd: listening on %s:%d (%d max connections, plan cache %d)@." host
    (Server.port server) max_connections cache;
  (match db with Some file -> Fmt.pr "edsd: database loaded from %s@." file | None -> ());
  let running = ref true in
  let request_stop _ = running := false in
  Sys.set_signal Sys.sigint (Sys.Signal_handle request_stop);
  Sys.set_signal Sys.sigterm (Sys.Signal_handle request_stop);
  (* the delay loop is the signal-polling point: handlers only set the
     flag, the main thread notices it here *)
  while !running do
    Thread.delay 0.1
  done;
  Fmt.pr "edsd: shutting down@.";
  Server.stop server;
  let c = Server.counters server in
  Fmt.pr "edsd: served %d connections (%d refused), %d ok / %d errors / %d timeouts@."
    c.Server.accepted c.Server.refused c.Server.queries_ok c.Server.query_errors
    c.Server.timeouts

let cmd =
  let doc = "EDS query server: shared sessions, plan cache, admission control" in
  Cmd.v (Cmd.info "edsd" ~doc)
    Term.(const main $ host_arg $ port_arg $ db_arg $ max_conns_arg $ backlog_arg
          $ timeout_arg $ cache_arg $ domains_arg $ norewrite_arg)

let () = exit (Cmd.eval cmd)
