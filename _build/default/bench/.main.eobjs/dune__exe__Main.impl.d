bench/main.ml: Analyze Array Bechamel Benchmark Eds Eds_engine Eds_esql Eds_lera Eds_rewriter Eds_value Fmt Hashtbl Instance List Measure Report Staged Sys Test Time Toolkit Workloads
