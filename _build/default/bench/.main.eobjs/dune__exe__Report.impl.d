bench/report.ml: Eds Eds_engine Eds_esql Eds_lera Eds_rewriter Eds_term Eds_value Fmt List String Workloads
