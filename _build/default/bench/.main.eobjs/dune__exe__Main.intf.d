bench/main.mli:
