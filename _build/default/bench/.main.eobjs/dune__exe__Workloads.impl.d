bench/workloads.ml: Array Eds Eds_engine Eds_lera Eds_value Fmt List
