(* A classic deductive-database workload: a bill of materials.  PART_OF
   says which component goes directly into which assembly; the recursive
   view USES computes the transitive closure.  The rewriter focuses the
   recursion on the queried assembly (Figure 9) and aggregates are plain
   collection ADT functions over MakeSet nests.

     dune exec examples/bill_of_materials.exe *)

module Session = Eds.Session
module Relation = Session.Relation
module Lera = Session.Lera
module Eval = Session.Eval
module Engine = Session.Engine

let () =
  let s = Session.create () in
  ignore
    (Session.exec_script s
       {|
       TABLE PART_OF (Component : CHAR, Assembly : CHAR, Qty : NUMERIC) ;
       INSERT INTO PART_OF VALUES ('wheel', 'bike', 2) ;
       INSERT INTO PART_OF VALUES ('frame', 'bike', 1) ;
       INSERT INTO PART_OF VALUES ('spoke', 'wheel', 32) ;
       INSERT INTO PART_OF VALUES ('rim', 'wheel', 1) ;
       INSERT INTO PART_OF VALUES ('hub', 'wheel', 1) ;
       INSERT INTO PART_OF VALUES ('bearing', 'hub', 2) ;
       INSERT INTO PART_OF VALUES ('tube', 'frame', 3) ;
       INSERT INTO PART_OF VALUES ('lug', 'frame', 4) ;
       INSERT INTO PART_OF VALUES ('seat', 'bike', 1) ;
       INSERT INTO PART_OF VALUES ('rail', 'seat', 2) ;
       -- a second, unrelated product line pads the closure
       INSERT INTO PART_OF VALUES ('blade', 'fan', 5) ;
       INSERT INTO PART_OF VALUES ('motor', 'fan', 1) ;
       INSERT INTO PART_OF VALUES ('coil', 'motor', 12) ;
       INSERT INTO PART_OF VALUES ('magnet', 'motor', 4) ;
       INSERT INTO PART_OF VALUES ('wire', 'coil', 1) ;
       CREATE VIEW USES (Component, Assembly) AS
         ( SELECT Component, Assembly FROM PART_OF
           UNION
           SELECT U1.Component, U2.Assembly
           FROM USES U1, USES U2
           WHERE U1.Assembly = U2.Component ) ;
     |});

  (* every part that ends up in a bike, computed through the fixpoint *)
  let q = "SELECT Component FROM USES WHERE Assembly = 'bike'" in
  Fmt.pr "parts of a bike (recursively):@.%a@." Relation.pp (Session.query s q);

  (* the rewriter focused the recursion: trace the rule applications *)
  let plan = Session.explain s q in
  Fmt.pr "rules applied: %a@." Engine.pp_stats plan.Session.rewrite_stats;
  let work rel =
    let stats = Eval.fresh_stats () in
    ignore (Session.run_plan ~stats s rel);
    stats.Eval.combinations
  in
  Fmt.pr "work: %d combinations unrewritten, %d rewritten@."
    (work plan.Session.translated)
    (work plan.Session.rewritten);

  (* direct fan-out per assembly: an aggregate as a collection function *)
  Fmt.pr "@.direct component count per assembly:@.%a@." Relation.pp
    (Session.query s
       "SELECT Assembly, cardinality(MakeSet(Component)) FROM PART_OF GROUP BY Assembly");

  (* the DBI teaches the optimizer shop knowledge and checks it is safe *)
  Session.add_rules s ~block:"bom" ~limit:(Some 50)
    "qty_positive: and(bag(c*, @(1,3) > 0)) --> and(bag(c*)) ;";
  (match Session.check_program s with
  | [] -> Fmt.pr "@.rule program still termination-safe (§4.2)@."
  | ws -> List.iter (fun w -> Fmt.pr "%a@." Eds_rewriter.Rule_analysis.pp_warning w) ws);
  Fmt.pr "with the qty rule: %a@." Lera.pp
    (Session.explain s "SELECT Component FROM PART_OF WHERE Qty > 0 AND Assembly = 'wheel'")
      .Session.rewritten
