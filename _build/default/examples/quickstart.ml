(* Quickstart: create a schema, load data, run queries, and watch the
   rewriter work.

     dune exec examples/quickstart.exe *)

module Session = Eds.Session
module Relation = Session.Relation
module Lera = Session.Lera
module Engine = Session.Engine

let show title rel =
  Fmt.pr "@.%s@.%a(%d tuples)@." title Relation.pp rel (Relation.cardinality rel)

let () =
  let s = Session.create () in

  (* 1. declare types and tables (ESQL DDL, paper Figure 2 style) *)
  ignore
    (Session.exec_script s
       {|
       TYPE Genre ENUMERATION OF ('Rock', 'Jazz', 'Classical') ;
       TABLE ALBUM (Ida : NUMERIC, Name : CHAR, Style : Genre, Price : NUMERIC) ;
       TABLE TRACK (Ida : NUMERIC, Title : CHAR, Seconds : NUMERIC) ;
     |});

  (* 2. insert data *)
  ignore
    (Session.exec_script s
       {|
       INSERT INTO ALBUM VALUES (1, 'Kind of Blue', 'Jazz', 12) ;
       INSERT INTO ALBUM VALUES (2, 'Fragile', 'Rock', 9) ;
       INSERT INTO ALBUM VALUES (3, 'Köln Concert', 'Jazz', 15) ;
       INSERT INTO TRACK VALUES (1, 'So What', 545) ;
       INSERT INTO TRACK VALUES (1, 'Blue in Green', 337) ;
       INSERT INTO TRACK VALUES (2, 'Roundabout', 503) ;
       INSERT INTO TRACK VALUES (3, 'Part I', 1562) ;
     |});

  (* 3. query through a view: the rewriter merges the view's search with
     the query's and pushes the selections down *)
  ignore
    (Session.exec_string s
       {|CREATE VIEW JazzAlbums (Ida, Name, Price) AS
         SELECT Ida, Name, Price FROM ALBUM WHERE Style = 'Jazz'|});

  let q = "SELECT Name, Title FROM JazzAlbums, TRACK WHERE JazzAlbums.Ida = TRACK.Ida AND Seconds > 400" in
  let plan = Session.explain s q in
  Fmt.pr "user query     : %s@." q;
  Fmt.pr "translated LERA: %a@." Lera.pp plan.Session.translated;
  Fmt.pr "rewritten LERA : %a@." Lera.pp plan.Session.rewritten;
  Fmt.pr "rewriter stats : %a@." Engine.pp_stats plan.Session.rewrite_stats;

  show "long jazz tracks:" (Session.query s q);

  (* 4. an inconsistent query is detected before touching any data *)
  let impossible = "SELECT Name FROM ALBUM WHERE Style = 'Punk'" in
  let plan = Session.explain s impossible in
  Fmt.pr "@.impossible query: %s@.rewritten to    : %a@." impossible Lera.pp
    plan.Session.rewritten;
  show "its result:" (Session.query s impossible)
