(* The traditional-SQL side of ESQL (paper §2: "intended for traditional
   data processing applications written in standard SQL as well as
   non-traditional ones"): a suppliers/parts/orders database with views,
   DML, adaptive optimization and session persistence.

     dune exec examples/suppliers.exe *)

module Session = Eds.Session
module Storage = Eds.Storage
module Relation = Session.Relation
module Value = Session.Value
module Database = Eds_engine.Database
module Engine = Session.Engine

let () =
  let s = Session.create () in
  Session.set_adaptive s true;
  ignore
    (Session.exec_script s
       {|
       TYPE Region ENUMERATION OF ('North', 'South', 'East', 'West') ;
       TABLE SUPPLIER (Ids : NUMERIC, Sname : CHAR, Zone : Region) ;
       TABLE PART (Idp : NUMERIC, Pname : CHAR, Price : NUMERIC) ;
       TABLE ORDERS (Ids : NUMERIC, Idp : NUMERIC, Quantity : NUMERIC) ;
       CREATE VIEW NorthSuppliers (Ids, Sname) AS
         SELECT Ids, Sname FROM SUPPLIER WHERE Zone = 'North' ;
       CREATE VIEW BigOrders (Ids, Idp, Quantity) AS
         SELECT Ids, Idp, Quantity FROM ORDERS WHERE Quantity >= 50 ;
     |});

  (* generate a workload *)
  let db = Session.database s in
  let rng =
    let state = ref 424243 in
    fun bound ->
      state := (!state * 1103515245) + 12345;
      abs !state mod bound
  in
  let regions = [ "North"; "South"; "East"; "West" ] in
  for i = 1 to 40 do
    Database.insert db "SUPPLIER"
      [
        Value.Int i;
        Value.Str (Fmt.str "supplier%d" i);
        Value.Enum ("Region", List.nth regions (rng 4));
      ]
  done;
  for p = 1 to 60 do
    Database.insert db "PART"
      [ Value.Int p; Value.Str (Fmt.str "part%d" p); Value.Int (5 + rng 95) ]
  done;
  for _ = 1 to 400 do
    Database.insert db "ORDERS"
      [ Value.Int (1 + rng 40); Value.Int (1 + rng 60); Value.Int (1 + rng 99) ]
  done;

  (* a three-way join through two views: the rewriter merges the views,
     pushes the selections and evaluates the flat plan *)
  let q =
    {|SELECT Sname, Pname
      FROM NorthSuppliers, BigOrders, PART
      WHERE NorthSuppliers.Ids = BigOrders.Ids
        AND BigOrders.Idp = PART.Idp
        AND Price > 80|}
  in
  let plan = Session.explain s q in
  Fmt.pr "pricey parts on big orders from northern suppliers:@.%a@." Relation.pp
    (Session.query s q);
  Fmt.pr "rewriting: %a@." Engine.pp_stats plan.Session.rewrite_stats;

  (* adaptive limits at work: a key lookup skips rewriting entirely *)
  let lookup = Session.explain s "SELECT Sname FROM SUPPLIER WHERE Ids = 7" in
  Fmt.pr "@.key lookup under adaptive limits: %d rewrites (plan: %a)@."
    lookup.Session.rewrite_stats.Engine.rewrites_applied Session.Lera.pp
    lookup.Session.rewritten;

  (* DML round: a price increase and a cancelled supplier *)
  (match Session.exec_string s "UPDATE PART SET Price = Price + 5 WHERE Price < 20" with
  | Session.Updated n -> Fmt.pr "@.%d cheap parts re-priced@." n
  | _ -> ());
  (match Session.exec_string s "DELETE FROM ORDERS WHERE Ids = 13" with
  | Session.Deleted n -> Fmt.pr "%d orders of supplier 13 cancelled@." n
  | _ -> ());

  (* persistence: the whole session round-trips through text *)
  let dumped = Storage.dump s in
  let s' = Storage.restore dumped in
  let count sess =
    Relation.cardinality (Session.query sess "SELECT Ids, Idp, Quantity FROM ORDERS")
  in
  Fmt.pr "@.dump is %d bytes; orders before/after restore: %d/%d@."
    (String.length dumped) (count s) (count s');
  assert (count s = count s')
