examples/bill_of_materials.ml: Eds Eds_rewriter Fmt List
