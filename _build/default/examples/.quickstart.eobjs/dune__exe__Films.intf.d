examples/films.mli:
