examples/films.ml: Eds Eds_engine Fmt List
