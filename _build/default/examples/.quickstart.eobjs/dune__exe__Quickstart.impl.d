examples/quickstart.ml: Eds Fmt
