examples/custom_rules.ml: Eds Eds_rewriter Eds_term Fmt
