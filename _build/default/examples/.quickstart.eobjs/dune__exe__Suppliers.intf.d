examples/suppliers.mli:
