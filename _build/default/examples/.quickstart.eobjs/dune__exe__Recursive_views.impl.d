examples/recursive_views.ml: Eds Eds_engine Fmt
