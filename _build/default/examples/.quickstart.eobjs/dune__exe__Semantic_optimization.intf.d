examples/semantic_optimization.mli:
