examples/quickstart.mli:
