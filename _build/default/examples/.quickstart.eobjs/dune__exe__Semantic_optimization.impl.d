examples/semantic_optimization.ml: Eds Fmt
