examples/suppliers.ml: Eds Eds_engine Fmt List String
