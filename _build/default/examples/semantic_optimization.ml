(* Semantic query optimization (paper §6): integrity constraints declared
   in the rule language (Figure 10), implicit knowledge such as
   transitivity and equality substitution (Figure 11), and predicate
   simplification (Figure 12).

     dune exec examples/semantic_optimization.exe *)

module Session = Eds.Session
module Relation = Session.Relation
module Lera = Session.Lera

let explain s title q =
  let plan = Session.explain s q in
  Fmt.pr "@.-- %s@.query     : %s@." title q;
  Fmt.pr "translated: %a@." Lera.pp plan.Session.translated;
  Fmt.pr "rewritten : %a@." Lera.pp plan.Session.rewritten;
  plan

let () =
  let s = Session.create () in
  ignore
    (Session.exec_script s
       {|
       TYPE Grade ENUMERATION OF ('A', 'B', 'C', 'D') ;
       TABLE EMPLOYEE (Ide : NUMERIC, Name : CHAR, Level : Grade,
                       Wage : NUMERIC, Bonus : NUMERIC) ;
       INSERT INTO EMPLOYEE VALUES (1, 'Ada', 'A', 9000, 800) ;
       INSERT INTO EMPLOYEE VALUES (2, 'Grace', 'B', 7000, 500) ;
       INSERT INTO EMPLOYEE VALUES (3, 'Edsger', 'C', 5000, 100) ;
     |});

  (* Figure 10: integrity constraints, declared in the rule language *)
  Session.add_integrity_constraint s
    "F(x) / ISA(x, Grade) --> F(x) AND member(x, {'A', 'B', 'C', 'D'})";
  Session.use_enum_domains s;

  (* 1. domain inconsistency: no grade 'Z' can exist *)
  let plan = explain s "domain inconsistency" "SELECT Name FROM EMPLOYEE WHERE Level = 'Z'" in
  if Lera.obviously_empty plan.Session.rewritten then
    Fmt.pr "=> detected as unsatisfiable before execution@."
  else Fmt.pr "=> not detected?!@.";

  (* 2. Figure 12: contradictory predicates collapse *)
  ignore
    (explain s "contradiction elimination"
       "SELECT Name FROM EMPLOYEE WHERE Wage > Bonus AND Wage <= Bonus");

  (* 3. Figure 11: equality substitution + transitivity expose hidden
     contradictions *)
  ignore
    (explain s "hidden contradiction via substitution"
       "SELECT Name FROM EMPLOYEE WHERE Wage = Bonus AND Wage > 5000 AND Bonus <= 5000");

  (* 4. Figure 12: constant folding inside a live query *)
  ignore
    (explain s "constant folding"
       "SELECT Name FROM EMPLOYEE WHERE Wage > 1000 + 4000");

  (* 5. a satisfiable query is merely improved, never altered *)
  let q = "SELECT Name FROM EMPLOYEE WHERE Level = 'B' AND Wage - Bonus = 0" in
  ignore (explain s "minus-zero rewriting (x - y = 0 --> x = y)" q);
  Fmt.pr "@.result:@.%a@." Relation.pp (Session.query s q);

  let good = "SELECT Name FROM EMPLOYEE WHERE Level = 'A'" in
  Fmt.pr "@.grade-A employees:@.%a@." Relation.pp (Session.query s good)
