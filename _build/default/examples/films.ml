(* The paper's running example, end to end: the film database of Figure 2,
   the query of Figure 3, the nested view of Figure 4 — with complex
   objects, collections and the attribute-as-function sugar.

     dune exec examples/films.exe *)

module Session = Eds.Session
module Relation = Session.Relation
module Value = Session.Value
module Lera = Session.Lera

let show title rel =
  Fmt.pr "@.-- %s@.%a(%d tuples)@." title Relation.pp rel (Relation.cardinality rel)

let () =
  let s = Session.create () in

  (* Figure 2: type definitions *)
  ignore
    (Session.exec_script s
       {|
       TYPE Category ENUMERATION OF ('Comedy', 'Adventure', 'Science Fiction', 'Western') ;
       TYPE Point TUPLE (ABS : REAL, ORD : REAL) ;
       TYPE Person OBJECT TUPLE (
         Name : CHAR, Firstname : SET OF CHAR, Caricature : LIST OF Point) ;
       TYPE Actor SUBTYPE OF Person OBJECT TUPLE (Salary : NUMERIC)
         FUNCTION IncreaseSalary(This Actor, Val NUMERIC) ;
       TYPE Text LIST OF CHAR ;
       TYPE SetCategory SET OF Category ;
       TYPE Pairs LIST OF TUPLE (Pros : INT, Cons : INT) ;
       TABLE FILM (Numf : NUMERIC, Title : Text, Categories : SetCategory) ;
       TABLE APPEARS_IN (Numf : NUMERIC, Refactor : Actor) ;
       TABLE DOMINATE (Numf : NUMERIC, Refactor1 : Actor, Refactor2 : Actor, Score : Pairs) ;
     |});

  (* actors are objects: values bound to OIDs in the object store *)
  let actor name salary =
    Session.new_object s
      (Value.tuple
         [
           ("Name", Value.Str name);
           ("Firstname", Value.set []);
           ("Caricature", Value.list []);
           ("Salary", Value.Real salary);
         ])
  in
  let quinn = actor "Quinn" 12_000. in
  let marlon = actor "Marlon" 25_000. in
  let rita = actor "Rita" 8_000. in

  let db = Session.database s in
  let title words = Value.list (List.map (fun w -> Value.Str w) words) in
  let cats labels =
    Value.set (List.map (fun l -> Value.Enum ("Category", l)) labels)
  in
  let insert table tuple = Eds_engine.Database.insert db table tuple in
  insert "FILM" [ Value.Int 1; title [ "Zorba" ]; cats [ "Adventure"; "Comedy" ] ];
  insert "FILM" [ Value.Int 2; title [ "The"; "Wild"; "One" ]; cats [ "Adventure" ] ];
  insert "FILM" [ Value.Int 3; title [ "Gilda" ]; cats [ "Comedy" ] ];
  insert "APPEARS_IN" [ Value.Int 1; quinn ];
  insert "APPEARS_IN" [ Value.Int 1; marlon ];
  insert "APPEARS_IN" [ Value.Int 2; marlon ];
  insert "APPEARS_IN" [ Value.Int 3; rita ];
  let score = Value.list [] in
  insert "DOMINATE" [ Value.Int 1; marlon; quinn; score ];
  insert "DOMINATE" [ Value.Int 1; quinn; rita; score ];

  (* Figure 3: ADT calls in the qualification; Salary(Refactor) becomes
     project(value(Refactor), 'Salary') — watch the translation *)
  let fig3 =
    {|SELECT Title, Categories, Salary(Refactor)
      FROM FILM, APPEARS_IN
      WHERE FILM.Numf = APPEARS_IN.Numf
        AND Name(Refactor) = 'Quinn'
        AND MEMBER('Adventure', Categories)|}
  in
  let plan = Session.explain s fig3 in
  Fmt.pr "Figure 3 translated: %a@." Lera.pp plan.Session.translated;
  show "Figure 3 — Quinn's adventure films" (Session.query s fig3);

  (* Figure 4: a nested view built with MakeSet/GROUP BY, queried with the
     ALL quantifier over a set of objects *)
  ignore
    (Session.exec_string s
       {|CREATE VIEW FilmActors (Title, Categories, Actors) AS
         SELECT Title, Categories, MakeSet(Refactor)
         FROM FILM, APPEARS_IN
         WHERE FILM.Numf = APPEARS_IN.Numf
         GROUP BY Title, Categories|});
  show "Figure 4 — films where every actor earns more than 10000"
    (Session.query s
       {|SELECT Title FROM FilmActors
         WHERE MEMBER('Adventure', Categories) AND ALL (Salary(Actors) > 10000)|});

  (* collection ADT functions straight from ESQL *)
  show "titles longer than one word"
    (Session.query s "SELECT Title FROM FILM WHERE length(Title) > 1")
