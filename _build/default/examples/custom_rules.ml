(* Extensibility (paper §4, §7): the database implementor adds new ADT
   functions, new rewrite rules in the rule language, and new external
   methods — without touching the optimizer's code.

     dune exec examples/custom_rules.exe *)

module Session = Eds.Session
module Value = Session.Value
module Vtype = Session.Vtype
module Adt = Session.Adt
module Term = Session.Term
module Lera = Session.Lera
module Engine = Session.Engine

let explain s title q =
  let plan = Session.explain s q in
  Fmt.pr "@.-- %s@.query     : %s@." title q;
  Fmt.pr "rewritten : %a@." Lera.pp plan.Session.rewritten;
  Fmt.pr "stats     : %a@." Engine.pp_stats plan.Session.rewrite_stats;
  plan

let () =
  let s = Session.create () in
  ignore
    (Session.exec_script s
       {|
       TABLE SENSOR (Ids : NUMERIC, Reading : NUMERIC, Celsius : NUMERIC) ;
       INSERT INTO SENSOR VALUES (1, 40, 20) ;
       INSERT INTO SENSOR VALUES (2, 90, 45) ;
       INSERT INTO SENSOR VALUES (3, 10, -3) ;
     |});

  (* 1. the DBI registers a new ADT function: fahrenheit conversion *)
  Session.register_function s
    {
      Adt.name = "fahrenheit";
      arity = Some 1;
      arg_types = [ Vtype.Real ];
      result_type = Vtype.Real;
      properties = [];
      impl =
        (function
        | [ c ] -> Value.Real ((Value.as_float c *. 9. /. 5.) +. 32.)
        | _ -> invalid_arg "fahrenheit");
    };

  (* usable immediately in ESQL… *)
  Fmt.pr "readings above 100°F:@.%a@." Session.Relation.pp
    (Session.query s "SELECT Ids FROM SENSOR WHERE fahrenheit(Celsius) > 100");

  (* …and in constant folding (Figure 12's EVALUATE knows it too) *)
  ignore
    (explain s "user function folds like a built-in"
       "SELECT Ids FROM SENSOR WHERE Reading > fahrenheit(35)");

  (* 2. the DBI adds domain knowledge as a rewrite rule: this sensor's
     readings never exceed 100, so Reading <= 100 is always true.
     The rule is plain rule-language text appended to a new block. *)
  Session.add_rules s ~block:"sensor_knowledge"
    "reading_bound: and(bag(c*, @(1,2) <= 100)) --> and(bag(c*)) ;";
  ignore
    (explain s "user rule erases a redundant predicate"
       "SELECT Ids FROM SENSOR WHERE Reading <= 100 AND Celsius > 0");

  (* 3. the DBI registers a brand-new external method and uses it from a
     rule: interval reasoning that turns x > k into false when k exceeds
     the declared maximum of the column *)
  let max_reading = 100 in
  let m_exceeds_max _ctx _env subst raw_args =
    match raw_args with
    | [ k_arg ] -> (
      match k_arg with
      | Term.Var x | Term.Cvar x -> (
        match Eds_term.Subst.find_term subst x with
        | Some (Term.Cst (Value.Int k)) when k >= max_reading -> Some subst
        | _ -> None)
      | _ -> None)
    | _ -> None
  in
  Session.register_method s "exceeds_max" m_exceeds_max;
  Session.add_rules s ~block:"sensor_knowledge"
    "reading_max: @(1,2) > k / ISA(k, constant) --> false / exceeds_max(k) ;";
  let plan =
    explain s "user method proves a predicate unsatisfiable"
      "SELECT Ids FROM SENSOR WHERE Reading > 200"
  in
  if Lera.obviously_empty plan.Session.rewritten then
    Fmt.pr "=> the optimizer now knows sensor physics@."
  else Fmt.pr "=> rule did not apply?!@.";

  (* 4. the meta-rule language: the DBI can re-program the whole strategy *)
  let rules = Eds_rewriter.Rulesets.all () in
  let program =
    Eds_rewriter.Rule_parser.(
      resolve_program ~rules
        (parse_meta
           {| block(quick, {search_merge, push_select, const_fold, and_false}, 50) ;
              seq({quick}, 1) ; |}))
  in
  Session.set_program s program;
  ignore
    (explain s "a minimal DBI-defined strategy (one block, limit 50)"
       "SELECT Ids FROM SENSOR WHERE Celsius > 2 + 3")
