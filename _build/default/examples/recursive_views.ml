(* Deductive capabilities (paper §2.2, §3.2, §5.3): a recursive view over a
   flight network, evaluated as a fixpoint, and the Alexander/magic-sets
   rewriting that focuses the recursion on the constants of the query.

     dune exec examples/recursive_views.exe *)

module Session = Eds.Session
module Relation = Session.Relation
module Lera = Session.Lera
module Eval = Session.Eval

let () =
  let s = Session.create () in
  ignore
    (Session.exec_script s
       {|
       TABLE FLIGHT (Orig : CHAR, Dest : CHAR, Miles : NUMERIC) ;
       INSERT INTO FLIGHT VALUES ('Paris', 'London', 215) ;
       INSERT INTO FLIGHT VALUES ('London', 'Reykjavik', 1175) ;
       INSERT INTO FLIGHT VALUES ('Reykjavik', 'Nuuk', 880) ;
       INSERT INTO FLIGHT VALUES ('Paris', 'Rome', 690) ;
       INSERT INTO FLIGHT VALUES ('Rome', 'Athens', 650) ;
       INSERT INTO FLIGHT VALUES ('Athens', 'Cairo', 700) ;
       INSERT INTO FLIGHT VALUES ('Cairo', 'Nairobi', 2200) ;
       INSERT INTO FLIGHT VALUES ('Berlin', 'Warsaw', 320) ;
       INSERT INTO FLIGHT VALUES ('Warsaw', 'Vilnius', 245) ;
     |});

  (* pad the network with unrelated regional clusters: the closure of the
     whole network is large, but what is reachable *from Paris* stays
     small — exactly the situation magic sets exploit *)
  let db = Session.database s in
  let insert_flight o d =
    Eds_engine.Database.insert db "FLIGHT"
      Session.Value.[ Str o; Str d; Real 100. ]
  in
  for cluster = 1 to 4 do
    for i = 1 to 12 do
      let city k = Fmt.str "c%d_%d" cluster k in
      insert_flight (city i) (city (i + 1));
      if i mod 3 = 0 then insert_flight (city i) (city 1)
    done
  done;

  (* a Figure-5 style recursive view: REACHES is the transitive closure *)
  ignore
    (Session.exec_string s
       {|CREATE VIEW REACHES (Orig, Dest) AS
         ( SELECT Orig, Dest FROM FLIGHT
           UNION
           SELECT R1.Orig, R2.Dest
           FROM REACHES R1, REACHES R2
           WHERE R1.Dest = R2.Orig )|});

  let q = "SELECT Dest FROM REACHES WHERE Orig = 'Paris'" in
  let plan = Session.explain s q in
  Fmt.pr "query          : %s@." q;
  Fmt.pr "translated LERA:@.  %a@." Lera.pp plan.Session.translated;
  Fmt.pr "after rewriting (linearized + magic):@.  %a@." Lera.pp plan.Session.rewritten;

  Fmt.pr "@.cities reachable from Paris:@.%a@." Relation.pp (Session.query s q);

  (* measure the work saved by the fixpoint reduction *)
  let work rel =
    let stats = Eval.fresh_stats () in
    ignore (Session.run_plan ~stats s rel);
    stats
  in
  let before = work plan.Session.translated in
  let after = work plan.Session.rewritten in
  Fmt.pr "work before rewriting: %a@." Eval.pp_stats before;
  Fmt.pr "work after rewriting : %a@." Eval.pp_stats after;
  Fmt.pr "combination ratio    : %.1fx fewer@."
    (float_of_int before.Eval.combinations /. float_of_int (max 1 after.Eval.combinations));

  (* the backward adornment works equally: who can reach Nuuk? *)
  let q2 = "SELECT Orig FROM REACHES WHERE Dest = 'Nuuk'" in
  Fmt.pr "@.cities that reach Nuuk:@.%a@." Relation.pp (Session.query s q2)
