(* Randomized soundness of the rewriter: for arbitrary generated queries,
   the default rule program must preserve query results exactly — the
   fundamental invariant of §4.1's "legal transformations".  Also checks
   stability (rewriting a rewritten query changes nothing). *)

module Value = Eds_value.Value
module Vtype = Eds_value.Vtype
module Lera = Eds_lera.Lera
module Relation = Eds_engine.Relation
module Database = Eds_engine.Database
module Eval = Eds_engine.Eval
module Rule = Eds_rewriter.Rule
module Rulesets = Eds_rewriter.Rulesets
module Optimizer = Eds_rewriter.Optimizer

(* a fixed database with two base tables of small integers *)
let db =
  let db = Database.create () in
  let rng =
    let state = ref 20111 in
    fun bound ->
      state := (!state * 1103515245) + 12345;
      abs !state mod bound
  in
  let r_schema = [ ("A", Vtype.Int); ("B", Vtype.Int); ("C", Vtype.Int) ] in
  let s_schema = [ ("D", Vtype.Int); ("E", Vtype.Int) ] in
  Database.add_relation db "R"
    (Relation.make r_schema
       (List.init 25 (fun _ ->
            [ Value.Int (rng 8); Value.Int (rng 8); Value.Int (rng 8) ])));
  Database.add_relation db "S"
    (Relation.make s_schema
       (List.init 15 (fun _ -> [ Value.Int (rng 8); Value.Int (rng 8) ])));
  db

let ctx = Optimizer.make_ctx (Database.schema_env db)

(* -- query generator ----------------------------------------------------- *)

open QCheck2.Gen

let base = oneof [ return (Lera.Base "R", 3); return (Lera.Base "S", 2) ]

let comparison = oneofl [ "="; "<>"; "<"; "<="; ">"; ">=" ]

(* numeric scalar over operand arities *)
let rec num_scalar arities depth =
  let col =
    let* i = int_range 1 (List.length arities) in
    let* j = int_range 1 (List.nth arities (i - 1)) in
    return (Lera.Col (i, j))
  in
  let leaf = oneof [ col; map (fun n -> Lera.Cst (Value.Int n)) (int_range 0 8) ] in
  if depth = 0 then leaf
  else
    frequency
      [
        (3, leaf);
        ( 1,
          let* op = oneofl [ "+"; "-"; "*" ] in
          let* a = num_scalar arities (depth - 1) in
          let* b = num_scalar arities (depth - 1) in
          return (Lera.Call (op, [ a; b ])) );
      ]

let rec bool_scalar arities depth =
  let atom =
    let* op = comparison in
    let* a = num_scalar arities 1 in
    let* b = num_scalar arities 1 in
    return (Lera.Call (op, [ a; b ]))
  in
  if depth = 0 then atom
  else
    frequency
      [
        (3, atom);
        ( 1,
          let* cs = list_size (int_range 2 3) (bool_scalar arities (depth - 1)) in
          return (Lera.conj cs) );
        ( 1,
          let* cs = list_size (int_range 2 3) (bool_scalar arities (depth - 1)) in
          return (Lera.disj cs) );
        (1, map (fun c -> Lera.Call ("not", [ c ])) (bool_scalar arities (depth - 1)));
      ]

(* relation of a requested output arity *)
let rec rel_gen ~arity depth =
  if depth = 0 then begin
    (* project a base relation down/up to the arity *)
    let* b, w = base in
    let* proj = list_repeat arity (int_range 1 w) in
    return (Lera.Project (b, List.map (fun j -> Lera.Col (1, j)) proj))
  end
  else
    frequency
      [
        ( 3,
          (* a search over 1-2 random operands *)
          let* n_ops = int_range 1 2 in
          let* operands =
            list_repeat n_ops
              (let* a = int_range 2 3 in
               let* r = rel_gen ~arity:a (depth - 1) in
               return (r, a))
          in
          let arities = List.map snd operands in
          let* qual = bool_scalar arities 2 in
          let* proj = list_repeat arity (pair (int_range 1 n_ops) (int_range 1 2)) in
          let proj =
            List.map
              (fun (i, j) ->
                let w = List.nth arities (i - 1) in
                Lera.Col (i, min j w))
              proj
          in
          return (Lera.Search (List.map fst operands, qual, proj)) );
        ( 1,
          let* r = rel_gen ~arity (depth - 1) in
          let* qual = bool_scalar [ arity ] 1 in
          return (Lera.Filter (r, qual)) );
        ( 1,
          let* a = rel_gen ~arity (depth - 1) in
          let* b = rel_gen ~arity (depth - 1) in
          return (Lera.Union [ a; b ]) );
        ( 1,
          let* a = rel_gen ~arity (depth - 1) in
          let* b = rel_gen ~arity (depth - 1) in
          oneofl [ Lera.Diff (a, b); Lera.Inter (a, b) ] );
      ]

let query_gen =
  let* arity = int_range 1 3 in
  rel_gen ~arity 3

(* -- properties ----------------------------------------------------------- *)

let rewrite_default q = Optimizer.rewrite ctx q

let prop_default_program_sound =
  QCheck2.Test.make ~name:"default program preserves results (random queries)"
    ~count:120 ~print:Lera.to_string query_gen (fun q ->
      let before = Eval.run db q in
      let after = Eval.run db (rewrite_default q) in
      Relation.equal before after)

let prop_rewrite_stable =
  QCheck2.Test.make ~name:"rewriting is stable (second pass is identity)"
    ~count:60 ~print:Lera.to_string query_gen (fun q ->
      let once = rewrite_default q in
      let twice = rewrite_default once in
      Lera.equal once twice)

let prop_merging_preserves =
  let program =
    { Rule.blocks = [ Rule.block "merging" (Rulesets.merging ()) ]; rounds = 1 }
  in
  QCheck2.Test.make ~name:"merging block alone preserves results" ~count:80
    ~print:Lera.to_string query_gen (fun q ->
      Relation.equal (Eval.run db q) (Eval.run db (Optimizer.rewrite ~program ctx q)))

let prop_simplification_preserves =
  let program =
    {
      Rule.blocks = [ Rule.block "simplification" (Rulesets.simplification ()) ];
      rounds = 1;
    }
  in
  QCheck2.Test.make ~name:"simplification block alone preserves results" ~count:80
    ~print:Lera.to_string query_gen (fun q ->
      Relation.equal (Eval.run db q) (Eval.run db (Optimizer.rewrite ~program ctx q)))

let prop_semantic_preserves =
  let program =
    {
      Rule.blocks =
        [
          Rule.block "semantic" ~limit:60 (Rulesets.semantic ());
          Rule.block "simplification" (Rulesets.simplification ());
        ];
      rounds = 1;
    }
  in
  QCheck2.Test.make ~name:"semantic + simplification preserve results" ~count:60
    ~print:Lera.to_string query_gen (fun q ->
      Relation.equal (Eval.run db q) (Eval.run db (Optimizer.rewrite ~program ctx q)))

let prop_zero_config_is_identity =
  (* with all limits 0, rewriting applies no rule: the result is the
     input modulo the structural canonicalization of conjunctions *)
  QCheck2.Test.make ~name:"limit-0 program applies no rule" ~count:40
    ~print:Lera.to_string query_gen (fun q ->
      let program = Optimizer.program ~config:Optimizer.zero_config () in
      let stats = Eds_rewriter.Engine.fresh_stats () in
      let q' = Optimizer.rewrite ~program ~stats ctx q in
      let canon r =
        Eds_lera.Lera_term.(of_term (normalize (to_term r)))
      in
      stats.Eds_rewriter.Engine.rewrites_applied = 0 && Lera.equal (canon q) q')

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_default_program_sound;
      prop_rewrite_stable;
      prop_merging_preserves;
      prop_simplification_preserves;
      prop_semantic_preserves;
      prop_zero_config_is_identity;
    ]
