(* Tests for terms, substitutions and the collection-variable matcher
   (paper §4.1). *)

module Value = Eds_value.Value
module Term = Eds_term.Term
module Subst = Eds_term.Subst
module Matcher = Eds_term.Matcher

let term = Alcotest.testable Term.pp Term.equal

let f args = Term.app "f" args
let g args = Term.app "g" args
let x = Term.var "x"
let y = Term.var "y"
let xs = Term.cvar "xs"
let ys = Term.cvar "ys"
let i n = Term.int n
let set ts = Term.Coll (Term.Set, ts)
let lst ts = Term.Coll (Term.List, ts)
let bag ts = Term.Coll (Term.Bag, ts)

let all_matches pattern t = List.of_seq (Matcher.all ~pattern t)

let test_equal_modulo_set_order () =
  Alcotest.check term "sets compare as multisets" (set [ i 1; i 2 ]) (set [ i 2; i 1 ]);
  Alcotest.(check bool) "lists are ordered" false
    (Term.equal (lst [ i 1; i 2 ]) (lst [ i 2; i 1 ]))

let test_match_simple_var () =
  match Matcher.first ~pattern:(f [ x; y ]) (f [ i 1; g [ i 2 ] ]) with
  | None -> Alcotest.fail "expected a match"
  | Some s ->
    Alcotest.check term "x" (i 1) (Option.get (Subst.find_term s "x"));
    Alcotest.check term "y" (g [ i 2 ]) (Option.get (Subst.find_term s "y"))

let test_match_nonlinear () =
  Alcotest.(check bool) "f(x,x) matches equal args" true
    (Matcher.matches ~pattern:(f [ x; x ]) (f [ i 1; i 1 ]));
  Alcotest.(check bool) "f(x,x) rejects distinct args" false
    (Matcher.matches ~pattern:(f [ x; x ]) (f [ i 1; i 2 ]))

let test_match_list_cvar_splits () =
  (* LIST(xs*, y, ys* ) against a 3-element list: y can be any element *)
  let pattern = lst [ xs; y; ys ] in
  let subject = lst [ i 1; i 2; i 3 ] in
  let matches = all_matches pattern subject in
  Alcotest.(check int) "three ways to pick y" 3 (List.length matches);
  let ys_of s = Option.get (Subst.find_term s "y") in
  Alcotest.(check bool) "each element picked once" true
    (List.sort Term.compare (List.map ys_of matches) = [ i 1; i 2; i 3 ])

let test_match_list_cvar_binding_spliced () =
  let pattern = lst [ xs; g [ y ]; ys ] in
  let subject = lst [ i 1; g [ i 5 ]; i 3; i 4 ] in
  match Matcher.first ~pattern subject with
  | None -> Alcotest.fail "expected a match"
  | Some s ->
    Alcotest.check term "prefix" (lst [ i 1 ]) (Option.get (Subst.find_term s "xs"));
    Alcotest.check term "suffix" (lst [ i 3; i 4 ]) (Option.get (Subst.find_term s "ys"));
    (* applying the substitution to the pattern rebuilds the subject *)
    Alcotest.check term "round trip" subject (Subst.apply s pattern)

let test_match_set_any_position () =
  (* SET(xs*, g(y)) finds g wherever it sits in the set *)
  let pattern = set [ xs; g [ y ] ] in
  let subject = set [ i 1; g [ i 9 ]; i 3 ] in
  match Matcher.first ~pattern subject with
  | None -> Alcotest.fail "expected a match"
  | Some s ->
    Alcotest.check term "y" (i 9) (Option.get (Subst.find_term s "y"));
    Alcotest.check term "rest"
      (set [ i 1; i 3 ])
      (Option.get (Subst.find_term s "xs"))

let test_match_set_no_cvar_exact () =
  Alcotest.(check bool) "set pattern needs exact multiset" false
    (Matcher.matches ~pattern:(set [ x ]) (set [ i 1; i 2 ]));
  Alcotest.(check bool) "unordered singleton" true
    (Matcher.matches ~pattern:(set [ x ]) (set [ i 7 ]))

let test_match_bag_two_cvars_partition () =
  (* the Figure-8 nest rule shape: AND(BAG(quali*, qualj* )) — all 2^n
     partitions of the conjuncts are enumerated *)
  let pattern = bag [ xs; ys ] in
  let subject = bag [ i 1; i 2 ] in
  let matches = all_matches pattern subject in
  Alcotest.(check int) "2^2 partitions" 4 (List.length matches)

let test_match_failure_wrong_head () =
  Alcotest.(check bool) "g does not match f" false
    (Matcher.matches ~pattern:(f [ x ]) (g [ i 1 ]))

let test_cvar_in_app_args () =
  (* collection variables in application arguments match positionally,
     which is what lets F(u*, x, v* ) patterns find an argument anywhere *)
  (match Matcher.first ~pattern:(f [ xs ]) (f [ i 1; i 2 ]) with
  | Some s ->
    Alcotest.check term "xs takes all args" (lst [ i 1; i 2 ])
      (Option.get (Subst.find_term s "xs"))
  | None -> Alcotest.fail "expected a match");
  Alcotest.(check bool) "bare cvar pattern still rejected" true
    (try
       ignore (Matcher.first ~pattern:(Term.Cvar "xs") (f [ i 1 ]));
       false
     with Invalid_argument _ -> true)

let test_function_variable () =
  (* Figure 6: F | G | H … match any function symbol *)
  let pattern = Term.App (Term.fvar "p", [ xs; x; ys ]) in
  match Matcher.first ~pattern (Term.app "member" [ i 1; i 2 ]) with
  | None -> Alcotest.fail "expected a match"
  | Some s ->
    Alcotest.check term "head bound" (Term.str "member")
      (Option.get (Subst.find_term s (Term.fvar "p")));
    (* rebuilding the rhs with the bound head *)
    Alcotest.check term "rhs uses matched symbol"
      (Term.app "member" [ i 1; i 2 ])
      (Subst.apply s pattern)

let test_subst_apply_unbound_left () =
  let s = Subst.bind_exn Subst.empty "x" (Subst.One (i 1)) in
  Alcotest.check term "unbound y stays" (f [ i 1; y ]) (Subst.apply s (f [ x; y ]))

let test_subst_cvar_as_function_argument () =
  (* cvars splice into application argument lists, like constructors *)
  let s = Subst.bind_exn Subst.empty "xs" (Subst.Many (Term.List, [ i 1; i 2 ])) in
  Alcotest.check term "spliced arguments"
    (Term.app "append" [ i 1; i 2; y ])
    (Subst.apply s (Term.app "append" [ Term.Cvar "xs"; y ]))

let test_size_and_vars () =
  let t = f [ x; g [ y; i 1 ]; set [ Term.Cvar "c" ] ] in
  Alcotest.(check int) "size" 7 (Term.size t);
  Alcotest.(check (list string)) "vars in order" [ "x"; "y"; "c" ] (Term.vars t)

(* -- properties -------------------------------------------------------- *)

let rec term_gen depth =
  let open QCheck2.Gen in
  let leaf =
    oneof
      [
        map (fun n -> Term.int n) (int_range 0 9);
        map (fun c -> Term.str (String.make 1 c)) (char_range 'a' 'e');
      ]
  in
  if depth = 0 then leaf
  else
    frequency
      [
        (2, leaf);
        ( 2,
          map2
            (fun f' args -> Term.app (String.make 1 f') args)
            (char_range 'f' 'h')
            (list_size (int_range 0 3) (term_gen (depth - 1))) );
        ( 1,
          map2
            (fun k args ->
              Term.Coll ((if k then Term.Set else Term.List), args))
            bool
            (list_size (int_range 0 3) (term_gen (depth - 1))) );
      ]

let prop_ground_matches_itself =
  QCheck2.Test.make ~name:"every ground term matches itself" ~count:200 (term_gen 3)
    (fun t -> Matcher.matches ~pattern:t t)

let prop_match_round_trip =
  (* for patterns with variables: applying any returned substitution to the
     pattern yields a term equal to the subject *)
  QCheck2.Test.make ~name:"substitution of a match rebuilds the subject" ~count:200
    (QCheck2.Gen.pair (term_gen 2) (term_gen 2)) (fun (a, b) ->
      let pattern = Term.app "pair" [ Term.var "v"; b ] in
      let subject = Term.app "pair" [ a; b ] in
      match Matcher.first ~pattern subject with
      | None -> false
      | Some s -> Term.equal (Subst.apply s pattern) subject)

let prop_size_positive =
  QCheck2.Test.make ~name:"size is positive and counts subterms" ~count:200 (term_gen 3)
    (fun t -> Term.size t = List.length (Term.subterms t) && Term.size t > 0)

let suite =
  [
    Alcotest.test_case "set equality modulo order" `Quick test_equal_modulo_set_order;
    Alcotest.test_case "simple variable match" `Quick test_match_simple_var;
    Alcotest.test_case "non-linear patterns" `Quick test_match_nonlinear;
    Alcotest.test_case "list cvar enumerates splits" `Quick test_match_list_cvar_splits;
    Alcotest.test_case "list cvar binding splices" `Quick test_match_list_cvar_binding_spliced;
    Alcotest.test_case "set element found anywhere" `Quick test_match_set_any_position;
    Alcotest.test_case "set without cvar is exact" `Quick test_match_set_no_cvar_exact;
    Alcotest.test_case "bag with two cvars partitions" `Quick test_match_bag_two_cvars_partition;
    Alcotest.test_case "wrong head fails" `Quick test_match_failure_wrong_head;
    Alcotest.test_case "cvar in application arguments" `Quick test_cvar_in_app_args;
    Alcotest.test_case "function variables (Fig. 6)" `Quick test_function_variable;
    Alcotest.test_case "apply keeps unbound variables" `Quick test_subst_apply_unbound_left;
    Alcotest.test_case "cvar as function argument" `Quick test_subst_cvar_as_function_argument;
    Alcotest.test_case "size and vars" `Quick test_size_and_vars;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_ground_matches_itself; prop_match_round_trip; prop_size_positive ]
