(* Coverage for the ADT function registry and the engine's expression
   evaluator: every built-in function, broadcasting, error paths. *)

module Value = Eds_value.Value
module Vtype = Eds_value.Vtype
module Adt = Eds_value.Adt
module Lera = Eds_lera.Lera
module Database = Eds_engine.Database
module Expr_eval = Eds_engine.Expr_eval

let value = Alcotest.testable Value.pp Value.equal

let reg = Adt.builtins ()

let apply name args = Adt.apply reg name args

let i n = Value.Int n
let r f = Value.Real f
let s x = Value.Str x
let b x = Value.Bool x
let vset xs = Value.set xs
let vlist xs = Value.list xs

let test_arithmetic () =
  Alcotest.check value "int +" (i 5) (apply "+" [ i 2; i 3 ]);
  Alcotest.check value "mixed + is real" (r 5.5) (apply "+" [ i 2; r 3.5 ]);
  Alcotest.check value "-" (i (-1)) (apply "-" [ i 2; i 3 ]);
  Alcotest.check value "*" (i 6) (apply "*" [ i 2; i 3 ]);
  Alcotest.check value "/" (r 2.5) (apply "/" [ i 5; i 2 ]);
  Alcotest.check value "division by zero is null" Value.Null (apply "/" [ i 5; i 0 ]);
  Alcotest.check value "minus" (i (-4)) (apply "minus" [ i 4 ]);
  Alcotest.check value "abs" (r 2.5) (apply "abs" [ r (-2.5) ])

let test_comparisons_and_logic () =
  Alcotest.check value "=" (b true) (apply "=" [ i 3; r 3. ]);
  Alcotest.check value "<>" (b true) (apply "<>" [ i 3; i 4 ]);
  Alcotest.check value "<=" (b true) (apply "<=" [ s "a"; s "b" ]);
  Alcotest.check value "and" (b false) (apply "and" [ b true; b false ]);
  Alcotest.check value "or" (b true) (apply "or" [ b true; b false ]);
  Alcotest.check value "not" (b false) (apply "not" [ b true ])

let test_broadcast_comparison () =
  (* the Figure-4 mechanism: comparing a collection with a scalar yields a
     collection of booleans *)
  let salaries = vset [ i 5; i 15 ] in
  Alcotest.check value "broadcast left"
    (vset [ b false; b true ])
    (apply ">" [ salaries; i 10 ]);
  Alcotest.check value "broadcast right"
    (vset [ b true; b false ])
    (apply ">" [ i 10; salaries ]);
  Alcotest.check value "all over broadcast" (b false)
    (apply "all" [ apply ">" [ salaries; i 10 ] ]);
  Alcotest.check value "exist over broadcast" (b true)
    (apply "exist" [ apply ">" [ salaries; i 10 ] ])

let test_strings () =
  Alcotest.check value "concat" (s "ab") (apply "concat" [ s "a"; s "b" ]);
  Alcotest.check value "length of string" (i 3) (apply "length" [ s "abc" ]);
  Alcotest.check value "length of collection" (i 2) (apply "length" [ vset [ i 1; i 2 ] ])

let test_collection_functions () =
  let s12 = vset [ i 1; i 2 ] in
  Alcotest.check value "member" (b true) (apply "member" [ i 1; s12 ]);
  Alcotest.check value "union" (vset [ i 1; i 2; i 3 ]) (apply "union" [ s12; vset [ i 3 ] ]);
  Alcotest.check value "intersection" (vset [ i 1 ]) (apply "intersection" [ s12; vset [ i 1 ] ]);
  Alcotest.check value "difference" (vset [ i 2 ]) (apply "difference" [ s12; vset [ i 1 ] ]);
  Alcotest.check value "include" (b true) (apply "include" [ s12; vset [ i 1 ] ]);
  Alcotest.check value "insert" (vset [ i 1; i 2; i 3 ]) (apply "insert" [ i 3; s12 ]);
  Alcotest.check value "remove" (vset [ i 2 ]) (apply "remove" [ i 1; s12 ]);
  Alcotest.check value "isempty" (b false) (apply "isempty" [ s12 ]);
  Alcotest.check value "cardinality" (i 2) (apply "cardinality" [ s12 ]);
  Alcotest.check value "makeset" s12 (apply "makeset" [ i 2; i 1; i 2 ]);
  Alcotest.check value "append" (vlist [ i 1; i 2 ]) (apply "append" [ vlist [ i 1 ]; vlist [ i 2 ] ]);
  Alcotest.check value "count" (i 2) (apply "count" [ i 1; Value.bag [ i 1; i 1 ] ]);
  Alcotest.check value "nth" (i 2) (apply "nth" [ vlist [ i 1; i 2 ]; i 2 ]);
  Alcotest.check value "first" (i 1) (apply "first" [ vlist [ i 1; i 2 ] ]);
  Alcotest.check value "last" (i 2) (apply "last" [ vlist [ i 1; i 2 ] ]);
  Alcotest.check value "toset dedups" (vset [ i 1 ]) (apply "toset" [ Value.bag [ i 1; i 1 ] ]);
  Alcotest.check value "tolist" (vlist [ i 1; i 2 ]) (apply "tolist" [ s12 ])

let test_numeric_aggregates () =
  let str x = Value.Str x in
  let s = vset [ i 2; i 5; i 11 ] in
  Alcotest.check value "sum" (i 18) (apply "sum" [ s ]);
  Alcotest.check value "min" (i 2) (apply "min" [ s ]);
  Alcotest.check value "max" (i 11) (apply "max" [ s ]);
  Alcotest.check value "avg" (r 6.) (apply "avg" [ s ]);
  Alcotest.check value "sum of reals" (r 3.5) (apply "sum" [ vlist [ r 1.5; i 2 ] ]);
  Alcotest.check value "min of strings" (str "a") (apply "min" [ vset [ str "b"; str "a" ] ]);
  Alcotest.check value "avg of empty is null" Value.Null (apply "avg" [ vset [] ]);
  Alcotest.check value "min of empty is null" Value.Null (apply "min" [ vset [] ])

let test_project_function () =
  let tup = Value.tuple [ ("A", i 1); ("B", s "x") ] in
  Alcotest.check value "project field" (s "x") (apply "project" [ tup; s "B" ]);
  Alcotest.check value "project maps over sets"
    (vset [ i 1 ])
    (apply "project" [ vset [ tup ]; s "A" ])

let test_registry_api () =
  Alcotest.(check bool) "case-insensitive lookup" true
    (Option.is_some (Adt.find reg "MeMbEr"));
  Alcotest.(check bool) "transitive property recorded" true
    (Adt.has_property reg "<" Adt.Transitive);
  Alcotest.(check bool) "commutative property recorded" true
    (Adt.has_property reg "+" Adt.Commutative);
  Alcotest.(check bool) "unknown function" true
    (try
       ignore (apply "frobnicate" [ i 1 ]);
       false
     with Not_found -> true);
  Alcotest.(check bool) "arity mismatch" true
    (try
       ignore (apply "not" [ b true; b false ]);
       false
     with Invalid_argument _ -> true);
  (* registration replaces and is persistent *)
  let reg' =
    Adt.register reg
      {
        Adt.name = "member";
        arity = Some 2;
        arg_types = [];
        result_type = Vtype.Bool;
        properties = [];
        impl = (fun _ -> b false);
      }
  in
  Alcotest.check value "override in new registry" (b false)
    (Adt.apply reg' "member" [ i 1; vset [ i 1 ] ]);
  Alcotest.check value "original untouched" (b true)
    (apply "member" [ i 1; vset [ i 1 ] ])

let test_expr_eval_value_paths () =
  let db = Database.create () in
  let oid = Database.new_object db (Value.tuple [ ("N", i 7) ]) in
  let eval = Expr_eval.eval db ~inputs:[ [ oid; vset [ oid ] ] ] in
  Alcotest.check value "value of an oid" (Value.tuple [ ("N", i 7) ])
    (eval (Lera.Call ("value", [ Lera.col 1 1 ])));
  Alcotest.check value "value maps over collections"
    (vset [ Value.tuple [ ("N", i 7) ] ])
    (eval (Lera.Call ("value", [ Lera.col 1 2 ])));
  Alcotest.check value "value of a non-oid is identity" (i 3)
    (eval (Lera.Call ("value", [ Lera.Cst (i 3) ])));
  (* dangling reference *)
  Alcotest.(check bool) "dangling oid raises Eval_error" true
    (try
       ignore (eval (Lera.Call ("value", [ Lera.Cst (Value.Oid 999) ])));
       false
     with Expr_eval.Eval_error _ -> true)

let test_expr_eval_errors () =
  let db = Database.create () in
  let eval = Expr_eval.eval db ~inputs:[ [ i 1 ] ] in
  let fails e =
    try
      ignore (eval e);
      false
    with Expr_eval.Eval_error _ -> true
  in
  Alcotest.(check bool) "bad column operand" true (fails (Lera.col 3 1));
  Alcotest.(check bool) "bad column attribute" true (fails (Lera.col 1 9));
  Alcotest.(check bool) "unknown function" true
    (fails (Lera.Call ("zap", [ Lera.col 1 1; Lera.col 1 1 ])));
  Alcotest.(check bool) "non-boolean qualification" true
    (try
       ignore (Expr_eval.eval_bool db ~inputs:[ [ i 1 ] ] (Lera.col 1 1));
       false
     with Expr_eval.Eval_error _ -> true);
  Alcotest.(check bool) "null is false in qualifications" true
    (Expr_eval.eval_bool db ~inputs:[ [ i 1 ] ] (Lera.Cst Value.Null) = false)

let suite =
  [
    Alcotest.test_case "arithmetic" `Quick test_arithmetic;
    Alcotest.test_case "comparisons and logic" `Quick test_comparisons_and_logic;
    Alcotest.test_case "broadcast comparisons (Fig. 4)" `Quick test_broadcast_comparison;
    Alcotest.test_case "strings" `Quick test_strings;
    Alcotest.test_case "collection functions" `Quick test_collection_functions;
    Alcotest.test_case "numeric aggregates" `Quick test_numeric_aggregates;
    Alcotest.test_case "project function" `Quick test_project_function;
    Alcotest.test_case "registry API" `Quick test_registry_api;
    Alcotest.test_case "value() evaluation paths" `Quick test_expr_eval_value_paths;
    Alcotest.test_case "evaluation errors" `Quick test_expr_eval_errors;
  ]
