(* Tests for the Session façade: DDL/DML/query execution, error wrapping,
   plans, and the DBI extension surface. *)

module Session = Eds.Session
module Value = Eds_value.Value
module Vtype = Eds_value.Vtype
module Adt = Eds_value.Adt
module Term = Eds_term.Term
module Lera = Eds_lera.Lera
module Relation = Eds_engine.Relation
module Rule = Eds_rewriter.Rule
module Optimizer = Eds_rewriter.Optimizer

let ddl =
  {|
  TYPE Color ENUMERATION OF ('Red', 'Green', 'Blue') ;
  TABLE ITEM (Idi : NUMERIC, Label : CHAR, Hue : Color, Price : NUMERIC) ;
|}

let data =
  {|
  INSERT INTO ITEM VALUES (1, 'ball', 'Red', 5) ;
  INSERT INTO ITEM VALUES (2, 'cube', 'Green', 7) ;
  INSERT INTO ITEM VALUES (3, 'cone', 'Red', 11) ;
|}

let make () =
  let s = Session.create () in
  ignore (Session.exec_script s ddl);
  ignore (Session.exec_script s data);
  s

let test_exec_results () =
  let s = Session.create () in
  (match Session.exec_string s "TABLE T (A : NUMERIC)" with
  | Session.Done -> ()
  | _ -> Alcotest.fail "DDL should report Done");
  (match Session.exec_string s "INSERT INTO T VALUES (1)" with
  | Session.Inserted 1 -> ()
  | _ -> Alcotest.fail "INSERT should report Inserted 1");
  match Session.exec_string s "SELECT A FROM T" with
  | Session.Rows rel -> Alcotest.(check int) "one row" 1 (Relation.cardinality rel)
  | _ -> Alcotest.fail "SELECT should report Rows"

let test_query_and_enum_coercion () =
  let s = make () in
  let red = Session.query s "SELECT Label FROM ITEM WHERE Hue = 'Red'" in
  Alcotest.(check int) "two red items" 2 (Relation.cardinality red);
  Alcotest.(check bool) "ball present" true
    (Relation.mem [ Value.Str "ball" ] red)

let test_insert_set_semantics () =
  let s = make () in
  (match Session.exec_string s "INSERT INTO ITEM VALUES (1, 'ball', 'Red', 5)" with
  | Session.Inserted 1 -> ()
  | _ -> Alcotest.fail "insert reported");
  Alcotest.(check int) "duplicate not duplicated" 3
    (Relation.cardinality (Session.query s "SELECT Idi FROM ITEM"))

let test_errors_are_wrapped () =
  let s = make () in
  let fails input =
    try
      ignore (Session.exec_string s input);
      false
    with Session.Session_error _ -> true
  in
  Alcotest.(check bool) "parse error" true (fails "SELEC oops");
  Alcotest.(check bool) "unknown table" true (fails "SELECT A FROM NOPE");
  Alcotest.(check bool) "unknown column" true (fails "SELECT Nope FROM ITEM");
  Alcotest.(check bool) "wrong insert arity" true
    (fails "INSERT INTO ITEM VALUES (1, 'x')");
  Alcotest.(check bool) "insert into unknown table" true
    (fails "INSERT INTO NOPE VALUES (1)");
  Alcotest.(check bool) "query on DDL" true
    (try
       ignore (Session.query s "TABLE U (A : NUMERIC)");
       false
     with Session.Session_error _ -> true)

let test_explain_plans () =
  let s = make () in
  (* the constant expression gives the rewriter visible work even on a
     single-table query (folding); plain single-table selections are
     deliberately left alone *)
  let plan = Session.explain s "SELECT Label FROM ITEM WHERE Price > 3 + 3" in
  Alcotest.(check bool) "translated is a single search" true
    (match plan.Session.translated with Lera.Search _ -> true | _ -> false);
  Alcotest.(check bool) "rewriting did something" true
    (plan.Session.rewrite_stats.Eds_rewriter.Engine.rewrites_applied > 0);
  (* plans evaluate to the same relation *)
  let r1 = Session.run_plan s plan.Session.translated in
  let r2 = Session.run_plan s plan.Session.rewritten in
  Alcotest.(check bool) "equivalent" true (Relation.equal r1 r2)

let test_rewriting_toggle () =
  let s = make () in
  Session.set_rewriting s false;
  let plan = Session.explain s "SELECT Label FROM ITEM WHERE Price > 3 + 3" in
  Alcotest.(check bool) "no rewriting" true
    (Lera.equal plan.Session.translated plan.Session.rewritten);
  Session.set_rewriting s true;
  let plan = Session.explain s "SELECT Label FROM ITEM WHERE Price > 3 + 3" in
  Alcotest.(check bool) "rewriting back on" false
    (Lera.equal plan.Session.translated plan.Session.rewritten)

let test_config_zero_disables_blocks () =
  let s = make () in
  Session.set_config s Optimizer.zero_config;
  let plan = Session.explain s "SELECT Label FROM ITEM WHERE 1 = 2" in
  Alcotest.(check bool) "limits 0: query unchanged" true
    (Lera.equal plan.Session.translated plan.Session.rewritten)

let test_enum_domains_and_constraints () =
  let s = make () in
  Session.use_enum_domains s;
  let plan = Session.explain s "SELECT Label FROM ITEM WHERE Hue = 'Purple'" in
  Alcotest.(check bool) "impossible hue detected" true
    (Lera.obviously_empty plan.Session.rewritten);
  Alcotest.(check int) "and returns nothing" 0
    (Relation.cardinality (Session.query s "SELECT Label FROM ITEM WHERE Hue = 'Purple'"))

let test_declared_constraint () =
  let s = make () in
  Session.add_integrity_constraint s
    "F(x) / ISA(x, Color) --> F(x) AND member(x, {'Red', 'Green', 'Blue'})";
  let plan = Session.explain s "SELECT Label FROM ITEM WHERE Hue = 'Mauve'" in
  Alcotest.(check bool) "declared constraint detects" true
    (Lera.obviously_empty plan.Session.rewritten)

let test_user_rule_block () =
  let s = make () in
  (* prices are known to be under 1000 in this shop *)
  Session.add_rules s ~block:"shop" "cheap: @(1,4) < 1000 --> true ;";
  let plan =
    Session.explain s "SELECT Label FROM ITEM WHERE Price < 1000 AND Hue = 'Red'"
  in
  let rec no_price_conjunct rel =
    match rel with
    | Lera.Search (inputs, q, _) ->
      List.for_all no_price_conjunct inputs
      && List.for_all
           (fun c ->
             match c with
             | Lera.Call ("<", [ Lera.Col _; Lera.Cst (Value.Int 1000) ]) -> false
             | _ -> true)
           (Lera.conjuncts q)
    | Lera.Filter (r, q) ->
      no_price_conjunct r
      && List.for_all
           (fun c ->
             match c with
             | Lera.Call ("<", [ Lera.Col _; Lera.Cst (Value.Int 1000) ]) -> false
             | _ -> true)
           (Lera.conjuncts q)
    | _ -> true
  in
  Alcotest.(check bool) "redundant conjunct erased" true
    (no_price_conjunct plan.Session.rewritten);
  Alcotest.(check int) "results unchanged" 2
    (Relation.cardinality
       (Session.query s "SELECT Label FROM ITEM WHERE Price < 1000 AND Hue = 'Red'"))

let test_register_function () =
  let s = make () in
  Session.register_function s
    {
      Adt.name = "double";
      arity = Some 1;
      arg_types = [ Vtype.Real ];
      result_type = Vtype.Real;
      properties = [];
      impl =
        (function
        | [ v ] -> Value.Real (2. *. Value.as_float v)
        | _ -> invalid_arg "double");
    };
  Alcotest.(check int) "usable in queries" 1
    (Relation.cardinality (Session.query s "SELECT Label FROM ITEM WHERE double(Price) > 15"));
  (* and in constant folding *)
  let plan = Session.explain s "SELECT Label FROM ITEM WHERE Price > double(4)" in
  let rec has_folded rel =
    match rel with
    | Lera.Search (inputs, q, _) ->
      List.exists has_folded inputs
      || List.exists
           (fun c ->
             match c with
             | Lera.Call (">", [ _; Lera.Cst (Value.Real 8.) ]) -> true
             | _ -> false)
           (Lera.conjuncts q)
    | Lera.Filter (r, q) ->
      has_folded r
      || List.exists
           (fun c ->
             match c with
             | Lera.Call (">", [ _; Lera.Cst (Value.Real 8.) ]) -> true
             | _ -> false)
           (Lera.conjuncts q)
    | _ -> false
  in
  Alcotest.(check bool) "double(4) folded to 8" true
    (has_folded plan.Session.rewritten)

let test_register_method_and_rule () =
  let s = make () in
  Session.register_method s "always_fail" (fun _ _ _ _ -> None);
  Session.add_rules s ~block:"custom" "never: @(1,4) > k --> false / always_fail(k) ;";
  (* the method vetoes, so the rule never applies *)
  Alcotest.(check int) "rule vetoed by method" 2
    (Relation.cardinality (Session.query s "SELECT Label FROM ITEM WHERE Price > 6"))

let test_delete () =
  let s = make () in
  (match Session.exec_string s "DELETE FROM ITEM WHERE Hue = 'Red'" with
  | Session.Deleted 2 -> ()
  | Session.Deleted n -> Alcotest.failf "deleted %d" n
  | _ -> Alcotest.fail "expected Deleted");
  Alcotest.(check int) "one left" 1
    (Relation.cardinality (Session.query s "SELECT Idi FROM ITEM"));
  (match Session.exec_string s "DELETE FROM ITEM" with
  | Session.Deleted 1 -> ()
  | _ -> Alcotest.fail "unconditional delete");
  Alcotest.(check int) "empty" 0
    (Relation.cardinality (Session.query s "SELECT Idi FROM ITEM"))

let test_update () =
  let s = make () in
  (match
     Session.exec_string s "UPDATE ITEM SET Price = Price + 10 WHERE Hue = 'Red'"
   with
  | Session.Updated 2 -> ()
  | Session.Updated n -> Alcotest.failf "updated %d" n
  | _ -> Alcotest.fail "expected Updated");
  let expensive = Session.query s "SELECT Label FROM ITEM WHERE Price > 12" in
  Alcotest.(check int) "both red items now above 12" 2
    (Relation.cardinality expensive);
  (* multi-column update with enum coercion in the qualification *)
  (match
     Session.exec_string s
       "UPDATE ITEM SET Label = 'sold', Price = 0 WHERE Idi = 2"
   with
  | Session.Updated 1 -> ()
  | _ -> Alcotest.fail "expected Updated 1");
  Alcotest.(check bool) "label rewritten" true
    (Relation.mem [ Value.Str "sold" ]
       (Session.query s "SELECT Label FROM ITEM WHERE Idi = 2"));
  (* errors *)
  Alcotest.(check bool) "unknown column rejected" true
    (try
       ignore (Session.exec_string s "UPDATE ITEM SET Nope = 1");
       false
     with Session.Session_error _ -> true)

let test_recursive_view_through_session () =
  let s = Session.create () in
  ignore
    (Session.exec_script s
       {|
       TABLE PARENT (Kid : CHAR, Elder : CHAR) ;
       INSERT INTO PARENT VALUES ('ann', 'bob') ;
       INSERT INTO PARENT VALUES ('bob', 'cal') ;
       INSERT INTO PARENT VALUES ('cal', 'dot') ;
       CREATE VIEW ANCESTOR (Kid, Elder) AS
         ( SELECT Kid, Elder FROM PARENT
           UNION
           SELECT A1.Kid, A2.Elder FROM ANCESTOR A1, ANCESTOR A2
           WHERE A1.Elder = A2.Kid ) ;
     |});
  let r = Session.query s "SELECT Elder FROM ANCESTOR WHERE Kid = 'ann'" in
  Alcotest.(check int) "ann has three ancestors" 3 (Relation.cardinality r);
  Alcotest.(check bool) "dot reached" true (Relation.mem [ Value.Str "dot" ] r)

let test_aggregates_end_to_end () =
  let s = Session.create () in
  ignore
    (Session.exec_script s
       {|
       TABLE SALE (Day : CHAR, Amount : NUMERIC) ;
       INSERT INTO SALE VALUES ('mon', 10) ;
       INSERT INTO SALE VALUES ('mon', 25) ;
       INSERT INTO SALE VALUES ('tue', 5) ;
     |});
  let counts =
    Session.query s
      "SELECT Day, cardinality(MakeSet(Amount)) FROM SALE GROUP BY Day"
  in
  Alcotest.(check bool) "mon has two sales" true
    (Relation.mem [ Value.Str "mon"; Value.Int 2 ] counts);
  Alcotest.(check bool) "tue has one" true
    (Relation.mem [ Value.Str "tue"; Value.Int 1 ] counts);
  (* SQL-style SUM/MAX, spelled as collection functions over the nest *)
  let sums =
    Session.query s
      "SELECT Day, sum(MakeSet(Amount)), max(MakeSet(Amount)) FROM SALE GROUP BY Day"
  in
  Alcotest.(check bool) "mon sums to 35, max 25" true
    (Relation.mem [ Value.Str "mon"; Value.Int 35; Value.Int 25 ] sums);
  (* a quantified aggregate: days where every sale is at least 10 *)
  let all_big =
    Session.query s
      "SELECT Day, ALL (MakeSet(Amount) >= 10) FROM SALE GROUP BY Day"
  in
  Alcotest.(check bool) "mon all >= 10" true
    (Relation.mem [ Value.Str "mon"; Value.Bool true ] all_big);
  Alcotest.(check bool) "tue not" true
    (Relation.mem [ Value.Str "tue"; Value.Bool false ] all_big)

let test_having () =
  let s = Session.create () in
  ignore
    (Session.exec_script s
       {|
       TABLE SALE (Day : CHAR, Amount : NUMERIC) ;
       INSERT INTO SALE VALUES ('mon', 10) ;
       INSERT INTO SALE VALUES ('mon', 25) ;
       INSERT INTO SALE VALUES ('tue', 5) ;
       INSERT INTO SALE VALUES ('wed', 7) ;
       INSERT INTO SALE VALUES ('wed', 9) ;
     |});
  (* days with more than one sale *)
  let busy =
    Session.query s
      "SELECT Day FROM SALE GROUP BY Day HAVING cardinality(MakeSet(Amount)) > 1"
  in
  Alcotest.(check int) "two busy days" 2 (Relation.cardinality busy);
  Alcotest.(check bool) "tue filtered out" false
    (Relation.mem [ Value.Str "tue" ] busy);
  (* HAVING with a quantifier over the group *)
  let all_small =
    Session.query s
      "SELECT Day FROM SALE GROUP BY Day HAVING ALL (MakeSet(Amount) < 10)"
  in
  Alcotest.(check bool) "tue all small" true (Relation.mem [ Value.Str "tue" ] all_small);
  Alcotest.(check bool) "wed all small" true (Relation.mem [ Value.Str "wed" ] all_small);
  Alcotest.(check bool) "mon not" false (Relation.mem [ Value.Str "mon" ] all_small);
  (* HAVING without aggregates is rejected *)
  Alcotest.(check bool) "HAVING without GROUP BY rejected" true
    (try
       ignore (Session.query s "SELECT Day FROM SALE HAVING Day = 'mon'");
       false
     with Session.Session_error _ -> true)

let test_objects_through_session () =
  let s = Session.create () in
  ignore
    (Session.exec_script s
       {|
       TYPE Pet OBJECT TUPLE (Name : CHAR, Legs : NUMERIC) ;
       TABLE OWNS (Who : CHAR, Animal : Pet) ;
     |});
  let rex =
    Session.new_object s
      (Value.tuple [ ("Name", Value.Str "rex"); ("Legs", Value.Int 4) ])
  in
  Eds_engine.Database.insert (Session.database s) "OWNS" [ Value.Str "ann"; rex ];
  let r = Session.query s "SELECT Who FROM OWNS WHERE Name(Animal) = 'rex'" in
  Alcotest.(check int) "owner found via object deref" 1 (Relation.cardinality r)

let suite =
  [
    Alcotest.test_case "exec result kinds" `Quick test_exec_results;
    Alcotest.test_case "query + enum coercion" `Quick test_query_and_enum_coercion;
    Alcotest.test_case "insert set semantics" `Quick test_insert_set_semantics;
    Alcotest.test_case "errors wrapped in Session_error" `Quick test_errors_are_wrapped;
    Alcotest.test_case "explain plans" `Quick test_explain_plans;
    Alcotest.test_case "rewriting toggle" `Quick test_rewriting_toggle;
    Alcotest.test_case "zero config disables rewriting" `Quick test_config_zero_disables_blocks;
    Alcotest.test_case "enum domains detect impossible values" `Quick test_enum_domains_and_constraints;
    Alcotest.test_case "declared Figure-10 constraint" `Quick test_declared_constraint;
    Alcotest.test_case "user rule in a new block" `Quick test_user_rule_block;
    Alcotest.test_case "registered ADT function" `Quick test_register_function;
    Alcotest.test_case "registered method can veto" `Quick test_register_method_and_rule;
    Alcotest.test_case "DELETE" `Quick test_delete;
    Alcotest.test_case "UPDATE" `Quick test_update;
    Alcotest.test_case "recursive view end-to-end" `Quick test_recursive_view_through_session;
    Alcotest.test_case "aggregates end-to-end" `Quick test_aggregates_end_to_end;
    Alcotest.test_case "HAVING" `Quick test_having;
    Alcotest.test_case "objects end-to-end" `Quick test_objects_through_session;
  ]
