(* Tests for the LERA algebra: schemas, pretty printing, term bridge and
   the column utilities used by the external methods (paper §3, §4). *)

module Value = Eds_value.Value
module Vtype = Eds_value.Vtype
module Term = Eds_term.Term
module Lera = Eds_lera.Lera
module Schema = Eds_lera.Schema
module Lera_term = Eds_lera.Lera_term
module Database = Eds_engine.Database

let term = Alcotest.testable Term.pp Term.equal
let rel = Alcotest.testable Lera.pp Lera.equal
let scalar = Alcotest.testable Lera.pp_scalar Lera.equal_scalar

(* the paper's §3.1 translation of the Figure-3 query *)
let fig3_search =
  Lera.Search
    ( [ Lera.Base "APPEARS_IN"; Lera.Base "FILM" ],
      Lera.conj
        [
          Lera.eq (Lera.col 1 1) (Lera.col 2 1);
          Lera.eq
            (Lera.Call ("name", [ Lera.col 1 2 ]))
            (Lera.Cst (Value.Str "Quinn"));
          Lera.Call ("member", [ Lera.Cst (Value.Str "Adventure"); Lera.col 2 3 ]);
        ],
      [ Lera.col 2 2; Lera.col 2 3; Lera.Call ("salary", [ Lera.col 1 2 ]) ] )

let fig5_fix =
  (* fix(BETTER_THAN, union({DOMINATE', search((BT, BT), [1.2=2.1], (1.1, 2.2))})) *)
  Lera.Fix
    ( "BETTER_THAN",
      Lera.Union
        [
          Lera.Search
            ( [ Lera.Base "DOMINATE" ],
              Lera.tru,
              [ Lera.col 1 2; Lera.col 1 3 ] );
          Lera.Search
            ( [ Lera.Base "BETTER_THAN"; Lera.Base "BETTER_THAN" ],
              Lera.eq (Lera.col 1 2) (Lera.col 2 1),
              [ Lera.col 1 1; Lera.col 2 2 ] );
        ] )

let env () =
  let db, _ = Fixtures.film_db () in
  Database.schema_env db

let test_conj_flattens () =
  let a = Lera.eq (Lera.col 1 1) (Lera.col 2 1) in
  let b = Lera.Call ("member", [ Lera.Cst (Value.Int 1); Lera.col 1 2 ]) in
  let c = Lera.Call ("<", [ Lera.col 1 3; Lera.Cst (Value.Int 9) ]) in
  Alcotest.check scalar "nested conj flattens"
    (Lera.conj [ a; b; c ])
    (Lera.conj [ Lera.conj [ a; b ]; c ]);
  Alcotest.(check int) "three conjuncts" 3
    (List.length (Lera.conjuncts (Lera.conj [ a; b; c ])));
  Alcotest.check scalar "empty conj is true" Lera.tru (Lera.conj []);
  Alcotest.check scalar "singleton collapses" a (Lera.conj [ a ])

let test_operator_count () =
  Alcotest.(check int) "fig3 search is one operator" 1 (Lera.operator_count fig3_search);
  Alcotest.(check int) "fig5 has fix + union + 2 searches" 4
    (Lera.operator_count fig5_fix)

let test_schema_fig3 () =
  let sch = Schema.of_rel (env ()) fig3_search in
  Alcotest.(check (list string)) "attribute names"
    [ "Title"; "Categories"; "salary" ]
    (List.map fst sch)

let test_schema_fixpoint () =
  let sch = Schema.of_rel (env ()) fig5_fix in
  Alcotest.(check int) "binary result" 2 (Schema.arity sch)

let test_schema_errors () =
  let check_fails name r =
    Alcotest.(check bool) name true
      (try
         ignore (Schema.of_rel (env ()) r);
         false
       with Schema.Schema_error _ -> true)
  in
  check_fails "unknown relation" (Lera.Base "NOPE");
  check_fails "column out of range"
    (Lera.Project (Lera.Base "FILM", [ Lera.col 1 9 ]));
  check_fails "union arity mismatch"
    (Lera.Union [ Lera.Base "FILM"; Lera.Base "APPEARS_IN" ]);
  check_fails "fix without base arm"
    (Lera.Fix ("R", Lera.Search ([ Lera.Rvar "R" ], Lera.tru, [ Lera.col 1 1 ])))

let test_nest_schema () =
  (* nest APPEARS_IN by film number collecting actor refs: (Numf, {Actor}) *)
  let nested = Lera.Nest (Lera.Base "APPEARS_IN", [ 1 ], [ 2 ]) in
  let sch = Schema.of_rel (env ()) nested in
  Alcotest.(check (list string)) "names" [ "Numf"; "Refactor" ] (List.map fst sch);
  match sch with
  | [ _; (_, Vtype.Set (Vtype.Object "Actor")) ] -> ()
  | _ -> Alcotest.failf "unexpected schema %a" Schema.pp sch

let test_bridge_round_trip () =
  let round r = Lera_term.of_term (Lera_term.to_term r) in
  Alcotest.check rel "fig3" fig3_search (round fig3_search);
  Alcotest.check rel "fig5" fig5_fix (round fig5_fix);
  let nested =
    Lera.Unnest (Lera.Nest (Lera.Filter (Lera.Base "FILM", Lera.tru), [ 1 ], [ 2 ]), 2)
  in
  Alcotest.check rel "nest/unnest/filter" nested (round nested)

let test_bridge_conjunction_is_bag () =
  match Lera_term.to_term fig3_search with
  | Term.App ("search", [ _; Term.App ("and", [ Term.Coll (Term.Bag, cs) ]); _ ]) ->
    Alcotest.(check int) "three conjuncts in a bag" 3 (List.length cs)
  | t -> Alcotest.failf "unexpected encoding %a" Term.pp t

let test_normalize_flattens_and () =
  let c1 = Term.app "=" [ Term.int 1; Term.int 1 ] in
  let c2 = Term.app "<" [ Term.int 1; Term.int 2 ] in
  let nested =
    Term.app "and"
      [
        Term.Coll
          ( Term.Bag,
            [ Term.app "and" [ Term.Coll (Term.Bag, [ c1; c2 ]) ]; c1 ] );
      ]
  in
  Alcotest.check term "flattened, deduplicated (∧ is idempotent)"
    (Term.app "and" [ Term.Coll (Term.Bag, [ c1; c2 ]) ])
    (Lera_term.normalize nested);
  Alcotest.check term "singleton collapses" c1
    (Lera_term.normalize (Term.app "and" [ Term.Coll (Term.Bag, [ c1 ]) ]));
  Alcotest.check term "empty and is true" Term.tru
    (Lera_term.normalize (Term.app "and" [ Term.Coll (Term.Bag, []) ]))

let test_normalize_evaluates_constructors () =
  let l1 = Term.Coll (Term.List, [ Term.int 1 ]) in
  let l2 = Term.Coll (Term.List, [ Term.int 2; Term.int 3 ]) in
  Alcotest.check term "append concatenates"
    (Term.Coll (Term.List, [ Term.int 1; Term.int 2; Term.int 3 ]))
    (Lera_term.normalize (Term.app "append" [ l1; l2 ]));
  let s1 = Term.Coll (Term.Set, [ Term.int 1 ]) in
  let s2 = Term.Coll (Term.Set, [ Term.int 2 ]) in
  Alcotest.check term "set_union merges"
    (Term.Coll (Term.Set, [ Term.int 1; Term.int 2 ]))
    (Lera_term.normalize (Term.app "set_union" [ s1; s2 ]));
  (* not evaluated when an argument is still symbolic *)
  let sym = Term.app "append" [ l1; Term.var "z" ] in
  Alcotest.check term "symbolic append kept" sym (Lera_term.normalize sym)

let test_shift_and_merge_subst () =
  let t =
    Lera_term.scalar_to_term
      (Lera.conj
         [
           Lera.eq (Lera.col 1 1) (Lera.col 2 1);
           Lera.Call (">", [ Lera.col 2 2; Lera.Cst (Value.Int 5) ]);
         ])
  in
  let shifted = Lera_term.shift_cols ~by:2 t in
  Alcotest.(check (list (pair int int))) "shifted columns"
    [ (3, 1); (4, 1); (4, 2) ]
    (Lera_term.cols_of shifted)

let test_merge_subst_replaces_through_projection () =
  (* outer references 2.1 and 2.2 where operand 2 is an inner search with
     projection (1.2, salary(1.1)) over one input: slot=2, inner_arity=1 *)
  let outer =
    Lera_term.scalar_to_term
      (Lera.conj
         [
           Lera.eq (Lera.col 2 1) (Lera.Cst (Value.Str "x"));
           Lera.Call (">", [ Lera.col 2 2; Lera.Cst (Value.Int 5) ]);
           Lera.eq (Lera.col 1 1) (Lera.col 3 1);
         ])
  in
  let proj =
    [
      Lera_term.scalar_to_term (Lera.col 1 2);
      Lera_term.scalar_to_term (Lera.Call ("salary", [ Lera.col 1 1 ]));
    ]
  in
  let merged = Lera_term.merge_subst ~slot:2 ~inner_arity:1 ~proj outer in
  let expected =
    Lera_term.scalar_to_term
      (Lera.conj
         [
           Lera.eq (Lera.col 2 2) (Lera.Cst (Value.Str "x"));
           Lera.Call
             (">", [ Lera.Call ("salary", [ Lera.col 2 1 ]); Lera.Cst (Value.Int 5) ]);
           Lera.eq (Lera.col 1 1) (Lera.col 3 1);
         ])
  in
  Alcotest.check term "merged" expected merged

let test_pp_tree () =
  let q =
    Lera.Fix
      ( "R",
        Lera.Union
          [
            Lera.Base "E";
            Lera.Search
              ( [ Lera.Rvar "R"; Lera.Base "E" ],
                Lera.eq (Lera.col 1 2) (Lera.col 2 1),
                [ Lera.col 1 1; Lera.col 2 2 ] );
          ] )
  in
  let text = Fmt.str "%a" Lera.pp_tree q in
  let lines = String.split_on_char '\n' (String.trim text) in
  Alcotest.(check int) "one line per operator/leaf" 6 (List.length lines);
  Alcotest.(check bool) "root unindented" true
    (String.length (List.hd lines) > 0 && (List.hd lines).[0] <> ' ');
  Alcotest.(check bool) "children indented" true
    (List.exists (fun l -> String.length l > 2 && String.sub l 0 2 = "  ") lines)

let suite =
  [
    Alcotest.test_case "conj flattens and collapses" `Quick test_conj_flattens;
    Alcotest.test_case "operator count" `Quick test_operator_count;
    Alcotest.test_case "schema of Fig. 3 search" `Quick test_schema_fig3;
    Alcotest.test_case "schema of Fig. 5 fixpoint" `Quick test_schema_fixpoint;
    Alcotest.test_case "schema errors" `Quick test_schema_errors;
    Alcotest.test_case "nest schema" `Quick test_nest_schema;
    Alcotest.test_case "term bridge round trip" `Quick test_bridge_round_trip;
    Alcotest.test_case "conjunction encodes as bag" `Quick test_bridge_conjunction_is_bag;
    Alcotest.test_case "normalize flattens and/or" `Quick test_normalize_flattens_and;
    Alcotest.test_case "normalize evaluates constructors" `Quick test_normalize_evaluates_constructors;
    Alcotest.test_case "shift_cols" `Quick test_shift_and_merge_subst;
    Alcotest.test_case "merge_subst through projection" `Quick test_merge_subst_replaces_through_projection;
    Alcotest.test_case "pp_tree" `Quick test_pp_tree;
  ]
