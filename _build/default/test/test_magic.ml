(* Focused tests for the Alexander/magic transformation (paper §5.3):
   the structure of the generated magic and answer fixpoints, the
   supported-class boundary, and randomized equivalence. *)

module Value = Eds_value.Value
module Vtype = Eds_value.Vtype
module Lera = Eds_lera.Lera
module Relation = Eds_engine.Relation
module Database = Eds_engine.Database
module Eval = Eds_engine.Eval
module Magic = Eds_rewriter.Magic

let rel = Alcotest.testable Lera.pp Lera.equal

let env_of db = Database.schema_env db

(* right-linear TC over EDGE *)
let rl_tc =
  Lera.Fix
    ( "TC",
      Lera.Union
        [
          Lera.Base "EDGE";
          Lera.Search
            ( [ Lera.Base "EDGE"; Lera.Rvar "TC" ],
              Lera.eq (Lera.col 1 2) (Lera.col 2 1),
              [ Lera.col 1 1; Lera.col 2 2 ] );
        ] )

let test_transform_structure () =
  let db = Fixtures.chain_db 5 in
  let bound = [ (1, Lera.Cst (Value.Int 1)) ] in
  match Magic.transform (env_of db) ~rvars:[] rl_tc ~bound with
  | None -> Alcotest.fail "transformation refused"
  | Some (Lera.Fix (name, Lera.Union arms)) ->
    Alcotest.(check string) "answer renamed with the _magic marker" "TC_magic" name;
    Alcotest.(check int) "one guarded arm per original arm" 2 (List.length arms);
    (* every arm gained the magic fixpoint as last operand *)
    List.iter
      (fun arm ->
        match arm with
        | Lera.Search (inputs, _, _) -> (
          match List.rev inputs with
          | Lera.Fix (mname, _) :: _ ->
            Alcotest.(check string) "magic operand" "TC_m" mname
          | _ -> Alcotest.fail "no magic operand")
        | _ -> Alcotest.fail "arm is not a search")
      arms
  | Some r -> Alcotest.failf "unexpected result %a" Lera.pp r

let test_magic_seed_is_constant_relation () =
  let db = Fixtures.chain_db 5 in
  let bound = [ (1, Lera.Cst (Value.Int 3)) ] in
  match Magic.transform (env_of db) ~rvars:[] rl_tc ~bound with
  | Some (Lera.Fix (_, Lera.Union (Lera.Search (inputs, _, _) :: _))) -> (
    match List.rev inputs with
    | Lera.Fix (_, Lera.Union (seed :: _)) :: _ ->
      (* evaluating the seed alone yields exactly the query constant *)
      let r = Eval.run db seed in
      Alcotest.(check int) "one seed tuple" 1 (Relation.cardinality r);
      Alcotest.(check bool) "the constant" true (Relation.mem [ Value.Int 3 ] r)
    | _ -> Alcotest.fail "no magic fix")
  | _ -> Alcotest.fail "transformation refused"

let test_magic_relation_contents_chain () =
  (* on a chain, binding column 1 to node 3: the magic set for the
     right-linear rule bt(x,y) :- edge(x,z), bt(z,y)… here the binding is
     on x, which propagates through EDGE: magic = nodes reachable from 3 *)
  let db = Fixtures.chain_db 6 in
  let bound = [ (1, Lera.Cst (Value.Int 3)) ] in
  match Magic.transform (env_of db) ~rvars:[] rl_tc ~bound with
  | Some (Lera.Fix (_, Lera.Union (Lera.Search (inputs, _, _) :: _))) -> (
    match List.rev inputs with
    | (Lera.Fix _ as magic) :: _ ->
      let r = Eval.run db magic in
      (* 3 plus everything reachable from 3 via EDGE: 3,4,5,6 *)
      Alcotest.(check int) "frontier size" 4 (Relation.cardinality r);
      Alcotest.(check bool) "contains the seed" true (Relation.mem [ Value.Int 3 ] r);
      Alcotest.(check bool) "does not contain upstream nodes" false
        (Relation.mem [ Value.Int 2 ] r)
    | _ -> Alcotest.fail "no magic fix")
  | _ -> Alcotest.fail "transformation refused"

let test_refusals () =
  let db = Fixtures.chain_db 4 in
  let env = env_of db in
  (* no bound columns *)
  Alcotest.(check bool) "empty adornment refused" true
    (Magic.transform env ~rvars:[] rl_tc ~bound:[] = None);
  (* not a fixpoint *)
  Alcotest.(check bool) "non-fix refused" true
    (Magic.transform env ~rvars:[] (Lera.Base "EDGE")
       ~bound:[ (1, Lera.Cst (Value.Int 1)) ]
    = None);
  (* no base arm *)
  let no_base =
    Lera.Fix
      ( "R",
        Lera.Search ([ Lera.Rvar "R" ], Lera.tru, [ Lera.col 1 1; Lera.col 1 2 ]) )
  in
  Alcotest.(check bool) "no base arm refused" true
    (Magic.transform env ~rvars:[] no_base ~bound:[ (1, Lera.Cst (Value.Int 1)) ] = None);
  (* binding that cannot propagate: bound column computed by an expression *)
  let opaque =
    Lera.Fix
      ( "R",
        Lera.Union
          [
            Lera.Base "EDGE";
            Lera.Search
              ( [ Lera.Base "EDGE"; Lera.Rvar "R" ],
                Lera.tru,
                [
                  Lera.Call ("+", [ Lera.col 2 1; Lera.Cst (Value.Int 1) ]);
                  Lera.col 2 2;
                ] );
          ] )
  in
  Alcotest.(check bool) "unpropagatable binding refused" true
    (Magic.transform env ~rvars:[] opaque ~bound:[ (1, Lera.Cst (Value.Int 1)) ] = None)

let test_nonlinear_without_linearization_refused () =
  let db = Fixtures.chain_db 4 in
  let nonlinear =
    Lera.Fix
      ( "TC",
        Lera.Union
          [
            Lera.Base "EDGE";
            Lera.Search
              ( [ Lera.Rvar "TC"; Lera.Rvar "TC" ],
                Lera.eq (Lera.col 1 2) (Lera.col 2 1),
                [ Lera.col 1 1; Lera.col 2 2 ] );
          ] )
  in
  Alcotest.(check bool) "two occurrences refused (linearize first)" true
    (Magic.transform (env_of db) ~rvars:[] nonlinear
       ~bound:[ (1, Lera.Cst (Value.Int 1)) ]
    = None)

let test_linearize_refusals () =
  (* arms that merely look like TC must not linearize *)
  let wrong_proj =
    Lera.Fix
      ( "R",
        Lera.Union
          [
            Lera.Base "EDGE";
            Lera.Search
              ( [ Lera.Rvar "R"; Lera.Rvar "R" ],
                Lera.eq (Lera.col 1 2) (Lera.col 2 1),
                [ Lera.col 2 2; Lera.col 1 1 ] );
          ] )
  in
  Alcotest.(check bool) "reversed projection not linearized" true
    (Magic.linearize_tc wrong_proj = None);
  let wrong_join =
    Lera.Fix
      ( "R",
        Lera.Union
          [
            Lera.Base "EDGE";
            Lera.Search
              ( [ Lera.Rvar "R"; Lera.Rvar "R" ],
                Lera.eq (Lera.col 1 1) (Lera.col 2 2),
                [ Lera.col 1 1; Lera.col 2 2 ] );
          ] )
  in
  Alcotest.(check bool) "wrong join condition not linearized" true
    (Magic.linearize_tc wrong_join = None)

let test_both_column_bindings_twice () =
  (* transform with both columns bound (adornment bb) *)
  let db = Fixtures.chain_db 8 in
  let bound = [ (1, Lera.Cst (Value.Int 2)); (2, Lera.Cst (Value.Int 6)) ] in
  match Magic.transform (env_of db) ~rvars:[] rl_tc ~bound with
  | None -> Alcotest.fail "bb adornment refused"
  | Some rewritten ->
    let outer proj fix =
      Lera.Search
        ( [ fix ],
          Lera.conj
            [
              Lera.eq (Lera.col 1 1) (Lera.Cst (Value.Int 2));
              Lera.eq (Lera.col 1 2) (Lera.Cst (Value.Int 6));
            ],
          proj )
    in
    let p = [ Lera.col 1 1; Lera.col 1 2 ] in
    Alcotest.(check bool) "bb results agree" true
      (Relation.equal (Eval.run db (outer p rl_tc)) (Eval.run db (outer p rewritten)))

let prop_magic_equivalent_on_random_graphs =
  QCheck2.Test.make ~name:"magic ≡ original on random graphs" ~count:25
    QCheck2.Gen.(triple (int_range 4 14) (int_range 4 30) (int_range 1 14))
    (fun (nodes, edges, start) ->
      QCheck2.assume (start <= nodes);
      let db = Fixtures.graph_db ~nodes ~edges in
      let bound = [ (1, Lera.Cst (Value.Int start)) ] in
      match Magic.transform (env_of db) ~rvars:[] rl_tc ~bound with
      | None -> false
      | Some rewritten ->
        let outer fix =
          Lera.Search
            ( [ fix ],
              Lera.eq (Lera.col 1 1) (Lera.Cst (Value.Int start)),
              [ Lera.col 1 2 ] )
        in
        Relation.equal (Eval.run db (outer rl_tc)) (Eval.run db (outer rewritten)))

(* The paper is explicit that such rules are heuristic ("do not guarantee
   a better processing plan", §5.2): when nearly everything is reachable
   the magic guard costs more than it saves.  The claim to check is the
   selective case: a query constant near the end of a chain reaches only
   a handful of nodes, and there magic must win. *)
let prop_magic_cheaper_when_selective =
  QCheck2.Test.make ~name:"magic wins when the relevant fraction is small" ~count:10
    QCheck2.Gen.(int_range 20 40)
    (fun n ->
      let start = n - 4 in
      let db = Fixtures.chain_db n in
      let bound = [ (1, Lera.Cst (Value.Int start)) ] in
      match Magic.transform (env_of db) ~rvars:[] rl_tc ~bound with
      | None -> false
      | Some rewritten ->
        let outer fix =
          Lera.Search
            ( [ fix ],
              Lera.eq (Lera.col 1 1) (Lera.Cst (Value.Int start)),
              [ Lera.col 1 2 ] )
        in
        let work q =
          let stats = Eval.fresh_stats () in
          ignore (Eval.run ~stats db q);
          stats.Eval.combinations
        in
        work (outer rewritten) < work (outer rl_tc))

let suite =
  [
    Alcotest.test_case "answer/magic fixpoint structure" `Quick test_transform_structure;
    Alcotest.test_case "magic seed" `Quick test_magic_seed_is_constant_relation;
    Alcotest.test_case "magic set = reachable frontier" `Quick test_magic_relation_contents_chain;
    Alcotest.test_case "refusals outside the class" `Quick test_refusals;
    Alcotest.test_case "non-linear refused pre-linearization" `Quick test_nonlinear_without_linearization_refused;
    Alcotest.test_case "linearization shape checks" `Quick test_linearize_refusals;
    Alcotest.test_case "bb adornment" `Quick test_both_column_bindings_twice;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_magic_equivalent_on_random_graphs; prop_magic_cheaper_when_selective ]
