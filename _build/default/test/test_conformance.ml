(* Conformance sweep: a catalog of diverse ESQL queries over the film
   schema, each executed with rewriting off, with the default program,
   and with adaptive limits — all three must agree.  This is the broad
   regression net over the whole pipeline. *)

module Session = Eds.Session
module Relation = Eds_engine.Relation
module Database = Eds_engine.Database
module Value = Eds_value.Value

let ddl =
  {|
  TYPE Category ENUMERATION OF ('Comedy', 'Adventure', 'Science Fiction', 'Western') ;
  TYPE Person OBJECT TUPLE (Name : CHAR, Firstname : SET OF CHAR) ;
  TYPE Actor SUBTYPE OF Person OBJECT TUPLE (Salary : NUMERIC) ;
  TYPE Text LIST OF CHAR ;
  TABLE FILM (Numf : NUMERIC, Title : Text, Categories : SET OF Category, Year : NUMERIC) ;
  TABLE APPEARS_IN (Numf : NUMERIC, Refactor : Actor) ;
  CREATE VIEW FilmActors (Title, Categories, Actors) AS
    SELECT Title, Categories, MakeSet(Refactor)
    FROM FILM, APPEARS_IN
    WHERE FILM.Numf = APPEARS_IN.Numf
    GROUP BY Title, Categories ;
  CREATE VIEW Recent (Numf, Title) AS
    SELECT Numf, Title FROM FILM WHERE Year >= 1950 ;
  CREATE VIEW COSTARS (A1, A2) AS
    SELECT X.Refactor, Y.Refactor
    FROM APPEARS_IN X, APPEARS_IN Y
    WHERE X.Numf = Y.Numf ;
  CREATE VIEW INFLUENCES (Src, Dst) AS
    ( SELECT A1, A2 FROM COSTARS
      UNION
      SELECT I1.Src, I2.Dst FROM INFLUENCES I1, INFLUENCES I2
      WHERE I1.Dst = I2.Src ) ;
|}

let sessions () =
  let build () =
    let s = Session.create () in
    ignore (Session.exec_script s ddl);
    let actor name salary =
      Session.new_object s
        (Value.tuple
           [
             ("Name", Value.Str name);
             ("Firstname", Value.set []);
             ("Salary", Value.Real salary);
           ])
    in
    let names = [ "ann"; "bob"; "cal"; "dot"; "eve"; "fay"; "gus"; "hal" ] in
    let actors = List.map (fun n -> actor n (float_of_int (4000 + (String.length n * 3000)))) names in
    let db = Session.database s in
    let cats = [ "Comedy"; "Adventure"; "Science Fiction"; "Western" ] in
    for f = 1 to 12 do
      let chosen =
        List.filteri (fun i _ -> (f + i) mod 3 = 0) cats
        |> List.map (fun c -> Value.Enum ("Category", c))
      in
      Database.insert db "FILM"
        [
          Value.Int f;
          Value.list [ Value.Str (Fmt.str "film%d" f) ];
          Value.set chosen;
          Value.Int (1930 + (f * 7 mod 60));
        ];
      List.iteri
        (fun i a ->
          if (f + i) mod 4 = 0 then Database.insert db "APPEARS_IN" [ Value.Int f; a ])
        actors
    done;
    s
  in
  let s_off = build () in
  Session.set_rewriting s_off false;
  let s_def = build () in
  let s_ada = build () in
  Session.set_adaptive s_ada true;
  (s_off, s_def, s_ada)

let queries =
  [
    "SELECT Numf FROM FILM";
    "SELECT Numf, Year FROM FILM WHERE Year > 1960";
    "SELECT Title FROM FILM WHERE MEMBER('Western', Categories)";
    "SELECT Title FROM FILM WHERE NOT MEMBER('Western', Categories)";
    "SELECT Title FROM FILM WHERE MEMBER('Comedy', Categories) AND Year < 1970";
    "SELECT Title FROM FILM WHERE Year < 1940 OR Year > 1980";
    "SELECT Numf FROM FILM WHERE Year + 10 > 1950 AND Year * 2 < 4000";
    "SELECT Numf FROM FILM WHERE Year IN (1937, 1944, 1951)";
    "SELECT Title FROM FILM WHERE length(Title) >= 1";
    "SELECT Name(Refactor) FROM APPEARS_IN WHERE Salary(Refactor) > 20000";
    "SELECT Title FROM FILM, APPEARS_IN WHERE FILM.Numf = APPEARS_IN.Numf AND Salary(Refactor) <= 16000";
    "SELECT Numf FROM Recent WHERE Numf > 5";
    "SELECT Recent.Title FROM Recent, APPEARS_IN WHERE Recent.Numf = APPEARS_IN.Numf AND Name(Refactor) = 'cal'";
    "SELECT Title FROM FilmActors WHERE ALL (Salary(Actors) > 5000)";
    "SELECT Title FROM FilmActors WHERE EXIST (Salary(Actors) > 20000)";
    "SELECT Title, cardinality(MakeSet(Refactor)) FROM FILM, APPEARS_IN WHERE FILM.Numf = APPEARS_IN.Numf GROUP BY Title";
    "SELECT Title FROM FILM, APPEARS_IN WHERE FILM.Numf = APPEARS_IN.Numf GROUP BY Title HAVING cardinality(MakeSet(Refactor)) > 1";
    "SELECT Day FROM DAYS WHERE Day = 'x'";  (* replaced below *)
    "SELECT Numf FROM FILM WHERE Year = Year";
    "SELECT Numf FROM FILM WHERE Year > 1900 AND Year > 1800";
    "SELECT Numf FROM FILM WHERE Year > 2000 AND Year < 1800";
    "SELECT Numf FROM FILM WHERE MEMBER('Cartoon', Categories)";
    "SELECT Numf FROM FILM UNION SELECT Numf FROM Recent";
    "SELECT Name(Src) FROM INFLUENCES WHERE Name(Dst) = 'eve'";
    "SELECT Numf FROM FILM WHERE Numf - 3 = 0";
    "SELECT Numf FROM FILM WHERE NOT (Year < 1950)";
  ]

(* one entry is a placeholder for a syntactically distinct shape *)
let queries =
  List.map
    (fun q ->
      if q = "SELECT Day FROM DAYS WHERE Day = 'x'" then
        "SELECT Numf FROM FILM WHERE Numf = 1 AND Numf = 1"
      else q)
    queries

let test_all_modes_agree () =
  let s_off, s_def, s_ada = sessions () in
  List.iter
    (fun q ->
      let r_off = Session.query s_off q in
      let r_def = Session.query s_def q in
      let r_ada = Session.query s_ada q in
      Alcotest.(check bool)
        (Fmt.str "default = off: %s" q)
        true (Relation.equal r_off r_def);
      Alcotest.(check bool)
        (Fmt.str "adaptive = off: %s" q)
        true (Relation.equal r_off r_ada))
    queries

let test_rewriting_never_worse_on_selective_queries () =
  (* for the selective queries of the sweep, the default program must not
     increase the evaluator's work *)
  let _, s_def, _ = sessions () in
  let selective =
    [
      "SELECT Title FROM FILM WHERE Numf = 3";
      "SELECT Recent.Title FROM Recent, APPEARS_IN WHERE Recent.Numf = APPEARS_IN.Numf AND Recent.Numf = 2";
      "SELECT Numf FROM FILM WHERE MEMBER('Cartoon', Categories)";
    ]
  in
  List.iter
    (fun q ->
      let plan = Session.explain s_def q in
      let work rel =
        let stats = Eds_engine.Eval.fresh_stats () in
        ignore (Session.run_plan ~stats s_def rel);
        stats.Eds_engine.Eval.combinations
      in
      let before = work plan.Session.translated in
      let after = work plan.Session.rewritten in
      Alcotest.(check bool)
        (Fmt.str "%s: %d <= %d" q after before)
        true (after <= before))
    selective

let suite =
  [
    Alcotest.test_case "all modes agree on the sweep" `Slow test_all_modes_agree;
    Alcotest.test_case "rewriting never worse when selective" `Quick test_rewriting_never_worse_on_selective_queries;
  ]
