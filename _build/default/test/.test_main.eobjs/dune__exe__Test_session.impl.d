test/test_session.ml: Alcotest Eds Eds_engine Eds_lera Eds_rewriter Eds_term Eds_value List
