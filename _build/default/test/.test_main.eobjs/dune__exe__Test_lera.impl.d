test/test_lera.ml: Alcotest Eds_engine Eds_lera Eds_term Eds_value Fixtures Fmt List String
