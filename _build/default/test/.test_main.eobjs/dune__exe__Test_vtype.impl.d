test/test_vtype.ml: Alcotest Eds_value List
