test/fixtures.ml: Eds_engine Eds_lera Eds_value List
