test/test_storage.ml: Alcotest Eds Eds_engine Eds_value Filename Float Fmt List QCheck2 QCheck_alcotest Sys
