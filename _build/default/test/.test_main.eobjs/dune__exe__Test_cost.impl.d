test/test_cost.ml: Alcotest Eds_engine Eds_lera Eds_rewriter Eds_value Fixtures Fmt
