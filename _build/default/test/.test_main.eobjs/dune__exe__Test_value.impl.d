test/test_value.ml: Alcotest Eds_value Float Fmt List QCheck2 QCheck_alcotest
