test/test_rule_parser.ml: Alcotest Eds_rewriter Eds_term Eds_value Fmt List String
