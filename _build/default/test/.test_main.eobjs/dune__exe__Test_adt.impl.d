test/test_adt.ml: Alcotest Eds_engine Eds_lera Eds_value Option
