test/test_robustness.ml: Alcotest Eds_engine Eds_lera Eds_rewriter Eds_term Eds_value Fixtures Fmt List QCheck2 QCheck_alcotest Seq
