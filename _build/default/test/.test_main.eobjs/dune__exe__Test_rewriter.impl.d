test/test_rewriter.ml: Alcotest Eds Eds_engine Eds_esql Eds_lera Eds_rewriter Eds_term Eds_value Fixtures Fmt List Option QCheck2 QCheck_alcotest
