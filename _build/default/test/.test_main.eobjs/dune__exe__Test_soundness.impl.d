test/test_soundness.ml: Eds_engine Eds_lera Eds_rewriter Eds_value List QCheck2 QCheck_alcotest
