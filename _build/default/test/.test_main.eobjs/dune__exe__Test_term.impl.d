test/test_term.ml: Alcotest Eds_term Eds_value List Option QCheck2 QCheck_alcotest String
