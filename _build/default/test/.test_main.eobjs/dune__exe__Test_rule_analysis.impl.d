test/test_rule_analysis.ml: Alcotest Eds_rewriter Fmt List
