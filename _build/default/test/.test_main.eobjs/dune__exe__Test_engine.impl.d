test/test_engine.ml: Alcotest Eds_engine Eds_lera Eds_value Fixtures Fmt List QCheck2 QCheck_alcotest
