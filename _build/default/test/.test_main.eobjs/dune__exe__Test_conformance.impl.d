test/test_conformance.ml: Alcotest Eds Eds_engine Eds_value Fmt List String
