test/test_collection.ml: Alcotest Eds_value List QCheck2 QCheck_alcotest
