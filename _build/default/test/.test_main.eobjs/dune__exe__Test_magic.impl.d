test/test_magic.ml: Alcotest Eds_engine Eds_lera Eds_rewriter Eds_value Fixtures List QCheck2 QCheck_alcotest
