test/test_esql.ml: Alcotest Eds_esql Eds_lera Eds_value Fmt List Option
