(* Robustness: matcher enumeration completeness, bridge error paths, and
   how the engine behaves when a user rule damages the query term. *)

module Value = Eds_value.Value
module Term = Eds_term.Term
module Subst = Eds_term.Subst
module Matcher = Eds_term.Matcher
module Lera = Eds_lera.Lera
module Lera_term = Eds_lera.Lera_term
module Database = Eds_engine.Database
module Rule = Eds_rewriter.Rule
module Rule_parser = Eds_rewriter.Rule_parser
module Engine = Eds_rewriter.Engine
module Optimizer = Eds_rewriter.Optimizer

let i n = Term.int n
let set ts = Term.Coll (Term.Set, ts)
let lst ts = Term.Coll (Term.List, ts)

(* every enumerated match, applied to the pattern, rebuilds the subject *)
let prop_all_matches_valid =
  let open QCheck2.Gen in
  let subject_gen =
    let* n = int_range 0 5 in
    let* items = list_repeat n (int_range 0 3) in
    return (set (List.map i items))
  in
  QCheck2.Test.make ~name:"every set match is valid" ~count:200 subject_gen
    (fun subject ->
      let pattern = set [ Term.Cvar "rest"; Term.var "one" ] in
      Seq.for_all
        (fun s -> Term.equal (Subst.apply s pattern) subject)
        (Matcher.all ~pattern subject))

let prop_set_match_count =
  (* with k distinct elements, pattern SET(rest*, one) has exactly k
     matches *)
  let open QCheck2.Gen in
  QCheck2.Test.make ~name:"set match count equals cardinality" ~count:100
    (int_range 0 6) (fun k ->
      let subject = set (List.init k (fun n -> i n)) in
      let pattern = set [ Term.Cvar "rest"; Term.var "one" ] in
      List.length (List.of_seq (Matcher.all ~pattern subject)) = k)

let prop_list_split_count =
  (* LIST of two cvars over an n-element list has n+1 splits *)
  QCheck2.Test.make ~name:"list split count" ~count:100 QCheck2.Gen.(int_range 0 8)
    (fun n ->
      let subject = lst (List.init n i) in
      let pattern = lst [ Term.Cvar "a"; Term.Cvar "b" ] in
      List.length (List.of_seq (Matcher.all ~pattern subject)) = n + 1)

let prop_bag_partition_count =
  (* BAG of two cvars over n distinct elements has 2^n partitions *)
  QCheck2.Test.make ~name:"bag partition count" ~count:50 QCheck2.Gen.(int_range 0 6)
    (fun n ->
      let subject = Term.Coll (Term.Bag, List.init n i) in
      let pattern = Term.Coll (Term.Bag, [ Term.Cvar "a"; Term.Cvar "b" ]) in
      List.length (List.of_seq (Matcher.all ~pattern subject)) = 1 lsl n)

(* -- bridge error paths --------------------------------------------------- *)

let test_bridge_rejects_non_lera () =
  let bad = [
    Term.app "search" [ Term.int 1; Term.tru; Term.int 2 ];
    Term.app "fix" [ Term.int 3; Term.app "rel" [ Term.str "R" ] ];
    Term.var "x";
    Term.app "unnest" [ Term.app "rel" [ Term.str "R" ]; Term.str "no" ];
  ]
  in
  List.iter
    (fun t ->
      Alcotest.(check bool)
        (Fmt.str "rejected: %a" Term.pp t)
        true
        (try
           ignore (Lera_term.of_term t);
           false
         with Lera_term.Bridge_error _ -> true))
    bad

let test_scalar_bridge_round_trip () =
  let scalars =
    [
      Lera.Cst (Value.Real 2.5);
      Lera.col 3 4;
      Lera.Call ("project", [ Lera.Call ("value", [ Lera.col 1 1 ]); Lera.Cst (Value.Str "F") ]);
      Lera.conj [ Lera.eq (Lera.col 1 1) (Lera.col 2 2); Lera.fls ];
      Lera.disj [ Lera.tru; Lera.Call ("member", [ Lera.col 1 1; Lera.Cst (Value.set []) ]) ];
    ]
  in
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Fmt.str "round trip %a" Lera.pp_scalar s)
        true
        (Lera.equal_scalar s (Lera_term.scalar_of_term (Lera_term.scalar_to_term s))))
    scalars

(* -- engine under hostile rules -------------------------------------------- *)

let test_destructive_user_rule_reported () =
  (* a rule that rewrites a relational node into a non-LERA term: the
     rewrite runs, but lifting back reports a clear error *)
  let db = Fixtures.chain_db 3 in
  let ctx = Optimizer.make_ctx (Database.schema_env db) in
  let vandal = Rule_parser.parse_rule "vandal: rel(n) --> broken(n)" in
  let program = { Rule.blocks = [ Rule.block "user" ~limit:5 [ vandal ] ]; rounds = 1 } in
  Alcotest.(check bool) "Rewrite_error raised" true
    (try
       ignore (Optimizer.rewrite ~program ctx (Lera.Base "EDGE"));
       false
     with Engine.Rewrite_error _ -> true)

let test_unknown_method_reported () =
  let db = Fixtures.chain_db 3 in
  let ctx = Optimizer.make_ctx (Database.schema_env db) in
  let rule = Rule_parser.parse_rule "r: rel(n) --> rel(m) / no_such_method(n, m)" in
  let program = { Rule.blocks = [ Rule.block "user" ~limit:5 [ rule ] ]; rounds = 1 } in
  Alcotest.(check bool) "unknown method raises Rewrite_error" true
    (try
       ignore (Optimizer.rewrite ~program ctx (Lera.Base "EDGE"));
       false
     with Engine.Rewrite_error _ -> true)

let test_constraint_on_unknown_predicate_is_false () =
  (* an unregistered constraint predicate never holds: the rule silently
     does not apply (the paper's "rule is only applied … if all the
     constraints are true") *)
  let db = Fixtures.chain_db 3 in
  let ctx = Optimizer.make_ctx (Database.schema_env db) in
  let rule = Rule_parser.parse_rule "r: rel(n) / mystery(n) --> rel(n)" in
  let program = { Rule.blocks = [ Rule.block "user" ~limit:5 [ rule ] ]; rounds = 1 } in
  let stats = Engine.fresh_stats () in
  let q = Lera.Base "EDGE" in
  let q' = Optimizer.rewrite ~program ~stats ctx q in
  Alcotest.(check bool) "query unchanged" true (Lera.equal q q');
  Alcotest.(check int) "no rewrites" 0 stats.Engine.rewrites_applied;
  Alcotest.(check bool) "but the condition was checked (and counted)" true
    (stats.Engine.conditions_checked > 0)

let test_limit_zero_blocks_even_matching_rules () =
  let db = Fixtures.chain_db 3 in
  let ctx = Optimizer.make_ctx (Database.schema_env db) in
  let rule = Rule_parser.parse_rule "r: rel(n) --> rvar(n)" in
  let program = { Rule.blocks = [ Rule.block "user" ~limit:0 [ rule ] ]; rounds = 1 } in
  let q' = Optimizer.rewrite ~program ctx (Lera.Base "EDGE") in
  Alcotest.(check bool) "limit 0 stops everything" true (Lera.equal (Lera.Base "EDGE") q')

let suite =
  [
    Alcotest.test_case "bridge rejects non-LERA terms" `Quick test_bridge_rejects_non_lera;
    Alcotest.test_case "scalar bridge round trip" `Quick test_scalar_bridge_round_trip;
    Alcotest.test_case "destructive user rule reported" `Quick test_destructive_user_rule_reported;
    Alcotest.test_case "unknown method reported" `Quick test_unknown_method_reported;
    Alcotest.test_case "unknown constraint predicate is false" `Quick test_constraint_on_unknown_predicate_is_false;
    Alcotest.test_case "limit 0 blocks matching rules" `Quick test_limit_zero_blocks_even_matching_rules;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [
        prop_all_matches_valid;
        prop_set_match_count;
        prop_list_split_count;
        prop_bag_partition_count;
      ]
