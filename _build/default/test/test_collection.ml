(* Tests for the Figure-1 generic collection ADT operations. *)

module Value = Eds_value.Value
module Collection = Eds_value.Collection

let value = Alcotest.testable Value.pp Value.equal

let s123 = Value.set [ Value.Int 1; Value.Int 2; Value.Int 3 ]
let s23 = Value.set [ Value.Int 2; Value.Int 3 ]

let test_convert_bag_to_set () =
  (* the paper's example: converting a bag to a set removes duplicates *)
  let b = Value.bag [ Value.Int 1; Value.Int 1; Value.Int 2 ] in
  Alcotest.check value "dedup" (Value.set [ Value.Int 1; Value.Int 2 ])
    (Collection.convert Set b)

let test_is_empty () =
  Alcotest.(check bool) "empty set" true (Collection.is_empty (Value.set []));
  Alcotest.(check bool) "non-empty list" false (Collection.is_empty (Value.list [ Value.Int 1 ]))

let test_insert_remove () =
  Alcotest.check value "insert into set" s123 (Collection.insert (Value.Int 1) s123);
  Alcotest.check value "remove from set" s23 (Collection.remove (Value.Int 1) s123);
  let b = Value.bag [ Value.Int 1; Value.Int 1 ] in
  Alcotest.check value "remove one occurrence from bag"
    (Value.bag [ Value.Int 1 ])
    (Collection.remove (Value.Int 1) b);
  let l = Value.list [ Value.Int 1; Value.Int 2 ] in
  Alcotest.check value "insert appends to list"
    (Value.list [ Value.Int 1; Value.Int 2; Value.Int 3 ])
    (Collection.insert (Value.Int 3) l)

let test_member () =
  Alcotest.(check bool) "member" true (Collection.member (Value.Int 2) s123);
  Alcotest.(check bool) "not member" false (Collection.member (Value.Int 9) s123)

let test_set_algebra () =
  Alcotest.check value "union" s123 (Collection.union (Value.set [ Value.Int 1 ]) s23);
  Alcotest.check value "inter" s23 (Collection.inter s123 s23);
  Alcotest.check value "diff" (Value.set [ Value.Int 1 ]) (Collection.diff s123 s23);
  Alcotest.(check bool) "includes" true (Collection.includes s123 s23);
  Alcotest.(check bool) "not includes" false (Collection.includes s23 s123)

let test_bag_algebra () =
  let b1 = Value.bag [ Value.Int 1; Value.Int 1; Value.Int 2 ] in
  let b2 = Value.bag [ Value.Int 1; Value.Int 2; Value.Int 2 ] in
  Alcotest.check value "bag inter keeps min occurrences"
    (Value.bag [ Value.Int 1; Value.Int 2 ])
    (Collection.inter b1 b2);
  Alcotest.check value "bag diff removes per occurrence"
    (Value.bag [ Value.Int 1 ])
    (Collection.diff b1 b2);
  Alcotest.(check int) "bag count" 2 (Collection.count (Value.Int 1) b1)

let test_kind_mismatch_rejected () =
  let l = Value.list [ Value.Int 1 ] in
  Alcotest.(check bool) "union of set and list raises" true
    (try
       ignore (Collection.union s123 l);
       false
     with Invalid_argument _ -> true)

let test_choice_and_makeset () =
  Alcotest.(check bool) "choice returns a member" true
    (Collection.member (Collection.choice s123) s123);
  Alcotest.check value "make_set" s123
    (Collection.make_set [ Value.Int 3; Value.Int 2; Value.Int 1; Value.Int 2 ])

let test_list_positional () =
  let l = Value.list [ Value.Str "a"; Value.Str "b"; Value.Str "c" ] in
  Alcotest.check value "nth" (Value.Str "b") (Collection.nth l 2);
  Alcotest.check value "first" (Value.Str "a") (Collection.first l);
  Alcotest.check value "last" (Value.Str "c") (Collection.last l);
  Alcotest.check value "append"
    (Value.list [ Value.Str "a"; Value.Str "b"; Value.Str "c"; Value.Str "a" ])
    (Collection.append l (Value.list [ Value.Str "a" ]))

let test_quantifiers () =
  let bools b = Value.set (List.map (fun x -> Value.Bool x) b) in
  Alcotest.(check bool) "all true" true (Collection.for_all (bools [ true; true ]));
  Alcotest.(check bool) "all with false" false (Collection.for_all (bools [ true; false ]));
  Alcotest.(check bool) "exist" true (Collection.exists (bools [ false; true ]));
  Alcotest.(check bool) "exist none" false (Collection.exists (bools [ false ]))

(* -- properties -------------------------------------------------------- *)

let int_set_gen =
  QCheck2.Gen.map
    (fun xs -> Value.set (List.map (fun i -> Value.Int i) xs))
    QCheck2.Gen.(list_size (int_range 0 10) (int_range 0 20))

let prop_union_commutative =
  QCheck2.Test.make ~name:"set union commutative" ~count:200
    (QCheck2.Gen.pair int_set_gen int_set_gen) (fun (a, b) ->
      Value.equal (Collection.union a b) (Collection.union b a))

let prop_inter_included =
  QCheck2.Test.make ~name:"intersection included in both" ~count:200
    (QCheck2.Gen.pair int_set_gen int_set_gen) (fun (a, b) ->
      let i = Collection.inter a b in
      Collection.includes a i && Collection.includes b i)

let prop_diff_disjoint =
  QCheck2.Test.make ~name:"difference disjoint from subtrahend" ~count:200
    (QCheck2.Gen.pair int_set_gen int_set_gen) (fun (a, b) ->
      Collection.is_empty (Collection.inter (Collection.diff a b) b))

let prop_insert_member =
  QCheck2.Test.make ~name:"insert then member" ~count:200
    (QCheck2.Gen.pair QCheck2.Gen.(int_range 0 50) int_set_gen) (fun (x, s) ->
      Collection.member (Value.Int x) (Collection.insert (Value.Int x) s))

let prop_convert_set_idempotent =
  QCheck2.Test.make ~name:"convert to set is idempotent" ~count:200 int_set_gen
    (fun s -> Value.equal (Collection.convert Set s) s)

let suite =
  [
    Alcotest.test_case "convert bag to set dedups" `Quick test_convert_bag_to_set;
    Alcotest.test_case "is_empty" `Quick test_is_empty;
    Alcotest.test_case "insert/remove" `Quick test_insert_remove;
    Alcotest.test_case "member" `Quick test_member;
    Alcotest.test_case "set algebra" `Quick test_set_algebra;
    Alcotest.test_case "bag algebra" `Quick test_bag_algebra;
    Alcotest.test_case "kind mismatch rejected" `Quick test_kind_mismatch_rejected;
    Alcotest.test_case "choice and make_set" `Quick test_choice_and_makeset;
    Alcotest.test_case "list positional ops" `Quick test_list_positional;
    Alcotest.test_case "ALL / EXIST quantifiers" `Quick test_quantifiers;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [
        prop_union_commutative;
        prop_inter_included;
        prop_diff_disjoint;
        prop_insert_member;
        prop_convert_set_idempotent;
      ]
