(* Tests for the type system and the ISA predicate (paper §2.1, §4.1). *)

module Value = Eds_value.Value
module Vtype = Eds_value.Vtype

(* the Figure-2 type environment *)
let film_env () =
  let open Vtype in
  empty_env
  |> fun env ->
  declare env
    {
      name = "Category";
      definition =
        Enum ("Category", [ "Comedy"; "Adventure"; "Science Fiction"; "Western" ]);
      is_object = false;
      supertype = None;
    }
  |> fun env ->
  declare env
    {
      name = "Point";
      definition = Tuple [ ("ABS", Real); ("ORD", Real) ];
      is_object = false;
      supertype = None;
    }
  |> fun env ->
  declare env
    {
      name = "Person";
      definition =
        Tuple
          [
            ("Name", String);
            ("Firstname", Set String);
            ("Caricature", List (Named "Point"));
          ];
      is_object = true;
      supertype = None;
    }
  |> fun env ->
  declare env
    {
      name = "Actor";
      definition = Tuple [ ("Salary", Real) ];
      is_object = true;
      supertype = Some "Person";
    }
  |> fun env ->
  declare env
    {
      name = "Text";
      definition = List String;
      is_object = false;
      supertype = None;
    }
  |> fun env ->
  declare env
    {
      name = "SetCategory";
      definition = Set (Named "Category");
      is_object = false;
      supertype = None;
    }

let test_declare_rejects_duplicates () =
  let env = film_env () in
  Alcotest.(check bool) "duplicate raises" true
    (try
       ignore
         (Vtype.declare env
            { name = "Point"; definition = Vtype.Int; is_object = false; supertype = None });
       false
     with Invalid_argument _ -> true)

let test_isa_numeric () =
  let env = Vtype.empty_env in
  Alcotest.(check bool) "Int ISA Real" true (Vtype.isa env Vtype.Int Vtype.Real);
  Alcotest.(check bool) "Real not ISA Int" false (Vtype.isa env Vtype.Real Vtype.Int);
  Alcotest.(check bool) "everything ISA Any" true (Vtype.isa env Vtype.String Vtype.Any)

let test_isa_collection_hierarchy () =
  let env = Vtype.empty_env in
  (* Figure 1: set, bag, list, array are subtypes of collection *)
  Alcotest.(check bool) "SET ISA COLLECTION" true
    (Vtype.isa env (Vtype.Set Vtype.Int) (Vtype.Collection Vtype.Int));
  Alcotest.(check bool) "BAG ISA COLLECTION" true
    (Vtype.isa env (Vtype.Bag Vtype.Int) (Vtype.Collection Vtype.Int));
  Alcotest.(check bool) "LIST ISA COLLECTION" true
    (Vtype.isa env (Vtype.List Vtype.Int) (Vtype.Collection Vtype.Int));
  Alcotest.(check bool) "ARRAY ISA COLLECTION" true
    (Vtype.isa env (Vtype.Array Vtype.Int) (Vtype.Collection Vtype.Int));
  Alcotest.(check bool) "SET not ISA BAG" false
    (Vtype.isa env (Vtype.Set Vtype.Int) (Vtype.Bag Vtype.Int));
  Alcotest.(check bool) "element covariance" true
    (Vtype.isa env (Vtype.Set Vtype.Int) (Vtype.Collection Vtype.Real))

let test_isa_objects () =
  let env = film_env () in
  Alcotest.(check bool) "Actor ISA Person" true
    (Vtype.isa env (Vtype.Object "Actor") (Vtype.Object "Person"));
  Alcotest.(check bool) "Person not ISA Actor" false
    (Vtype.isa env (Vtype.Object "Person") (Vtype.Object "Actor"))

let test_object_fields_inherited () =
  let env = film_env () in
  match Vtype.expand env (Vtype.Object "Actor") with
  | Vtype.Tuple fs ->
    Alcotest.(check (list string)) "inherited fields first"
      [ "Name"; "Firstname"; "Caricature"; "Salary" ]
      (List.map fst fs)
  | ty -> Alcotest.failf "expected a tuple, got %a" Vtype.pp ty

let test_field_and_element_types () =
  let env = film_env () in
  (match Vtype.field_type env (Vtype.Object "Actor") "Salary" with
  | Some Vtype.Real -> ()
  | Some ty -> Alcotest.failf "Salary: %a" Vtype.pp ty
  | None -> Alcotest.fail "Salary not found");
  match Vtype.element_type env (Vtype.Named "SetCategory") with
  | Some (Vtype.Named "Category") -> ()
  | Some ty -> Alcotest.failf "element: %a" Vtype.pp ty
  | None -> Alcotest.fail "element type not found"

let test_type_of_value () =
  let env = film_env () in
  Alcotest.(check bool) "int value" true
    (Vtype.equal (Vtype.type_of_value env (Value.Int 3)) Vtype.Int);
  Alcotest.(check bool) "homogeneous set" true
    (Vtype.equal
       (Vtype.type_of_value env (Value.set [ Value.Int 1; Value.Int 2 ]))
       (Vtype.Set Vtype.Int));
  Alcotest.(check bool) "enum resolves declaration" true
    (match Vtype.type_of_value env (Value.Enum ("Category", "Comedy")) with
    | Vtype.Enum ("Category", labels) -> List.mem "Adventure" labels
    | _ -> false)

let test_isa_tuple_width () =
  let env = Vtype.empty_env in
  let narrow = Vtype.Tuple [ ("a", Vtype.Int) ] in
  let wide = Vtype.Tuple [ ("a", Vtype.Int); ("b", Vtype.String) ] in
  Alcotest.(check bool) "wide ISA narrow" true (Vtype.isa env wide narrow);
  Alcotest.(check bool) "narrow not ISA wide" false (Vtype.isa env narrow wide)

let suite =
  [
    Alcotest.test_case "declare rejects duplicates" `Quick test_declare_rejects_duplicates;
    Alcotest.test_case "ISA numeric widening" `Quick test_isa_numeric;
    Alcotest.test_case "ISA collection hierarchy (Fig. 1)" `Quick test_isa_collection_hierarchy;
    Alcotest.test_case "ISA object inheritance" `Quick test_isa_objects;
    Alcotest.test_case "object fields inherited" `Quick test_object_fields_inherited;
    Alcotest.test_case "field and element types" `Quick test_field_and_element_types;
    Alcotest.test_case "type_of_value" `Quick test_type_of_value;
    Alcotest.test_case "ISA tuple width subtyping" `Quick test_isa_tuple_width;
  ]
