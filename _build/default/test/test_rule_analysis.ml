(* Tests for the §4.2 termination analysis. *)

module Rule = Eds_rewriter.Rule
module Rule_parser = Eds_rewriter.Rule_parser
module Rule_analysis = Eds_rewriter.Rule_analysis
module Rulesets = Eds_rewriter.Rulesets
module Optimizer = Eds_rewriter.Optimizer

let behaviour =
  Alcotest.testable Rule_analysis.pp_size_behaviour (fun a b -> a = b)

let classify text = Rule_analysis.size_behaviour (Rule_parser.parse_rule text)

let test_classification () =
  Alcotest.check behaviour "projection-style rule shrinks" Rule_analysis.Decreasing
    (classify "shrink: f(g(x), y) --> g(x)");
  Alcotest.check behaviour "renaming keeps size" Rule_analysis.Nonincreasing
    (classify "rename: f(x, y) --> g(y, x)");
  Alcotest.check behaviour "duplication grows" Rule_analysis.Increasing
    (classify "dup: f(x) --> g(x, x)");
  Alcotest.check behaviour "extra structure grows" Rule_analysis.Increasing
    (classify "wrap: f(x) --> f(g(x))");
  Alcotest.check behaviour "notin guards growth" Rule_analysis.Guarded_growth
    (classify
       "trans: and(bag(c*, x = y, y = z)) / notin(x = z, c*) --> and(bag(c*, x = y, y = z, x = z))");
  Alcotest.check behaviour "method outputs are unknown" Rule_analysis.Unknown
    (classify "m: f(x) --> g(out) / compute(x, out)")

let test_figure11_rules_are_guarded () =
  (* the paper's growth rules all carry NOTIN guards *)
  List.iter
    (fun name ->
      let rule = Rulesets.find name in
      Alcotest.check behaviour name Rule_analysis.Guarded_growth
        (Rule_analysis.size_behaviour rule))
    [ "eq_transitivity"; "lt_transitivity"; "le_transitivity"; "eq_substitution" ]

let test_default_program_is_warning_free () =
  (* every potentially growing block of the default program either has a
     finite limit or only guarded/shrinking rules *)
  let warnings = Rule_analysis.check_program (Optimizer.program ()) in
  List.iter (fun w -> Fmt.epr "%a@." Rule_analysis.pp_warning w) warnings;
  Alcotest.(check int) "no warnings" 0 (List.length warnings)

let test_looping_rule_flagged () =
  let bad = Rule_parser.parse_rule "loop: f(x) --> f(g(x))" in
  let block = Rule.block "user" [ bad ] in
  let warnings = Rule_analysis.check_block block in
  Alcotest.(check int) "one warning" 1 (List.length warnings);
  Alcotest.(check string) "names the rule" "loop" (List.hd warnings).Rule_analysis.rule;
  (* a finite limit silences it — the paper's own remedy *)
  Alcotest.(check int) "finite limit accepted" 0
    (List.length (Rule_analysis.check_block (Rule.block ~limit:10 "user" [ bad ])))

let test_overlap_detection () =
  let parse = Rule_parser.parse_rule in
  let r1 = parse "a: f(x, g(y)) --> x" in
  let r2 = parse "b: f(g(z), w) --> w" in
  let r3 = parse "c: h(x) --> x" in
  Alcotest.(check bool) "same head overlaps" true (Rule_analysis.could_overlap r1 r2);
  Alcotest.(check bool) "different head does not" false
    (Rule_analysis.could_overlap r1 r3);
  Alcotest.(check bool) "incompatible constants do not" false
    (Rule_analysis.could_overlap (parse "d: f(1) --> g(1)") (parse "e: f(2) --> g(2)"));
  Alcotest.(check bool) "function variable overlaps anything applied" true
    (Rule_analysis.could_overlap (parse "fv: F(x) --> x") r3)

let test_known_competing_rules () =
  (* the development history of this repo: push_select used to steal the
     redexes of the more specific nest/unnest pushes — the analysis makes
     that visible *)
  let block =
    Rule.block "permutation" (Rulesets.permutation ())
  in
  let pairs = Rule_analysis.overlaps block in
  let mem a b = List.mem (a, b) pairs || List.mem (b, a) pairs in
  Alcotest.(check bool) "unnest push competes with select push" true
    (mem "push_search_unnest" "push_select");
  Alcotest.(check bool) "nest push competes with select push" true
    (mem "push_search_nest" "push_select")

let suite =
  [
    Alcotest.test_case "size-behaviour classification" `Quick test_classification;
    Alcotest.test_case "Figure-11 rules are guarded" `Quick test_figure11_rules_are_guarded;
    Alcotest.test_case "default program warning-free" `Quick test_default_program_is_warning_free;
    Alcotest.test_case "looping user rule flagged" `Quick test_looping_rule_flagged;
    Alcotest.test_case "overlap detection" `Quick test_overlap_detection;
    Alcotest.test_case "known competing rules found" `Quick test_known_competing_rules;
  ]
