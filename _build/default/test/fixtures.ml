(* Shared test fixtures: the Figure-2 film database and small graph
   databases for fixpoint experiments. *)

module Value = Eds_value.Value
module Vtype = Eds_value.Vtype
module Schema = Eds_lera.Schema
module Relation = Eds_engine.Relation
module Database = Eds_engine.Database

let film_types () =
  let open Vtype in
  let ( |+ ) env d = declare env d in
  empty_env
  |+ {
       name = "Category";
       definition =
         Enum ("Category", [ "Comedy"; "Adventure"; "Science Fiction"; "Western" ]);
       is_object = false;
       supertype = None;
     }
  |+ {
       name = "Point";
       definition = Tuple [ ("ABS", Real); ("ORD", Real) ];
       is_object = false;
       supertype = None;
     }
  |+ {
       name = "Person";
       definition =
         Tuple
           [
             ("Name", String);
             ("Firstname", Set String);
             ("Caricature", List (Named "Point"));
           ];
       is_object = true;
       supertype = None;
     }
  |+ {
       name = "Actor";
       definition = Tuple [ ("Salary", Real) ];
       is_object = true;
       supertype = Some "Person";
     }
  |+ { name = "Text"; definition = List String; is_object = false; supertype = None }
  |+ {
       name = "SetCategory";
       definition = Set (Named "Category");
       is_object = false;
       supertype = None;
     }
  |+ {
       name = "Pairs";
       definition = List (Tuple [ ("Pros", Int); ("Cons", Int) ]);
       is_object = false;
       supertype = None;
     }

let category label = Value.Enum ("Category", label)

let actor db ~name ~salary =
  Database.new_object db
    (Value.tuple
       [
         ("Name", Value.Str name);
         ("Firstname", Value.set []);
         ("Caricature", Value.list []);
         ("Salary", Value.Real salary);
       ])

(* The Figure-2 schema populated with a small cast.  Returns the database
   and the actor OIDs keyed by name. *)
let film_db () =
  let db = Database.create ~types:(film_types ()) () in
  let quinn = actor db ~name:"Quinn" ~salary:12_000. in
  let marlon = actor db ~name:"Marlon" ~salary:25_000. in
  let rita = actor db ~name:"Rita" ~salary:8_000. in
  let greta = actor db ~name:"Greta" ~salary:15_000. in
  let film_schema =
    [
      ("Numf", Vtype.Real);
      ("Title", Vtype.Named "Text");
      ("Categories", Vtype.Named "SetCategory");
    ]
  in
  let title words = Value.list (List.map (fun w -> Value.Str w) words) in
  let cats labels = Value.set (List.map category labels) in
  Database.add_relation db "FILM"
    (Relation.make film_schema
       [
         [ Value.Int 1; title [ "Zorba" ]; cats [ "Adventure"; "Comedy" ] ];
         [ Value.Int 2; title [ "The"; "Wild"; "One" ]; cats [ "Adventure" ] ];
         [ Value.Int 3; title [ "Gilda" ]; cats [ "Comedy" ] ];
         [ Value.Int 4; title [ "Ninotchka" ]; cats [ "Comedy"; "Western" ] ];
       ]);
  let appears_schema = [ ("Numf", Vtype.Real); ("Refactor", Vtype.Object "Actor") ] in
  Database.add_relation db "APPEARS_IN"
    (Relation.make appears_schema
       [
         [ Value.Int 1; quinn ];
         [ Value.Int 1; marlon ];
         [ Value.Int 2; marlon ];
         [ Value.Int 3; rita ];
         [ Value.Int 3; quinn ];
         [ Value.Int 4; greta ];
       ]);
  let dominate_schema =
    [
      ("Numf", Vtype.Real);
      ("Refactor1", Vtype.Object "Actor");
      ("Refactor2", Vtype.Object "Actor");
      ("Score", Vtype.Named "Pairs");
    ]
  in
  let score = Value.list [] in
  Database.add_relation db "DOMINATE"
    (Relation.make dominate_schema
       [
         [ Value.Int 1; marlon; quinn; score ];
         [ Value.Int 1; quinn; rita; score ];
         [ Value.Int 3; rita; greta; score ];
       ]);
  (db, [ ("Quinn", quinn); ("Marlon", marlon); ("Rita", rita); ("Greta", greta) ])

(* A chain graph a1 -> a2 -> ... -> an in relation EDGE(Src, Dst). *)
let chain_db n =
  let db = Database.create () in
  let schema = [ ("Src", Vtype.Int); ("Dst", Vtype.Int) ] in
  let edges = List.init (n - 1) (fun i -> [ Value.Int (i + 1); Value.Int (i + 2) ]) in
  Database.add_relation db "EDGE" (Relation.make schema edges);
  db

(* A random sparse graph over [n] nodes with [m] edges (deterministic). *)
let graph_db ~nodes ~edges =
  let db = Database.create () in
  let schema = [ ("Src", Vtype.Int); ("Dst", Vtype.Int) ] in
  let state = ref 123456789 in
  let next_int bound =
    state := (!state * 1103515245) + 12345;
    abs !state mod bound
  in
  let tuples =
    List.init edges (fun _ ->
        [ Value.Int (1 + next_int nodes); Value.Int (1 + next_int nodes) ])
  in
  Database.add_relation db "EDGE" (Relation.make schema tuples);
  db
