(* Unit and property tests for the value model (paper §2.1). *)

module Value = Eds_value.Value
module Vtype = Eds_value.Vtype

let value_testable = Alcotest.testable Value.pp Value.equal

let check_value = Alcotest.check value_testable

let test_numeric_cross_compare () =
  Alcotest.(check bool) "Int 1 = Real 1." true Value.(equal (Int 1) (Real 1.));
  Alcotest.(check bool) "Int 2 > Real 1.5" true (Value.compare (Value.Int 2) (Value.Real 1.5) > 0);
  Alcotest.(check bool) "Real 0.5 < Int 1" true (Value.compare (Value.Real 0.5) (Value.Int 1) < 0)

let test_set_canonical () =
  check_value "duplicates removed and order ignored"
    (Value.set [ Value.Int 3; Value.Int 1 ])
    (Value.set [ Value.Int 1; Value.Int 3; Value.Int 1 ]);
  Alcotest.(check bool) "sets with same elements are equal" true
    (Value.equal
       (Value.set [ Value.Str "b"; Value.Str "a" ])
       (Value.set [ Value.Str "a"; Value.Str "b" ]))

let test_bag_keeps_duplicates () =
  let b = Value.bag [ Value.Int 1; Value.Int 1; Value.Int 2 ] in
  Alcotest.(check int) "bag cardinality" 3 (List.length (Value.elements b));
  Alcotest.(check bool) "bag <> set" false
    (Value.equal b (Value.set [ Value.Int 1; Value.Int 2 ]))

let test_tuple_field () =
  let t = Value.tuple [ ("abs", Value.Real 1.0); ("ord", Value.Real 2.0) ] in
  check_value "field ord" (Value.Real 2.0) (Value.field "ord" t);
  Alcotest.check_raises "missing field" Not_found (fun () ->
      ignore (Value.field "zzz" t))

let test_pp_round_shapes () =
  Alcotest.(check string) "string literal" "'Quinn'" (Value.to_string (Value.Str "Quinn"));
  Alcotest.(check string) "set" "{1, 2}"
    (Value.to_string (Value.set [ Value.Int 2; Value.Int 1 ]));
  Alcotest.(check string) "tuple" "<x: 1, y: 'a'>"
    (Value.to_string (Value.tuple [ ("x", Value.Int 1); ("y", Value.Str "a") ]))

let test_hash_consistent_with_equal () =
  let a = Value.Int 4 and b = Value.Real 4.0 in
  Alcotest.(check bool) "equal values" true (Value.equal a b);
  Alcotest.(check int) "equal hashes" (Value.hash a) (Value.hash b)

(* -- generators -------------------------------------------------------- *)

let rec value_gen depth =
  let open QCheck2.Gen in
  let scalar =
    oneof
      [
        return Value.Null;
        map (fun b -> Value.Bool b) bool;
        map (fun i -> Value.Int i) (int_range (-100) 100);
        map (fun f -> Value.Real (Float.round (f *. 8.) /. 8.)) (float_range (-10.) 10.);
        map (fun s -> Value.Str s) (string_size ~gen:printable (int_range 0 6));
      ]
  in
  if depth = 0 then scalar
  else
    frequency
      [
        (3, scalar);
        (1, map Value.set (list_size (int_range 0 4) (value_gen (depth - 1))));
        (1, map Value.bag (list_size (int_range 0 4) (value_gen (depth - 1))));
        (1, map Value.list (list_size (int_range 0 4) (value_gen (depth - 1))));
        ( 1,
          map
            (fun xs -> Value.tuple (List.mapi (fun i v -> (Fmt.str "f%d" i, v)) xs))
            (list_size (int_range 1 3) (value_gen (depth - 1))) );
      ]

let gen = value_gen 2

let prop_compare_reflexive =
  QCheck2.Test.make ~name:"compare is reflexive" ~count:200 gen (fun v ->
      Value.compare v v = 0)

let prop_compare_antisymmetric =
  QCheck2.Test.make ~name:"compare is antisymmetric" ~count:200
    (QCheck2.Gen.pair gen gen) (fun (a, b) ->
      let c = Value.compare a b and c' = Value.compare b a in
      (c = 0 && c' = 0) || (c > 0 && c' < 0) || (c < 0 && c' > 0))

let prop_compare_transitive =
  QCheck2.Test.make ~name:"compare is transitive" ~count:200
    (QCheck2.Gen.triple gen gen gen) (fun (a, b, c) ->
      let sorted = List.sort Value.compare [ a; b; c ] in
      match sorted with
      | [ x; y; z ] -> Value.compare x y <= 0 && Value.compare y z <= 0 && Value.compare x z <= 0
      | _ -> false)

let prop_set_idempotent =
  QCheck2.Test.make ~name:"set construction is idempotent" ~count:200
    (QCheck2.Gen.list_size (QCheck2.Gen.int_range 0 8) gen) (fun xs ->
      Value.equal (Value.set xs) (Value.set (xs @ xs)))

let prop_hash_equal =
  QCheck2.Test.make ~name:"equal values hash equally" ~count:200
    (QCheck2.Gen.pair gen gen) (fun (a, b) ->
      (not (Value.equal a b)) || Value.hash a = Value.hash b)

let suite =
  [
    Alcotest.test_case "numeric cross-constructor compare" `Quick test_numeric_cross_compare;
    Alcotest.test_case "set canonical form" `Quick test_set_canonical;
    Alcotest.test_case "bag keeps duplicates" `Quick test_bag_keeps_duplicates;
    Alcotest.test_case "tuple field access" `Quick test_tuple_field;
    Alcotest.test_case "printer shapes" `Quick test_pp_round_shapes;
    Alcotest.test_case "hash consistent with equal" `Quick test_hash_consistent_with_equal;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [
        prop_compare_reflexive;
        prop_compare_antisymmetric;
        prop_compare_transitive;
        prop_set_idempotent;
        prop_hash_equal;
      ]
