(* edsql — an interactive shell and script runner for the EDS rewriter.

   Statements are ESQL; shell directives start with a dot:
     .explain SELECT …   show the LERA expression before/after rewriting
     .trace SELECT …     show every rule application, in order
     .rules              list the current rule program
     .limits N           set every block limit to N (0 disables rewriting
                         blocks; the §7 trade-off at the prompt)
     .norewrite / .rewrite   toggle the rewriter
     .constraint F(x) / ISA(x, T) --> F(x) AND …    declare a constraint
     .save FILE / .load FILE   dump or restore the whole session
     .check              termination warnings for the rule program (§4.2)
     .quit *)

module Session = Eds.Session
module Relation = Eds.Session.Relation
module Lera = Eds.Session.Lera
module Rule = Eds.Session.Rule
module Engine = Eds.Session.Engine
module Optimizer = Eds.Session.Optimizer

let print_result = function
  | Session.Done -> Fmt.pr "ok@."
  | Session.Inserted n -> Fmt.pr "%d tuple%s inserted@." n (if n = 1 then "" else "s")
  | Session.Deleted n -> Fmt.pr "%d tuple%s deleted@." n (if n = 1 then "" else "s")
  | Session.Updated n -> Fmt.pr "%d tuple%s updated@." n (if n = 1 then "" else "s")
  | Session.Rows rel ->
    Fmt.pr "%a(%d tuple%s)@." Relation.pp rel (Relation.cardinality rel)
      (if Relation.cardinality rel = 1 then "" else "s")

let print_plan session (p : Session.plan) =
  let side label rel =
    if Lera.operator_count rel <= 3 then
      Fmt.pr "%s: %a@.            (%a)@." label Lera.pp rel Eds_lera.Cost.pp
        (Session.estimate session rel)
    else begin
      Fmt.pr "%s: (%a)@.%a" label Eds_lera.Cost.pp (Session.estimate session rel)
        Lera.pp_tree rel
    end
  in
  side "translated" p.Session.translated;
  side "rewritten " p.Session.rewritten;
  Fmt.pr "rewriting : %a@." Engine.pp_stats p.Session.rewrite_stats

let limits_config n =
  let l = if n < 0 then None else Some n in
  {
    Optimizer.merging_limit = l;
    fixpoint_limit = l;
    permutation_limit = l;
    semantic_limit = l;
    simplification_limit = l;
    rounds = 1;
  }

let handle_directive session line =
  let strip prefix =
    String.sub line (String.length prefix) (String.length line - String.length prefix)
    |> String.trim
  in
  if String.equal line ".quit" || String.equal line ".exit" then `Quit
  else if String.length line >= 8 && String.sub line 0 8 = ".explain" then begin
    print_plan session (Session.explain session (strip ".explain"));
    `Continue
  end
  else if String.length line >= 6 && String.sub line 0 6 = ".trace" then begin
    let plan = Session.explain session (strip ".trace") in
    List.iter
      (fun step -> Fmt.pr "%a@." Engine.pp_step step)
      (Engine.steps plan.Session.rewrite_stats);
    print_plan session plan;
    `Continue
  end
  else if String.equal line ".rules" then begin
    let program = Session.program session in
    List.iter
      (fun b ->
        Fmt.pr "%a@." Rule.pp_block b;
        List.iter (fun r -> Fmt.pr "  %a@." Rule.pp r) b.Rule.rules)
      program.Rule.blocks;
    `Continue
  end
  else if String.equal line ".check" then begin
    (match Session.check_program session with
    | [] -> Fmt.pr "rule program is termination-safe (§4.2)@."
    | warnings ->
      List.iter
        (fun w -> Fmt.pr "%a@." Eds_rewriter.Rule_analysis.pp_warning w)
        warnings);
    `Continue
  end
  else if String.length line >= 7 && String.sub line 0 7 = ".limits" then begin
    let n = int_of_string_opt (strip ".limits") in
    (match n with
    | Some n -> Session.set_config session (limits_config n)
    | None -> Fmt.pr "usage: .limits N   (negative N = infinite)@.");
    `Continue
  end
  else if String.equal line ".norewrite" then begin
    Session.set_rewriting session false;
    `Continue
  end
  else if String.equal line ".rewrite" then begin
    Session.set_rewriting session true;
    `Continue
  end
  else if String.length line >= 11 && String.sub line 0 11 = ".constraint" then begin
    Session.add_integrity_constraint session (strip ".constraint");
    Fmt.pr "constraint recorded@.";
    `Continue
  end
  else begin
    Fmt.pr "unknown directive %s@." line;
    `Continue
  end

let handle_save_load session line strip =
  if String.length line >= 5 && String.sub line 0 5 = ".save" then begin
    Eds.Storage.save session (strip ".save");
    Fmt.pr "saved@.";
    Some session
  end
  else if String.length line >= 5 && String.sub line 0 5 = ".load" then begin
    let s' = Eds.Storage.load (strip ".load") in
    Fmt.pr "loaded@.";
    Some s'
  end
  else None

let repl session =
  Fmt.pr "edsql — EDS extensible query rewriter (ICDE'91 reproduction)@.";
  Fmt.pr "terminate statements with ';', directives with newline; .quit to leave@.";
  let session = ref session in
  let buffer = Buffer.create 256 in
  let rec loop () =
    if Buffer.length buffer = 0 then Fmt.pr "edsql> @?" else Fmt.pr "  ...> @?";
    match In_channel.input_line stdin with
    | None -> ()
    | Some line ->
      let trimmed = String.trim line in
      if Buffer.length buffer = 0 && String.length trimmed > 0 && trimmed.[0] = '.'
      then begin
        let strip prefix =
          String.sub trimmed (String.length prefix)
            (String.length trimmed - String.length prefix)
          |> String.trim
        in
        match
          try
            match handle_save_load !session trimmed strip with
            | Some s' ->
              session := s';
              `Continue
            | None -> handle_directive !session trimmed
          with
          | Session.Session_error msg | Eds.Storage.Storage_error msg ->
            Fmt.pr "error: %s@." msg
            ;
            `Continue
          | Sys_error msg ->
            Fmt.pr "error: %s@." msg;
            `Continue
        with
        | `Quit -> ()
        | `Continue -> loop ()
      end
      else begin
        Buffer.add_string buffer line;
        Buffer.add_char buffer '\n';
        if String.length trimmed > 0 && trimmed.[String.length trimmed - 1] = ';'
        then begin
          let stmt = Buffer.contents buffer in
          Buffer.clear buffer;
          (try print_result (Session.exec_string !session stmt)
           with Session.Session_error msg -> Fmt.pr "error: %s@." msg);
          loop ()
        end
        else loop ()
      end
  in
  loop ()

let run_file session path explain =
  let text = In_channel.with_open_text path In_channel.input_all in
  let stmts = Eds_esql.Parser.parse_program text in
  List.iter
    (fun stmt ->
      match stmt with
      | Eds_esql.Ast.Select_stmt _ when explain ->
        let input = Fmt.str "%a" Eds_esql.Ast.pp_stmt stmt in
        print_plan session (Session.explain session input);
        print_result (Session.exec session stmt)
      | _ -> print_result (Session.exec session stmt))
    stmts

open Cmdliner

let file_arg =
  Arg.(value & opt (some string) None & info [ "f"; "file" ] ~docv:"FILE"
         ~doc:"Execute the ESQL script $(docv) instead of starting the REPL.")

let explain_arg =
  Arg.(value & flag & info [ "explain" ] ~doc:"Print plans for every SELECT.")

let norewrite_arg =
  Arg.(value & flag & info [ "no-rewrite" ] ~doc:"Disable the query rewriter.")

let limits_arg =
  Arg.(value & opt (some int) None & info [ "limits" ]
         ~doc:"Apply this limit to every rule block (negative = infinite).")

let main file explain norewrite limits =
  let session = Session.create () in
  if norewrite then Session.set_rewriting session false;
  (match limits with
  | Some n -> Session.set_config session (limits_config n)
  | None -> ());
  match file with
  | Some path -> (
    try run_file session path explain with
    | Session.Session_error msg | Eds_esql.Parser.Parse_error msg ->
      Fmt.epr "error: %s@." msg;
      exit 1)
  | None -> repl session

let cmd =
  let doc = "an extensible rule-based query rewriter (ICDE 1991 reproduction)" in
  Cmd.v (Cmd.info "edsql" ~doc)
    Term.(const main $ file_arg $ explain_arg $ norewrite_arg $ limits_arg)

let () = exit (Cmd.eval cmd)
