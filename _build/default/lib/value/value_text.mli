(** Textual round-trip for values: a parser for the concrete syntax that
    {!Value.pp} prints — [null], [true], [42], [3.5], ['it''s'], [@7],
    [{1, 2}] (set), [bag{1, 1}], [[1, 2]] (list), [[|1, 2|]] (array),
    [<a: 1, b: 'x'>] (tuple).

    Used by the session's dump/restore facility ({!Eds.Storage}) and as
    a property-test oracle ([parse (to_string v) = v]). *)

exception Parse_error of string

val parse : string -> Value.t
(** Parse exactly one value; raises {!Parse_error} on malformed input or
    trailing characters. *)

val parse_opt : string -> Value.t option

val to_string : Value.t -> string
(** Alias for {!Value.to_string}; the two functions are inverse. *)
