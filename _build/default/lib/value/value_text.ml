exception Parse_error of string

let error fmt = Fmt.kstr (fun s -> raise (Parse_error s)) fmt

type state = {
  input : string;
  mutable pos : int;
}

let peek st = if st.pos < String.length st.input then Some st.input.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let skip_ws st =
  let rec go () =
    match peek st with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      go ()
    | _ -> ()
  in
  go ()

let expect st c =
  skip_ws st;
  match peek st with
  | Some c' when c' = c -> advance st
  | Some c' -> error "expected %C at %d, found %C" c st.pos c'
  | None -> error "expected %C at end of input" c

let looking_at st s =
  let n = String.length s in
  st.pos + n <= String.length st.input && String.sub st.input st.pos n = s

let eat_word st s =
  if looking_at st s then begin
    st.pos <- st.pos + String.length s;
    true
  end
  else false

let is_digit c = c >= '0' && c <= '9'

let parse_number st =
  let start = st.pos in
  if peek st = Some '-' then advance st;
  let rec digits () =
    match peek st with
    | Some c when is_digit c ->
      advance st;
      digits ()
    | _ -> ()
  in
  digits ();
  let is_float = ref false in
  (match peek st with
  | Some '.' ->
    is_float := true;
    advance st;
    digits ()
  | _ -> ());
  (match peek st with
  | Some ('e' | 'E') ->
    is_float := true;
    advance st;
    (match peek st with
    | Some ('+' | '-') -> advance st
    | _ -> ());
    digits ()
  | _ -> ());
  let text = String.sub st.input start (st.pos - start) in
  if text = "" || text = "-" then error "expected a number at %d" start;
  if !is_float then Value.Real (float_of_string text)
  else
    match int_of_string_opt text with
    | Some i -> Value.Int i
    | None -> Value.Real (float_of_string text)

let parse_string st =
  expect st '\'';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> error "unterminated string"
    | Some '\'' ->
      advance st;
      if peek st = Some '\'' then begin
        Buffer.add_char buf '\'';
        advance st;
        go ()
      end
    | Some c ->
      Buffer.add_char buf c;
      advance st;
      go ()
  in
  go ();
  Value.Str (Buffer.contents buf)

let parse_ident st =
  let start = st.pos in
  let rec go () =
    match peek st with
    | Some c
      when (c >= 'a' && c <= 'z')
           || (c >= 'A' && c <= 'Z')
           || c = '_'
           || is_digit c ->
      advance st;
      go ()
    | _ -> ()
  in
  go ();
  if st.pos = start then error "expected an identifier at %d" start;
  String.sub st.input start (st.pos - start)

let rec parse_value st : Value.t =
  skip_ws st;
  if eat_word st "null" then Value.Null
  else if eat_word st "true" then Value.Bool true
  else if eat_word st "false" then Value.Bool false
  else if eat_word st "bag{" then begin
    let items = parse_items st '}' in
    expect st '}';
    Value.bag items
  end
  else begin
    match peek st with
    | Some '\'' -> parse_string st
    | Some '@' ->
      advance st;
      (match parse_number st with
      | Value.Int i -> Value.Oid i
      | _ -> error "OID must be an integer")
    | Some '{' ->
      advance st;
      let items = parse_items st '}' in
      expect st '}';
      Value.set items
    | Some '[' ->
      advance st;
      if peek st = Some '|' then begin
        advance st;
        let items = parse_items st '|' in
        expect st '|';
        expect st ']';
        Value.array items
      end
      else begin
        let items = parse_items st ']' in
        expect st ']';
        Value.list items
      end
    | Some '<' ->
      advance st;
      let fields = parse_fields st in
      expect st '>';
      Value.tuple fields
    | Some c when is_digit c || c = '-' -> parse_number st
    | Some c -> error "unexpected %C at %d" c st.pos
    | None -> error "unexpected end of input"
  end

and parse_items st closing =
  skip_ws st;
  if peek st = Some closing then []
  else begin
    let rec go acc =
      let v = parse_value st in
      skip_ws st;
      if peek st = Some ',' then begin
        advance st;
        go (v :: acc)
      end
      else List.rev (v :: acc)
    in
    go []
  end

and parse_fields st =
  skip_ws st;
  if peek st = Some '>' then []
  else begin
    let rec go acc =
      skip_ws st;
      let name = parse_ident st in
      expect st ':';
      let v = parse_value st in
      skip_ws st;
      if peek st = Some ',' then begin
        advance st;
        go ((name, v) :: acc)
      end
      else List.rev ((name, v) :: acc)
    in
    go []
  end

let parse input =
  let st = { input; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length input then error "trailing input at %d" st.pos;
  v

let parse_opt input = try Some (parse input) with Parse_error _ -> None

let to_string = Value.to_string
