type t =
  | Any
  | Bool
  | Int
  | Real
  | String
  | Enum of string * string list
  | Tuple of (string * t) list
  | Set of t
  | Bag of t
  | List of t
  | Array of t
  | Collection of t
  | Named of string
  | Object of string

let rec equal a b =
  match a, b with
  | Any, Any | Bool, Bool | Int, Int | Real, Real | String, String -> true
  | Enum (n, ls), Enum (n', ls') -> String.equal n n' && List.equal String.equal ls ls'
  | Tuple fs, Tuple fs' ->
    List.equal (fun (n, x) (n', x') -> String.equal n n' && equal x x') fs fs'
  | Set x, Set y | Bag x, Bag y | List x, List y | Array x, Array y
  | Collection x, Collection y ->
    equal x y
  | Named n, Named n' | Object n, Object n' -> String.equal n n'
  | ( ( Any | Bool | Int | Real | String | Enum _ | Tuple _ | Set _ | Bag _
      | List _ | Array _ | Collection _ | Named _ | Object _ ),
      _ ) ->
    false

let rec pp ppf = function
  | Any -> Fmt.string ppf "ANY"
  | Bool -> Fmt.string ppf "BOOLEAN"
  | Int -> Fmt.string ppf "INT"
  | Real -> Fmt.string ppf "NUMERIC"
  | String -> Fmt.string ppf "CHAR"
  | Enum (n, _) -> Fmt.pf ppf "%s" n
  | Tuple fs ->
    let pp_field ppf (n, x) = Fmt.pf ppf "%s: %a" n pp x in
    Fmt.pf ppf "TUPLE (%a)" (Fmt.list ~sep:(Fmt.any ", ") pp_field) fs
  | Set x -> Fmt.pf ppf "SET OF %a" pp x
  | Bag x -> Fmt.pf ppf "BAG OF %a" pp x
  | List x -> Fmt.pf ppf "LIST OF %a" pp x
  | Array x -> Fmt.pf ppf "ARRAY OF %a" pp x
  | Collection x -> Fmt.pf ppf "COLLECTION OF %a" pp x
  | Named n -> Fmt.string ppf n
  | Object n -> Fmt.string ppf n

let to_string ty = Fmt.str "%a" pp ty

type decl = {
  name : string;
  definition : t;
  is_object : bool;
  supertype : string option;
}

module Smap = Map.Make (String)

type env = decl Smap.t

let empty_env = Smap.empty

let declare env d =
  if Smap.mem d.name env then invalid_arg (Fmt.str "Vtype.declare: %s already declared" d.name);
  (match d.supertype with
  | Some s when not (Smap.mem s env) ->
    invalid_arg (Fmt.str "Vtype.declare: unknown supertype %s" s)
  | Some _ | None -> ());
  Smap.add d.name d env

let find env name = Smap.find_opt name env
let declarations env = List.map snd (Smap.bindings env)

(* Object types inherit the fields of their supertype: the expanded tuple
   type is the concatenation of ancestor fields (root first). *)
let rec object_fields env name =
  match Smap.find_opt name env with
  | None -> invalid_arg (Fmt.str "Vtype.expand: unknown type %s" name)
  | Some d ->
    let inherited =
      match d.supertype with None -> [] | Some s -> object_fields env s
    in
    let own = match d.definition with Tuple fs -> fs | _ -> [] in
    inherited @ own

let expand env ty =
  match ty with
  | Named n -> (
    match Smap.find_opt n env with
    | None -> invalid_arg (Fmt.str "Vtype.expand: unknown type %s" n)
    | Some d -> d.definition)
  | Object n -> Tuple (object_fields env n)
  | Any | Bool | Int | Real | String | Enum _ | Tuple _ | Set _ | Bag _
  | List _ | Array _ | Collection _ ->
    ty

(* Reflexive-transitive closure of the declared SUBTYPE OF relation. *)
let rec object_isa env sub super =
  String.equal sub super
  ||
  match Smap.find_opt sub env with
  | None -> false
  | Some d -> (
    match d.supertype with None -> false | Some s -> object_isa env s super)

let rec isa env sub super =
  equal sub super
  ||
  match sub, super with
  | _, Any -> true
  | Named n, _ when not (equal sub super) -> isa env (expand env (Named n)) super
  | _, Named n when not (equal sub super) -> isa env sub (expand env (Named n))
  | Bool, Bool | Int, Int | Real, Real | String, String -> true
  | Int, Real -> true
  | Enum (n, ls), Enum (n', ls') -> String.equal n n' && List.equal String.equal ls ls'
  | Enum _, String -> true
  | Tuple fs, Tuple fs' ->
    (* width + depth subtyping: sub must provide every field of super *)
    List.for_all
      (fun (n', t') ->
        match List.assoc_opt n' fs with
        | Some t -> isa env t t'
        | None -> false)
      fs'
  | Set x, Set y | Bag x, Bag y | List x, List y | Array x, Array y -> isa env x y
  | (Set x | Bag x | List x | Array x | Collection x), Collection y -> isa env x y
  | Object n, Object n' -> object_isa env n n'
  | Object n, Tuple _ -> isa env (expand env (Object n)) super
  | ( ( Any | Bool | Int | Real | String | Enum _ | Tuple _ | Set _ | Bag _
      | List _ | Array _ | Collection _ | Named _ | Object _ ),
      _ ) ->
    false

let rec type_of_value env (v : Value.t) : t =
  match v with
  | Value.Null -> Any
  | Value.Bool _ -> Bool
  | Value.Int _ -> Int
  | Value.Real _ -> Real
  | Value.Str _ -> String
  | Value.Enum (n, _) -> (
    match Smap.find_opt n env with
    | Some { definition = Enum _ as e; _ } -> e
    | Some _ | None -> Enum (n, []))
  | Value.Oid _ -> Any
  | Value.Tuple fs -> Tuple (List.map (fun (n, x) -> (n, type_of_value env x)) fs)
  | Value.Set xs -> Set (join_types env xs)
  | Value.Bag xs -> Bag (join_types env xs)
  | Value.List xs -> List (join_types env xs)
  | Value.Array xs -> Array (join_types env xs)

and join_types env = function
  | [] -> Any
  | x :: xs ->
    let tx = type_of_value env x in
    if List.for_all (fun y -> equal (type_of_value env y) tx) xs then tx else Any

let field_type env ty name =
  match expand env ty with
  | Tuple fs -> List.assoc_opt name fs
  | Any | Bool | Int | Real | String | Enum _ | Set _ | Bag _ | List _
  | Array _ | Collection _ | Named _ | Object _ ->
    None

let element_type env ty =
  match expand env ty with
  | Set x | Bag x | List x | Array x | Collection x -> Some x
  | Any | Bool | Int | Real | String | Enum _ | Tuple _ | Named _ | Object _ ->
    None
