type property =
  | Commutative
  | Associative
  | Idempotent
  | Transitive
  | Reflexive
  | Symmetric
  | Antisymmetric

type entry = {
  name : string;
  arity : int option;
  arg_types : Vtype.t list;
  result_type : Vtype.t;
  properties : property list;
  impl : Value.t list -> Value.t;
}

module Smap = Map.Make (String)

type registry = entry Smap.t

let key name = String.lowercase_ascii name
let register reg e = Smap.add (key e.name) e reg
let find reg name = Smap.find_opt (key name) reg
let names reg = List.map (fun (_, e) -> e.name) (Smap.bindings reg)

let has_property reg name p =
  match find reg name with
  | Some e -> List.mem p e.properties
  | None -> false

let apply reg name args =
  match find reg name with
  | None -> raise Not_found
  | Some e -> (
    match e.arity with
    | Some n when List.length args <> n ->
      invalid_arg
        (Fmt.str "Adt.apply: %s expects %d arguments, got %d" e.name n (List.length args))
    | Some _ | None -> e.impl args)

(* -- implementations ------------------------------------------------- *)

let bad name args =
  invalid_arg
    (Fmt.str "Adt: %s applied to (%a)" name (Fmt.list ~sep:(Fmt.any ", ") Value.pp) args)

let arith name int_op float_op args =
  match args with
  | [ Value.Int a; Value.Int b ] -> Value.Int (int_op a b)
  | [ a; b ] -> Value.Real (float_op (Value.as_float a) (Value.as_float b))
  | _ -> bad name args

(* Comparisons broadcast point-wise over a collection operand so that
   quantified ESQL predicates like ALL (Salary(Actors) > 10000) evaluate a
   collection of booleans. *)
let rec cmp name test args =
  match args with
  | [ a; b ] when Value.is_collection a && not (Value.is_collection b) ->
    Collection.map (fun x -> cmp name test [ x; b ]) a
  | [ a; b ] when Value.is_collection b && not (Value.is_collection a) ->
    Collection.map (fun y -> cmp name test [ a; y ]) b
  | [ a; b ] -> Value.Bool (test (Value.compare a b))
  | _ -> bad name args

let logic name op args =
  match args with
  | [ Value.Bool a; Value.Bool b ] -> Value.Bool (op a b)
  | _ -> bad name args

let entry ?arity ?(args = []) ?(props = []) name result impl =
  { name; arity; arg_types = args; result_type = result; properties = props; impl }

let project args =
  match args with
  | [ v; Value.Str field ] -> (
    (* point-wise on collections of tuples (paper §2.2, Figure 4) *)
    match v with
    | Value.Tuple _ -> Value.field field v
    | Value.Set _ | Value.Bag _ | Value.List _ | Value.Array _ ->
      Collection.map (Value.field field) v
    | Value.Null | Value.Bool _ | Value.Int _ | Value.Real _ | Value.Str _
    | Value.Enum _ | Value.Oid _ ->
      bad "project" args)
  | _ -> bad "project" args

let scalar_entries =
  [
    entry "+" ~arity:2 ~props:[ Commutative; Associative ] Vtype.Real
      (arith "+" ( + ) ( +. ));
    entry "-" ~arity:2 Vtype.Real (arith "-" ( - ) ( -. ));
    entry "*" ~arity:2 ~props:[ Commutative; Associative ] Vtype.Real
      (arith "*" ( * ) ( *. ));
    entry "/" ~arity:2 Vtype.Real (fun args ->
        match args with
        | [ a; b ] ->
          let fb = Value.as_float b in
          if fb = 0. then Value.Null else Value.Real (Value.as_float a /. fb)
        | _ -> bad "/" args);
    entry "minus" ~arity:1 Vtype.Real (fun args ->
        match args with
        | [ Value.Int a ] -> Value.Int (-a)
        | [ Value.Real a ] -> Value.Real (-.a)
        | _ -> bad "minus" args);
    entry "abs" ~arity:1 Vtype.Real (fun args ->
        match args with
        | [ Value.Int a ] -> Value.Int (abs a)
        | [ Value.Real a ] -> Value.Real (Float.abs a)
        | _ -> bad "abs" args);
    entry "=" ~arity:2 ~props:[ Commutative; Transitive; Reflexive; Symmetric ]
      Vtype.Bool
      (cmp "=" (fun c -> c = 0));
    entry "<>" ~arity:2 ~props:[ Commutative; Symmetric ] Vtype.Bool
      (cmp "<>" (fun c -> c <> 0));
    entry "<" ~arity:2 ~props:[ Transitive ] Vtype.Bool (cmp "<" (fun c -> c < 0));
    entry "<=" ~arity:2 ~props:[ Transitive; Reflexive; Antisymmetric ] Vtype.Bool
      (cmp "<=" (fun c -> c <= 0));
    entry ">" ~arity:2 ~props:[ Transitive ] Vtype.Bool (cmp ">" (fun c -> c > 0));
    entry ">=" ~arity:2 ~props:[ Transitive; Reflexive; Antisymmetric ] Vtype.Bool
      (cmp ">=" (fun c -> c >= 0));
    entry "and" ~arity:2 ~props:[ Commutative; Associative; Idempotent ] Vtype.Bool
      (logic "and" ( && ));
    entry "or" ~arity:2 ~props:[ Commutative; Associative; Idempotent ] Vtype.Bool
      (logic "or" ( || ));
    entry "not" ~arity:1 Vtype.Bool (fun args ->
        match args with
        | [ Value.Bool a ] -> Value.Bool (not a)
        | _ -> bad "not" args);
    entry "concat" ~arity:2 ~props:[ Associative ] Vtype.String (fun args ->
        match args with
        | [ Value.Str a; Value.Str b ] -> Value.Str (a ^ b)
        | _ -> bad "concat" args);
    entry "length" ~arity:1 Vtype.Int (fun args ->
        match args with
        | [ Value.Str a ] -> Value.Int (String.length a)
        | [ v ] when Value.is_collection v -> Value.Int (Collection.cardinality v)
        | _ -> bad "length" args);
    entry "project" ~arity:2 Vtype.Any project;
  ]

let coll1 name f = function [ v ] -> f v | args -> bad name args
let coll2 name f = function [ a; b ] -> f a b | args -> bad name args

let collection_entries =
  [
    entry "member" ~arity:2 Vtype.Bool
      (coll2 "member" (fun x c -> Value.Bool (Collection.member x c)));
    entry "union" ~arity:2 ~props:[ Commutative; Associative; Idempotent ]
      (Vtype.Collection Vtype.Any)
      (coll2 "union" Collection.union);
    entry "intersection" ~arity:2 ~props:[ Commutative; Associative; Idempotent ]
      (Vtype.Collection Vtype.Any)
      (coll2 "intersection" Collection.inter);
    entry "difference" ~arity:2
      (Vtype.Collection Vtype.Any)
      (coll2 "difference" Collection.diff);
    entry "include" ~arity:2 ~props:[ Transitive; Reflexive; Antisymmetric ] Vtype.Bool
      (coll2 "include" (fun big small -> Value.Bool (Collection.includes big small)));
    entry "insert" ~arity:2 (Vtype.Collection Vtype.Any) (coll2 "insert" Collection.insert);
    entry "remove" ~arity:2 (Vtype.Collection Vtype.Any) (coll2 "remove" Collection.remove);
    entry "isempty" ~arity:1 Vtype.Bool
      (coll1 "isempty" (fun c -> Value.Bool (Collection.is_empty c)));
    entry "cardinality" ~arity:1 Vtype.Int
      (coll1 "cardinality" (fun c -> Value.Int (Collection.cardinality c)));
    entry "choice" ~arity:1 Vtype.Any (coll1 "choice" Collection.choice);
    entry "makeset" (Vtype.Set Vtype.Any) (fun args -> Collection.make_set args);
    entry "makebag" (Vtype.Bag Vtype.Any) (fun args -> Value.bag args);
    entry "makelist" (Vtype.List Vtype.Any) (fun args -> Value.list args);
    entry "append" ~arity:2 ~props:[ Associative ]
      (Vtype.List Vtype.Any)
      (coll2 "append" Collection.append);
    entry "count" ~arity:2 Vtype.Int
      (coll2 "count" (fun x c -> Value.Int (Collection.count x c)));
    entry "nth" ~arity:2 Vtype.Any
      (coll2 "nth" (fun c i -> Collection.nth c (Value.as_int i)));
    entry "first" ~arity:1 Vtype.Any (coll1 "first" Collection.first);
    entry "last" ~arity:1 Vtype.Any (coll1 "last" Collection.last);
    entry "sum" ~arity:1 Vtype.Real
      (coll1 "sum" (fun c ->
           let xs = Value.elements c in
           if List.for_all (function Value.Int _ -> true | _ -> false) xs then
             Value.Int (List.fold_left (fun acc x -> acc + Value.as_int x) 0 xs)
           else Value.Real (List.fold_left (fun acc x -> acc +. Value.as_float x) 0. xs)));
    entry "min" ~arity:1 Vtype.Any
      (coll1 "min" (fun c ->
           match Value.elements c with
           | [] -> Value.Null
           | x :: xs -> List.fold_left (fun a b -> if Value.compare b a < 0 then b else a) x xs));
    entry "max" ~arity:1 Vtype.Any
      (coll1 "max" (fun c ->
           match Value.elements c with
           | [] -> Value.Null
           | x :: xs -> List.fold_left (fun a b -> if Value.compare b a > 0 then b else a) x xs));
    entry "avg" ~arity:1 Vtype.Real
      (coll1 "avg" (fun c ->
           match Value.elements c with
           | [] -> Value.Null
           | xs ->
             Value.Real
               (List.fold_left (fun acc x -> acc +. Value.as_float x) 0. xs
               /. float_of_int (List.length xs))));
    entry "all" ~arity:1 Vtype.Bool
      (coll1 "all" (fun c -> Value.Bool (Collection.for_all c)));
    entry "exist" ~arity:1 Vtype.Bool
      (coll1 "exist" (fun c -> Value.Bool (Collection.exists c)));
    entry "toset" ~arity:1 (Vtype.Set Vtype.Any) (coll1 "toset" (Collection.convert Set));
    entry "tobag" ~arity:1 (Vtype.Bag Vtype.Any) (coll1 "tobag" (Collection.convert Bag));
    entry "tolist" ~arity:1 (Vtype.List Vtype.Any) (coll1 "tolist" (Collection.convert List));
    entry "toarray" ~arity:1 (Vtype.Array Vtype.Any)
      (coll1 "toarray" (Collection.convert Array));
  ]

let builtins () =
  List.fold_left register Smap.empty (scalar_entries @ collection_entries)
