lib/value/adt.ml: Collection Float Fmt List Map String Value Vtype
