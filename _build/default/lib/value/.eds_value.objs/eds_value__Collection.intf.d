lib/value/collection.mli: Value
