lib/value/vtype.mli: Format Value
