lib/value/value_text.mli: Value
