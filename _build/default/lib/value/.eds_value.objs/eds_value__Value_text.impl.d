lib/value/value_text.ml: Buffer Fmt List String Value
