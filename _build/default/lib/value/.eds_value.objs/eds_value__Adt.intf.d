lib/value/adt.mli: Value Vtype
