lib/value/collection.ml: Fmt Stdlib Value
