lib/value/vtype.ml: Fmt List Map String Value
