lib/value/value.ml: Bool Float Fmt Hashtbl Int List String
