(** Generic collection ADTs (paper §2.1, Figure 1).

    The collection hierarchy has [collection] at its root with subtypes
    set, bag, list and array.  Functions defined at the collection level
    (convert, is_empty, equal, insert, remove) apply to all four; each
    subtype adds its own operations (member, union, intersection,
    difference, include, choice, make_set, append, …).

    All functions operate on {!Value.t} collections and raise
    [Invalid_argument] when applied to a non-collection or to collections
    of incompatible kinds, mirroring the strict typing of LERA. *)

type kind = Set | Bag | List | Array

val kind_of : Value.t -> kind option
val kind_name : kind -> string

(** {1 Collection-level functions (root of the hierarchy)} *)

val convert : kind -> Value.t -> Value.t
(** [convert k c] converts collection [c] into kind [k]; e.g. converting a
    bag to a set removes duplicates (the paper's example). *)

val is_empty : Value.t -> bool
val equal : Value.t -> Value.t -> bool
(** Equality of two collections of the same kind (set/bag equality is
    order-insensitive thanks to the canonical form). *)

val insert : Value.t -> Value.t -> Value.t
(** [insert x c] adds an element ([List]/[Array]: appended at the end). *)

val remove : Value.t -> Value.t -> Value.t
(** [remove x c] removes [x] (one occurrence for bags/lists/arrays). *)

val cardinality : Value.t -> int

(** {1 Set / bag functions} *)

val member : Value.t -> Value.t -> bool
(** Works on every collection kind (MEMBER of the paper). *)

val union : Value.t -> Value.t -> Value.t
(** Set union, additive bag union, or list/array concatenation. *)

val inter : Value.t -> Value.t -> Value.t
val diff : Value.t -> Value.t -> Value.t
val includes : Value.t -> Value.t -> bool
(** [includes big small] — the INCLUDE predicate: [small] ⊆ [big]. *)

val choice : Value.t -> Value.t
(** An arbitrary element of a non-empty collection ([choice] of
    [Manna85]); raises [Invalid_argument] on an empty collection. *)

val make_set : Value.t list -> Value.t
(** The MakeSet method: builds a set from an enumeration of elements. *)

val count : Value.t -> Value.t -> int
(** Number of occurrences of an element in a bag (or any collection). *)

(** {1 List / array functions} *)

val append : Value.t -> Value.t -> Value.t
(** List/array concatenation (APPEND of the paper). *)

val nth : Value.t -> int -> Value.t
(** 1-based indexing; raises [Invalid_argument] when out of bounds. *)

val first : Value.t -> Value.t
val last : Value.t -> Value.t

(** {1 Quantifiers}

    [ALL] and [EXIST] of ESQL: applied to a collection of booleans
    (obtained by point-wise application of a predicate, see
    {!Eds_engine.Expr_eval}). *)

val for_all : Value.t -> bool
val exists : Value.t -> bool

(** {1 Point-wise application}

    Applying a function to a collection applies it to every element (the
    paper: "the application of the projection function to a set of tuples
    gives the set of projected tuples"). *)

val map : (Value.t -> Value.t) -> Value.t -> Value.t
