type kind = Set | Bag | List | Array

let kind_of : Value.t -> kind option = function
  | Value.Set _ -> Some Set
  | Value.Bag _ -> Some Bag
  | Value.List _ -> Some List
  | Value.Array _ -> Some Array
  | Value.Null | Value.Bool _ | Value.Int _ | Value.Real _ | Value.Str _
  | Value.Enum _ | Value.Oid _ | Value.Tuple _ ->
    None

let kind_name = function
  | Set -> "SET"
  | Bag -> "BAG"
  | List -> "LIST"
  | Array -> "ARRAY"

let elements_of name v =
  match kind_of v with
  | Some _ -> Value.elements v
  | None -> invalid_arg (Fmt.str "Collection.%s: not a collection: %a" name Value.pp v)

let rebuild kind xs =
  match kind with
  | Set -> Value.set xs
  | Bag -> Value.bag xs
  | List -> Value.list xs
  | Array -> Value.array xs

let kind_exn name v =
  match kind_of v with
  | Some k -> k
  | None -> invalid_arg (Fmt.str "Collection.%s: not a collection: %a" name Value.pp v)

let convert k v = rebuild k (elements_of "convert" v)
let is_empty v = elements_of "is_empty" v = []

let equal a b =
  let ka = kind_exn "equal" a and kb = kind_exn "equal" b in
  if ka <> kb then
    invalid_arg
      (Fmt.str "Collection.equal: incompatible kinds %s and %s" (kind_name ka) (kind_name kb));
  Value.equal a b

let insert x v = rebuild (kind_exn "insert" v) (elements_of "insert" v @ [ x ])

let remove x v =
  let rec drop_one = function
    | [] -> []
    | y :: ys -> if Value.equal x y then ys else y :: drop_one ys
  in
  match v with
  | Value.Set xs -> Value.Set (Stdlib.List.filter (fun y -> not (Value.equal x y)) xs)
  | Value.Bag xs -> Value.Bag (drop_one xs)
  | Value.List xs -> Value.List (drop_one xs)
  | Value.Array xs -> Value.Array (drop_one xs)
  | Value.Null | Value.Bool _ | Value.Int _ | Value.Real _ | Value.Str _
  | Value.Enum _ | Value.Oid _ | Value.Tuple _ ->
    invalid_arg (Fmt.str "Collection.remove: not a collection: %a" Value.pp v)

let cardinality v = Stdlib.List.length (elements_of "cardinality" v)
let member x v = Stdlib.List.exists (Value.equal x) (elements_of "member" v)

let same_kind name a b =
  let ka = kind_exn name a and kb = kind_exn name b in
  if ka <> kb then
    invalid_arg
      (Fmt.str "Collection.%s: incompatible kinds %s and %s" name (kind_name ka) (kind_name kb));
  ka

let union a b =
  let k = same_kind "union" a b in
  rebuild k (elements_of "union" a @ elements_of "union" b)

let inter a b =
  let k = same_kind "inter" a b in
  let xs = elements_of "inter" a in
  (* bag intersection keeps the minimum number of occurrences *)
  let remaining = ref (elements_of "inter" b) in
  let take x =
    let rec go acc = function
      | [] -> None
      | y :: ys ->
        if Value.equal x y then Some (Stdlib.List.rev_append acc ys) else go (y :: acc) ys
    in
    match go [] !remaining with
    | Some rest ->
      remaining := rest;
      true
    | None -> false
  in
  rebuild k (Stdlib.List.filter take xs)

let diff a b =
  let k = same_kind "diff" a b in
  let remaining = ref (elements_of "diff" b) in
  let absent x =
    let rec go acc = function
      | [] -> None
      | y :: ys ->
        if Value.equal x y then Some (Stdlib.List.rev_append acc ys) else go (y :: acc) ys
    in
    match go [] !remaining with
    | Some rest ->
      remaining := rest;
      false
    | None -> true
  in
  rebuild k (Stdlib.List.filter absent (elements_of "diff" a))

let includes big small = is_empty (diff small big)

let choice v =
  match elements_of "choice" v with
  | x :: _ -> x
  | [] -> invalid_arg "Collection.choice: empty collection"

let make_set xs = Value.set xs

let count x v =
  Stdlib.List.length (Stdlib.List.filter (Value.equal x) (elements_of "count" v))

let append a b =
  match same_kind "append" a b with
  | (List | Array) as k -> rebuild k (elements_of "append" a @ elements_of "append" b)
  | Set | Bag -> invalid_arg "Collection.append: applies to lists and arrays"

let nth v i =
  let xs = elements_of "nth" v in
  if i < 1 || i > Stdlib.List.length xs then
    invalid_arg (Fmt.str "Collection.nth: index %d out of bounds" i)
  else Stdlib.List.nth xs (i - 1)

let first v = nth v 1
let last v = nth v (cardinality v)
let for_all v = Stdlib.List.for_all Value.as_bool (elements_of "for_all" v)
let exists v = Stdlib.List.exists Value.as_bool (elements_of "exists" v)
let map f v = rebuild (kind_exn "map" v) (Stdlib.List.map f (elements_of "map" v))
