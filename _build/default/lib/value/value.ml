type t =
  | Null
  | Bool of bool
  | Int of int
  | Real of float
  | Str of string
  | Enum of string * string
  | Oid of int
  | Tuple of (string * t) list
  | Set of t list
  | Bag of t list
  | List of t list
  | Array of t list

(* Rank used to order values of distinct constructors; Int and Real share a
   rank so that they compare numerically. *)
let rank = function
  | Null -> 0
  | Bool _ -> 1
  | Int _ | Real _ -> 2
  | Str _ | Enum _ -> 3
  | Oid _ -> 5
  | Tuple _ -> 6
  | Set _ -> 7
  | Bag _ -> 8
  | List _ -> 9
  | Array _ -> 10

let rec compare a b =
  match a, b with
  | Null, Null -> 0
  | Bool x, Bool y -> Bool.compare x y
  | Int x, Int y -> Int.compare x y
  | Real x, Real y -> Float.compare x y
  | Int x, Real y -> Float.compare (float_of_int x) y
  | Real x, Int y -> Float.compare x (float_of_int y)
  (* enumeration values compare by label and equal their string
     spelling, as SQL enum literals do; the type name is typing-only *)
  | Str x, Str y -> String.compare x y
  | Enum (_, lx), Enum (_, ly) -> String.compare lx ly
  | Enum (_, lx), Str y -> String.compare lx y
  | Str x, Enum (_, ly) -> String.compare x ly
  | Oid x, Oid y -> Int.compare x y
  | Tuple xs, Tuple ys -> compare_fields xs ys
  | Set xs, Set ys | Bag xs, Bag ys | List xs, List ys | Array xs, Array ys ->
    compare_lists xs ys
  | ( (Null | Bool _ | Int _ | Real _ | Str _ | Enum _ | Oid _
      | Tuple _ | Set _ | Bag _ | List _ | Array _),
      _ ) ->
    Int.compare (rank a) (rank b)

and compare_lists xs ys =
  match xs, ys with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | x :: xs', y :: ys' ->
    let c = compare x y in
    if c <> 0 then c else compare_lists xs' ys'

and compare_fields xs ys =
  match xs, ys with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | (nx, x) :: xs', (ny, y) :: ys' ->
    let c = String.compare nx ny in
    if c <> 0 then c
    else
      let c = compare x y in
      if c <> 0 then c else compare_fields xs' ys'

let equal a b = compare a b = 0

let rec hash v =
  match v with
  | Null -> 17
  | Bool b -> Hashtbl.hash b
  | Int i -> Hashtbl.hash (float_of_int i)
  | Real r -> Hashtbl.hash r
  | Str s -> Hashtbl.hash s
  | Enum (_, l) -> Hashtbl.hash l
  | Oid i -> 31 * i + 5
  | Tuple fs -> List.fold_left (fun acc (n, x) -> (acc * 31) + Hashtbl.hash n + hash x) 3 fs
  | Set xs -> hash_list 7 xs
  | Bag xs -> hash_list 11 xs
  | List xs -> hash_list 13 xs
  | Array xs -> hash_list 19 xs

and hash_list seed xs = List.fold_left (fun acc x -> (acc * 31) + hash x) seed xs

(* embedded quotes double, as in SQL, so printed strings reparse *)
let escape_quotes s =
  if String.contains s '\'' then
    String.concat "''" (String.split_on_char '\'' s)
  else s

let rec pp ppf v =
  match v with
  | Null -> Fmt.string ppf "null"
  | Bool b -> Fmt.bool ppf b
  | Int i -> Fmt.int ppf i
  | Real r -> Fmt.float ppf r
  | Str s -> Fmt.pf ppf "'%s'" (escape_quotes s)
  | Enum (_, l) -> Fmt.pf ppf "'%s'" (escape_quotes l)
  | Oid i -> Fmt.pf ppf "@%d" i
  | Tuple fs ->
    let pp_field ppf (n, x) = Fmt.pf ppf "%s: %a" n pp x in
    Fmt.pf ppf "<%a>" (Fmt.list ~sep:(Fmt.any ", ") pp_field) fs
  | Set xs -> Fmt.pf ppf "{%a}" pp_elems xs
  | Bag xs -> Fmt.pf ppf "bag{%a}" pp_elems xs
  | List xs -> Fmt.pf ppf "[%a]" pp_elems xs
  | Array xs -> Fmt.pf ppf "[|%a|]" pp_elems xs

and pp_elems ppf xs = Fmt.list ~sep:(Fmt.any ", ") pp ppf xs

let to_string v = Fmt.str "%a" pp v

let set xs =
  let sorted = List.sort_uniq compare xs in
  Set sorted

let bag xs = Bag (List.sort compare xs)
let list xs = List xs
let array xs = Array xs
let tuple fs = Tuple fs

let is_collection = function
  | Set _ | Bag _ | List _ | Array _ -> true
  | Null | Bool _ | Int _ | Real _ | Str _ | Enum _ | Oid _ | Tuple _ -> false

let elements = function
  | Set xs | Bag xs | List xs | Array xs -> xs
  | (Null | Bool _ | Int _ | Real _ | Str _ | Enum _ | Oid _ | Tuple _) as v ->
    invalid_arg (Fmt.str "Value.elements: not a collection: %a" pp v)

let tuple_fields = function
  | Tuple fs -> fs
  | ( Null | Bool _ | Int _ | Real _ | Str _ | Enum _ | Oid _
    | Set _ | Bag _ | List _ | Array _ ) as v ->
    invalid_arg (Fmt.str "Value.tuple_fields: not a tuple: %a" pp v)

let field name v =
  match List.assoc_opt name (tuple_fields v) with
  | Some x -> x
  | None -> raise Not_found

let as_bool = function
  | Bool b -> b
  | v -> invalid_arg (Fmt.str "Value.as_bool: %a" pp v)

let as_int = function
  | Int i -> i
  | v -> invalid_arg (Fmt.str "Value.as_int: %a" pp v)

let as_float = function
  | Int i -> float_of_int i
  | Real r -> r
  | v -> invalid_arg (Fmt.str "Value.as_float: %a" pp v)

let as_string = function
  | Str s -> s
  | Enum (_, l) -> l
  | v -> invalid_arg (Fmt.str "Value.as_string: %a" pp v)
