(** Extensible ADT function registry (paper §2.1, §4.1).

    The rewriter's rule language calls "any function known in the system —
    LERA operators interpreted as functions, ADT functions or optimizer
    built-in functions".  This module is the system's function table: it
    maps a function name to an implementation over {!Value.t} together
    with a signature and algebraic properties.  The database implementor
    extends the optimizer library by registering new functions here
    ({!register}), exactly as EDS's DBI extended the C++ ADT library.

    The registry is used by (a) the engine's expression evaluator and
    (b) the rewriter's EVALUATE method for constant folding (paper Fig. 12:
    [F(x,y) / ISA(x,constant), ISA(y,constant) --> a / EVALUATE(F(x,y),a)]). *)

(** Algebraic properties exploited by semantic rewriting (paper §6:
    "the properties of these algebraic operations and predicates comprise
    the implicit semantic knowledge"). *)
type property =
  | Commutative
  | Associative
  | Idempotent
  | Transitive  (** binary predicates: =, <, <=, INCLUDE, … *)
  | Reflexive
  | Symmetric
  | Antisymmetric

type entry = {
  name : string;
  arity : int option;  (** [None] = variadic *)
  arg_types : Vtype.t list;  (** padded/cycled for variadic functions *)
  result_type : Vtype.t;
  properties : property list;
  impl : Value.t list -> Value.t;
}

type registry

val builtins : unit -> registry
(** A fresh registry pre-loaded with: arithmetic (+, -, *, /, abs, minus),
    comparisons (=, <>, <, <=, >, >=), boolean connectives (and, or, not),
    string functions (concat, length), the Figure-1 collection functions
    (member, union, intersection, difference, include, insert, remove,
    is_empty, convert_*, choice, makeset, append, count, nth, first, last),
    quantifiers (all, exist), and tuple projection (project).

    Comparison of a collection with a scalar broadcasts point-wise,
    yielding a collection of booleans consumed by all/exist (paper Fig. 4:
    [ALL (Salary(Actors) > 10000)]). *)

val register : registry -> entry -> registry
(** Add or replace a function.  Returns an updated registry (persistent —
    a DBI extension never mutates the base library under other users). *)

val find : registry -> string -> entry option
(** Lookup is case-insensitive, as ESQL keywords and function names are. *)

val names : registry -> string list

val has_property : registry -> string -> property -> bool

val apply : registry -> string -> Value.t list -> Value.t
(** Apply a registered function.  Raises [Not_found] for unknown names and
    [Invalid_argument] on arity mismatch. *)
