(** ESQL type system (paper §2.1).

    Types cover the SQL base domains, enumerations, the generic ADTs
    (tuple, set, bag, list, array — all subtypes of [collection]), and
    user-declared named types.  Named types are declared in a type
    environment ({!env}) which also records the object-type inheritance
    hierarchy ([SUBTYPE OF]) used by the [ISA] predicate of the rule
    language (paper §4.1). *)

type t =
  | Any  (** top of the subtyping order *)
  | Bool
  | Int
  | Real  (** [Int] ISA [Real]; ESQL NUMERIC maps to [Real] *)
  | String
  | Enum of string * string list  (** name and labels *)
  | Tuple of (string * t) list
  | Set of t
  | Bag of t
  | List of t
  | Array of t
  | Collection of t  (** common supertype of the four collection ADTs *)
  | Named of string  (** reference to a declared (value) type *)
  | Object of string  (** reference to a declared object type *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Declaration of a named type in the environment. *)
type decl = {
  name : string;
  definition : t;  (** underlying structure; for object types, their value type *)
  is_object : bool;  (** declared with OBJECT — instances carry an OID *)
  supertype : string option;  (** [SUBTYPE OF] parent, object types only *)
}

type env

val empty_env : env

val declare : env -> decl -> env
(** Raises [Invalid_argument] if [decl.name] is already declared or the
    supertype is unknown. *)

val find : env -> string -> decl option
val declarations : env -> decl list

val expand : env -> t -> t
(** Resolve [Named]/[Object] references one level (objects expand to their
    tuple-of-fields value type).  Raises [Invalid_argument] on an unknown
    name. *)

val isa : env -> t -> t -> bool
(** [isa env sub super] is the ISA predicate of the rule language: true if
    [sub] is a subtype of (or equal to) [super].  The order includes:
    [Int] ISA [Real]; every collection ADT ISA [Collection]; element types
    covariantly; tuple width subtyping; declared object inheritance; [Enum]
    ISA [String]; everything ISA [Any]. *)

val type_of_value : env -> Value.t -> t
(** Most specific structural type of a ground value ([Oid] maps to
    [Object] only when the environment can resolve it; otherwise [Any]). *)

val field_type : env -> t -> string -> t option
(** Type of field [name] in a tuple-shaped type (expanding named and object
    types as needed). *)

val element_type : env -> t -> t option
(** Element type of a collection-shaped type. *)
