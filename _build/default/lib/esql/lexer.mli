(** Hand-written lexer shared by the ESQL parser and the rule-language
    parser (their token-level syntax coincides: identifiers, literals,
    comparison operators and punctuation). *)

type token =
  | IDENT of string  (** case preserved; keyword recognition is the parser's *)
  | INT of int
  | FLOAT of float
  | STRING of string  (** single-quoted, [''] escapes a quote *)
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | COMMA
  | DOT
  | SEMI
  | COLON
  | STAR
  | PLUS
  | MINUS
  | SLASH
  | EQ
  | NEQ
  | LT
  | LE
  | GT
  | GE
  | ARROW  (** [-->], the rule-language rewrite arrow *)
  | AT  (** [@], OID literals *)
  | EOF

val pp_token : Format.formatter -> token -> unit

exception Lex_error of string * int
(** message and character offset *)

val tokenize : string -> (token * int) list
(** Tokenize a whole input; [--] starts a comment to end of line.  The
    result always ends with [EOF].  Raises {!Lex_error}. *)
