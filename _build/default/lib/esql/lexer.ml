type token =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | COMMA
  | DOT
  | SEMI
  | COLON
  | STAR
  | PLUS
  | MINUS
  | SLASH
  | EQ
  | NEQ
  | LT
  | LE
  | GT
  | GE
  | ARROW
  | AT
  | EOF

let pp_token ppf = function
  | IDENT s -> Fmt.pf ppf "identifier %s" s
  | INT i -> Fmt.pf ppf "integer %d" i
  | FLOAT f -> Fmt.pf ppf "number %g" f
  | STRING s -> Fmt.pf ppf "string '%s'" s
  | LPAREN -> Fmt.string ppf "("
  | RPAREN -> Fmt.string ppf ")"
  | LBRACE -> Fmt.string ppf "{"
  | RBRACE -> Fmt.string ppf "}"
  | LBRACKET -> Fmt.string ppf "["
  | RBRACKET -> Fmt.string ppf "]"
  | COMMA -> Fmt.string ppf ","
  | DOT -> Fmt.string ppf "."
  | SEMI -> Fmt.string ppf ";"
  | COLON -> Fmt.string ppf ":"
  | STAR -> Fmt.string ppf "*"
  | PLUS -> Fmt.string ppf "+"
  | MINUS -> Fmt.string ppf "-"
  | SLASH -> Fmt.string ppf "/"
  | EQ -> Fmt.string ppf "="
  | NEQ -> Fmt.string ppf "<>"
  | LT -> Fmt.string ppf "<"
  | LE -> Fmt.string ppf "<="
  | GT -> Fmt.string ppf ">"
  | GE -> Fmt.string ppf ">="
  | ARROW -> Fmt.string ppf "-->"
  | AT -> Fmt.string ppf "@"
  | EOF -> Fmt.string ppf "end of input"

exception Lex_error of string * int

let error pos fmt = Fmt.kstr (fun s -> raise (Lex_error (s, pos))) fmt

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize input =
  let n = String.length input in
  let tokens = ref [] in
  let emit pos tok = tokens := (tok, pos) :: !tokens in
  let rec go i =
    if i >= n then emit i EOF
    else
      match input.[i] with
      | ' ' | '\t' | '\n' | '\r' -> go (i + 1)
      | '-' when i + 2 < n && input.[i + 1] = '-' && input.[i + 2] = '>' ->
        emit i ARROW;
        go (i + 3)
      | '-' when i + 1 < n && input.[i + 1] = '-' ->
        let rec skip j = if j < n && input.[j] <> '\n' then skip (j + 1) else j in
        go (skip (i + 2))
      | '(' -> emit i LPAREN; go (i + 1)
      | ')' -> emit i RPAREN; go (i + 1)
      | '{' -> emit i LBRACE; go (i + 1)
      | '}' -> emit i RBRACE; go (i + 1)
      | '[' -> emit i LBRACKET; go (i + 1)
      | ']' -> emit i RBRACKET; go (i + 1)
      | ',' -> emit i COMMA; go (i + 1)
      | '.' -> emit i DOT; go (i + 1)
      | ';' -> emit i SEMI; go (i + 1)
      | ':' -> emit i COLON; go (i + 1)
      | '*' -> emit i STAR; go (i + 1)
      | '+' -> emit i PLUS; go (i + 1)
      | '-' -> emit i MINUS; go (i + 1)
      | '/' -> emit i SLASH; go (i + 1)
      | '=' -> emit i EQ; go (i + 1)
      | '@' -> emit i AT; go (i + 1)
      | '<' ->
        if i + 1 < n && input.[i + 1] = '>' then begin
          emit i NEQ;
          go (i + 2)
        end
        else if i + 1 < n && input.[i + 1] = '=' then begin
          emit i LE;
          go (i + 2)
        end
        else begin
          emit i LT;
          go (i + 1)
        end
      | '>' ->
        if i + 1 < n && input.[i + 1] = '=' then begin
          emit i GE;
          go (i + 2)
        end
        else begin
          emit i GT;
          go (i + 1)
        end
      | '\'' -> string_lit (i + 1) (Buffer.create 16) i
      | c when is_digit c -> number i
      | c when is_ident_start c -> ident i
      | c -> error i "unexpected character %C" c
  and string_lit i buf start =
    if i >= n then error start "unterminated string literal"
    else if input.[i] = '\'' then
      if i + 1 < n && input.[i + 1] = '\'' then begin
        Buffer.add_char buf '\'';
        string_lit (i + 2) buf start
      end
      else begin
        emit start (STRING (Buffer.contents buf));
        go (i + 1)
      end
    else begin
      Buffer.add_char buf input.[i];
      string_lit (i + 1) buf start
    end
  and number start =
    let rec digits j = if j < n && is_digit input.[j] then digits (j + 1) else j in
    let int_end = digits start in
    if int_end + 1 < n && input.[int_end] = '.' && is_digit input.[int_end + 1] then begin
      let frac_end = digits (int_end + 1) in
      emit start (FLOAT (float_of_string (String.sub input start (frac_end - start))));
      go frac_end
    end
    else begin
      emit start (INT (int_of_string (String.sub input start (int_end - start))));
      go int_end
    end
  and ident start =
    let rec chars j = if j < n && is_ident_char input.[j] then chars (j + 1) else j in
    let stop = chars start in
    emit start (IDENT (String.sub input start (stop - start)));
    go stop
  in
  go 0;
  List.rev !tokens
