(** Recursive-descent parser for ESQL (paper §2).

    Keywords are case-insensitive and [CREATE] is optional in front of
    [TYPE] and [TABLE], matching the paper's Figure-2 spelling
    ([TYPE Category ENUMERATION OF …], [TABLE FILM (Numf : NUMERIC, …)]). *)

exception Parse_error of string
(** Message includes the offending token. *)

val parse_stmt : string -> Ast.stmt
(** Parse exactly one statement (a trailing [;] is allowed). *)

val parse_program : string -> Ast.stmt list
(** Parse a [;]-separated sequence of statements. *)

val parse_select : string -> Ast.select

val parse_expr : string -> Ast.expr
(** Parse a standalone expression — used by tests. *)

val reserved : string -> bool
(** Is this (case-insensitive) word an ESQL keyword? *)
