lib/esql/ast.ml: Eds_value Fmt
