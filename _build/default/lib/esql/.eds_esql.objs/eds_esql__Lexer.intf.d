lib/esql/lexer.mli: Format
