lib/esql/translate.mli: Ast Catalog Eds_lera Eds_value
