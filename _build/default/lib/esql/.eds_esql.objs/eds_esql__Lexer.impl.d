lib/esql/lexer.ml: Buffer Fmt List String
