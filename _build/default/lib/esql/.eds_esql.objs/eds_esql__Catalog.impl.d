lib/esql/catalog.ml: Ast Eds_lera Eds_value Fmt List Option String
