lib/esql/catalog.mli: Ast Eds_lera Eds_value
