lib/esql/parser.mli: Ast
