lib/esql/translate.ml: Ast Catalog Eds_lera Eds_value Fmt List Option String
