lib/esql/ast.mli: Eds_value Format
