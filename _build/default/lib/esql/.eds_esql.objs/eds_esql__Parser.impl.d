lib/esql/parser.ml: Ast Eds_value Fmt Lexer List String
