(** The default rule library, written in the rule language itself and
    parsed at load time — rules are data, not code, which is the paper's
    extensibility claim.  Each set mirrors a figure of the paper:

    - {!merging} — operation merging (§5.1, Figure 7): canonicalize
      filter/project/join into [search], merge nested searches, merge
      unions.
    - {!permutation} — operation permutation (§5.2, Figure 8): push
      searches through unions and nests, push single-operand conjuncts
      down as filters.
    - {!fixpoint} — fixpoint reduction (§5.3, Figure 9): linearize the
      composition form of transitive closure and invoke the
      Alexander/magic method on recursive predicates restricted by
      constants.
    - {!semantic} — semantic knowledge addition (§6.1, Figures 10–11):
      integrity-constraint addition, transitivity of comparisons and
      inclusion, equality substitution.
    - {!simplification} — predicate simplification (§6.2, Figure 12):
      contradictions, tautologies, neutral elements, constant folding,
      domain inconsistencies. *)

val merging : unit -> Rule.t list
val permutation : unit -> Rule.t list
val fixpoint : unit -> Rule.t list
val semantic : unit -> Rule.t list
val simplification : unit -> Rule.t list

val all : unit -> Rule.t list

val find : string -> Rule.t
(** Look up a default rule by name; raises [Not_found]. *)
