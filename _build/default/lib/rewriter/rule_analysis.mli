(** Static analysis of rule programs — the paper's §4.2 termination
    discussion made executable.

    "Termination of a rewriting rules system is undecidable.  However,
    subsets of rewriting rules can be isolated that either increase or
    decrease the number of terms in a query. […] for the extensible
    rewriter, termination cannot be guaranteed in a safe way because the
    database implementor can add or delete rewriting rules."  This module
    computes the increase/decrease classification per rule and warns when
    a block with an {e infinite} limit contains rules that may grow the
    query — the situation §4.2 tells the DBI to bound with a limit. *)

type size_behaviour =
  | Decreasing  (** every application strictly shrinks the term *)
  | Nonincreasing  (** never grows the term *)
  | Eliminating of string
      (** a linear rule that strictly consumes this operator symbol —
          terminating by the multiset argument even when it adds other
          structure (the canonicalization rules of Figure 7) *)
  | Guarded_growth
      (** grows the term, but a [notin]/[distinct] constraint bounds
          re-derivation (the Figure-11 pattern) *)
  | Increasing  (** may grow without a syntactic guard *)
  | Unknown  (** method outputs make the right-hand side unpredictable *)

val pp_size_behaviour : Format.formatter -> size_behaviour -> unit

val size_behaviour : ?trusted_methods:string list -> Rule.t -> size_behaviour
(** Conservative comparison of the two sides: node counts with variables
    matched by multiplicity (a variable duplicated on the right may grow
    the term under {e some} binding).  [trusted_methods] (defaulting to
    the built-ins whose outputs are size-bounded by their inputs —
    SUBSTITUTE, SHIFT, SCHEMA, EVALUATE and the qualification splits)
    lets their output variables count as ordinary bound variables. *)

type warning = {
  block : string;
  rule : string;
  behaviour : size_behaviour;
  message : string;
}

val pp_warning : Format.formatter -> warning -> unit

val check_block : Rule.block -> warning list
(** Warnings for a block: potentially-growing or unpredictable rules
    under an infinite limit. *)

val check_program : Rule.program -> warning list

val could_overlap : Rule.t -> Rule.t -> bool
(** Sound over-approximation: can the two left-hand sides match the same
    subject?  When true, the two rules compete for redexes and their
    order within the block matters. *)

val overlaps : Rule.block -> (string * string) list
(** Competing rule pairs within a block, in block order. *)
