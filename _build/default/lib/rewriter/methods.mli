(** The built-in external-method library of the rewriter (paper §4.1).

    "These external functions should be defined in the ADT function
    library of the database.  A minimal set of basic functions is
    built-in to increase the power of the language" — this module is
    that minimal set.  Each method receives the current substitution and
    its raw argument terms; input arguments are resolved through the
    substitution and {e output} arguments (unbound variables) are bound
    by the method, which may also veto the rule by failing.

    Methods provided (argument lists shown as written in rules):

    - [substitute(f, x*, b, z, f2)] — the Figure-7 SUBSTITUTE: rewrite
      the outer scalar [f], given that the inner search at operand
      position [|x*|+1] (projection [b], operand list [z]) is spliced in
      place.
    - [shift(g, x*, g2)] — renumber the operands of [g] by [|x*|].
    - [schema(z, p)] — the Figure-8 SCHEMA: identity projection for the
      operand list [z].
    - [distribute(x*, z, y*, f, a, u)] — the search-through-union push:
      [u] is the union of one search per member of [z].
    - [split_input_qual(q, x*, r, qi, qj)] — select-pushdown split:
      [qi] gets the conjuncts of [q] referring only to operand
      [|x*|+1], renumbered for [r]; fails when nothing is pushable.
    - [split_nest_qual(q, x*, g, qi, qj)] — Figure-8 nest push: like
      above but restricted to the grouping columns [g] of a nest and
      renumbered through it.
    - [evaluate(e, a)] — Figure-12 EVALUATE: constant-fold a ground ADT
      application through the function registry.
    - [linearize(f, u)] — rewrite the non-linear transitive-closure arm
      (Figure 5) into its right-linear equivalent.
    - [adornment(x*, f, q, sig)] — Figure-9 ADORNMENT: the bound-column
      signature of the fixpoint at operand [|x*|+1] under qualification
      [q]; fails when nothing is bound or the fixpoint is already
      transformed.
    - [alexander(f, sig, u)] — Figure-9 ALEXANDER: the magic-rewritten
      fixpoint.
    - [domain_constraints(c*, added* )] — Figure-10: instantiate the
      integrity-constraint templates of [ctx.semantic_constraints] for
      the typed scalars of the conjuncts [c*]; fails when every
      applicable constraint is already present. *)

val all : (string * Engine.method_fn) list
