(** Rewrite rules, blocks and rule programs (paper §4).

    A rule reads: "if the left term appears in the query under the given
    set of constraints, it is rewritten as the given right term after the
    application of the given set of methods" (§4.1).  Control is
    expressed with meta-rules (§4.2): [block({rules}, value)] bounds the
    number of rule-condition checks, and [seq({blocks}, value)] runs
    blocks in order, the whole sequence up to [value] times. *)

module Term = Eds_term.Term

type t = {
  name : string;
  lhs : Term.t;
  constraints : Term.t list;  (** all must hold for the rule to apply *)
  rhs : Term.t;
  methods : (string * Term.t list) list;
      (** external functions run after matching; they bind the rhs's
          output variables and may veto the application by failing *)
}

type block = {
  block_name : string;
  rules : t list;
  limit : int option;  (** [None] = apply up to saturation (infinite limit) *)
}

type program = {
  blocks : block list;
  rounds : int;  (** the seq meta-rule's value *)
}

val pp : Format.formatter -> t -> unit
(** Concrete rule syntax: [name: lhs / c1, c2 --> rhs / m1, m2]. *)

val pp_block : Format.formatter -> block -> unit
val pp_program : Format.formatter -> program -> unit

val block : ?limit:int -> string -> t list -> block
val program : ?rounds:int -> block list -> program

val output_variables : t -> string list
(** Variables of the rhs and of method argument lists that are bound
    neither by the lhs nor by an earlier method — i.e. the method output
    parameters ("methods modify input parameters of the right term, and
    return them as output parameters", §4.1). *)
