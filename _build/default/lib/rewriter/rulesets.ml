(* The default rule library.  Rule texts deliberately follow the paper's
   figures; where a paper rule leaves an external function's arguments
   implicit (SUBSTITUTE, SCHEMA, REFER), the text spells them out — see
   DESIGN.md. *)

let merging_text =
  {|
  -- canonicalization: express the basic operators as compound searches
  filter_to_search:
    filter(r, f) --> search(list(r), f, p) / schema(list(r), p) ;

  proj_to_search:
    proj(r, p) --> search(list(r), true, p) ;

  join_to_search:
    join(r, s, f) --> search(list(r, s), f, p) / schema(list(r, s), p) ;

  -- Figure 7: two successive searches merge, qualifications connected by AND
  search_merge:
    search(list(x*, search(z, g, b), v*), f, a)
    --> search(append(list(x*), z, list(v*)), and(f2, g2), a2)
    / substitute(f, x*, b, z, f2), substitute(a, x*, b, z, a2), shift(g, x*, g2) ;

  -- Figure 7: union merging
  union_merge:
    union(set(x*, union(z))) --> union(set_union(set(x*), z)) ;

  union_singleton:
    union(set(r)) --> r ;
|}

let permutation_text =
  {|
  -- Figure 8: a search over a union becomes a union of searches
  push_search_union:
    search(list(x*, union(z), y*), f, a)
    --> u
    / distribute(x*, z, y*, f, a, u) ;

  -- Figure 8: push the part of a search condition that only refers to
  -- the grouping attributes of a nest inside the nest
  push_search_nest:
    search(list(x*, nest(z, g, c), y*), q, e)
    --> search(list(x*, nest(search(list(z), qi, zp), g, c), y*), qj, e)
    / split_nest_qual(q, x*, g, qi, qj), schema(list(z), zp) ;

  -- push the part of a search condition that does not refer to the
  -- flattened column inside an unnest (nest/unnest are §3.4 operators);
  -- tried before the generic select push, which would otherwise claim
  -- the conjuncts for a filter above the unnest
  push_search_unnest:
    search(list(x*, unnest(z, i), y*), q, e)
    --> search(list(x*, unnest(filter(z, qi), i), y*), qj, e)
    / split_unnest_qual(q, x*, i, qi, qj) ;

  -- selections commute with difference and intersection on the kept
  -- side (filtering the subtrahend of a difference would be unsound)
  push_search_diff:
    search(list(x*, difference(a, b), y*), q, e)
    --> search(list(x*, difference(filter(a, qi), b), y*), qj, e)
    / split_input_qual(q, x*, difference(a, b), y*, qi, qj) ;

  push_search_inter:
    search(list(x*, intersection(a, b), y*), q, e)
    --> search(list(x*, intersection(filter(a, qi), b), y*), qj, e)
    / split_input_qual(q, x*, intersection(a, b), y*, qi, qj) ;

  -- push single-operand conjuncts down as filters on stored relations
  push_select:
    search(list(x*, r, y*), q, e)
    --> search(list(x*, filter(r, qi), y*), qj, e)
    / split_input_qual(q, x*, r, y*, qi, qj) ;

  filter_merge:
    filter(filter(r, f), g) --> filter(r, and(f, g)) ;

  -- a purely disjunctive qualification becomes a union of searches
  -- (sound under set semantics), so each disjunct pushes independently
  split_or:
    search(z, and(bag(or(bag(d*)))), e) --> u / or_to_union(z, bag(d*), e, u) ;
|}

let fixpoint_text =
  {|
  -- rewrite the Figure-5 composition arm into its right-linear form
  tc_linearize:
    fix(n, b) --> u / linearize(fix(n, b), u) ;

  -- Figure 9: invoke the Alexander method on a fixpoint restricted by
  -- constants in the enclosing search
  alexander_rule:
    search(list(x*, fix(n, b), y*), q, e)
    --> search(list(x*, u, y*), q, e)
    / adornment(x*, fix(n, b), q, sig), alexander(fix(n, b), sig, u) ;
|}

let semantic_text =
  {|
  -- Figure 10: add the integrity constraints declared for the types of
  -- the qualification's scalars
  add_constraints:
    and(bag(c*)) --> and(bag(c*, added*)) / domain_constraints(c*, added*) ;

  -- Figure 11 (1): transitivity of operations
  eq_transitivity:
    and(bag(c*, x = y, y = z))
    / notin(x = z, c*), distinct(x, z), distinct(x, y), distinct(y, z)
    --> and(bag(c*, x = y, y = z, x = z)) ;

  lt_transitivity:
    and(bag(c*, x < y, y < z)) / notin(x < z, c*), distinct(x, z)
    --> and(bag(c*, x < y, y < z, x < z)) ;

  le_transitivity:
    and(bag(c*, x <= y, y <= z)) / notin(x <= z, c*), distinct(x, z)
    --> and(bag(c*, x <= y, y <= z, x <= z)) ;

  include_transitivity:
    and(bag(c*, include(x, y), include(y, z)))
    / notin(include(x, z), c*), distinct(x, z)
    --> and(bag(c*, include(x, y), include(y, z), include(x, z))) ;

  -- Figure 11 (2): equality substitution into predicates
  eq_substitution:
    and(bag(c*, x = y, F(u*, x, v*)))
    / pred(F), distinct(x, y), notin(F(u*, y, v*), c*)
    --> and(bag(c*, x = y, F(u*, x, v*), F(u*, y, v*))) ;
|}

let simplification_text =
  {|
  -- Figure 12 and neighbours: contradictions between conjuncts
  contradiction_gt_le:  and(bag(c*, x > y, x <= y)) --> false ;
  contradiction_lt_ge:  and(bag(c*, x < y, x >= y)) --> false ;
  contradiction_lt_gt:  and(bag(c*, x < y, x > y)) --> false ;
  contradiction_eq_neq: and(bag(c*, x = y, x <> y)) --> false ;
  contradiction_eq_lt:  and(bag(c*, x = y, x < y)) --> false ;
  contradiction_eq_gt:  and(bag(c*, x = y, x > y)) --> false ;
  contradiction_lt_swap: and(bag(c*, x < y, y < x)) --> false ;
  contradiction_le_swap: and(bag(c*, x <= y, y < x)) --> false ;
  contradiction_eq_lt_swap: and(bag(c*, x = y, y < x)) --> false ;
  contradiction_eq_gt_swap: and(bag(c*, x = y, y > x)) --> false ;

  -- neutral and absorbing elements
  and_false: and(bag(c*, false)) --> false ;
  or_true:   or(bag(c*, true)) --> true ;
  and_true:  and(bag(c*, true)) / nonempty(c*) --> and(bag(c*)) ;
  or_false:  or(bag(c*, false)) / nonempty(c*) --> or(bag(c*)) ;
  not_true:  not(true) --> false ;
  not_false: not(false) --> true ;
  not_not:   not(not(x)) --> x ;

  -- reflexivity
  eq_reflexive: x = x --> true ;
  le_reflexive: x <= x --> true ;
  ge_reflexive: x >= x --> true ;
  lt_irreflexive: x < x --> false ;
  gt_irreflexive: x > x --> false ;
  neq_irreflexive: x <> x --> false ;

  -- Figure 12: x - y = 0 simplifies to x = y
  minus_zero: x - y = 0 --> x = y ;

  -- subsumption between constant bounds on the same expression: the
  -- weaker conjunct disappears (§6.2 "predicate elimination")
  subsume_gt: and(bag(c*, x > k1, x > k2)) / ISA(k1, constant), ISA(k2, constant), k1 >= k2
    --> and(bag(c*, x > k1)) ;
  subsume_ge: and(bag(c*, x >= k1, x >= k2)) / ISA(k1, constant), ISA(k2, constant), k1 >= k2
    --> and(bag(c*, x >= k1)) ;
  subsume_lt: and(bag(c*, x < k1, x < k2)) / ISA(k1, constant), ISA(k2, constant), k1 <= k2
    --> and(bag(c*, x < k1)) ;
  subsume_le: and(bag(c*, x <= k1, x <= k2)) / ISA(k1, constant), ISA(k2, constant), k1 <= k2
    --> and(bag(c*, x <= k1)) ;
  subsume_gt_ge: and(bag(c*, x > k1, x >= k2)) / ISA(k1, constant), ISA(k2, constant), k1 >= k2
    --> and(bag(c*, x > k1)) ;
  subsume_lt_le: and(bag(c*, x < k1, x <= k2)) / ISA(k1, constant), ISA(k2, constant), k1 <= k2
    --> and(bag(c*, x < k1)) ;
  -- constant bounds that cannot both hold
  bounds_empty_gt_lt: and(bag(c*, x > k1, x < k2)) / ISA(k1, constant), ISA(k2, constant), k1 >= k2
    --> false ;
  bounds_empty_ge_lt: and(bag(c*, x >= k1, x < k2)) / ISA(k1, constant), ISA(k2, constant), k1 >= k2
    --> false ;
  bounds_empty_gt_le: and(bag(c*, x > k1, x <= k2)) / ISA(k1, constant), ISA(k2, constant), k1 >= k2
    --> false ;
  bounds_empty_eq_gt: and(bag(c*, x = k1, x > k2)) / ISA(k1, constant), ISA(k2, constant), k1 <= k2
    --> false ;
  bounds_empty_eq_lt: and(bag(c*, x = k1, x < k2)) / ISA(k1, constant), ISA(k2, constant), k1 >= k2
    --> false ;

  -- §6.1: a constant outside an enumeration domain cannot be a member
  enum_inconsistency:
    member(k, s) / isa(k, constant), not_in_domain(k, s) --> false ;

  -- negation normalization: complements of the comparison operators
  not_lt: not(x < y)  --> x >= y ;
  not_le: not(x <= y) --> x > y ;
  not_gt: not(x > y)  --> x <= y ;
  not_ge: not(x >= y) --> x < y ;
  not_eq: not(x = y)  --> x <> y ;
  not_ne: not(x <> y) --> x = y ;

  -- cleanup: a restriction that became trivially true disappears
  filter_true: filter(r, true) --> r ;

  -- emptiness propagation: an operand starved by a false qualification
  -- empties the whole search; empty arms leave a union
  search_empty_input:
    search(list(x*, r, y*), q, e) / empty_rel(r), distinct(q, false)
    --> search(list(x*, r, y*), false, e) ;

  empty_union_arm:
    union(set(x*, r)) / empty_rel(r), nonempty(x*) --> union(set(x*)) ;

  -- same rule as in the merging block (§4.2 allows this): a singleton
  -- union left by arm removal collapses in place
  union_singleton: union(set(r)) --> r ;

  -- Figure 12: evaluate applications whose arguments are all constants
  const_fold:
    F(c*) --> a / evaluate(F(c*), a) ;
|}

let parse = Rule_parser.parse_rules

let merging () = parse merging_text
let permutation () = parse permutation_text
let fixpoint () = parse fixpoint_text
let semantic () = parse semantic_text
let simplification () = parse simplification_text

let all () =
  merging () @ permutation () @ fixpoint () @ semantic () @ simplification ()

let find name =
  match List.find_opt (fun (r : Rule.t) -> r.Rule.name = name) (all ()) with
  | Some r -> r
  | None -> raise Not_found
