(** The Alexander / Magic-Sets transformation on algebraic fixpoints
    (paper §5.3, Figure 9).

    Following the paper, the rewriting method is "implemented directly on
    the algebra expression": given a [fix] whose result is restricted by
    constant selections in an enclosing search, the transformation builds

    - a {e magic} fixpoint computing the set of bindings reachable from
      the query constants (the relevant facts), and
    - a restricted {e answer} fixpoint whose every arm is guarded by the
      magic relation,

    so that the recursion only derives tuples relevant to the query.

    Scope: linear recursive arms (one occurrence of the recursion
    variable per arm) whose arms are [search] operators, with binding
    propagation through column-equality joins — this covers the
    transitive-closure and same-generation families.  The non-linear
    composition arm of Figure 5 is first linearized by
    {!linearize_tc}. *)

module Lera = Eds_lera.Lera
module Schema = Eds_lera.Schema

val adornment : Lera.scalar -> slot:int -> arity:int -> (int * Lera.scalar) list
(** [adornment qual ~slot ~arity] extracts the bound columns of the
    fixpoint occupying operand [slot] of a search: top-level conjuncts of
    the form [slot.j = constant] (either orientation).  Returns
    [(j, constant)] pairs sorted by [j] — the adorned signature of the
    recursive predicate. *)

val linearize_tc : Lera.rel -> Lera.rel option
(** Rewrite the non-linear transitive-closure arm
    [search((R, R), [1.2 = 2.1], (1.1, 2.2))] of a fixpoint into its
    right-linear equivalent [search((B, R), …)] where [B] is the union
    of the non-recursive arms.  Sound because both compute the
    transitive closure of the base.  [None] when the shape differs. *)

val transform :
  Schema.env ->
  rvars:(string * Schema.t) list ->
  Lera.rel ->
  bound:(int * Lera.scalar) list ->
  Lera.rel option
(** [transform env ~rvars fix ~bound] builds the magic-rewritten
    fixpoint.  [bound] comes from {!adornment} and must be non-empty.
    Returns [None] when the fixpoint is outside the supported class
    (non-linear arms after linearization, non-search arms, or bindings
    that cannot be propagated into the recursive call).  The recursion
    variable of the result is renamed [<name>_magic], which also marks
    the fixpoint as already transformed. *)
