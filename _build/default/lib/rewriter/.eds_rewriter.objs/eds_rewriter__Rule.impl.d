lib/rewriter/rule.ml: Eds_term Fmt List
