lib/rewriter/magic.ml: Eds_lera Eds_value Int List Option String
