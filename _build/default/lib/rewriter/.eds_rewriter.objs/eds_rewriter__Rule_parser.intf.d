lib/rewriter/rule_parser.mli: Eds_term Rule
