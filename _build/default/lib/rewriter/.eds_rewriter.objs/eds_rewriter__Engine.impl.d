lib/rewriter/engine.ml: Eds_lera Eds_term Eds_value Fmt Fun List Option Rule Seq String
