lib/rewriter/optimizer.ml: Eds_lera Eds_term Eds_value Engine Fmt List Methods Rule Rule_parser Rulesets
