lib/rewriter/rule.mli: Eds_term Format
