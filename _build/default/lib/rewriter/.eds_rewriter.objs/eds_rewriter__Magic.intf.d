lib/rewriter/magic.mli: Eds_lera
