lib/rewriter/rulesets.ml: List Rule Rule_parser
