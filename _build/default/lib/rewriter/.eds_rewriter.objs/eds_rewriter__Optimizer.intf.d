lib/rewriter/optimizer.mli: Eds_lera Eds_term Eds_value Engine Rule
