lib/rewriter/rulesets.mli: Rule
