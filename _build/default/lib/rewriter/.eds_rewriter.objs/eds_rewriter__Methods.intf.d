lib/rewriter/methods.mli: Engine
