lib/rewriter/rule_analysis.mli: Format Rule
