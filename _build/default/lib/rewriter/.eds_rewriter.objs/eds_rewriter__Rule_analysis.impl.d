lib/rewriter/rule_analysis.ml: Eds_term Eds_value Fmt Hashtbl List Option Rule String
