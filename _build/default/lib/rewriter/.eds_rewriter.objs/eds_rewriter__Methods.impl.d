lib/rewriter/methods.ml: Eds_lera Eds_term Eds_value Engine Filename List Magic Option String
