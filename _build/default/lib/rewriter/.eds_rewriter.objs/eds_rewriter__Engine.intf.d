lib/rewriter/engine.mli: Eds_lera Eds_term Eds_value Format Rule
