lib/rewriter/rule_parser.ml: Eds_esql Eds_term Eds_value Fmt List Rule String
