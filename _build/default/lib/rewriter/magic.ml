module Value = Eds_value.Value
module Lera = Eds_lera.Lera
module Schema = Eds_lera.Schema

(* does this expression mention the recursion variable [n]? *)
let rec mentions n (r : Lera.rel) =
  match r with
  | Lera.Base m | Lera.Rvar m -> String.equal m n
  | Lera.Fix (m, body) -> (not (String.equal m n)) && mentions n body
  | Lera.Filter _ | Lera.Project _ | Lera.Join _ | Lera.Union _ | Lera.Diff _
  | Lera.Inter _ | Lera.Search _ | Lera.Nest _ | Lera.Unnest _ ->
    List.exists (mentions n) (Lera.inputs r)

let is_rvar n (r : Lera.rel) =
  match r with
  | Lera.Base m | Lera.Rvar m -> String.equal m n
  | _ -> false

let arms_of = function Lera.Union rs -> rs | r -> [ r ]

(* -- adornment ---------------------------------------------------------- *)

let adornment qual ~slot ~arity =
  let bound_of_conjunct c =
    match c with
    | Lera.Call ("=", [ Lera.Col (i, j); (Lera.Cst _ as k) ])
    | Lera.Call ("=", [ (Lera.Cst _ as k); Lera.Col (i, j) ])
      when i = slot && j <= arity ->
      Some (j, k)
    | _ -> None
  in
  Lera.conjuncts qual
  |> List.filter_map bound_of_conjunct
  |> List.sort_uniq (fun (a, _) (b, _) -> Int.compare a b)

(* -- linearization of the Figure-5 composition arm ---------------------- *)

let linearize_tc (r : Lera.rel) : Lera.rel option =
  match r with
  | Lera.Fix (n, body) -> (
    let arms = arms_of body in
    let base_arms, rec_arms = List.partition (fun a -> not (mentions n a)) arms in
    match base_arms, rec_arms with
    | _ :: _, [ Lera.Search ([ a; b ], q, proj) ]
      when is_rvar n a && is_rvar n b
           && Lera.equal_scalar q (Lera.eq (Lera.col 1 2) (Lera.col 2 1))
           && (match proj with
              | [ Lera.Col (1, 1); Lera.Col (2, 2) ] -> true
              | _ -> false) ->
      let base =
        match base_arms with [ one ] -> one | several -> Lera.Union several
      in
      let linear_arm = Lera.Search ([ base; Lera.Rvar n ], q, proj) in
      Some (Lera.Fix (n, Lera.Union (base_arms @ [ linear_arm ])))
    | _ -> None)
  | _ -> None

(* -- the transformation -------------------------------------------------- *)

(* remap a scalar whose columns live in the original input numbering onto
   the magic-rule numbering (magic at 1, kept inputs as given) *)
let remap_cols mapping (s : Lera.scalar) : Lera.scalar option =
  let ok = ref true in
  let rec go s =
    match s with
    | Lera.Cst _ -> s
    | Lera.Col (i, j) -> (
      match List.assoc_opt i mapping with
      | Some i' -> Lera.Col (i', j)
      | None ->
        ok := false;
        s)
    | Lera.Call (f, args) -> Lera.Call (f, List.map go args)
  in
  let s' = go s in
  if !ok then Some s' else None

let scalar_inputs s = List.sort_uniq Int.compare (List.map fst (Lera.scalar_cols s))

type rec_arm = {
  inputs : Lera.rel list;
  qual : Lera.scalar;
  proj : Lera.scalar list;
  rpos : int;  (** position (1-based) of the recursion variable *)
}

let analyse_arm n (arm : Lera.rel) : rec_arm option =
  match arm with
  | Lera.Search (inputs, qual, proj) -> (
    let rec_positions =
      List.filteri (fun _ r -> is_rvar n r) inputs |> List.length
    in
    if rec_positions <> 1 then None
    else if List.exists (fun r -> (not (is_rvar n r)) && mentions n r) inputs then None
    else
      match List.find_index (is_rvar n) inputs with
      | Some i -> Some { inputs; qual; proj; rpos = i + 1 }
      | None -> None)
  | _ -> None

(* One magic rule for a linear recursive arm: compute which columns of the
   recursive call are derivable from the head's bound columns, the
   equality conjuncts, and the EDB operands.  Only the operands actually
   used by those definitions enter the magic rule's body. *)
let magic_arm magic_name (bound : (int * Lera.scalar) list) (arm : rec_arm) :
    Lera.rel option =
  let r = arm.rpos in
  (* definitions of the recursive call's columns (input 0 is a placeholder
     for the magic operand) and the conjuncts linking EDB operands to the
     magic attributes *)
  let defs : (int * Lera.scalar) list ref = ref [] in
  let links = ref [] in
  List.iteri
    (fun b_idx (j, _) ->
      let magic_col = Lera.Col (0, b_idx + 1) in
      match List.nth_opt arm.proj (j - 1) with
      | Some (Lera.Col (i, jj)) when i = r ->
        if not (List.mem_assoc jj !defs) then defs := (jj, magic_col) :: !defs
      | Some e ->
        if not (List.mem r (scalar_inputs e)) then
          links := Lera.eq e magic_col :: !links
      | None -> ())
    bound;
  let conjuncts = Lera.conjuncts arm.qual in
  let add_def j other =
    if
      (not (List.mem_assoc j !defs))
      && not (List.mem r (scalar_inputs other))
    then defs := (j, other) :: !defs
  in
  List.iter
    (fun c ->
      match c with
      | Lera.Call ("=", [ Lera.Col (i, j); other ]) when i = r -> add_def j other
      | Lera.Call ("=", [ other; Lera.Col (i, j) ]) when i = r -> add_def j other
      | _ -> ())
    conjuncts;
  (* the magic projection needs a definition for every bound column *)
  let proj_defs = List.map (fun (j, _) -> List.assoc_opt j !defs) bound in
  if List.exists Option.is_none proj_defs then None
  else begin
    let proj_defs = List.map Option.get proj_defs in
    (* operands required: those referenced by the chosen definitions and
       by the linking conjuncts (0, the magic placeholder, excluded) *)
    let needed =
      List.concat_map scalar_inputs (proj_defs @ !links)
      |> List.filter (fun i -> i <> 0 && i <> r)
      |> List.sort_uniq Int.compare
    in
    (* keep original conjuncts fully contained in the needed operands *)
    let kept =
      List.filter
        (fun c ->
          let ins = scalar_inputs c in
          ins <> [] && List.for_all (fun i -> List.mem i needed) ins)
        conjuncts
    in
    let mapping = (0, 1) :: List.mapi (fun idx i -> (i, idx + 2)) needed in
    let remap s = remap_cols mapping s in
    let all_some xs = List.for_all Option.is_some xs in
    let proj' = List.map remap proj_defs in
    let kept' = List.map remap kept in
    let links' = List.map remap !links in
    if not (all_some proj' && all_some kept' && all_some links') then None
    else
      let inputs' =
        Lera.Rvar magic_name
        :: List.map (fun i -> List.nth arm.inputs (i - 1)) needed
      in
      Some
        (Lera.Search
           ( inputs',
             Lera.conj (List.map Option.get (kept' @ links')),
             List.map Option.get proj' ))
  end

let transform env ~rvars (fix : Lera.rel) ~bound : Lera.rel option =
  match fix, bound with
  | _, [] -> None
  | Lera.Fix (n, body), _ -> (
    let schema =
      try Schema.of_rel ~rvars env fix with Schema.Schema_error _ -> []
    in
    let arity = List.length schema in
    if arity = 0 then None
    else begin
      let arms = arms_of body in
      let base_arms, rec_arm_terms =
        List.partition (fun a -> not (mentions n a)) arms
      in
      let rec_arms = List.map (analyse_arm n) rec_arm_terms in
      if base_arms = [] || rec_arms = [] || List.exists Option.is_none rec_arms then
        None
      else begin
        let rec_arms = List.map Option.get rec_arms in
        let magic_name = n ^ "_m" in
        let seed =
          Lera.Search ([], Lera.tru, List.map snd bound)
        in
        let magic_rule_arms = List.map (magic_arm magic_name bound) rec_arms in
        if List.exists Option.is_none magic_rule_arms then None
        else begin
          let magic_fix =
            Lera.Fix
              (magic_name, Lera.Union (seed :: List.map Option.get magic_rule_arms))
          in
          let answer_name = n ^ "_magic" in
          (* wrap a bare base-relation arm into search form *)
          let as_search (arm : Lera.rel) =
            match arm with
            | Lera.Search (inputs, q, proj) -> Some (inputs, q, proj)
            | Lera.Base _ -> (
              match Schema.of_rel ~rvars env arm with
              | sch ->
                let width = List.length sch in
                Some
                  ( [ arm ],
                    Lera.tru,
                    List.init width (fun j -> Lera.Col (1, j + 1)) )
              | exception Schema.Schema_error _ -> None)
            | _ -> None
          in
          let guard_arm (arm : Lera.rel) =
            match as_search arm with
            | None -> None
            | Some (inputs, q, proj) ->
              let inputs' =
                List.map
                  (fun r -> if is_rvar n r then Lera.Rvar answer_name else r)
                  inputs
              in
              let magic_pos = List.length inputs' + 1 in
              let guards =
                List.mapi
                  (fun b_idx (j, _) ->
                    match List.nth_opt proj (j - 1) with
                    | Some e -> Some (Lera.eq e (Lera.Col (magic_pos, b_idx + 1)))
                    | None -> None)
                  bound
              in
              if List.exists Option.is_none guards then None
              else
                Some
                  (Lera.Search
                     ( inputs' @ [ magic_fix ],
                       Lera.conj (q :: List.map Option.get guards),
                       proj ))
          in
          let guarded = List.map guard_arm arms in
          if List.exists Option.is_none guarded then None
          else Some (Lera.Fix (answer_name, Lera.Union (List.map Option.get guarded)))
        end
      end
    end)
  | _ -> None
