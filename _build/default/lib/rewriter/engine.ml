module Value = Eds_value.Value
module Vtype = Eds_value.Vtype
module Adt = Eds_value.Adt
module Term = Eds_term.Term
module Subst = Eds_term.Subst
module Matcher = Eds_term.Matcher
module Lera = Eds_lera.Lera
module Schema = Eds_lera.Schema
module Lera_term = Eds_lera.Lera_term

type local_env = {
  input_schemas : Schema.t list option;
  rvars : (string * Schema.t) list;
}

type ctx = {
  schema_env : Schema.env;
  methods : (string * method_fn) list;
  constraint_preds : (string * constraint_fn) list;
  semantic_constraints : (string * Term.t) list;
}

and method_fn = ctx -> local_env -> Subst.t -> Term.t list -> Subst.t option
and constraint_fn = ctx -> local_env -> Term.t list -> bool

let ctx ?(methods = []) ?(constraint_preds = []) ?(semantic_constraints = [])
    schema_env =
  { schema_env; methods; constraint_preds; semantic_constraints }

let top_env = { input_schemas = None; rvars = [] }

type step = {
  rule_name : string;
  block_name : string;
  redex : Term.t;  (** the subterm that was rewritten *)
  replacement : Term.t;
}

let pp_step ppf s =
  Fmt.pf ppf "[%s] %s:@   %a@   --> %a" s.block_name s.rule_name Term.pp s.redex
    Term.pp s.replacement

type stats = {
  mutable conditions_checked : int;
  mutable rewrites_applied : int;
  mutable by_rule : (string * int) list;
  mutable trace : step list;  (** most recent first; reversed by [steps] *)
}

let fresh_stats () =
  { conditions_checked = 0; rewrites_applied = 0; by_rule = []; trace = [] }

let steps stats = List.rev stats.trace

let pp_stats ppf s =
  Fmt.pf ppf "conditions=%d rewrites=%d [%a]" s.conditions_checked s.rewrites_applied
    (Fmt.list ~sep:(Fmt.any "; ") (fun ppf (n, c) -> Fmt.pf ppf "%s:%d" n c))
    s.by_rule

let bump_rule stats name =
  stats.rewrites_applied <- stats.rewrites_applied + 1;
  let rec go = function
    | [] -> [ (name, 1) ]
    | (n, c) :: rest -> if n = name then (n, c + 1) :: rest else (n, c) :: go rest
  in
  stats.by_rule <- go stats.by_rule

exception Rewrite_error of string

(* -- scalar typing inside constraints ----------------------------------- *)

(* Type of a (ground) scalar term under the local environment, when
   derivable: constants, column references, and registered functions. *)
let term_type c env (t : Term.t) : Vtype.t option =
  match t with
  | Term.Cst v -> Some (Vtype.type_of_value c.schema_env.Schema.types v)
  | Term.App ("@", [ Term.Cst (Value.Int i); Term.Cst (Value.Int j) ]) -> (
    match env.input_schemas with
    | Some schemas -> (
      match List.nth_opt schemas (i - 1) with
      | Some sch -> Option.map snd (List.nth_opt sch (j - 1))
      | None -> None)
    | None -> None)
  | Term.App (_, _) -> (
    match Lera_term.scalar_of_term t with
    | scalar -> (
      match env.input_schemas with
      | Some schemas -> (
        try Some (Schema.scalar_type c.schema_env ~inputs:schemas scalar)
        with Schema.Schema_error _ -> None)
      | None -> None)
    | exception Lera_term.Bridge_error _ -> None)
  | Term.Var _ | Term.Cvar _ -> None
  | Term.Coll (Term.Set, _) -> Some (Vtype.Set Vtype.Any)
  | Term.Coll (Term.Bag, _) -> Some (Vtype.Bag Vtype.Any)
  | Term.Coll (Term.List, _) -> Some (Vtype.List Vtype.Any)
  | Term.Coll (Term.Array, _) -> Some (Vtype.Array Vtype.Any)
  | Term.Coll (Term.Tuple, _) -> None

(* -- built-in constraints ------------------------------------------------ *)

let comparison_ops = [ "="; "<>"; "<"; "<="; ">"; ">=" ]

let rec eval_constraint c env (t : Term.t) : bool =
  match t with
  | Term.Cst (Value.Bool b) -> b
  | Term.App ("and", [ Term.Coll (Term.Bag, cs) ]) ->
    List.for_all (eval_constraint c env) cs
  | Term.App ("or", [ Term.Coll (Term.Bag, cs) ]) ->
    List.exists (eval_constraint c env) cs
  | Term.App ("not", [ a ]) -> not (eval_constraint c env a)
  | Term.App (op, [ Term.Cst a; Term.Cst b ]) when List.mem op comparison_ops -> (
    match Adt.apply c.schema_env.Schema.adts op [ a; b ] with
    | Value.Bool r -> r
    | _ -> false
    | exception _ -> false)
  | Term.App ("isa", [ a; ty ]) -> constraint_isa c env a ty
  | Term.App ("notin", a :: members) ->
    not (List.exists (Term.equal a) members)
  | Term.App ("distinct", [ a; b ]) -> not (Term.equal a b)
  | Term.App ("nonempty", args) -> args <> []
  | Term.App ("ground", [ a ]) -> Term.is_ground a
  | Term.App ("pred", [ a ]) -> constraint_pred c a
  | Term.App ("refer_only", [ Term.Coll (_, quals); Term.Coll (_, prefix); group ]) ->
    constraint_refer_only quals prefix group
  | Term.App ("not_in_domain", [ k; s ]) -> constraint_not_in_domain c env k s
  | Term.App ("empty_rel", [ r ]) -> (
    (* provable emptiness of a relational operand (starved by a false
       qualification somewhere inside) *)
    match Lera_term.of_term r with
    | rel -> Lera.obviously_empty rel
    | exception Lera_term.Bridge_error _ -> false)
  | Term.App (name, args) -> (
    match List.assoc_opt name c.constraint_preds with
    | Some fn -> fn c env args
    | None -> false)
  | Term.Var _ | Term.Cvar _ | Term.Cst _ | Term.Coll _ -> false

(* ISA(x, y): subtype test.  The type side is written as a bare name in
   rule syntax (hence a variable after parsing); [constant] means "x is a
   constant", the collection kinds test the constructor, and any declared
   type name tests against the derivable type of x. *)
and constraint_isa c env a ty =
  let type_name =
    match ty with
    | Term.Var n -> Some n
    | Term.Cst (Value.Str n) -> Some (String.lowercase_ascii n)
    | _ -> None
  in
  match type_name with
  | None -> false
  | Some "constant" -> ( match a with Term.Cst _ -> true | _ -> false)
  | Some (("set" | "bag" | "list" | "array" | "collection" | "tuple") as kind) -> (
    let value_is v =
      match v, kind with
      | Value.Set _, ("set" | "collection")
      | Value.Bag _, ("bag" | "collection")
      | Value.List _, ("list" | "collection")
      | Value.Array _, ("array" | "collection")
      | Value.Tuple _, "tuple" ->
        true
      | _ -> false
    in
    match a with
    | Term.Cst v -> value_is v
    | Term.Coll (Term.Set, _) -> kind = "set" || kind = "collection"
    | Term.Coll (Term.Bag, _) -> kind = "bag" || kind = "collection"
    | Term.Coll (Term.List, _) -> kind = "list" || kind = "collection"
    | Term.Coll (Term.Array, _) -> kind = "array" || kind = "collection"
    | Term.Coll (Term.Tuple, _) -> kind = "tuple"
    | _ -> (
      match term_type c env a with
      | Some t -> (
        let target =
          match kind with
          | "set" -> Vtype.Set Vtype.Any
          | "bag" -> Vtype.Bag Vtype.Any
          | "list" -> Vtype.List Vtype.Any
          | "array" -> Vtype.Array Vtype.Any
          | "tuple" -> Vtype.Tuple []
          | _ -> Vtype.Collection Vtype.Any
        in
        match target with
        | Vtype.Tuple [] -> (
          match Vtype.expand c.schema_env.Schema.types t with
          | Vtype.Tuple _ -> true
          | _ -> false)
        | _ -> Vtype.isa c.schema_env.Schema.types t target)
      | None -> false))
  | Some name -> (
    let types = c.schema_env.Schema.types in
    let target =
      match String.lowercase_ascii name with
      | "numeric" | "real" -> Some Vtype.Real
      | "int" | "integer" -> Some Vtype.Int
      | "char" | "string" -> Some Vtype.String
      | "boolean" | "bool" -> Some Vtype.Bool
      | _ -> (
        (* declared names parse lowercased; search case-insensitively *)
        let decls = Vtype.declarations types in
        match
          List.find_opt
            (fun d -> String.lowercase_ascii d.Vtype.name = String.lowercase_ascii name)
            decls
        with
        | Some d when d.Vtype.is_object -> Some (Vtype.Object d.Vtype.name)
        | Some d -> Some (Vtype.Named d.Vtype.name)
        | None -> None)
    in
    match target, term_type c env a with
    | Some target_ty, Some t -> Vtype.isa types t target_ty
    | _ -> false)

and constraint_pred c a =
  match a with
  | Term.Cst (Value.Str f) | Term.Var f -> (
    List.mem f comparison_ops
    ||
    match Adt.find c.schema_env.Schema.adts f with
    | Some entry -> Vtype.equal entry.Adt.result_type Vtype.Bool
    | None -> false)
  | _ -> false

(* refer_only(list(quals…), list(prefix…), group): every column reference
   of the qualifications points at the operand following the prefix, and
   within that operand at one of the first |group| attributes — i.e. the
   non-nested, grouping attributes of a nest (Figure 8). *)
and constraint_refer_only quals prefix group =
  let slot = List.length prefix + 1 in
  let width =
    match group with
    | Term.Coll (Term.Tuple, cols) -> List.length cols
    | _ -> 0
  in
  quals <> []
  && List.for_all
       (fun q ->
         List.for_all
           (fun (i, j) -> i = slot && j <= width)
           (Lera_term.cols_of q))
       quals

(* not_in_domain(k, col): k is a constant whose value cannot belong to the
   enumeration domain of col's element type — the MEMBER('Cartoon', …)
   inconsistency of §6.1. *)
and constraint_not_in_domain c env k col =
  match k, term_type c env col with
  | Term.Cst kv, Some ty -> (
    let types = c.schema_env.Schema.types in
    let elem =
      match Vtype.element_type types ty with Some e -> e | None -> ty
    in
    match Vtype.expand types elem with
    | Vtype.Enum (_, labels) -> (
      match kv with
      | Value.Str s -> not (List.mem s labels)
      | Value.Enum (_, s) -> not (List.mem s labels)
      | _ -> true)
    | _ -> false)
  | _ -> false

(* -- rule application ---------------------------------------------------- *)

let run_methods c env rule subst =
  let rec go subst = function
    | [] -> Some subst
    | (name, raw_args) :: rest -> (
      match List.assoc_opt name c.methods with
      | None -> raise (Rewrite_error (Fmt.str "unknown method %s in rule %s" name rule.Rule.name))
      | Some fn -> (
        match fn c env subst raw_args with
        | Some subst' -> go subst' rest
        | None -> None))
  in
  go subst rule.Rule.methods

let apply_rule_at c env (rule : Rule.t) t : Term.t option =
  let try_subst subst =
    let holds =
      List.for_all (fun ct -> eval_constraint c env (Subst.apply subst ct)) rule.constraints
    in
    if not holds then None
    else
      match run_methods c env rule subst with
      | Some subst' -> Some (Lera_term.normalize (Subst.apply subst' rule.rhs))
      | None -> None
  in
  Seq.find_map try_subst (Matcher.all ~pattern:rule.lhs t)

(* local environment refinement while descending: when entering the
   qualification or projection of a relational operator, record the
   operand schemas; when entering a fixpoint body, bind the recursion
   variable's schema. *)
let child_envs c env (t : Term.t) : local_env list =
  let schema_of_rel_term rt =
    try Some (Schema.of_rel ~rvars:env.rvars c.schema_env (Lera_term.of_term rt))
    with Schema.Schema_error _ | Lera_term.Bridge_error _ -> None
  in
  let with_inputs rels =
    let schemas = List.map schema_of_rel_term rels in
    if List.for_all Option.is_some schemas then
      { env with input_schemas = Some (List.map Option.get schemas) }
    else { env with input_schemas = None }
  in
  match t with
  | Term.App ("search", [ Term.Coll (Term.List, rels); _; _ ]) ->
    let qenv = with_inputs rels in
    [ env; qenv; qenv ]
  | Term.App ("filter", [ rel; _ ]) -> [ env; with_inputs [ rel ] ]
  | Term.App ("proj", [ rel; _ ]) -> [ env; with_inputs [ rel ] ]
  | Term.App ("join", [ r1; r2; _ ]) -> [ env; env; with_inputs [ r1; r2 ] ]
  | Term.App ("fix", [ Term.Cst (Value.Str n); _ ]) -> (
    match schema_of_rel_term t with
    | Some sch -> [ env; { env with rvars = (n, sch) :: env.rvars } ]
    | None -> [ env; env ])
  | Term.App (_, args) | Term.Coll (_, args) -> List.map (Fun.const env) args
  | Term.Var _ | Term.Cvar _ | Term.Cst _ -> []

(* One rewrite step: scan top-down, leftmost; on success rebuild the path.
   The budget counts rule-condition checks (lhs matches whose constraints
   were evaluated). *)
let rewrite_step c block stats budget t : Term.t option =
  let record rule redex replacement =
    stats.trace <-
      {
        rule_name = rule.Rule.name;
        block_name = block.Rule.block_name;
        redex;
        replacement;
      }
      :: stats.trace
  in
  let rec at_node env t =
    if !budget <= 0 then None
    else
      match try_rules env t block.Rule.rules with
      | Some t' -> Some t'
      | None -> into_children env t
  and try_rules env t = function
    | [] -> None
    | rule :: rest ->
      if !budget <= 0 then None
      else begin
        let matched = ref false in
        let result =
          Seq.find_map
            (fun subst ->
              if not !matched then begin
                matched := true;
                stats.conditions_checked <- stats.conditions_checked + 1;
                decr budget
              end;
              let holds =
                List.for_all
                  (fun ct -> eval_constraint c env (Subst.apply subst ct))
                  rule.Rule.constraints
              in
              if not holds then None
              else
                match run_methods c env rule subst with
                | Some subst' ->
                  Some (Lera_term.normalize (Subst.apply subst' rule.Rule.rhs))
                | None -> None)
            (Matcher.all ~pattern:rule.Rule.lhs t)
        in
        match result with
        | Some t' ->
          bump_rule stats rule.Rule.name;
          record rule t t';
          Some t'
        | None -> try_rules env t rest
      end
  and into_children env t =
    match t with
    | Term.Var _ | Term.Cvar _ | Term.Cst _ -> None
    | Term.App (_, args) | Term.Coll (_, args) ->
      let envs = child_envs c env t in
      let rec walk i = function
        | [] -> None
        | arg :: rest -> (
          let cenv = match List.nth_opt envs i with Some e -> e | None -> env in
          match at_node cenv arg with
          | Some arg' ->
            let args' = List.mapi (fun j a -> if j = i then arg' else a) args in
            Some
              (match t with
              | Term.App (f, _) -> Term.App (f, args')
              | Term.Coll (k, _) -> Term.Coll (k, args')
              | _ -> assert false)
          | None -> walk (i + 1) rest)
      in
      walk 0 args
  in
  at_node top_env t

let run_block c ?stats (block : Rule.block) t =
  let stats = match stats with Some s -> s | None -> fresh_stats () in
  let budget = ref (match block.Rule.limit with Some n -> n | None -> max_int) in
  let rec loop t =
    if !budget <= 0 then t
    else
      match rewrite_step c block stats budget t with
      | Some t' -> loop (Lera_term.normalize t')
      | None -> t
  in
  loop t

let run c ?stats (program : Rule.program) t =
  let stats = match stats with Some s -> s | None -> fresh_stats () in
  let round t =
    List.fold_left (fun acc block -> run_block c ~stats block acc) t program.Rule.blocks
  in
  let rec loop n t =
    if n <= 0 then t
    else
      let t' = round t in
      if Term.equal t' t then t' else loop (n - 1) t'
  in
  loop program.Rule.rounds t
