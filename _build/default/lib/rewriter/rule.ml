module Term = Eds_term.Term

type t = {
  name : string;
  lhs : Term.t;
  constraints : Term.t list;
  rhs : Term.t;
  methods : (string * Term.t list) list;
}

type block = {
  block_name : string;
  rules : t list;
  limit : int option;
}

type program = {
  blocks : block list;
  rounds : int;
}

let comma = Fmt.any ", "

let pp_method ppf (name, args) =
  Fmt.pf ppf "%s(%a)" name (Fmt.list ~sep:comma Term.pp) args

let pp ppf r =
  Fmt.pf ppf "%s: %a / %a --> %a / %a" r.name Term.pp r.lhs
    (Fmt.list ~sep:comma Term.pp) r.constraints Term.pp r.rhs
    (Fmt.list ~sep:comma pp_method)
    r.methods

let pp_block ppf b =
  let pp_limit ppf = function
    | Some n -> Fmt.int ppf n
    | None -> Fmt.string ppf "infinite"
  in
  Fmt.pf ppf "block(%s, {%a}, %a)" b.block_name
    (Fmt.list ~sep:comma (fun ppf r -> Fmt.string ppf r.name))
    b.rules pp_limit b.limit

let pp_program ppf p =
  Fmt.pf ppf "seq({%a}, %d)"
    (Fmt.list ~sep:comma (fun ppf b -> Fmt.string ppf b.block_name))
    p.blocks p.rounds

let block ?limit block_name rules = { block_name; rules; limit }
let program ?(rounds = 1) blocks = { blocks; rounds }

let output_variables r =
  let bound = ref (Term.vars r.lhs) in
  let fresh t =
    let vs = List.filter (fun v -> not (List.mem v !bound)) (Term.vars t) in
    bound := !bound @ vs;
    vs
  in
  let from_methods =
    List.concat_map (fun (_, args) -> List.concat_map fresh args) r.methods
  in
  let from_rhs = fresh r.rhs in
  from_methods @ from_rhs
