module Term = Eds_term.Term

type size_behaviour =
  | Decreasing
  | Nonincreasing
  | Eliminating of string
  | Guarded_growth
  | Increasing
  | Unknown

let pp_size_behaviour ppf = function
  | Decreasing -> Fmt.string ppf "decreasing"
  | Nonincreasing -> Fmt.string ppf "non-increasing"
  | Eliminating s -> Fmt.pf ppf "eliminating '%s'" s
  | Guarded_growth -> Fmt.string ppf "guarded growth"
  | Increasing -> Fmt.string ppf "increasing"
  | Unknown -> Fmt.string ppf "unknown (method outputs)"

(* built-in methods whose outputs are size-bounded by their inputs and
   introduce no relational operators of their own *)
let default_trusted_methods =
  [
    "substitute"; "shift"; "schema"; "evaluate"; "split_input_qual";
    "split_nest_qual"; "split_unnest_qual";
  ]

let symbol_counts t =
  let counts = Hashtbl.create 8 in
  let rec go t =
    match t with
    | Term.Var _ | Term.Cvar _ | Term.Cst _ -> ()
    | Term.App (f, args) ->
      Hashtbl.replace counts f (1 + Option.value ~default:0 (Hashtbl.find_opt counts f));
      List.iter go args
    | Term.Coll (_, args) -> List.iter go args
  in
  go t;
  counts

(* concrete node count (variables count 0 — their size is the binding's)
   and per-variable occurrence counts *)
let measure t =
  let nodes = ref 0 in
  let occurrences = Hashtbl.create 8 in
  let bump x =
    Hashtbl.replace occurrences x (1 + Option.value ~default:0 (Hashtbl.find_opt occurrences x))
  in
  let rec go t =
    match t with
    | Term.Var x | Term.Cvar x -> bump x
    | Term.Cst _ -> incr nodes
    | Term.App (_, args) | Term.Coll (_, args) ->
      incr nodes;
      List.iter go args
  in
  go t;
  (!nodes, occurrences)

let occurrences_of tbl x = Option.value ~default:0 (Hashtbl.find_opt tbl x)

let size_behaviour ?(trusted_methods = default_trusted_methods) (r : Rule.t) :
    size_behaviour =
  let lhs_vars = Term.vars r.Rule.lhs in
  let rhs_vars = Term.vars r.Rule.rhs in
  let method_outputs = Rule.output_variables r in
  let untrusted_outputs =
    List.concat_map
      (fun (name, args) ->
        if List.mem name trusted_methods then []
        else
          List.concat_map
            (fun a -> List.filter (fun v -> List.mem v method_outputs) (Term.vars a))
            args)
      r.Rule.methods
  in
  let guarded =
    List.exists
      (fun c ->
        match c with
        | Term.App (("notin" | "distinct"), _) -> true
        | _ -> false)
      r.Rule.constraints
  in
  if List.exists (fun v -> List.mem v untrusted_outputs) rhs_vars then Unknown
  else begin
    let lhs_nodes, lhs_occ = measure r.Rule.lhs in
    let rhs_nodes, rhs_occ = measure r.Rule.rhs in
    let duplicated =
      List.exists
        (fun v -> occurrences_of rhs_occ v > occurrences_of lhs_occ v)
        lhs_vars
    in
    if not duplicated then begin
      (* a linear rule that strictly consumes some operator terminates by
         the multiset-of-that-symbol argument, even if it adds structure *)
      let lhs_syms = symbol_counts r.Rule.lhs in
      let rhs_syms = symbol_counts r.Rule.rhs in
      let eliminated =
        Hashtbl.fold
          (fun s n acc ->
            match acc with
            | Some _ -> acc
            | None ->
              if n > Option.value ~default:0 (Hashtbl.find_opt rhs_syms s) then Some s
              else None)
          lhs_syms None
      in
      match eliminated with
      | Some s when rhs_nodes > lhs_nodes -> Eliminating s
      | _ ->
        if rhs_nodes > lhs_nodes then
          if guarded then Guarded_growth else Increasing
        else if rhs_nodes < lhs_nodes then Decreasing
        else Nonincreasing
    end
    else if guarded then Guarded_growth
    else Increasing
  end

type warning = {
  block : string;
  rule : string;
  behaviour : size_behaviour;
  message : string;
}

let pp_warning ppf w =
  Fmt.pf ppf "[%s] rule %s is %a: %s" w.block w.rule pp_size_behaviour w.behaviour
    w.message

let check_block (b : Rule.block) : warning list =
  match b.Rule.limit with
  | Some _ -> []
  | None ->
    (* infinite limit: only shrinking and guarded rules are safe *)
    List.filter_map
      (fun (r : Rule.t) ->
        let behaviour = size_behaviour r in
        let warn message =
          Some { block = b.Rule.block_name; rule = r.Rule.name; behaviour; message }
        in
        match behaviour with
        | Decreasing | Nonincreasing | Guarded_growth | Eliminating _ -> None
        | Increasing ->
          warn
            "the right-hand side can grow the query; give the block a finite \
             limit (paper §4.2)"
        | Unknown ->
          warn
            "method outputs make the result size unpredictable; consider a \
             finite limit (paper §4.2)")
      b.Rule.rules

let check_program (p : Rule.program) : warning list =
  List.concat_map check_block p.Rule.blocks

(* -- overlap detection --------------------------------------------------- *)

(* Could the two patterns match the same subject?  A sound
   over-approximation of unifiability: variables match anything, binding
   consistency is ignored, and any collection variable makes an argument
   list length-compatible. *)
let rec compatible (a : Term.t) (b : Term.t) : bool =
  match a, b with
  | Term.Var _, _ | _, Term.Var _ -> true
  | Term.Cvar _, _ | _, Term.Cvar _ -> true
  | Term.Cst u, Term.Cst v -> Eds_value.Value.equal u v
  | Term.App (f, xs), Term.App (g, ys) ->
    (Term.is_fvar f || Term.is_fvar g || String.equal f g)
    && compatible_lists xs ys
  | Term.Coll (k, xs), Term.Coll (k', ys) -> k = k' && compatible_lists xs ys
  | (Term.Cst _ | Term.App _ | Term.Coll _), (Term.Cst _ | Term.App _ | Term.Coll _)
    ->
    false

and compatible_lists xs ys =
  let has_cvar = List.exists (function Term.Cvar _ -> true | _ -> false) in
  if has_cvar xs || has_cvar ys then
    (* a collection variable absorbs any leftover; require only that the
       concrete patterns could each find a partner *)
    true
  else
    List.length xs = List.length ys && List.for_all2 compatible xs ys

let could_overlap (a : Rule.t) (b : Rule.t) = compatible a.Rule.lhs b.Rule.lhs

let overlaps (b : Rule.block) : (string * string) list =
  let rec pairs = function
    | [] -> []
    | (r : Rule.t) :: rest ->
      List.filter_map
        (fun (r' : Rule.t) ->
          if could_overlap r r' then Some (r.Rule.name, r'.Rule.name) else None)
        rest
      @ pairs rest
  in
  pairs b.Rule.rules
