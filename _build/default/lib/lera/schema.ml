module Value = Eds_value.Value
module Vtype = Eds_value.Vtype
module Adt = Eds_value.Adt

type t = (string * Vtype.t) list

type env = {
  types : Vtype.env;
  relations : (string * t) list;
  adts : Adt.registry;
}

let arity = List.length

let pp ppf sch =
  let pp_attr ppf (n, ty) = Fmt.pf ppf "%s: %a" n Vtype.pp ty in
  Fmt.pf ppf "(%a)" (Fmt.list ~sep:(Fmt.any ", ") pp_attr) sch

exception Schema_error of string

let error fmt = Fmt.kstr (fun s -> raise (Schema_error s)) fmt

let attr inputs i j =
  match List.nth_opt inputs (i - 1) with
  | None -> error "column %d.%d: operator has %d operands" i j (List.length inputs)
  | Some sch -> (
    match List.nth_opt sch (j - 1) with
    | None -> error "column %d.%d: operand has arity %d" i j (arity sch)
    | Some a -> a)

let rec scalar_type env ~inputs (s : Lera.scalar) : Vtype.t =
  match s with
  | Lera.Cst v -> Vtype.type_of_value env.types v
  | Lera.Col (i, j) -> snd (attr inputs i j)
  | Lera.Call ("value", [ arg ]) -> (
    match scalar_type env ~inputs arg with
    | Vtype.Object n -> Vtype.expand env.types (Vtype.Object n)
    | ty -> ty)
  | Lera.Call ("project", [ arg; Lera.Cst (Value.Str field) ]) -> (
    let ty = scalar_type env ~inputs arg in
    let field_of ty =
      match Vtype.field_type env.types ty field with
      | Some fty -> fty
      | None -> error "project: no field %s in %a" field Vtype.pp ty
    in
    match Vtype.expand env.types ty with
    | Vtype.Set e -> Vtype.Set (field_of e)
    | Vtype.Bag e -> Vtype.Bag (field_of e)
    | Vtype.List e -> Vtype.List (field_of e)
    | Vtype.Array e -> Vtype.Array (field_of e)
    | _ -> field_of ty)
  | Lera.Call (("and" | "or" | "not"), _) -> Vtype.Bool
  | Lera.Call (("=" | "<>" | "<" | "<=" | ">" | ">=") as op, [ a; b ]) -> (
    (* comparison with a collection operand broadcasts point-wise *)
    let ta = scalar_type env ~inputs a and tb = scalar_type env ~inputs b in
    match Vtype.expand env.types ta, Vtype.expand env.types tb with
    | Vtype.Set _, _ | _, Vtype.Set _ -> Vtype.Set Vtype.Bool
    | Vtype.Bag _, _ | _, Vtype.Bag _ -> Vtype.Bag Vtype.Bool
    | Vtype.List _, _ | _, Vtype.List _ -> Vtype.List Vtype.Bool
    | _ ->
      ignore op;
      Vtype.Bool)
  | Lera.Call (f, args) -> (
    match Adt.find env.adts f with
    | Some entry ->
      List.iter (fun a -> ignore (scalar_type env ~inputs a)) args;
      entry.Adt.result_type
    | None -> (
      (* attribute-name-as-function sugar (paper §2.1): salary(Refactor)
         is PROJECT(VALUE(Refactor), Salary) before type checking runs *)
      match args with
      | [ arg ] -> (
        let ty = scalar_type env ~inputs arg in
        match field_type_ci env ty f with
        | Some fty -> fty
        | None -> error "unknown function or attribute %s" f)
      | _ -> error "unknown function %s" f))

(* case-insensitive field lookup through objects and collections,
   point-wise over collection element types *)
and field_type_ci env ty field =
  let lookup fields =
    List.find_opt (fun (n, _) -> String.lowercase_ascii n = String.lowercase_ascii field) fields
    |> Option.map snd
  in
  match Vtype.expand env.types ty with
  | Vtype.Tuple fs -> lookup fs
  | Vtype.Set e -> Option.map (fun t -> Vtype.Set t) (field_type_ci env e field)
  | Vtype.Bag e -> Option.map (fun t -> Vtype.Bag t) (field_type_ci env e field)
  | Vtype.List e -> Option.map (fun t -> Vtype.List t) (field_type_ci env e field)
  | Vtype.Array e -> Option.map (fun t -> Vtype.Array t) (field_type_ci env e field)
  | Vtype.Any -> Some Vtype.Any
  | Vtype.Bool | Vtype.Int | Vtype.Real | Vtype.String | Vtype.Enum _
  | Vtype.Collection _ | Vtype.Named _ | Vtype.Object _ ->
    None

let scalar_name inputs (s : Lera.scalar) =
  match s with
  | Lera.Col (i, j) -> (
    match List.nth_opt inputs (i - 1) with
    | Some sch -> (
      match List.nth_opt sch (j - 1) with
      | Some (n, _) -> n
      | None -> Fmt.str "c%d_%d" i j)
    | None -> Fmt.str "c%d_%d" i j)
  | Lera.Call ("project", [ _; Lera.Cst (Value.Str field) ]) -> field
  | Lera.Call (f, _) -> f
  | Lera.Cst _ -> "const"

let nth_attr sch j =
  match List.nth_opt sch (j - 1) with
  | Some a -> a
  | None -> error "column %d out of range for arity %d" j (arity sch)

let rec of_rel ?(rvars = []) env (r : Lera.rel) : t =
  let recur = of_rel ~rvars env in
  match r with
  | Lera.Base n -> (
    (* recursion variables shadow base relations: the paper writes the
       recursive view's own name inside its fixpoint body *)
    match List.assoc_opt n rvars with
    | Some sch -> sch
    | None -> (
      match List.assoc_opt n env.relations with
      | Some sch -> sch
      | None -> error "unknown relation %s" n))
  | Lera.Rvar n -> (
    match List.assoc_opt n rvars with
    | Some sch -> sch
    | None -> error "unbound recursion variable %s" n)
  | Lera.Filter (a, q) ->
    let sch = recur a in
    ignore (scalar_type env ~inputs:[ sch ] q);
    sch
  | Lera.Project (a, ps) ->
    let sch = recur a in
    List.map (fun p -> (scalar_name [ sch ] p, scalar_type env ~inputs:[ sch ] p)) ps
  | Lera.Join (a, b, q) ->
    let sa = recur a and sb = recur b in
    ignore (scalar_type env ~inputs:[ sa; sb ] q);
    sa @ sb
  | Lera.Union rs -> (
    match rs with
    | [] -> error "empty union"
    | first :: rest ->
      let sch = recur first in
      List.iter
        (fun r' ->
          let sch' = recur r' in
          if arity sch' <> arity sch then
            error "union of incompatible arities %d and %d" (arity sch) (arity sch'))
        rest;
      sch)
  | Lera.Diff (a, b) | Lera.Inter (a, b) ->
    let sa = recur a and sb = recur b in
    if arity sa <> arity sb then
      error "set operation on incompatible arities %d and %d" (arity sa) (arity sb);
    sa
  | Lera.Search (rs, q, ps) ->
    let inputs = List.map recur rs in
    ignore (scalar_type env ~inputs q);
    List.map (fun p -> (scalar_name inputs p, scalar_type env ~inputs p)) ps
  | Lera.Fix (n, body) ->
    let sch = fix_schema ~rvars env n body in
    let sch' = of_rel ~rvars:((n, sch) :: rvars) env body in
    if arity sch' <> arity sch then
      error "fixpoint %s: body arity %d differs from base arity %d" n (arity sch')
        (arity sch);
    sch
  | Lera.Nest (a, group, nested) ->
    let sch = recur a in
    let grouped = List.map (nth_attr sch) group in
    let collected =
      match nested with
      | [ j ] ->
        let n, ty = nth_attr sch j in
        (n, Vtype.Set ty)
      | js ->
        let fields = List.map (nth_attr sch) js in
        ("nested", Vtype.Set (Vtype.Tuple fields))
    in
    grouped @ [ collected ]
  | Lera.Unnest (a, i) ->
    let sch = recur a in
    List.mapi
      (fun idx (n, ty) ->
        if idx + 1 = i then
          match Vtype.element_type env.types ty with
          | Some ety -> (n, ety)
          | None -> error "unnest: column %d is not a collection" i
        else (n, ty))
      sch

(* The recursion variable's schema comes from the arms of the body that do
   not mention it (the base case of the recursion). *)
and fix_schema ~rvars env n body =
  let uses_rvar r = List.mem n (Lera.free_rvars r) || base_mentions n r in
  let arms = match body with Lera.Union rs -> rs | r -> [ r ] in
  match List.find_opt (fun arm -> not (uses_rvar arm)) arms with
  | Some base -> of_rel ~rvars env base
  | None -> error "fixpoint %s has no non-recursive arm" n

(* A Base node with the fixpoint's name also denotes the recursion
   variable (the paper writes fix(BETTER_THAN, union({DOMINATE, search((
   BETTER_THAN, BETTER_THAN), …)})) with the view name itself). *)
and base_mentions n r =
  match r with
  | Lera.Base m -> String.equal m n
  | Lera.Rvar _ -> false
  | Lera.Fix (m, body) -> (not (String.equal m n)) && base_mentions n body
  | Lera.Filter _ | Lera.Project _ | Lera.Join _ | Lera.Union _ | Lera.Diff _
  | Lera.Inter _ | Lera.Search _ | Lera.Nest _ | Lera.Unnest _ ->
    List.exists (base_mentions n) (Lera.inputs r)
