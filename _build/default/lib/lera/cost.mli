(** Static cost estimation for LERA expressions.

    The rewriter transforms queries into "equivalent simpler ones with
    better {e expected} performance" (paper §1) — this module provides
    the expectation: a textbook cardinality/selectivity model giving
    each plan an estimated output cardinality and an estimated cost in
    enumerated operand combinations, the same unit the instrumented
    evaluator reports, so estimates and measurements are comparable.

    Heuristics (classic System-R-style constants): equality with a
    constant selects 10 %, column-column equality 5 % (a key-foreign-key
    guess), ranges 30 %, membership 25 %, other predicates 50 %;
    conjunctions multiply, disjunctions add (capped at 1); a fixpoint is
    charged [fix_rounds] evaluations of its body against a saturated
    input estimate. *)

type t = {
  cardinality : float;  (** expected output tuples *)
  cost : float;  (** expected enumerated combinations, cumulative *)
}

val pp : Format.formatter -> t -> unit

val estimate :
  ?relation_cardinality:(string -> int option) ->
  ?fix_rounds:int ->
  Schema.env ->
  Lera.rel ->
  t
(** [relation_cardinality] supplies base-relation sizes (e.g. from the
    live database); unknown relations default to 1000 tuples.
    [fix_rounds] (default 4) scales the fixpoint charge.  Never raises:
    malformed sub-expressions contribute the default cardinality. *)

val selectivity : Lera.scalar -> float
(** Selectivity of a qualification under the heuristics above. *)
