module Value = Eds_value.Value

type t = {
  cardinality : float;
  cost : float;
}

let pp ppf e = Fmt.pf ppf "card≈%.0f cost≈%.0f" e.cardinality e.cost

let default_cardinality = 1000.

let is_constant = function Lera.Cst _ -> true | Lera.Col _ | Lera.Call _ -> false

let rec selectivity (q : Lera.scalar) : float =
  match q with
  | Lera.Cst (Value.Bool true) -> 1.
  | Lera.Cst (Value.Bool false) -> 0.
  | Lera.Cst _ | Lera.Col _ -> 0.5
  | Lera.Call ("and", cs) -> List.fold_left (fun s c -> s *. selectivity c) 1. cs
  | Lera.Call ("or", cs) ->
    Float.min 1. (List.fold_left (fun s c -> s +. selectivity c) 0. cs)
  | Lera.Call ("not", [ c ]) -> 1. -. selectivity c
  | Lera.Call ("=", [ a; b ]) ->
    if is_constant a || is_constant b then 0.1 else 0.05
  | Lera.Call (("<" | "<=" | ">" | ">="), _) -> 0.3
  | Lera.Call ("<>", _) -> 0.9
  | Lera.Call (("member" | "include"), _) -> 0.25
  | Lera.Call (("all" | "exist"), _) -> 0.5
  | Lera.Call (_, _) -> 0.5

let estimate ?(relation_cardinality = fun _ -> None) ?(fix_rounds = 4) env
    (r : Lera.rel) : t =
  ignore env;
  (* recursion variables are estimated at the saturation guess bound to
     their name while inside the fixpoint body *)
  let rec go rvars r : t =
    match r with
    | Lera.Base n -> (
      match List.assoc_opt n rvars with
      | Some card -> { cardinality = card; cost = 0. }
      | None ->
        let card =
          match relation_cardinality n with
          | Some c -> float_of_int c
          | None -> default_cardinality
        in
        { cardinality = card; cost = card })
    | Lera.Rvar n ->
      let card =
        match List.assoc_opt n rvars with
        | Some c -> c
        | None -> default_cardinality
      in
      { cardinality = card; cost = 0. }
    | Lera.Filter (a, q) ->
      let ea = go rvars a in
      {
        cardinality = ea.cardinality *. selectivity q;
        cost = ea.cost +. ea.cardinality;
      }
    | Lera.Project (a, _) ->
      let ea = go rvars a in
      { ea with cost = ea.cost +. ea.cardinality }
    | Lera.Join (a, b, q) ->
      let ea = go rvars a and eb = go rvars b in
      let combos = ea.cardinality *. eb.cardinality in
      {
        cardinality = combos *. selectivity q;
        cost = ea.cost +. eb.cost +. combos;
      }
    | Lera.Union rs ->
      let es = List.map (go rvars) rs in
      {
        cardinality = List.fold_left (fun s e -> s +. e.cardinality) 0. es;
        cost = List.fold_left (fun s e -> s +. e.cost) 0. es;
      }
    | Lera.Diff (a, b) ->
      let ea = go rvars a and eb = go rvars b in
      { cardinality = ea.cardinality /. 2.; cost = ea.cost +. eb.cost }
    | Lera.Inter (a, b) ->
      let ea = go rvars a and eb = go rvars b in
      {
        cardinality = Float.min ea.cardinality eb.cardinality /. 2.;
        cost = ea.cost +. eb.cost;
      }
    | Lera.Search (rs, q, _) ->
      let es = List.map (go rvars) rs in
      let combos = List.fold_left (fun p e -> p *. e.cardinality) 1. es in
      {
        cardinality = combos *. selectivity q;
        cost = List.fold_left (fun s e -> s +. e.cost) 0. es +. combos;
      }
    | Lera.Fix (n, body) ->
      (* first pass: body with an empty recursion estimate gives the base
         size; the saturation guess grows it; the fixpoint is charged
         [fix_rounds] body evaluations at the saturated estimate *)
      let base = go ((n, 0.) :: rvars) body in
      let saturated = base.cardinality *. float_of_int fix_rounds in
      let per_round = go ((n, saturated) :: rvars) body in
      {
        cardinality = saturated;
        cost = per_round.cost *. float_of_int fix_rounds;
      }
    | Lera.Nest (a, group, _) ->
      let ea = go rvars a in
      let groups = ea.cardinality /. Float.max 1. (float_of_int (List.length group)) in
      { cardinality = Float.max 1. groups; cost = ea.cost +. ea.cardinality }
    | Lera.Unnest (a, _) ->
      let ea = go rvars a in
      (* collections average a handful of elements *)
      { cardinality = ea.cardinality *. 4.; cost = ea.cost +. ea.cardinality }
  in
  go [] r
