lib/lera/schema.mli: Eds_value Format Lera
