lib/lera/cost.mli: Format Lera Schema
