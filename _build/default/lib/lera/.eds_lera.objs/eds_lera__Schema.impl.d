lib/lera/schema.ml: Eds_value Fmt Lera List Option String
