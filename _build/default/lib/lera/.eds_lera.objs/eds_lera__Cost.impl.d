lib/lera/cost.ml: Eds_value Float Fmt Lera List
