lib/lera/lera_term.mli: Eds_term Lera
