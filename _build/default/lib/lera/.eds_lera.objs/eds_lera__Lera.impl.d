lib/lera/lera.ml: Eds_value Fmt List String
