lib/lera/lera.mli: Eds_value Format
