lib/lera/lera_term.ml: Eds_term Eds_value Fmt Lera List Option String
