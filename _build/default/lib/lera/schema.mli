(** Schemas of LERA expressions.

    A schema is the ordered list of (attribute name, type) pairs of the
    relation computed by an expression.  Schema inference is what lets
    the rewriter's type-checking activity (paper §5, first activity)
    "correctly infer types and add the necessary conversion functions",
    and what the SCHEMA external function of Figure 8 computes. *)

module Vtype = Eds_value.Vtype
module Adt = Eds_value.Adt

type t = (string * Vtype.t) list

type env = {
  types : Vtype.env;
  relations : (string * t) list;  (** base relation schemas *)
  adts : Adt.registry;
}

val arity : t -> int

val pp : Format.formatter -> t -> unit

exception Schema_error of string

val scalar_type : env -> inputs:t list -> Lera.scalar -> Vtype.t
(** Type of a scalar over the given operand schemas.  Knows the generic
    conversions of §3.3: [value] maps an object to its tuple value,
    [project] extracts a tuple field (point-wise over collections), and
    comparisons over a collection operand are boolean collections. *)

val scalar_name : t list -> Lera.scalar -> string
(** Output attribute name for a projection item: column references keep
    their source name, [project(…, 'A')] is named [A], other calls are
    named after the function. *)

val of_rel : ?rvars:(string * t) list -> env -> Lera.rel -> t
(** Schema of an expression.  [rvars] gives the schemas of free recursion
    variables; for a [Fix] the recursion variable's schema is inferred
    from the arms of its body that do not use it.
    Raises {!Schema_error} on unknown relations, out-of-range columns or
    ill-typed operators. *)
