module Value = Eds_value.Value
module Collection = Eds_value.Collection
module Adt = Eds_value.Adt
module Lera = Eds_lera.Lera

exception Eval_error of string

let error fmt = Fmt.kstr (fun s -> raise (Eval_error s)) fmt

let rec eval db ~inputs (s : Lera.scalar) : Value.t =
  match s with
  | Lera.Cst v -> v
  | Lera.Col (i, j) -> (
    match List.nth_opt inputs (i - 1) with
    | None -> error "column %d.%d: %d operands available" i j (List.length inputs)
    | Some tup -> (
      match List.nth_opt tup (j - 1) with
      | Some v -> v
      | None -> error "column %d.%d: tuple has width %d" i j (List.length tup)))
  | Lera.Call ("and", args) ->
    Value.Bool (List.for_all (fun a -> to_bool (eval db ~inputs a)) args)
  | Lera.Call ("or", args) ->
    Value.Bool (List.exists (fun a -> to_bool (eval db ~inputs a)) args)
  | Lera.Call ("not", [ a ]) -> Value.Bool (not (to_bool (eval db ~inputs a)))
  | Lera.Call ("value", [ a ]) -> deref_deep db (eval db ~inputs a)
  | Lera.Call (f, args) -> (
    let vargs = List.map (eval db ~inputs) args in
    (* attribute-name-as-function sugar resolves to tuple projection when
       the registry does not know the name (paper §2.1: "an attribute in a
       nested tuple is designated using the attribute name as a function",
       with automatic VALUE insertion) *)
    match Adt.find (Database.adts db) f with
    | Some _ -> (
      try Adt.apply (Database.adts db) f vargs
      with Invalid_argument msg -> error "%s" msg)
    | None -> (
      match vargs with
      | [ v ] -> implicit_projection db f v
      | _ -> error "unknown function %s/%d" f (List.length vargs)))

and implicit_projection db field v =
  let project v =
    let bound =
      try Database.deref db v
      with Not_found -> error "dangling object reference %a" Value.pp v
    in
    match bound with
    | Value.Tuple fields -> (
      (* ESQL identifiers are case-insensitive *)
      let wanted = String.lowercase_ascii field in
      match
        List.find_opt (fun (n, _) -> String.lowercase_ascii n = wanted) fields
      with
      | Some (_, v') -> v'
      | None -> error "no attribute %s in %a" field Value.pp bound)
    | other -> error "cannot project %s out of %a" field Value.pp other
  in
  if Value.is_collection v then Collection.map project v else project v

and deref_deep db v =
  if Value.is_collection v then Collection.map (Database.deref db) v
  else
    try Database.deref db v
    with Not_found -> error "dangling object reference %a" Value.pp v

and to_bool = function
  | Value.Bool b -> b
  | Value.Null -> false
  | v -> error "expected a boolean, got %a" Value.pp v

let eval_bool db ~inputs s = to_bool (eval db ~inputs s)
