module Value = Eds_value.Value
module Vtype = Eds_value.Vtype
module Adt = Eds_value.Adt
module Schema = Eds_lera.Schema

type t = {
  mutable type_env : Vtype.env;
  mutable adt_registry : Adt.registry;
  relations : (string, Relation.t) Hashtbl.t;
  objects : (int, Value.t) Hashtbl.t;
  mutable next_oid : int;
}

let create ?types ?adts () =
  {
    type_env = Option.value types ~default:Vtype.empty_env;
    adt_registry = (match adts with Some r -> r | None -> Adt.builtins ());
    relations = Hashtbl.create 16;
    objects = Hashtbl.create 64;
    next_oid = 1;
  }

let types db = db.type_env
let adts db = db.adt_registry
let set_types db env = db.type_env <- env
let set_adts db reg = db.adt_registry <- reg

let add_relation db name rel = Hashtbl.replace db.relations name rel
let relation db name =
  match Hashtbl.find_opt db.relations name with
  | Some r -> r
  | None -> raise Not_found

let relation_opt db name = Hashtbl.find_opt db.relations name

let relation_names db =
  Hashtbl.fold (fun name _ acc -> name :: acc) db.relations [] |> List.sort String.compare

let insert db name tup =
  let rel = relation db name in
  add_relation db name (Relation.make rel.Relation.schema (tup :: rel.Relation.tuples))

let schema_env db =
  {
    Schema.types = db.type_env;
    Schema.relations =
      Hashtbl.fold (fun name r acc -> (name, r.Relation.schema) :: acc) db.relations [];
    Schema.adts = db.adt_registry;
  }

let restore_object db oid v =
  Hashtbl.replace db.objects oid v;
  if oid >= db.next_oid then db.next_oid <- oid + 1

let objects db =
  Hashtbl.fold (fun oid v acc -> (oid, v) :: acc) db.objects []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let new_object db v =
  let oid = db.next_oid in
  db.next_oid <- oid + 1;
  Hashtbl.replace db.objects oid v;
  Value.Oid oid

let deref db v =
  match v with
  | Value.Oid oid -> (
    match Hashtbl.find_opt db.objects oid with
    | Some bound -> bound
    | None -> raise Not_found)
  | Value.Null | Value.Bool _ | Value.Int _ | Value.Real _ | Value.Str _
  | Value.Enum _ | Value.Tuple _ | Value.Set _ | Value.Bag _ | Value.List _
  | Value.Array _ ->
    v

let update_object db oid v =
  match oid with
  | Value.Oid i ->
    if not (Hashtbl.mem db.objects i) then raise Not_found;
    Hashtbl.replace db.objects i v
  | Value.Null | Value.Bool _ | Value.Int _ | Value.Real _ | Value.Str _
  | Value.Enum _ | Value.Tuple _ | Value.Set _ | Value.Bag _ | Value.List _
  | Value.Array _ ->
    invalid_arg "Database.update_object: not an OID"
