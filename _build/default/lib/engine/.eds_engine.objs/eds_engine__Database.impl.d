lib/engine/database.ml: Eds_lera Eds_value Hashtbl Int List Option Relation String
