lib/engine/database.mli: Eds_lera Eds_value Relation
