lib/engine/expr_eval.mli: Database Eds_lera Eds_value Relation
