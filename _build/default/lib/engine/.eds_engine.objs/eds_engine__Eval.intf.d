lib/engine/eval.mli: Database Eds_lera Format Relation
