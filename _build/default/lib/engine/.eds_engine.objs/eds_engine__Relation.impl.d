lib/engine/relation.ml: Eds_lera Eds_value Fmt List
