lib/engine/relation.mli: Eds_lera Eds_value Format
