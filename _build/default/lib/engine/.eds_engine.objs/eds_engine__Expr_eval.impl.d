lib/engine/expr_eval.ml: Database Eds_lera Eds_value Fmt List String
