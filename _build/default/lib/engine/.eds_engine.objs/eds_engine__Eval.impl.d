lib/engine/eval.ml: Database Eds_lera Eds_value Expr_eval Fmt List Relation String
