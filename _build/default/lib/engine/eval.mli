(** Instrumented LERA plan evaluator.

    This is the execution substrate used to {e measure} the benefit of
    each rewriting class: every operator reports the work it performs
    into a {!stats} record (combinations enumerated by joins/searches,
    base tuples scanned, fixpoint iterations), so benchmarks compare the
    work of a query before and after rewriting rather than wall time
    alone.

    Evaluation is deliberately naive — qualifications are applied to
    complete operand combinations, not pushed inside the enumeration —
    because query rewriting, not physical optimization, is the paper's
    subject: the rewriter's merging/permutation rules are precisely what
    reduces the enumerated space. *)

module Lera = Eds_lera.Lera

type stats = {
  mutable combinations : int;
      (** operand combinations enumerated by filter/join/search *)
  mutable tuples_read : int;  (** base relation tuples scanned *)
  mutable tuples_produced : int;
  mutable fix_iterations : int;
}

val fresh_stats : unit -> stats
val add_stats : stats -> stats -> unit
val pp_stats : Format.formatter -> stats -> unit

(** Fixpoint evaluation strategy (paper §3.2). *)
type fix_mode =
  | Naive  (** recompute the whole body each cycle *)
  | Seminaive  (** differential: recursive arms join against the delta *)

exception Eval_error of string

val run :
  ?mode:fix_mode ->
  ?stats:stats ->
  ?rvars:(string * Relation.t) list ->
  Database.t ->
  Lera.rel ->
  Relation.t
(** Evaluate an expression.  [rvars] supplies bindings for free recursion
    variables (used internally and by tests).  Default mode is
    [Seminaive].  Raises {!Eval_error} (or {!Expr_eval.Eval_error}) on
    ill-formed plans. *)
