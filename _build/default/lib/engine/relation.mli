(** In-memory relations.

    Relations have set semantics: construction deduplicates tuples, which
    is what guarantees termination of the fixpoint operator (paper §3.2).
    A tuple is a list of {!Value.t}, one per schema attribute. *)

module Value = Eds_value.Value
module Schema = Eds_lera.Schema

type tuple = Value.t list

type t = private {
  schema : Schema.t;
  tuples : tuple list;  (** sorted, duplicate-free *)
}

val make : Schema.t -> tuple list -> t
(** Sorts and deduplicates.  Raises [Invalid_argument] if a tuple's width
    differs from the schema's arity. *)

val empty : Schema.t -> t
val cardinality : t -> int
val is_empty : t -> bool
val mem : tuple -> t -> bool
val equal : t -> t -> bool
(** Same tuple sets (schemas are not compared beyond arity). *)

val union : t -> t -> t
val diff : t -> t -> t
val inter : t -> t -> t

val compare_tuples : tuple -> tuple -> int

val pp : Format.formatter -> t -> unit
(** Tabular dump, one tuple per line. *)
