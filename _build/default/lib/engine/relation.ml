module Value = Eds_value.Value
module Schema = Eds_lera.Schema

type tuple = Value.t list

type t = {
  schema : Schema.t;
  tuples : tuple list;
}

let compare_tuples a b =
  let rec go xs ys =
    match xs, ys with
    | [], [] -> 0
    | [], _ :: _ -> -1
    | _ :: _, [] -> 1
    | x :: xs', y :: ys' ->
      let c = Value.compare x y in
      if c <> 0 then c else go xs' ys'
  in
  go a b

let make schema tuples =
  let width = Schema.arity schema in
  List.iter
    (fun tup ->
      if List.length tup <> width then
        invalid_arg
          (Fmt.str "Relation.make: tuple width %d differs from arity %d"
             (List.length tup) width))
    tuples;
  { schema; tuples = List.sort_uniq compare_tuples tuples }

let empty schema = { schema; tuples = [] }
let cardinality r = List.length r.tuples
let is_empty r = r.tuples = []

let mem tup r =
  List.exists (fun t -> compare_tuples tup t = 0) r.tuples

let equal a b =
  List.length a.tuples = List.length b.tuples
  && List.for_all2 (fun x y -> compare_tuples x y = 0) a.tuples b.tuples

let union a b = make a.schema (a.tuples @ b.tuples)

let diff a b =
  { a with tuples = List.filter (fun t -> not (mem t b)) a.tuples }

let inter a b = { a with tuples = List.filter (fun t -> mem t b) a.tuples }

let pp ppf r =
  let names = List.map fst r.schema in
  Fmt.pf ppf "%a@." (Fmt.list ~sep:(Fmt.any " | ") Fmt.string) names;
  List.iter
    (fun tup ->
      Fmt.pf ppf "%a@." (Fmt.list ~sep:(Fmt.any " | ") Value.pp) tup)
    r.tuples
