(** Evaluation of LERA scalar expressions (qualifications and projection
    expressions, paper §3.3–3.4).

    Column references are resolved against one tuple per operand of the
    enclosing operator; ADT calls go through the database's function
    registry; [value] dereferences the object store point-wise. *)

module Value = Eds_value.Value

exception Eval_error of string

val eval : Database.t -> inputs:Relation.tuple list -> Eds_lera.Lera.scalar -> Value.t
(** Raises {!Eval_error} on unknown functions, bad column references or
    ill-typed applications. *)

val eval_bool : Database.t -> inputs:Relation.tuple list -> Eds_lera.Lera.scalar -> bool
(** Like {!eval} but coerces the result to a boolean ([Null] is false,
    three-valued logic collapsed as in the paper's strict conditions). *)
