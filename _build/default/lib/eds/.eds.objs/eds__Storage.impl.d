lib/eds/storage.ml: Buffer Eds_engine Eds_esql Eds_value Fmt Hashtbl In_channel List Out_channel Session String
