lib/eds/storage.mli: Session
