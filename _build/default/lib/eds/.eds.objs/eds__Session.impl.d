lib/eds/session.ml: Eds_engine Eds_esql Eds_lera Eds_rewriter Eds_term Eds_value Fmt List Logs Option String
