module Value = Eds_value.Value

type binding =
  | One of Term.t
  | Many of Term.ckind * Term.t list

module Smap = Map.Make (String)

type t = binding Smap.t

let empty = Smap.empty
let is_empty = Smap.is_empty
let bindings s = Smap.bindings s
let find s x = Smap.find_opt x s

let find_term s x =
  match Smap.find_opt x s with
  | Some (One t) -> Some t
  | Some (Many (k, ts)) -> Some (Term.Coll (k, ts))
  | None -> None

let binding_equal a b =
  match a, b with
  | One x, One y -> Term.equal x y
  | Many (k, xs), Many (k', ys) ->
    k = k' && Term.equal (Term.Coll (k, xs)) (Term.Coll (k', ys))
  | One _, Many _ | Many _, One _ -> false

let bind s x b =
  match Smap.find_opt x s with
  | None -> Some (Smap.add x b s)
  | Some b' -> if binding_equal b b' then Some s else None

let bind_exn s x b =
  match bind s x b with
  | Some s' -> s'
  | None -> invalid_arg (Fmt.str "Subst.bind_exn: conflicting binding for %s" x)

let rec apply s t =
  match t with
  | Term.Var x -> ( match find_term s x with Some u -> u | None -> t)
  | Term.Cvar x -> ( match find_term s x with Some u -> u | None -> t)
  | Term.Cst _ -> t
  | Term.App (f, args) ->
    (* function variables resolve to the matched symbol; collection
       variables splice into argument lists just as in constructors *)
    let head =
      if Term.is_fvar f then begin
        match Smap.find_opt f s with
        | Some (One (Term.Cst (Value.Str g))) -> g
        | Some _ | None -> f
      end
      else f
    in
    Term.App (head, List.concat_map (splice s) args)
  | Term.Coll (k, args) -> Term.Coll (k, List.concat_map (splice s) args)

(* Inside a collection constructor, a bound collection variable splices its
   elements; every other argument substitutes to a single term. *)
and splice s t =
  match t with
  | Term.Cvar x -> (
    match Smap.find_opt x s with
    | Some (Many (_, ts)) -> List.map (apply s) ts
    | Some (One u) -> [ u ]
    | None -> [ t ])
  | Term.Var _ | Term.Cst _ | Term.App _ | Term.Coll _ -> [ apply s t ]

let pp ppf s =
  let pp_binding ppf (x, b) =
    match b with
    | One t -> Fmt.pf ppf "%s ↦ %a" x Term.pp t
    | Many (k, ts) -> Fmt.pf ppf "%s* ↦ %a" x Term.pp (Term.Coll (k, ts))
  in
  Fmt.pf ppf "{%a}" (Fmt.list ~sep:(Fmt.any "; ") pp_binding) (bindings s)
