(** Substitutions binding variables to terms and collection variables to
    sub-collections (paper §4.1).

    A collection variable is bound to a {e list} of terms tagged with the
    kind of the constructor it was matched inside.  Applying a
    substitution splices such bindings into enclosing collection
    constructors ([LIST(x*, t)] with [x* ↦ [a; b]] becomes
    [LIST(a, b, t')]); a collection variable used directly as a function
    argument — e.g. the right-hand side [append(x*, z, w)] of Figure 7 —
    denotes the sub-collection itself and becomes a collection
    constructor. *)

type binding =
  | One of Term.t
  | Many of Term.ckind * Term.t list

type t

val empty : t
val is_empty : t -> bool
val bindings : t -> (string * binding) list

val find : t -> string -> binding option
val find_term : t -> string -> Term.t option
(** Like {!find} but a [Many] binding is returned as a collection
    constructor term. *)

val bind : t -> string -> binding -> t option
(** [bind s x b] extends [s]; if [x] is already bound the result is
    [Some s] when the existing binding is {!binding_equal} to [b] and
    [None] otherwise (non-linear patterns). *)

val bind_exn : t -> string -> binding -> t
(** Like {!bind} but raises [Invalid_argument] on conflict — for methods
    that compute fresh output bindings. *)

val binding_equal : binding -> binding -> bool
(** [Many] bindings of unordered kinds compare as multisets. *)

val apply : t -> Term.t -> Term.t
(** Apply the substitution.  Unbound variables are left in place (rule
    right-hand sides may contain method-output variables that are bound
    later). *)

val pp : Format.formatter -> t -> unit
