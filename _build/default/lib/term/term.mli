(** Terms of the rewriting formalism (paper §4.1, Figure 6).

    A term is a variable, a collection variable ([x*]), a constant, a
    function application [F(t1, …, tn)] — where F may be a LERA operator
    interpreted as a function, an ADT function or an optimizer built-in —
    or a collection constructor [SET(…)], [BAG(…)], [LIST(…)], [ARRAY(…)],
    [TUPLE(…)].

    Collection variables are symbols representing sub-collections; they
    only occur inside collection constructors, where they let one rule
    handle argument lists of any length (e.g. the n-ary search merging
    rule of Figure 7). *)

module Value = Eds_value.Value


type ckind = Set | Bag | List | Array | Tuple

type t =
  | Var of string
  | Cvar of string  (** collection variable, written [x*] *)
  | Cst of Value.t
  | App of string * t list  (** function symbols are stored lowercase *)
  | Coll of ckind * t list

val app : string -> t list -> t
(** Smart constructor: lowercases the function symbol, the convention used
    throughout (the concrete rule syntax is case-insensitive). *)

val fvar : string -> string
(** [fvar "f"] is the {e function variable} symbol written [F] in the
    paper's grammar (Figure 6: [<function variable> ::= F | G | H | …]).
    A pattern [App (fvar "f", args)] matches an application with {e any}
    head symbol and binds the symbol name; see {!Matcher}.  Encoded as a
    ["?"]-prefixed symbol. *)

val is_fvar : string -> bool
val fvar_name : string -> string
(** Inverse of {!fvar}; raises [Invalid_argument] if {!is_fvar} is false. *)

val var : string -> t
val cvar : string -> t
val cst : Value.t -> t
val int : int -> t
val str : string -> t
val bool : t -> bool option
(** [bool t] is [Some b] iff [t] is the constant true/false. *)

val tru : t
val fls : t

val equal : t -> t -> bool
(** Structural equality, {e modulo ordering} inside [Set] and [Bag]
    constructors (their argument lists are compared as multisets). *)

val compare : t -> t -> int
(** Total order compatible with {!equal}. *)

val kind_name : ckind -> string

val pp : Format.formatter -> t -> unit
(** Rule-language concrete syntax: [search(list(r1, r2), and(bag(…)), …)]. *)

val to_string : t -> string

val size : t -> int
(** Number of nodes — the paper's measure for termination arguments
    ("subsets of rewriting rules … either increase or decrease the number
    of terms in a query"). *)

val vars : t -> string list
(** Names of all variables and collection variables, without duplicates. *)

val is_ground : t -> bool

val subterms : t -> t list
(** The term and all its subterms, pre-order. *)

val map_children : (t -> t) -> t -> t

val fold : ('a -> t -> 'a) -> 'a -> t -> 'a
(** Pre-order fold over all subterms. *)
