lib/term/matcher.mli: Seq Subst Term
