lib/term/term.mli: Eds_value Format
