lib/term/term.ml: Eds_value Fmt Int List String
