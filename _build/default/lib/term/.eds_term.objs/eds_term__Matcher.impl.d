lib/term/matcher.ml: Eds_value Fmt List Option Seq String Subst Term
