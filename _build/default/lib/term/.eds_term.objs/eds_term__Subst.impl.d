lib/term/subst.ml: Eds_value Fmt List Map String Term
