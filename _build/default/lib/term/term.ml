module Value = Eds_value.Value

type ckind = Set | Bag | List | Array | Tuple

type t =
  | Var of string
  | Cvar of string
  | Cst of Value.t
  | App of string * t list
  | Coll of ckind * t list

let app f args = App (String.lowercase_ascii f, args)

let fvar name = "?" ^ String.lowercase_ascii name
let is_fvar symbol = String.length symbol > 0 && symbol.[0] = '?'

let fvar_name symbol =
  if not (is_fvar symbol) then invalid_arg ("Term.fvar_name: " ^ symbol);
  String.sub symbol 1 (String.length symbol - 1)
let var x = Var x
let cvar x = Cvar x
let cst v = Cst v
let int i = Cst (Value.Int i)
let str s = Cst (Value.Str s)

let bool = function
  | Cst (Value.Bool b) -> Some b
  | Cst (Value.Null | Value.Int _ | Value.Real _ | Value.Str _ | Value.Enum _
        | Value.Oid _ | Value.Tuple _ | Value.Set _ | Value.Bag _ | Value.List _
        | Value.Array _)
  | Var _ | Cvar _ | App _ | Coll _ ->
    None

let tru = Cst (Value.Bool true)
let fls = Cst (Value.Bool false)

let kind_rank = function Set -> 0 | Bag -> 1 | List -> 2 | Array -> 3 | Tuple -> 4

let rank = function
  | Var _ -> 0
  | Cvar _ -> 1
  | Cst _ -> 2
  | App _ -> 3
  | Coll _ -> 4

(* Set and Bag argument lists compare as multisets: they are sorted before
   the pairwise comparison, which makes equal/compare order-insensitive
   inside unordered constructors. *)
let rec compare a b =
  match a, b with
  | Var x, Var y | Cvar x, Cvar y -> String.compare x y
  | Cst u, Cst v -> Value.compare u v
  | App (f, xs), App (g, ys) ->
    let c = String.compare f g in
    if c <> 0 then c else compare_lists xs ys
  | Coll (k, xs), Coll (k', ys) ->
    let c = Int.compare (kind_rank k) (kind_rank k') in
    if c <> 0 then c
    else begin
      match k with
      | Set | Bag -> compare_lists (List.sort compare xs) (List.sort compare ys)
      | List | Array | Tuple -> compare_lists xs ys
    end
  | (Var _ | Cvar _ | Cst _ | App _ | Coll _), _ -> Int.compare (rank a) (rank b)

and compare_lists xs ys =
  match xs, ys with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | x :: xs', y :: ys' ->
    let c = compare x y in
    if c <> 0 then c else compare_lists xs' ys'

let equal a b = compare a b = 0

let kind_name = function
  | Set -> "set"
  | Bag -> "bag"
  | List -> "list"
  | Array -> "array"
  | Tuple -> "tuple"

(* printed infix, parenthesized, so that the printer's output reparses *)
let infix_symbols = [ "="; "<>"; "<"; "<="; ">"; ">="; "+"; "-"; "*" ]

let rec pp ppf = function
  | Var x ->
    if is_fvar x then Fmt.string ppf (String.uppercase_ascii (fvar_name x))
    else Fmt.string ppf x
  | Cvar x -> Fmt.pf ppf "%s*" x
  | Cst v -> Value.pp ppf v
  | App (f, [ a; b ]) when List.mem f infix_symbols ->
    Fmt.pf ppf "(%a %s %a)" pp a f pp b
  | App (f, []) -> Fmt.pf ppf "%s()" (head_name f)
  | App (f, args) -> Fmt.pf ppf "%s(%a)" (head_name f) pp_args args
  | Coll (k, args) -> Fmt.pf ppf "%s(%a)" (kind_name k) pp_args args

and head_name f = if is_fvar f then String.uppercase_ascii (fvar_name f) else f

and pp_args ppf args = Fmt.list ~sep:(Fmt.any ", ") pp ppf args

let to_string t = Fmt.str "%a" pp t

let rec size = function
  | Var _ | Cvar _ | Cst _ -> 1
  | App (_, args) | Coll (_, args) -> List.fold_left (fun n t -> n + size t) 1 args

let vars t =
  let rec go acc = function
    | Var x | Cvar x -> if List.mem x acc then acc else x :: acc
    | Cst _ -> acc
    | App (_, args) | Coll (_, args) -> List.fold_left go acc args
  in
  List.rev (go [] t)

let rec is_ground = function
  | Var _ | Cvar _ -> false
  | Cst _ -> true
  | App (_, args) | Coll (_, args) -> List.for_all is_ground args

let subterms t =
  let rec go acc = function
    | (Var _ | Cvar _ | Cst _) as u -> u :: acc
    | (App (_, args) | Coll (_, args)) as u -> List.fold_left go (u :: acc) args
  in
  List.rev (go [] t)

let map_children f = function
  | (Var _ | Cvar _ | Cst _) as t -> t
  | App (g, args) -> App (g, List.map f args)
  | Coll (k, args) -> Coll (k, List.map f args)

let fold f acc t = List.fold_left f acc (subterms t)
