(* Workload generators for the benchmark harness: databases and queries
   sized for measurement (the test-suite fixtures are tiny on purpose). *)

module Value = Eds_value.Value
module Vtype = Eds_value.Vtype
module Lera = Eds_lera.Lera
module Relation = Eds_engine.Relation
module Database = Eds_engine.Database
module Session = Eds.Session

(* deterministic pseudo-random stream *)
let make_rng seed =
  let state = ref seed in
  fun bound ->
    state := (!state * 1103515245) + 12345;
    abs !state mod bound

(* -- graphs for fixpoint experiments ------------------------------------ *)

let edge_schema = [ ("Src", Vtype.Int); ("Dst", Vtype.Int) ]

let chain_db n =
  let db = Database.create () in
  let edges = List.init (n - 1) (fun i -> [ Value.Int (i + 1); Value.Int (i + 2) ]) in
  Database.add_relation db "EDGE" (Relation.make edge_schema edges);
  db

(* clustered graph: [clusters] disjoint random components of [nodes]
   vertices each — closures are large, per-source reachability small *)
let clustered_db ~clusters ~nodes ~edges_per_cluster =
  let db = Database.create () in
  let rng = make_rng 20260706 in
  let tuples = ref [] in
  for c = 0 to clusters - 1 do
    let base = c * nodes in
    (* a spanning chain keeps each cluster connected *)
    for i = 1 to nodes - 1 do
      tuples := [ Value.Int (base + i); Value.Int (base + i + 1) ] :: !tuples
    done;
    for _ = 1 to edges_per_cluster - (nodes - 1) do
      let a = base + 1 + rng nodes and b = base + 1 + rng nodes in
      tuples := [ Value.Int a; Value.Int b ] :: !tuples
    done
  done;
  Database.add_relation db "EDGE" (Relation.make edge_schema !tuples);
  db

let tc_fix =
  Lera.Fix
    ( "TC",
      Lera.Union
        [
          Lera.Base "EDGE";
          Lera.Search
            ( [ Lera.Base "TC"; Lera.Base "TC" ],
              Lera.eq (Lera.col 1 2) (Lera.col 2 1),
              [ Lera.col 1 1; Lera.col 2 2 ] );
        ] )

let reachable_from c =
  Lera.Search
    ( [ tc_fix ],
      Lera.eq (Lera.col 1 1) (Lera.Cst (Value.Int c)),
      [ Lera.col 1 2 ] )

(* -- the film schema at size ------------------------------------------- *)

let film_ddl =
  {|
  TYPE Category ENUMERATION OF ('Comedy', 'Adventure', 'Science Fiction', 'Western') ;
  TYPE Point TUPLE (ABS : REAL, ORD : REAL) ;
  TYPE Person OBJECT TUPLE (Name : CHAR, Firstname : SET OF CHAR, Caricature : LIST OF Point) ;
  TYPE Actor SUBTYPE OF Person OBJECT TUPLE (Salary : NUMERIC) ;
  TYPE Text LIST OF CHAR ;
  TYPE SetCategory SET OF Category ;
  TYPE Pairs LIST OF TUPLE (Pros : INT, Cons : INT) ;
  TABLE FILM (Numf : NUMERIC, Title : Text, Categories : SetCategory) ;
  TABLE APPEARS_IN (Numf : NUMERIC, Refactor : Actor) ;
  TABLE DOMINATE (Numf : NUMERIC, Refactor1 : Actor, Refactor2 : Actor, Score : Pairs) ;
  CREATE VIEW FilmActors (Title, Categories, Actors) AS
    SELECT Title, Categories, MakeSet(Refactor)
    FROM FILM, APPEARS_IN
    WHERE FILM.Numf = APPEARS_IN.Numf
    GROUP BY Title, Categories ;
  CREATE VIEW BETTER_THAN (Refactor1, Refactor2) AS
    ( SELECT Refactor1, Refactor2 FROM DOMINATE
      UNION
      SELECT B1.Refactor1, B2.Refactor2
      FROM BETTER_THAN B1, BETTER_THAN B2
      WHERE B1.Refactor2 = B2.Refactor1 ) ;
|}

let categories = [ "Comedy"; "Adventure"; "Science Fiction"; "Western" ]

(* a session holding [films] films and [actors] actors, every film cast
   with 1-4 actors *)
let film_session ~films ~actors =
  let s = Session.create () in
  ignore (Session.exec_script s film_ddl);
  let rng = make_rng 42 in
  let actor_refs =
    Array.init actors (fun i ->
        Session.new_object s
          (Value.tuple
             [
               ("Name", Value.Str (Fmt.str "actor%d" i));
               ("Firstname", Value.set []);
               ("Caricature", Value.list []);
               ("Salary", Value.Real (float_of_int (5_000 + rng 30_000)));
             ]))
  in
  let db = Session.database s in
  for f = 1 to films do
    let cats =
      Value.set
        (List.filteri
           (fun i _ -> (f + i) mod (2 + rng 2) = 0)
           (List.map (fun c -> Value.Enum ("Category", c)) categories))
    in
    Database.insert db "FILM"
      [ Value.Int f; Value.list [ Value.Str (Fmt.str "film%d" f) ]; cats ];
    let cast = 1 + rng 4 in
    for _ = 1 to cast do
      Database.insert db "APPEARS_IN" [ Value.Int f; actor_refs.(rng actors) ]
    done
  done;
  (* a sparse domination tournament *)
  for _ = 1 to actors do
    Database.insert db "DOMINATE"
      [
        Value.Int (1 + rng films);
        actor_refs.(rng actors);
        actor_refs.(rng actors);
        Value.list [];
      ]
  done;
  s

(* a stack of [depth] views, each selecting from the previous one, to
   exercise the merging rules *)
let view_stack_session ~depth =
  let s = Session.create () in
  ignore
    (Session.exec_script s
       {|TABLE BASE (A : NUMERIC, B : NUMERIC, C : NUMERIC) ;|});
  let db = Session.database s in
  let rng = make_rng 7 in
  for _ = 1 to 200 do
    Database.insert db "BASE"
      [ Value.Int (rng 100); Value.Int (rng 100); Value.Int (rng 100) ]
  done;
  for i = 1 to depth do
    let prev = if i = 1 then "BASE" else Fmt.str "V%d" (i - 1) in
    ignore
      (Session.exec_string s
         (Fmt.str "CREATE VIEW V%d (A, B, C) AS SELECT A, B, C FROM %s WHERE A > %d"
            i prev i))
  done;
  s

(* the rewrite-engine instrumentation subject (EXPERIMENTS.md E1): the
   query over the deepest view, translated but not yet rewritten, plus a
   rewriting context — the merging rules then have [depth] successive
   searches to collapse, so the term goes through many rewrite steps *)
let view_stack_rewrite ~depth =
  let s = view_stack_session ~depth in
  let cat = Session.catalog s in
  let translated =
    Eds_esql.Translate.select cat
      (Eds_esql.Parser.parse_select (Fmt.str "SELECT A FROM V%d WHERE B > 50" depth))
  in
  let ctx = Eds_rewriter.Optimizer.make_ctx (Eds_esql.Catalog.schema_env cat) in
  (ctx, translated)

(* Work of a plan under the naive physical layer — the counter source of
   every paper-shape (F/C/A) experiment: the rewriter's benefit is the
   shrinkage of the enumerated space, which the indexed hash joins would
   collapse on their own.  E2 compares the two layers explicitly. *)
let eval_work db rel =
  let stats = Eds_engine.Eval.fresh_stats () in
  ignore (Eds_engine.Eval.run ~physical:Eds_engine.Eval.Physical.Naive ~stats db rel);
  stats

let eval_work_physical physical db rel =
  let stats = Eds_engine.Eval.fresh_stats () in
  let result = Eds_engine.Eval.run ~physical ~stats db rel in
  (stats, result)

(* -- E2 scaling workload: a three-way chain join ------------------------- *)

(* R(A, J) ⋈ S(J, K) ⋈ T(K, B): the naive layer enumerates
   |R|·|S|·|T| combinations, the indexed layer touches each tuple
   roughly once per hash step, so the gap widens cubically with size *)
let chain_join_db ~size =
  let db = Database.create () in
  let rng = make_rng 31415 in
  let two a b = [ (a, Vtype.Int); (b, Vtype.Int) ] in
  let mk n = List.init n (fun i -> [ Value.Int i; Value.Int (rng size) ]) in
  Database.add_relation db "R" (Relation.make (two "A" "J") (mk size));
  Database.add_relation db "S"
    (Relation.make (two "J" "K")
       (List.init (2 * size) (fun i -> [ Value.Int (rng size); Value.Int (i mod size) ])));
  Database.add_relation db "T" (Relation.make (two "K" "B") (mk size));
  db

let chain_join_query =
  Lera.Search
    ( [ Lera.Base "R"; Lera.Base "S"; Lera.Base "T" ],
      Lera.conj
        [
          Lera.eq (Lera.col 1 2) (Lera.col 2 1);
          Lera.eq (Lera.col 2 2) (Lera.col 3 1);
        ],
      [ Lera.col 1 1; Lera.col 3 2 ] )

(* -- E3 workload: fat-intermediate chain for the parallel layer ---------- *)

(* R(A,J) ⋈ S(J,K) ⋈ T(K,B) with all three relations the same
   cardinality, so the greedy join order cannot pick a small driver:
   R→S fans out by ~[fan] (J ranges over size/fan groups) and T keeps
   only 1 in 64 of the fanned tuples (its keys are the multiples of
   64).  The pipelined parallel executor streams the fat R⋈S middle
   through the T probe without ever materialising it; the sequential
   indexed layer builds the whole intermediate combination list. *)
let par_chain_db ~size ~fan =
  let db = Database.create () in
  let rng = make_rng 31415 in
  let two a b = [ (a, Vtype.Int); (b, Vtype.Int) ] in
  let groups = max 1 (size / fan) in
  Database.add_relation db "R"
    (Relation.make (two "A" "J")
       (List.init size (fun i -> [ Value.Int i; Value.Int (rng groups) ])));
  Database.add_relation db "S"
    (Relation.make (two "J" "K")
       (List.init size (fun i -> [ Value.Int (rng groups); Value.Int i ])));
  Database.add_relation db "T"
    (Relation.make (two "K" "B")
       (List.init size (fun i -> [ Value.Int (64 * i); Value.Int i ])));
  db

let par_chain_query = chain_join_query
