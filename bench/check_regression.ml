(* Bench-counter regression gate (CI).

   Usage: check_regression.exe COMMITTED.json FRESH.json

   Compares the [counters] object of a freshly generated benchmark
   snapshot against the committed BENCH_rewriter.json.  The counters are
   deterministic (seeded workloads), so the gate is strict:

   - every {e work} counter — a key naming combinations, probes, builds,
     condition checks, match attempts, rewrites or iterations — may only
     decrease or hold; an increase is a performance regression and fails
     the build;
   - boolean counters (equivalence assertions) must not go true→false;
   - a key present in the committed file but absent from the fresh run
     fails (a silently dropped measurement is not an improvement).

   New keys in the fresh run are fine: they are measurements added by the
   change under test and become binding once committed. *)

module Json = Eds_obs.Obs.Json

let work_markers =
  [
    "combinations";
    "probes";
    "builds";
    "conditions";
    "condition_checks";
    "checks";
    "attempts";
    "rewrites";
    "iterations";
    (* server-side integrity counters (E4): committed at zero, so any
       increase — a dropped connection, a malformed frame, a refused or
       failed request — fails the gate *)
    "dropped";
    "protocol_errors";
    "busy_refusals";
    "error_responses";
    (* plan-cache misses may only shrink: each one is a full
       parse → translate → rewrite the cache failed to amortize *)
    "misses";
    (* E5: snapshot reads are lock-free — committed at zero, so any
       read-lock acquisition fails the gate; response mismatches against
       the oracle replay likewise *)
    "read_lock";
    "mismatch";
    (* E7: allocation (kilowords per run) of the columnar/boxed hot
       loops — allocation is deterministic for a seeded workload, so a
       growth means a chunked loop started boxing per tuple again *)
    "alloc";
  ]

let is_work_key key =
  let has sub =
    let n = String.length sub and k = String.length key in
    let rec at i = i + n <= k && (String.sub key i n = sub || at (i + 1)) in
    at 0
  in
  List.exists has work_markers

let die fmt = Fmt.kstr (fun s -> prerr_endline s; exit 1) fmt

let load path =
  let text = In_channel.with_open_text path In_channel.input_all in
  match Json.parse text with
  | Ok j -> j
  | Error msg -> die "%s: invalid JSON: %s" path msg

let counters path j =
  match Json.member "counters" j with
  | Some (Json.Obj kvs) -> kvs
  | Some _ | None -> die "%s: no counters object" path

let () =
  let committed_path, fresh_path =
    match Sys.argv with
    | [| _; a; b |] -> (a, b)
    | _ -> die "usage: check_regression COMMITTED.json FRESH.json"
  in
  let committed = counters committed_path (load committed_path) in
  let fresh = counters fresh_path (load fresh_path) in
  let failures = ref 0 in
  let checked = ref 0 in
  let fail fmt = Fmt.kstr (fun s -> incr failures; prerr_endline ("FAIL " ^ s)) fmt in
  List.iter
    (fun (key, old_v) ->
      match (old_v, List.assoc_opt key fresh) with
      | _, None -> fail "%s: present in %s but missing from the fresh run" key committed_path
      | Json.Int old_n, Some (Json.Int new_n) ->
        if is_work_key key then begin
          incr checked;
          if new_n > old_n then
            fail "%s: work counter regressed %d -> %d" key old_n new_n
        end
      | Json.Bool old_b, Some (Json.Bool new_b) ->
        incr checked;
        if old_b && not new_b then fail "%s: assertion went true -> false" key
      | _, Some new_v ->
        if old_v <> new_v && is_work_key key then
          fail "%s: type changed (%s -> %s)" key (Json.to_string old_v)
            (Json.to_string new_v))
    committed;
  if !failures > 0 then begin
    Fmt.epr "%d bench regression(s) against %s@." !failures committed_path;
    exit 1
  end;
  Fmt.pr "bench regression gate: %d counters checked against %s, none regressed@."
    !checked committed_path
