(* loadgen — drive a running edsd with N concurrent clients over the
   paper-shape workload in {!Eds_server.Loadtest}, print the outcome and
   exit non-zero on any dropped connection, protocol error, error
   response or (with --verify) payload mismatch.  The CI smoke job runs
   it against a background edsd. *)

module Session = Eds.Session
module Client = Eds_server.Client
module Loadtest = Eds_server.Loadtest

open Cmdliner

let host_arg =
  Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"ADDR"
         ~doc:"Server address.")

let port_arg =
  Arg.(required & opt (some int) None & info [ "p"; "port" ] ~docv:"PORT"
         ~doc:"Server port.")

let clients_arg =
  Arg.(value & opt int 4 & info [ "clients" ] ~docv:"N"
         ~doc:"Concurrent connections.")

let per_client_arg =
  Arg.(value & opt int 50 & info [ "per-client" ] ~docv:"N"
         ~doc:"Requests per connection.")

let setup_arg =
  Arg.(value & flag & info [ "setup" ]
         ~doc:"Create and populate the workload tables over the wire first \
               (do this once per server).")

let verify_arg =
  Arg.(value & flag & info [ "verify" ]
         ~doc:"Replay the workload on a local session and require every \
               response to match byte-for-byte.")

let mixed_arg =
  Arg.(value & flag & info [ "mixed" ]
         ~doc:"Mixed read/write workload: each client writes to a private \
               table and interleaves shared reads; every response (write \
               acks included) is verified against a local oracle replay.")

let mview_arg =
  Arg.(value & flag & info [ "mview" ]
         ~doc:"Materialized-view workload: each client maintains a private \
               recursive materialized view under interleaved DML, reads and \
               REFRESHes; every response is verified against a local oracle \
               replay.")

let check_percentiles_arg =
  Arg.(value & flag & info [ "check-percentiles" ]
         ~doc:"Fail unless the client-side p50/p95/p99 agree with the \
               server-side METRICS PROM latency histogram within one \
               log2 bucket.")

let main host port clients per_client setup verify mixed mview check_percentiles =
  if setup then begin
    let c =
      try Client.connect ~host port with
      | Unix.Unix_error (e, _, _) ->
        Fmt.epr "loadgen: cannot connect to %s:%d: %s@." host port
          (Unix.error_message e);
        exit 1
    in
    (try Loadtest.setup_over_wire c with
     | Failure msg ->
       Fmt.epr "loadgen: setup failed: %s@." msg;
       Client.close c;
       exit 1);
    Client.close c;
    Fmt.pr "loadgen: workload schema + data installed@."
  end;
  let expected =
    if verify || mixed || mview then begin
      let twin = Session.create () in
      Loadtest.apply_setup twin;
      Loadtest.expected_payloads twin
    end
    else []
  in
  let o =
    if mview then Loadtest.run_mview ~host ~expected ~port ~clients ~per_client ()
    else if mixed then
      Loadtest.run_mixed ~host ~expected ~port ~clients ~per_client ()
    else Loadtest.run ~host ~expected ~port ~clients ~per_client ()
  in
  Loadtest.pp_outcome Fmt.stdout o;
  let failed =
    o.Loadtest.dropped_connections > 0
    || o.Loadtest.protocol_errors > 0
    || o.Loadtest.errors > 0
    || o.Loadtest.busy > 0
    || ((verify || mixed || mview) && not o.Loadtest.bit_identical)
    || (check_percentiles && not o.Loadtest.percentiles_agree)
  in
  if failed then begin
    Fmt.epr "loadgen: FAILED@.";
    exit 1
  end

let cmd =
  let doc = "concurrent load generator for the edsd query server" in
  Cmd.v (Cmd.info "loadgen" ~doc)
    Term.(const main $ host_arg $ port_arg $ clients_arg $ per_client_arg
          $ setup_arg $ verify_arg $ mixed_arg $ mview_arg
          $ check_percentiles_arg)

let () = exit (Cmd.eval cmd)
