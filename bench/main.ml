(* Benchmark harness.

   Running `dune exec bench/main.exe` prints (1) the deterministic
   per-figure experiment report (work counters — see EXPERIMENTS.md) and
   (2) Bechamel wall-clock benchmarks, one per experiment.  Pass
   `--report-only` or `--bechamel-only` to restrict. *)

open Bechamel
open Toolkit

module Lera = Eds_lera.Lera
module Eval = Eds_engine.Eval
module Database = Eds_engine.Database
module Rule = Eds_rewriter.Rule
module Rulesets = Eds_rewriter.Rulesets
module Optimizer = Eds_rewriter.Optimizer
module Session = Eds.Session

(* -- bechamel test cases ------------------------------------------------ *)

let t_collections =
  let elems = List.init 500 (fun i -> Eds_value.Value.Int i) in
  let a = Eds_value.Value.set elems in
  let b = Eds_value.Value.set (List.init 500 (fun i -> Eds_value.Value.Int (i + 250))) in
  Test.make ~name:"fig1/set union+inter (500 elems)"
    (Staged.stage (fun () ->
         ignore (Eds_value.Collection.union a b);
         ignore (Eds_value.Collection.inter a b)))

let fig3_query =
  {|SELECT Title, Categories, Salary(Refactor)
    FROM FILM, APPEARS_IN
    WHERE FILM.Numf = APPEARS_IN.Numf AND Name(Refactor) = 'actor1'
      AND MEMBER('Adventure', Categories)|}

let t_translate =
  let s = Workloads.film_session ~films:20 ~actors:10 in
  Test.make ~name:"fig3/parse+translate+rewrite"
    (Staged.stage (fun () -> ignore (Session.explain s fig3_query)))

let t_fig4_eval =
  let s = Workloads.film_session ~films:60 ~actors:30 in
  let plan =
    Session.explain s
      {|SELECT Title FROM FilmActors
        WHERE MEMBER('Adventure', Categories) AND ALL (Salary(Actors) > 10000)|}
  in
  let db = Session.database s in
  Test.make ~name:"fig4/nested view query (60 films)"
    (Staged.stage (fun () -> ignore (Eval.run db plan.Session.rewritten)))

let t_fix_naive, t_fix_semi =
  let db = Workloads.chain_db 20 in
  ( Test.make ~name:"fig5/fixpoint naive (chain 20)"
      (Staged.stage (fun () ->
           ignore (Eval.run ~mode:Eval.Naive db Workloads.tc_fix))),
    Test.make ~name:"fig5/fixpoint semi-naive (chain 20)"
      (Staged.stage (fun () ->
           ignore (Eval.run ~mode:Eval.Seminaive db Workloads.tc_fix))) )

let t_merging =
  let s = Workloads.view_stack_session ~depth:8 in
  let cat = Session.catalog s in
  let translated =
    Eds_esql.Translate.select cat
      (Eds_esql.Parser.parse_select "SELECT A FROM V8 WHERE B > 50")
  in
  let ctx = Optimizer.make_ctx (Eds_esql.Catalog.schema_env cat) in
  let program =
    { Rule.blocks = [ Rule.block "merging" (Rulesets.merging ()) ]; rounds = 1 }
  in
  Test.make ~name:"fig7/merge 8-view stack"
    (Staged.stage (fun () -> ignore (Optimizer.rewrite ~program ctx translated)))

let t_push_before, t_push_after =
  let s = Workloads.film_session ~films:120 ~actors:60 in
  let db = Session.database s in
  let plan =
    Session.explain s
      {|SELECT Title FROM FILM, APPEARS_IN
        WHERE FILM.Numf = APPEARS_IN.Numf AND FILM.Numf = 7|}
  in
  ( Test.make ~name:"fig8/join query unrewritten"
      (Staged.stage (fun () -> ignore (Eval.run db plan.Session.translated))),
    Test.make ~name:"fig8/join query rewritten"
      (Staged.stage (fun () -> ignore (Eval.run db plan.Session.rewritten))) )

let t_magic_before, t_magic_after =
  let db = Workloads.clustered_db ~clusters:4 ~nodes:10 ~edges_per_cluster:18 in
  let q = Workloads.reachable_from 2 in
  let ctx = Optimizer.make_ctx (Database.schema_env db) in
  let program =
    {
      Rule.blocks =
        [
          Rule.block "merging" (Rulesets.merging ());
          Rule.block "fixpoint" (Rulesets.fixpoint ());
          Rule.block "merging_again" (Rulesets.merging ());
        ];
      rounds = 1;
    }
  in
  let q' = Optimizer.rewrite ~program ctx q in
  ( Test.make ~name:"fig9/recursion unrewritten"
      (Staged.stage (fun () -> ignore (Eval.run db q))),
    Test.make ~name:"fig9/recursion magic-rewritten"
      (Staged.stage (fun () -> ignore (Eval.run db q'))) )

let t_semantic =
  let ctx = Optimizer.make_ctx (Database.schema_env (Database.create ())) in
  let t =
    Eds_rewriter.Rule_parser.parse_term
      "@(1,1) = @(1,2) AND @(1,2) = @(1,3) AND @(1,1) > 3 AND @(1,3) <= 3"
  in
  let program =
    {
      Rule.blocks =
        [
          Rule.block "semantic" ~limit:200 (Rulesets.semantic ());
          Rule.block "simplification" (Rulesets.simplification ());
        ];
      rounds = 1;
    }
  in
  Test.make ~name:"fig10-12/semantic+simplify pipeline"
    (Staged.stage (fun () -> ignore (Optimizer.rewrite_term ~program ctx t)))

let t_limits_zero, t_limits_inf =
  let s = Workloads.film_session ~films:40 ~actors:20 in
  let cat = Session.catalog s in
  let translated =
    Eds_esql.Translate.select cat
      (Eds_esql.Parser.parse_select
         {|SELECT Title FROM FilmActors WHERE MEMBER('Adventure', Categories)|})
  in
  let ctx = Optimizer.make_ctx (Eds_esql.Catalog.schema_env cat) in
  let with_config config =
    Staged.stage (fun () ->
        ignore (Optimizer.rewrite ~program:(Optimizer.program ~config ()) ctx translated))
  in
  ( Test.make ~name:"c1/rewrite, all limits 0" (with_config Optimizer.zero_config),
    Test.make ~name:"c1/rewrite, default limits" (with_config Optimizer.default_config) )

let t_engine_indexed, t_engine_reference =
  let ctx, translated = Workloads.view_stack_rewrite ~depth:10 in
  let t = Eds_lera.Lera_term.to_term translated in
  let no_limits =
    {
      Optimizer.merging_limit = None;
      fixpoint_limit = None;
      permutation_limit = None;
      semantic_limit = None;
      simplification_limit = None;
      rounds = 4;
    }
  in
  let program = Optimizer.program ~config:no_limits () in
  ( Test.make ~name:"e1/engine indexed (10-view stack)"
      (Staged.stage (fun () -> ignore (Optimizer.rewrite_term ~program ctx t))),
    Test.make ~name:"e1/engine reference (10-view stack)"
      (Staged.stage (fun () ->
           ignore (Optimizer.rewrite_term_reference ~program ctx t))) )

let tests () =
  [
    t_collections;
    t_translate;
    t_fig4_eval;
    t_fix_naive;
    t_fix_semi;
    t_merging;
    t_push_before;
    t_push_after;
    t_magic_before;
    t_magic_after;
    t_semantic;
    t_limits_zero;
    t_limits_inf;
    t_engine_indexed;
    t_engine_reference;
  ]

let run_bechamel () =
  Fmt.pr "@.=== Bechamel wall-clock benchmarks (ns/run, OLS estimate)@.";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~kde:(Some 500) ()
  in
  List.iter
    (fun test ->
      let grouped = Test.make_grouped ~name:"" ~fmt:"%s%s" [ test ] in
      let raw = Benchmark.all cfg instances grouped in
      Hashtbl.iter
        (fun name m ->
          let est = Analyze.one ols Instance.monotonic_clock m in
          match Analyze.OLS.estimates est with
          | Some [ ns ] -> Fmt.pr "  %-40s %12.0f ns/run@." name ns
          | Some other ->
            Fmt.pr "  %-40s %a@." name (Fmt.list ~sep:Fmt.comma Fmt.float) other
          | None -> Fmt.pr "  %-40s (no estimate)@." name)
        raw)
    (tests ())

let () =
  let args = Array.to_list Sys.argv in
  let report = not (List.mem "--bechamel-only" args) in
  let bechamel = not (List.mem "--report-only" args) in
  if report then Report.all ();
  if bechamel then run_bechamel ();
  Fmt.pr "@.done.@."
