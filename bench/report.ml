(* The per-figure experiment report (see DESIGN.md's experiment index and
   EXPERIMENTS.md).  The paper publishes no measured tables — its figures
   are rule/query listings — so each section reproduces the figure's
   artifact and measures the quantitative effect its section claims. *)

module Value = Eds_value.Value
module Collection = Eds_value.Collection
module Term = Eds_term.Term
module Lera = Eds_lera.Lera
module Relation = Eds_engine.Relation
module Database = Eds_engine.Database
module Eval = Eds_engine.Eval
module Rule = Eds_rewriter.Rule
module Rulesets = Eds_rewriter.Rulesets
module Engine = Eds_rewriter.Engine
module Optimizer = Eds_rewriter.Optimizer
module Session = Eds.Session
module Rule_parser = Eds_rewriter.Rule_parser
module Verify = Eds_rulelab.Verify
module Discover = Eds_rulelab.Discover
module Corpus = Eds_rulelab.Corpus

let section id title = Fmt.pr "@.=== %s — %s@." id title

let row fmt = Fmt.pr fmt

let ratio a b = float_of_int a /. float_of_int (max 1 b)

(* -- machine-readable counters (bench/main.exe --json) -------------------- *)

module Json = Eds_obs.Obs.Json

let metrics : (string * Json.t) list ref = ref []
let metric key v = metrics := (key, v) :: !metrics
let metric_int key n = metric key (Json.Int n)
let metric_bool key b = metric key (Json.Bool b)
let metric_float key f = metric key (Json.Float f)

let metrics_json () = Json.Obj (List.rev !metrics)

(* -- F1: Figure 1, collection ADT hierarchy ------------------------------ *)

let f1 () =
  section "F1" "generic collection ADTs (Figure 1)";
  let n = 1000 in
  let set_a = Value.set (List.init n (fun i -> Value.Int i)) in
  let set_b = Value.set (List.init n (fun i -> Value.Int (i + (n / 2)))) in
  let u = Collection.union set_a set_b in
  let i = Collection.inter set_a set_b in
  let d = Collection.diff set_a set_b in
  row "  |A| = |B| = %d: |A∪B| = %d, |A∩B| = %d, |A−B| = %d@."
    n
    (Collection.cardinality u)
    (Collection.cardinality i)
    (Collection.cardinality d);
  let bag = Value.bag (List.init n (fun i -> Value.Int (i mod 100))) in
  row "  convert bag(%d) to set: %d distinct elements@." n
    (Collection.cardinality (Collection.convert Set bag));
  row "  hierarchy: set/bag/list/array ISA collection: %b@."
    (List.for_all
       (fun ty ->
         Eds_value.Vtype.isa Eds_value.Vtype.empty_env ty
           (Eds_value.Vtype.Collection Eds_value.Vtype.Any))
       Eds_value.Vtype.[ Set Int; Bag Int; List Int; Array Int ])

(* -- F3: Figure 3 / §3.1, canonical compound search ----------------------- *)

let f3 () =
  section "F3" "ESQL → LERA translation of the Figure-3 query (§3.1)";
  let s = Workloads.film_session ~films:50 ~actors:30 in
  let q =
    {|SELECT Title, Categories, Salary(Refactor)
      FROM FILM, APPEARS_IN
      WHERE FILM.Numf = APPEARS_IN.Numf AND Name(Refactor) = 'actor1'
        AND MEMBER('Adventure', Categories)|}
  in
  let plan = Session.explain s q in
  row "  translated: %a@." Lera.pp plan.Session.translated;
  row "  paper     : search((APPEARS_IN, FILM), [1.1=2.1 ∧ name(1.2)='Quinn' ∧ member('Adventure', 2.3)], (2.2, 2.3, salary(1.2)))@.";
  row "  shape     : one compound search, conversions value/project inserted: %b@."
    (match plan.Session.translated with
    | Lera.Search ([ _; _ ], _, [ _; _; Lera.Call ("project", _) ]) -> true
    | _ -> false)

(* -- F4: Figure 4, nested view + quantifier ------------------------------- *)

let f4 () =
  section "F4" "nested view with MakeSet/GROUP BY and ALL quantifier (Figure 4)";
  let s = Workloads.film_session ~films:100 ~actors:50 in
  let q =
    {|SELECT Title FROM FilmActors
      WHERE MEMBER('Adventure', Categories) AND ALL (Salary(Actors) > 10000)|}
  in
  let plan = Session.explain s q in
  let db = Session.database s in
  let before = Workloads.eval_work db plan.Session.translated in
  let after = Workloads.eval_work db plan.Session.rewritten in
  let result = Session.query s q in
  row "  result: %d films; identical before/after rewriting: %b@."
    (Relation.cardinality result)
    (Relation.equal
       (Eds_engine.Eval.run db plan.Session.translated)
       (Eds_engine.Eval.run db plan.Session.rewritten));
  metric_int "f4.combinations_before" before.Eval.combinations;
  metric_int "f4.combinations_after" after.Eval.combinations;
  metric_int "f4.result_tuples" (Relation.cardinality result);
  row "  work: %d → %d combinations (%.1fx)@." before.Eval.combinations
    after.Eval.combinations
    (ratio before.Eval.combinations after.Eval.combinations)

(* -- F5: Figure 5 / §3.2, recursive view as fixpoint ----------------------- *)

let f5 () =
  section "F5" "recursive view → fixpoint; naive vs semi-naive (§3.2)";
  List.iter
    (fun n ->
      let db = Workloads.chain_db n in
      let naive = Eval.fresh_stats () and semi = Eval.fresh_stats () in
      (* naive physical layer: F5 measures the fixpoint strategies' own
         enumerated space (E2 covers the physical layers) *)
      let r1 =
        Eval.run ~mode:Eval.Naive ~physical:Eval.Physical.Naive ~stats:naive db
          Workloads.tc_fix
      in
      let r2 =
        Eval.run ~mode:Eval.Seminaive ~physical:Eval.Physical.Naive ~stats:semi db
          Workloads.tc_fix
      in
      metric_int (Fmt.str "f5.chain%d.naive_combinations" n) naive.Eval.combinations;
      metric_int (Fmt.str "f5.chain%d.seminaive_combinations" n) semi.Eval.combinations;
      row
        "  chain %-3d: closure %d tuples, naive %d combos / semi-naive %d combos (%.1fx), equal %b@."
        n (Relation.cardinality r1) naive.Eval.combinations semi.Eval.combinations
        (ratio naive.Eval.combinations semi.Eval.combinations)
        (Relation.equal r1 r2))
    [ 8; 16; 24 ]

(* -- F6: Figure 6, the rule language -------------------------------------- *)

let f6 () =
  section "F6" "rule language (Figure 6): the built-in library is rule text";
  let sets =
    [
      ("merging", Rulesets.merging ());
      ("permutation", Rulesets.permutation ());
      ("fixpoint", Rulesets.fixpoint ());
      ("semantic", Rulesets.semantic ());
      ("simplification", Rulesets.simplification ());
    ]
  in
  List.iter
    (fun (name, rules) -> row "  %-14s %2d rules, all parsed from concrete syntax@." name (List.length rules))
    sets;
  let r = Rulesets.find "search_merge" in
  row "  e.g. %a@." Rule.pp r

(* -- F7: Figure 7, merging ------------------------------------------------- *)

let merging_program =
  { Rule.blocks = [ Rule.block "merging" (Rulesets.merging ()) ]; rounds = 1 }

let f7 () =
  section "F7" "operation merging (Figure 7): operators before/after";
  List.iter
    (fun depth ->
      let s = Workloads.view_stack_session ~depth in
      let q = Fmt.str "SELECT A FROM V%d WHERE B > 50" depth in
      let plan = Session.explain s q in
      let ctx = Optimizer.make_ctx (Eds_esql.Catalog.schema_env (Session.catalog s)) in
      let merged = Optimizer.rewrite ~program:merging_program ctx plan.Session.translated in
      metric_int
        (Fmt.str "f7.depth%d.operators_before" depth)
        (Lera.operator_count plan.Session.translated);
      metric_int
        (Fmt.str "f7.depth%d.operators_after" depth)
        (Lera.operator_count merged);
      row "  view depth %-2d: %2d operators → %2d after merging (one search: %b)@."
        depth
        (Lera.operator_count plan.Session.translated)
        (Lera.operator_count merged)
        (Lera.operator_count merged = 1))
    [ 1; 3; 6; 10 ]

(* -- F8: Figure 8, permutation --------------------------------------------- *)

let f8 () =
  section "F8" "operation permutation (Figure 8): work with and without pushing";
  let s = Workloads.film_session ~films:200 ~actors:100 in
  let db = Session.database s in
  let q =
    {|SELECT Title FROM FILM, APPEARS_IN
      WHERE FILM.Numf = APPEARS_IN.Numf AND FILM.Numf = 7|}
  in
  let plan = Session.explain s q in
  let before = Workloads.eval_work db plan.Session.translated in
  let after = Workloads.eval_work db plan.Session.rewritten in
  metric_int "f8.join.combinations_before" before.Eval.combinations;
  metric_int "f8.join.combinations_after" after.Eval.combinations;
  row "  select on a join: %d → %d combinations (%.1fx fewer)@."
    before.Eval.combinations after.Eval.combinations
    (ratio before.Eval.combinations after.Eval.combinations);
  (* nest pushing on the Figure-4 view *)
  let qn = {|SELECT Title FROM FilmActors WHERE MEMBER('Western', Categories)|} in
  let plan = Session.explain s qn in
  let before = Workloads.eval_work db plan.Session.translated in
  let after = Workloads.eval_work db plan.Session.rewritten in
  metric_int "f8.nest.combinations_before" before.Eval.combinations;
  metric_int "f8.nest.combinations_after" after.Eval.combinations;
  row "  select through nest: %d → %d combinations (%.1fx fewer)@."
    before.Eval.combinations after.Eval.combinations
    (ratio before.Eval.combinations after.Eval.combinations)

(* -- F9: Figure 9, fixpoint reduction --------------------------------------- *)

let magic_program =
  {
    Rule.blocks =
      [
        Rule.block "merging" (Rulesets.merging ());
        Rule.block "fixpoint" (Rulesets.fixpoint ());
        Rule.block "merging_again" (Rulesets.merging ());
      ];
    rounds = 1;
  }

let f9 () =
  section "F9" "Alexander/magic rewriting of recursion (Figure 9)";
  List.iter
    (fun (clusters, nodes) ->
      let db = Workloads.clustered_db ~clusters ~nodes ~edges_per_cluster:(nodes * 2) in
      let q = Workloads.reachable_from 2 in
      let ctx = Optimizer.make_ctx (Database.schema_env db) in
      let q' = Optimizer.rewrite ~program:magic_program ctx q in
      let before = Workloads.eval_work db q in
      let after = Workloads.eval_work db q' in
      let same =
        Relation.equal (Eds_engine.Eval.run db q) (Eds_engine.Eval.run db q')
      in
      metric_int
        (Fmt.str "f9.c%dn%d.naive_combinations" clusters nodes)
        before.Eval.combinations;
      metric_int
        (Fmt.str "f9.c%dn%d.magic_combinations" clusters nodes)
        after.Eval.combinations;
      metric_bool (Fmt.str "f9.c%dn%d.equal" clusters nodes) same;
      row
        "  %d clusters × %d nodes: naive %8d combos, magic %7d combos (%.1fx fewer), equal %b@."
        clusters nodes before.Eval.combinations after.Eval.combinations
        (ratio before.Eval.combinations after.Eval.combinations)
        same)
    [ (2, 10); (4, 12); (8, 14) ]

(* -- F10/F11: semantic knowledge ------------------------------------------- *)

let f10_11 () =
  section "F10/F11" "integrity constraints and implicit knowledge (Figures 10-11)";
  let s = Workloads.film_session ~films:100 ~actors:50 in
  Session.use_enum_domains s;
  let db = Session.database s in
  let inconsistent =
    {|SELECT Numf FROM FILM WHERE MEMBER('Cartoon', Categories)|}
  in
  let plan = Session.explain s inconsistent in
  let before = Workloads.eval_work db plan.Session.translated in
  let after = Workloads.eval_work db plan.Session.rewritten in
  row "  MEMBER('Cartoon', Categories) detected unsatisfiable: %b@."
    (Lera.obviously_empty plan.Session.rewritten);
  row "  work: %d combinations → %d@."
    before.Eval.combinations after.Eval.combinations;
  (* transitivity closure growth under a limit (the §7 trade-off input) *)
  let cat = Session.catalog s in
  let ctx = Optimizer.make_ctx (Eds_esql.Catalog.schema_env cat) in
  let chain_qual n =
    Eds_rewriter.Rule_parser.parse_term
      (String.concat " AND "
         (List.init n (fun i -> Fmt.str "@(1,%d) < @(1,%d)" (i + 1) (i + 2))))
  in
  List.iter
    (fun n ->
      let stats = Engine.fresh_stats () in
      let program =
        { Rule.blocks = [ Rule.block "semantic" (Rulesets.semantic ()) ]; rounds = 1 }
      in
      let t = Optimizer.rewrite_term ~program ~stats ctx (chain_qual n) in
      let conjuncts =
        match t with
        | Term.App ("and", [ Term.Coll (Term.Bag, cs) ]) -> List.length cs
        | _ -> 1
      in
      row "  transitivity closure of a <-chain of %d: %d conjuncts derived, %d condition checks@."
        n conjuncts stats.Engine.conditions_checked)
    [ 3; 5; 7 ]

(* -- F12: simplification ----------------------------------------------------- *)

let f12 () =
  section "F12" "predicate simplification (Figure 12)";
  let ctx = Optimizer.make_ctx (Database.schema_env (Database.create ())) in
  let program =
    { Rule.blocks = [ Rule.block "simplification" (Rulesets.simplification ()) ]; rounds = 1 }
  in
  let cases =
    [
      "@(1,1) > @(1,2) AND @(1,1) <= @(1,2)";
      "@(1,1) - @(1,2) = 0";
      "3 + 4 < 8";
      "member('Cartoon', {'Comedy', 'Adventure', 'Science Fiction', 'Western'})";
      "not(not(@(1,1) = 2))";
    ]
  in
  List.iter
    (fun src ->
      let t = Eds_rewriter.Rule_parser.parse_term src in
      let t' = Optimizer.rewrite_term ~program ctx t in
      row "  %-62s → %a@." src Term.pp t')
    cases

(* -- E1: engine instrumentation ---------------------------------------------- *)

(* the rewrite loop itself: the indexed engine (head-symbol dispatch,
   incremental re-scan, schema memoization) against the reference engine
   on deep view stacks.  All limits are infinite so that the budget never
   binds — both engines must then produce identical terms and traces, and
   the work counters isolate what the indexing and the re-scan save. *)
let e1 () =
  section "E1" "engine instrumentation: indexed vs reference rewrite loop";
  let no_limits =
    {
      Optimizer.merging_limit = None;
      fixpoint_limit = None;
      permutation_limit = None;
      semantic_limit = None;
      simplification_limit = None;
      rounds = 4;
    }
  in
  let program = Optimizer.program ~config:no_limits () in
  let same_steps a b =
    List.length a = List.length b
    && List.for_all2
         (fun (x : Engine.step) (y : Engine.step) ->
           x.Engine.rule_name = y.Engine.rule_name
           && x.Engine.block_name = y.Engine.block_name
           && Term.equal x.Engine.redex y.Engine.redex
           && Term.equal x.Engine.replacement y.Engine.replacement)
         a b
  in
  let total_time s =
    List.fold_left (fun acc (_, bs) -> acc +. bs.Engine.time_s) 0. s.Engine.per_block
  in
  let pct num den = 100. *. float_of_int num /. float_of_int (max 1 (num + den)) in
  row "  %-8s %-22s %-22s %-10s %-12s %s@." "depth" "match attempts (i/r)"
    "conditions (i/r)" "ratio" "index hit%" "schema hit%";
  let deepest = ref None in
  List.iter
    (fun depth ->
      let ctx, translated = Workloads.view_stack_rewrite ~depth in
      let t = Eds_lera.Lera_term.to_term translated in
      let s_idx = Engine.fresh_stats () and s_ref = Engine.fresh_stats () in
      let t_idx = Optimizer.rewrite_term ~program ~stats:s_idx ctx t in
      let t_ref = Optimizer.rewrite_term_reference ~program ~stats:s_ref ctx t in
      let same =
        Term.equal t_idx t_ref && same_steps (Engine.steps s_idx) (Engine.steps s_ref)
      in
      if not same then row "  depth %d: ENGINES DISAGREE@." depth;
      metric_int (Fmt.str "e1.depth%d.indexed_match_attempts" depth)
        s_idx.Engine.match_attempts;
      metric_int (Fmt.str "e1.depth%d.reference_match_attempts" depth)
        s_ref.Engine.match_attempts;
      metric_int (Fmt.str "e1.depth%d.indexed_conditions" depth)
        s_idx.Engine.conditions_checked;
      metric_int (Fmt.str "e1.depth%d.reference_conditions" depth)
        s_ref.Engine.conditions_checked;
      metric_bool (Fmt.str "e1.depth%d.engines_agree" depth) same;
      row "  %-8d %-22s %-22s %-10s %-12.1f %.1f@." depth
        (Fmt.str "%d / %d" s_idx.Engine.match_attempts s_ref.Engine.match_attempts)
        (Fmt.str "%d / %d" s_idx.Engine.conditions_checked s_ref.Engine.conditions_checked)
        (Fmt.str "%.1fx" (ratio s_ref.Engine.match_attempts s_idx.Engine.match_attempts))
        (pct s_idx.Engine.index_hits s_idx.Engine.index_misses)
        (pct s_idx.Engine.schema_hits s_idx.Engine.schema_misses);
      if depth = 10 then deepest := Some s_idx)
    [ 4; 7; 10 ];
  (* wall-clock, averaged over repeated runs (a single rewrite is
     sub-millisecond and too noisy to time on its own) *)
  let repeats = 30 in
  let timed rewrite ctx t =
    let s = Engine.fresh_stats () in
    for _ = 1 to repeats do
      ignore (rewrite s ctx t)
    done;
    ( float_of_int s.Engine.rewrites_applied /. max 1e-9 (total_time s),
      total_time s *. 1000. /. float_of_int repeats )
  in
  (match !deepest with
  | None -> ()
  | Some s_idx ->
    let ctx, translated = Workloads.view_stack_rewrite ~depth:10 in
    let t = Eds_lera.Lera_term.to_term translated in
    let sps_idx, ms_idx =
      timed (fun s -> Optimizer.rewrite_term ~program ~stats:s) ctx t
    in
    let sps_ref, ms_ref =
      timed (fun s -> Optimizer.rewrite_term_reference ~program ~stats:s) ctx t
    in
    row "  depth 10 throughput: indexed %.0f steps/s (%.2f ms), reference %.0f steps/s (%.2f ms)@."
      sps_idx ms_idx sps_ref ms_ref;
    row "  per-block (indexed, depth 10, one run):@.";
    List.iter
      (fun entry -> row "    %a@." Engine.pp_block_stats entry)
      s_idx.Engine.per_block);
  (* the same comparison on the C1 view join, whose catalog schemas make
     the per-visit schema derivation expensive *)
  let s = Workloads.film_session ~films:10 ~actors:10 in
  let cat = Session.catalog s in
  let translated =
    Eds_esql.Translate.select cat
      (Eds_esql.Parser.parse_select
         {|SELECT FilmActors.Title FROM FilmActors, FILM
           WHERE FilmActors.Title = FILM.Title
             AND MEMBER('Adventure', FilmActors.Categories)
             AND FILM.Numf = 3|})
  in
  let ctx = Optimizer.make_ctx (Eds_esql.Catalog.schema_env cat) in
  let t = Eds_lera.Lera_term.to_term translated in
  let s_idx = Engine.fresh_stats () and s_ref = Engine.fresh_stats () in
  let t_idx = Optimizer.rewrite_term ~program ~stats:s_idx ctx t in
  let t_ref = Optimizer.rewrite_term_reference ~program ~stats:s_ref ctx t in
  let _, ms_idx =
    timed (fun s -> Optimizer.rewrite_term ~program ~stats:s) ctx t
  in
  let _, ms_ref =
    timed (fun s -> Optimizer.rewrite_term_reference ~program ~stats:s) ctx t
  in
  row
    "  film view join: attempts %d / %d (%.1fx), schema derivations %d / %d, %.2f / %.2f ms, agree %b@."
    s_idx.Engine.match_attempts s_ref.Engine.match_attempts
    (ratio s_ref.Engine.match_attempts s_idx.Engine.match_attempts)
    s_idx.Engine.schema_misses s_ref.Engine.schema_misses ms_idx ms_ref
    (Term.equal t_idx t_ref
    && same_steps (Engine.steps s_idx) (Engine.steps s_ref))

(* -- E2: the physical evaluation layer ---------------------------------------- *)

(* naive enumeration vs indexed hash joins on the same plans.  The naive
   counter is [combinations] (full cartesian product); the indexed layer
   reports the combinations surviving the equi conjuncts plus the hash
   work that found them ([builds] + [probes]).  Both layers must agree
   exactly on results. *)
let e2 () =
  section "E2" "physical layers: naive enumeration vs indexed hash joins";
  let compare key label db rel =
    let naive, r_naive = Workloads.eval_work_physical Eval.Physical.Naive db rel in
    let idx, r_idx = Workloads.eval_work_physical Eval.Physical.Indexed db rel in
    let equal = Relation.equal r_naive r_idx in
    metric_int (key ^ ".naive_combinations") naive.Eval.combinations;
    metric_int (key ^ ".indexed_combinations") idx.Eval.combinations;
    metric_int (key ^ ".indexed_probes") idx.Eval.probes;
    metric_int (key ^ ".indexed_builds") idx.Eval.builds;
    metric_bool (key ^ ".equal") equal;
    let touched = idx.Eval.combinations + idx.Eval.probes + idx.Eval.builds in
    row
      "  %-26s naive %8d combos | indexed %6d combos + %6d probes + %5d builds (%.1fx less), equal %b@."
      label naive.Eval.combinations idx.Eval.combinations idx.Eval.probes
      idx.Eval.builds
      (ratio naive.Eval.combinations touched)
      equal
  in
  (* the Figure-8 selective join, before and after rewriting: indexed
     evaluation collapses even the unrewritten plan *)
  let s = Workloads.film_session ~films:200 ~actors:100 in
  let db = Session.database s in
  let plan =
    Session.explain s
      {|SELECT Title FROM FILM, APPEARS_IN
        WHERE FILM.Numf = APPEARS_IN.Numf AND FILM.Numf = 7|}
  in
  compare "e2.fig8_unrewritten" "Fig. 8 join, unrewritten" db plan.Session.translated;
  compare "e2.fig8_rewritten" "Fig. 8 join, rewritten" db plan.Session.rewritten;
  (* the Figure-9 reachability recursion (fixpoint arms are hash-joined) *)
  let rec_db = Workloads.clustered_db ~clusters:4 ~nodes:12 ~edges_per_cluster:24 in
  compare "e2.fig9_recursion" "Fig. 9 reachability" rec_db (Workloads.reachable_from 2);
  (* the fixpoint memo cache: a self-join of the closure evaluates the
     same closed Fix twice — the second occurrence must be a cache hit *)
  let tc_self_join =
    Lera.Search
      ( [ Workloads.tc_fix; Workloads.tc_fix ],
        Lera.eq (Lera.col 1 2) (Lera.col 2 1),
        [ Lera.col 1 1; Lera.col 2 2 ] )
  in
  let fc = Eval.fresh_stats () in
  ignore (Eval.run ~stats:fc rec_db tc_self_join);
  metric_int "e2.fix_cache.hits" fc.Eval.fix_cache_hits;
  metric_int "e2.fix_cache.misses" fc.Eval.fix_cache_misses;
  row "  fix cache (TC ⋈ TC self-join): %d hits / %d misses@."
    fc.Eval.fix_cache_hits fc.Eval.fix_cache_misses;
  (* the C1 complex view join, unrewritten *)
  let cat = Session.catalog s in
  let view_q =
    Eds_esql.Translate.select cat
      (Eds_esql.Parser.parse_select
         {|SELECT FilmActors.Title FROM FilmActors, FILM
           WHERE FilmActors.Title = FILM.Title
             AND MEMBER('Adventure', FilmActors.Categories)
             AND FILM.Numf = 3|})
  in
  compare "e2.c1_view_join" "C1 view join, unrewritten" db view_q;
  (* scaling: the three-way chain join R ⋈ S ⋈ T *)
  List.iter
    (fun size ->
      let db = Workloads.chain_join_db ~size in
      compare
        (Fmt.str "e2.chain%d" size)
        (Fmt.str "R⋈S⋈T, size %d" size)
        db Workloads.chain_join_query)
    [ 20; 40; 80 ]

(* -- E3: the parallel physical layer ------------------------------------------ *)

(* the pipelined partitioned-hash-join executor against the sequential
   indexed layer, on a fat-intermediate chain (see Workloads.par_chain_db).
   Results and work counters must agree exactly at every domain count;
   the wall-clock table is the speedup evidence recorded in
   EXPERIMENTS.md §E3. *)
let e3 () =
  section "E3" "parallel layer: pipelined partitioned hash joins vs indexed";
  let time f =
    ignore (f ());
    (* warm-up *)
    let reps = 3 in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      ignore (f ())
    done;
    (Unix.gettimeofday () -. t0) /. float_of_int reps *. 1000.
  in
  row "  %-24s %10s %10s %10s %10s %12s@." "" "indexed" "par d=1" "par d=2"
    "par d=4" "speedup d=4";
  List.iter
    (fun (size, fan) ->
      let key = Fmt.str "e3.chain%d_fan%d" size fan in
      let db = Workloads.par_chain_db ~size ~fan in
      let q = Workloads.par_chain_query in
      let si = Eval.fresh_stats () in
      let ri = Eval.run ~physical:Eval.Physical.Indexed ~stats:si db q in
      let sp = Eval.fresh_stats () in
      let rp =
        Eval.run ~physical:Eval.Physical.Parallel ~domains:4 ~stats:sp db q
      in
      let equal = Relation.equal ri rp in
      let counters_equal =
        si.Eval.combinations = sp.Eval.combinations
        && si.Eval.probes = sp.Eval.probes
        && si.Eval.builds = sp.Eval.builds
        && si.Eval.tuples_produced = sp.Eval.tuples_produced
      in
      let t_idx =
        time (fun () -> Eval.run ~physical:Eval.Physical.Indexed db q)
      in
      let par d =
        time (fun () -> Eval.run ~physical:Eval.Physical.Parallel ~domains:d db q)
      in
      let t1 = par 1 and t2 = par 2 and t4 = par 4 in
      metric_int (key ^ ".combinations") si.Eval.combinations;
      metric_int (key ^ ".probes") si.Eval.probes;
      metric_int (key ^ ".builds") si.Eval.builds;
      metric_bool (key ^ ".equal") equal;
      metric_bool (key ^ ".counters_equal") counters_equal;
      metric (key ^ ".indexed_ms") (Json.Float t_idx);
      metric (key ^ ".parallel_d1_ms") (Json.Float t1);
      metric (key ^ ".parallel_d2_ms") (Json.Float t2);
      metric (key ^ ".parallel_d4_ms") (Json.Float t4);
      metric (key ^ ".speedup_d4") (Json.Float (t_idx /. t4));
      row "  %-24s %8.2fms %8.2fms %8.2fms %8.2fms %11.2fx@."
        (Fmt.str "chain %d fan %d" size fan)
        t_idx t1 t2 t4 (t_idx /. t4);
      if not (equal && counters_equal) then
        row "  %-24s PARALLEL LAYER DISAGREES (equal %b, counters %b)@." ""
          equal counters_equal)
    [ (2000, 50); (4000, 50); (4000, 100) ];
  (* the Fig. 8 selective join, rewritten vs unrewritten, under the
     parallel layer: the rewrite benefit (counter shrinkage) survives
     unchanged because the parallel counters equal the indexed ones at
     every domain count *)
  let s = Workloads.film_session ~films:200 ~actors:100 in
  let db = Session.database s in
  let plan =
    Session.explain s
      {|SELECT Title FROM FILM, APPEARS_IN
        WHERE FILM.Numf = APPEARS_IN.Numf AND FILM.Numf = 7|}
  in
  List.iter
    (fun (tag, rel) ->
      let si = Eval.fresh_stats () in
      let ri = Eval.run ~physical:Eval.Physical.Indexed ~stats:si db rel in
      let all_match =
        List.for_all
          (fun d ->
            let sp = Eval.fresh_stats () in
            let rp =
              Eval.run ~physical:Eval.Physical.Parallel ~domains:d ~stats:sp db
                rel
            in
            let ok =
              Relation.equal ri rp
              && si.Eval.combinations = sp.Eval.combinations
              && si.Eval.probes = sp.Eval.probes
              && si.Eval.builds = sp.Eval.builds
            in
            metric_bool (Fmt.str "e3.fig8_%s.d%d.matches_indexed" tag d) ok;
            ok)
          [ 1; 2; 4 ]
      in
      metric_int (Fmt.str "e3.fig8_%s.combinations" tag) si.Eval.combinations;
      metric_int (Fmt.str "e3.fig8_%s.probes" tag) si.Eval.probes;
      metric_int (Fmt.str "e3.fig8_%s.builds" tag) si.Eval.builds;
      row
        "  Fig. 8 %-12s %6d combos + %5d probes + %5d builds; parallel matches indexed at d ∈ {1,2,4}: %b@."
        tag si.Eval.combinations si.Eval.probes si.Eval.builds all_match)
    [
      ("unrewritten", plan.Session.translated);
      ("rewritten", plan.Session.rewritten);
    ]

(* -- C1: the §7 block-limit trade-off ----------------------------------------- *)

(* the paper's conclusion: simple queries need a 0 limit (rewriting cannot
   pay off), complex queries need a high one; rewriting effort is measured
   in rule-condition checks, plan cost in evaluator combinations *)
let c1 () =
  section "C1" "block-limit trade-off (§7): rewriting effort vs plan cost";
  let s = Workloads.film_session ~films:150 ~actors:80 in
  let db = Session.database s in
  let cat = Session.catalog s in
  let queries =
    [
      ("simple (key lookup)", "SELECT Title FROM FILM WHERE Numf = 3");
      ( "complex (view join)",
        {|SELECT FilmActors.Title FROM FilmActors, FILM
          WHERE FilmActors.Title = FILM.Title
            AND MEMBER('Adventure', FilmActors.Categories)
            AND FILM.Numf = 3|} );
    ]
  in
  List.iter
    (fun (label, q) ->
      let translated =
        Eds_esql.Translate.select cat (Eds_esql.Parser.parse_select q)
      in
      row "  %s@." label;
      row "    %-10s %-18s %-18s %s@." "limit" "condition checks" "plan combinations"
        "plan ops";
      List.iter
        (fun (l_label, limit) ->
          let config =
            {
              Optimizer.merging_limit = limit;
              fixpoint_limit = limit;
              permutation_limit = limit;
              semantic_limit = limit;
              simplification_limit = limit;
              rounds = 2;
            }
          in
          let stats = Engine.fresh_stats () in
          let ctx = Optimizer.make_ctx (Eds_esql.Catalog.schema_env cat) in
          let rewritten =
            Optimizer.rewrite ~program:(Optimizer.program ~config ()) ~stats ctx
              translated
          in
          let work = Workloads.eval_work db rewritten in
          let qkey = if label = "simple (key lookup)" then "simple" else "complex" in
          metric_int
            (Fmt.str "c1.%s.limit_%s.condition_checks" qkey l_label)
            stats.Engine.conditions_checked;
          metric_int
            (Fmt.str "c1.%s.limit_%s.plan_combinations" qkey l_label)
            work.Eval.combinations;
          row "    %-10s %-18d %-18d %d@." l_label stats.Engine.conditions_checked
            work.Eval.combinations
            (Lera.operator_count rewritten))
        [
          ("0", Some 0);
          ("10", Some 10);
          ("40", Some 40);
          ("infinite", None);
        ])
    queries

(* -- C2: re-running the merging block (§5.3) ----------------------------------- *)

let c2 () =
  section "C2" "same rule in several blocks (§4.2/§5.3): merge, fixpoint, merge";
  (* a recursive predicate whose base case carries a restriction: after
     linearization, the base-arm search ends up nested inside the
     recursive arm's search, so the merging rules have new work exactly
     as §5.3 predicts ("the search merging rule is a typical case of rule
     which takes advantage of being applied more than once") *)
  let db = Database.create () in
  let schema =
    [
      ("Src", Eds_value.Vtype.Int);
      ("Dst", Eds_value.Vtype.Int);
      ("W", Eds_value.Vtype.Int);
    ]
  in
  let rng = Workloads.make_rng 99 in
  let tuples =
    List.init 150 (fun _ ->
        Eds_value.Value.[ Int (1 + rng 40); Int (1 + rng 40); Int (rng 10) ])
  in
  Database.add_relation db "WEDGE" (Eds_engine.Relation.make schema tuples);
  let base_arm =
    Lera.Search
      ( [ Lera.Base "WEDGE" ],
        Lera.Call (">", [ Lera.col 1 3; Lera.Cst (Eds_value.Value.Int 2) ]),
        [ Lera.col 1 1; Lera.col 1 2 ] )
  in
  let fix =
    Lera.Fix
      ( "TCW",
        Lera.Union
          [
            base_arm;
            Lera.Search
              ( [ Lera.Base "TCW"; Lera.Base "TCW" ],
                Lera.eq (Lera.col 1 2) (Lera.col 2 1),
                [ Lera.col 1 1; Lera.col 2 2 ] );
          ] )
  in
  let q =
    Lera.Search
      ( [ fix ],
        Lera.eq (Lera.col 1 1) (Lera.Cst (Eds_value.Value.Int 5)),
        [ Lera.col 1 2 ] )
  in
  let ctx = Optimizer.make_ctx (Database.schema_env db) in
  let once =
    {
      Rule.blocks =
        [
          Rule.block "merging" (Rulesets.merging ());
          Rule.block "fixpoint" (Rulesets.fixpoint ());
          Rule.block "permutation" (Rulesets.permutation ());
        ];
      rounds = 1;
    }
  in
  let twice =
    {
      Rule.blocks =
        [
          Rule.block "merging" (Rulesets.merging ());
          Rule.block "fixpoint" (Rulesets.fixpoint ());
          Rule.block "merging_again" (Rulesets.merging ());
          Rule.block "permutation" (Rulesets.permutation ());
        ];
      rounds = 1;
    }
  in
  let stats_once = Engine.fresh_stats () and stats_twice = Engine.fresh_stats () in
  let q_once = Optimizer.rewrite ~program:once ~stats:stats_once ctx q in
  let q_twice = Optimizer.rewrite ~program:twice ~stats:stats_twice ctx q in
  let w_once = Workloads.eval_work db q_once in
  let w_twice = Workloads.eval_work db q_twice in
  let same =
    Eds_engine.Relation.equal (Eds_engine.Eval.run db q_once)
      (Eds_engine.Eval.run db q_twice)
  in
  row "  merge once : %2d ops, %7d combinations, %5d produced@."
    (Lera.operator_count q_once) w_once.Eval.combinations w_once.Eval.tuples_produced;
  row "  merge twice: %2d ops, %7d combinations, %5d produced (equal results: %b)@."
    (Lera.operator_count q_twice) w_twice.Eval.combinations
    w_twice.Eval.tuples_produced same;
  row "  second merging pass applied %d more rewrites@."
    (stats_twice.Engine.rewrites_applied - stats_once.Engine.rewrites_applied);
  (* per-pass breakdown: [stats.passes] keeps one entry per executed block
     pass (the name-keyed [per_block] view sums the two merging passes) *)
  row "  per-pass (merge twice):@.";
  List.iteri
    (fun i (name, bs) ->
      metric_int
        (Fmt.str "c2.pass%d_%s.rewrites" (i + 1) name)
        bs.Engine.rewrites;
      metric_int
        (Fmt.str "c2.pass%d_%s.conditions" (i + 1) name)
        bs.Engine.conditions;
      row "    pass %d %-14s %2d rewrites, %3d conditions, %3d nodes@." (i + 1)
        name bs.Engine.rewrites bs.Engine.conditions bs.Engine.nodes)
    stats_twice.Engine.passes;
  metric_int "c2.ops_once" (Lera.operator_count q_once);
  metric_int "c2.ops_twice" (Lera.operator_count q_twice);
  metric_int "c2.combinations_once" w_once.Eval.combinations;
  metric_int "c2.combinations_twice" w_twice.Eval.combinations;
  metric_bool "c2.equal" same

(* -- C3: §7 future work — dynamic limit allocation -------------------------- *)

let c3 () =
  section "C3" "adaptive limits (§7 future work): per-query allocation";
  let s = Workloads.film_session ~films:150 ~actors:80 in
  let cat = Session.catalog s in
  let db = Session.database s in
  let queries =
    [
      ("key lookup", "SELECT Title FROM FILM WHERE Numf = 3");
      ( "nested view",
        {|SELECT Title FROM FilmActors WHERE MEMBER('Adventure', Categories)|} );
      ( "recursive view",
        {|SELECT Name(Refactor1) FROM BETTER_THAN WHERE Name(Refactor2) = 'actor1'|} );
    ]
  in
  row "  %-16s %-11s %-18s %-18s %s@." "query" "complexity" "checks (adaptive)"
    "checks (default)" "plan combos (adaptive)";
  List.iter
    (fun (label, q) ->
      let translated =
        Eds_esql.Translate.select cat (Eds_esql.Parser.parse_select q)
      in
      let ctx = Optimizer.make_ctx (Eds_esql.Catalog.schema_env cat) in
      let run config =
        let stats = Engine.fresh_stats () in
        let rewritten =
          Optimizer.rewrite ~program:(Optimizer.program ~config ()) ~stats ctx
            translated
        in
        (stats.Engine.conditions_checked, Workloads.eval_work db rewritten)
      in
      let checks_a, work_a = run (Optimizer.adaptive_config translated) in
      let checks_d, _ = run Optimizer.default_config in
      let qkey =
        String.map (function ' ' -> '_' | c -> c) label
      in
      metric_int (Fmt.str "c3.%s.checks_adaptive" qkey) checks_a;
      metric_int (Fmt.str "c3.%s.checks_default" qkey) checks_d;
      row "  %-16s %-11d %-18d %-18d %d@." label
        (Optimizer.complexity translated)
        checks_a checks_d work_a.Eval.combinations)
    queries

(* -- A1: block ablation ------------------------------------------------------ *)

(* which block contributes what: run the default program with one block
   family disabled at a time and measure the resulting plan's work.
   "merging" removes both merging passes. *)
let a1 () =
  section "A1" "ablation: contribution of each rule block";
  let s = Workloads.film_session ~films:150 ~actors:80 in
  let view_db = Session.database s in
  let cat = Session.catalog s in
  let view_q =
    Eds_esql.Translate.select cat
      (Eds_esql.Parser.parse_select
         {|SELECT FilmActors.Title FROM FilmActors, FILM
           WHERE FilmActors.Title = FILM.Title
             AND MEMBER('Adventure', FilmActors.Categories)
             AND FILM.Numf = 3|})
  in
  let view_ctx = Optimizer.make_ctx (Eds_esql.Catalog.schema_env cat) in
  let rec_db = Workloads.clustered_db ~clusters:5 ~nodes:12 ~edges_per_cluster:22 in
  let rec_q = Workloads.reachable_from 3 in
  let rec_ctx = Optimizer.make_ctx (Database.schema_env rec_db) in
  let sem_ctx =
    Optimizer.make_ctx
      ~semantic_constraints:(Optimizer.enum_domain_constraints (Eds_esql.Catalog.types cat))
      (Eds_esql.Catalog.schema_env cat)
  in
  let bad_q =
    Eds_esql.Translate.select cat
      (Eds_esql.Parser.parse_select
         "SELECT Numf FROM FILM WHERE MEMBER('Cartoon', Categories) AND Numf > 1")
  in
  let subjects =
    [
      ("view join", view_db, view_ctx, view_q);
      ("recursion", rec_db, rec_ctx, rec_q);
      ("inconsistent", view_db, sem_ctx, bad_q);
    ]
  in
  let all_blocks = (Optimizer.program ~config:Optimizer.default_config ()).Rule.blocks in
  let family name b =
    match name with
    | "merging" -> b.Rule.block_name = "merging" || b.Rule.block_name = "merging_again"
    | other -> b.Rule.block_name = other
  in
  row "  %-22s %14s %14s %14s@." "" "view join" "recursion" "inconsistent";
  let run label blocks =
    let work (_, db, ctx, q) =
      let rewritten = Optimizer.rewrite ~program:{ Rule.blocks; rounds = 4 } ctx q in
      (Workloads.eval_work db rewritten).Eval.combinations
    in
    let cells = List.map work subjects in
    let lkey = String.map (function ' ' -> '_' | c -> c) label in
    List.iter2
      (fun (subject, _, _, _) combos ->
        let skey = String.map (function ' ' -> '_' | c -> c) subject in
        metric_int (Fmt.str "a1.%s.%s.combinations" lkey skey) combos)
      subjects cells;
    row "  %-22s %14d %14d %14d@." label (List.nth cells 0) (List.nth cells 1)
      (List.nth cells 2)
  in
  run "full program" all_blocks;
  List.iter
    (fun victim ->
      run (Fmt.str "without %s" victim)
        (List.filter (fun b -> not (family victim b)) all_blocks))
    [ "merging"; "fixpoint"; "permutation"; "semantic"; "simplification" ];
  run "no rewriting" []

(* -- E4: concurrent query server ----------------------------------------- *)

(* The edsd server under concurrent load (EXPERIMENTS.md E4): the same
   480-request mixed workload (Figure-8 selection-pushdown joins, an
   R ⋈ S ⋈ T chain join, recursive reachability) fanned over 1, 4 and
   16 client connections against one shared session + plan cache, with
   every response checked byte-for-byte against a lone-session replay.

   Gate discipline: wall-clock numbers (q/s, percentiles) are reported
   but never gated — only integrity counters that are deterministic by
   construction.  Cache hit/miss totals are exact only in the
   single-client run (concurrent first-probes of the same key can race,
   each miss planning the same text); the concurrent runs gate the
   boolean hit-rate floor instead. *)
let e4 () =
  section "E4" "concurrent query server: shared plan cache under load";
  let module Server = Eds_server.Server in
  let module Loadtest = Eds_server.Loadtest in
  let twin = Session.create () in
  Loadtest.apply_setup twin;
  let expected = Loadtest.expected_payloads twin in
  let total = 480 in
  List.iter
    (fun clients ->
      let s = Session.create () in
      Loadtest.apply_setup s;
      let srv = Server.start s in
      Fun.protect
        ~finally:(fun () -> Server.stop srv)
        (fun () ->
          let per_client = total / clients in
          let o =
            Loadtest.run ~expected ~port:(Server.port srv) ~clients ~per_client ()
          in
          row
            "  %2d clients × %3d: %4d ok, %5.0f q/s, p50 %5.2f ms, p95 %5.2f ms, \
             p99 %5.2f ms, hit rate %.2f@."
            clients per_client o.Loadtest.ok o.Loadtest.qps o.Loadtest.p50_ms
            o.Loadtest.p95_ms o.Loadtest.p99_ms o.Loadtest.hit_rate;
          let key fmt = Fmt.str ("e4.c%d." ^^ fmt) clients in
          metric_int (key "ok") o.Loadtest.ok;
          metric_int (key "dropped_connections") o.Loadtest.dropped_connections;
          metric_int (key "protocol_errors") o.Loadtest.protocol_errors;
          metric_int (key "busy_refusals") o.Loadtest.busy;
          metric_int (key "error_responses") o.Loadtest.errors;
          metric_bool (key "bit_identical") o.Loadtest.bit_identical;
          metric_bool (key "hit_rate_gt_half") (o.Loadtest.hit_rate > 0.5);
          metric_float (key "qps") o.Loadtest.qps;
          metric_float (key "p95_ms") o.Loadtest.p95_ms;
          metric_float (key "p99_ms") o.Loadtest.p99_ms;
          if clients = 1 then begin
            (* sequential: exact, gateable cache totals — 8 distinct
               statements miss once each, everything else hits *)
            metric_int "e4.plan_cache.hits" o.Loadtest.cache_hits;
            metric_int "e4.plan_cache.misses" o.Loadtest.cache_misses;
            metric_float "e4.plan_cache.hit_rate" o.Loadtest.hit_rate
          end))
    [ 1; 4; 16 ]

(* -- E5: mixed read/write load, lock-free snapshot reads ------------------ *)

(* Writers churn per-client private tables while shared-table SELECTs
   run concurrently against copy-on-write snapshots (EXPERIMENTS.md
   E5).  Every response — write acks included — is verified
   byte-for-byte against a per-client oracle replay, and the server's
   read-lock acquisition counter is gated at zero: SELECTs never touch
   the read side of the rwlock, so a reader can never be stalled behind
   a writer.  Wall-clock numbers are reported, never gated. *)
let e5 () =
  section "E5" "mixed read/write load: lock-free snapshot reads";
  let module Server = Eds_server.Server in
  let module Loadtest = Eds_server.Loadtest in
  let twin = Session.create () in
  Loadtest.apply_setup twin;
  let expected = Loadtest.expected_payloads twin in
  let total = 480 in
  List.iter
    (fun clients ->
      let s = Session.create () in
      Loadtest.apply_setup s;
      let srv = Server.start s in
      Fun.protect
        ~finally:(fun () -> Server.stop srv)
        (fun () ->
          let per_client = total / clients in
          let o =
            Loadtest.run_mixed ~expected ~port:(Server.port srv) ~clients
              ~per_client ()
          in
          let c = Server.counters srv in
          row
            "  %2d clients × %3d: %4d ok (%3d writes), %5.0f q/s, p95 %5.2f ms, \
             locks %d read / %d write@."
            clients per_client o.Loadtest.ok o.Loadtest.writes o.Loadtest.qps
            o.Loadtest.p95_ms c.Server.locks.Eds_server.Rwlock.read_acquired
            c.Server.locks.Eds_server.Rwlock.write_acquired;
          let key fmt = Fmt.str ("e5.c%d." ^^ fmt) clients in
          metric_int (key "ok") o.Loadtest.ok;
          metric_int (key "writes") o.Loadtest.writes;
          metric_int (key "dropped_connections") o.Loadtest.dropped_connections;
          metric_int (key "protocol_errors") o.Loadtest.protocol_errors;
          metric_int (key "busy_refusals") o.Loadtest.busy;
          metric_int (key "error_responses") o.Loadtest.errors;
          metric_bool (key "bit_identical") o.Loadtest.bit_identical;
          metric_int (key "read_lock_acquisitions")
            c.Server.locks.Eds_server.Rwlock.read_acquired;
          metric_float (key "qps") o.Loadtest.qps;
          metric_float (key "p95_ms") o.Loadtest.p95_ms))
    [ 1; 4; 16 ]

(* -- E6: always-on telemetry — overhead, agreement, accounting ------------ *)

(* Three claims, each gated (EXPERIMENTS.md §E6): (1) the always-on
   metrics registry costs ≤ 5% of E4 loadgen throughput (best-of-3 each
   way, metrics force-disabled vs enabled); (2) the server-side latency
   histogram agrees with client-side percentiles within one log₂ bucket
   at 16 concurrent clients; (3) the EXPLAIN ANALYZE per-operator report
   accounts for the E2 work counters exactly — summing a counter over
   the report tree reproduces an independent plain run's stats. *)
let e6 () =
  section "E6" "always-on telemetry: overhead, percentiles, accounting";
  let module Server = Eds_server.Server in
  let module Loadtest = Eds_server.Loadtest in
  let module Metrics = Eds_obs.Metrics in
  let twin = Session.create () in
  Loadtest.apply_setup twin;
  let expected = Loadtest.expected_payloads twin in
  let run_once ~clients ~per_client =
    let s = Session.create () in
    Loadtest.apply_setup s;
    let srv = Server.start s in
    Fun.protect
      ~finally:(fun () -> Server.stop srv)
      (fun () ->
        Loadtest.run ~expected ~port:(Server.port srv) ~clients ~per_client ())
  in
  (* (1) recording overhead.  The end-to-end A/B (registry force-gated
     off vs on, sequential so scheduling noise is minimal, off/on runs
     alternating so machine drift lands on both sides) is reported —
     but its run-to-run wall-clock noise (±5-10% on a shared box)
     swamps a sub-1% effect, so the gated figure times the record path
     itself: the per-request metric work (two histogram observes for
     the duration and execute-phase cells, the verb/outcome and cache
     counters, and the evaluator's 8-field stats batch) measured over
     200k iterations, as a fraction of the mean request service time.
     That ratio is what "cheap enough to leave on" means, and it is
     stable enough to gate at 5%. *)
  let timed enabled =
    Metrics.set_enabled enabled;
    Fun.protect
      ~finally:(fun () -> Metrics.set_enabled true)
      (fun () ->
        let o = run_once ~clients:1 ~per_client:800 in
        o.Loadtest.qps)
  in
  let qps_off = ref 0. and qps_on = ref 0. in
  List.iter
    (fun _ ->
      qps_off := Float.max !qps_off (timed false);
      qps_on := Float.max !qps_on (timed true))
    [ 1; 2; 3 ];
  let qps_off = !qps_off and qps_on = !qps_on in
  let e2e_delta_pct =
    if qps_off <= 0. then 0. else (qps_off -. qps_on) /. qps_off *. 100.
  in
  let record_ns =
    let h = Metrics.histogram "e6_bench_record_seconds" in
    let c = Metrics.counter "e6_bench_record_total" in
    let iters = 200_000 in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to iters do
      Metrics.Histogram.observe h 1.2e-4;
      Metrics.Histogram.observe h 0.9e-4;
      Metrics.Counter.incr c;
      Metrics.Counter.incr c;
      for _ = 1 to 8 do
        Metrics.Counter.add c 3
      done
    done;
    (Unix.gettimeofday () -. t0) /. float_of_int iters *. 1e9
  in
  let request_ns = if qps_on > 0. then 1e9 /. qps_on else 0. in
  let overhead_pct =
    if request_ns > 0. then record_ns /. request_ns *. 100. else 0.
  in
  row
    "  throughput: %5.0f q/s metrics off, %5.0f q/s on (e2e delta %+.1f%%, \
     noise-bound)@."
    qps_off qps_on e2e_delta_pct;
  row "  record path: %.0f ns per request of %.0f ns → overhead %.2f%%@."
    record_ns request_ns overhead_pct;
  metric_float "e6.qps_metrics_off" qps_off;
  metric_float "e6.qps_metrics_on" qps_on;
  metric_float "e6.e2e_delta_pct" e2e_delta_pct;
  metric_float "e6.record_path_ns" record_ns;
  metric_float "e6.metrics_overhead_pct" overhead_pct;
  metric_bool "e6.metrics_overhead_le_5pct" (overhead_pct <= 5.0);
  (* (2) server-side histogram vs client-side percentiles at 16 clients *)
  let o = run_once ~clients:16 ~per_client:30 in
  row
    "  16 clients: client p50/p95/p99 %5.2f/%5.2f/%5.2f ms, server \
     %5.2f/%5.2f/%5.2f ms, agree %b@."
    o.Loadtest.p50_ms o.Loadtest.p95_ms o.Loadtest.p99_ms
    o.Loadtest.server_p50_ms o.Loadtest.server_p95_ms o.Loadtest.server_p99_ms
    o.Loadtest.server_within_client;
  row "  means: client %.3f ms = ping floor %.3f ms + server %.3f ms (+ noise)@."
    o.Loadtest.client_mean_ms o.Loadtest.ping_mean_ms o.Loadtest.server_mean_ms;
  metric_float "e6.c16.client_p99_ms" o.Loadtest.p99_ms;
  metric_float "e6.c16.server_p99_ms" o.Loadtest.server_p99_ms;
  (* the full two-sided cross-check (mean identity + floor-adjusted
     median) is enforced by the out-of-process CI smoke via loadgen
     --check-percentiles; in-process the loadgen shares the server's
     runtime lock, which inflates client-side readings of multi-chunk
     replies, so only the structural direction is gateable here *)
  metric_bool "e6.c16.server_le_client" o.Loadtest.server_within_client;
  metric_bool "e6.c16.bit_identical" o.Loadtest.bit_identical;
  (* (3) EXPLAIN ANALYZE accounting on the Fig. 8 workload: report-tree
     sums must reproduce an independent plain run's E2 work counters *)
  let s = Workloads.film_session ~films:200 ~actors:100 in
  let db = Session.database s in
  let plan =
    Session.explain s
      {|SELECT Title FROM FILM, APPEARS_IN
        WHERE FILM.Numf = APPEARS_IN.Numf AND FILM.Numf = 7|}
  in
  List.iter
    (fun (key, label, rel) ->
      let plain, r_plain =
        Workloads.eval_work_physical Eval.Physical.Indexed db rel
      in
      let r_an, report =
        Eval.run_analyzed ~physical:Eval.Physical.Indexed db rel
      in
      let total get = Eval.fold_report (fun acc n -> acc + get n) 0 report in
      let combos = total (fun n -> n.Eval.combinations) in
      let probes = total (fun n -> n.Eval.probes) in
      let builds = total (fun n -> n.Eval.builds) in
      let matches =
        combos = plain.Eval.combinations
        && probes = plain.Eval.probes
        && builds = plain.Eval.builds
        && Relation.equal r_plain r_an
      in
      row
        "  %-26s report sums %6d combos + %6d probes + %5d builds, match %b@."
        label combos probes builds matches;
      metric_bool (key ^ ".analyze_sums_match") matches)
    [
      ("e6.fig8_unrewritten", "Fig. 8 join, unrewritten", plan.Session.translated);
      ("e6.fig8_rewritten", "Fig. 8 join, rewritten", plan.Session.rewritten);
    ]

(* -- E7: interned, columnar storage — vectorized loops vs boxed ------------ *)

(* The columnar tentpole A/B (DESIGN.md decision 14): the same plans on
   the same physical layer, boxed tuple loops ([~columnar:false] — the
   seed implementation, still the counter oracle) against interned
   columnar chunked loops ([~columnar:true]).  The work counters must be
   identical — the columnar rewrite changes the representation, not the
   algorithm — so result+counter parity and columnar-path liveness are
   gated booleans; the wall-clock and allocation shrinkage is the payoff
   recorded in EXPERIMENTS.md §E7.  Allocation is measured in kilowords
   on the sequential layer only (domain-local GC stats make the parallel
   figure a coordinator-only view) and gated decrease-or-hold: the
   chunked loops must never start allocating per tuple again. *)
let e7 () =
  section "E7" "columnar layout: interned ids + chunked int loops vs boxed";
  let time f =
    ignore (f ());
    (* warm-up: also forces the lazy column build out of the loop *)
    let reps = 3 in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      ignore (f ())
    done;
    (Unix.gettimeofday () -. t0) /. float_of_int reps *. 1000.
  in
  let alloc_kwords f =
    (* measured on a fresh domain: Gc.allocated_bytes is domain-local,
       and a clean domain carries none of the earlier sections' worker
       threads, so the sequential run's count is exact and repeatable *)
    Domain.join
      (Domain.spawn (fun () ->
           ignore (f ());
           let b0 = Gc.allocated_bytes () in
           ignore (f ());
           int_of_float ((Gc.allocated_bytes () -. b0) /. float_of_int (8 * 1000))))
  in
  row "  %-26s %10s %10s %8s %9s %s@." "" "boxed" "columnar" "speedup"
    "alloc kw" "parity";
  let compare key label ?domains db q =
    let physical =
      match domains with None -> Eval.Physical.Indexed | Some _ -> Eval.Physical.Parallel
    in
    let run ~columnar ?stats () =
      Eval.run ~physical ?domains ?stats ~columnar db q
    in
    let sb = Eval.fresh_stats () in
    let rb = run ~columnar:false ~stats:sb () in
    let sc = Eval.fresh_stats () in
    let rc = run ~columnar:true ~stats:sc () in
    let equal = Relation.equal rb rc in
    let counters_equal =
      sb.Eval.combinations = sc.Eval.combinations
      && sb.Eval.probes = sc.Eval.probes
      && sb.Eval.builds = sc.Eval.builds
      && sb.Eval.tuples_produced = sc.Eval.tuples_produced
    in
    let columnar_live = sc.Eval.columnar_ops > 0 in
    let t_boxed = time (fun () -> run ~columnar:false ()) in
    let t_col = time (fun () -> run ~columnar:true ()) in
    let speedup = t_boxed /. t_col in
    metric_int (key ^ ".combinations") sc.Eval.combinations;
    metric_int (key ^ ".probes") sc.Eval.probes;
    metric_int (key ^ ".builds") sc.Eval.builds;
    metric_bool (key ^ ".equal") equal;
    metric_bool (key ^ ".counters_equal") counters_equal;
    metric_bool (key ^ ".columnar_live") columnar_live;
    metric_float (key ^ ".boxed_ms") t_boxed;
    metric_float (key ^ ".columnar_ms") t_col;
    metric_float (key ^ ".speedup") speedup;
    let alloc_note =
      match domains with
      | Some _ -> ""
      | None ->
        let a_boxed = alloc_kwords (fun () -> run ~columnar:false ()) in
        let a_col = alloc_kwords (fun () -> run ~columnar:true ()) in
        (* the columnar count is exactly repeatable (chunked int loops,
           no hash-bucket shape sensitivity) and gated decrease-or-hold;
           the boxed baseline is bimodal across processes (hash-table
           growth interacts with minor-heap phase), so it is reported
           under a non-gated key and only the 2x-margin shrink claim is
           asserted *)
        metric_int (key ^ ".boxed_heap_kwords") a_boxed;
        metric_int (key ^ ".columnar_alloc_kwords") a_col;
        metric_bool (key ^ ".alloc_shrinks") (2 * a_col <= a_boxed);
        Fmt.str "%4d→%-4d" a_boxed a_col
    in
    row "  %-26s %8.2fms %8.2fms %7.1fx %9s equal %b, counters %b, live %b@."
      label t_boxed t_col speedup alloc_note equal counters_equal columnar_live;
    speedup
  in
  (* the E2 chain join at its bench sizes: counter-parity evidence *)
  ignore (compare "e7.chain40" "R⋈S⋈T, size 40" (Workloads.chain_join_db ~size:40)
            Workloads.chain_join_query);
  (* the E3 fat-intermediate chain: the hot-loop payoff, sequential and
     parallel *)
  let big = Workloads.par_chain_db ~size:2000 ~fan:50 in
  let s_chain =
    compare "e7.chain2000_fan50" "chain 2000 fan 50"
      big Workloads.par_chain_query
  in
  let s_par =
    compare "e7.par_chain2000_d4" "chain 2000 fan 50, d=4" ~domains:4 big
      Workloads.par_chain_query
  in
  (* a Figure-8-shaped selective join over interned CHAR columns: FILM ⋈
     APPEARS_IN with a selective Title probe, every title distinct so the
     intern table carries real weight *)
  let module Vtype = Eds_value.Vtype in
  let films = 4000 in
  let fig8_db =
    let db = Database.create () in
    Database.add_relation db "FILM8"
      (Relation.make
         [ ("Numf", Vtype.Int); ("Title", Vtype.String) ]
         (List.init films (fun i ->
              [ Value.Int i; Value.Str (Fmt.str "e7film-%d" i) ])));
    Database.add_relation db "APPEARS8"
      (Relation.make
         [ ("Numf", Vtype.Int); ("Actor", Vtype.String) ]
         (List.concat_map
            (fun i ->
              List.init 5 (fun j ->
                  [ Value.Int i; Value.Str (Fmt.str "e7actor-%d" ((i + j) mod 97)) ]))
            (List.init films Fun.id)));
    db
  in
  let fig8_q =
    Lera.Search
      ( [ Lera.Base "FILM8"; Lera.Base "APPEARS8" ],
        Lera.conj
          [
            Lera.eq (Lera.col 1 1) (Lera.col 2 1);
            Lera.eq (Lera.col 2 2) (Lera.Cst (Value.Str "e7actor-13"));
          ],
        [ Lera.col 1 2 ] )
  in
  let s_fig8 = compare "e7.fig8" "Fig. 8 interned CHAR join" fig8_db fig8_q in
  metric_int "e7.interned_strings" (Eds_value.Intern.size ());
  row "  intern table: %d distinct strings@." (Eds_value.Intern.size ());
  (* the headline gate: the hot loops must hold a 5x margin on at least
     one of the heavy workloads (chain-2000 sequential/parallel, fig8) *)
  let best = Float.max s_fig8 (Float.max s_chain s_par) in
  metric_float "e7.best_speedup" best;
  metric_bool "e7.speedup_ge_5" (best >= 5.0);
  row "  best columnar speedup: %.1fx (gate: >= 5x)@." best

let e8 () =
  section "E8"
    "materialized views: incremental maintenance vs recompute-per-read";
  (* An update-heavy reachability workload: [chains] disjoint chains of
     [len] edges each, then [n_ops] DML statements — head-prepending
     INSERTs on a rotating chain (the inserted edge joins the already
     materialized closure, so the delta saturates in a round or two), a
     periodic mid-chain DELETE (delete-and-rederive) and its re-INSERT —
     with the full transitive closure read back after every statement.
     The maintained session answers each read from the stored extent and
     pays a delta confined to the touched chain on writes; the twin
     session with the same view kept {e plain} re-expands the fixpoint
     over the whole graph on every read, which is exactly what a reader
     had to do before this subsystem existed. *)
  let chains = 48 in
  let len = 28 in
  let n_ops = 48 in
  (* node [i] of chain [c]; [i] goes negative as heads are prepended *)
  let node c i = (c * 1000) + 500 + i in
  let probe = "SELECT TC.A, TC.B FROM TC" in
  let view_body =
    "( SELECT Src, Dst FROM EDGE UNION SELECT E.Src, TC.B FROM EDGE E, TC \
     WHERE E.Dst = TC.A )"
  in
  (* one full run on a fresh session; only the op loop is timed *)
  let run ~materialized () =
    let s = Session.create () in
    let exec stmt = ignore (Session.exec_string s stmt) in
    exec "TABLE EDGE (Src : INT, Dst : INT)";
    exec
      (Fmt.str "CREATE %sVIEW TC (A, B) AS %s"
         (if materialized then "MATERIALIZED " else "")
         view_body);
    for c = 0 to chains - 1 do
      for i = 0 to len - 1 do
        exec
          (Fmt.str "INSERT INTO EDGE VALUES (%d, %d)" (node c i)
             (node c (i + 1)))
      done
    done;
    let es = Session.eval_stats s in
    let c0 = es.Eval.combinations and p0 = es.Eval.probes in
    let b0 = es.Eval.builds in
    let heads = Array.make chains 0 in
    let last = ref (Relation.empty []) in
    let t0 = Unix.gettimeofday () in
    for j = 0 to n_ops - 1 do
      let c = j mod chains in
      (match j mod 12 with
      | 6 ->
        exec
          (Fmt.str "DELETE FROM EDGE WHERE Src = %d AND Dst = %d" (node c 3)
             (node c 4))
      | 7 ->
        let c' = (j - 1) mod chains in
        exec
          (Fmt.str "INSERT INTO EDGE VALUES (%d, %d)" (node c' 3) (node c' 4))
      | _ ->
        let h = heads.(c) in
        exec
          (Fmt.str "INSERT INTO EDGE VALUES (%d, %d)" (node c (h - 1))
             (node c h));
        heads.(c) <- h - 1);
      last := Session.query s probe
    done;
    let ms = (Unix.gettimeofday () -. t0) *. 1000. in
    ( ms,
      !last,
      ( es.Eval.combinations - c0,
        es.Eval.probes - p0,
        es.Eval.builds - b0 ),
      Session.mv_stats s )
  in
  let avg ~materialized =
    ignore (run ~materialized ());
    (* warm-up *)
    let reps = 3 in
    let acc = ref 0. in
    let out = ref None in
    for _ = 1 to reps do
      let ms, rel, work, mv = run ~materialized () in
      acc := !acc +. ms;
      out := Some (rel, work, mv)
    done;
    let rel, work, mv = Option.get !out in
    (!acc /. float_of_int reps, rel, work, mv)
  in
  let t_mv, r_mv, (mc, mp, mb), mv = avg ~materialized:true in
  let t_plain, r_plain, (pc, _, _), _ = avg ~materialized:false in
  let equal = Relation.equal r_mv r_plain in
  let speedup = t_plain /. t_mv in
  row
    "  %d chains × %d edges + %d DML, closure read back after every \
     statement@."
    chains len n_ops;
  row "  plain view (recompute per read) : %8.1fms  %9d combinations@."
    t_plain pc;
  row "  materialized (incremental)      : %8.1fms  %9d combinations@." t_mv
    mc;
  row
    "  maintenance: %d incremental steps, %d fallback recomputes, %d delta \
     tuples@."
    mv.Eds_engine.Materializer.maintenance_runs
    mv.Eds_engine.Materializer.fallback_recomputes
    mv.Eds_engine.Materializer.delta_tuples;
  row "  speedup %.1fx (gate: >= 5x), extents identical: %b@." speedup equal;
  metric_int "e8.maintained_combinations" mc;
  metric_int "e8.maintained_probes" mp;
  metric_int "e8.maintained_builds" mb;
  metric_int "e8.recompute_combinations" pc;
  metric_int "e8.maintenance_steps"
    mv.Eds_engine.Materializer.maintenance_runs;
  metric_int "e8.fallback_recomputes"
    mv.Eds_engine.Materializer.fallback_recomputes;
  metric_int "e8.delta_tuples" mv.Eds_engine.Materializer.delta_tuples;
  metric_float "e8.maintained_ms" t_mv;
  metric_float "e8.recompute_ms" t_plain;
  metric_float "e8.maintain_speedup" speedup;
  metric_bool "e8.maintain_speedup_ge_5" (speedup >= 5.0);
  metric_bool "e8.bit_identical" equal

let e9 () =
  section "E9"
    "rule lab: differential verifier catch rate + rule discovery savings";
  (* catch rate on the committed known-bad corpus: every rule must be
     flagged unsound with a replayable, shrunk counterexample *)
  let bad = Rule_parser.parse_rules Corpus.known_bad in
  let bad_report = Verify.verify_rules ~trials:32 bad in
  let flagged, replayed, max_shrink =
    List.fold_left
      (fun (f, rep, mx) (rr : Verify.rule_report) ->
        match rr.Verify.soundness with
        | Verify.Unsound ce ->
          ( f + 1,
            (rep && Verify.check_counterexample rr.Verify.rule ce),
            max mx ce.Verify.shrink_steps )
        | _ -> (f, rep, mx))
      (0, true, 0) bad_report.Verify.rules
  in
  row "  known-bad corpus: %d/%d rules flagged unsound, replayable: %b@."
    flagged (List.length bad) replayed;
  row "  deepest shrink: %d accepted steps@." max_shrink;
  (* the paper's own rule library must come out clean *)
  let paper_report = Verify.verify_rules ~trials:32 (Rulesets.all ()) in
  row "  paper rules: clean %b, %d/%d exercised on the seeded trials@."
    (Verify.clean paper_report)
    (Verify.exercised paper_report)
    (List.length paper_report.Verify.rules);
  (* discovery: enumerate, screen, measure, verify *)
  let d = Discover.run ~screen_trials:16 ~verify_trials:16 ~max_candidates:80 () in
  row "  discovery: %d enumerated, %d screened out, %d without savings@."
    d.Discover.enumerated d.Discover.screened_out d.Discover.no_savings;
  List.iter
    (fun (c : Discover.candidate) ->
      row "    %a --> %a  (+%d work units, fired %d)@." Term.pp
        c.Discover.rule.Rule.lhs Term.pp c.Discover.rule.Rule.rhs
        c.Discover.savings c.Discover.fired)
    d.Discover.survivors;
  let best =
    match d.Discover.survivors with c :: _ -> c.Discover.savings | [] -> 0
  in
  metric_int "e9.corpus_size" (List.length bad);
  metric_int "e9.verifier.bad_flagged" flagged;
  metric_bool "e9.verifier.all_bad_flagged" (flagged = List.length bad);
  metric_bool "e9.verifier.counterexamples_replay" replayed;
  metric_bool "e9.verifier.paper_rules_clean" (Verify.clean paper_report);
  metric_int "e9.verifier.exercised" (Verify.exercised paper_report);
  metric_int "e9.discovery.survivors" (List.length d.Discover.survivors);
  metric_int "e9.discovery.best_savings" best;
  metric_bool "e9.discovery.positive_savings"
    (List.length d.Discover.survivors > 0 && best > 0)

let all () =
  Fmt.pr "EDS rule-based query rewriter — experiment report (per-figure)@.";
  Fmt.pr "paper: Finance & Gardarin, ICDE 1991 (no measured tables: each@.";
  Fmt.pr "figure is reproduced as an executable artifact and measured)@.";
  f1 ();
  f3 ();
  f4 ();
  f5 ();
  f6 ();
  f7 ();
  f8 ();
  f9 ();
  f10_11 ();
  f12 ();
  e1 ();
  e2 ();
  e3 ();
  e4 ();
  e5 ();
  e6 ();
  e7 ();
  e8 ();
  e9 ();
  c1 ();
  c2 ();
  c3 ();
  a1 ()
