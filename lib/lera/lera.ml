module Value = Eds_value.Value

type scalar =
  | Cst of Value.t
  | Col of int * int
  | Call of string * scalar list

type rel =
  | Base of string
  | Rvar of string
  | Filter of rel * scalar
  | Project of rel * scalar list
  | Join of rel * rel * scalar
  | Union of rel list
  | Diff of rel * rel
  | Inter of rel * rel
  | Search of rel list * scalar * scalar list
  | Fix of string * rel
  | Nest of rel * int list * int list
  | Unnest of rel * int

let tru = Cst (Value.Bool true)
let fls = Cst (Value.Bool false)

let conjuncts q =
  let rec go acc = function
    | Call ("and", args) -> List.fold_left go acc args
    | Cst (Value.Bool true) -> acc
    | s -> s :: acc
  in
  List.rev (go [] q)

let conj qs =
  match List.concat_map conjuncts qs with
  | [] -> tru
  | [ q ] -> q
  | qs' -> Call ("and", qs')

let disjuncts q =
  let rec go acc = function
    | Call ("or", args) -> List.fold_left go acc args
    | Cst (Value.Bool false) -> acc
    | s -> s :: acc
  in
  List.rev (go [] q)

let disj qs =
  match List.concat_map disjuncts qs with
  | [] -> fls
  | [ q ] -> q
  | qs' -> Call ("or", qs')

let eq a b = Call ("=", [ a; b ])
let col i j = Col (i, j)

let rec equal_scalar a b =
  match a, b with
  | Cst u, Cst v -> Value.equal u v
  | Col (i, j), Col (i', j') -> i = i' && j = j'
  | Call (f, xs), Call (g, ys) ->
    String.equal f g && List.length xs = List.length ys
    && List.for_all2 equal_scalar xs ys
  | (Cst _ | Col _ | Call _), _ -> false

let rec equal r r' =
  match r, r' with
  | Base n, Base n' | Rvar n, Rvar n' -> String.equal n n'
  | Filter (a, q), Filter (a', q') -> equal a a' && equal_scalar q q'
  | Project (a, ps), Project (a', ps') ->
    equal a a' && List.length ps = List.length ps' && List.for_all2 equal_scalar ps ps'
  | Join (a, b, q), Join (a', b', q') -> equal a a' && equal b b' && equal_scalar q q'
  | Union rs, Union rs' -> List.length rs = List.length rs' && List.for_all2 equal rs rs'
  | Diff (a, b), Diff (a', b') | Inter (a, b), Inter (a', b') -> equal a a' && equal b b'
  | Search (rs, q, ps), Search (rs', q', ps') ->
    List.length rs = List.length rs'
    && List.for_all2 equal rs rs'
    && equal_scalar q q'
    && List.length ps = List.length ps'
    && List.for_all2 equal_scalar ps ps'
  | Fix (n, e), Fix (n', e') -> String.equal n n' && equal e e'
  | Nest (a, g, c), Nest (a', g', c') -> equal a a' && g = g' && c = c'
  | Unnest (a, i), Unnest (a', i') -> equal a a' && i = i'
  | ( ( Base _ | Rvar _ | Filter _ | Project _ | Join _ | Union _ | Diff _
      | Inter _ | Search _ | Fix _ | Nest _ | Unnest _ ),
      _ ) ->
    false

(* Structural hashes compatible with [equal_scalar]/[equal]: used to key
   hashtables over LERA terms (the evaluator's closed-fixpoint memo). *)
let rec hash_scalar s =
  match s with
  | Cst v -> (3 * 31) + Value.hash v
  | Col (i, j) -> (((5 * 31) + i) * 31) + j
  | Call (f, args) ->
    List.fold_left
      (fun acc a -> (acc * 31) + hash_scalar a)
      ((7 * 31) + Hashtbl.hash f)
      args

let hash_ints seed = List.fold_left (fun acc i -> (acc * 31) + i) seed

let rec hash r =
  match r with
  | Base n -> (11 * 31) + Hashtbl.hash n
  | Rvar n -> (13 * 31) + Hashtbl.hash n
  | Filter (a, q) -> (((17 * 31) + hash a) * 31) + hash_scalar q
  | Project (a, ps) ->
    List.fold_left (fun acc p -> (acc * 31) + hash_scalar p) ((19 * 31) + hash a) ps
  | Join (a, b, q) -> (((((23 * 31) + hash a) * 31) + hash b) * 31) + hash_scalar q
  | Union rs -> List.fold_left (fun acc x -> (acc * 31) + hash x) 29 rs
  | Diff (a, b) -> (((31 * 31) + hash a) * 31) + hash b
  | Inter (a, b) -> (((37 * 31) + hash a) * 31) + hash b
  | Search (rs, q, ps) ->
    let acc = List.fold_left (fun acc x -> (acc * 31) + hash x) 41 rs in
    List.fold_left (fun acc p -> (acc * 31) + hash_scalar p) ((acc * 31) + hash_scalar q) ps
  | Fix (n, e) -> (((43 * 31) + Hashtbl.hash n) * 31) + hash e
  | Nest (a, g, c) -> hash_ints (hash_ints ((47 * 31) + hash a) g) c
  | Unnest (a, i) -> (((53 * 31) + hash a) * 31) + i

let inputs = function
  | Base _ | Rvar _ -> []
  | Filter (a, _) | Project (a, _) | Nest (a, _, _) | Unnest (a, _) | Fix (_, a) -> [ a ]
  | Join (a, b, _) | Diff (a, b) | Inter (a, b) -> [ a; b ]
  | Union rs -> rs
  | Search (rs, _, _) -> rs

let rec operator_count r =
  match r with
  | Base _ | Rvar _ -> 0
  | Filter _ | Project _ | Join _ | Union _ | Diff _ | Inter _ | Search _
  | Fix _ | Nest _ | Unnest _ ->
    List.fold_left (fun n i -> n + operator_count i) 1 (inputs r)

let scalar_cols s =
  let rec go acc = function
    | Cst _ -> acc
    | Col (i, j) -> (i, j) :: acc
    | Call (_, args) -> List.fold_left go acc args
  in
  List.rev (go [] s)

let free_rvars r =
  let add acc n = if List.mem n acc then acc else n :: acc in
  let rec go bound acc = function
    | Base _ -> acc
    | Rvar n -> if List.mem n bound then acc else add acc n
    | Fix (n, e) -> go (n :: bound) acc e
    | ( Filter _ | Project _ | Join _ | Union _ | Diff _ | Inter _ | Search _
      | Nest _ | Unnest _ ) as op ->
      List.fold_left (go bound) acc (inputs op)
  in
  List.rev (go [] [] r)

let rec obviously_empty r =
  match r with
  | Base _ | Rvar _ -> false
  | Filter (a, q) -> equal_scalar q fls || obviously_empty a
  | Search (rs, q, _) -> equal_scalar q fls || List.exists obviously_empty rs
  | Join (a, b, q) -> equal_scalar q fls || obviously_empty a || obviously_empty b
  | Project (a, _) | Unnest (a, _) | Nest (a, _, _) -> obviously_empty a
  | Union rs -> rs <> [] && List.for_all obviously_empty rs
  | Inter (a, b) -> obviously_empty a || obviously_empty b
  | Diff (a, _) -> obviously_empty a
  | Fix (_, body) ->
    (* a fixpoint is empty when every arm is empty (treating the recursion
       variable itself as empty is sound for monotone bodies) *)
    (match body with Union arms -> List.for_all obviously_empty arms | arm -> obviously_empty arm)

let map_scalars f = function
  | Filter (a, q) -> Filter (a, f q)
  | Project (a, ps) -> Project (a, List.map f ps)
  | Join (a, b, q) -> Join (a, b, f q)
  | Search (rs, q, ps) -> Search (rs, f q, List.map f ps)
  | (Base _ | Rvar _ | Union _ | Diff _ | Inter _ | Fix _ | Nest _ | Unnest _) as r -> r

(* -- pretty printing --------------------------------------------------- *)

let infix = [ "="; "<>"; "<"; "<="; ">"; ">="; "+"; "-"; "*"; "/" ]

let rec pp_scalar ppf = function
  | Cst v -> Value.pp ppf v
  | Col (i, j) -> Fmt.pf ppf "%d.%d" i j
  | Call ("and", args) ->
    Fmt.pf ppf "%a" (Fmt.list ~sep:(Fmt.any " \xE2\x88\xA7 ") pp_atom) args
  | Call ("or", args) ->
    Fmt.pf ppf "%a" (Fmt.list ~sep:(Fmt.any " \xE2\x88\xA8 ") pp_atom) args
  | Call (op, [ a; b ]) when List.mem op infix ->
    Fmt.pf ppf "%a %s %a" pp_atom a op pp_atom b
  | Call (f, args) ->
    Fmt.pf ppf "%s(%a)" f (Fmt.list ~sep:(Fmt.any ", ") pp_scalar) args

and pp_atom ppf s =
  match s with
  | Call (("and" | "or"), _) -> Fmt.pf ppf "(%a)" pp_scalar s
  | Cst _ | Col _ | Call _ -> pp_scalar ppf s

let pp_cols ppf cols = Fmt.list ~sep:(Fmt.any ", ") Fmt.int ppf cols

let rec pp ppf = function
  | Base n -> Fmt.string ppf n
  | Rvar n -> Fmt.pf ppf "$%s" n
  | Filter (a, q) -> Fmt.pf ppf "filter(%a, [%a])" pp a pp_scalar q
  | Project (a, ps) -> Fmt.pf ppf "project(%a, (%a))" pp a pp_scalars ps
  | Join (a, b, q) -> Fmt.pf ppf "join(%a, %a, [%a])" pp a pp b pp_scalar q
  | Union rs -> Fmt.pf ppf "union({%a})" (Fmt.list ~sep:(Fmt.any ", ") pp) rs
  | Diff (a, b) -> Fmt.pf ppf "difference(%a, %a)" pp a pp b
  | Inter (a, b) -> Fmt.pf ppf "intersection(%a, %a)" pp a pp b
  | Search (rs, q, ps) ->
    Fmt.pf ppf "search((%a), [%a], (%a))"
      (Fmt.list ~sep:(Fmt.any ", ") pp)
      rs pp_scalar q pp_scalars ps
  | Fix (n, e) -> Fmt.pf ppf "fix(%s, %a)" n pp e
  | Nest (a, g, c) -> Fmt.pf ppf "nest(%a, (%a), (%a))" pp a pp_cols g pp_cols c
  | Unnest (a, i) -> Fmt.pf ppf "unnest(%a, %d)" pp a i

and pp_scalars ppf ps = Fmt.list ~sep:(Fmt.any ", ") pp_scalar ppf ps

let pp_tree ppf root =
  let rec go indent r =
    let pad = String.make (2 * indent) ' ' in
    let line fmt = Fmt.pf ppf ("%s" ^^ fmt ^^ "@.") pad in
    match r with
    | Base n -> line "%s" n
    | Rvar n -> line "$%s" n
    | Filter (a, q) ->
      line "filter [%a]" pp_scalar q;
      go (indent + 1) a
    | Project (a, ps) ->
      line "project (%a)" pp_scalars ps;
      go (indent + 1) a
    | Join (a, b, q) ->
      line "join [%a]" pp_scalar q;
      go (indent + 1) a;
      go (indent + 1) b
    | Union rs ->
      line "union";
      List.iter (go (indent + 1)) rs
    | Diff (a, b) ->
      line "difference";
      go (indent + 1) a;
      go (indent + 1) b
    | Inter (a, b) ->
      line "intersection";
      go (indent + 1) a;
      go (indent + 1) b
    | Search (rs, q, ps) ->
      line "search [%a] -> (%a)" pp_scalar q pp_scalars ps;
      List.iter (go (indent + 1)) rs
    | Fix (n, e) ->
      line "fix %s" n;
      go (indent + 1) e
    | Nest (a, g, c) ->
      line "nest group=(%a) collect=(%a)" pp_cols g pp_cols c;
      go (indent + 1) a
    | Unnest (a, i) ->
      line "unnest %d" i;
      go (indent + 1) a
  in
  go 0 root

let to_string r = Fmt.str "%a" pp r
let scalar_to_string s = Fmt.str "%a" pp_scalar s
