(** Bridge between the LERA algebra and the term representation used by
    the rewriter (paper §4: "LERA operators interpreted as functions").

    Encoding:
    - relations: [rel('FILM')], [rvar('R')], [filter(r, q)], [proj(r,
      tuple(…))], [join(r1, r2, q)], [union(set(r1, …, rn))],
      [difference(r1, r2)], [intersection(r1, r2)],
      [search(list(r1, …, rn), q, tuple(e1, …, em))], [fix('R', body)],
      [nest(r, tuple(groupcols), tuple(nestcols))], [unnest(r, i)];
    - scalars: column [i.j] is [@(i, j)]; conjunction is n-ary over an
      unordered constructor, [and(bag(c1, …, cn))], so that semantic
      rules can match any pair of conjuncts with a collection variable
      (disjunction likewise).

    The unordered conjunction encoding is what makes one Figure-11 rule
    such as transitivity apply to conjuncts in any position. *)

module Term = Eds_term.Term

exception Bridge_error of string

val to_term : Lera.rel -> Term.t
val of_term : Term.t -> Lera.rel
(** Raises {!Bridge_error} if the term is not a well-formed encoding
    (e.g. after a bad user rule rewrote it into nonsense). *)

val scalar_to_term : Lera.scalar -> Term.t
val scalar_of_term : Term.t -> Lera.scalar

val normalize : Term.t -> Term.t
(** Structural normalization applied after every rewrite step:
    flattens nested [and]/[or], collapses singleton and empty
    conjunctions, and evaluates the rhs constructor functions [append]
    (concatenation of list/tuple constructors) and [set_union] (union of
    set constructors) once their arguments are explicit constructors.
    Logical laws such as [f ∧ false → false] are deliberately {e not}
    applied here — they are Figure-12 rewrite rules.

    Sharing: when a subterm is already in normal form the function
    returns it physically unchanged ([normalize t == t]); after a
    rewrite step only the spine above the redex is reallocated.  The
    engine's incremental re-scan and schema memoization rely on this. *)

(** {1 Column utilities over scalar terms}

    These implement the SUBSTITUTE/SHIFT external functions of the
    Figure 7–8 rules. *)

val map_cols : (int -> int -> Term.t) -> Term.t -> Term.t
(** Replace every column reference [@(i, j)]. *)

val shift_cols : by:int -> Term.t -> Term.t
(** Add [by] to the operand index of every column reference. *)

val cols_of : Term.t -> (int * int) list
(** All column references, left to right. *)

val merge_subst : slot:int -> inner_arity:int -> proj:Term.t list -> Term.t -> Term.t
(** [merge_subst ~slot:k ~inner_arity:nz ~proj:b t] rewrites an outer
    search scalar when the inner search occupying operand [k] (with [nz]
    operands and projection list [b]) is spliced in place: references
    [@(k, j)] become [b_j] shifted by [k-1]; operands beyond [k] shift by
    [nz - 1]. *)
