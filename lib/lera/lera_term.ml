module Value = Eds_value.Value
module Term = Eds_term.Term

exception Bridge_error of string

let error fmt = Fmt.kstr (fun s -> raise (Bridge_error s)) fmt

let rec scalar_to_term (s : Lera.scalar) : Term.t =
  match s with
  | Lera.Cst v -> Term.Cst v
  | Lera.Col (i, j) -> Term.app "@" [ Term.int i; Term.int j ]
  | Lera.Call ("and", args) ->
    Term.app "and" [ Term.Coll (Term.Bag, List.map scalar_to_term args) ]
  | Lera.Call ("or", args) ->
    Term.app "or" [ Term.Coll (Term.Bag, List.map scalar_to_term args) ]
  | Lera.Call (f, args) -> Term.app f (List.map scalar_to_term args)

let rec scalar_of_term (t : Term.t) : Lera.scalar =
  match t with
  | Term.Cst v -> Lera.Cst v
  | Term.App ("@", [ Term.Cst (Value.Int i); Term.Cst (Value.Int j) ]) -> Lera.Col (i, j)
  | Term.App ("and", [ Term.Coll (Term.Bag, cs) ]) ->
    Lera.conj (List.map scalar_of_term cs)
  | Term.App ("or", [ Term.Coll (Term.Bag, cs) ]) ->
    Lera.disj (List.map scalar_of_term cs)
  | Term.App (("and" | "or") as f, args) ->
    (* binary form, as written in user rules *)
    let make = if String.equal f "and" then Lera.conj else Lera.disj in
    make (List.map scalar_of_term args)
  | Term.App (f, args) -> Lera.Call (f, List.map scalar_of_term args)
  | Term.Var _ | Term.Cvar _ | Term.Coll _ ->
    error "not a scalar term: %a" Term.pp t

let ints_tuple js = Term.Coll (Term.Tuple, List.map Term.int js)

let rec to_term (r : Lera.rel) : Term.t =
  match r with
  | Lera.Base n -> Term.app "rel" [ Term.str n ]
  | Lera.Rvar n -> Term.app "rvar" [ Term.str n ]
  | Lera.Filter (a, q) -> Term.app "filter" [ to_term a; scalar_to_term q ]
  | Lera.Project (a, ps) ->
    Term.app "proj" [ to_term a; Term.Coll (Term.Tuple, List.map scalar_to_term ps) ]
  | Lera.Join (a, b, q) -> Term.app "join" [ to_term a; to_term b; scalar_to_term q ]
  | Lera.Union rs -> Term.app "union" [ Term.Coll (Term.Set, List.map to_term rs) ]
  | Lera.Diff (a, b) -> Term.app "difference" [ to_term a; to_term b ]
  | Lera.Inter (a, b) -> Term.app "intersection" [ to_term a; to_term b ]
  | Lera.Search (rs, q, ps) ->
    Term.app "search"
      [
        Term.Coll (Term.List, List.map to_term rs);
        scalar_to_term q;
        Term.Coll (Term.Tuple, List.map scalar_to_term ps);
      ]
  | Lera.Fix (n, body) -> Term.app "fix" [ Term.str n; to_term body ]
  | Lera.Nest (a, group, nested) ->
    Term.app "nest" [ to_term a; ints_tuple group; ints_tuple nested ]
  | Lera.Unnest (a, i) -> Term.app "unnest" [ to_term a; Term.int i ]

let int_of_term = function
  | Term.Cst (Value.Int i) -> i
  | t -> error "expected an integer, got %a" Term.pp t

let ints_of_tuple = function
  | Term.Coll (Term.Tuple, js) -> List.map int_of_term js
  | t -> error "expected a tuple of column numbers, got %a" Term.pp t

let rec of_term (t : Term.t) : Lera.rel =
  match t with
  | Term.App ("rel", [ Term.Cst (Value.Str n) ]) -> Lera.Base n
  | Term.App ("rvar", [ Term.Cst (Value.Str n) ]) -> Lera.Rvar n
  | Term.App ("filter", [ a; q ]) -> Lera.Filter (of_term a, scalar_of_term q)
  | Term.App ("proj", [ a; Term.Coll (Term.Tuple, ps) ]) ->
    Lera.Project (of_term a, List.map scalar_of_term ps)
  | Term.App ("join", [ a; b; q ]) -> Lera.Join (of_term a, of_term b, scalar_of_term q)
  | Term.App ("union", [ Term.Coll (Term.Set, rs) ]) -> Lera.Union (List.map of_term rs)
  | Term.App ("difference", [ a; b ]) -> Lera.Diff (of_term a, of_term b)
  | Term.App ("intersection", [ a; b ]) -> Lera.Inter (of_term a, of_term b)
  | Term.App ("search", [ Term.Coll (Term.List, rs); q; Term.Coll (Term.Tuple, ps) ]) ->
    Lera.Search (List.map of_term rs, scalar_of_term q, List.map scalar_of_term ps)
  | Term.App ("fix", [ Term.Cst (Value.Str n); body ]) -> Lera.Fix (n, of_term body)
  | Term.App ("nest", [ a; group; nested ]) ->
    Lera.Nest (of_term a, ints_of_tuple group, ints_of_tuple nested)
  | Term.App ("unnest", [ a; i ]) -> Lera.Unnest (of_term a, int_of_term i)
  | Term.Var _ | Term.Cvar _ | Term.Cst _ | Term.App _ | Term.Coll _ ->
    error "not a relational term: %a" Term.pp t

(* -- normalization ----------------------------------------------------- *)

let flatten_junction op cs =
  let rec expand t =
    match t with
    | Term.App (o, [ Term.Coll (Term.Bag, inner) ]) when String.equal o op ->
      List.concat_map expand inner
    | Term.App (o, args) when String.equal o op && List.length args >= 2 ->
      List.concat_map expand args
    | Term.Var _ | Term.Cvar _ | Term.Cst _ | Term.App _ | Term.Coll _ -> [ t ]
  in
  List.concat_map expand cs

(* Evaluate the rhs constructor functions once their arguments are explicit
   collection constructors of a common kind. *)
let eval_constructor f args =
  let concat kinds_ok =
    let explode = function
      | Term.Coll (k, ts) when List.mem k kinds_ok -> Some ts
      | Term.Var _ | Term.Cvar _ | Term.Cst _ | Term.App _ | Term.Coll _ -> None
    in
    match List.map explode args with
    | [] -> None
    | parts when List.for_all Option.is_some parts ->
      let kind =
        match args with
        | Term.Coll (k, _) :: _ -> k
        | _ -> assert false
      in
      Some (Term.Coll (kind, List.concat_map Option.get parts))
    | _ -> None
  in
  match f with
  | "append" -> concat [ Term.List; Term.Tuple; Term.Array ]
  | "set_union" -> concat [ Term.Set; Term.Bag ]
  | _ -> None

(* Qualifications directly under a relational operator stay in the n-ary
   and(bag(…)) form even with a single conjunct, so that conjunct-set
   rules (the Figure 10-12 family) match them; boolean constants and
   still-unbound variables are left alone. *)
let requalify (q : Term.t) : Term.t =
  match q with
  | Term.App ("and", [ Term.Coll (Term.Bag, _) ]) -> q
  | Term.Cst (Value.Bool _) | Term.Var _ | Term.Cvar _ -> q
  | _ -> Term.App ("and", [ Term.Coll (Term.Bag, [ q ]) ])

(* union is associative: members that are themselves unions splice into
   the enclosing operand set *)
let flatten_union_members members =
  List.concat_map
    (fun m ->
      match m with
      | Term.App ("union", [ Term.Coll (Term.Set, inner) ]) -> inner
      | _ -> [ m ])
    members

(* Normalization preserves physical identity of already-normal subterms:
   the rewrite engine re-normalizes the whole query after every step, and
   returning [t] itself (==) whenever nothing changed means only the
   rebuilt spine above a redex is reallocated; everything else keeps its
   identity, which the engine's incremental re-scan and schema cache key
   on.  The helpers below implement the copy-avoidance. *)

let map_sharing f xs =
  let changed = ref false in
  let ys =
    List.map
      (fun x ->
        let y = f x in
        if not (y == x) then changed := true;
        y)
      xs
  in
  if !changed then ys else xs

let rec strictly_sorted = function
  | a :: (b :: _ as rest) -> Term.compare a b < 0 && strictly_sorted rest
  | [] | [ _ ] -> true

let sort_uniq_sharing xs =
  if strictly_sorted xs then xs else List.sort_uniq Term.compare xs

let list_sharing old fresh =
  if List.length fresh = List.length old && List.for_all2 ( == ) fresh old then old
  else fresh

let rec normalize (t : Term.t) : Term.t =
  match t with
  | Term.Var _ | Term.Cvar _ | Term.Cst _ -> t
  | Term.Coll (Term.Set, args) ->
    (* set constructors (e.g. a union's operand set) are canonicalized:
       sorted, duplicates removed *)
    let args' = sort_uniq_sharing (map_sharing normalize args) in
    if args' == args then t else Term.Coll (Term.Set, args')
  | Term.Coll (k, args) ->
    let args' = map_sharing normalize args in
    if args' == args then t else Term.Coll (k, args')
  | Term.App (f, args0) -> (
    let args = map_sharing normalize args0 in
    match f, args with
    | ("and" | "or"), [ Term.Coll (Term.Bag, cs) ] -> (
      match junction f cs with
      | Term.App (_, [ Term.Coll (Term.Bag, cs') ]) when cs' == cs && args == args0
        ->
        t
      | t' -> t')
    | ("and" | "or"), (_ :: _ :: _ as cs) -> junction f cs
    | "union", [ Term.Coll (Term.Set, members) ] ->
      let members' =
        sort_uniq_sharing (list_sharing members (flatten_union_members members))
      in
      if members' == members && args == args0 then t
      else Term.App ("union", [ Term.Coll (Term.Set, members') ])
    | "search", [ ins; q; p ] ->
      let q' = requalify q in
      if q' == q && args == args0 then t else Term.App ("search", [ ins; q'; p ])
    | "filter", [ r; q ] ->
      let q' = requalify q in
      if q' == q && args == args0 then t else Term.App ("filter", [ r; q' ])
    | "join", [ a; b; q ] ->
      let q' = requalify q in
      if q' == q && args == args0 then t else Term.App ("join", [ a; b; q' ])
    | _ -> (
      match eval_constructor f args with
      | Some t' -> t'
      | None -> if args == args0 then t else Term.App (f, args)))

and junction op cs =
  (* conjunction and disjunction are commutative and idempotent, so the
     argument bag is canonicalized: sorted, duplicates removed.  This
     also keeps growth rules (transitivity, equality substitution) from
     re-deriving conjuncts that are already present. *)
  match sort_uniq_sharing (list_sharing cs (flatten_junction op cs)) with
  | [] -> if String.equal op "and" then Term.tru else Term.fls
  | [ c ] -> c
  | cs' -> Term.App (op, [ Term.Coll (Term.Bag, cs') ])

(* -- column utilities -------------------------------------------------- *)

let rec map_cols f (t : Term.t) : Term.t =
  match t with
  | Term.App ("@", [ Term.Cst (Value.Int i); Term.Cst (Value.Int j) ]) -> f i j
  | Term.Var _ | Term.Cvar _ | Term.Cst _ -> t
  | Term.App (g, args) -> Term.App (g, List.map (map_cols f) args)
  | Term.Coll (k, args) -> Term.Coll (k, List.map (map_cols f) args)

let col_term i j = Term.app "@" [ Term.int i; Term.int j ]
let shift_cols ~by t = map_cols (fun i j -> col_term (i + by) j) t

let cols_of t =
  let rec go acc t =
    match t with
    | Term.App ("@", [ Term.Cst (Value.Int i); Term.Cst (Value.Int j) ]) ->
      (i, j) :: acc
    | Term.Var _ | Term.Cvar _ | Term.Cst _ -> acc
    | Term.App (_, args) | Term.Coll (_, args) -> List.fold_left go acc args
  in
  List.rev (go [] t)

let merge_subst ~slot ~inner_arity ~proj t =
  let replace i j =
    if i < slot then col_term i j
    else if i = slot then begin
      match List.nth_opt proj (j - 1) with
      | Some e -> shift_cols ~by:(slot - 1) e
      | None ->
        error "merge_subst: projection of the inner search has %d items, need %d"
          (List.length proj) j
    end
    else col_term (i + inner_arity - 1) j
  in
  map_cols replace t
