(** LERA, the extended relational algebra of the EDS server (paper §3).

    LERA is the target language of the query rewriter: an ESQL query is a
    LERA expression mapping collections into a collection.  It extends
    Codd's algebra with a fixpoint operator, nest/unnest operators and
    ADT function calls inside qualifications and projections.

    Attribute references are positional, as in the paper ([1.2] is the
    second attribute of the first operand of an n-ary operator). *)

module Value = Eds_value.Value

(** Scalar expressions: constants, positional column references and ADT
    function calls.  Boolean-valued scalars serve as qualifications;
    conjunction/disjunction/negation are the ADT functions [and]/[or]/
    [not] so that one expression type covers "possibly complex
    conditions" uniformly. *)
type scalar =
  | Cst of Value.t
  | Col of int * int  (** [Col (i, j)] = [i.j], both 1-based *)
  | Call of string * scalar list

type rel =
  | Base of string  (** stored relation *)
  | Rvar of string  (** recursion variable bound by an enclosing [Fix] *)
  | Filter of rel * scalar
  | Project of rel * scalar list
  | Join of rel * rel * scalar
  | Union of rel list  (** the n-ary [union*] *)
  | Diff of rel * rel
  | Inter of rel * rel
  | Search of rel list * scalar * scalar list
      (** compound projection + restriction + n-ary join (paper §3.1) *)
  | Fix of string * rel
      (** [Fix (r, e)] computes the saturation R = E(R) (paper §3.2);
          [Rvar r] inside [e] denotes R *)
  | Nest of rel * int list * int list
      (** [Nest (r, group, nested)]: group on columns [group], collecting
          columns [nested] into a set-valued attribute appended last *)
  | Unnest of rel * int
      (** flatten the collection-valued column [i] *)

(** {1 Qualification helpers} *)

val conj : scalar list -> scalar
(** Conjunction, flattening nested [and]s; [conj []] is [true]. *)

val disj : scalar list -> scalar

val conjuncts : scalar -> scalar list
(** Inverse of {!conj}: top-level conjuncts ([true] yields []). *)

val tru : scalar
val fls : scalar

val eq : scalar -> scalar -> scalar
val col : int -> int -> scalar

(** {1 Structure} *)

val equal_scalar : scalar -> scalar -> bool
val equal : rel -> rel -> bool

val hash_scalar : scalar -> int
val hash : rel -> int
(** Structural hashes compatible with {!equal_scalar}/{!equal} — equal
    terms hash equally, so terms can key hashtables (the evaluator's
    closed-fixpoint memo). *)

val operator_count : rel -> int
(** Number of algebra operators — the Figure-7 "size of a LERA program"
    metric used by the merging experiments. *)

val scalar_cols : scalar -> (int * int) list
(** Column references occurring in a scalar, left to right. *)

val free_rvars : rel -> string list
(** Recursion variables not bound by an enclosing [Fix]. *)

val obviously_empty : rel -> bool
(** Conservative syntactic emptiness: true when the expression provably
    yields no tuples because a [false] qualification (produced by the
    simplification rules detecting an inconsistency, §6.2) starves it.
    A [false] answer means "don't bother executing"; [true] results are
    always sound. *)

val inputs : rel -> rel list
(** Direct relational operands of an operator. *)

val map_scalars : (scalar -> scalar) -> rel -> rel
(** Rewrite every qualification/projection scalar of the {e root} operator
    (not recursive). *)

(** {1 Pretty printing (paper concrete syntax)} *)

val pp_scalar : Format.formatter -> scalar -> unit
val pp : Format.formatter -> rel -> unit
(** Single-line, paper-style concrete syntax. *)

val pp_tree : Format.formatter -> rel -> unit
(** Indented operator tree, one operator per line — readable for the
    large plans the magic transformation produces. *)

val to_string : rel -> string
val scalar_to_string : scalar -> string
