(** Pattern matching of rule left-hand sides against query terms
    (paper §4.1).

    Matching is syntactic for ordered constructors and associative-
    commutative for [SET]/[BAG] constructors: a concrete sub-pattern may
    match {e any} element, and a collection variable captures the
    remaining sub-multiset.  Because several matches may exist and a
    rule's constraints can reject some of them, the matcher enumerates
    all matches lazily; the rewriter takes the first one whose
    constraints hold. *)

val head_compatible : pattern:Term.t -> Term.t -> bool
(** Constant-time necessary condition for a match: a variable pattern is
    compatible with anything; an application pattern requires the same
    head symbol (or a function variable head); a collection pattern
    requires the same constructor kind; a constant pattern requires the
    equal constant.  [head_compatible ~pattern t = false] implies
    [all ~pattern t] is empty, so dispatch structures (the engine's rule
    index) may skip the pattern without running the matcher. *)

val all : pattern:Term.t -> Term.t -> Subst.t Seq.t
(** All substitutions [s] such that [Subst.apply s pattern] equals the
    subject term ({!Term.equal}, i.e. modulo ordering in unordered
    constructors).  Non-linear patterns (repeated variables) require
    equal bindings.

    Enumeration order: for lists, collection variables try shorter
    prefixes first; for sets/bags, concrete sub-patterns try elements in
    the subject's order, and when several collection variables share the
    leftover, elements are distributed to the first variable first.

    Raises [Invalid_argument] if the pattern uses a collection variable
    outside a collection constructor. *)

val first : pattern:Term.t -> Term.t -> Subst.t option

val matches : pattern:Term.t -> Term.t -> bool
