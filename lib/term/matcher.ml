module Value = Eds_value.Value

let ( let* ) s f = Seq.concat_map f s

let of_option = function Some x -> Seq.return x | None -> Seq.empty

(* [pick ts] enumerates (element, remaining elements) choices. *)
let pick ts =
  let rec go before after () =
    match after with
    | [] -> Seq.Nil
    | t :: rest ->
      Seq.Cons ((t, List.rev_append before rest), go (t :: before) rest)
  in
  go [] ts

(* [splits ts] enumerates (prefix, suffix) pairs, shortest prefix first. *)
let splits ts =
  let rec go prefix_rev suffix () =
    let here = (List.rev prefix_rev, suffix) in
    match suffix with
    | [] -> Seq.Cons (here, Seq.empty)
    | t :: rest -> Seq.Cons (here, go (t :: prefix_rev) rest)
  in
  go [] ts

(* [distributions groups ts] enumerates all ways to distribute elements
   [ts] into [List.length groups] lists, preserving element order inside
   each list.  Elements go to the first group first. *)
let distributions n ts =
  let rec go ts =
    match ts with
    | [] -> Seq.return (List.init n (fun _ -> []))
    | t :: rest ->
      let* tails = go rest in
      let add_at i =
        List.mapi (fun j group -> if i = j then t :: group else group) tails
      in
      Seq.init n add_at
  in
  go ts

let rec match_term pat t subst : Subst.t Seq.t =
  match pat, t with
  | Term.Var x, _ -> of_option (Subst.bind subst x (Subst.One t))
  | Term.Cst c, Term.Cst c' -> if Value.equal c c' then Seq.return subst else Seq.empty
  | Term.App (f, ps), Term.App (g, ts) ->
    if Term.is_fvar f then
      (* function variable: any head symbol matches and is bound (the
         paper's F, G, H, … of Figure 6) *)
      let* subst' =
        of_option (Subst.bind subst f (Subst.One (Term.Cst (Value.Str g))))
      in
      match_ordered Term.List ps ts subst'
    else if String.equal f g then match_ordered Term.List ps ts subst
    else Seq.empty
  | Term.Coll (k, ps), Term.Coll (k', ts) ->
    if k <> k' then Seq.empty
    else begin
      match k with
      | Term.List | Term.Array | Term.Tuple -> match_ordered k ps ts subst
      | Term.Set | Term.Bag -> match_unordered k ps ts subst
    end
  | Term.Cvar x, _ ->
    invalid_arg
      (Fmt.str "Matcher: collection variable %s* outside a collection constructor" x)
  | (Term.Cst _ | Term.App _ | Term.Coll _), (Term.Var _ | Term.Cvar _ | Term.Cst _ | Term.App _ | Term.Coll _)
    ->
    Seq.empty

and match_ordered k ps ts subst =
  match ps with
  | [] -> if ts = [] then Seq.return subst else Seq.empty
  | Term.Cvar x :: ps' ->
    let* prefix, suffix = splits ts in
    let* subst' = of_option (Subst.bind subst x (Subst.Many (k, prefix))) in
    match_ordered k ps' suffix subst'
  | p :: ps' -> (
    match ts with
    | [] -> Seq.empty
    | t :: ts' ->
      let* subst' = match_term p t subst in
      match_ordered k ps' ts' subst')

and match_unordered k ps ts subst =
  let cvars, concrete =
    List.partition (function Term.Cvar _ -> true | Term.Var _ | Term.Cst _ | Term.App _ | Term.Coll _ -> false) ps
  in
  let cvar_names =
    List.map (function Term.Cvar x -> x | Term.Var _ | Term.Cst _ | Term.App _ | Term.Coll _ -> assert false) cvars
  in
  (* match each concrete sub-pattern against some distinct element *)
  let rec match_concrete ps ts subst =
    match ps with
    | [] -> leftover ts subst
    | p :: ps' ->
      let* t, rest = pick ts in
      let* subst' = match_term p t subst in
      match_concrete ps' rest subst'
  (* then distribute the leftover elements over the collection variables *)
  and leftover ts subst =
    match cvar_names with
    | [] -> if ts = [] then Seq.return subst else Seq.empty
    | [ x ] -> of_option (Subst.bind subst x (Subst.Many (k, ts)))
    | xs ->
      let* groups = distributions (List.length xs) ts in
      let bind_all subst' x group =
        match subst' with
        | None -> None
        | Some s -> Subst.bind s x (Subst.Many (k, group))
      in
      of_option (List.fold_left2 bind_all (Some subst) xs groups)
  in
  match_concrete concrete ts subst

(* A constant-time filter over [match_term]'s first case analysis: when
   the pattern and subject heads are incompatible, no substitution can
   exist and the full matcher need not run.  The rewrite engine's rule
   index is built on exactly this predicate. *)
let head_compatible ~pattern t =
  match pattern, t with
  | Term.Var _, _ | Term.Cvar _, _ -> true
  | Term.Cst c, Term.Cst c' -> Value.equal c c'
  | Term.App (f, _), Term.App (g, _) -> Term.is_fvar f || String.equal f g
  | Term.Coll (k, _), Term.Coll (k', _) -> k = k'
  | (Term.Cst _ | Term.App _ | Term.Coll _), (Term.Var _ | Term.Cvar _ | Term.Cst _ | Term.App _ | Term.Coll _)
    ->
    false

let all ~pattern t = match_term pattern t Subst.empty

let first ~pattern t =
  match (all ~pattern t) () with
  | Seq.Nil -> None
  | Seq.Cons (s, _) -> Some s

let matches ~pattern t = Option.is_some (first ~pattern t)
