(** Parser for the rule language's concrete syntax (paper §4.1, Figure 6)
    and the meta-rule language (§4.2).

    A rule is written
    [name: lhs / constraint, … --> rhs / method(…), …] where both
    constraint and method lists may be empty (the paper writes a bare
    [/] for an empty list, which is also accepted).

    Terms: identifiers are variables ([x]), a trailing [*] makes a
    collection variable ([x*]), a single capital letter F–K applied to
    arguments is a function variable, [SET(…)]/[BAG(…)]/[LIST(…)]/
    [ARRAY(…)]/[TUPLE(…)] are collection constructors, any other
    [ident(…)] is a function application, and infix [=], [<>], [<],
    [<=], [>], [>=], [AND], [OR], arithmetic and [NOT(…)] are sugar for
    the corresponding applications.  [AND]/[OR] chains parse to the
    n-ary unordered form [and(bag(…))] used by the LERA encoding.
    [@(i, j)] is a column reference.  [{…}] with literal members is a
    constant set.

    Meta-rules: [block(name, {rule, …}, limit)] with [limit] a number or
    the word [infinite], and [seq({block, …}, rounds)]. *)

module Term = Eds_term.Term

(** A parse error with its source position.  [line]/[column] are
    1-based; 0 means the position is unknown (e.g. name-resolution
    errors, which have no token).  [token] renders the offending token,
    [""] when there is none. *)
type error = { message : string; line : int; column : int; token : string }

exception Rule_parse_error of error

val error_to_string : error -> string
(** ["line L, column C: message (at token)"], omitting the unknown
    parts.  Also installed as the [Printexc] printer for the
    exception. *)

val parse_rule : string -> Rule.t
(** Parse one (optionally [name:]-prefixed) rule.  Unnamed rules get the
    name ["anonymous"]. *)

val parse_rules : string -> Rule.t list
(** Parse a sequence of named rules separated by [;].  [--] comments. *)

val parse_term : string -> Term.t

(** Parsed meta-rule declarations, before rule-name resolution. *)
type meta =
  | Block_decl of { name : string; rule_names : string list; limit : int option }
  | Seq_decl of { block_names : string list; rounds : int }

val parse_meta : string -> meta list

val resolve_program : rules:Rule.t list -> meta list -> Rule.program
(** Build a {!Rule.program} from meta declarations, resolving rule names
    against [rules].  The same rule may appear in several blocks and the
    same block several times in the sequence (paper §4.2).  Raises
    {!Rule_parse_error} on unknown names or when no [seq] is given. *)
