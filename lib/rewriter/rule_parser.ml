module Value = Eds_value.Value
module Term = Eds_term.Term
module Lexer = Eds_esql.Lexer

type error = { message : string; line : int; column : int; token : string }

exception Rule_parse_error of error

let error_to_string e =
  let pos =
    if e.line > 0 then Fmt.str "line %d, column %d: " e.line e.column else ""
  in
  let tok = if e.token = "" then "" else Fmt.str " (at %s)" e.token in
  pos ^ e.message ^ tok

let () =
  Printexc.register_printer (function
    | Rule_parse_error e -> Some ("Rule_parse_error: " ^ error_to_string e)
    | _ -> None)

let error_at ?(line = 0) ?(column = 0) ?(token = "") fmt =
  Fmt.kstr
    (fun message -> raise (Rule_parse_error { message; line; column; token }))
    fmt

let error fmt = error_at fmt

(* char offset -> 1-based line/column (rule texts are small, a rescan is
   fine) *)
let position input offset =
  let offset = max 0 (min offset (String.length input)) in
  let line = ref 1 and column = ref 1 in
  String.iteri
    (fun i c ->
      if i < offset then
        if c = '\n' then begin
          incr line;
          column := 1
        end
        else incr column)
    input;
  (!line, !column)

type state = {
  input : string;
  mutable tokens : (Lexer.token * int) list;
  mutable last : Lexer.token * int;  (** most recently consumed token *)
}

(* parse error blaming the most recently consumed token (all parsing
   errors fire right after [next]/[expect] consumed the offender) *)
let fail st fmt =
  let tok, off = st.last in
  let line, column = position st.input off in
  error_at ~line ~column ~token:(Fmt.str "%a" Lexer.pp_token tok) fmt

(* parse error blaming the upcoming (peeked, unconsumed) token *)
let fail_here st fmt =
  match st.tokens with
  | (tok, off) :: _ ->
    let line, column = position st.input off in
    error_at ~line ~column ~token:(Fmt.str "%a" Lexer.pp_token tok) fmt
  | [] -> fail st fmt

let lex_fail input msg pos =
  let line, column = position input pos in
  error_at ~line ~column "lexical error: %s" msg

let peek st = match st.tokens with (t, _) :: _ -> t | [] -> Lexer.EOF
let peek2 st = match st.tokens with _ :: (t, _) :: _ -> t | _ -> Lexer.EOF

let advance st =
  match st.tokens with
  | t :: rest ->
    st.last <- t;
    st.tokens <- rest
  | [] -> ()

let next st =
  let t = peek st in
  advance st;
  t

let expect st tok =
  let t = next st in
  if t <> tok then
    fail st "expected %a but found %a" Lexer.pp_token tok Lexer.pp_token t

let is_kw word = function
  | Lexer.IDENT s -> String.uppercase_ascii s = word
  | _ -> false

let eat_kw st word =
  if is_kw word (peek st) then begin
    advance st;
    true
  end
  else false

let collection_kinds =
  [
    ("SET", Term.Set);
    ("BAG", Term.Bag);
    ("LIST", Term.List);
    ("ARRAY", Term.Array);
    ("TUPLE", Term.Tuple);
  ]

(* A single capital letter F-K is a function variable (Figure 6). *)
let is_function_variable name =
  String.length name = 1 && name.[0] >= 'F' && name.[0] <= 'K'

(* [x*] is a collection variable; [x * y] is multiplication.  The star is
   read as variable marker when no operand can follow it. *)
let star_is_cvar_marker st =
  match peek2 st with
  | Lexer.IDENT _ | Lexer.INT _ | Lexer.FLOAT _ | Lexer.STRING _ | Lexer.LPAREN
  | Lexer.LBRACE | Lexer.AT ->
    false
  | _ -> true

let rec term st = or_term st

and or_term st =
  let lhs = and_term st in
  if eat_kw st "OR" then
    let rhs = or_term st in
    flatten_junction "or" lhs rhs
  else lhs

and and_term st =
  let lhs = comparison st in
  if eat_kw st "AND" then
    let rhs = and_term st in
    flatten_junction "and" lhs rhs
  else lhs

and flatten_junction op lhs rhs =
  let parts t =
    match t with
    | Term.App (o, [ Term.Coll (Term.Bag, cs) ]) when o = op -> cs
    | _ -> [ t ]
  in
  Term.app op [ Term.Coll (Term.Bag, parts lhs @ parts rhs) ]

and comparison st =
  let lhs = additive st in
  let binop op =
    advance st;
    Term.app op [ lhs; additive st ]
  in
  match peek st with
  | Lexer.EQ -> binop "="
  | Lexer.NEQ -> binop "<>"
  | Lexer.LT -> binop "<"
  | Lexer.LE -> binop "<="
  | Lexer.GT -> binop ">"
  | Lexer.GE -> binop ">="
  | _ -> lhs

and additive st =
  let rec go lhs =
    match peek st with
    | Lexer.PLUS ->
      advance st;
      go (Term.app "+" [ lhs; multiplicative st ])
    | Lexer.MINUS ->
      advance st;
      go (Term.app "-" [ lhs; multiplicative st ])
    | _ -> lhs
  in
  go (multiplicative st)

(* NB: infix '/' is not available inside rule terms — it separates the
   rule's parts (Figure 6); write division as div(x, y). *)
and multiplicative st =
  let rec go lhs =
    match peek st with
    | Lexer.STAR when not (star_is_cvar_marker st) ->
      advance st;
      go (Term.app "*" [ lhs; atom st ])
    | _ -> lhs
  in
  go (atom st)

and atom st =
  match next st with
  | Lexer.INT i -> Term.int i
  | Lexer.FLOAT f -> Term.Cst (Value.Real f)
  | Lexer.STRING s -> Term.str s
  | Lexer.MINUS -> (
    match next st with
    | Lexer.INT i -> Term.int (-i)
    | Lexer.FLOAT f -> Term.Cst (Value.Real (-.f))
    | t -> fail st "expected a number after unary minus, found %a" Lexer.pp_token t)
  | Lexer.LPAREN ->
    let t = term st in
    expect st Lexer.RPAREN;
    t
  | Lexer.LBRACE ->
    (* constant set literal, e.g. the Figure-10 Category domain *)
    let members =
      if peek st = Lexer.RBRACE then []
      else begin
        let rec go acc =
          let t = term st in
          let v =
            match t with
            | Term.Cst v -> v
            | _ -> fail st "set literals must contain constants, found %a" Term.pp t
          in
          if peek st = Lexer.COMMA then begin
            advance st;
            go (v :: acc)
          end
          else List.rev (v :: acc)
        in
        go []
      end
    in
    expect st Lexer.RBRACE;
    Term.Cst (Value.set members)
  | Lexer.AT ->
    expect st Lexer.LPAREN;
    let i = integer st in
    expect st Lexer.COMMA;
    let j = integer st in
    expect st Lexer.RPAREN;
    Term.app "@" [ Term.int i; Term.int j ]
  | Lexer.IDENT s -> ident_atom st s
  | t -> fail st "unexpected %a in term" Lexer.pp_token t

and integer st =
  match next st with
  | Lexer.INT i -> i
  | t -> fail st "expected an integer, found %a" Lexer.pp_token t

and ident_atom st s =
  match String.uppercase_ascii s with
  | "TRUE" -> Term.tru
  | "FALSE" -> Term.fls
  | "NOT" when peek st = Lexer.LPAREN ->
    advance st;
    let t = term st in
    expect st Lexer.RPAREN;
    Term.app "not" [ t ]
  | upper -> (
    match peek st with
    | Lexer.LPAREN -> (
      advance st;
      let args = arguments st in
      expect st Lexer.RPAREN;
      match List.assoc_opt upper collection_kinds with
      | Some kind -> Term.Coll (kind, args)
      | None ->
        if is_function_variable s then Term.App (Term.fvar s, args)
        else if upper = "AND" || upper = "OR" then begin
          (* prefix n-ary form: AND(a, b, c) or AND(BAG(…)) *)
          match args with
          | [ Term.Coll (Term.Bag, _) ] -> Term.app upper args
          | _ -> Term.app upper [ Term.Coll (Term.Bag, args) ]
        end
        else Term.app s args)
    | Lexer.STAR when star_is_cvar_marker st ->
      advance st;
      Term.cvar (String.lowercase_ascii s)
    | _ ->
      (* a bare capital F-K still denotes the function variable, so that
         constraints like pred(F) share the binding of F(…) patterns *)
      if is_function_variable s then Term.Var (Term.fvar s)
      else Term.var (String.lowercase_ascii s))

and arguments st =
  if peek st = Lexer.RPAREN then []
  else begin
    let rec go acc =
      let t = term st in
      if peek st = Lexer.COMMA then begin
        advance st;
        go (t :: acc)
      end
      else List.rev (t :: acc)
    in
    go []
  end

(* -- rules -------------------------------------------------------------- *)

let term_list st stop =
  if peek st = stop || peek st = Lexer.EOF then []
  else begin
    let rec go acc =
      let t = term st in
      if peek st = Lexer.COMMA then begin
        advance st;
        go (t :: acc)
      end
      else List.rev (t :: acc)
    in
    go []
  end

let method_call st =
  match next st with
  | Lexer.IDENT f ->
    expect st Lexer.LPAREN;
    let args = arguments st in
    expect st Lexer.RPAREN;
    (String.lowercase_ascii f, args)
  | t -> fail st "expected a method name, found %a" Lexer.pp_token t

let method_list st =
  match peek st with
  | Lexer.SEMI | Lexer.EOF -> []
  | _ ->
    let rec go acc =
      let m = method_call st in
      if peek st = Lexer.COMMA then begin
        advance st;
        go (m :: acc)
      end
      else List.rev (m :: acc)
    in
    go []

let rule_body st name =
  let lhs = term st in
  let constraints =
    if peek st = Lexer.SLASH then begin
      advance st;
      term_list st Lexer.ARROW
    end
    else []
  in
  expect st Lexer.ARROW;
  let rhs = term st in
  let methods =
    if peek st = Lexer.SLASH then begin
      advance st;
      method_list st
    end
    else []
  in
  { Rule.name; lhs; constraints; rhs; methods }

let named_rule st =
  match peek st, peek2 st with
  | Lexer.IDENT name, Lexer.COLON ->
    advance st;
    advance st;
    rule_body st name
  | _ -> rule_body st "anonymous"

let make_state input =
  let tokens =
    try Lexer.tokenize input
    with Lexer.Lex_error (msg, pos) -> lex_fail input msg pos
  in
  { input; tokens; last = (Lexer.EOF, 0) }

let with_state input f =
  let st = make_state input in
  let result = f st in
  if peek st = Lexer.SEMI then advance st;
  (match peek st with
  | Lexer.EOF -> ()
  | t -> fail_here st "trailing input: %a" Lexer.pp_token t);
  result

let parse_rule input = with_state input named_rule
let parse_term input = with_state input term

let parse_rules input =
  let st = make_state input in
  let rec go acc =
    match peek st with
    | Lexer.EOF -> List.rev acc
    | Lexer.SEMI ->
      advance st;
      go acc
    | _ -> go (named_rule st :: acc)
  in
  go []

(* -- meta-rules --------------------------------------------------------- *)

type meta =
  | Block_decl of { name : string; rule_names : string list; limit : int option }
  | Seq_decl of { block_names : string list; rounds : int }

let name_list st =
  expect st Lexer.LBRACE;
  let rec go acc =
    match next st with
    | Lexer.IDENT s -> (
      match peek st with
      | Lexer.COMMA ->
        advance st;
        go (s :: acc)
      | _ -> List.rev (s :: acc))
    | t -> fail st "expected a name, found %a" Lexer.pp_token t
  in
  let names = if peek st = Lexer.RBRACE then [] else go [] in
  expect st Lexer.RBRACE;
  names

let meta_decl st =
  match next st with
  | Lexer.IDENT s when String.uppercase_ascii s = "BLOCK" ->
    expect st Lexer.LPAREN;
    let name =
      match next st with
      | Lexer.IDENT n -> n
      | t -> fail st "expected a block name, found %a" Lexer.pp_token t
    in
    expect st Lexer.COMMA;
    let rule_names = name_list st in
    expect st Lexer.COMMA;
    let limit =
      match next st with
      | Lexer.INT n -> Some n
      | Lexer.IDENT s when String.uppercase_ascii s = "INFINITE" -> None
      | t -> fail st "expected a limit, found %a" Lexer.pp_token t
    in
    expect st Lexer.RPAREN;
    Block_decl { name; rule_names; limit }
  | Lexer.IDENT s when String.uppercase_ascii s = "SEQ" ->
    expect st Lexer.LPAREN;
    let block_names = name_list st in
    expect st Lexer.COMMA;
    let rounds =
      match next st with
      | Lexer.INT n -> n
      | t -> fail st "expected a round count, found %a" Lexer.pp_token t
    in
    expect st Lexer.RPAREN;
    Seq_decl { block_names; rounds }
  | t -> fail st "expected block(…) or seq(…), found %a" Lexer.pp_token t

let parse_meta input =
  let st = make_state input in
  let rec go acc =
    match peek st with
    | Lexer.EOF -> List.rev acc
    | Lexer.SEMI ->
      advance st;
      go acc
    | _ -> go (meta_decl st :: acc)
  in
  go []

let resolve_program ~rules metas =
  let find_rule name =
    match List.find_opt (fun (r : Rule.t) -> r.Rule.name = name) rules with
    | Some r -> r
    | None -> error "unknown rule %s in block declaration" name
  in
  let blocks =
    List.filter_map
      (function
        | Block_decl { name; rule_names; limit } ->
          Some { Rule.block_name = name; rules = List.map find_rule rule_names; limit }
        | Seq_decl _ -> None)
      metas
  in
  let find_block name =
    match List.find_opt (fun b -> b.Rule.block_name = name) blocks with
    | Some b -> b
    | None -> error "unknown block %s in seq declaration" name
  in
  match
    List.find_map
      (function Seq_decl { block_names; rounds } -> Some (block_names, rounds) | Block_decl _ -> None)
      metas
  with
  | Some (names, rounds) -> { Rule.blocks = List.map find_block names; rounds }
  | None -> error "a rule program needs a seq({…}, n) declaration"
