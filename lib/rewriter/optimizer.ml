module Value = Eds_value.Value
module Vtype = Eds_value.Vtype
module Term = Eds_term.Term
module Subst = Eds_term.Subst
module Lera = Eds_lera.Lera
module Schema = Eds_lera.Schema
module Lera_term = Eds_lera.Lera_term

type config = {
  merging_limit : int option;
  fixpoint_limit : int option;
  permutation_limit : int option;
  semantic_limit : int option;
  simplification_limit : int option;
  rounds : int;
}

let default_config =
  {
    merging_limit = None;
    (* the fixpoint and permutation blocks contain rules whose methods
       build fresh subplans (ALEXANDER, the union distribution); §4.2's
       remedy is a finite limit, generous enough never to bind on sane
       queries.  A limit counts every condition check — every match
       substitution whose constraints are evaluated — so AC-matching
       rules over wide conjunctions consume it faster than one unit per
       node. *)
    fixpoint_limit = Some 100;
    permutation_limit = Some 1000;
    semantic_limit = Some 100;
    simplification_limit = None;
    (* several rounds with early stop: selections pushed by permutation
       create new merging opportunities and vice versa — the paper's "the
       same block may be executed several times" (§4.2).  The engine
       stops as soon as a round leaves the query unchanged, so converged
       queries pay for one extra scan only. *)
    rounds = 4;
  }

let zero_config =
  {
    merging_limit = Some 0;
    fixpoint_limit = Some 0;
    permutation_limit = Some 0;
    semantic_limit = Some 0;
    simplification_limit = Some 0;
    rounds = 1;
  }

(* §7, future work made real: "The limit given to a block of rule could
   also be allocated dynamically, according to the complexity of the
   query.  Simple queries (e.g., search on a key) do not need
   sophisticated optimization: a 0 limit can then be given to all blocks
   … Complex queries need rewriting: a high limit can then be given." *)
let complexity (r : Lera.rel) : int =
  let rec conjunct_count r =
    let own =
      match r with
      | Lera.Filter (_, q) | Lera.Join (_, _, q) | Lera.Search (_, q, _) ->
        List.length (Lera.conjuncts q)
      | _ -> 0
    in
    own + List.fold_left (fun acc i -> acc + conjunct_count i) 0 (Lera.inputs r)
  in
  let rec fix_count r =
    (match r with Lera.Fix _ -> 1 | _ -> 0)
    + List.fold_left (fun acc i -> acc + fix_count i) 0 (Lera.inputs r)
  in
  Lera.operator_count r + conjunct_count r + (4 * fix_count r)

let adaptive_config (r : Lera.rel) : config =
  let c = complexity r in
  if c <= 2 then zero_config
  else
    {
      merging_limit = Some (20 * c);
      fixpoint_limit = Some (10 * c);
      permutation_limit = Some (20 * c);
      semantic_limit = Some (min 200 (10 * c));
      simplification_limit = Some (40 * c);
      rounds = 4;
    }

let program ?(config = default_config) () =
  let block name limit rules = { Rule.block_name = name; rules; limit } in
  {
    Rule.blocks =
      [
        block "merging" config.merging_limit (Rulesets.merging ());
        block "fixpoint" config.fixpoint_limit (Rulesets.fixpoint ());
        (* the paper's §5.3 note: merging pays off again after pushing
           selections through fixpoints *)
        block "merging_again" config.merging_limit (Rulesets.merging ());
        block "permutation" config.permutation_limit (Rulesets.permutation ());
        block "semantic" config.semantic_limit (Rulesets.semantic ());
        block "simplification" config.simplification_limit (Rulesets.simplification ());
      ];
    rounds = config.rounds;
  }

let make_ctx ?(semantic_constraints = []) ?(extra_methods = [])
    ?(extra_constraints = []) schema_env =
  Engine.ctx
    ~methods:(extra_methods @ Methods.all)
    ~constraint_preds:extra_constraints ~semantic_constraints schema_env

let rewrite_term ?program:prog ?stats ctx t =
  let prog = match prog with Some p -> p | None -> program () in
  Engine.run ctx ?stats prog (Lera_term.normalize t)

let rewrite_term_reference ?program:prog ?stats ctx t =
  let prog = match prog with Some p -> p | None -> program () in
  Engine.run_reference ctx ?stats prog (Lera_term.normalize t)

let rewrite ?program:prog ?stats ctx (r : Lera.rel) : Lera.rel =
  let t = rewrite_term ?program:prog ?stats ctx (Lera_term.to_term r) in
  match Lera_term.of_term t with
  | rel -> rel
  | exception Lera_term.Bridge_error msg ->
    raise (Engine.Rewrite_error ("rewriting left a non-LERA term: " ^ msg))

(* -- semantic knowledge declarations ------------------------------------- *)

(* A Figure-10 declaration has the shape
   F(x) / ISA(x, T) --> F(x) AND <predicates over x>.
   We extract T and the added predicates. *)
let parse_integrity_constraint text =
  let rule = Rule_parser.parse_rule text in
  let fail fmt =
    Fmt.kstr
      (fun s ->
        raise
          (Rule_parser.Rule_parse_error
             { Rule_parser.message = s; line = 0; column = 0; token = "" }))
      fmt
  in
  let var_name, head =
    match rule.Rule.lhs with
    | Term.App (f, [ Term.Var v ]) when Term.is_fvar f -> (v, f)
    | _ -> fail "constraint lhs must be F(x), got %a" Term.pp rule.Rule.lhs
  in
  let type_name =
    match rule.Rule.constraints with
    | [ Term.App ("isa", [ Term.Var v; Term.Var ty ]) ] when v = var_name -> ty
    | _ -> fail "constraint must have the single condition ISA(x, Type)"
  in
  let conjuncts =
    match rule.Rule.rhs with
    | Term.App ("and", [ Term.Coll (Term.Bag, cs) ]) -> cs
    | t -> [ t ]
  in
  let is_head = function
    | Term.App (f, [ Term.Var v ]) -> f = head && v = var_name
    | _ -> false
  in
  let additions = List.filter (fun c -> not (is_head c)) conjuncts in
  if additions = [] then fail "constraint adds no predicate";
  (* normalize the constrained variable's name to x *)
  let rename t =
    Subst.apply (Subst.bind_exn Subst.empty var_name (Subst.One (Term.var "x"))) t
  in
  let template =
    match additions with
    | [ one ] -> rename one
    | several -> Term.App ("and", [ Term.Coll (Term.Bag, List.map rename several) ])
  in
  (type_name, template)

let enum_domain_constraints (types : Vtype.env) : (string * Term.t) list =
  List.filter_map
    (fun (d : Vtype.decl) ->
      match d.Vtype.definition with
      | Vtype.Enum (name, labels) ->
        let domain =
          Value.set (List.map (fun l -> Value.Enum (name, l)) labels)
        in
        Some
          ( d.Vtype.name,
            Term.app "member" [ Term.var "x"; Term.Cst domain ] )
      | _ -> None)
    (Vtype.declarations types)
