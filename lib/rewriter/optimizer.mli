(** The assembled query rewriter: the default block/seq program, the
    rewrite entry point over LERA expressions, and the DBA/DBI extension
    surface (paper §4.2, §6.1, §7).

    The default program is the sequence

    [merging → fixpoint → merging → permutation → semantic → simplification]

    — search merging runs {e before and after} fixpoint reduction, the
    paper's own example of a rule block worth re-running (§5.3), and
    permutation runs after so that constant selections reach the
    adornment computation first.  Per-block limits implement the §7
    trade-off: a 0 limit disables a block (cheap queries), an infinite
    limit saturates (complex queries). *)

module Term = Eds_term.Term
module Lera = Eds_lera.Lera
module Schema = Eds_lera.Schema

(** Application limits per block; [None] = saturation, [Some 0] = off.
    A limit counts condition checks: every match substitution whose
    constraints are evaluated costs one unit, so a single AC-matching
    rule over a wide conjunction may consume many units at one node. *)
type config = {
  merging_limit : int option;
  fixpoint_limit : int option;
  permutation_limit : int option;
  semantic_limit : int option;
  simplification_limit : int option;
  rounds : int;
}

val default_config : config
(** Saturation for the syntactic blocks, a finite limit (100) for the
    semantic block — whose growth rules would otherwise run long (§7) —
    and two rounds, so that permutation and merging feed each other. *)

val zero_config : config
(** All limits 0: the "simple queries (e.g., search on a key) do not
    need sophisticated optimization: a 0 limit can then be given to all
    blocks" case of §7. *)

val complexity : Lera.rel -> int
(** Complexity measure driving {!adaptive_config}: operators + conjuncts
    + a premium per fixpoint. *)

val adaptive_config : Lera.rel -> config
(** §7's dynamic limit allocation: a key-lookup-class query gets all-zero
    limits (rewriting cannot pay off), complex queries get limits scaled
    with their complexity. *)

val program : ?config:config -> unit -> Rule.program

val make_ctx :
  ?semantic_constraints:(string * Term.t) list ->
  ?extra_methods:(string * Engine.method_fn) list ->
  ?extra_constraints:(string * Engine.constraint_fn) list ->
  Schema.env ->
  Engine.ctx
(** Context with the built-in method library; the DBI's extension point. *)

val rewrite :
  ?program:Rule.program ->
  ?stats:Engine.stats ->
  Engine.ctx ->
  Lera.rel ->
  Lera.rel
(** Lower to a term, run the program, lift back.  Raises
    {!Engine.Rewrite_error} if a user rule rewrote the query into a term
    that is no longer a LERA encoding. *)

val rewrite_term :
  ?program:Rule.program -> ?stats:Engine.stats -> Engine.ctx -> Term.t -> Term.t

val rewrite_term_reference :
  ?program:Rule.program -> ?stats:Engine.stats -> Engine.ctx -> Term.t -> Term.t
(** Same program through {!Engine.run_reference} — the un-indexed,
    restart-from-root engine.  Golden-trace oracle. *)

(** {1 Declaring semantic knowledge (Figure 10)} *)

val parse_integrity_constraint : string -> string * Term.t
(** Parse a Figure-10 constraint declaration, e.g.
    ["F(x) / ISA(x, Point) --> F(x) AND ABS(x) > 0"], into the pair
    (type name, predicate template over the variable [x]) consumed by
    [make_ctx ~semantic_constraints].  Raises
    {!Rule_parser.Rule_parse_error} when the declaration does not have
    the constraint shape. *)

val enum_domain_constraints : Eds_value.Vtype.env -> (string * Term.t) list
(** One [member(x, {labels})] template per declared enumeration — the
    Category rule of Figure 10, derived from the schema. *)
