(** The rewrite engine: applies rules to query terms under the block/seq
    control strategy (paper §4.2).

    The engine walks the query term top-down, leftmost first; at each
    node it tries the block's rules in order.  When a rule's left-hand
    side matches, its condition is {e checked} — constraints evaluated
    under the match substitution — and, per the paper, "each time a rule
    condition is checked, the limit of the block is decreased by one".
    If the constraints hold and every method call succeeds, the node is
    replaced by the substituted right-hand side (normalized), and the
    scan restarts from the root.  An exhausted limit stops the block; an
    infinite limit means saturation.

    Constraint terms and methods are evaluated against an extensible
    table in the {!ctx}; the database implementor extends both, exactly
    as EDS's DBI extended the optimizer's ADT library. *)

module Term = Eds_term.Term
module Subst = Eds_term.Subst
module Schema = Eds_lera.Schema

(** Schemas visible at the node being rewritten. *)
type local_env = {
  input_schemas : Schema.t list option;
      (** operand schemas of the nearest enclosing search/filter/join,
          available when rewriting its qualification or projection *)
  rvars : (string * Schema.t) list;
      (** recursion variables bound by enclosing fixpoints *)
}

type ctx = {
  schema_env : Schema.env;
  methods : (string * method_fn) list;
  constraint_preds : (string * constraint_fn) list;
      (** user-defined constraint predicates, tried before built-ins *)
  semantic_constraints : (string * Term.t) list;
      (** integrity-constraint templates: type name ↦ predicate over the
          variable [x] (paper §6.1, Figure 10) *)
}

and method_fn = ctx -> local_env -> Subst.t -> Term.t list -> Subst.t option
(** [fn ctx env subst raw_args]: [raw_args] are the method's argument
    terms {e before} substitution, so the method can recognise its output
    variables; it returns the substitution extended with output bindings,
    or [None] to veto the rule. *)

and constraint_fn = ctx -> local_env -> Term.t list -> bool
(** Applied to the {e substituted} argument terms. *)

val ctx :
  ?methods:(string * method_fn) list ->
  ?constraint_preds:(string * constraint_fn) list ->
  ?semantic_constraints:(string * Term.t) list ->
  Schema.env ->
  ctx

val top_env : local_env

(** One recorded rule application, for tracing/debugging rule programs. *)
type step = {
  rule_name : string;
  block_name : string;
  redex : Term.t;  (** the subterm that was rewritten *)
  replacement : Term.t;
}

val pp_step : Format.formatter -> step -> unit

(** Work accounting for one block (accumulated over every execution of
    the block under the same {!stats}). *)
type block_stats = {
  mutable time_s : float;  (** wall-clock seconds spent in the block *)
  mutable nodes : int;
  mutable conditions : int;
  mutable rewrites : int;
}

type stats = {
  mutable conditions_checked : int;
      (** substitutions whose constraints were evaluated — the unit the
          block limit counts *)
  mutable rewrites_applied : int;
  mutable nodes_visited : int;  (** nodes at which rules were considered *)
  mutable match_attempts : int;  (** (rule, node) pairs handed to the matcher *)
  mutable index_hits : int;  (** rules skipped by the head-symbol index *)
  mutable index_misses : int;  (** rules the index could not rule out *)
  mutable schema_hits : int;  (** schema derivations answered by the memo *)
  mutable schema_misses : int;
  mutable by_rule : (string * int) list;  (** rewrites per rule name *)
  mutable per_block : (string * block_stats) list;
      (** name-summed view: one entry per block {e name}, totals over
          every pass of that name (kept for backwards compatibility) *)
  mutable passes : (string * block_stats) list;
      (** one entry per block {e pass} in execution order — a block name
          re-run across rounds, or mounted twice in the program (the C2
          merge/fixpoint/merge sequence), gets one entry per execution *)
  mutable trace : step list;  (** most recent first *)
}

val fresh_stats : unit -> stats
val steps : stats -> step list
(** Applications in chronological order. *)

val block_stats : stats -> string -> block_stats
(** Name-summed accounting entry for a block name, created on first
    use.  Per-pass accounting lives in the [passes] field. *)

val pp_block_stats : Format.formatter -> string * block_stats -> unit
val pp_stats : Format.formatter -> stats -> unit

exception Rewrite_error of string

val term_type : ctx -> local_env -> Term.t -> Eds_value.Vtype.t option
(** Type of a scalar term when derivable: constants, column references
    against the local operand schemas, registered-function results. *)

val eval_constraint : ctx -> local_env -> Term.t -> bool
(** Built-in constraint forms: ground comparisons via the ADT registry,
    [isa(t, type)] (with [constant], the collection kinds and declared
    type names), [not]/[and]/[or], [notin(t, members…)],
    [distinct(a, b)], [nonempty(…)], [ground(t)], [pred(f)],
    [refer_only(list(quals), list(prefix), group)], [empty_rel(r)] and
    [not_in_domain(k, col)]; anything else is looked up in
    [ctx.constraint_preds] and is false when unknown. *)

val apply_rule_at : ctx -> local_env -> Rule.t -> Term.t -> Term.t option
(** Try one rule at the root of a term: first match whose constraints
    hold and methods succeed wins.  Returns the normalized replacement. *)

val run_block : ctx -> ?stats:stats -> Rule.block -> Term.t -> Term.t
val run : ctx -> ?stats:stats -> Rule.program -> Term.t -> Term.t
(** Runs the blocks in sequence, the whole sequence [rounds] times,
    stopping early when a full round leaves the term unchanged.

    The engine compiles each block into a head-symbol dispatch table
    ({!Rule.compile}), skips subtrees already proven redex-free for the
    block (re-established when a rewrite rebuilds the spine above them —
    {!Eds_lera.Lera_term.normalize} preserves sharing so subtree
    identity survives steps), and memoizes operand-schema derivation.
    None of this changes which rules apply where: results and traces are
    identical to {!run_reference} whenever block limits do not bind
    (with a binding limit the engines may spend the budget differently,
    because the reference engine re-checks conditions the indexed engine
    never re-visits). *)

val run_block_reference : ctx -> ?stats:stats -> Rule.block -> Term.t -> Term.t

val run_reference : ctx -> ?stats:stats -> Rule.program -> Term.t -> Term.t
(** The straightforward engine: restart from the root after every
    rewrite, consult every rule at every node, re-derive schemas on
    every visit.  Oracle for the golden-trace tests and the baseline the
    benchmarks compare work counters against. *)
