module Term = Eds_term.Term

type t = {
  name : string;
  lhs : Term.t;
  constraints : Term.t list;
  rhs : Term.t;
  methods : (string * Term.t list) list;
}

type block = {
  block_name : string;
  rules : t list;
  limit : int option;
}

type program = {
  blocks : block list;
  rounds : int;
}

let comma = Fmt.any ", "

let pp_method ppf (name, args) =
  Fmt.pf ppf "%s(%a)" name (Fmt.list ~sep:comma Term.pp) args

let pp ppf r =
  Fmt.pf ppf "%s: %a / %a --> %a / %a" r.name Term.pp r.lhs
    (Fmt.list ~sep:comma Term.pp) r.constraints Term.pp r.rhs
    (Fmt.list ~sep:comma pp_method)
    r.methods

let pp_block ppf b =
  let pp_limit ppf = function
    | Some n -> Fmt.int ppf n
    | None -> Fmt.string ppf "infinite"
  in
  Fmt.pf ppf "block(%s, {%a}, %a)" b.block_name
    (Fmt.list ~sep:comma (fun ppf r -> Fmt.string ppf r.name))
    b.rules pp_limit b.limit

let pp_program ppf p =
  Fmt.pf ppf "seq({%a}, %d)"
    (Fmt.list ~sep:comma (fun ppf b -> Fmt.string ppf b.block_name))
    p.blocks p.rounds

let block ?limit block_name rules = { block_name; rules; limit }
let program ?(rounds = 1) blocks = { blocks; rounds }

(* -- compiled blocks: head-symbol dispatch -------------------------------- *)

type head_key =
  | Head of string
  | Any_app
  | Coll_head of Term.ckind
  | Cst_head
  | Wildcard

let head_key (lhs : Term.t) : head_key =
  match lhs with
  | Term.App (f, _) -> if Term.is_fvar f then Any_app else Head f
  | Term.Coll (k, _) -> Coll_head k
  | Term.Cst _ -> Cst_head
  (* a collection-variable lhs is ill-formed, but dispatching it like a
     wildcard reproduces the linear scan's behavior (the matcher raises) *)
  | Term.Var _ | Term.Cvar _ -> Wildcard

type compiled = {
  source : block;
  rule_count : int;
  by_app_head : (string, t list) Hashtbl.t;
  app_fallback : t list;  (** subject head not indexed: fvar + wildcard rules *)
  by_coll : (Term.ckind * t list) list;
  cst_rules : t list;
  var_rules : t list;
}

let compile (b : block) : compiled =
  let indexed = List.mapi (fun i r -> (i, r, head_key r.lhs)) b.rules in
  let ordered sel =
    indexed
    |> List.filter (fun (_, _, k) -> sel k)
    |> List.map (fun (i, r, _) -> (i, r))
    |> List.sort (fun (i, _) (j, _) -> Int.compare i j)
    |> List.map snd
  in
  let heads =
    List.sort_uniq String.compare
      (List.filter_map (function _, _, Head f -> Some f | _ -> None) indexed)
  in
  let by_app_head = Hashtbl.create (max 8 (List.length heads)) in
  List.iter
    (fun f ->
      Hashtbl.replace by_app_head f
        (ordered (function
          | Head g -> String.equal f g
          | Any_app | Wildcard -> true
          | Coll_head _ | Cst_head -> false)))
    heads;
  {
    source = b;
    rule_count = List.length b.rules;
    by_app_head;
    app_fallback =
      ordered (function Any_app | Wildcard -> true | Head _ | Coll_head _ | Cst_head -> false);
    by_coll =
      List.map
        (fun k ->
          ( k,
            ordered (function
              | Coll_head k' -> k = k'
              | Wildcard -> true
              | Head _ | Any_app | Cst_head -> false) ))
        [ Term.Set; Term.Bag; Term.List; Term.Array; Term.Tuple ];
    cst_rules =
      ordered (function Cst_head | Wildcard -> true | Head _ | Any_app | Coll_head _ -> false);
    var_rules = ordered (function Wildcard -> true | _ -> false);
  }

let source c = c.source
let rule_count c = c.rule_count

let candidates (c : compiled) (t : Term.t) : t list =
  match t with
  | Term.App (f, _) -> (
    match Hashtbl.find_opt c.by_app_head f with
    | Some rs -> rs
    | None -> c.app_fallback)
  | Term.Coll (k, _) -> ( match List.assoc_opt k c.by_coll with Some rs -> rs | None -> [])
  | Term.Cst _ -> c.cst_rules
  | Term.Var _ | Term.Cvar _ -> c.var_rules

let output_variables r =
  let bound = ref (Term.vars r.lhs) in
  let fresh t =
    let vs = List.filter (fun v -> not (List.mem v !bound)) (Term.vars t) in
    bound := !bound @ vs;
    vs
  in
  let from_methods =
    List.concat_map (fun (_, args) -> List.concat_map fresh args) r.methods
  in
  let from_rhs = fresh r.rhs in
  from_methods @ from_rhs
