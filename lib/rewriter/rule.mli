(** Rewrite rules, blocks and rule programs (paper §4).

    A rule reads: "if the left term appears in the query under the given
    set of constraints, it is rewritten as the given right term after the
    application of the given set of methods" (§4.1).  Control is
    expressed with meta-rules (§4.2): [block({rules}, value)] bounds the
    number of rule-condition checks, and [seq({blocks}, value)] runs
    blocks in order, the whole sequence up to [value] times. *)

module Term = Eds_term.Term

type t = {
  name : string;
  lhs : Term.t;
  constraints : Term.t list;  (** all must hold for the rule to apply *)
  rhs : Term.t;
  methods : (string * Term.t list) list;
      (** external functions run after matching; they bind the rhs's
          output variables and may veto the application by failing *)
}

type block = {
  block_name : string;
  rules : t list;
  limit : int option;  (** [None] = apply up to saturation (infinite limit) *)
}

type program = {
  blocks : block list;
  rounds : int;  (** the seq meta-rule's value *)
}

val pp : Format.formatter -> t -> unit
(** Concrete rule syntax: [name: lhs / c1, c2 --> rhs / m1, m2]. *)

val pp_block : Format.formatter -> block -> unit
val pp_program : Format.formatter -> program -> unit

val block : ?limit:int -> string -> t list -> block
val program : ?rounds:int -> block list -> program

(** {1 Compiled blocks}

    The engine never scans a block's full rule list at every node: a
    block is compiled once into a dispatch table keyed on the lhs head
    constructor, and {!candidates} returns the (usually much shorter)
    list of rules whose lhs could possibly match a given subject term. *)

type head_key =
  | Head of string  (** application with a concrete head symbol *)
  | Any_app  (** application with a function-variable head (F, G, … of Figure 6) *)
  | Coll_head of Term.ckind
  | Cst_head
  | Wildcard  (** variable lhs: compatible with every subject *)

val head_key : Term.t -> head_key
(** Dispatch key of a rule lhs. *)

type compiled

val compile : block -> compiled

val source : compiled -> block
val rule_count : compiled -> int

val candidates : compiled -> Term.t -> t list
(** Rules of the block whose lhs is head-compatible with the subject
    (per {!Eds_term.Matcher.head_compatible}), in the block's original
    rule order.  Sound over-approximation: every rule with at least one
    match is included; rules that cannot match are (mostly) excluded.
    The returned list is precomputed — no allocation per call. *)

val output_variables : t -> string list
(** Variables of the rhs and of method argument lists that are bound
    neither by the lhs nor by an earlier method — i.e. the method output
    parameters ("methods modify input parameters of the right term, and
    return them as output parameters", §4.1). *)
