module Value = Eds_value.Value
module Vtype = Eds_value.Vtype
module Adt = Eds_value.Adt
module Term = Eds_term.Term
module Subst = Eds_term.Subst
module Matcher = Eds_term.Matcher
module Lera = Eds_lera.Lera
module Schema = Eds_lera.Schema
module Lera_term = Eds_lera.Lera_term
module Obs = Eds_obs.Obs

type local_env = {
  input_schemas : Schema.t list option;
  rvars : (string * Schema.t) list;
}

type ctx = {
  schema_env : Schema.env;
  methods : (string * method_fn) list;
  constraint_preds : (string * constraint_fn) list;
  semantic_constraints : (string * Term.t) list;
}

and method_fn = ctx -> local_env -> Subst.t -> Term.t list -> Subst.t option
and constraint_fn = ctx -> local_env -> Term.t list -> bool

let ctx ?(methods = []) ?(constraint_preds = []) ?(semantic_constraints = [])
    schema_env =
  { schema_env; methods; constraint_preds; semantic_constraints }

let top_env = { input_schemas = None; rvars = [] }

type step = {
  rule_name : string;
  block_name : string;
  redex : Term.t;  (** the subterm that was rewritten *)
  replacement : Term.t;
}

let pp_step ppf s =
  Fmt.pf ppf "[%s] %s:@   %a@   --> %a" s.block_name s.rule_name Term.pp s.redex
    Term.pp s.replacement

type block_stats = {
  mutable time_s : float;
  mutable nodes : int;
  mutable conditions : int;
  mutable rewrites : int;
}

type stats = {
  mutable conditions_checked : int;
  mutable rewrites_applied : int;
  mutable nodes_visited : int;
  mutable match_attempts : int;
  mutable index_hits : int;
  mutable index_misses : int;
  mutable schema_hits : int;
  mutable schema_misses : int;
  mutable by_rule : (string * int) list;
  mutable per_block : (string * block_stats) list;
  mutable passes : (string * block_stats) list;
  mutable trace : step list;  (** most recent first; reversed by [steps] *)
}

let fresh_stats () =
  {
    conditions_checked = 0;
    rewrites_applied = 0;
    nodes_visited = 0;
    match_attempts = 0;
    index_hits = 0;
    index_misses = 0;
    schema_hits = 0;
    schema_misses = 0;
    by_rule = [];
    per_block = [];
    passes = [];
    trace = [];
  }

let steps stats = List.rev stats.trace

let block_stats stats name =
  match List.assoc_opt name stats.per_block with
  | Some bs -> bs
  | None ->
    let bs = { time_s = 0.; nodes = 0; conditions = 0; rewrites = 0 } in
    stats.per_block <- stats.per_block @ [ (name, bs) ];
    bs

(* One execution of a block is one *pass*.  A block name may execute
   several times under one [stats] record — the same block re-run across
   rounds, or a rule set mounted under two blocks of the program (the
   C2 merge/fixpoint/merge sequence) — so accounting is collected per
   pass and folded into the name-summed [per_block] view afterwards. *)
let new_pass stats name =
  let bs = { time_s = 0.; nodes = 0; conditions = 0; rewrites = 0 } in
  stats.passes <- stats.passes @ [ (name, bs) ];
  bs

let merge_pass stats name (pass : block_stats) =
  let total = block_stats stats name in
  total.time_s <- total.time_s +. pass.time_s;
  total.nodes <- total.nodes + pass.nodes;
  total.conditions <- total.conditions + pass.conditions;
  total.rewrites <- total.rewrites + pass.rewrites

let pp_block_stats ppf (name, bs) =
  Fmt.pf ppf "%s: %.3fms nodes=%d conditions=%d rewrites=%d" name
    (bs.time_s *. 1000.) bs.nodes bs.conditions bs.rewrites

let pp_stats ppf s =
  Fmt.pf ppf "conditions=%d rewrites=%d nodes=%d attempts=%d index=%d/%d schema=%d/%d [%a]"
    s.conditions_checked s.rewrites_applied s.nodes_visited s.match_attempts
    s.index_hits s.index_misses s.schema_hits s.schema_misses
    (Fmt.list ~sep:(Fmt.any "; ") (fun ppf (n, c) -> Fmt.pf ppf "%s:%d" n c))
    s.by_rule

let bump_rule stats name =
  stats.rewrites_applied <- stats.rewrites_applied + 1;
  let rec go = function
    | [] -> [ (name, 1) ]
    | (n, c) :: rest -> if n = name then (n, c + 1) :: rest else (n, c) :: go rest
  in
  stats.by_rule <- go stats.by_rule

exception Rewrite_error of string

(* -- scalar typing inside constraints ----------------------------------- *)

(* Type of a (ground) scalar term under the local environment, when
   derivable: constants, column references, and registered functions. *)
let term_type c env (t : Term.t) : Vtype.t option =
  match t with
  | Term.Cst v -> Some (Vtype.type_of_value c.schema_env.Schema.types v)
  | Term.App ("@", [ Term.Cst (Value.Int i); Term.Cst (Value.Int j) ]) -> (
    match env.input_schemas with
    | Some schemas -> (
      match List.nth_opt schemas (i - 1) with
      | Some sch -> Option.map snd (List.nth_opt sch (j - 1))
      | None -> None)
    | None -> None)
  | Term.App (_, _) -> (
    match Lera_term.scalar_of_term t with
    | scalar -> (
      match env.input_schemas with
      | Some schemas -> (
        try Some (Schema.scalar_type c.schema_env ~inputs:schemas scalar)
        with Schema.Schema_error _ -> None)
      | None -> None)
    | exception Lera_term.Bridge_error _ -> None)
  | Term.Var _ | Term.Cvar _ -> None
  | Term.Coll (Term.Set, _) -> Some (Vtype.Set Vtype.Any)
  | Term.Coll (Term.Bag, _) -> Some (Vtype.Bag Vtype.Any)
  | Term.Coll (Term.List, _) -> Some (Vtype.List Vtype.Any)
  | Term.Coll (Term.Array, _) -> Some (Vtype.Array Vtype.Any)
  | Term.Coll (Term.Tuple, _) -> None

(* -- built-in constraints ------------------------------------------------ *)

let comparison_ops = [ "="; "<>"; "<"; "<="; ">"; ">=" ]

let rec eval_constraint c env (t : Term.t) : bool =
  match t with
  | Term.Cst (Value.Bool b) -> b
  | Term.App ("and", [ Term.Coll (Term.Bag, cs) ]) ->
    List.for_all (eval_constraint c env) cs
  | Term.App ("or", [ Term.Coll (Term.Bag, cs) ]) ->
    List.exists (eval_constraint c env) cs
  | Term.App ("not", [ a ]) -> not (eval_constraint c env a)
  | Term.App (op, [ Term.Cst a; Term.Cst b ]) when List.mem op comparison_ops -> (
    match Adt.apply c.schema_env.Schema.adts op [ a; b ] with
    | Value.Bool r -> r
    | _ -> false
    | exception _ -> false)
  | Term.App ("isa", [ a; ty ]) -> constraint_isa c env a ty
  | Term.App ("notin", a :: members) ->
    not (List.exists (Term.equal a) members)
  | Term.App ("distinct", [ a; b ]) -> not (Term.equal a b)
  | Term.App ("nonempty", [ Term.Coll (_, elems) ]) ->
    (* a lone collection argument is a matched collection term (a variable
       bound to list(…), set(…), …): test its elements, not the fact that
       one argument is present — nonempty(list()) must be false *)
    elems <> []
  | Term.App ("nonempty", [ Term.Cst v ]) when Value.is_collection v ->
    Value.elements v <> []
  | Term.App ("nonempty", args) ->
    (* spliced collection variable: x* becomes the elements themselves *)
    args <> []
  | Term.App ("ground", [ a ]) -> Term.is_ground a
  | Term.App ("pred", [ a ]) -> constraint_pred c a
  | Term.App ("refer_only", [ Term.Coll (_, quals); Term.Coll (_, prefix); group ]) ->
    constraint_refer_only quals prefix group
  | Term.App ("not_in_domain", [ k; s ]) -> constraint_not_in_domain c env k s
  | Term.App ("empty_rel", [ r ]) -> (
    (* provable emptiness of a relational operand (starved by a false
       qualification somewhere inside) *)
    match Lera_term.of_term r with
    | rel -> Lera.obviously_empty rel
    | exception Lera_term.Bridge_error _ -> false)
  | Term.App (name, args) -> (
    match List.assoc_opt name c.constraint_preds with
    | Some fn -> fn c env args
    | None -> false)
  | Term.Var _ | Term.Cvar _ | Term.Cst _ | Term.Coll _ -> false

(* ISA(x, y): subtype test.  The type side is written as a bare name in
   rule syntax (hence a variable after parsing); [constant] means "x is a
   constant", the collection kinds test the constructor, and any declared
   type name tests against the derivable type of x. *)
and constraint_isa c env a ty =
  let type_name =
    match ty with
    | Term.Var n -> Some n
    | Term.Cst (Value.Str n) -> Some (String.lowercase_ascii n)
    | _ -> None
  in
  match type_name with
  | None -> false
  | Some "constant" -> ( match a with Term.Cst _ -> true | _ -> false)
  | Some (("set" | "bag" | "list" | "array" | "collection" | "tuple") as kind) -> (
    let value_is v =
      match v, kind with
      | Value.Set _, ("set" | "collection")
      | Value.Bag _, ("bag" | "collection")
      | Value.List _, ("list" | "collection")
      | Value.Array _, ("array" | "collection")
      | Value.Tuple _, "tuple" ->
        true
      | _ -> false
    in
    match a with
    | Term.Cst v -> value_is v
    | Term.Coll (Term.Set, _) -> kind = "set" || kind = "collection"
    | Term.Coll (Term.Bag, _) -> kind = "bag" || kind = "collection"
    | Term.Coll (Term.List, _) -> kind = "list" || kind = "collection"
    | Term.Coll (Term.Array, _) -> kind = "array" || kind = "collection"
    | Term.Coll (Term.Tuple, _) -> kind = "tuple"
    | _ -> (
      match term_type c env a with
      | Some t -> (
        let target =
          match kind with
          | "set" -> Vtype.Set Vtype.Any
          | "bag" -> Vtype.Bag Vtype.Any
          | "list" -> Vtype.List Vtype.Any
          | "array" -> Vtype.Array Vtype.Any
          | "tuple" -> Vtype.Tuple []
          | _ -> Vtype.Collection Vtype.Any
        in
        match target with
        | Vtype.Tuple [] -> (
          match Vtype.expand c.schema_env.Schema.types t with
          | Vtype.Tuple _ -> true
          | _ -> false)
        | _ -> Vtype.isa c.schema_env.Schema.types t target)
      | None -> false))
  | Some name -> (
    let types = c.schema_env.Schema.types in
    let target =
      match String.lowercase_ascii name with
      | "numeric" | "real" -> Some Vtype.Real
      | "int" | "integer" -> Some Vtype.Int
      | "char" | "string" -> Some Vtype.String
      | "boolean" | "bool" -> Some Vtype.Bool
      | _ -> (
        (* declared names parse lowercased; search case-insensitively *)
        let decls = Vtype.declarations types in
        match
          List.find_opt
            (fun d -> String.lowercase_ascii d.Vtype.name = String.lowercase_ascii name)
            decls
        with
        | Some d when d.Vtype.is_object -> Some (Vtype.Object d.Vtype.name)
        | Some d -> Some (Vtype.Named d.Vtype.name)
        | None -> None)
    in
    match target, term_type c env a with
    | Some target_ty, Some t -> Vtype.isa types t target_ty
    | _ -> false)

and constraint_pred c a =
  match a with
  | Term.Cst (Value.Str f) | Term.Var f -> (
    List.mem f comparison_ops
    ||
    match Adt.find c.schema_env.Schema.adts f with
    | Some entry -> Vtype.equal entry.Adt.result_type Vtype.Bool
    | None -> false)
  | _ -> false

(* refer_only(list(quals…), list(prefix…), group): every column reference
   of the qualifications points at the operand following the prefix, and
   within that operand at one of the first |group| attributes — i.e. the
   non-nested, grouping attributes of a nest (Figure 8). *)
and constraint_refer_only quals prefix group =
  let slot = List.length prefix + 1 in
  let width =
    match group with
    | Term.Coll (Term.Tuple, cols) -> List.length cols
    | _ -> 0
  in
  quals <> []
  && List.for_all
       (fun q ->
         List.for_all
           (fun (i, j) -> i = slot && j <= width)
           (Lera_term.cols_of q))
       quals

(* not_in_domain(k, col): k is a constant whose value cannot belong to the
   enumeration domain of col's element type — the MEMBER('Cartoon', …)
   inconsistency of §6.1. *)
and constraint_not_in_domain c env k col =
  match k, term_type c env col with
  | Term.Cst kv, Some ty -> (
    let types = c.schema_env.Schema.types in
    let elem =
      match Vtype.element_type types ty with Some e -> e | None -> ty
    in
    match Vtype.expand types elem with
    | Vtype.Enum (_, labels) -> (
      match kv with
      | Value.Str s -> not (List.mem s labels)
      | Value.Enum (_, s) -> not (List.mem s labels)
      | _ -> true)
    | _ -> false)
  | _ -> false

(* -- rule application ---------------------------------------------------- *)

let run_methods c env rule subst =
  let rec go subst = function
    | [] -> Some subst
    | (name, raw_args) :: rest -> (
      match List.assoc_opt name c.methods with
      | None -> raise (Rewrite_error (Fmt.str "unknown method %s in rule %s" name rule.Rule.name))
      | Some fn -> (
        match fn c env subst raw_args with
        | Some subst' -> go subst' rest
        | None -> None))
  in
  go subst rule.Rule.methods

(* Per-attempt veto accounting, filled in only when profiling or tracing
   is on (the tally is [None] on the undisturbed hot path). *)
type attempt_tally = {
  mutable subs : int;  (** substitutions enumerated *)
  mutable constraint_fails : int;
  mutable method_fails : int;
  mutable budget_hit : bool;
}

(* Shared core of rule application.  Enumerates the rule's matches
   lazily; each substitution whose constraints are about to be evaluated
   costs one condition check — [on_check] charges it against the block
   budget and returns false when the budget is exhausted, which aborts
   the enumeration ("each time a rule condition is checked, the limit of
   the block is decreased by one", §4.2). *)
let try_rule c env ~on_check ?tally (rule : Rule.t) t : Term.t option =
  let rec find seq =
    match seq () with
    | Seq.Nil -> None
    | Seq.Cons (subst, rest) -> (
      if not (on_check ()) then begin
        (match tally with Some a -> a.budget_hit <- true | None -> ());
        None
      end
      else begin
        (match tally with Some a -> a.subs <- a.subs + 1 | None -> ());
        let holds =
          List.for_all
            (fun ct -> eval_constraint c env (Subst.apply subst ct))
            rule.Rule.constraints
        in
        if not holds then begin
          (match tally with
          | Some a -> a.constraint_fails <- a.constraint_fails + 1
          | None -> ());
          find rest
        end
        else
          match run_methods c env rule subst with
          | Some subst' -> Some (Lera_term.normalize (Subst.apply subst' rule.Rule.rhs))
          | None ->
            (match tally with
            | Some a -> a.method_fails <- a.method_fails + 1
            | None -> ());
            find rest
      end)
  in
  find (Matcher.all ~pattern:rule.Rule.lhs t)

(* One (rule, node) attempt with observability: when a profile is
   installed, aggregate attempts/fires/vetoes and condition time per
   (block, rule); when a trace sink is installed, emit one complete
   event per attempt with its outcome.  When neither is active this is
   exactly [try_rule] — one load and one branch of overhead. *)
let attempt_rule c env ~on_check ~block_name (rule : Rule.t) t : Term.t option =
  match Obs.Profile.current (), Obs.enabled () with
  | None, false -> try_rule c env ~on_check rule t
  | profile, traced ->
    let tally =
      { subs = 0; constraint_fails = 0; method_fails = 0; budget_hit = false }
    in
    let t0 = Obs.now () in
    let result = try_rule c env ~on_check ~tally rule t in
    let dt = Obs.now () -. t0 in
    (match profile with
    | Some p ->
      let cell = Obs.Profile.cell p ~block:block_name ~rule:rule.Rule.name in
      cell.Obs.Profile.attempts <- cell.Obs.Profile.attempts + 1;
      if Option.is_some result then
        cell.Obs.Profile.fires <- cell.Obs.Profile.fires + 1;
      cell.Obs.Profile.constraint_vetoes <-
        cell.Obs.Profile.constraint_vetoes + tally.constraint_fails;
      cell.Obs.Profile.method_vetoes <-
        cell.Obs.Profile.method_vetoes + tally.method_fails;
      if tally.budget_hit then
        cell.Obs.Profile.budget_aborts <- cell.Obs.Profile.budget_aborts + 1;
      cell.Obs.Profile.time_s <- cell.Obs.Profile.time_s +. dt
    | None -> ());
    if traced then begin
      let outcome =
        match result with
        | Some _ -> "fired"
        | None ->
          if tally.budget_hit then "budget"
          else if tally.method_fails > 0 then "method-veto"
          else if tally.constraint_fails > 0 then "constraint-veto"
          else "no-match"
      in
      Obs.complete ~cat:"rule"
        ~attrs:
          [
            ("block", Obs.Json.Str block_name);
            ("outcome", Obs.Json.Str outcome);
            ("substitutions", Obs.Json.Int tally.subs);
          ]
        ("rule:" ^ rule.Rule.name) ~ts:t0 ~dur:dt
    end;
    result

let apply_rule_at c env (rule : Rule.t) t : Term.t option =
  try_rule c env ~on_check:(fun () -> true) rule t

(* -- local environments while descending --------------------------------- *)

(* Structural equality with physical shortcuts: schemas are shared by the
   memo table, so the [==] fast path is the common case. *)
let schema_equal (s1 : Schema.t) (s2 : Schema.t) =
  s1 == s2
  || List.compare_lengths s1 s2 = 0
     && List.for_all2
          (fun (n1, t1) (n2, t2) -> String.equal n1 n2 && Vtype.equal t1 t2)
          s1 s2

let rvars_equal r1 r2 =
  r1 == r2
  || List.compare_lengths r1 r2 = 0
     && List.for_all2
          (fun (n1, s1) (n2, s2) -> String.equal n1 n2 && schema_equal s1 s2)
          r1 r2

let input_schemas_equal o1 o2 =
  match o1, o2 with
  | None, None -> true
  | Some l1, Some l2 ->
    l1 == l2 || (List.compare_lengths l1 l2 = 0 && List.for_all2 schema_equal l1 l2)
  | None, Some _ | Some _, None -> false

let env_equal e1 e2 =
  e1 == e2
  || input_schemas_equal e1.input_schemas e2.input_schemas
     && rvars_equal e1.rvars e2.rvars

(* Hashtable keyed on physical term identity.  [Hashtbl.hash] is
   structural but depth/width-bounded, so it is cheap, stable under the
   GC, and consistent with [==] (physically equal terms hash equally). *)
module Phystbl = Hashtbl.Make (struct
  type t = Term.t

  let equal = ( == )
  let hash = Hashtbl.hash
end)

type schema_memo = ((string * Schema.t) list * Schema.t option) list ref Phystbl.t

let schema_of_rel_plain c env rt =
  try Some (Schema.of_rel ~rvars:env.rvars c.schema_env (Lera_term.of_term rt))
  with Schema.Schema_error _ | Lera_term.Bridge_error _ -> None

(* [Schema.of_rel] re-derives the full operand schema on every visit of a
   qualification's parent; memoizing on the physical operand term turns
   the repeated derivations of an unchanged subtree into table lookups
   (normalize preserves sharing, so subtree identity survives rewrite
   steps).  The recursion-variable environment is part of the key. *)
let schema_of_rel_memo (memo : schema_memo) stats c env rt =
  let entries =
    match Phystbl.find_opt memo rt with
    | Some r -> r
    | None ->
      let r = ref [] in
      Phystbl.add memo rt r;
      r
  in
  match List.find_opt (fun (rv, _) -> rvars_equal rv env.rvars) !entries with
  | Some (_, res) ->
    stats.schema_hits <- stats.schema_hits + 1;
    res
  | None ->
    stats.schema_misses <- stats.schema_misses + 1;
    let res = schema_of_rel_plain c env rt in
    entries := (env.rvars, res) :: !entries;
    res

(* local environment refinement while descending: when entering the
   qualification or projection of a relational operator, record the
   operand schemas; when entering a fixpoint body, bind the recursion
   variable's schema.  [schema_of] abstracts over the memoized and plain
   derivations. *)
let child_envs_with ~schema_of env (t : Term.t) : local_env list =
  let with_inputs rels =
    let schemas = List.map (schema_of env) rels in
    if List.for_all Option.is_some schemas then
      { env with input_schemas = Some (List.map Option.get schemas) }
    else { env with input_schemas = None }
  in
  match t with
  | Term.App ("search", [ Term.Coll (Term.List, rels); _; _ ]) ->
    let qenv = with_inputs rels in
    [ env; qenv; qenv ]
  | Term.App ("filter", [ rel; _ ]) -> [ env; with_inputs [ rel ] ]
  | Term.App ("proj", [ rel; _ ]) -> [ env; with_inputs [ rel ] ]
  | Term.App ("join", [ r1; r2; _ ]) -> [ env; env; with_inputs [ r1; r2 ] ]
  | Term.App ("fix", [ Term.Cst (Value.Str n); _ ]) -> (
    match schema_of env t with
    | Some sch -> [ env; { env with rvars = (n, sch) :: env.rvars } ]
    | None -> [ env; env ])
  | Term.App (_, args) | Term.Coll (_, args) -> List.map (Fun.const env) args
  | Term.Var _ | Term.Cvar _ | Term.Cst _ -> []

(* -- block execution ------------------------------------------------------ *)

(* Per-block execution state of the indexed engine. *)
type exec = {
  ectx : ctx;
  stats : stats;
  bstats : block_stats;
  block : Rule.block;
  compiled : Rule.compiled;
  budget : int ref;
  memo : schema_memo;
  failed : local_env list ref Phystbl.t;
      (** subtrees proven redex-free for this block, with the local
          environments under which that was established *)
}

let charge_check ex () =
  if !(ex.budget) <= 0 then false
  else begin
    ex.stats.conditions_checked <- ex.stats.conditions_checked + 1;
    ex.bstats.conditions <- ex.bstats.conditions + 1;
    decr ex.budget;
    true
  end

let is_failed ex t env =
  match Phystbl.find_opt ex.failed t with
  | None -> false
  | Some envs -> List.exists (env_equal env) !envs

let mark_failed ex t env =
  match Phystbl.find_opt ex.failed t with
  | Some envs -> envs := env :: !envs
  | None -> Phystbl.add ex.failed t (ref [ env ])

let record ex rule redex replacement =
  ex.stats.trace <-
    {
      rule_name = rule.Rule.name;
      block_name = ex.block.Rule.block_name;
      redex;
      replacement;
    }
    :: ex.stats.trace;
  bump_rule ex.stats rule.Rule.name;
  ex.bstats.rewrites <- ex.bstats.rewrites + 1

(* One rewrite step of the indexed engine: scan top-down, leftmost; on
   success rebuild the path.  Equivalent to restarting a full scan from
   the root (same visit order, hence identical traces), except that
   subtrees recorded in [ex.failed] are skipped: they are physically the
   same terms under the same local environments as when a complete scan
   proved them redex-free, and nothing a rewrite elsewhere can change
   affects that verdict.  Rebuilt spine nodes are fresh allocations, so
   the ancestors of a redex are always re-examined — outermost priority
   is preserved. *)
let rec fast_at_node ex env t =
  if !(ex.budget) <= 0 then None
  else if is_failed ex t env then None
  else begin
    ex.stats.nodes_visited <- ex.stats.nodes_visited + 1;
    ex.bstats.nodes <- ex.bstats.nodes + 1;
    let cands = Rule.candidates ex.compiled t in
    let n_cands = List.length cands in
    ex.stats.index_hits <- ex.stats.index_hits + (Rule.rule_count ex.compiled - n_cands);
    ex.stats.index_misses <- ex.stats.index_misses + n_cands;
    match fast_try_rules ex env t cands with
    | Some t' -> Some t'
    | None ->
      let result = fast_into_children ex env t in
      (* only a completed scan proves redex-freedom: with the budget
         exhausted the subtree may contain untried matches *)
      if result = None && !(ex.budget) > 0 then mark_failed ex t env;
      result
  end

and fast_try_rules ex env t = function
  | [] -> None
  | rule :: rest ->
    if !(ex.budget) <= 0 then None
    else begin
      ex.stats.match_attempts <- ex.stats.match_attempts + 1;
      match
        attempt_rule ex.ectx env ~on_check:(charge_check ex)
          ~block_name:ex.block.Rule.block_name rule t
      with
      | Some t' ->
        record ex rule t t';
        Some t'
      | None -> fast_try_rules ex env t rest
    end

and fast_into_children ex env t =
  match t with
  | Term.Var _ | Term.Cvar _ | Term.Cst _ -> None
  | Term.App (_, args) | Term.Coll (_, args) ->
    let envs =
      child_envs_with
        ~schema_of:(fun env rt -> schema_of_rel_memo ex.memo ex.stats ex.ectx env rt)
        env t
    in
    let rec walk i = function
      | [] -> None
      | arg :: rest -> (
        let cenv = match List.nth_opt envs i with Some e -> e | None -> env in
        match fast_at_node ex cenv arg with
        | Some arg' ->
          let args' = List.mapi (fun j a -> if j = i then arg' else a) args in
          Some
            (match t with
            | Term.App (f, _) -> Term.App (f, args')
            | Term.Coll (k, _) -> Term.Coll (k, args')
            | _ -> assert false)
        | None -> walk (i + 1) rest)
    in
    walk 0 args

let run_block_exec ex t =
  let t0 = Unix.gettimeofday () in
  let rec loop t =
    if !(ex.budget) <= 0 then t
    else
      match fast_at_node ex top_env t with
      | Some t' -> loop (Lera_term.normalize t')
      | None -> t
  in
  let result = loop t in
  ex.bstats.time_s <- ex.bstats.time_s +. (Unix.gettimeofday () -. t0);
  result

(* [bstats] is this pass's cell; fold it into the name-summed view once
   the pass completes.  With a trace sink installed the pass becomes a
   span carrying its budget on entry and its work counters on exit. *)
let run_pass stats block_name ~limit ~bstats exec t =
  let result =
    if not (Obs.enabled ()) then exec t
    else begin
      let name = "block:" ^ block_name in
      Obs.span_begin ~cat:"rewrite"
        ~attrs:
          [
            ( "limit",
              match limit with
              | Some n -> Obs.Json.Int n
              | None -> Obs.Json.Str "inf" );
            ("pass", Obs.Json.Int (List.length stats.passes));
          ]
        name;
      Fun.protect
        ~finally:(fun () ->
          Obs.span_end ~cat:"rewrite"
            ~attrs:
              [
                ("nodes", Obs.Json.Int bstats.nodes);
                ("conditions", Obs.Json.Int bstats.conditions);
                ("rewrites", Obs.Json.Int bstats.rewrites);
              ]
            name)
        (fun () -> exec t)
    end
  in
  merge_pass stats block_name bstats;
  result

let run_block_with c stats memo (block : Rule.block) t =
  let bstats = new_pass stats block.Rule.block_name in
  let ex =
    {
      ectx = c;
      stats;
      bstats;
      block;
      compiled = Rule.compile block;
      budget = ref (match block.Rule.limit with Some n -> n | None -> max_int);
      memo;
      failed = Phystbl.create 256;
    }
  in
  run_pass stats block.Rule.block_name ~limit:block.Rule.limit ~bstats
    (run_block_exec ex) t

let run_block c ?stats (block : Rule.block) t =
  let stats = match stats with Some s -> s | None -> fresh_stats () in
  run_block_with c stats (Phystbl.create 256) block t

let run c ?stats (program : Rule.program) t =
  let stats = match stats with Some s -> s | None -> fresh_stats () in
  (* the schema memo is keyed on (physical term, rvars) and the context is
     fixed, so it stays valid across blocks and rounds *)
  let memo = Phystbl.create 256 in
  let round t =
    List.fold_left
      (fun acc block -> run_block_with c stats memo block acc)
      t program.Rule.blocks
  in
  let rec loop n t =
    if n <= 0 then t
    else
      let t' = round t in
      if Term.equal t' t then t' else loop (n - 1) t'
  in
  loop program.Rule.rounds t

(* -- reference engine ----------------------------------------------------- *)

(* The straightforward engine: restart the scan from the root after every
   rewrite, consult every rule of the block at every node, re-derive
   schemas on every visit.  Same rule semantics and budget accounting as
   the indexed engine — the golden-trace tests check that both produce
   identical results and traces; the benchmarks use the work counters to
   measure what indexing and incremental re-scan save. *)
let reference_step c block stats bstats budget t : Term.t option =
  let rec at_node env t =
    if !budget <= 0 then None
    else begin
      stats.nodes_visited <- stats.nodes_visited + 1;
      bstats.nodes <- bstats.nodes + 1;
      match try_rules env t block.Rule.rules with
      | Some t' -> Some t'
      | None -> into_children env t
    end
  and try_rules env t = function
    | [] -> None
    | rule :: rest ->
      if !budget <= 0 then None
      else begin
        stats.match_attempts <- stats.match_attempts + 1;
        let on_check () =
          if !budget <= 0 then false
          else begin
            stats.conditions_checked <- stats.conditions_checked + 1;
            bstats.conditions <- bstats.conditions + 1;
            decr budget;
            true
          end
        in
        match
          attempt_rule c env ~on_check ~block_name:block.Rule.block_name rule t
        with
        | Some t' ->
          stats.trace <-
            {
              rule_name = rule.Rule.name;
              block_name = block.Rule.block_name;
              redex = t;
              replacement = t';
            }
            :: stats.trace;
          bump_rule stats rule.Rule.name;
          bstats.rewrites <- bstats.rewrites + 1;
          Some t'
        | None -> try_rules env t rest
      end
  and into_children env t =
    match t with
    | Term.Var _ | Term.Cvar _ | Term.Cst _ -> None
    | Term.App (_, args) | Term.Coll (_, args) ->
      let envs =
        (* no memo: every derivation is counted as a miss, so the stats
           compare directly against the indexed engine's hit counters *)
        child_envs_with
          ~schema_of:(fun env rt ->
            stats.schema_misses <- stats.schema_misses + 1;
            schema_of_rel_plain c env rt)
          env t
      in
      let rec walk i = function
        | [] -> None
        | arg :: rest -> (
          let cenv = match List.nth_opt envs i with Some e -> e | None -> env in
          match at_node cenv arg with
          | Some arg' ->
            let args' = List.mapi (fun j a -> if j = i then arg' else a) args in
            Some
              (match t with
              | Term.App (f, _) -> Term.App (f, args')
              | Term.Coll (k, _) -> Term.Coll (k, args')
              | _ -> assert false)
          | None -> walk (i + 1) rest)
      in
      walk 0 args
  in
  at_node top_env t

let run_block_reference c ?stats (block : Rule.block) t =
  let stats = match stats with Some s -> s | None -> fresh_stats () in
  let bstats = new_pass stats block.Rule.block_name in
  let budget = ref (match block.Rule.limit with Some n -> n | None -> max_int) in
  let exec t =
    let t0 = Unix.gettimeofday () in
    let rec loop t =
      if !budget <= 0 then t
      else
        match reference_step c block stats bstats budget t with
        | Some t' -> loop (Lera_term.normalize t')
        | None -> t
    in
    let result = loop t in
    bstats.time_s <- bstats.time_s +. (Unix.gettimeofday () -. t0);
    result
  in
  run_pass stats block.Rule.block_name ~limit:block.Rule.limit ~bstats exec t

let run_reference c ?stats (program : Rule.program) t =
  let stats = match stats with Some s -> s | None -> fresh_stats () in
  let round t =
    List.fold_left
      (fun acc block -> run_block_reference c ~stats block acc)
      t program.Rule.blocks
  in
  let rec loop n t =
    if n <= 0 then t
    else
      let t' = round t in
      if Term.equal t' t then t' else loop (n - 1) t'
  in
  loop program.Rule.rounds t
