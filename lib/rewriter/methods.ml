module Value = Eds_value.Value
module Adt = Eds_value.Adt
module Term = Eds_term.Term
module Subst = Eds_term.Subst
module Lera = Eds_lera.Lera
module Schema = Eds_lera.Schema
module Lera_term = Eds_lera.Lera_term

let ( let* ) = Option.bind

(* resolve an input argument through the substitution *)
let input subst (t : Term.t) : Term.t option =
  match t with
  | Term.Var x | Term.Cvar x -> Subst.find_term subst x
  | _ -> Some (Subst.apply subst t)

(* an output argument must be an unbound variable *)
let output subst (t : Term.t) : string option =
  match t with
  | Term.Var x | Term.Cvar x ->
    if Option.is_some (Subst.find subst x) then None else Some x
  | _ -> None

let bind_one subst name t = Subst.bind subst name (Subst.One t)

let many_count subst (t : Term.t) : int option =
  match t with
  | Term.Cvar x | Term.Var x -> (
    match Subst.find subst x with
    | Some (Subst.Many (_, ts)) -> Some (List.length ts)
    | Some (Subst.One (Term.Coll (_, ts))) -> Some (List.length ts)
    | _ -> None)
  | Term.Coll (_, ts) -> Some (List.length ts)
  | _ -> None

let coll_items (t : Term.t) : Term.t list option =
  match t with Term.Coll (_, ts) -> Some ts | _ -> None

let conjuncts_of (t : Term.t) : Term.t list =
  match t with
  | Term.App ("and", [ Term.Coll (Term.Bag, cs) ]) -> cs
  | Term.Cst (Value.Bool true) -> []
  | _ -> [ t ]

let conj_term = function
  | [] -> Term.tru
  | [ c ] -> c
  | cs -> Term.App ("and", [ Term.Coll (Term.Bag, cs) ])

(* schema of an encoded relational term, if computable *)
let rel_schema (c : Engine.ctx) (env : Engine.local_env) (t : Term.t) :
    Schema.t option =
  match Lera_term.of_term t with
  | rel -> (
    try Some (Schema.of_rel ~rvars:env.Engine.rvars c.Engine.schema_env rel)
    with Schema.Schema_error _ -> None)
  | exception Lera_term.Bridge_error _ -> None

(* -- substitute / shift (Figure 7) --------------------------------------- *)

let m_substitute c env subst args =
  ignore c;
  ignore env;
  match args with
  | [ f_arg; x_arg; b_arg; z_arg; out_arg ] ->
    let* f = input subst f_arg in
    let* nx = many_count subst x_arg in
    let* b = input subst b_arg in
    let* proj = coll_items b in
    let* z = input subst z_arg in
    let* z_items = coll_items z in
    let* out = output subst out_arg in
    let merged =
      Lera_term.merge_subst ~slot:(nx + 1) ~inner_arity:(List.length z_items) ~proj f
    in
    bind_one subst out merged
  | _ -> None

let m_shift c env subst args =
  ignore c;
  ignore env;
  match args with
  | [ g_arg; x_arg; out_arg ] ->
    let* g = input subst g_arg in
    let* nx = many_count subst x_arg in
    let* out = output subst out_arg in
    bind_one subst out (Lera_term.shift_cols ~by:nx g)
  | _ -> None

(* -- schema (Figure 8): identity projection over an operand list -------- *)

let m_schema c env subst args =
  match args with
  | [ z_arg; out_arg ] ->
    let* z = input subst z_arg in
    let* out = output subst out_arg in
    let rels = match z with Term.Coll (_, rs) -> rs | single -> [ single ] in
    let schemas = List.map (rel_schema c env) rels in
    if List.exists Option.is_none schemas then None
    else begin
      let cols =
        List.concat
          (List.mapi
             (fun i sch ->
               List.mapi
                 (fun j _ ->
                   Term.app "@" [ Term.int (i + 1); Term.int (j + 1) ])
                 (Option.get sch))
             schemas)
      in
      bind_one subst out (Term.Coll (Term.Tuple, cols))
    end
  | _ -> None

(* -- distribute (search through union, Figure 8) ------------------------- *)

let m_distribute c env subst args =
  ignore c;
  ignore env;
  match args with
  | [ x_arg; z_arg; y_arg; f_arg; a_arg; out_arg ] ->
    let* xs = input subst x_arg in
    let* xs_items = coll_items xs in
    let* z = input subst z_arg in
    let* members = coll_items z in
    let* ys = input subst y_arg in
    let* ys_items = coll_items ys in
    let* f = input subst f_arg in
    let* a = input subst a_arg in
    let* out = output subst out_arg in
    if members = [] then None
    else begin
      let search_over u =
        Term.app "search"
          [ Term.Coll (Term.List, xs_items @ [ u ] @ ys_items); f; a ]
      in
      let u =
        Term.app "union" [ Term.Coll (Term.Set, List.map search_over members) ]
      in
      bind_one subst out u
    end
  | _ -> None

(* or_to_union: a search whose qualification is a disjunction becomes a
   union of one search per disjunct — sound under set semantics, and it
   lets the per-arm conjuncts push down independently *)
let m_or_to_union c env subst args =
  ignore c;
  ignore env;
  match args with
  | [ z_arg; d_arg; e_arg; out_arg ] ->
    let* z = input subst z_arg in
    let* disjuncts =
      match input subst d_arg with
      | Some (Term.Coll (_, ds)) -> Some ds
      | Some single -> Some [ single ]
      | None -> None
    in
    let* e = input subst e_arg in
    let* out = output subst out_arg in
    if List.length disjuncts < 2 then None
    else begin
      let arm d = Term.app "search" [ z; d; e ] in
      bind_one subst out
        (Term.app "union" [ Term.Coll (Term.Set, List.map arm disjuncts) ])
    end
  | _ -> None

(* -- qualification splitting (select pushdown; Figure-8 nest push) ------- *)

let cols_all_in_slot slot (t : Term.t) =
  let cols = Lera_term.cols_of t in
  cols <> [] && List.for_all (fun (i, _) -> i = slot) cols

let m_split_input_qual c env subst args =
  ignore c;
  ignore env;
  match args with
  | [ q_arg; x_arg; r_arg; y_arg; qi_arg; qj_arg ] ->
    let* q = input subst q_arg in
    let* nx = many_count subst x_arg in
    let* ny = many_count subst y_arg in
    let* r = input subst r_arg in
    (* pushing the predicate of a single-operand search over a stored
       relation only adds an operator: decline *)
    let single_base =
      nx = 0 && ny = 0
      && match r with Term.App ("rel", _) -> true | _ -> false
    in
    if single_base then None
    else
    let slot = nx + 1 in
    let conjuncts = conjuncts_of q in
    let pushable, rest = List.partition (cols_all_in_slot slot) conjuncts in
    if pushable = [] then None
    else begin
      (* avoid re-pushing through an identical filter (idempotence guard) *)
      let renumbered =
        List.map (Lera_term.map_cols (fun _ j -> Term.app "@" [ Term.int 1; Term.int j ]))
          pushable
      in
      match r with
      | Term.App ("filter", [ _; existing ])
        when List.for_all
               (fun p -> List.exists (Term.equal p) (conjuncts_of existing))
               renumbered ->
        None
      | _ ->
        let* qi = output subst qi_arg in
        let* qj = output subst qj_arg in
        let* s1 = bind_one subst qi (conj_term renumbered) in
        bind_one s1 qj (conj_term rest)
    end
  | _ -> None

let m_split_nest_qual c env subst args =
  ignore c;
  ignore env;
  match args with
  | [ q_arg; x_arg; g_arg; qi_arg; qj_arg ] ->
    let* q = input subst q_arg in
    let* nx = many_count subst x_arg in
    let* g = input subst g_arg in
    let* group_cols = coll_items g in
    let slot = nx + 1 in
    let width = List.length group_cols in
    let group_j idx =
      match List.nth_opt group_cols (idx - 1) with
      | Some (Term.Cst (Value.Int j)) -> Some j
      | _ -> None
    in
    let conjuncts = conjuncts_of q in
    let pushable, rest =
      List.partition
        (fun t ->
          let cols = Lera_term.cols_of t in
          cols <> [] && List.for_all (fun (i, j) -> i = slot && j <= width) cols)
        conjuncts
    in
    if pushable = [] then None
    else begin
      let renumber t =
        Lera_term.map_cols
          (fun _ j ->
            match group_j j with
            | Some j' -> Term.app "@" [ Term.int 1; Term.int j' ]
            | None -> Term.app "@" [ Term.int 1; Term.int j ])
          t
      in
      let* qi = output subst qi_arg in
      let* qj = output subst qj_arg in
      let* s1 = bind_one subst qi (conj_term (List.map renumber pushable)) in
      bind_one s1 qj (conj_term rest)
    end
  | _ -> None

let m_split_unnest_qual c env subst args =
  ignore c;
  ignore env;
  match args with
  | [ q_arg; x_arg; i_arg; qi_arg; qj_arg ] ->
    let* q = input subst q_arg in
    let* nx = many_count subst x_arg in
    let* it = input subst i_arg in
    let* flattened =
      match it with Term.Cst (Value.Int i) -> Some i | _ -> None
    in
    let slot = nx + 1 in
    let conjuncts = conjuncts_of q in
    (* pushable: refers only to the unnest operand, avoiding the column
       whose collection is flattened (its inner value differs) *)
    let pushable, rest =
      List.partition
        (fun t ->
          let cols = Lera_term.cols_of t in
          cols <> []
          && List.for_all (fun (i, j) -> i = slot && j <> flattened) cols)
        conjuncts
    in
    if pushable = [] then None
    else begin
      let renumber t =
        Lera_term.map_cols (fun _ j -> Term.app "@" [ Term.int 1; Term.int j ]) t
      in
      let* qi = output subst qi_arg in
      let* qj = output subst qj_arg in
      let* s1 = bind_one subst qi (conj_term (List.map renumber pushable)) in
      bind_one s1 qj (conj_term rest)
    end
  | _ -> None

(* -- evaluate (Figure 12) ------------------------------------------------- *)

(* heads that are structure, not ADT functions *)
let structural =
  [
    "rel"; "rvar"; "filter"; "proj"; "join"; "union"; "difference";
    "intersection"; "search"; "fix"; "nest"; "unnest"; "@"; "and"; "or";
    "value";
  ]

let m_evaluate c env subst args =
  ignore env;
  match args with
  | [ e_arg; out_arg ] ->
    let* e = input subst e_arg in
    let* out = output subst out_arg in
    (match e with
    | Term.App (f, fargs) when not (List.mem f structural) ->
      let consts =
        List.map (function Term.Cst v -> Some v | _ -> None) fargs
      in
      if List.exists Option.is_none consts then None
      else begin
        match Adt.apply c.Engine.schema_env.Schema.adts f (List.map Option.get consts) with
        | v -> bind_one subst out (Term.Cst v)
        | exception _ -> None
      end
    | _ -> None)
  | _ -> None

(* -- fixpoint methods (Figure 9) ------------------------------------------ *)

let m_linearize c env subst args =
  ignore c;
  ignore env;
  match args with
  | [ f_arg; out_arg ] ->
    let* f = input subst f_arg in
    let* out = output subst out_arg in
    let* rel =
      match Lera_term.of_term f with
      | r -> Some r
      | exception Lera_term.Bridge_error _ -> None
    in
    let* linear = Magic.linearize_tc rel in
    bind_one subst out (Lera_term.to_term linear)
  | _ -> None

let encode_signature (sig_ : (int * Lera.scalar) list) : Term.t =
  Term.Coll
    ( Term.Tuple,
      List.map
        (fun (j, k) ->
          Term.Coll (Term.Tuple, [ Term.int j; Lera_term.scalar_to_term k ]))
        sig_ )

let decode_signature (t : Term.t) : (int * Lera.scalar) list option =
  match t with
  | Term.Coll (Term.Tuple, items) ->
    let decode = function
      | Term.Coll (Term.Tuple, [ Term.Cst (Value.Int j); k ]) -> (
        match Lera_term.scalar_of_term k with
        | s -> Some (j, s)
        | exception Lera_term.Bridge_error _ -> None)
      | _ -> None
    in
    let decoded = List.map decode items in
    if List.exists Option.is_none decoded then None
    else Some (List.map Option.get decoded)
  | _ -> None

let fix_name (t : Term.t) =
  match t with
  | Term.App ("fix", [ Term.Cst (Value.Str n); _ ]) -> Some n
  | _ -> None

let m_adornment c env subst args =
  match args with
  | [ x_arg; f_arg; q_arg; out_arg ] ->
    let* nx = many_count subst x_arg in
    let* f = input subst f_arg in
    let* q = input subst q_arg in
    let* out = output subst out_arg in
    let* name = fix_name f in
    (* apply the method once only per recursive predicate (paper §5.3) *)
    if String.length name > 6 && Filename.check_suffix name "_magic" then None
    else begin
      let* sch = rel_schema c env f in
      let* qual =
        match Lera_term.scalar_of_term q with
        | s -> Some s
        | exception Lera_term.Bridge_error _ -> None
      in
      let bound = Magic.adornment qual ~slot:(nx + 1) ~arity:(List.length sch) in
      if bound = [] then None else bind_one subst out (encode_signature bound)
    end
  | _ -> None

let m_alexander c env subst args =
  match args with
  | [ f_arg; sig_arg; out_arg ] ->
    let* f = input subst f_arg in
    let* sigt = input subst sig_arg in
    let* out = output subst out_arg in
    let* bound = decode_signature sigt in
    let* rel =
      match Lera_term.of_term f with
      | r -> Some r
      | exception Lera_term.Bridge_error _ -> None
    in
    let rel = match Magic.linearize_tc rel with Some l -> l | None -> rel in
    let* rewritten =
      Eds_obs.Obs.span ~cat:"rewrite" "magic:alexander" (fun () ->
          Magic.transform c.Engine.schema_env ~rvars:env.Engine.rvars rel ~bound)
    in
    bind_one subst out (Lera_term.to_term rewritten)
  | _ -> None

(* -- integrity-constraint addition (Figure 10) ---------------------------- *)

let m_domain_constraints c env subst args =
  match args with
  | [ c_arg; out_arg ] ->
    let* cs = input subst c_arg in
    let conjuncts = match cs with Term.Coll (_, ts) -> ts | t -> [ t ] in
    let* out = output subst out_arg in
    (* candidate typed scalars: every column reference and application
       subterm of the qualification *)
    let candidates =
      List.concat_map
        (fun conj ->
          List.filter
            (function Term.App _ -> true | _ -> false)
            (Term.subterms conj))
        conjuncts
      |> List.sort_uniq Term.compare
    in
    let instantiate template scalar =
      Subst.apply (Subst.bind_exn Subst.empty "x" (Subst.One scalar)) template
    in
    let applicable scalar (type_name, template) =
      let holds =
        Engine.eval_constraint c env
          (Term.App ("isa", [ scalar; Term.Var (String.lowercase_ascii type_name) ]))
      in
      if holds then Some (instantiate template scalar) else None
    in
    let additions =
      List.concat_map
        (fun scalar ->
          List.filter_map (applicable scalar) c.Engine.semantic_constraints)
        candidates
      |> List.sort_uniq Term.compare
      |> List.filter (fun t -> not (List.exists (Term.equal t) conjuncts))
    in
    if additions = [] then None
    else
      Subst.bind subst out (Subst.Many (Term.Bag, additions))
  | _ -> None

let all =
  [
    ("substitute", m_substitute);
    ("shift", m_shift);
    ("schema", m_schema);
    ("distribute", m_distribute);
    ("split_input_qual", m_split_input_qual);
    ("split_nest_qual", m_split_nest_qual);
    ("split_unnest_qual", m_split_unnest_qual);
    ("or_to_union", m_or_to_union);
    ("evaluate", m_evaluate);
    ("linearize", m_linearize);
    ("adornment", m_adornment);
    ("alexander", m_alexander);
    ("domain_constraints", m_domain_constraints);
  ]
