(** A fixed pool of worker domains for the parallel physical layer.

    The pool implements {e work-stealing-free chunked fan-out}: a job is
    a task count [n] and a function [f]; task [i] runs on slot
    [i mod size] (the calling domain participates as slot [0]), so the
    task→worker assignment is a pure function of [(n, size)] and two
    runs of the same job perform identical per-slot work — the property
    the determinism tests of the parallel evaluator rely on.  There is
    no task queue and no stealing: callers chunk their data into at most
    [size] contiguous ranges and pass one task per chunk.

    A pool of size 1 spawns no domains and runs every job inline, so
    [Parallel] at one domain degenerates to a plain sequential
    evaluator with zero synchronisation cost. *)

type t

val create : int -> t
(** [create d] spawns [d - 1] worker domains ([d] is clamped to
    [\[1, 64\]]).  The workers idle on a condition variable between
    jobs. *)

val size : t -> int
(** Total parallelism: worker domains + the calling domain. *)

val run : t -> int -> (int -> unit) -> unit
(** [run pool n f] executes [f 0 .. f (n-1)], task [i] on slot
    [i mod size pool], and waits for all of them (a barrier).  Tasks
    must not themselves call {!run} on the same pool (no nested
    parallelism).  Distinct threads may call {!run} concurrently: jobs
    serialize on an internal submission lock, each running with the
    pool to itself — this is what lets the query server evaluate
    [Parallel]-layer SELECTs from many connection threads at once.  If
    any task raises, the first exception (in slot order of detection)
    is re-raised on the calling domain after the barrier.  With
    [size pool = 1] or [n <= 1] the tasks run inline (and fully
    concurrently: the inline path touches no shared pool state). *)

val shutdown : t -> unit
(** Stop and join the worker domains.  The pool must be idle. *)

val get : int -> t
(** [get d] returns a process-wide cached pool of size [d], creating it
    on first use.  Cached pools are shut down automatically at exit. *)

val default_size : unit -> int
(** The domain count used when none is given explicitly: the
    [EDS_DOMAINS] environment variable if set to a positive integer,
    otherwise [Domain.recommended_domain_count ()], clamped to
    [\[1, 8\]]. *)

val chunk_count : slots:int -> min_chunk:int -> int -> int
(** [chunk_count ~slots ~min_chunk n]: how many contiguous chunks to
    cut [n] items into — [1] (stay sequential) when [slots <= 1] or
    [n < 2 * min_chunk], else [min slots (n / min_chunk)].  The shared
    chunking rule of every fan-out site, pure in its arguments, so a
    fixed pool size always yields the same deterministic split. *)
