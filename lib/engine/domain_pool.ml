(* A fixed pool of worker domains with static chunked task assignment.

   Synchronisation is one mutex and two condition variables: the main
   domain publishes a job (generation counter + closure + task count)
   under the mutex and broadcasts; workers run their slots (task i with
   i mod size = slot) outside the mutex and decrement the active count;
   the last one signals the main domain.  Results travel through
   caller-owned arrays indexed by task — distinct slots, so no data
   race — and the mutex hand-off orders those writes before the main
   domain reads them. *)

type t = {
  size : int;
  mutable job : (int -> unit) option;
  mutable ntasks : int;
  mutable gen : int;  (* bumped per job; workers watch it change *)
  mutable active : int;  (* workers still running the current job *)
  mutable failure : (exn * Printexc.raw_backtrace) option;
  mutable stop : bool;
  m : Mutex.t;
  start : Condition.t;
  finished : Condition.t;
  submit : Mutex.t;
      (* held for a whole job: concurrent callers (the query server's
         connection threads) serialize at job granularity, each job runs
         with the pool to itself *)
  mutable workers : unit Domain.t array;
}

let clamp lo hi n = max lo (min hi n)

let record_failure pool e bt =
  Mutex.lock pool.m;
  if pool.failure = None then pool.failure <- Some (e, bt);
  Mutex.unlock pool.m

let run_slot pool f ntasks slot =
  match
    let i = ref slot in
    while !i < ntasks do
      f !i;
      i := !i + pool.size
    done
  with
  | () -> ()
  | exception e -> record_failure pool e (Printexc.get_raw_backtrace ())

let worker pool slot () =
  let rec loop last_gen =
    Mutex.lock pool.m;
    while (not pool.stop) && pool.gen = last_gen do
      Condition.wait pool.start pool.m
    done;
    if pool.stop then Mutex.unlock pool.m
    else begin
      let gen = pool.gen in
      let f = Option.get pool.job in
      let ntasks = pool.ntasks in
      Mutex.unlock pool.m;
      run_slot pool f ntasks slot;
      Mutex.lock pool.m;
      pool.active <- pool.active - 1;
      if pool.active = 0 then Condition.signal pool.finished;
      Mutex.unlock pool.m;
      loop gen
    end
  in
  loop 0

let create d =
  let size = clamp 1 64 d in
  let pool =
    {
      size;
      job = None;
      ntasks = 0;
      gen = 0;
      active = 0;
      failure = None;
      stop = false;
      m = Mutex.create ();
      start = Condition.create ();
      finished = Condition.create ();
      submit = Mutex.create ();
      workers = [||];
    }
  in
  pool.workers <- Array.init (size - 1) (fun i -> Domain.spawn (worker pool (i + 1)));
  pool

let size pool = pool.size

let run pool ntasks f =
  if ntasks <= 0 then ()
  else if pool.size = 1 || ntasks = 1 then
    for i = 0 to ntasks - 1 do
      f i
    done
  else begin
    Mutex.lock pool.submit;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock pool.submit)
      (fun () ->
        Mutex.lock pool.m;
        pool.job <- Some f;
        pool.ntasks <- ntasks;
        pool.failure <- None;
        pool.active <- pool.size - 1;
        pool.gen <- pool.gen + 1;
        Condition.broadcast pool.start;
        Mutex.unlock pool.m;
        run_slot pool f ntasks 0;
        Mutex.lock pool.m;
        while pool.active > 0 do
          Condition.wait pool.finished pool.m
        done;
        pool.job <- None;
        let failure = pool.failure in
        pool.failure <- None;
        Mutex.unlock pool.m;
        match failure with
        | Some (e, bt) -> Printexc.raise_with_backtrace e bt
        | None -> ())
  end

let shutdown pool =
  Mutex.lock pool.m;
  pool.stop <- true;
  Condition.broadcast pool.start;
  Mutex.unlock pool.m;
  Array.iter Domain.join pool.workers

(* -- the process-wide pool cache ---------------------------------------- *)

let cache : (int, t) Hashtbl.t = Hashtbl.create 4
let cache_m = Mutex.create ()
let at_exit_registered = ref false

let get d =
  let d = clamp 1 64 d in
  Mutex.lock cache_m;
  let pool =
    match Hashtbl.find_opt cache d with
    | Some pool -> pool
    | None ->
      let pool = create d in
      Hashtbl.replace cache d pool;
      if not !at_exit_registered then begin
        at_exit_registered := true;
        at_exit (fun () ->
            Mutex.lock cache_m;
            let pools = Hashtbl.fold (fun _ p acc -> p :: acc) cache [] in
            Hashtbl.reset cache;
            Mutex.unlock cache_m;
            List.iter shutdown pools)
      end;
      pool
  in
  Mutex.unlock cache_m;
  pool

let default_size () =
  match Sys.getenv_opt "EDS_DOMAINS" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> clamp 1 64 n
    | Some _ | None -> 1)
  | None -> clamp 1 8 (Domain.recommended_domain_count ())

(* The one chunking rule shared by every fan-out site (joins, scans,
   columnar loops): small inputs stay sequential, larger ones split
   into at most [slots] contiguous chunks of at least [min_chunk]
   items.  Pure in [(slots, min_chunk, n)], so the split — and with it
   the per-slot counter attribution — is deterministic. *)
let chunk_count ~slots ~min_chunk n =
  if slots <= 1 || n < 2 * min_chunk then 1 else min slots (n / min_chunk)
