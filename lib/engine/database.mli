(** An in-memory EDS database instance: base relations, the object store
    binding OIDs to values (paper §2.1: "an object has a unique identifier
    with a value bound to it"), the type environment and the ADT function
    registry. *)

module Value = Eds_value.Value
module Vtype = Eds_value.Vtype
module Adt = Eds_value.Adt
module Schema = Eds_lera.Schema

type t

val create : ?types:Vtype.env -> ?adts:Adt.registry -> unit -> t
(** A fresh database with the built-in ADT library. *)

val snapshot : t -> t
(** An O(1) immutable snapshot: the returned database reflects the state
    at the call and never changes again, no matter what is subsequently
    done to the live one (internally all state lives in persistent maps
    behind a single mutable cell, so a snapshot is one record copy).
    Queries evaluated against a snapshot need no locking whatsoever. *)

val data_generation : t -> int
(** Monotone data epoch: bumped by every mutation (relation replace,
    insert, object allocation/update, type/ADT sync).  A snapshot keeps
    the generation it was taken at. *)

val types : t -> Vtype.env
val adts : t -> Adt.registry
val set_types : t -> Vtype.env -> unit
val set_adts : t -> Adt.registry -> unit

(** {1 Relations} *)

val add_relation : t -> string -> Relation.t -> unit
(** Create or replace a base relation.  The relation's hash view is
    forced before the new state is published, so concurrent snapshot
    readers never race a lazy build. *)

val replace_many : t -> (string * Relation.t) list -> unit
(** Create or replace several relations under a {e single} publish, so
    readers see all of them change atomically and the data generation is
    bumped once.  Used by DML to install a base-relation change together
    with every maintained materialized-view extent. *)

val relation : t -> string -> Relation.t
(** Raises [Not_found]. *)

val relation_opt : t -> string -> Relation.t option
val relation_names : t -> string list

val insert : t -> string -> Relation.tuple -> unit
(** Insert one tuple; no-op if already present (set semantics). *)

val schema_env : t -> Schema.env
(** Environment for {!Eds_lera.Schema.of_rel} over this database. *)

(** {1 Objects} *)

val new_object : t -> Value.t -> Value.t
(** Allocate a fresh OID bound to the given value; returns [Value.Oid]. *)

val deref : t -> Value.t -> Value.t
(** Value bound to an OID (the VALUE built-in of §3.3); non-OID values
    are returned unchanged, so VALUE is idempotent on plain values.
    Raises [Not_found] on a dangling OID. *)

val update_object : t -> Value.t -> Value.t -> unit
(** [update_object db oid v] rebinds an existing object. *)

val restore_object : t -> int -> Value.t -> unit
(** Bind a specific OID (dump/restore); keeps the allocator ahead of it. *)

val objects : t -> (int * Value.t) list
(** All objects, sorted by OID. *)
