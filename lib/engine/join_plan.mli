(** Equi-join extraction and hash-join execution for the indexed
    physical evaluator ({!Eval.Physical.Indexed}).

    A Search/Join qualification is split into equi-join conjuncts
    ([i.j = k.l] across two distinct operands) and a residual
    conjunction; execution then enumerates only the combinations
    satisfying every equi conjunct — hash-index build on each new
    operand, probe from the accumulated partials — instead of the full
    cartesian product, and the caller post-filters with the residual. *)

module Lera = Eds_lera.Lera

type equi = {
  left : int * int;  (** (operand, column), 1-based; the lower operand *)
  right : int * int;
}

type t = {
  operands : int;
  equis : equi list;
  residual : Lera.scalar;  (** conjunction of the non-equi conjuncts *)
}

val analyze : operands:int -> Lera.scalar -> t
(** Classify the top-level conjuncts of a qualification.  Conjuncts
    whose shape is not [Col = Col] across two distinct in-range operands
    land in the residual. *)

val residual : t -> Lera.scalar
val equi_count : t -> int
val has_equis : t -> bool

val execute :
  on_build:(unit -> unit) ->
  on_probe:(unit -> unit) ->
  t ->
  Relation.t array ->
  (Relation.tuple list -> unit) ->
  unit
(** [execute ~on_build ~on_probe plan rels yield] calls [yield] once per
    operand combination satisfying every equi conjunct, with the tuples
    in original operand order (the residual is {e not} applied).
    [on_build] fires once per tuple loaded into a hash index, [on_probe]
    once per index lookup.  Short-circuits to nothing if any operand is
    empty; with zero operands yields the single empty combination, like
    the cartesian enumerator. *)

val execute_parallel :
  pool:Domain_pool.t ->
  on_build:(int -> unit) ->
  on_probe:(int -> unit) ->
  t ->
  Relation.t array ->
  (int -> Relation.tuple list -> unit) ->
  unit
(** The partitioned parallel executor ({!Eval.Physical.Parallel}): the
    build side of every hash step is partitioned by key hash across the
    pool, and the first operand's tuples are cut into contiguous chunks
    walked depth-first through the step list in parallel, streaming
    combinations to [yield].  All callbacks receive the slot (chunk or
    build-partition) index, in [\[0, Domain_pool.size pool)]; calls for
    one slot are sequential, calls for distinct slots may be concurrent,
    so callbacks must only touch slot-private state.  Yields the same
    combination multiset as {!execute} (in a different order) and fires
    the same {e total} number of [on_build]/[on_probe] callbacks,
    independent of the pool size; the per-slot split is deterministic
    for a fixed pool size.  [yield] and the callbacks run on worker
    domains: they must not emit {!Eds_obs.Obs} events or touch shared
    mutable state. *)

val columnar_ok : t -> Column.table array -> bool
(** Whether {!execute_columnar} may run this plan over these operand
    tables: every equi edge's two columns must be in range and share a
    flavor (the packed-int fast path cannot see [Value.compare]'s
    Int/Real cross-equality).  The caller separately guarantees that
    {e every} operand has a columnar shadow. *)

val execute_columnar :
  ?pool:Domain_pool.t ->
  on_build:(unit -> unit) ->
  on_probe:(int -> unit) ->
  t ->
  Column.table array ->
  (int -> int array -> unit) ->
  unit
(** The vectorized executor: same combination set and the same
    [on_build]/[on_probe] {e totals} as {!execute}, but enumeration
    runs entirely over typed column arrays — probe keys hash and
    compare as packed ints, and [yield slot rows] hands over the
    per-operand {e row numbers} ([rows.(k)] indexes operand [k]'s
    table) so the caller materializes boxed tuples only for surviving
    combinations.  [rows] is a reused cursor: read it during the
    callback, don't keep it.  Index builds run sequentially on the
    caller ([on_build] needs no slot); with a [pool], driver rows are
    cut into chunks of at least {!Column.chunk_rows} and [yield]/
    [on_probe] follow the slot discipline of {!execute_parallel},
    otherwise everything runs on slot 0.  Precondition: {!columnar_ok}
    holds and no operand table is empty. *)
