(** Materialized-view maintenance.

    A registry of materialized views — each a LERA plan over base
    relations (and earlier materialized views, referenced as [Base]) —
    whose extents are stored as ordinary {!Relation.t}s in the
    {!Database}, so a query against a view is an O(1) base scan through
    the existing join/columnar machinery instead of a re-evaluation.

    Under DML the registry maintains extents {e incrementally}:
    insertions propagate by semi-naive per-occurrence delta substitution
    (for recursive views the delta seeds a continued semi-naive
    fixpoint); deletions use delete-and-rederive — an over-deletion
    fixpoint collects every extent tuple with a derivation through a
    deleted tuple, then surviving support rederives anything
    over-deleted that is still justified.  Steps whose estimated cost
    ({!Eds_lera.Cost}) exceeds a caller-supplied recompute estimate, and
    plans outside the maintainable fragment (non-monotone operators,
    changes reaching a nested fixpoint), fall back to a full recompute
    of the view — correctness never depends on the delta rules applying.

    The registry never publishes to the live database during
    maintenance: {!apply} works on an O(1) snapshot and returns the full
    update set for the caller to install atomically with
    {!Database.replace_many}. *)

module Lera = Eds_lera.Lera
module Schema = Eds_lera.Schema

type view = private {
  name : string;
  plan : Lera.rel;
  schema : Schema.t;
  deps : string list;
      (** relations the plan reads — base tables and upstream views *)
  monotone : bool;  (** no [Diff]/[Nest]: delta propagation is sound *)
}

type stats = {
  mutable maintenance_runs : int;  (** incremental maintenance steps *)
  mutable fallback_recomputes : int;
      (** maintenance steps resolved by full recompute (cost gate or
          unmaintainable plan) *)
  mutable refreshes : int;  (** explicit REFRESH / [.refresh] runs *)
  mutable delta_tuples : int;
      (** tuples added to or removed from extents by maintenance *)
  mutable last_refresh : float;
      (** Unix time of the last full (re)compute, 0. if never *)
}

type t

val create : unit -> t
val stats : t -> stats

val register : t -> name:string -> plan:Lera.rel -> schema:Schema.t -> unit
(** Add (or redefine) a view.  Registration order is maintenance order;
    since a view may only reference previously declared views, it is a
    topological order of the dependency DAG. *)

val unregister : t -> string -> unit
val find : t -> string -> view option
(** Case-insensitive, like the catalog. *)

val is_view : t -> string -> bool
val views : t -> view list

val initialize :
  t ->
  physical:Eval.Physical.t ->
  ?domains:int ->
  ?stats:Eval.stats ->
  Database.t ->
  string ->
  Relation.t
(** Compute and install the initial extent of a registered view
    (CREATE MATERIALIZED VIEW time).  Raises [Invalid_argument] if the
    name is not registered. *)

val refresh :
  t ->
  physical:Eval.Physical.t ->
  ?domains:int ->
  ?stats:Eval.stats ->
  Database.t ->
  string ->
  Relation.t option
(** Force a full recompute of one view's extent and install it.
    [None] if the name is not a registered view. *)

val apply :
  t ->
  physical:Eval.Physical.t ->
  ?domains:int ->
  ?stats:Eval.stats ->
  ?recompute_cost:(Lera.rel -> float) ->
  Database.t ->
  table:string ->
  before:Relation.t ->
  after:Relation.t ->
  (string * Relation.t) list
(** [apply t db ~table ~before ~after] is the update set a DML statement
    replacing [table]'s extent [before] by [after] must install: the
    base change itself plus the maintained extent of every (transitive)
    dependent view, in order.  The live [db] is only snapshotted, never
    written — pass the result to {!Database.replace_many} for a single
    atomic publish.  [recompute_cost] estimates the cost of fully
    recomputing a plan (the session passes its {!Eds_lera.Cost} based
    estimator); a maintenance step estimated above it falls back to
    recompute. *)
