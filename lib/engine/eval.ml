module Value = Eds_value.Value
module Lera = Eds_lera.Lera
module Schema = Eds_lera.Schema
module Obs = Eds_obs.Obs
module Metrics = Eds_obs.Metrics

(* always-on work counters: every [run] batches its stats deltas into
   the registry on the way out (one fetch_and_add per field per query,
   nothing in the per-tuple loops) *)
let m_produced =
  Metrics.counter ~help:"Tuples produced by evaluator operators"
    "eds_eval_tuples_produced_total"

let m_read =
  Metrics.counter ~help:"Base relation tuples scanned" "eds_eval_tuples_read_total"

let m_combos =
  Metrics.counter ~help:"Operand combinations enumerated by filter/join/search"
    "eds_eval_combinations_total"

let m_probes =
  Metrics.counter ~help:"Hash-index lookups" "eds_eval_probes_total"

let m_builds =
  Metrics.counter ~help:"Tuples loaded into hash indexes" "eds_eval_builds_total"

let m_fix_iters =
  Metrics.counter ~help:"Fixpoint iterations" "eds_eval_fix_iterations_total"

let m_fix_hits =
  Metrics.counter ~help:"Closed-fixpoint memo hits" "eds_eval_fix_cache_hits_total"

let m_fix_misses =
  Metrics.counter ~help:"Closed fixpoints actually computed"
    "eds_eval_fix_cache_misses_total"

let m_columnar =
  Metrics.counter ~help:"Operator evaluations that took a columnar fast path"
    "eds_eval_columnar_ops_total"

type stats = {
  mutable combinations : int;
  mutable tuples_read : int;
  mutable tuples_produced : int;
  mutable fix_iterations : int;
  mutable probes : int;
  mutable builds : int;
  mutable fix_cache_hits : int;
  mutable fix_cache_misses : int;
  mutable columnar_ops : int;
      (** operator evaluations that ran vectorized; every other field is
          identical between the boxed and columnar paths by construction *)
}

let fresh_stats () =
  {
    combinations = 0;
    tuples_read = 0;
    tuples_produced = 0;
    fix_iterations = 0;
    probes = 0;
    builds = 0;
    fix_cache_hits = 0;
    fix_cache_misses = 0;
    columnar_ops = 0;
  }

let add_stats acc s =
  acc.combinations <- acc.combinations + s.combinations;
  acc.tuples_read <- acc.tuples_read + s.tuples_read;
  acc.tuples_produced <- acc.tuples_produced + s.tuples_produced;
  acc.fix_iterations <- acc.fix_iterations + s.fix_iterations;
  acc.probes <- acc.probes + s.probes;
  acc.builds <- acc.builds + s.builds;
  acc.fix_cache_hits <- acc.fix_cache_hits + s.fix_cache_hits;
  acc.fix_cache_misses <- acc.fix_cache_misses + s.fix_cache_misses;
  acc.columnar_ops <- acc.columnar_ops + s.columnar_ops

let pp_stats ppf s =
  Fmt.pf ppf
    "combinations=%d read=%d produced=%d fix_iters=%d probes=%d builds=%d \
     fix_cache=%d/%d columnar=%d"
    s.combinations s.tuples_read s.tuples_produced s.fix_iterations s.probes
    s.builds s.fix_cache_hits
    (s.fix_cache_hits + s.fix_cache_misses)
    s.columnar_ops

type fix_mode = Naive | Seminaive

(* The physical evaluation layer (its own namespace: [Naive] would
   otherwise collide with the fix_mode constructor). *)
module Physical = struct
  type t =
    | Naive  (** cartesian enumeration + post-filter — the golden reference *)
    | Indexed  (** hash joins on extracted equi conjuncts, set-backed dedup *)
    | Parallel
        (** partitioned hash joins and chunked scans on a {!Domain_pool};
            identical results and identical counter totals to [Indexed] *)

  let to_string = function
    | Naive -> "naive"
    | Indexed -> "indexed"
    | Parallel -> "parallel"

  let of_string = function
    | "naive" -> Some Naive
    | "indexed" -> Some Indexed
    | "parallel" -> Some Parallel
    | _ -> None
end

exception Eval_error of string

let error fmt = Fmt.kstr (fun s -> raise (Eval_error s)) fmt

(* Cartesian enumeration of operand tuples, counting each complete
   combination.  Zero operands yield a single empty combination: a search
   with no inputs is a one-tuple constant relation (used by the magic
   seed of the Alexander transformation). *)
let cartesian stats (rels : Relation.t list) (yield : Relation.tuple list -> unit) =
  let rec go acc = function
    | [] ->
      Cancel.tick ();
      stats.combinations <- stats.combinations + 1;
      yield (List.rev acc)
    | (r : Relation.t) :: rest ->
      List.iter (fun tup -> go (tup :: acc) rest) r.Relation.tuples
  in
  go [] rels

let is_false (q : Lera.scalar) =
  match q with
  | Lera.Cst (Eds_value.Value.Bool false) -> true
  | _ -> false

let is_true (q : Lera.scalar) =
  match q with
  | Lera.Cst (Eds_value.Value.Bool true) -> true
  | _ -> false

(* [Search] over one operand with a trivially-true predicate and the
   identity projection is the operand itself — the shape every
   [SELECT <all columns> FROM <one relation>] translates to, and in
   particular every full read of a materialized extent *)
let is_identity_proj ps arity =
  List.length ps = arity
  && List.for_all2
       (fun p j -> match p with Lera.Col (1, k) -> k = j | _ -> false)
       ps
       (List.init arity (fun j -> j + 1))

(* Replace the [i]-th occurrence (1-based, left-to-right) of recursion
   variable [n] — written either [Rvar n] or [Base n] — by the result of
   [f i].  Used by semi-naive differentiation. *)
let map_occurrences n f r =
  let counter = ref 0 in
  let rec go r =
    match r with
    | Lera.Rvar m when String.equal m n ->
      incr counter;
      f !counter
    | Lera.Base m when String.equal m n ->
      incr counter;
      f !counter
    | Lera.Base _ | Lera.Rvar _ -> r
    | Lera.Fix (m, body) -> if String.equal m n then r else Lera.Fix (m, go body)
    | Lera.Filter (a, q) -> Lera.Filter (go a, q)
    | Lera.Project (a, ps) -> Lera.Project (go a, ps)
    | Lera.Join (a, b, q) -> Lera.Join (go a, go b, q)
    | Lera.Union rs -> Lera.Union (List.map go rs)
    | Lera.Diff (a, b) -> Lera.Diff (go a, go b)
    | Lera.Inter (a, b) -> Lera.Inter (go a, go b)
    | Lera.Search (rs, q, ps) -> Lera.Search (List.map go rs, q, ps)
    | Lera.Nest (a, g, c) -> Lera.Nest (go a, g, c)
    | Lera.Unnest (a, i) -> Lera.Unnest (go a, i)
  in
  go r

let count_occurrences n r =
  let c = ref 0 in
  ignore
    (map_occurrences n
       (fun _ ->
         incr c;
         Lera.Rvar n)
       r);
  !c

(* does [body] mention name [n] as a Base or Rvar (unbound by a nested fix)? *)
let rec rvar_mentioned n (r : Lera.rel) =
  match r with
  | Lera.Base m | Lera.Rvar m -> String.equal m n
  | Lera.Fix (m, body) -> (not (String.equal m n)) && rvar_mentioned n body
  | Lera.Filter _ | Lera.Project _ | Lera.Join _ | Lera.Union _ | Lera.Diff _
  | Lera.Inter _ | Lera.Search _ | Lera.Nest _ | Lera.Unnest _ ->
    List.exists (rvar_mentioned n) (Lera.inputs r)

(* closed fixpoint subexpressions, memoized within one run: the magic
   fixpoint appears as an operand of several answer arms.  Keyed on the
   term's structural hash (Lera.hash) instead of a linear assoc scan. *)
module Fix_cache = Hashtbl.Make (struct
  type t = Lera.rel

  let equal = Lera.equal
  let hash = Lera.hash
end)

(* Base/Rvar names a term reads from the database: everything not bound
   by an enclosing Fix.  For a closed fixpoint these are exactly the base
   relations its evaluation can touch. *)
let base_deps (r : Lera.rel) : string list =
  let rec go bound acc r =
    match r with
    | Lera.Base n | Lera.Rvar n -> if List.mem n bound then acc else n :: acc
    | Lera.Fix (n, body) -> go (n :: bound) acc body
    | Lera.Filter _ | Lera.Project _ | Lera.Join _ | Lera.Union _ | Lera.Diff _
    | Lera.Inter _ | Lera.Search _ | Lera.Nest _ | Lera.Unnest _ ->
      List.fold_left (go bound) acc (Lera.inputs r)
  in
  List.sort_uniq String.compare (go [] [] r)

(* A closed-fixpoint memo that survives across runs, with per-relation
   invalidation: each entry records the base relations the fixpoint read,
   by {e physical identity}.  The copy-on-write database replaces exactly
   the relation records a write touches, so an entry is stale iff one of
   its dependencies is no longer the same record — DML on unrelated
   relations leaves it valid, no explicit invalidation hooks needed.
   Thread-safe (the query server shares one across connections). *)
module Shared_fix_cache = struct
  type entry = {
    result : Relation.t;
    deps : (string * Relation.t option) list;
        (** dependency name → the relation record it resolved to when the
            fixpoint was computed ([None] = was absent) *)
  }

  type t = {
    tbl : entry Fix_cache.t;
    lock : Mutex.t;
    mutable invalidations : int;
  }

  let create () =
    { tbl = Fix_cache.create 16; lock = Mutex.create (); invalidations = 0 }

  let clear t = Mutex.protect t.lock (fun () -> Fix_cache.reset t.tbl)
  let size t = Mutex.protect t.lock (fun () -> Fix_cache.length t.tbl)
  let invalidations t = t.invalidations

  let deps_valid db deps =
    List.for_all
      (fun (n, ro) ->
        match (ro, Database.relation_opt db n) with
        | Some a, Some b -> a == b
        | None, None -> true
        | Some _, None | None, Some _ -> false)
      deps

  (* a hit must validate against the database the *current* run reads,
     so snapshot readers match entries from their own snapshot state *)
  let find t db r =
    Mutex.protect t.lock (fun () ->
        match Fix_cache.find_opt t.tbl r with
        | Some e ->
          if deps_valid db e.deps then Some e.result
          else begin
            Fix_cache.remove t.tbl r;
            t.invalidations <- t.invalidations + 1;
            None
          end
        | None -> None)

  let store t db r result =
    let deps =
      List.map (fun n -> (n, Database.relation_opt db n)) (base_deps r)
    in
    Mutex.protect t.lock (fun () -> Fix_cache.replace t.tbl r { result; deps })
end

type fix_memo = Per_run of Relation.t Fix_cache.t | Shared of Shared_fix_cache.t

(* -- EXPLAIN ANALYZE collection ------------------------------------------

   When an analysis is attached to the context, every operator
   evaluation records its inclusive wall time, output cardinality and
   stats deltas into an execution-tree node.  After the run the raw tree
   is collapsed: sibling nodes with the same operator label merge (so a
   fixpoint's per-iteration re-evaluations of the same arm fold into one
   line with a loop count, Postgres-style) and each node's work counters
   become {e exclusive} (total minus children), so summing any counter
   over the whole report reproduces the stats total exactly. *)

type node_report = {
  op : string;  (** {!op_label} of the operator *)
  mutable loops : int;  (** times this node was evaluated *)
  mutable rows : int;  (** output tuples, summed over loops *)
  mutable elapsed_s : float;  (** inclusive wall time, summed over loops *)
  mutable combinations : int;  (** exclusive of children *)
  mutable tuples_read : int;
  mutable probes : int;
  mutable builds : int;
  mutable columnar : bool;
      (** this node itself (exclusive of children) took a columnar fast
          path at least once — the [layout=] tag of EXPLAIN ANALYZE *)
  mutable children : node_report list;  (** first-execution order *)
}

type raw_node = {
  rw_label : string;
  rw_rows : int;
  rw_t : float;
  rw_c : int;
  rw_r : int;
  rw_p : int;
  rw_b : int;
  rw_co : int;
  rw_kids : raw_node list;
}

type frame = {
  fr_label : string;
  fr_t0 : float;
  fr_c0 : int;
  fr_r0 : int;
  fr_p0 : int;
  fr_b0 : int;
  fr_co0 : int;
  mutable fr_kids : raw_node list;  (** reversed *)
}

type analysis = {
  mutable an_stack : frame list;
  mutable an_roots : raw_node list;
}

type ctx = {
  db : Database.t;
  mode : fix_mode;
  physical : Physical.t;
  stats : stats;
  rvars : (string * Relation.t) list;
  fix_cache : fix_memo;
  pool : Domain_pool.t option;  (** [Some] exactly under {!Physical.Parallel} *)
  columnar : bool;
      (** try the vectorized fast paths; always [false] under
          {!Physical.Naive} (the paper-shape counter oracle stays boxed) *)
  analyze : analysis option;  (** [Some] only under {!run_analyzed} *)
}

(* leaf scans shorter than this stay sequential under [Parallel]: the
   chunk split is still deterministic (it only depends on the length),
   and small inputs are not worth a fan-out barrier *)
let par_min_chunk = 256

(* Merge slot-private counter cells into the context stats, in slot
   order, and attribute the per-worker share on the trace: one instant
   per active slot carrying a ["tid"] attribute, which the trace export
   lifts into the Chrome trace thread id. *)
let merge_cells ~op ctx (cells : stats array) =
  Array.iteri
    (fun slot c ->
      add_stats ctx.stats c;
      if
        Obs.enabled ()
        && (c.combinations > 0 || c.probes > 0 || c.builds > 0)
      then
        Obs.instant ~cat:"eval"
          ~attrs:
            [
              ("tid", Obs.Json.Int (slot + 1));
              ("combinations", Obs.Json.Int c.combinations);
              ("probes", Obs.Json.Int c.probes);
              ("builds", Obs.Json.Int c.builds);
            ]
          ("par:" ^ op))
    cells

(* cut [n] items into at most [size pool] contiguous chunks of at least
   [par_min_chunk]; 1 means "stay sequential" *)
let chunks_for pool n =
  Domain_pool.chunk_count ~slots:(Domain_pool.size pool)
    ~min_chunk:par_min_chunk n

(* Selection: one [combinations] per input tuple, [q] applied to the
   single-tuple binding.  Under [Parallel] the tuple list is cut into
   contiguous chunks evaluated on the pool, with slot-private counter
   cells and output lists merged in chunk order — same counter totals,
   same tuple multiset, deterministic order. *)
let filter_tuples ctx q (ra : Relation.t) =
  let db = ctx.db in
  let n = Relation.cardinality ra in
  let nchunks = match ctx.pool with Some p -> chunks_for p n | None -> 1 in
  if nchunks = 1 then begin
    let stats = ctx.stats in
    List.filter
      (fun tup ->
        Cancel.tick ();
        stats.combinations <- stats.combinations + 1;
        Expr_eval.eval_bool db ~inputs:[ tup ] q)
      ra.Relation.tuples
  end
  else begin
    let pool = Option.get ctx.pool in
    let arr = Array.of_list ra.Relation.tuples in
    let cells = Array.init nchunks (fun _ -> fresh_stats ()) in
    let outs = Array.make nchunks [] in
    Domain_pool.run pool nchunks (fun c ->
        let lo = c * n / nchunks and hi = (c + 1) * n / nchunks in
        let cell = cells.(c) in
        let acc = ref [] in
        for i = hi - 1 downto lo do
          let tup = arr.(i) in
          cell.combinations <- cell.combinations + 1;
          if Expr_eval.eval_bool db ~inputs:[ tup ] q then acc := tup :: !acc
        done;
        outs.(c) <- !acc);
    merge_cells ~op:"filter" ctx cells;
    List.concat (Array.to_list outs)
  end

(* Projection: a pure map, no counters; chunked the same way. *)
let project_tuples ctx ps (ra : Relation.t) =
  let db = ctx.db in
  let project tup =
    List.map (fun p -> Expr_eval.eval db ~inputs:[ tup ] p) ps
  in
  let n = Relation.cardinality ra in
  let nchunks = match ctx.pool with Some p -> chunks_for p n | None -> 1 in
  if nchunks = 1 then List.map project ra.Relation.tuples
  else begin
    let pool = Option.get ctx.pool in
    let arr = Array.of_list ra.Relation.tuples in
    let outs = Array.make nchunks [] in
    Domain_pool.run pool nchunks (fun c ->
        let lo = c * n / nchunks and hi = (c + 1) * n / nchunks in
        let acc = ref [] in
        for i = hi - 1 downto lo do
          acc := project arr.(i) :: !acc
        done;
        outs.(c) <- !acc);
    List.concat (Array.to_list outs)
  end

(* Semi-naive freshness test: drop tuples already in [total].  Under
   [Parallel] the hash-set index of [total] is forced on the caller's
   domain first (concurrently forcing a lazy from several domains is
   unsafe; reading a forced one is not), then the candidate list is
   filtered in chunks. *)
let fresh_against ctx total new_tuples =
  let keep tup = not (Relation.mem tup total) in
  match ctx.pool with
  | None -> List.filter keep new_tuples
  | Some pool ->
    let n = List.length new_tuples in
    let nchunks = chunks_for pool n in
    if nchunks = 1 then List.filter keep new_tuples
    else begin
      Relation.force_index total;
      let arr = Array.of_list new_tuples in
      let outs = Array.make nchunks [] in
      Domain_pool.run pool nchunks (fun c ->
          let lo = c * n / nchunks and hi = (c + 1) * n / nchunks in
          let acc = ref [] in
          for i = hi - 1 downto lo do
            if keep arr.(i) then acc := arr.(i) :: !acc
          done;
          outs.(c) <- !acc);
      List.concat (Array.to_list outs)
    end

(* Vectorized selection: when the input has a columnar shadow and the
   qualification compiles to a row predicate, filter by row number over
   the typed arrays and rebuild the output as an order-preserving subset
   (no re-sort).  Counter parity with {!filter_tuples}: one
   [combinations] per input row, in both the sequential and the chunked
   parallel shape.  Falls back to the boxed path otherwise. *)
let columnar_filter ctx q (ra : Relation.t) =
  let boxed () = Relation.make ra.Relation.schema (filter_tuples ctx q ra) in
  if not ctx.columnar then boxed ()
  else
    match Relation.columns ra with
    | None -> boxed ()
    | Some tbl -> (
      match Column.Pred.compile ~adts:(Database.adts ctx.db) [| tbl |] q with
      | Column.Pred.Opaque -> boxed ()
      | Column.Pred.Always ->
        (* constant-true qualification: every row qualifies, and the
           input is already in canonical form *)
        let stats = ctx.stats in
        stats.combinations <- stats.combinations + tbl.Column.nrows;
        stats.columnar_ops <- stats.columnar_ops + 1;
        ra
      | Column.Pred.Rows p ->
        let stats = ctx.stats in
        let n = tbl.Column.nrows in
        let nchunks =
          match ctx.pool with
          | Some pl ->
            Domain_pool.chunk_count ~slots:(Domain_pool.size pl)
              ~min_chunk:Column.chunk_rows n
          | None -> 1
        in
        let out =
          if nchunks = 1 then begin
            let rows = [| 0 |] in
            Relation.filteri
              (fun i _ ->
                Cancel.tick ();
                stats.combinations <- stats.combinations + 1;
                rows.(0) <- i;
                p rows)
              ra
          end
          else begin
            let pool = Option.get ctx.pool in
            let keep = Bytes.make n '\000' in
            let cells = Array.init nchunks (fun _ -> fresh_stats ()) in
            Domain_pool.run pool nchunks (fun c ->
                let lo = c * n / nchunks and hi = (c + 1) * n / nchunks in
                let cell = cells.(c) in
                let rows = [| 0 |] in
                for i = lo to hi - 1 do
                  cell.combinations <- cell.combinations + 1;
                  rows.(0) <- i;
                  if p rows then Bytes.unsafe_set keep i '\001'
                done);
            merge_cells ~op:"filter" ctx cells;
            Relation.filteri (fun i _ -> Bytes.unsafe_get keep i = '\001') ra
          end
        in
        stats.columnar_ops <- stats.columnar_ops + 1;
        out)

(* Vectorized projection for pure column-pick lists ([Col (1, j)] only):
   materialize the picked cells straight off the typed arrays.  Like
   {!project_tuples} this counts nothing; any non-column item (or an
   out-of-range pick, whose boxed evaluation raises) falls back. *)
let columnar_project ctx ps schema (ra : Relation.t) =
  let boxed () = Relation.make schema (project_tuples ctx ps ra) in
  if not ctx.columnar then boxed ()
  else
    match Relation.columns ra with
    | None -> boxed ()
    | Some tbl ->
      let width = Array.length tbl.Column.cols in
      let pure_pick =
        List.for_all
          (function Lera.Col (1, j) -> j >= 1 && j <= width | _ -> false)
          ps
      in
      if not pure_pick then boxed ()
      else begin
        let js =
          Array.of_list
            (List.map
               (function Lera.Col (_, j) -> j - 1 | _ -> assert false)
               ps)
        in
        let out = ref [] in
        for row = tbl.Column.nrows - 1 downto 0 do
          out :=
            Array.to_list
              (Array.map (fun j -> Column.value_at tbl ~row ~col:j) js)
            :: !out
        done;
        ctx.stats.columnar_ops <- ctx.stats.columnar_ops + 1;
        Relation.make schema !out
      end

(* Vectorized whole-row membership, shared by Diff/Inter and the
   semi-naive freshness test: index [rb] on all of its columns, probe
   each row of [ra] allocation-free, keep the (non-)members as an
   order-preserving subset.  Requires flavor-identical shadows on both
   sides (within equal flavors, cell equality coincides with
   [Value.compare]-equality); [None] means "use the boxed path" — which
   also preserves the boxed arity-mismatch error, since differing
   arities never pass [flavors_equal].  Like the boxed set operations,
   counts nothing. *)
let columnar_members ctx ~keep_found (ra : Relation.t) (rb : Relation.t) =
  if (not ctx.columnar) || Relation.is_empty ra || Relation.is_empty rb then
    None
  else
    match (Relation.columns ra, Relation.columns rb) with
    | Some ta, Some tb when Column.flavors_equal ta tb ->
      let width = Array.length tb.Column.cols in
      let idx = Column.Index.build tb ~key_cols:(Array.init width Fun.id) in
      let key = ta.Column.cols in
      let rows = Array.make width 0 in
      let mem i =
        Array.fill rows 0 width i;
        Column.Index.first idx ~key ~rows >= 0
      in
      let out =
        Relation.filteri
          (fun i _ -> if keep_found then mem i else not (mem i))
          ra
      in
      ctx.stats.columnar_ops <- ctx.stats.columnar_ops + 1;
      Some out
    | _ -> None

(* trace-span label of one operator node *)
let op_label : Lera.rel -> string = function
  | Lera.Base n -> "base:" ^ n
  | Lera.Rvar n -> "rvar:" ^ n
  | Lera.Filter _ -> "filter"
  | Lera.Project _ -> "project"
  | Lera.Join _ -> "join"
  | Lera.Union _ -> "union"
  | Lera.Diff _ -> "diff"
  | Lera.Inter _ -> "inter"
  | Lera.Search _ -> "search"
  | Lera.Fix (n, _) -> "fix:" ^ n
  | Lera.Nest _ -> "nest"
  | Lera.Unnest _ -> "unnest"

(* batch this run's stats deltas into the always-on registry — recorded
   on every exit path so timed-out work still shows up *)
let record_deltas (s : stats) ~c0 ~r0 ~pr0 ~b0 ~f0 ~fh0 ~fm0 ~p0 ~co0 =
  Metrics.Counter.add m_combos (s.combinations - c0);
  Metrics.Counter.add m_read (s.tuples_read - r0);
  Metrics.Counter.add m_produced (s.tuples_produced - p0);
  Metrics.Counter.add m_probes (s.probes - pr0);
  Metrics.Counter.add m_builds (s.builds - b0);
  Metrics.Counter.add m_fix_iters (s.fix_iterations - f0);
  Metrics.Counter.add m_fix_hits (s.fix_cache_hits - fh0);
  Metrics.Counter.add m_fix_misses (s.fix_cache_misses - fm0);
  Metrics.Counter.add m_columnar (s.columnar_ops - co0)

let rec run_ctx ?(mode = Seminaive) ?(physical = Physical.Indexed) ?stats
    ?domains ?(rvars = []) ?columnar ?fix_cache ?analyze db (r : Lera.rel) :
    Relation.t =
  let stats = match stats with Some s -> s | None -> fresh_stats () in
  let fix_memo =
    match fix_cache with
    | Some shared -> Shared shared
    | None -> Per_run (Fix_cache.create 8)
  in
  let pool =
    match physical with
    | Physical.Parallel ->
      let d =
        match domains with Some d -> d | None -> Domain_pool.default_size ()
      in
      Some (Domain_pool.get d)
    | Physical.Naive | Physical.Indexed -> None
  in
  let columnar =
    (match columnar with Some c -> c | None -> Column.enabled ())
    && physical <> Physical.Naive
  in
  let c0 = stats.combinations
  and r0 = stats.tuples_read
  and pr0 = stats.probes
  and b0 = stats.builds
  and f0 = stats.fix_iterations
  and fh0 = stats.fix_cache_hits
  and fm0 = stats.fix_cache_misses
  and p0 = stats.tuples_produced
  and co0 = stats.columnar_ops in
  Fun.protect
    ~finally:(fun () ->
      record_deltas stats ~c0 ~r0 ~pr0 ~b0 ~f0 ~fh0 ~fm0 ~p0 ~co0)
    (fun () ->
      eval
        { db; mode; physical; stats; rvars; fix_cache = fix_memo; pool;
          columnar; analyze }
        r)

(* Every operator evaluation becomes a span when tracing is on, carrying
   its output cardinality and the combinations it enumerated — the
   intermediate-result sizes of a plan are then readable straight off
   the trace.  With tracing off (and no analysis attached) this is one
   load and one branch around [eval_node]. *)
and eval ctx (r : Lera.rel) : Relation.t =
  match ctx.analyze with
  | Some a -> eval_analyzed ctx a r
  | None -> eval_traced ctx r

and eval_analyzed ctx a (r : Lera.rel) : Relation.t =
  let s = ctx.stats in
  let fr =
    {
      fr_label = op_label r;
      fr_t0 = Obs.now ();
      fr_c0 = s.combinations;
      fr_r0 = s.tuples_read;
      fr_p0 = s.probes;
      fr_b0 = s.builds;
      fr_co0 = s.columnar_ops;
      fr_kids = [];
    }
  in
  a.an_stack <- fr :: a.an_stack;
  let finish rows =
    (match a.an_stack with _ :: rest -> a.an_stack <- rest | [] -> ());
    let raw =
      {
        rw_label = fr.fr_label;
        rw_rows = rows;
        rw_t = Obs.now () -. fr.fr_t0;
        rw_c = s.combinations - fr.fr_c0;
        rw_r = s.tuples_read - fr.fr_r0;
        rw_p = s.probes - fr.fr_p0;
        rw_b = s.builds - fr.fr_b0;
        rw_co = s.columnar_ops - fr.fr_co0;
        rw_kids = List.rev fr.fr_kids;
      }
    in
    match a.an_stack with
    | parent :: _ -> parent.fr_kids <- raw :: parent.fr_kids
    | [] -> a.an_roots <- raw :: a.an_roots
  in
  match eval_node ctx r with
  | rel ->
    finish (Relation.cardinality rel);
    rel
  | exception e ->
    finish 0;
    raise e

and eval_traced ctx (r : Lera.rel) : Relation.t =
  if not (Obs.enabled ()) then eval_node ctx r
  else begin
    let name = "eval:" ^ op_label r in
    let combos0 = ctx.stats.combinations in
    let read0 = ctx.stats.tuples_read in
    let probes0 = ctx.stats.probes in
    let builds0 = ctx.stats.builds in
    Obs.span_begin ~cat:"eval" name;
    match eval_node ctx r with
    | rel ->
      Obs.span_end ~cat:"eval"
        ~attrs:
          [
            ("rows_out", Obs.Json.Int (Relation.cardinality rel));
            ("combinations", Obs.Json.Int (ctx.stats.combinations - combos0));
            ("tuples_read", Obs.Json.Int (ctx.stats.tuples_read - read0));
            ("probes", Obs.Json.Int (ctx.stats.probes - probes0));
            ("builds", Obs.Json.Int (ctx.stats.builds - builds0));
          ]
        name;
      rel
    | exception e ->
      Obs.span_end ~cat:"eval" name;
      raise e
  end

(* Enumerate the operand combinations satisfying qualification [q],
   counting one [combinations] per qualified candidate.  The naive layer
   enumerates the full cartesian product and tests [q] on each; the
   indexed layer extracts the equi-join conjuncts, enumerates only the
   hash-join matches and tests just the residual — on the same operand
   ordering semantics, so both yield the same combination set. *)
and joined ctx (inputs : Relation.t list) q (yield : Relation.tuple list -> unit) =
  let stats = ctx.stats in
  match ctx.physical with
  | Physical.Naive ->
    cartesian stats inputs (fun combo ->
        if Expr_eval.eval_bool ctx.db ~inputs:combo q then yield combo)
  | Physical.Indexed | Physical.Parallel ->
    let plan = Join_plan.analyze ~operands:(List.length inputs) q in
    if not (Join_plan.has_equis plan) then
      cartesian stats inputs (fun combo ->
          if Expr_eval.eval_bool ctx.db ~inputs:combo q then yield combo)
    else begin
      let residual = Join_plan.residual plan in
      Join_plan.execute
        ~on_build:(fun () -> stats.builds <- stats.builds + 1)
        ~on_probe:(fun () -> stats.probes <- stats.probes + 1)
        plan (Array.of_list inputs)
        (fun combo ->
          Cancel.tick ();
          stats.combinations <- stats.combinations + 1;
          if Expr_eval.eval_bool ctx.db ~inputs:combo residual then yield combo)
    end

(* columnar shadows of every operand, or [None] on the first fallback
   (forces each relation's lazy shadow on the calling domain) *)
and all_columns inputs =
  let rec go acc = function
    | [] -> Some (Array.of_list (List.rev acc))
    | (r : Relation.t) :: rest -> (
      match Relation.columns r with
      | Some t -> go (t :: acc) rest
      | None -> None)
  in
  go [] inputs

(* The vectorized join driver: when every operand has a columnar shadow,
   the plan's equi edges are flavor-compatible and the residual compiles
   to a row predicate, enumeration runs through
   {!Join_plan.execute_columnar} — combinations stay row-number cursors
   and boxed tuples are materialized only for combinations surviving the
   residual.  Counter totals (combinations, probes, builds) match the
   boxed executors by construction; [None] means "use the boxed path". *)
and columnar_join : 'a. ctx -> Relation.t list -> Lera.scalar ->
    (Relation.tuple list -> 'a) -> 'a list option =
  fun ctx inputs q f ->
  if (not ctx.columnar) || inputs = [] then None
  else begin
    let plan = Join_plan.analyze ~operands:(List.length inputs) q in
    if not (Join_plan.has_equis plan) then None
    else
      match all_columns inputs with
      | None -> None
      | Some tables ->
        if not (Join_plan.columnar_ok plan tables) then None
        else begin
          match
            Column.Pred.compile ~adts:(Database.adts ctx.db) tables
              (Join_plan.residual plan)
          with
          | Column.Pred.Opaque -> None
          | pred ->
            let test =
              match pred with
              | Column.Pred.Always -> fun _ -> true
              | Column.Pred.Rows p -> p
              | Column.Pred.Opaque -> assert false
            in
            let ntab = Array.length tables in
            let materialize (rows : int array) =
              List.init ntab (fun k -> Column.tuple_at tables.(k) rows.(k))
            in
            let stats = ctx.stats in
            let result =
              match ctx.pool with
              | None ->
                let out = ref [] in
                Join_plan.execute_columnar
                  ~on_build:(fun () -> stats.builds <- stats.builds + 1)
                  ~on_probe:(fun _ -> stats.probes <- stats.probes + 1)
                  plan tables
                  (fun _ rows ->
                    Cancel.tick ();
                    stats.combinations <- stats.combinations + 1;
                    if test rows then out := f (materialize rows) :: !out);
                !out
              | Some pool ->
                let slots = Domain_pool.size pool in
                let cells = Array.init slots (fun _ -> fresh_stats ()) in
                let outs = Array.make slots [] in
                Join_plan.execute_columnar ~pool
                  ~on_build:(fun () -> stats.builds <- stats.builds + 1)
                  ~on_probe:(fun s ->
                    let c = cells.(s) in
                    c.probes <- c.probes + 1)
                  plan tables
                  (fun s rows ->
                    let c = cells.(s) in
                    c.combinations <- c.combinations + 1;
                    if test rows then
                      outs.(s) <- f (materialize rows) :: outs.(s));
                merge_cells ~op:"join" ctx cells;
                List.concat (Array.to_list outs)
            in
            stats.columnar_ops <- stats.columnar_ops + 1;
            Some result
        end
  end

(* Collect [f combo] over every qualified combination.  Under [Parallel]
   (with an equi conjunct to drive the hash plan) this fans out through
   {!Join_plan.execute_parallel}: counters accumulate into slot-private
   cells and results into slot-private lists, merged in slot order on
   the caller's domain, so totals match the sequential layers exactly
   and no shared state is touched from the workers.  [f] runs on worker
   domains and must stay read-only. *)
and collect_joined : 'a. ctx -> Relation.t list -> Lera.scalar ->
    (Relation.tuple list -> 'a) -> 'a list =
  fun ctx inputs q f ->
  match columnar_join ctx inputs q f with
  | Some out -> out
  | None -> (
  match ctx.pool with
  | None ->
    let out = ref [] in
    joined ctx inputs q (fun combo -> out := f combo :: !out);
    !out
  | Some pool ->
    let stats = ctx.stats in
    let plan = Join_plan.analyze ~operands:(List.length inputs) q in
    if not (Join_plan.has_equis plan) then begin
      let out = ref [] in
      cartesian stats inputs (fun combo ->
          if Expr_eval.eval_bool ctx.db ~inputs:combo q then
            out := f combo :: !out);
      !out
    end
    else begin
      let residual = Join_plan.residual plan in
      let slots = Domain_pool.size pool in
      let cells = Array.init slots (fun _ -> fresh_stats ()) in
      let outs = Array.make slots [] in
      let db = ctx.db in
      Join_plan.execute_parallel ~pool
        ~on_build:(fun s ->
          let c = cells.(s) in
          c.builds <- c.builds + 1)
        ~on_probe:(fun s ->
          let c = cells.(s) in
          c.probes <- c.probes + 1)
        plan (Array.of_list inputs)
        (fun s combo ->
          let c = cells.(s) in
          c.combinations <- c.combinations + 1;
          if Expr_eval.eval_bool db ~inputs:combo residual then
            outs.(s) <- f combo :: outs.(s));
      merge_cells ~op:"join" ctx cells;
      List.concat (Array.to_list outs)
    end)

and eval_node ctx (r : Lera.rel) : Relation.t =
  let { db; stats; rvars; _ } = ctx in
  match r with
  | Lera.Base n -> (
    match List.assoc_opt n rvars with
    | Some rel -> rel
    | None -> (
      match Database.relation_opt db n with
      | Some rel ->
        stats.tuples_read <- stats.tuples_read + Relation.cardinality rel;
        rel
      | None -> error "unknown relation %s" n))
  | Lera.Rvar n -> (
    match List.assoc_opt n rvars with
    | Some rel -> rel
    | None -> error "unbound recursion variable %s" n)
  | Lera.Filter (_, q) when is_false q -> Relation.empty (rel_schema ctx r)
  | Lera.Filter (a, q) ->
    let ra = eval ctx a in
    produce stats (columnar_filter ctx q ra)
  | Lera.Project (a, ps) ->
    let ra = eval ctx a in
    let schema = rel_schema ctx r in
    produce stats (columnar_project ctx ps schema ra)
  | Lera.Join (_, _, q) when is_false q -> Relation.empty (rel_schema ctx r)
  | Lera.Join (a, b, q) ->
    let ra = eval ctx a and rb = eval ctx b in
    let schema = ra.Relation.schema @ rb.Relation.schema in
    let out =
      collect_joined ctx [ ra; rb ] q (fun combo ->
          match combo with [ ta; tb ] -> ta @ tb | _ -> assert false)
    in
    produce stats (Relation.make schema out)
  | Lera.Union rs -> (
    match List.map (eval ctx) rs with
    | [] -> error "empty union"
    | first :: rest -> produce stats (List.fold_left Relation.union first rest))
  | Lera.Diff (a, b) ->
    let ra = eval ctx a and rb = eval ctx b in
    let out =
      match columnar_members ctx ~keep_found:false ra rb with
      | Some d -> d
      | None -> Relation.diff ra rb
    in
    produce stats out
  | Lera.Inter (a, b) ->
    let ra = eval ctx a and rb = eval ctx b in
    let out =
      match columnar_members ctx ~keep_found:true ra rb with
      | Some d -> d
      | None -> Relation.inter ra rb
    in
    produce stats out
  | Lera.Search (_, q, _) when is_false q -> Relation.empty (rel_schema ctx r)
  | Lera.Search (rs, q, ps) -> (
    let inputs = List.map (eval ctx) rs in
    let schema = rel_schema ctx r in
    match inputs with
    | [ ra ] when is_true q && is_identity_proj ps (Schema.arity ra.Relation.schema) ->
      (* identity search: share the operand, retagged to the node's
         column names *)
      produce stats (Relation.with_schema schema ra)
    | _ ->
      let out =
        collect_joined ctx inputs q (fun combo ->
            List.map (fun p -> Expr_eval.eval db ~inputs:combo p) ps)
      in
      produce stats (Relation.make schema out))
  | Lera.Fix (n, body) ->
    (* memoize closed fixpoints whose base relations are not shadowed by
       an enclosing recursion variable *)
    let closed =
      Lera.free_rvars r = []
      && not
           (List.exists
              (fun (rv, _) -> rvar_mentioned rv body)
              ctx.rvars)
    in
    if not closed then produce stats (fixpoint ctx n body)
    else begin
      let cached =
        match ctx.fix_cache with
        | Per_run tbl -> Fix_cache.find_opt tbl r
        | Shared c -> Shared_fix_cache.find c db r
      in
      match cached with
      | Some cached ->
        stats.fix_cache_hits <- stats.fix_cache_hits + 1;
        if Obs.enabled () then
          Obs.counter "eval.fix_cache.hits" (float_of_int stats.fix_cache_hits);
        cached
      | None ->
        stats.fix_cache_misses <- stats.fix_cache_misses + 1;
        if Obs.enabled () then
          Obs.counter "eval.fix_cache.misses"
            (float_of_int stats.fix_cache_misses);
        let result = produce stats (fixpoint ctx n body) in
        (match ctx.fix_cache with
        | Per_run tbl -> Fix_cache.replace tbl r result
        | Shared c -> Shared_fix_cache.store c db r result);
        result
    end
  | Lera.Nest (a, group, nested) ->
    let ra = eval ctx a in
    let schema = rel_schema ctx r in
    produce stats (Relation.make schema (nest_tuples ra group nested))
  | Lera.Unnest (a, i) ->
    let ra = eval ctx a in
    let schema = rel_schema ctx r in
    let explode tup =
      let arr = Array.of_list tup in
      if i < 1 || i > Array.length arr then
        error "unnest: column %d of a width-%d tuple" i (Array.length arr)
      else begin
        let v = arr.(i - 1) in
        if not (Value.is_collection v) then
          error "unnest: column %d holds %a" i Value.pp v
        else
          List.map
            (fun e ->
              let a' = Array.copy arr in
              a'.(i - 1) <- e;
              Array.to_list a')
            (Value.elements v)
      end
    in
    produce stats (Relation.make schema (List.concat_map explode ra.Relation.tuples))

and produce stats rel =
  stats.tuples_produced <- stats.tuples_produced + Relation.cardinality rel;
  rel

and rel_schema ctx r =
  let rvar_schemas = List.map (fun (n, rel) -> (n, rel.Relation.schema)) ctx.rvars in
  try Schema.of_rel ~rvars:rvar_schemas (Database.schema_env ctx.db) r
  with Schema.Schema_error msg -> error "schema: %s" msg

(* Hash-grouped, array-backed nest: one tuple→array conversion per input
   tuple (column picks are then O(1) instead of List.nth), groups keyed
   by the grouping columns in a tuple hashtable. *)
and nest_tuples (ra : Relation.t) group nested =
  let groups = Relation.Tuple_tbl.create 64 in
  List.iter
    (fun tup ->
      let arr = Array.of_list tup in
      let k = List.map (fun j -> arr.(j - 1)) group in
      let payload =
        match nested with
        | [ j ] -> arr.(j - 1)
        | js -> Value.Tuple (List.map (fun j -> (Fmt.str "a%d" j, arr.(j - 1))) js)
      in
      match Relation.Tuple_tbl.find_opt groups k with
      | Some items -> items := payload :: !items
      | None -> Relation.Tuple_tbl.replace groups k (ref [ payload ]))
    ra.Relation.tuples;
  Relation.Tuple_tbl.fold
    (fun k items acc -> (k @ [ Value.set !items ]) :: acc)
    groups []

and fixpoint ctx n body =
  let schema = rel_schema ctx (Lera.Fix (n, body)) in
  match ctx.mode with
  | Naive -> naive_fixpoint ctx n body schema
  | Seminaive -> seminaive_fixpoint ctx n body schema

and naive_fixpoint ctx n body schema =
  let rec iterate current =
    Cancel.tick ();
    ctx.stats.fix_iterations <- ctx.stats.fix_iterations + 1;
    let next = eval { ctx with rvars = (n, current) :: ctx.rvars } body in
    if Relation.equal next current then current else iterate next
  in
  iterate (Relation.empty schema)

(* Differential evaluation: arms without the recursion variable seed the
   result; each cycle re-evaluates every recursive arm once per occurrence
   of the variable, substituting the delta for that occurrence and the
   accumulated relation for the others.  The accumulated [total] carries
   a hash-set view (Relation.index), so the freshness test per produced
   tuple is O(1); under the Indexed physical layer the per-arm delta
   substitution additionally goes through the hash-join machinery, so an
   iteration touches only tuples joinable with the delta. *)
and seminaive_fixpoint ctx n body schema =
  let arms = match body with Lera.Union rs -> rs | r -> [ r ] in
  let is_recursive arm = count_occurrences n arm > 0 in
  let base_arms, rec_arms = List.partition (fun a -> not (is_recursive a)) arms in
  let eval_with bindings arm = eval { ctx with rvars = bindings @ ctx.rvars } arm in
  let base =
    match base_arms with
    | [] -> Relation.empty schema
    | arms ->
      List.fold_left
        (fun acc arm -> Relation.union acc (eval_with [] arm))
        (Relation.empty schema) arms
  in
  let rec iterate total delta =
    if Relation.is_empty delta then total
    else begin
      Cancel.tick ();
      ctx.stats.fix_iterations <- ctx.stats.fix_iterations + 1;
      if Obs.enabled () then
        Obs.instant ~cat:"eval"
          ~attrs:
            [
              ("delta", Obs.Json.Int (Relation.cardinality delta));
              ("total", Obs.Json.Int (Relation.cardinality total));
            ]
          ("fix-iteration:" ^ n);
      (* fold the per-occurrence variants into one candidate relation
         (union dedups exactly what the sort_uniq of [Relation.make]
         used to), then subtract [total] — columnar whole-row diff when
         both sides qualify, the chunked hash-set freshness test
         otherwise; neither counts anything, and both produce the same
         set *)
      let candidates =
        List.fold_left
          (fun acc arm ->
            let occurrences = count_occurrences n arm in
            List.fold_left
              (fun acc which ->
                let variant =
                  map_occurrences n
                    (fun i -> if i = which then Lera.Rvar "__delta" else Lera.Rvar n)
                    arm
                in
                Relation.union acc
                  (eval_with [ (n, total); ("__delta", delta) ] variant))
              acc
              (List.init occurrences (fun i -> i + 1)))
          (Relation.empty schema) rec_arms
      in
      let delta' =
        match columnar_members ctx ~keep_found:false candidates total with
        | Some d -> d
        | None ->
          Relation.make schema
            (fresh_against ctx total candidates.Relation.tuples)
      in
      iterate (Relation.union total delta') delta'
    end
  in
  if rec_arms = [] then base else iterate base base

let run ?mode ?physical ?stats ?domains ?rvars ?columnar ?fix_cache db r =
  run_ctx ?mode ?physical ?stats ?domains ?rvars ?columnar ?fix_cache db r

(* -- report collapse ------------------------------------------------------ *)

let rec merge_node (dst : node_report) (src : node_report) =
  dst.loops <- dst.loops + src.loops;
  dst.rows <- dst.rows + src.rows;
  dst.elapsed_s <- dst.elapsed_s +. src.elapsed_s;
  dst.combinations <- dst.combinations + src.combinations;
  dst.tuples_read <- dst.tuples_read + src.tuples_read;
  dst.probes <- dst.probes + src.probes;
  dst.builds <- dst.builds + src.builds;
  dst.columnar <- dst.columnar || src.columnar;
  dst.children <- merge_children dst.children src.children

and merge_children dst src =
  List.fold_left
    (fun acc s ->
      match List.find_opt (fun d -> d.op = s.op) acc with
      | Some d ->
        merge_node d s;
        acc
      | None -> acc @ [ s ])
    dst src

let rec collapse (raws : raw_node list) : node_report list =
  List.fold_left
    (fun acc rw ->
      let node = node_of_raw rw in
      match List.find_opt (fun d -> d.op = node.op) acc with
      | Some d ->
        merge_node d node;
        acc
      | None -> acc @ [ node ])
    [] raws

and node_of_raw rw =
  let kc, kr, kp, kb, kco =
    List.fold_left
      (fun (c, r, p, b, co) k ->
        (c + k.rw_c, r + k.rw_r, p + k.rw_p, b + k.rw_b, co + k.rw_co))
      (0, 0, 0, 0, 0) rw.rw_kids
  in
  {
    op = rw.rw_label;
    loops = 1;
    rows = rw.rw_rows;
    elapsed_s = rw.rw_t;
    combinations = max 0 (rw.rw_c - kc);
    tuples_read = max 0 (rw.rw_r - kr);
    probes = max 0 (rw.rw_p - kp);
    builds = max 0 (rw.rw_b - kb);
    columnar = rw.rw_co - kco > 0;
    children = collapse rw.rw_kids;
  }

let run_analyzed ?mode ?physical ?stats ?domains ?rvars ?columnar ?fix_cache db
    r =
  let a = { an_stack = []; an_roots = [] } in
  let rel =
    run_ctx ?mode ?physical ?stats ?domains ?rvars ?columnar ?fix_cache
      ~analyze:a db r
  in
  let report =
    match collapse (List.rev a.an_roots) with
    | [ n ] -> n
    | ns ->
      (* a single top-level eval yields a single root; synthesize one
         defensively for the empty/multiple cases *)
      {
        op = "plan";
        loops = 1;
        rows = Relation.cardinality rel;
        elapsed_s = List.fold_left (fun t n -> t +. n.elapsed_s) 0. ns;
        combinations = 0;
        tuples_read = 0;
        probes = 0;
        builds = 0;
        columnar = false;
        children = ns;
      }
  in
  (rel, report)

let rec fold_report f acc n = List.fold_left (fold_report f) (f acc n) n.children

let pp_report ppf root =
  let rec go indent n =
    Fmt.pf ppf "%s%s  (rows=%d" (String.make indent ' ') n.op n.rows;
    if n.loops > 1 then Fmt.pf ppf " loops=%d" n.loops;
    Fmt.pf ppf " time=%.3fms" (n.elapsed_s *. 1000.);
    if n.combinations > 0 then Fmt.pf ppf " combos=%d" n.combinations;
    if n.probes > 0 then Fmt.pf ppf " probes=%d" n.probes;
    if n.builds > 0 then Fmt.pf ppf " builds=%d" n.builds;
    if n.tuples_read > 0 then Fmt.pf ppf " read=%d" n.tuples_read;
    Fmt.pf ppf " layout=%s" (if n.columnar then "columnar" else "boxed");
    Fmt.pf ppf ")@\n";
    List.iter (go (indent + 2)) n.children
  in
  go 0 root
