(** Cooperative per-query cancellation.

    The query server runs many statements concurrently against one
    shared session; a runaway query (a huge cartesian product, a
    diverging fixpoint) must be killable {e without} killing the
    connection or the process.  OCaml threads cannot be interrupted from
    outside, so cancellation is cooperative: the evaluator's hot loops
    call {!tick}, which raises {!Timeout} once the calling thread's
    wall-clock deadline (installed by {!with_timeout}) has passed.

    Deadlines are per-{e thread}: concurrent queries on different
    connection threads each carry their own budget.  When no deadline is
    active anywhere in the process, {!tick} is a single atomic load —
    standalone (REPL / bench / test) evaluation pays nothing.

    Under the parallel physical layer only the caller's slot of the
    domain pool ticks (worker domains never see the deadline), so a
    parallel query times out at chunk granularity rather than
    mid-chunk. *)

exception Timeout of float
(** Carries the exceeded budget in seconds. *)

val with_timeout : float -> (unit -> 'a) -> 'a
(** [with_timeout budget f] runs [f] with a deadline of [budget] seconds
    from now installed for the calling thread, uninstalling it on the
    way out through a single finalizer that runs on {e every} exit path
    — normal return, {!Timeout}, or any other exception.  A non-positive
    [budget] times out on the first {!tick}.  Nesting on one thread
    keeps the earliest deadline. *)

val clear : unit -> unit
(** Unconditionally drop the calling thread's deadline, if any.  A
    defensive backstop for threads that run many statements back to
    back (the query server's connection loop): a deadline that leaked
    out of its {!with_timeout} frame would make the thread's next
    statement die instantly with a stale {!Timeout}. *)

val tick : unit -> unit
(** Raise {!Timeout} if the calling thread's deadline has passed; no-op
    (one atomic load) when no deadline is active process-wide.  Called
    by the evaluator once per enumerated combination, per filtered
    tuple and per fixpoint iteration. *)

val active : unit -> bool
(** Whether any thread currently has a deadline installed. *)
