(** Typed columnar view of a relation (the vectorized execution layer).

    A relation whose tuples are made exclusively of [Int], [Oid], [Str],
    [Enum] and [Real] scalars — one constructor per column — can be
    shadowed by a {!table}: one typed array per column, strings and enum
    labels replaced by their {!Eds_value.Intern} ids.  The hot loops of the Indexed and Parallel
    layers (hash-join build/probe, filter, semi-naive freshness) then
    run over plain [int]/[float] arrays with no boxed [Value.t] in the
    inner loop; boxed tuples are materialized only at result-construction
    and Obs boundaries.

    The boxed sorted tuple list of {!Relation} stays the canonical
    identity — a table is always {e derived} from it, never the other
    way around, so set semantics, rendering and storage are untouched.

    Fallback rules (all-or-nothing per relation): any [Null], [Bool],
    [Tuple], collection value, or a column mixing constructors (including
    [Enum] cells of different enum types, or an [Enum]/[Str] mix) makes
    {!of_tuples} return [None] and execution falls back to the boxed
    paths.  An [Enum] column keeps its type name in the column header
    ({!Enums}), so rendering-faithful values are rebuilt on
    materialization while the hot loops compare interned label ids —
    exactly [Value.compare]'s semantics, which equates [Enum (_, l)]
    with [Str l] by label. *)

module Value = Eds_value.Value

type col =
  | Ints of int array
  | Oids of int array
  | Ids of int array  (** interned [Str] labels, see {!Eds_value.Intern} *)
  | Enums of string * int array
      (** enum type name + interned labels; flavor {!F_id}, compares and
          hashes against [Ids] by id (enum/string cross-equality) *)
  | Floats of float array

type flavor = F_int | F_oid | F_id | F_float

type table = {
  nrows : int;
  cols : col array;  (** all of length [nrows] *)
}

val chunk_rows : int
(** Row granularity of chunked (vectorized) loops: 1024. *)

val enabled : unit -> bool
(** Default for the evaluator's [~columnar] switch.  Initialized from
    the [EDS_COLUMNAR] environment variable ([0] disables; anything
    else, or unset, enables). *)

val set_enabled : bool -> unit

val flavor : col -> flavor

val flavors_equal : table -> table -> bool
(** Same width and column-wise same flavor — the precondition for
    whole-row columnar membership (diff/inter/freshness): within equal
    flavors, cell equality coincides with [Value.compare = 0], while
    across flavors boxed cross-equalities (Int/Real) could apply. *)

val of_tuples : arity:int -> int -> Value.t list list -> table option
(** [of_tuples ~arity nrows tuples] builds the columnar shadow of a
    width-[arity] tuple list, or [None] under the fallback rules above
    (also for [nrows = 0] or [arity = 0]).  Row order is preserved.
    Interns every string cell. *)

val value_at : table -> row:int -> col:int -> Value.t
(** Materialize one cell ([Str] cells share the interned string). *)

val tuple_at : table -> int -> Value.t list
(** Materialize one boxed row. *)

val cell_equal : col -> int -> col -> int -> bool
(** [cell_equal ca i cb j]: [Value.compare]-equality of two cells,
    [false] across flavors (callers gate with {!flavors_equal} or the
    join planner's flavor check first).  Float cells follow
    [Float.compare]: NaN equals NaN, [-0. = 0.]. *)

(** Flat chained hash index over selected key columns of one table.
    Build is sequential; probes are lock-free reads, safe from any
    domain once built.  A probe key is given as parallel arrays
    [key]/[rows]: cell [e] of the key is [key.(e)] at row [rows.(e)], so
    a join key spanning several operands probes without materializing
    anything.  The cursor protocol is allocation-free:

    {[
      let r = ref (Index.first idx ~key ~rows) in
      while !r >= 0 do
        ...consume matching row !r of the indexed table...;
        r := Index.next idx ~key ~rows !r
      done
    ]}

    Probe cells must have the same flavor as the corresponding build
    key column (gate with {!flavors_equal} or a per-edge flavor check):
    across flavors, cell equality is [false] while the boxed paths
    apply [Value.compare]'s Int/Real cross-equality. *)
module Index : sig
  type t

  val build : ?on_build:(unit -> unit) -> table -> key_cols:int array -> t
  (** Index rows [0 .. nrows-1] on the given columns; [on_build] fires
      once per row inserted (the build-side work counter). *)

  val first : t -> key:col array -> rows:int array -> int
  (** First indexed row whose build-key cells equal the probe cells
      (same order as [key_cols] at build), or [-1]. *)

  val next : t -> key:col array -> rows:int array -> int -> int
  (** Next match after a row returned by {!first}/[next], or [-1];
      [key]/[rows] must be unchanged since {!first}. *)
end

(** Compiler from LERA scalar predicates to allocation-free row
    predicates over columnar operands. *)
module Pred : sig
  type t =
    | Always  (** constant true — no per-row work at all *)
    | Rows of (int array -> bool)
        (** [rows.(k)] is the current row of operand [k+1] *)
    | Opaque
        (** not compilable (or could raise, or a comparison operator was
            overridden in the ADT registry) — use the boxed evaluator *)

  val compile : adts:Eds_value.Adt.registry -> table array -> Eds_lera.Lera.scalar -> t
  (** Compiles conjunctions/disjunctions/negations of the six builtin
      comparison operators over [Col]/[Cst] sides.  Semantics replicate
      the boxed path bit-for-bit ([test (Value.compare a b)] with
      [to_bool] at the top); every shape whose boxed evaluation could
      raise, touch a collection broadcast, or hit a user-overridden
      operator compiles to [Opaque] so the fallback raises or evaluates
      identically. *)
end
