(** Instrumented LERA plan evaluator.

    This is the execution substrate used to {e measure} the benefit of
    each rewriting class: every operator reports the work it performs
    into a {!stats} record (combinations enumerated by joins/searches,
    base tuples scanned, fixpoint iterations, hash-index builds and
    probes), so benchmarks compare the work of a query before and after
    rewriting rather than wall time alone.

    Two physical layers share that logical evaluator
    ({!Physical.t}): the {e naive} layer applies qualifications to
    complete operand combinations of the full cartesian product — kept
    as the golden reference, and as the counter source for the
    paper-shape experiments, because the rewriter's merging/permutation
    rules are precisely what reduces {e that} enumerated space — and the
    {e indexed} layer (the default) extracts equi-join conjuncts and
    enumerates only hash-join matches.  Both produce
    {!Relation.equal} results on every plan. *)

module Lera = Eds_lera.Lera

type stats = {
  mutable combinations : int;
      (** operand combinations enumerated by filter/join/search; under
          {!Physical.Indexed} only combinations surviving every equi
          conjunct are counted, so indexed ≤ naive on any plan *)
  mutable tuples_read : int;  (** base relation tuples scanned *)
  mutable tuples_produced : int;
  mutable fix_iterations : int;
  mutable probes : int;
      (** hash-index lookups (Indexed/Parallel layers only) *)
  mutable builds : int;
      (** tuples loaded into hash indexes (Indexed/Parallel only) *)
  mutable fix_cache_hits : int;
      (** closed-fixpoint memo hits — each one skips a whole fixpoint *)
  mutable fix_cache_misses : int;  (** closed fixpoints actually computed *)
  mutable columnar_ops : int;
      (** operator evaluations that took a vectorized (columnar) fast
          path.  Every {e other} field is identical between the boxed
          and columnar paths by construction, so this is pure
          provenance: it never participates in cross-layer counter
          comparisons. *)
}

val fresh_stats : unit -> stats
val add_stats : stats -> stats -> unit
val pp_stats : Format.formatter -> stats -> unit

(** Fixpoint evaluation strategy (paper §3.2). *)
type fix_mode =
  | Naive  (** recompute the whole body each cycle *)
  | Seminaive  (** differential: recursive arms join against the delta *)

(** Physical evaluation layer.  A submodule so that [Naive] does not
    collide with the {!fix_mode} constructor of the same name. *)
module Physical : sig
  type t =
    | Naive
        (** cartesian enumeration + post-filter — the golden reference *)
    | Indexed
        (** hash joins on extracted equi conjuncts ({!Join_plan}),
            set-backed relations; produces identical results *)
    | Parallel
        (** [Indexed] fanned out on a {!Domain_pool}: partitioned hash
            builds, chunked pipelined probes, chunked selections /
            projections / semi-naive freshness tests.  Produces
            {!Relation.equal} results {e and} identical {!stats} totals
            to [Indexed] at any domain count. *)

  val to_string : t -> string
  val of_string : string -> t option
end

exception Eval_error of string

(** {1 Term utilities} *)

val map_occurrences : string -> (int -> Lera.rel) -> Lera.rel -> Lera.rel
(** [map_occurrences n f r] replaces the [i]-th occurrence (1-based,
    left-to-right) of name [n] — written either [Rvar n] or [Base n],
    not descending into a [Fix] that rebinds [n] — by [f i].  The
    substitution step behind semi-naive differentiation, also used by
    {!Materializer} to build per-occurrence delta variants. *)

val count_occurrences : string -> Lera.rel -> int

val base_deps : Lera.rel -> string list
(** Names the term reads from the database ([Base]/[Rvar] occurrences
    not bound by an enclosing [Fix]), sorted and deduplicated. *)

(** {1 Cross-run fixpoint memoization} *)

(** A closed-fixpoint memo that survives across runs, with
    {e per-relation} invalidation: each entry records the base relations
    the fixpoint read, by physical identity.  The copy-on-write database
    replaces exactly the relation records a write touches, so a lookup
    validates an entry in O(deps) pointer comparisons — DML invalidates
    only the fixpoints that actually read the written relation, instead
    of flushing everything.  Thread-safe. *)
module Shared_fix_cache : sig
  type t

  val create : unit -> t
  val clear : t -> unit
  val size : t -> int

  val invalidations : t -> int
  (** Stale entries evicted on lookup since creation. *)
end

val run :
  ?mode:fix_mode ->
  ?physical:Physical.t ->
  ?stats:stats ->
  ?domains:int ->
  ?rvars:(string * Relation.t) list ->
  ?columnar:bool ->
  ?fix_cache:Shared_fix_cache.t ->
  Database.t ->
  Lera.rel ->
  Relation.t
(** Evaluate an expression.  [rvars] supplies bindings for free recursion
    variables (used internally and by tests).  Default mode is
    [Seminaive]; default physical layer is [Indexed].  [domains] sizes
    the worker pool used by {!Physical.Parallel} (default
    {!Domain_pool.default_size}; pools are process-wide and cached, see
    {!Domain_pool.get}) and is ignored by the other layers.  [columnar]
    enables the vectorized fast paths of the Indexed/Parallel layers
    (join, filter, project, diff/inter, semi-naive freshness) for
    operators whose operands have a columnar shadow ({!Column}); it
    defaults to {!Column.enabled} and is forced off under
    {!Physical.Naive}, whose boxed enumeration is the counter oracle.
    Results and all {!stats} fields except [columnar_ops] are identical
    either way.  [fix_cache] attaches a {!Shared_fix_cache} so closed
    fixpoints memoized by a previous run can be reused (validated
    per-relation against this run's database); without it every run gets
    a fresh private memo, preserving exact counter parity across layers.
    Raises {!Eval_error} (or {!Expr_eval.Eval_error}) on ill-formed
    plans.

    Every run additionally batches its {!stats} deltas into the
    always-on {!Eds_obs.Metrics} registry (one atomic add per field per
    run, on every exit path). *)

(** {1 EXPLAIN ANALYZE} *)

type node_report = {
  op : string;  (** operator label ([base:NAME], [join], [fix:NAME], …) *)
  mutable loops : int;  (** times this node was evaluated (fixpoint iterations) *)
  mutable rows : int;  (** output tuples, summed over loops *)
  mutable elapsed_s : float;  (** inclusive wall time, summed over loops *)
  mutable combinations : int;  (** exclusive of children *)
  mutable tuples_read : int;  (** exclusive of children *)
  mutable probes : int;  (** exclusive of children *)
  mutable builds : int;  (** exclusive of children *)
  mutable columnar : bool;
      (** this node itself (exclusive of children) took a columnar fast
          path at least once — the [layout=] tag of EXPLAIN ANALYZE *)
  mutable children : node_report list;  (** first-execution order *)
}

val run_analyzed :
  ?mode:fix_mode ->
  ?physical:Physical.t ->
  ?stats:stats ->
  ?domains:int ->
  ?rvars:(string * Relation.t) list ->
  ?columnar:bool ->
  ?fix_cache:Shared_fix_cache.t ->
  Database.t ->
  Lera.rel ->
  Relation.t * node_report
(** Like {!run}, but also collect a per-operator execution report:
    sibling evaluations of the same operator merge into one node with a
    loop count (so a fixpoint's per-iteration arm re-evaluations fold
    together), and work counters are {e exclusive} of children — summing
    any counter over the whole report reproduces the {!stats} delta of
    the run exactly. *)

val fold_report : ('a -> node_report -> 'a) -> 'a -> node_report -> 'a
(** Pre-order fold over a report tree. *)

val pp_report : Format.formatter -> node_report -> unit
(** Indented tree, one line per operator:
    [op  (rows=… loops=… time=…ms combos=… probes=… builds=… read=…
    layout=columnar|boxed)] (zero-valued counters omitted). *)
