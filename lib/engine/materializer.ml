module Lera = Eds_lera.Lera
module Schema = Eds_lera.Schema
module Cost = Eds_lera.Cost
module Obs = Eds_obs.Obs
module Metrics = Eds_obs.Metrics

(* always-on maintenance counters, shared by every registry in the
   process (the bench and the daemon read them back through METRICS) *)
let m_runs =
  Metrics.counter ~help:"Incremental view maintenance steps"
    "eds_view_maintenance_runs_total"

let m_fallbacks =
  Metrics.counter
    ~help:"Maintenance steps that fell back to a full recompute"
    "eds_view_maintenance_fallback_total"

let m_refreshes =
  Metrics.counter ~help:"Explicit REFRESH / .refresh recomputations"
    "eds_view_refresh_total"

let m_delta =
  Metrics.counter ~help:"Tuples added to or removed from materialized extents"
    "eds_view_maintenance_delta_tuples_total"

type view = {
  name : string;
  plan : Lera.rel;
      (** the view body over base relations (and previously declared
          materialized views, referenced as [Base]) *)
  schema : Schema.t;
  deps : string list;  (** relations the plan reads, transitively flat *)
  monotone : bool;  (** no Diff/Nest anywhere: delta rules are sound *)
}

type stats = {
  mutable maintenance_runs : int;
  mutable fallback_recomputes : int;
  mutable refreshes : int;
  mutable delta_tuples : int;
  mutable last_refresh : float;  (** Unix time of last full (re)compute *)
}

type t = {
  mutable views : view list;  (** registration order = topological order *)
  stats : stats;
}

let create () =
  {
    views = [];
    stats =
      {
        maintenance_runs = 0;
        fallback_recomputes = 0;
        refreshes = 0;
        delta_tuples = 0;
        last_refresh = 0.;
      };
  }

let stats t = t.stats
let views t = t.views

let find t name =
  let wanted = String.lowercase_ascii name in
  List.find_opt (fun v -> String.lowercase_ascii v.name = wanted) t.views

let is_view t name = Option.is_some (find t name)

let rec monotone (r : Lera.rel) =
  match r with
  | Lera.Diff _ | Lera.Nest _ -> false
  | Lera.Base _ | Lera.Rvar _ -> true
  | Lera.Fix (_, body) -> monotone body
  | Lera.Filter _ | Lera.Project _ | Lera.Join _ | Lera.Union _ | Lera.Inter _
  | Lera.Search _ | Lera.Unnest _ ->
    List.for_all monotone (Lera.inputs r)

let register t ~name ~plan ~schema =
  let deps =
    List.filter (fun d -> d <> name) (Eval.base_deps plan)
  in
  let v = { name; plan; schema; deps; monotone = monotone plan } in
  t.views <- List.filter (fun w -> w.name <> name) t.views @ [ v ]

let unregister t name = t.views <- List.filter (fun v -> v.name <> name) t.views

(* -- evaluation helpers -------------------------------------------------- *)

(* the reserved recursion-variable name carrying a delta through a
   per-occurrence variant; never visible to user plans *)
let delta_name = "__mv_delta"

let eval_with ~physical ~domains ~stats ~rvars db rel =
  Eval.run ~physical ?domains ?stats ~rvars db rel

(* per-occurrence delta variants of [rel] w.r.t. name [d]: variant [i]
   replaces the [i]-th occurrence of [d] by the delta binding and leaves
   every other occurrence reading its current binding *)
let variants d rel =
  List.init (Eval.count_occurrences d rel) (fun i ->
      Eval.map_occurrences d
        (fun j -> if j = i + 1 then Lera.Rvar delta_name else Lera.Base d)
        rel)

(* top-level union arms: delta propagation works arm by arm, so an arm
   with no occurrence of the changed relation is never evaluated at all
   (its value at unchanged bindings is already inside the extent) *)
let top_arms = function Lera.Union rs -> rs | r -> [ r ]

(* union of [eval] over the per-occurrence variants of every changed
   dependency with a non-empty delta *)
let delta_candidates ~eval ~schema changed rel =
  List.fold_left
    (fun acc (d, delta) ->
      if Relation.is_empty delta then acc
      else
        List.fold_left
          (fun acc variant -> Relation.union acc (eval delta variant))
          acc (variants d rel))
    (Relation.empty schema) changed

(* a nested (non-top-level) Fix whose body mentions one of [names] makes
   per-occurrence substitution unsound — delta tuples would have to
   re-drive the inner fixpoint as a whole *)
let nested_fix_mentions plan names =
  let mentions sub =
    let deps = Eval.base_deps sub in
    List.exists (fun n -> List.mem n deps) names
  in
  let rec go ~top r =
    match r with
    | Lera.Fix (_, body) ->
      if (not top) && mentions r then true else go ~top:false body
    | Lera.Base _ | Lera.Rvar _ -> false
    | Lera.Filter _ | Lera.Project _ | Lera.Join _ | Lera.Union _
    | Lera.Diff _ | Lera.Inter _ | Lera.Search _ | Lera.Nest _
    | Lera.Unnest _ ->
      List.exists (go ~top:false) (Lera.inputs r)
  in
  go ~top:true plan

(* -- cost policy --------------------------------------------------------- *)

(* Estimated combinations for one maintenance step: each per-arm variant
   with the delta occurrence spelled as a [Base] of known (delta)
   cardinality, the view's recursion variable as a [Base] of extent
   cardinality, costed by the same model {!Session.estimate} uses for
   the recompute side.  Costing is per top-level union arm — exactly the
   granularity the evaluation uses — so an arm untouched by the delta
   contributes nothing, instead of charging the full join it would cost
   if it were re-evaluated (which it never is). *)
let maintenance_cost db ~extent_card changed rel =
  let fix_names =
    let rec go acc = function
      | Lera.Fix (n, body) -> go (n :: acc) body
      | r -> List.fold_left go acc (Lera.inputs r)
    in
    go [] rel
  in
  let card name =
    if name = delta_name then None (* bound per call below *)
    else if List.mem name fix_names then Some extent_card
    else Option.map Relation.cardinality (Database.relation_opt db name)
  in
  let env = Database.schema_env db in
  let ground r =
    (* spell every free recursion variable as a Base so the estimator can
       attach a cardinality to it *)
    List.fold_left
      (fun r n -> Eval.map_occurrences n (fun _ -> Lera.Base n) r)
      r
      (fix_names @ Eval.base_deps rel)
  in
  List.fold_left
    (fun acc (d, (delta : Relation.t)) ->
      if Relation.is_empty delta then acc
      else
        let card name =
          if name = delta_name then Some (Relation.cardinality delta)
          else card name
        in
        List.fold_left
          (fun acc arm ->
            List.fold_left
              (fun acc variant ->
                let variant =
                  Eval.map_occurrences delta_name
                    (fun _ -> Lera.Base delta_name)
                    (ground variant)
                in
                acc
                +. (Cost.estimate ~relation_cardinality:card env variant)
                     .Cost.cost)
              acc (variants d arm))
          acc (top_arms rel))
    0. changed

(* -- full recompute ------------------------------------------------------ *)

let recompute ~physical ?domains ?stats db (v : view) =
  Obs.span ~cat:"materialize" ("recompute:" ^ v.name) (fun () ->
      Eval.run ~physical ?domains ?stats db v.plan)

let refresh t ~physical ?domains ?stats db name =
  match find t name with
  | None -> None
  | Some v ->
    let extent = recompute ~physical ?domains ?stats db v in
    Database.add_relation db v.name extent;
    t.stats.refreshes <- t.stats.refreshes + 1;
    t.stats.last_refresh <- Unix.gettimeofday ();
    Metrics.Counter.incr m_refreshes;
    Some extent

(* initial extent at CREATE MATERIALIZED VIEW time *)
let initialize t ~physical ?domains ?stats db name =
  match find t name with
  | None -> invalid_arg ("Materializer.initialize: unknown view " ^ name)
  | Some v ->
    let extent = recompute ~physical ?domains ?stats db v in
    Database.add_relation db v.name extent;
    t.stats.last_refresh <- Unix.gettimeofday ();
    extent

(* -- incremental maintenance -------------------------------------------- *)

(* One view's new extent given the accumulated change set.

   [scratch] already holds the *new* value of every changed relation
   (base change applied, upstream extents maintained); [old_bindings]
   shadow them back to their old values for the over-deletion phase.

   Insertions propagate by per-occurrence delta substitution
   (semi-naive); deletions by delete-and-rederive: an over-deletion
   fixpoint collects every extent tuple with a derivation through a
   deleted tuple, survivors keep their independent support, and a
   rederivation pass (consequences of the survivors plus the delta
   insertions, iterated semi-naively) restores anything over-deleted
   that still has support.  Non-monotone plans (Diff/Nest), changes
   reaching a nested fixpoint, and steps costed above the recompute
   estimate all fall back to a full recompute. *)
let maintain_view t ~physical ?domains ?stats ~recompute_cost scratch ~changed
    ~old_bindings (v : view) (old_extent : Relation.t) : Relation.t =
  let changed_here =
    List.filter (fun (d, _, _) -> List.mem d v.deps) changed
  in
  let plus = List.map (fun (d, p, _) -> (d, p)) changed_here in
  let minus = List.map (fun (d, _, m) -> (d, m)) changed_here in
  let any_minus = List.exists (fun (_, m) -> not (Relation.is_empty m)) minus in
  let any_plus = List.exists (fun (_, p) -> not (Relation.is_empty p)) plus in
  let fallback () =
    t.stats.fallback_recomputes <- t.stats.fallback_recomputes + 1;
    Metrics.Counter.incr m_fallbacks;
    recompute ~physical ?domains ?stats scratch v
  in
  if not (any_plus || any_minus) then old_extent
  else if
    (not v.monotone)
    || nested_fix_mentions v.plan (List.map (fun (d, _, _) -> d) changed_here)
  then fallback ()
  else begin
    let schema = v.schema in
    let eval_new extra rel =
      eval_with ~physical ~domains ~stats ~rvars:extra scratch rel
    in
    let eval_old extra rel =
      eval_with ~physical ~domains ~stats
        ~rvars:(extra @ old_bindings)
        scratch rel
    in
    match v.plan with
    | Lera.Fix (n, body) ->
      let arms = match body with Lera.Union rs -> rs | r -> [ r ] in
      let rec_arms =
        List.filter (fun a -> Eval.count_occurrences n a > 0) arms
      in
      let base_arms =
        List.filter (fun a -> Eval.count_occurrences n a = 0) arms
      in
      (* cost gate: maintenance estimated against recompute *)
      let est_changed =
        List.map
          (fun (d, p, m) -> (d, if Relation.is_empty m then p else Relation.union p m))
          changed_here
      in
      if
        maintenance_cost scratch
          ~extent_card:(Relation.cardinality old_extent)
          est_changed body
        > recompute_cost v.plan
      then fallback ()
      else begin
        (* continue the semi-naive iteration from (total, delta) over the
           new database *)
        let rec iterate total delta =
          if Relation.is_empty delta then total
          else
            let candidates =
              List.fold_left
                (fun acc arm ->
                  Relation.union acc
                    (delta_candidates
                       ~eval:(fun d variant ->
                         eval_new [ (delta_name, d); (n, total) ] variant)
                       ~schema
                       [ (n, delta) ]
                       arm))
                (Relation.empty schema) rec_arms
            in
            let fresh = Relation.diff candidates total in
            iterate (Relation.union total fresh) fresh
        in
        let survivors =
          if not any_minus then old_extent
          else begin
            (* over-deletion fixpoint, evaluated in the old state *)
            let immediate =
              List.fold_left
                (fun acc arm ->
                  Relation.union acc
                    (delta_candidates
                       ~eval:(fun d variant ->
                         eval_old [ (delta_name, d); (n, old_extent) ] variant)
                       ~schema minus arm))
                (Relation.empty schema) arms
            in
            let rec overdelete deleted frontier =
              if Relation.is_empty frontier then deleted
              else
                let next =
                  List.fold_left
                    (fun acc arm ->
                      Relation.union acc
                        (delta_candidates
                           ~eval:(fun d variant ->
                             eval_old
                               [ (delta_name, d); (n, old_extent) ]
                               variant)
                           ~schema
                           [ (n, frontier) ]
                           arm))
                    (Relation.empty schema) rec_arms
                in
                let fresh =
                  Relation.diff (Relation.inter next old_extent) deleted
                in
                overdelete (Relation.union deleted fresh) fresh
            in
            let deleted =
              overdelete
                (Relation.inter immediate old_extent)
                (Relation.inter immediate old_extent)
            in
            Relation.diff old_extent deleted
          end
        in
        (* seed of the rederivation + insertion pass, over the new state.
           Insert-only steps skip the full base-arm evaluation: every
           base-arm tuple not involving an inserted dependency tuple is
           already in the extent, and combinations involving one are
           produced by the per-occurrence delta variants below. *)
        let base_new =
          if not any_minus then Relation.empty schema
          else
            List.fold_left
              (fun acc arm -> Relation.union acc (eval_new [] arm))
              (Relation.empty schema) base_arms
        in
        let rederived =
          if not any_minus then Relation.empty schema
          else
            (* consequences of the survivors: anything they still derive *)
            List.fold_left
              (fun acc arm ->
                Relation.union acc (eval_new [ (n, survivors) ] arm))
              (Relation.empty schema) rec_arms
        in
        let inserted =
          if not any_plus then Relation.empty schema
          else
            List.fold_left
              (fun acc arm ->
                Relation.union acc
                  (delta_candidates
                     ~eval:(fun d variant ->
                       eval_new [ (delta_name, d); (n, survivors) ] variant)
                     ~schema plus arm))
              (Relation.empty schema) arms
        in
        let seed =
          Relation.diff
            (Relation.union (Relation.union base_new rederived) inserted)
            survivors
        in
        iterate (Relation.union survivors seed) seed
      end
    | plan ->
      (* fix-free w.r.t. the change (nested fixpoints, if any, do not
         mention it): deltas substitute directly *)
      if
        maintenance_cost scratch
          ~extent_card:(Relation.cardinality old_extent)
          (List.map
             (fun (d, p, m) ->
               (d, if Relation.is_empty m then p else Relation.union p m))
             changed_here)
          plan
        > recompute_cost plan
      then fallback ()
      else begin
        let per_arm ~eval changed =
          List.fold_left
            (fun acc arm ->
              Relation.union acc (delta_candidates ~eval ~schema changed arm))
            (Relation.empty schema) (top_arms plan)
        in
        let after_deletes =
          if not any_minus then old_extent
          else begin
            let overdeleted =
              Relation.inter
                (per_arm
                   ~eval:(fun d variant ->
                     eval_old [ (delta_name, d) ] variant)
                   minus)
                old_extent
            in
            if Relation.is_empty overdeleted then old_extent
            else
              (* a tuple in the over-deletion set may still have support
                 from surviving combinations; rederive the candidates
                 against the new state *)
              let rederived =
                Relation.inter
                  (eval_with ~physical ~domains ~stats ~rvars:[] scratch plan)
                  overdeleted
              in
              Relation.union (Relation.diff old_extent overdeleted) rederived
          end
        in
        if not any_plus then after_deletes
        else
          Relation.union after_deletes
            (per_arm
               ~eval:(fun d variant -> eval_new [ (delta_name, d) ] variant)
               plus)
      end
  end

(* -- the DML entry point ------------------------------------------------- *)

let apply t ~physical ?domains ?stats ?recompute_cost db ~table ~before ~after :
    (string * Relation.t) list =
  let plus = Relation.diff after before in
  let minus = Relation.diff before after in
  let base_update = [ (table, after) ] in
  let dependents = List.exists (fun v -> List.mem table v.deps) t.views in
  if (Relation.is_empty plus && Relation.is_empty minus) || not dependents then
    base_update
  else begin
    let recompute_cost =
      match recompute_cost with
      | Some f -> f
      | None ->
        fun rel ->
          let card name =
            Option.map Relation.cardinality (Database.relation_opt db name)
          in
          (Cost.estimate ~relation_cardinality:card (Database.schema_env db) rel)
            .Cost.cost
    in
    (* scratch state: the live database is untouched until the caller
       publishes every update at once *)
    let scratch = Database.snapshot db in
    Database.add_relation scratch table after;
    let changed = ref [ (table, plus, minus) ] in
    let old_bindings = ref [ (table, before) ] in
    let updates = ref base_update in
    List.iter
      (fun v ->
        if List.exists (fun (d, _, _) -> List.mem d v.deps) !changed then begin
          match Database.relation_opt scratch v.name with
          | None -> () (* extent missing: left to a later refresh *)
          | Some old_extent ->
            let new_extent =
              Obs.span ~cat:"materialize" ("maintain:" ^ v.name) (fun () ->
                  maintain_view t ~physical ?domains ?stats ~recompute_cost
                    scratch ~changed:!changed ~old_bindings:!old_bindings v
                    old_extent)
            in
            t.stats.maintenance_runs <- t.stats.maintenance_runs + 1;
            Metrics.Counter.incr m_runs;
            if not (Relation.equal new_extent old_extent) then begin
              let vplus = Relation.diff new_extent old_extent in
              let vminus = Relation.diff old_extent new_extent in
              let moved =
                Relation.cardinality vplus + Relation.cardinality vminus
              in
              t.stats.delta_tuples <- t.stats.delta_tuples + moved;
              Metrics.Counter.add m_delta moved;
              Database.add_relation scratch v.name new_extent;
              changed := (v.name, vplus, vminus) :: !changed;
              old_bindings := (v.name, old_extent) :: !old_bindings;
              updates := (v.name, new_extent) :: !updates
            end
        end)
      t.views;
    List.rev !updates
  end
