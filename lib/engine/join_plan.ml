(* Equi-join extraction and hash-join execution for the indexed physical
   evaluator (Eval.Physical.Indexed).

   [analyze] splits the qualification of a Search/Join into equi-join
   conjuncts — [i.j = k.l] with i <> k, both operands in range — and a
   residual conjunction of everything else.  [execute] then enumerates
   exactly the operand combinations satisfying every equi conjunct:
   operands are taken greedily by cardinality (preferring ones connected
   to the already-bound set), each new operand is loaded into a hash
   index on its join columns (one [on_build] per tuple) and the
   accumulated partial combinations probe it (one [on_probe] per
   partial).  The caller applies the residual to the yielded
   combinations — which arrive in original operand order — so the naive
   cartesian enumerator and this path agree bit-for-bit on results. *)

module Lera = Eds_lera.Lera

type equi = {
  left : int * int;  (** (operand, column), 1-based, the lower operand *)
  right : int * int;  (** the higher operand *)
}

type t = {
  operands : int;
  equis : equi list;
  residual : Lera.scalar;
}

let analyze ~operands q =
  let is_equi = function
    | Lera.Call ("=", [ Lera.Col (i, j); Lera.Col (k, l) ])
      when i <> k && i >= 1 && i <= operands && k >= 1 && k <= operands ->
      Some (if i < k then { left = (i, j); right = (k, l) } else { left = (k, l); right = (i, j) })
    | _ -> None
  in
  let equis, residuals =
    List.fold_left
      (fun (es, rs) c ->
        match is_equi c with
        | Some e -> (e :: es, rs)
        | None -> (es, c :: rs))
      ([], [])
      (Lera.conjuncts q)
  in
  { operands; equis = List.rev equis; residual = Lera.conj (List.rev residuals) }

let residual p = p.residual
let equi_count p = List.length p.equis
let has_equis p = p.equis <> []

(* edges between operand [k] (0-based here) and the bound set: for each,
   the bound-side (operand, column) supplying the probe key and the
   column of [k] indexed by the build *)
let edges_to_bound p bound k =
  List.filter_map
    (fun { left = li, lj; right = ri, rj } ->
      if li - 1 = k && bound.(ri - 1) then Some ((ri - 1, rj), lj)
      else if ri - 1 = k && bound.(li - 1) then Some ((li - 1, lj), rj)
      else None)
    p.equis

let connected p bound k =
  List.exists
    (fun { left = li, _; right = ri, _ } ->
      (li - 1 = k && bound.(ri - 1)) || (ri - 1 = k && bound.(li - 1)))
    p.equis

(* greedy operand order: smallest relation first, then repeatedly the
   smallest operand having an equi edge into the bound set (falling back
   to the smallest unbound one — a cartesian step — when the join graph
   is disconnected) *)
let greedy_order p (cards : int array) =
  let n = Array.length cards in
  let bound = Array.make n false in
  let pick pred =
    let best = ref (-1) in
    for k = n - 1 downto 0 do
      if (not bound.(k)) && pred k && (!best < 0 || cards.(k) <= cards.(!best)) then
        best := k
    done;
    !best
  in
  let order = ref [] in
  for _ = 1 to n do
    let k =
      match pick (fun k -> connected p bound k) with
      | -1 -> pick (fun _ -> true)
      | k -> k
    in
    bound.(k) <- true;
    order := k :: !order
  done;
  List.rev !order

let execute ~on_build ~on_probe p (rels : Relation.t array)
    (yield : Relation.tuple list -> unit) =
  let n = Array.length rels in
  if n = 0 then yield [] (* zero operands: the one empty combination *)
  else if Array.exists Relation.is_empty rels then ()
  else begin
    let cards = Array.map Relation.cardinality rels in
    let order = greedy_order p cards in
    let bound = Array.make n false in
    let combos = ref [] in
    List.iteri
      (fun step k ->
        if step = 0 then
          combos :=
            List.map
              (fun tup ->
                let c = Array.make n [] in
                c.(k) <- tup;
                c)
              rels.(k).Relation.tuples
        else begin
          let edges = edges_to_bound p bound k in
          match edges with
          | [] ->
            (* cartesian step: no equi edge reaches [k] yet *)
            combos :=
              List.concat_map
                (fun combo ->
                  List.map
                    (fun tup ->
                      let c = Array.copy combo in
                      c.(k) <- tup;
                      c)
                    rels.(k).Relation.tuples)
                !combos
          | _ -> (
            let build_cols = List.map snd edges in
            let key_of_tuple tup = List.map (fun j -> List.nth tup (j - 1)) build_cols in
            let probe_key combo =
              List.map (fun ((b, j), _) -> List.nth combo.(b) (j - 1)) edges
            in
            match rels.(k).Relation.tuples with
            | [ only ] ->
              (* single-tuple operand: comparing against it directly is the
                 same work as the eventual residual test, so no index is
                 built and neither counter fires — this also keeps total
                 probes within the naive combination count on degenerate
                 all-singleton joins *)
              let key = key_of_tuple only in
              combos :=
                List.filter_map
                  (fun combo ->
                    if Relation.compare_tuples (probe_key combo) key = 0 then begin
                      let c = Array.copy combo in
                      c.(k) <- only;
                      Some c
                    end
                    else None)
                  !combos
            | tuples ->
              let index = Relation.Tuple_tbl.create (max 16 cards.(k)) in
              List.iter
                (fun tup ->
                  on_build ();
                  let key = key_of_tuple tup in
                  let prev =
                    match Relation.Tuple_tbl.find_opt index key with
                    | Some ts -> ts
                    | None -> []
                  in
                  Relation.Tuple_tbl.replace index key (tup :: prev))
                tuples;
              combos :=
                List.concat_map
                  (fun combo ->
                    on_probe ();
                    match Relation.Tuple_tbl.find_opt index (probe_key combo) with
                    | None -> []
                    | Some matches ->
                      List.rev_map
                        (fun tup ->
                          let c = Array.copy combo in
                          c.(k) <- tup;
                          c)
                        matches)
                  !combos)
        end;
        bound.(k) <- true)
      order;
    List.iter (fun combo -> yield (Array.to_list combo)) !combos
  end
