(* Equi-join extraction and hash-join execution for the indexed physical
   evaluator (Eval.Physical.Indexed).

   [analyze] splits the qualification of a Search/Join into equi-join
   conjuncts — [i.j = k.l] with i <> k, both operands in range — and a
   residual conjunction of everything else.  [execute] then enumerates
   exactly the operand combinations satisfying every equi conjunct:
   operands are taken greedily by cardinality (preferring ones connected
   to the already-bound set), each new operand is loaded into a hash
   index on its join columns (one [on_build] per tuple) and the
   accumulated partial combinations probe it (one [on_probe] per
   partial).  The caller applies the residual to the yielded
   combinations — which arrive in original operand order — so the naive
   cartesian enumerator and this path agree bit-for-bit on results. *)

module Lera = Eds_lera.Lera
module Value = Eds_value.Value

type equi = {
  left : int * int;  (** (operand, column), 1-based, the lower operand *)
  right : int * int;  (** the higher operand *)
}

type t = {
  operands : int;
  equis : equi list;
  residual : Lera.scalar;
}

let analyze ~operands q =
  let is_equi = function
    | Lera.Call ("=", [ Lera.Col (i, j); Lera.Col (k, l) ])
      when i <> k && i >= 1 && i <= operands && k >= 1 && k <= operands ->
      Some (if i < k then { left = (i, j); right = (k, l) } else { left = (k, l); right = (i, j) })
    | _ -> None
  in
  let equis, residuals =
    List.fold_left
      (fun (es, rs) c ->
        match is_equi c with
        | Some e -> (e :: es, rs)
        | None -> (es, c :: rs))
      ([], [])
      (Lera.conjuncts q)
  in
  { operands; equis = List.rev equis; residual = Lera.conj (List.rev residuals) }

let residual p = p.residual
let equi_count p = List.length p.equis
let has_equis p = p.equis <> []

(* edges between operand [k] (0-based here) and the bound set: for each,
   the bound-side (operand, column) supplying the probe key and the
   column of [k] indexed by the build *)
let edges_to_bound p bound k =
  List.filter_map
    (fun { left = li, lj; right = ri, rj } ->
      if li - 1 = k && bound.(ri - 1) then Some ((ri - 1, rj), lj)
      else if ri - 1 = k && bound.(li - 1) then Some ((li - 1, lj), rj)
      else None)
    p.equis

let connected p bound k =
  List.exists
    (fun { left = li, _; right = ri, _ } ->
      (li - 1 = k && bound.(ri - 1)) || (ri - 1 = k && bound.(li - 1)))
    p.equis

(* greedy operand order: smallest relation first, then repeatedly the
   smallest operand having an equi edge into the bound set (falling back
   to the smallest unbound one — a cartesian step — when the join graph
   is disconnected) *)
let greedy_order p (cards : int array) =
  let n = Array.length cards in
  let bound = Array.make n false in
  let pick pred =
    let best = ref (-1) in
    for k = n - 1 downto 0 do
      if (not bound.(k)) && pred k && (!best < 0 || cards.(k) <= cards.(!best)) then
        best := k
    done;
    !best
  in
  let order = ref [] in
  for _ = 1 to n do
    let k =
      match pick (fun k -> connected p bound k) with
      | -1 -> pick (fun _ -> true)
      | k -> k
    in
    bound.(k) <- true;
    order := k :: !order
  done;
  List.rev !order

let execute ~on_build ~on_probe p (rels : Relation.t array)
    (yield : Relation.tuple list -> unit) =
  let n = Array.length rels in
  if n = 0 then yield [] (* zero operands: the one empty combination *)
  else if Array.exists Relation.is_empty rels then ()
  else begin
    let cards = Array.map Relation.cardinality rels in
    let order = greedy_order p cards in
    let bound = Array.make n false in
    let combos = ref [] in
    List.iteri
      (fun step k ->
        if step = 0 then
          combos :=
            List.map
              (fun tup ->
                let c = Array.make n [] in
                c.(k) <- tup;
                c)
              rels.(k).Relation.tuples
        else begin
          let edges = edges_to_bound p bound k in
          match edges with
          | [] ->
            (* cartesian step: no equi edge reaches [k] yet *)
            combos :=
              List.concat_map
                (fun combo ->
                  List.map
                    (fun tup ->
                      let c = Array.copy combo in
                      c.(k) <- tup;
                      c)
                    rels.(k).Relation.tuples)
                !combos
          | _ -> (
            let build_cols = List.map snd edges in
            let key_of_tuple tup = List.map (fun j -> List.nth tup (j - 1)) build_cols in
            let probe_key combo =
              List.map (fun ((b, j), _) -> List.nth combo.(b) (j - 1)) edges
            in
            match rels.(k).Relation.tuples with
            | [ only ] ->
              (* single-tuple operand: comparing against it directly is the
                 same work as the eventual residual test, so no index is
                 built and neither counter fires — this also keeps total
                 probes within the naive combination count on degenerate
                 all-singleton joins *)
              let key = key_of_tuple only in
              combos :=
                List.filter_map
                  (fun combo ->
                    if Relation.compare_tuples (probe_key combo) key = 0 then begin
                      let c = Array.copy combo in
                      c.(k) <- only;
                      Some c
                    end
                    else None)
                  !combos
            | tuples ->
              let index = Relation.Tuple_tbl.create (max 16 cards.(k)) in
              List.iter
                (fun tup ->
                  on_build ();
                  let key = key_of_tuple tup in
                  let prev =
                    match Relation.Tuple_tbl.find_opt index key with
                    | Some ts -> ts
                    | None -> []
                  in
                  Relation.Tuple_tbl.replace index key (tup :: prev))
                tuples;
              combos :=
                List.concat_map
                  (fun combo ->
                    on_probe ();
                    match Relation.Tuple_tbl.find_opt index (probe_key combo) with
                    | None -> []
                    | Some matches ->
                      List.rev_map
                        (fun tup ->
                          let c = Array.copy combo in
                          c.(k) <- tup;
                          c)
                        matches)
                  !combos)
        end;
        bound.(k) <- true)
      order;
    List.iter (fun combo -> yield (Array.to_list combo)) !combos
  end

(* -- the parallel partitioned executor (Eval.Physical.Parallel) ----------

   Same combination set and the same probe/build counter totals as
   [execute], with two structural differences:

   - {e partitioned builds}: the build side of every hash step is
     partitioned by the hash of its join key across [d] partitions,
     built by [d] pool tasks (the tuple→partition map is a pure function
     of the hash, so partition contents are deterministic); each
     partition is a private power-of-two bucket array storing
     [(hash, key, tuple)] — probes short-circuit on the hash before
     comparing keys, and nothing is ever written after the build
     barrier, so concurrent probing needs no locks;

   - {e pipelined probes}: instead of materialising the partial
     combination set after every step, each task walks its contiguous
     chunk of the first operand depth-first through the compiled step
     list, keeping one mutable cursor array; combinations stream to the
     caller as they complete.  Partials still probe once per hash step,
     so the counter totals match the materialising executor exactly.

   Chunks are assigned statically ([Domain_pool]); small driving sides
   (< 2 × [min_chunk]) and size-1 pools run inline on the caller.  The
   yield order differs from [execute] (depth-first per chunk), which is
   invisible after [Relation.make] canonicalisation. *)

type part_index = {
  nparts : int;
  bucket_mask : int;
  parts : (int * Relation.tuple * Relation.tuple) list array array;
      (** [parts.(p).(h land bucket_mask)]: entries whose key-hash [h]
          satisfies [h mod nparts = p] *)
}

type step =
  | Scan of int  (** cartesian step: no equi edge into the bound set *)
  | Single of {
      op : int;
      tup : Relation.tuple;
      key : Relation.tuple;
      cols : (int * int) array;  (** probe-side (operand, column) per edge *)
    }  (** single-tuple operand: direct compare, no index, no counters *)
  | Probe of { op : int; index : part_index; cols : (int * int) array }

let bucket_count card nparts =
  let target = max 16 (2 * card / max 1 nparts) in
  let rec pow2 n = if n >= target then n else pow2 (n * 2) in
  pow2 16

let build_partitioned ~pool ~on_build ~card tuples key_of_tuple =
  let nparts = Domain_pool.size pool in
  let bucket_mask = bucket_count card nparts - 1 in
  let parts =
    Array.init nparts (fun _ -> Array.make (bucket_mask + 1) [])
  in
  (* one sequential pass hashes every key and splits the entries by
     partition; the pool tasks then only touch their own partition's
     entries, so the total work is a single scan regardless of [d] *)
  let pending = Array.make nparts [] in
  List.iter
    (fun tup ->
      let key = key_of_tuple tup in
      let h = Relation.hash_tuple key land max_int in
      let p = h mod nparts in
      pending.(p) <- (h, key, tup) :: pending.(p))
    tuples;
  Domain_pool.run pool nparts (fun p ->
      let buckets = parts.(p) in
      List.iter
        (fun ((h, _, _) as entry) ->
          on_build p;
          let b = h land bucket_mask in
          buckets.(b) <- entry :: buckets.(b))
        pending.(p));
  { nparts; bucket_mask; parts }

(* how many contiguous chunks to cut [n] driving tuples into *)
let chunk_plan ~slots ~min_chunk n =
  if slots <= 1 || n < 2 * min_chunk then 1 else min slots (n / min_chunk)

let execute_parallel ~pool ~on_build ~on_probe p (rels : Relation.t array)
    (yield : int -> Relation.tuple list -> unit) =
  let n = Array.length rels in
  if n = 0 then yield 0 []
  else if Array.exists Relation.is_empty rels then ()
  else begin
    let cards = Array.map Relation.cardinality rels in
    let order = greedy_order p cards in
    let driver, rest =
      match order with d :: r -> (d, r) | [] -> assert false
    in
    let bound = Array.make n false in
    bound.(driver) <- true;
    let steps =
      List.map
        (fun k ->
          let edges = edges_to_bound p bound k in
          bound.(k) <- true;
          match edges with
          | [] -> Scan k
          | edges -> (
            let build_cols = List.map snd edges in
            let key_of_tuple tup =
              List.map (fun j -> List.nth tup (j - 1)) build_cols
            in
            let cols = Array.of_list (List.map fst edges) in
            match rels.(k).Relation.tuples with
            | [ only ] ->
              Single { op = k; tup = only; key = key_of_tuple only; cols }
            | tuples ->
              let index =
                build_partitioned ~pool ~on_build ~card:cards.(k) tuples
                  key_of_tuple
              in
              Probe { op = k; index; cols }))
        rest
    in
    let driver_tuples = Array.of_list rels.(driver).Relation.tuples in
    let dn = Array.length driver_tuples in
    let run_chunk slot lo hi =
      let current = Array.make n [] in
      (* the probe key is never materialised: its hash is folded exactly
         like [Relation.hash_tuple] over the edge columns, and equality
         walks the stored key against the bound values — the hot loop
         allocates nothing (minor-GC pauses synchronise every domain,
         so allocation here would serialise the pool) *)
      let value_at (b, j) = List.nth current.(b) (j - 1) in
      let rec hash_cols cols i acc =
        if i >= Array.length cols then acc
        else hash_cols cols (i + 1) ((acc * 31) + Value.hash (value_at cols.(i)))
      in
      let rec matches key cols i =
        match key with
        | [] -> true
        | v :: rest ->
          Value.compare v (value_at cols.(i)) = 0 && matches rest cols (i + 1)
      in
      let rec go = function
        | [] -> yield slot (Array.to_list current)
        | Scan k :: deeper ->
          List.iter
            (fun tup ->
              current.(k) <- tup;
              go deeper)
            rels.(k).Relation.tuples
        | Single s :: deeper ->
          if matches s.key s.cols 0 then begin
            current.(s.op) <- s.tup;
            go deeper
          end
        | Probe pr :: deeper ->
          on_probe slot;
          let h = hash_cols pr.cols 0 23 land max_int in
          let idx = pr.index in
          probe_bucket
            idx.parts.(h mod idx.nparts).(h land idx.bucket_mask)
            h pr.cols pr.op deeper
      and probe_bucket bucket h cols op deeper =
        match bucket with
        | [] -> ()
        | (h', key', tup) :: rest ->
          if h' = h && matches key' cols 0 then begin
            current.(op) <- tup;
            go deeper
          end;
          probe_bucket rest h cols op deeper
      in
      for i = lo to hi - 1 do
        current.(driver) <- driver_tuples.(i);
        go steps
      done
    in
    let nchunks = chunk_plan ~slots:(Domain_pool.size pool) ~min_chunk:64 dn in
    if nchunks = 1 then run_chunk 0 0 dn
    else
      Domain_pool.run pool nchunks (fun c ->
          run_chunk c (c * dn / nchunks) ((c + 1) * dn / nchunks))
  end

(* -- the columnar executor (Indexed/Parallel with qualifying schemas) -----

   Same combination set and the same probe/build counter totals as
   [execute] (single-tuple operands compare directly with no counters,
   cartesian steps count nothing, probes fire once per partial reaching
   a hash step — the pipelined-equals-materializing argument above),
   but the inner loops never touch a boxed [Value.t]: operands are
   typed column arrays, probe keys hash and compare as packed ints
   ({!Column.Index}), and a match yields the per-operand *row numbers*
   so the caller materializes tuples only for combinations that survive
   its residual.

   Callers must check {!columnar_ok} first: every equi edge needs its
   two columns in range and of equal flavor, because the int fast path
   cannot see [Value.compare]'s Int/Real cross-equality. *)

let columnar_ok p (tables : Column.table array) =
  List.for_all
    (fun { left = li, lj; right = ri, rj } ->
      let ok (i, j) = j >= 1 && j <= Array.length tables.(i - 1).Column.cols in
      ok (li, lj)
      && ok (ri, rj)
      && Column.flavor tables.(li - 1).Column.cols.(lj - 1)
         = Column.flavor tables.(ri - 1).Column.cols.(rj - 1))
    p.equis

type cstep =
  | C_scan of int
  | C_single of {
      op : int;
      skey : Column.col array;  (** build key cells, all at row 0 *)
      pkey : Column.col array;
      pops : int array;  (** probe-side operand per edge *)
    }
  | C_probe of {
      op : int;
      index : Column.Index.t;
      pkey : Column.col array;
      pops : int array;
    }

let execute_columnar ?pool ~on_build ~on_probe p (tables : Column.table array)
    (yield : int -> int array -> unit) =
  let n = Array.length tables in
  let cards = Array.map (fun (t : Column.table) -> t.Column.nrows) tables in
  let order = greedy_order p cards in
  let driver, rest = match order with d :: r -> (d, r) | [] -> assert false in
  let bound = Array.make n false in
  bound.(driver) <- true;
  let steps =
    List.map
      (fun k ->
        let edges = edges_to_bound p bound k in
        bound.(k) <- true;
        match edges with
        | [] -> C_scan k
        | edges ->
          let key_cols =
            Array.of_list (List.map (fun (_, j) -> j - 1) edges)
          in
          let pkey =
            Array.of_list
              (List.map
                 (fun ((b, j), _) -> tables.(b).Column.cols.(j - 1))
                 edges)
          in
          let pops = Array.of_list (List.map (fun ((b, _), _) -> b) edges) in
          if cards.(k) = 1 then
            C_single
              {
                op = k;
                skey = Array.map (fun c -> tables.(k).Column.cols.(c)) key_cols;
                pkey;
                pops;
              }
          else
            C_probe
              {
                op = k;
                index = Column.Index.build ~on_build tables.(k) ~key_cols;
                pkey;
                pops;
              })
      rest
  in
  let dn = cards.(driver) in
  let run_chunk slot lo hi =
    let current = Array.make n 0 in
    (* per-step probe-row scratch: private to this chunk, refilled
       before each probe and left untouched by deeper steps *)
    let scratch =
      Array.of_list
        (List.map
           (function
             | C_scan _ -> [||]
             | C_single { pkey; _ } | C_probe { pkey; _ } ->
               Array.make (Array.length pkey) 0)
           steps)
    in
    let single_matches skey pkey pops =
      let ok = ref true in
      let e = ref 0 in
      let ne = Array.length skey in
      while !ok && !e < ne do
        if not (Column.cell_equal skey.(!e) 0 pkey.(!e) current.(pops.(!e)))
        then ok := false;
        incr e
      done;
      !ok
    in
    let rec go si = function
      | [] -> yield slot current
      | C_scan k :: deeper ->
        for r = 0 to cards.(k) - 1 do
          current.(k) <- r;
          go (si + 1) deeper
        done
      | C_single { op; skey; pkey; pops } :: deeper ->
        if single_matches skey pkey pops then begin
          current.(op) <- 0;
          go (si + 1) deeper
        end
      | C_probe pr :: deeper ->
        on_probe slot;
        let rows = scratch.(si) in
        for e = 0 to Array.length rows - 1 do
          rows.(e) <- current.(pr.pops.(e))
        done;
        let r = ref (Column.Index.first pr.index ~key:pr.pkey ~rows) in
        while !r >= 0 do
          current.(pr.op) <- !r;
          go (si + 1) deeper;
          r := Column.Index.next pr.index ~key:pr.pkey ~rows !r
        done
    in
    for i = lo to hi - 1 do
      current.(driver) <- i;
      go 0 steps
    done
  in
  let nchunks =
    match pool with
    | None -> 1
    | Some pool ->
      chunk_plan ~slots:(Domain_pool.size pool) ~min_chunk:Column.chunk_rows dn
  in
  if nchunks = 1 then run_chunk 0 0 dn
  else
    match pool with
    | Some pool ->
      Domain_pool.run pool nchunks (fun c ->
          run_chunk c (c * dn / nchunks) ((c + 1) * dn / nchunks))
    | None -> assert false
