(* Typed columnar shadow of a relation plus the two engines that run
   over it: a flat chained hash index (join build/probe, whole-row
   membership) and a compiler from LERA scalar predicates to
   allocation-free row predicates.  See column.mli for the contract;
   the invariant that matters throughout is *flavor purity*: a column
   holds exactly one Value constructor, so cell comparisons reduce to
   Int.compare / Float.compare / String.compare — the same result
   Value.compare gives on those constructor pairs. *)

module Value = Eds_value.Value
module Intern = Eds_value.Intern
module Adt = Eds_value.Adt
module Lera = Eds_lera.Lera

type col =
  | Ints of int array
  | Oids of int array
  | Ids of int array
  | Enums of string * int array
      (* enum type name + interned label ids; Value.compare makes
         Enum (_, l) cross-equal to Str l (both rank 3, compared by
         label), so an Enums column compares/hashes against an Ids
         column by id exactly like Ids vs Ids *)
  | Floats of float array

type flavor = F_int | F_oid | F_id | F_float

type table = {
  nrows : int;
  cols : col array;
}

let chunk_rows = 1024

let enabled_flag =
  let init =
    match Sys.getenv_opt "EDS_COLUMNAR" with Some "0" -> false | _ -> true
  in
  Atomic.make init

let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

let flavor = function
  | Ints _ -> F_int
  | Oids _ -> F_oid
  | Ids _ | Enums _ -> F_id
  | Floats _ -> F_float

let flavors_equal a b =
  Array.length a.cols = Array.length b.cols
  && Array.for_all2 (fun ca cb -> flavor ca = flavor cb) a.cols b.cols

(* -- building from boxed tuples ------------------------------------------- *)

exception Bail

let of_tuples ~arity nrows tuples =
  if arity = 0 || nrows = 0 then None
  else
    match tuples with
    | [] -> None
    | first :: _ -> (
      try
        let cols =
          Array.of_list
            (List.map
               (function
                 | Value.Int _ -> Ints (Array.make nrows 0)
                 | Value.Oid _ -> Oids (Array.make nrows 0)
                 | Value.Str _ -> Ids (Array.make nrows 0)
                 | Value.Enum (ty, _) -> Enums (ty, Array.make nrows 0)
                 | Value.Real _ -> Floats (Array.make nrows 0.)
                 | Value.Null | Value.Bool _ | Value.Tuple _
                 | Value.Set _ | Value.Bag _ | Value.List _ | Value.Array _ ->
                   raise Bail)
               first)
        in
        if Array.length cols <> arity then raise Bail;
        let r = ref 0 in
        List.iter
          (fun tup ->
            let i = !r in
            List.iteri
              (fun j v ->
                match cols.(j), v with
                | Ints a, Value.Int x -> a.(i) <- x
                | Oids a, Value.Oid x -> a.(i) <- x
                | Ids a, Value.Str s -> a.(i) <- Intern.id_of_string s
                | Enums (ty, a), Value.Enum (ty', l) when ty' = ty ->
                  a.(i) <- Intern.id_of_string l
                | Floats a, Value.Real x -> a.(i) <- x
                | (Ints _ | Oids _ | Ids _ | Enums _ | Floats _), _ -> raise Bail)
              tup;
            incr r)
          tuples;
        Some { nrows; cols }
      with Bail -> None)

(* -- materializing back to boxed values ------------------------------------ *)

let value_at t ~row ~col =
  match t.cols.(col) with
  | Ints a -> Value.Int a.(row)
  | Oids a -> Value.Oid a.(row)
  | Ids a -> Value.Str (Intern.string_of_id a.(row))
  | Enums (ty, a) -> Value.Enum (ty, Intern.string_of_id a.(row))
  | Floats a -> Value.Real a.(row)

let tuple_at t row =
  List.init (Array.length t.cols) (fun col -> value_at t ~row ~col)

(* -- cell comparison ------------------------------------------------------- *)

let cell_equal ca i cb j =
  match ca, cb with
  | Ints a, Ints b | Oids a, Oids b -> a.(i) = b.(j)
  (* enum labels and strings are cross-equal by label (Value.compare),
     and both carry interned label ids *)
  | (Ids a | Enums (_, a)), (Ids b | Enums (_, b)) -> a.(i) = b.(j)
  | Floats a, Floats b -> Float.compare a.(i) b.(j) = 0
  | (Ints _ | Oids _ | Ids _ | Enums _ | Floats _), _ -> false

(* Packed int for hashing only (equality always goes through
   [cell_equal]): equal cells must pack equally, so -0. is normalized
   to +0. and every NaN to one canonical pattern; the 64->63 bit
   truncation can only cause extra hash collisions, never missed
   matches. *)
let float_key x =
  if Float.is_nan x then 0x7FF8_0000_0000_0001
  else Int64.to_int (Int64.bits_of_float (x +. 0.))

let cell_key c i =
  match c with
  | Ints a | Oids a | Ids a | Enums (_, a) -> a.(i)
  | Floats a -> float_key a.(i)

(* -- flat chained hash index ----------------------------------------------- *)

module Index = struct
  type t = {
    key : col array;  (** resolved build-side key columns *)
    mask : int;
    heads : int array;
    next : int array;
  }

  let mix h =
    let h = h * 0x9E3779B1 in
    (h lxor (h lsr 16)) land max_int

  (* hash of the build key at row [r]: every key cell is read at [r] *)
  let hash_build key r =
    let h = ref 23 in
    Array.iter (fun c -> h := (!h * 31) + cell_key c r) key;
    mix !h

  (* hash of a probe key given per-cell rows; folds [cell_key] exactly
     like [hash_build], so equal cells hash equally across the two *)
  let hash_probe key rows =
    let h = ref 23 in
    for e = 0 to Array.length key - 1 do
      h := (!h * 31) + cell_key key.(e) rows.(e)
    done;
    mix !h

  let bucket_count n =
    let want = max 16 (2 * n) in
    let b = ref 16 in
    while !b < want do
      b := !b * 2
    done;
    !b

  let build ?on_build tbl ~key_cols =
    let key = Array.map (fun c -> tbl.cols.(c)) key_cols in
    let n = tbl.nrows in
    let mask = bucket_count n - 1 in
    let heads = Array.make (mask + 1) (-1) in
    let next = Array.make (max 1 n) (-1) in
    for r = 0 to n - 1 do
      let b = hash_build key r land mask in
      next.(r) <- heads.(b);
      heads.(b) <- r;
      match on_build with Some f -> f () | None -> ()
    done;
    { key; mask; heads; next }

  let matches t key rows r =
    let nk = Array.length t.key in
    let ok = ref true in
    let e = ref 0 in
    while !ok && !e < nk do
      if not (cell_equal t.key.(!e) r key.(!e) rows.(!e)) then ok := false;
      incr e
    done;
    !ok

  let rec scan t key rows r =
    if r < 0 then -1
    else if matches t key rows r then r
    else scan t key rows t.next.(r)

  let first t ~key ~rows = scan t key rows t.heads.(hash_probe key rows land t.mask)
  let next t ~key ~rows r = scan t key rows t.next.(r)
end

(* -- predicate compiler ---------------------------------------------------- *)

module Pred = struct
  type t =
    | Always
    | Rows of (int array -> bool)
    | Opaque

  (* The six comparison operators live in the ADT registry and can be
     shadowed by a user-registered function of the same name; compiled
     code must only stand in for the *builtin* entries.  Adt.builtins
     re-registers the same physically-shared entry records on every
     call, so physical equality against a reference registry detects
     shadowing exactly. *)
  let reference = lazy (Adt.builtins ())

  let is_builtin adts op =
    match Adt.find adts op, Adt.find (Lazy.force reference) op with
    | Some a, Some b -> a == b
    | (Some _ | None), _ -> false

  let tests =
    [
      ("=", fun c -> c = 0);
      ("<>", fun c -> c <> 0);
      ("<", fun c -> c < 0);
      ("<=", fun c -> c <= 0);
      (">", fun c -> c > 0);
      (">=", fun c -> c >= 0);
    ]

  type getter =
    | G_int of (int array -> int)
    | G_oid of (int array -> int)
    | G_str of (int array -> string)
    | G_float of (int array -> float)

  let rank_g = function
    | G_int _ | G_float _ -> 2
    | G_str _ -> 3
    | G_oid _ -> 5

  (* comparator matching Value.compare on the covered constructor
     pairs; None when the ranks differ (constant outcome) *)
  let cmp_of ga gb =
    match ga, gb with
    | G_int f, G_int g -> Some (fun rows -> Int.compare (f rows) (g rows))
    | G_int f, G_float g ->
      Some (fun rows -> Float.compare (float_of_int (f rows)) (g rows))
    | G_float f, G_int g ->
      Some (fun rows -> Float.compare (f rows) (float_of_int (g rows)))
    | G_float f, G_float g -> Some (fun rows -> Float.compare (f rows) (g rows))
    | G_str f, G_str g -> Some (fun rows -> String.compare (f rows) (g rows))
    | G_oid f, G_oid g -> Some (fun rows -> Int.compare (f rows) (g rows))
    | (G_int _ | G_oid _ | G_str _ | G_float _), _ -> None

  (* a side of a comparison: a typed accessor, a constant whose rank
     settles the outcome against any column, or not compilable *)
  let side tables s =
    match s with
    | Lera.Col (i, j) -> (
      let k = i - 1 and c = j - 1 in
      if k < 0 || k >= Array.length tables then `Bad
      else
        let t = tables.(k) in
        if c < 0 || c >= Array.length t.cols then `Bad
        else
          `G
            (match t.cols.(c) with
            | Ints a -> G_int (fun rows -> a.(rows.(k)))
            | Oids a -> G_oid (fun rows -> a.(rows.(k)))
            | Ids a | Enums (_, a) ->
              G_str (fun rows -> Intern.string_of_id a.(rows.(k)))
            | Floats a -> G_float (fun rows -> a.(rows.(k)))))
    | Lera.Cst v when Value.is_collection v -> `Bad
    | Lera.Cst v -> (
      match v with
      | Value.Int x -> `G (G_int (fun _ -> x))
      | Value.Real x -> `G (G_float (fun _ -> x))
      | Value.Str s -> `G (G_str (fun _ -> s))
      | Value.Enum (_, l) -> `G (G_str (fun _ -> l))
      | Value.Oid x -> `G (G_oid (fun _ -> x))
      | Value.Null | Value.Bool _ | Value.Tuple _ -> `Rank (Value.rank v)
      | Value.Set _ | Value.Bag _ | Value.List _ | Value.Array _ -> `Bad)
    | Lera.Call _ -> `Bad

  let atom tables a b =
    match a, b with
    | Lera.Cst u, Lera.Cst v ->
      if Value.is_collection u || Value.is_collection v then `Bad
      else `Const (Value.compare u v)
    | _ -> (
      match side tables a, side tables b with
      | `G ga, `G gb -> (
        match cmp_of ga gb with
        | Some f -> `Cmp f
        | None -> `Const (Int.compare (rank_g ga) (rank_g gb)))
      | `Rank ra, `G gb -> `Const (Int.compare ra (rank_g gb))
      | `G ga, `Rank rb -> `Const (Int.compare (rank_g ga) rb)
      | `Rank ra, `Rank rb -> `Const (Int.compare ra rb)
      | `Bad, _ | _, `Bad -> `Bad)

  let is_opaque = function `O -> true | `T | `F | `P _ -> false
  let is_false = function `F -> true | `T | `O | `P _ -> false
  let is_true = function `T -> true | `F | `O | `P _ -> false
  let pred_of = function `P f -> Some f | `T | `F | `O -> None

  let compile ~adts tables q =
    let rec comp q =
      match q with
      | Lera.Cst (Value.Bool true) -> `T
      | Lera.Cst (Value.Bool false) -> `F
      (* eval_bool maps Null to false without erroring *)
      | Lera.Cst Value.Null -> `F
      | Lera.Cst _ -> `O
      | Lera.Call ("and", args) -> (
        (* matches the evaluator's special form exactly (literal,
           case-sensitive "and"); all compiled conjuncts are pure and
           total, so dropping short-circuit order is unobservable *)
        let cs = List.map comp args in
        if List.exists is_opaque cs then `O
        else if List.exists is_false cs then `F
        else
          match List.filter_map pred_of cs with
          | [] -> `T
          | [ f ] -> `P f
          | fs -> `P (fun rows -> List.for_all (fun f -> f rows) fs))
      | Lera.Call ("or", args) -> (
        let cs = List.map comp args in
        if List.exists is_opaque cs then `O
        else if List.exists is_true cs then `T
        else
          match List.filter_map pred_of cs with
          | [] -> `F
          | [ f ] -> `P f
          | fs -> `P (fun rows -> List.exists (fun f -> f rows) fs))
      | Lera.Call ("not", [ a ]) -> (
        match comp a with
        | `T -> `F
        | `F -> `T
        | `P f -> `P (fun rows -> not (f rows))
        | `O -> `O)
      | Lera.Call (op, [ a; b ]) -> (
        match List.assoc_opt op tests with
        | Some test when is_builtin adts op -> (
          match atom tables a b with
          | `Const c -> if test c then `T else `F
          | `Cmp f -> `P (fun rows -> test (f rows))
          | `Bad -> `O)
        | Some _ | None -> `O)
      | Lera.Call _ | Lera.Col _ -> `O
    in
    match comp q with
    | `T -> Always
    | `F -> Rows (fun _ -> false)
    | `P f -> Rows f
    | `O -> Opaque
end
