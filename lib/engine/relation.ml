module Value = Eds_value.Value
module Schema = Eds_lera.Schema

type tuple = Value.t list

let compare_tuples a b =
  let rec go xs ys =
    match xs, ys with
    | [], [] -> 0
    | [], _ :: _ -> -1
    | _ :: _, [] -> 1
    | x :: xs', y :: ys' ->
      let c = Value.compare x y in
      if c <> 0 then c else go xs' ys'
  in
  go a b

(* Tuple hash compatible with [compare_tuples]: Value.hash already hashes
   Int through float and Enum through its label, the two cross-constructor
   equalities of Value.compare. *)
let hash_tuple tup =
  List.fold_left (fun acc v -> (acc * 31) + Value.hash v) 23 tup

module Tuple_key = struct
  type t = tuple

  let equal a b = compare_tuples a b = 0
  let hash = hash_tuple
end

module Tuple_tbl = Hashtbl.Make (Tuple_key)

type index = unit Tuple_tbl.t

type t = {
  schema : Schema.t;
  tuples : tuple list;
  card : int;
  index : index Lazy.t;
  cols : Column.table option Lazy.t;
}

let build_index card tuples =
  lazy
    (let tbl = Tuple_tbl.create (max 16 card) in
     List.iter (fun tup -> Tuple_tbl.replace tbl tup ()) tuples;
     tbl)

(* The columnar shadow is derived from the canonical tuple list at
   every construction (never carried over from an operand), so set
   operations can take any representation shortcut without the two
   views drifting apart. *)
let build_cols schema card tuples =
  lazy (Column.of_tuples ~arity:(Schema.arity schema) card tuples)

(* sorted, duplicate-free input *)
let of_sorted schema tuples =
  let card = List.length tuples in
  {
    schema;
    tuples;
    card;
    index = build_index card tuples;
    cols = build_cols schema card tuples;
  }

let make schema tuples =
  let width = Schema.arity schema in
  List.iter
    (fun tup ->
      if List.length tup <> width then
        invalid_arg
          (Fmt.str "Relation.make: tuple width %d differs from arity %d"
             (List.length tup) width))
    tuples;
  of_sorted schema (List.sort_uniq compare_tuples tuples)

let empty schema = of_sorted schema []

(* retag under a same-arity schema: tuples, membership index and the
   columnar shadow are all schema-name-independent, so they are shared *)
let with_schema schema r =
  if Schema.arity schema <> Schema.arity r.schema then
    invalid_arg
      (Fmt.str "Relation.with_schema: arity %d differs from %d"
         (Schema.arity schema) (Schema.arity r.schema))
  else { r with schema }

let cardinality r = r.card
let is_empty r = r.card = 0

let mem tup r = r.card > 0 && Tuple_tbl.mem (Lazy.force r.index) tup

(* Force the hash-set view on the calling domain.  [Lazy.force] from
   several domains at once on an unforced suspension is a race (it can
   raise [Lazy.Undefined]); forcing here first makes subsequent
   concurrent [mem] calls plain reads of the forced value. *)
let force_index r = if r.card > 0 then ignore (Lazy.force r.index)

let columns r = Lazy.force r.cols
let force_columns r = ignore (Lazy.force r.cols)

(* Subset keeping the canonical order: a filtered sorted duplicate-free
   list is still sorted and duplicate-free, so no re-sort. *)
let filteri keep r =
  let i = ref (-1) in
  of_sorted r.schema
    (List.filter
       (fun tup ->
         incr i;
         keep !i tup)
       r.tuples)

let equal a b =
  a.card = b.card && List.for_all2 (fun x y -> compare_tuples x y = 0) a.tuples b.tuples

let check_arity op a b =
  let wa = Schema.arity a.schema and wb = Schema.arity b.schema in
  if wa <> wb then
    invalid_arg
      (Fmt.str "Relation.%s: operand arities differ (%d vs %d)" op wa wb)

(* linear merge of the two sorted duplicate-free sides; no re-sort *)
let union a b =
  check_arity "union" a b;
  if a.card = 0 then { b with schema = a.schema }
  else if b.card = 0 then a
  else begin
    let rec merge acc xs ys =
      match xs, ys with
      | [], rest | rest, [] -> List.rev_append acc rest
      | x :: xs', y :: ys' ->
        let c = compare_tuples x y in
        if c < 0 then merge (x :: acc) xs' ys
        else if c > 0 then merge (y :: acc) xs ys'
        else merge (x :: acc) xs' ys'
    in
    of_sorted a.schema (merge [] a.tuples b.tuples)
  end

let diff a b =
  check_arity "diff" a b;
  if a.card = 0 || b.card = 0 then a
  else of_sorted a.schema (List.filter (fun t -> not (mem t b)) a.tuples)

let inter a b =
  check_arity "inter" a b;
  if a.card = 0 then a
  else if b.card = 0 then empty a.schema
  else of_sorted a.schema (List.filter (fun t -> mem t b) a.tuples)

let pp ppf r =
  let names = List.map fst r.schema in
  Fmt.pf ppf "%a@." (Fmt.list ~sep:(Fmt.any " | ") Fmt.string) names;
  List.iter
    (fun tup ->
      Fmt.pf ppf "%a@." (Fmt.list ~sep:(Fmt.any " | ") Value.pp) tup)
    r.tuples
