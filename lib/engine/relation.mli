(** In-memory relations.

    Relations have set semantics: construction deduplicates tuples, which
    is what guarantees termination of the fixpoint operator (paper §3.2).
    A tuple is a list of {!Value.t}, one per schema attribute.

    Next to the canonical sorted tuple list every relation carries a
    lazily-built hash-set view (tuples keyed by a precomputed hash
    compatible with {!compare_tuples}), so {!mem}, {!diff}, {!inter} and
    the fixpoint freshness checks are O(1) per tuple instead of a scan,
    and cardinality is cached at construction. *)

module Value = Eds_value.Value
module Schema = Eds_lera.Schema

type tuple = Value.t list

(** Hashtables keyed on whole tuples ({!compare_tuples} equality,
    {!hash_tuple} hashing).  Shared by the hash-join machinery and the
    nest-grouping path of the evaluator. *)
module Tuple_tbl : Hashtbl.S with type key = tuple

type index
(** The hash-set view of a relation's tuples. *)

type t = private {
  schema : Schema.t;
  tuples : tuple list;  (** sorted, duplicate-free *)
  card : int;  (** [List.length tuples], cached *)
  index : index Lazy.t;  (** hash-set over [tuples], built on first use *)
  cols : Column.table option Lazy.t;
      (** typed columnar shadow, derived from [tuples] on first use;
          [None] when the schema or the values disqualify (see
          {!Column.of_tuples}) *)
}

val make : Schema.t -> tuple list -> t
(** Sorts and deduplicates.  Raises [Invalid_argument] if a tuple's width
    differs from the schema's arity. *)

val empty : Schema.t -> t

val with_schema : Schema.t -> t -> t
(** Retag under a same-arity schema, sharing tuples and the lazy
    index/columnar caches (all schema-name-independent).  O(1); raises
    [Invalid_argument] on arity mismatch. *)

val cardinality : t -> int
val is_empty : t -> bool

val mem : tuple -> t -> bool
(** O(1) expected: probes the hash-set view. *)

val force_index : t -> unit
(** Build the hash-set view now, on the calling domain.  Required before
    calling {!mem} concurrently from several domains: forcing the same
    lazy suspension from two domains races, reading a forced one does
    not. *)

val columns : t -> Column.table option
(** The columnar shadow of the tuples, built on first use; [None] when
    the relation does not qualify.  Same cross-domain caveat as the
    hash-set view: force on one domain (see {!force_columns}) before
    reading from several. *)

val force_columns : t -> unit
(** Build the columnar shadow now, on the calling domain. *)

val filteri : (int -> tuple -> bool) -> t -> t
(** Subset of the tuples by position (0-based, canonical order) and
    value; keeps the schema.  O(n) with no re-sort, since a subset of
    the sorted duplicate-free list is itself sorted and duplicate-free. *)

val equal : t -> t -> bool
(** Same tuple sets (schemas are not compared beyond arity). *)

val union : t -> t -> t
(** Linear merge of the two sorted sides (keeps the left schema).
    Raises [Invalid_argument] if the operand arities differ. *)

val diff : t -> t -> t
val inter : t -> t -> t
(** Hash-probe the right side per left tuple.  Raise [Invalid_argument]
    if the operand arities differ. *)

val compare_tuples : tuple -> tuple -> int

val hash_tuple : tuple -> int
(** Hash compatible with [compare_tuples = 0] equality (numeric
    [Int]/[Real] and [Enum]/[Str] cross-equalities included). *)

val pp : Format.formatter -> t -> unit
(** Tabular dump, one tuple per line. *)
