(* Per-thread cooperative deadlines.  The fast path must stay cheap
   enough for the evaluator's innermost loops: [tick] is one atomic load
   when no deadline is installed anywhere, and only threads that went
   through [with_timeout] ever take the table lock. *)

exception Timeout of float

(* thread id -> (absolute deadline, budget it was derived from) *)
let table : (int, float * float) Hashtbl.t = Hashtbl.create 8
let lock = Mutex.create ()

(* count of installed deadlines, so [tick] can skip the table entirely
   in the common (no server, no timeout) case *)
let installed = Atomic.make 0

let active () = Atomic.get installed > 0

let self_id () = Thread.id (Thread.self ())

let lookup id =
  Mutex.lock lock;
  let entry = Hashtbl.find_opt table id in
  Mutex.unlock lock;
  entry

let with_timeout budget f =
  let id = self_id () in
  let previous = lookup id in
  let deadline = Unix.gettimeofday () +. budget in
  (* nesting never extends an enclosing deadline *)
  let deadline =
    match previous with Some (d, _) -> Float.min d deadline | None -> deadline
  in
  Mutex.lock lock;
  Hashtbl.replace table id (deadline, budget);
  Mutex.unlock lock;
  Atomic.incr installed;
  Fun.protect
    ~finally:(fun () ->
      Atomic.decr installed;
      Mutex.lock lock;
      (match previous with
      | Some entry -> Hashtbl.replace table id entry
      | None -> Hashtbl.remove table id);
      Mutex.unlock lock)
    f

let tick () =
  if Atomic.get installed > 0 then begin
    match lookup (self_id ()) with
    | Some (deadline, budget) when Unix.gettimeofday () > deadline ->
      raise (Timeout budget)
    | Some _ | None -> ()
  end
