(* Per-thread cooperative deadlines.  The fast path must stay cheap
   enough for the evaluator's innermost loops: [tick] is one atomic load
   when no deadline is installed anywhere, and only threads that went
   through [with_timeout] ever take the table lock.

   Bookkeeping discipline: [installed] mirrors the table size exactly
   and both are only ever updated together under [lock], so no exception
   path can leave the fast-path counter out of sync with the table.  A
   deadline that somehow survives its frame (the stale-deadline bug a
   connection thread would otherwise inherit on its next query) can be
   dropped explicitly with [clear]. *)

exception Timeout of float

let m_timeouts =
  Eds_obs.Metrics.counter
    ~help:"Queries cancelled by a cooperative deadline"
    "eds_cancel_timeouts_total"

(* thread id -> (absolute deadline, budget it was derived from) *)
let table : (int, float * float) Hashtbl.t = Hashtbl.create 8
let lock = Mutex.create ()

(* count of installed deadlines, so [tick] can skip the table entirely
   in the common (no server, no timeout) case; always equals
   [Hashtbl.length table] *)
let installed = Atomic.make 0

let active () = Atomic.get installed > 0

let self_id () = Thread.id (Thread.self ())

let set_locked id entry =
  (match entry with
  | Some e -> Hashtbl.replace table id e
  | None -> Hashtbl.remove table id);
  Atomic.set installed (Hashtbl.length table)

let lookup id =
  Mutex.lock lock;
  let entry = Hashtbl.find_opt table id in
  Mutex.unlock lock;
  entry

let clear () =
  Mutex.lock lock;
  set_locked (self_id ()) None;
  Mutex.unlock lock

let with_timeout budget f =
  let id = self_id () in
  let deadline = Unix.gettimeofday () +. budget in
  Mutex.lock lock;
  let previous = Hashtbl.find_opt table id in
  (* nesting never extends an enclosing deadline *)
  let deadline =
    match previous with Some (d, _) -> Float.min d deadline | None -> deadline
  in
  set_locked id (Some (deadline, budget));
  Mutex.unlock lock;
  (* one finalizer clears (or restores) the deadline on every exit path,
     normal or exceptional, in a single locked step *)
  Fun.protect
    ~finally:(fun () ->
      Mutex.lock lock;
      set_locked id previous;
      Mutex.unlock lock)
    f

let tick () =
  if Atomic.get installed > 0 then begin
    match lookup (self_id ()) with
    | Some (deadline, budget) when Unix.gettimeofday () > deadline ->
      Eds_obs.Metrics.Counter.incr m_timeouts;
      raise (Timeout budget)
    | Some _ | None -> ()
  end
