module Value = Eds_value.Value
module Vtype = Eds_value.Vtype
module Adt = Eds_value.Adt
module Schema = Eds_lera.Schema
module Smap = Map.Make (String)
module Imap = Map.Make (Int)

(* The whole database is one immutable state record behind a single
   mutable field.  Every mutation builds a fresh record (the persistent
   maps share all unchanged substructure) and publishes it with one
   field write, so [snapshot] is O(1): capture the current record and
   never look at the live cell again.  Readers holding a snapshot are
   completely isolated from concurrent writers — the basis of the query
   server's lock-free SELECTs. *)
type state = {
  type_env : Vtype.env;
  adt_registry : Adt.registry;
  relations : Relation.t Smap.t;
  objects : Value.t Imap.t;
  next_oid : int;
  generation : int;  (* bumped by every publish *)
}

type t = { mutable state : state }

let create ?types ?adts () =
  {
    state =
      {
        type_env = Option.value types ~default:Vtype.empty_env;
        adt_registry = (match adts with Some r -> r | None -> Adt.builtins ());
        relations = Smap.empty;
        objects = Imap.empty;
        next_oid = 1;
        generation = 0;
      };
  }

let publish db state = db.state <- { state with generation = state.generation + 1 }
let snapshot db = { state = db.state }
let data_generation db = db.state.generation

let types db = db.state.type_env
let adts db = db.state.adt_registry
let set_types db env = publish db { db.state with type_env = env }
let set_adts db reg = publish db { db.state with adt_registry = reg }

(* Force the relation's lazy hash view before the new state becomes
   visible: snapshot readers (including pool worker domains) must only
   ever see forced suspensions — racing [Lazy.force] can raise
   [Lazy.Undefined]. *)
let add_relation db name rel =
  Relation.force_index rel;
  publish db { db.state with relations = Smap.add name rel db.state.relations }

(* Install several relations under one publish: a DML statement and every
   materialized extent it maintains become visible atomically, and the
   data generation moves once per statement, not once per relation. *)
let replace_many db updates =
  List.iter (fun (_, rel) -> Relation.force_index rel) updates;
  publish db
    {
      db.state with
      relations =
        List.fold_left
          (fun m (name, rel) -> Smap.add name rel m)
          db.state.relations updates;
    }

let relation db name =
  match Smap.find_opt name db.state.relations with
  | Some r -> r
  | None -> raise Not_found

let relation_opt db name = Smap.find_opt name db.state.relations

let relation_names db = List.map fst (Smap.bindings db.state.relations)

let insert db name tup =
  let rel = relation db name in
  add_relation db name (Relation.make rel.Relation.schema (tup :: rel.Relation.tuples))

let schema_env db =
  let s = db.state in
  {
    Schema.types = s.type_env;
    Schema.relations =
      Smap.fold (fun name r acc -> (name, r.Relation.schema) :: acc) s.relations [];
    Schema.adts = s.adt_registry;
  }

let restore_object db oid v =
  let s = db.state in
  publish db
    {
      s with
      objects = Imap.add oid v s.objects;
      next_oid = (if oid >= s.next_oid then oid + 1 else s.next_oid);
    }

let objects db = Imap.bindings db.state.objects

let new_object db v =
  let s = db.state in
  let oid = s.next_oid in
  publish db { s with objects = Imap.add oid v s.objects; next_oid = oid + 1 };
  Value.Oid oid

let deref db v =
  match v with
  | Value.Oid oid -> (
    match Imap.find_opt oid db.state.objects with
    | Some bound -> bound
    | None -> raise Not_found)
  | Value.Null | Value.Bool _ | Value.Int _ | Value.Real _ | Value.Str _
  | Value.Enum _ | Value.Tuple _ | Value.Set _ | Value.Bag _ | Value.List _
  | Value.Array _ ->
    v

let update_object db oid v =
  match oid with
  | Value.Oid i ->
    if not (Imap.mem i db.state.objects) then raise Not_found;
    publish db { db.state with objects = Imap.add i v db.state.objects }
  | Value.Null | Value.Bool _ | Value.Int _ | Value.Real _ | Value.Str _
  | Value.Enum _ | Value.Tuple _ | Value.Set _ | Value.Bag _ | Value.List _
  | Value.Array _ ->
    invalid_arg "Database.update_object: not an OID"
