(** Universal value model of the EDS server (paper §2.1).

    ESQL data is partitioned into {e values} and {e objects}: a value is an
    instance of an ADT, while an object has a unique identifier ([Oid]) with
    a value bound to it (the binding lives in the object store of
    {!Eds_engine.Database}).  Complex values are built by combining the
    generic ADTs tuple, set, bag, list and array at multiple levels. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Real of float
  | Str of string
  | Enum of string * string  (** [Enum (type_name, label)] *)
  | Oid of int  (** object identity; the bound value lives in the object store *)
  | Tuple of (string * t) list  (** field order is the declared order *)
  | Set of t list  (** canonical: strictly increasing under {!compare} *)
  | Bag of t list  (** canonical: sorted under {!compare}, duplicates kept *)
  | List of t list
  | Array of t list

val compare : t -> t -> int
(** Total structural order.  [Int] and [Real] compare numerically across the
    two constructors so that [Int 1 = Real 1.]. *)

val rank : t -> int
(** Constructor rank used by {!compare} to order values of distinct
    constructors ([Int] and [Real] share a rank, as do [Str] and [Enum]).
    Exposed so the columnar predicate compiler can constant-fold
    comparisons whose sides can never share a rank. *)

val equal : t -> t -> bool

val hash : t -> int

val pp : Format.formatter -> t -> unit
(** Concrete-syntax printer: ['Quinn'], [{1, 2}] (set), [bag{1, 1}],
    [[1, 2]] (list), [[|1, 2|]] (array), [<a: 1, b: 2>] (tuple) —
    parseable back with {!Value_text.parse}. *)

val to_string : t -> string

(** {1 Smart constructors}

    [set] and [bag] establish the canonical form required by {!compare};
    always build collections through them. *)

val set : t list -> t
val bag : t list -> t
val list : t list -> t
val array : t list -> t
val tuple : (string * t) list -> t

(** {1 Accessors} *)

val is_collection : t -> bool

val elements : t -> t list
(** Elements of any collection. Raises [Invalid_argument] on non-collections. *)

val tuple_fields : t -> (string * t) list
(** Fields of a tuple. Raises [Invalid_argument] otherwise. *)

val field : string -> t -> t
(** [field name tup] projects a tuple on field [name].
    Raises [Not_found] if the field is absent. *)

val as_bool : t -> bool
(** Raises [Invalid_argument] on non-booleans. *)

val as_int : t -> int
val as_float : t -> float
(** Numeric coercions; [as_float] accepts [Int] too. *)

val as_string : t -> string
(** Contents of [Str] or label of [Enum]. *)
