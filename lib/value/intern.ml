module Metrics = Eds_obs.Metrics
module Smap = Map.Make (String)

(* One immutable snapshot behind one atomic: readers dereference it and
   go, writers extend a copy under [lock] and publish with a single
   [Atomic.set].  [rev] is grow-only with amortized doubling; the slot
   for a fresh id is written before the snapshot carrying the larger [n]
   is published, so a reader can only see index [i] after the store to
   [rev.(i)] — the standard safe-publication idiom. *)
type state = {
  fwd : int Smap.t;
  rev : string array;  (** ids [0 .. n-1] valid *)
  n : int;
}

let state = Atomic.make { fwd = Smap.empty; rev = [||]; n = 0 }
let lock = Mutex.create ()

let m_size =
  lazy (Metrics.gauge ~help:"Distinct strings in the global intern table"
          "eds_intern_strings")

let find s = Smap.find_opt s (Atomic.get state).fwd
let size () = (Atomic.get state).n

let string_of_id id =
  let st = Atomic.get state in
  if id < 0 || id >= st.n then
    invalid_arg (Fmt.str "Intern.string_of_id: unknown id %d" id)
  else st.rev.(id)

let register s =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) @@ fun () ->
  let st = Atomic.get state in
  match Smap.find_opt s st.fwd with
  | Some id -> id
  | None ->
    let id = st.n in
    let rev =
      if id < Array.length st.rev then st.rev
      else begin
        let grown = Array.make (max 64 (2 * Array.length st.rev)) "" in
        Array.blit st.rev 0 grown 0 st.n;
        grown
      end
    in
    rev.(id) <- s;
    Atomic.set state { fwd = Smap.add s id st.fwd; rev; n = id + 1 };
    Metrics.Gauge.set (Lazy.force m_size) (id + 1);
    id

let id_of_string s =
  match find s with
  | Some id -> id
  | None -> register s
