(** Global string/atom intern table.

    Maps strings to dense integer ids and back, process-wide, so the
    columnar execution paths can carry CHAR/ENUM columns as plain [int]
    arrays and compare/hash probe keys without touching the heap
    (shapiro/lasso idiom: intern once, run the hot loops over ids).

    Ids are dense, starting at 0, assigned in registration order, and
    never reused or dropped: within a process the id of a string is
    stable for the whole lifetime, so relations built at different times
    agree on ids.  Across a save/recover cycle ids are re-assigned on
    re-registration — persistent artefacts therefore always store the
    {e strings} (the ESQL dump format is unchanged) and re-intern on
    load.

    Concurrency: reads ({!string_of_id}, {!find}) are lock-free — they
    dereference one [Atomic.t] snapshot — and safe from any domain.
    Registration ({!id_of_string}) takes a single writer mutex,
    publishes the extended snapshot with one atomic store, and is
    idempotent.  The table size is exported as the [eds_intern_strings]
    METRICS gauge. *)

val id_of_string : string -> int
(** Intern [s]: return its id, registering it first if unseen.
    Idempotent; takes the writer lock only on the miss path. *)

val find : string -> int option
(** Lock-free lookup, [None] if [s] was never interned. *)

val string_of_id : int -> string
(** Lock-free reverse lookup.  Raises [Invalid_argument] on an id that
    was never issued. *)

val size : unit -> int
(** Number of distinct strings interned so far (= the next fresh id). *)
