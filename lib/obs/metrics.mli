(** Always-on, sink-independent metrics registry.

    Unlike the trace machinery in {!Obs} — which is deliberately
    zero-cost-when-disabled and therefore drops everything unless a sink
    is installed — this registry is {e always on}: counters, gauges and
    latency histograms record through pre-fetched handles with atomic
    read-modify-write operations and no allocation, cheap enough to
    leave enabled in production.  Snapshots are taken lock-free; the
    registry structure itself is only mutated on (cold) registration.

    Histograms use a {e fixed} log₂ bucket layout (upper bounds 2^k
    seconds for k in [-20, 6], plus +Inf), so any two snapshots — from
    different histograms, processes or points in time — can be merged or
    subtracted bucket-wise, and quantiles are computable by linear
    interpolation within a bucket without storing samples.

    Exposition: {!prometheus} renders the whole registry (plus any
    registered collectors) in the Prometheus text format; {!samples}
    returns the same data structurally for JSON rendering or tests. *)

(** {1 Global enable flag}

    On by default.  Turning recording off is only meant for measuring
    the instrumentation's own overhead (bench E6); exposition still
    works while disabled. *)

val set_enabled : bool -> unit
val enabled : unit -> bool

(** {1 Histograms} *)

module Histogram : sig
  type t

  val bounds : float array
  (** The fixed finite bucket upper bounds, ascending: [2^k] for [k] in
      [-20 .. 6].  Every histogram has [Array.length bounds + 1]
      buckets; the last one is the +Inf overflow bucket. *)

  val bucket_index : float -> int
  (** Index of the bucket a value lands in: smallest [i] with
      [v <= bounds.(i)], or [Array.length bounds] for the overflow
      bucket.  Bounds are inclusive (Prometheus [le] semantics). *)

  val observe : t -> float -> unit
  (** Record one value (seconds).  Lock-free, allocation-free; no-op
      when the registry is disabled.  Values are accumulated into the
      sum at nanosecond resolution. *)

  type snapshot = {
    counts : int array;  (** per-bucket (non-cumulative), length [Array.length bounds + 1] *)
    sum : float;
  }

  val snapshot : t -> snapshot
  val count : snapshot -> int

  val merge : snapshot -> snapshot -> snapshot
  (** Bucket-wise sum: [merge (snap a) (snap b)] equals the snapshot of
      a histogram that recorded both observation streams. *)

  val sub : snapshot -> snapshot -> snapshot
  (** Bucket-wise difference (clamped at zero): the delta between two
      snapshots of the same cumulative histogram. *)

  val quantile : snapshot -> float -> float
  (** [quantile s q] for [q] in [0,1]: linear interpolation within the
      bucket holding rank [q*count].  Monotone in [q].  Returns [0.] on
      an empty snapshot; the overflow bucket reports its lower bound. *)
end

(** {1 Counters and gauges} *)

module Counter : sig
  type t

  val incr : t -> unit
  val add : t -> int -> unit
  (** Atomic; no-op when the registry is disabled.  Negative deltas are
      ignored (counters are monotone). *)

  val value : t -> int
end

module Gauge : sig
  type t

  val set : t -> int -> unit
  val add : t -> int -> unit
  (** Gauges record current state (e.g. open connections), so they are
      {e not} gated on {!enabled} and are exempt from {!reset_values}. *)

  val value : t -> int
end

(** {1 Registration}

    Registration is idempotent: the same [(name, labels)] pair always
    returns the same cell, so module-level handles in different
    compilation units converge on shared storage.  Names are sanitized
    to the Prometheus charset; label values may be arbitrary strings
    (escaped at exposition).  Registering an existing name with a
    different kind raises [Invalid_argument]. *)

val counter :
  ?help:string -> ?labels:(string * string) list -> ?permanent:bool ->
  string -> Counter.t
(** [permanent] marks a data-integrity counter that survives
    {!reset_values} (e.g. WAL record counts). *)

val gauge : ?help:string -> ?labels:(string * string) list -> string -> Gauge.t

val histogram :
  ?help:string -> ?labels:(string * string) list -> ?permanent:bool ->
  string -> Histogram.t

(** {1 Exposition} *)

type kind = K_counter | K_gauge | K_histogram

type value =
  | Counter_v of int
  | Gauge_v of float
  | Histogram_v of Histogram.snapshot

type sample = {
  name : string;
  help : string;
  kind : kind;
  labels : (string * string) list;
  value : value;
}

val samples : unit -> sample list
(** Registry cells (registration order) followed by collector output. *)

val render : sample list -> string
(** Prometheus text exposition of an arbitrary sample list: one
    [# HELP]/[# TYPE] pair per family, histogram cells expanded into
    cumulative [_bucket{le=...}] series plus [_sum] and [_count]. *)

val prometheus : unit -> string
(** [render (samples ())]. *)

val find_sample : ?labels:(string * string) list -> string -> sample option

(** {1 Collectors}

    Instance-scoped sources (a server's plan cache, its WAL manager)
    expose point-in-time samples by registering a collector; it runs at
    every {!samples}/{!prometheus} call.  Unregister on shutdown so
    sequential server instances don't leave stale families behind. *)

type collector_id

val register_collector : (unit -> sample list) -> collector_id
val unregister_collector : collector_id -> unit

(** {1 Reset} *)

val reset_values : unit -> unit
(** [STATS RESET]: zero every counter and histogram {e not} marked
    [~permanent] (and every summary).  Gauges and permanent cells —
    data-integrity markers — are untouched. *)

val clear : unit -> unit
(** Drop the whole registry, collectors included (tests only). *)

(** {1 Summaries}

    Count/sum/min/max aggregation keyed by name — the always-on store
    behind {!Obs.counter}/{!Obs.histogram}.  Mutex-protected (these
    sites are warm, not hot). *)

module Summary : sig
  type snap = { count : int; sum : float; min_v : float; max_v : float }

  val observe : string -> float -> unit

  val snapshot : unit -> (string * snap) list
  (** Sorted by name. *)

  val reset : unit -> unit
end
