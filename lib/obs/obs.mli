(** Structured tracing, metrics and rule profiling for the EDS pipeline.

    The subsystem is {e zero-cost when disabled}: the default state has
    no sink installed, and every entry point ({!span}, {!instant},
    {!counter}, …) is a single load-and-branch in that state — no event
    allocation, no clock read.  Installing a sink ({!set_sink}) turns
    the same call sites into event emitters.

    Sinks are pluggable: {!pretty_sink} renders an indented text log,
    {!trace_sink} writes Chrome trace-event JSON that loads directly in
    Perfetto or [chrome://tracing], and {!memory_sink} collects events
    in memory (used to attach a query's trace to its plan).

    Rule-level profiling ({!Profile}) is independent of the sinks: the
    rewrite engine aggregates per-rule attempts/fires/vetoes and
    condition time into the current profile when one is installed. *)

(** Minimal JSON values: encoder, parser and accessors.  Shared by the
    trace sink, the benchmark emitter and the tests (the toolchain has
    no JSON library). *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  val to_string : t -> string
  (** Compact single-line encoding; non-finite floats encode as [null]. *)

  val pp : Format.formatter -> t -> unit
  (** Indented multi-line encoding (still valid JSON). *)

  val parse : string -> (t, string) result

  val member : string -> t -> t option
  val to_int : t -> int option
  val to_float : t -> float option
  val to_str : t -> string option
end

type attrs = (string * Json.t) list

(** Trace events.  Timestamps and durations are in seconds (converted
    to microseconds by the Chrome sink). *)
type event =
  | Begin of { name : string; cat : string; ts : float; attrs : attrs }
  | End of { name : string; cat : string; ts : float; attrs : attrs }
  | Complete of { name : string; cat : string; ts : float; dur : float; attrs : attrs }
  | Instant of { name : string; cat : string; ts : float; attrs : attrs }
  | Counter of { name : string; ts : float; value : float }

val event_name : event -> string

type sink = {
  emit : event -> unit;
  flush : unit -> unit;
  close : unit -> unit;  (** finalize the output (e.g. close the JSON array) *)
}

val null : sink
(** Drops everything.  The default {e disabled} state is equivalent but
    cheaper (no sink installed at all — see {!set_sink}). *)

val pretty_sink : Format.formatter -> sink
val trace_sink : ?pid:int -> ?tid:int -> out_channel -> sink
(** Chrome trace-event format, one record per line inside a JSON array.
    [close] writes the closing bracket; viewers tolerate its absence,
    so a crashed run still loads. *)

val memory_sink : unit -> sink * (unit -> event list)
(** The second component returns the events collected so far, in order. *)

val tee : sink -> sink -> sink

val trace_event_json : ?pid:int -> ?tid:int -> event -> Json.t
(** One Chrome trace-event record.  An integer ["tid"] attribute on the
    event overrides the record's thread id (and is dropped from [args]):
    the parallel evaluator uses this to attribute per-worker counter
    shares to distinct trace rows. *)

(** {1 Global sink} *)

val set_sink : sink option -> unit
(** Install a sink ([None] disables tracing).  The previous sink, if
    any, is flushed and closed. *)

val current_sink : unit -> sink option
val enabled : unit -> bool
val flush : unit -> unit

val emit : event -> unit
(** No-op when disabled. *)

val span : ?cat:string -> ?attrs:attrs -> string -> (unit -> 'a) -> 'a
(** [span name f] brackets [f] in a Begin/End pair (balanced even when
    [f] raises).  When disabled it is exactly [f ()]. *)

val span_begin : ?cat:string -> ?attrs:attrs -> string -> unit
val span_end : ?cat:string -> ?attrs:attrs -> string -> unit
(** Unstructured variants for call sites that attach result attributes
    to the End event.  Callers must balance them. *)

val instant : ?cat:string -> ?attrs:attrs -> string -> unit
val complete : ?cat:string -> ?attrs:attrs -> string -> ts:float -> dur:float -> unit
(** A finished span emitted after the fact (Chrome ["X"] event). *)

val with_collector : (unit -> 'a) -> 'a * event list
(** Run the thunk while also recording every event it emits (the events
    still reach the installed sink).  Records nothing — and allocates
    nothing — when tracing is disabled. *)

(** {1 Counters and histograms}

    In-memory aggregations (count/sum/min/max/mean), {e always on}:
    they record into {!Metrics.Summary} whether or not a trace sink is
    installed, so measurements are never silently dropped when tracing
    is off.  {!counter} additionally emits a Chrome counter event when a
    sink is on, so the value graphs over time in Perfetto. *)

val counter : string -> float -> unit
val histogram : string -> float -> unit

val enable_metrics : unit -> unit
val disable_metrics : unit -> unit
(** No-ops, retained for API compatibility: the aggregation store no
    longer needs arming (see {!Metrics.set_enabled} for the global
    registry switch). *)

val reset_metrics : unit -> unit
val metrics : unit -> Json.t

(** {1 Clock} *)

val set_clock : (unit -> float) -> unit
(** Replace the wall clock (deterministic tests).  Defaults to
    [Unix.gettimeofday]. *)

val now : unit -> float

(** {1 Rule profiler} *)

module Profile : sig
  type cell = {
    mutable attempts : int;  (** (rule, node) pairs handed to the matcher *)
    mutable fires : int;
    mutable constraint_vetoes : int;
        (** substitutions whose constraints evaluated false *)
    mutable method_vetoes : int;  (** substitutions vetoed by a method *)
    mutable budget_aborts : int;  (** attempts cut short by the block limit *)
    mutable time_s : float;  (** cumulative match + condition time *)
  }

  type t

  val create : unit -> t

  val cell : t -> block:string -> rule:string -> cell
  (** Accounting cell for a (block, rule) pair, created on first use. *)

  val cells : t -> ((string * string) * cell) list
  (** In first-use order. *)

  val current : unit -> t option
  val set_current : t option -> unit
  (** The profile the rewrite engine aggregates into; [None] turns
      profiling off (the default). *)

  val never_fired : ?all_rules:(string * string) list -> t -> (string * string) list
  (** Dead-rule detection: attempted-but-unfired rules, plus any rule of
      [all_rules] that was never attempted at all. *)

  val pp : ?all_rules:(string * string) list -> Format.formatter -> t -> unit
  val to_json : ?all_rules:(string * string) list -> t -> Json.t
end
