(* Structured tracing and metrics for the whole pipeline (parse →
   translate → rewrite → evaluate).  The design goal is zero cost when
   disabled: the disabled state is the absence of a sink, so every
   instrumentation site is one load and one branch away from doing
   nothing — no event is allocated, no clock is read.  With a sink
   installed, events flow to pluggable backends: a pretty-text sink, a
   Chrome trace-event sink (openable in Perfetto / chrome://tracing) and
   an in-memory sink used to attach traces to query plans. *)

(* -- a minimal JSON codec ------------------------------------------------ *)

(* the toolchain has no JSON library; this covers what the trace sink,
   the benchmark emitter and the tests need *)
module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  let escape buf s =
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s

  (* JSON has no nan/infinity; a finite decimal form is required *)
  let float_repr f =
    if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then "null"
    else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
    else
      (* shortest representation that still round-trips — epoch-microsecond
         timestamps need more than the 12 significant digits that suffice
         for ordinary metric values *)
      let s = Printf.sprintf "%.12g" f in
      if float_of_string s = f then s else Printf.sprintf "%.17g" f

  let rec to_buffer buf = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_repr f)
    | Str s ->
      Buffer.add_char buf '"';
      escape buf s;
      Buffer.add_char buf '"'
    | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          to_buffer buf item)
        items;
      Buffer.add_char buf ']'
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          escape buf k;
          Buffer.add_string buf "\":";
          to_buffer buf v)
        fields;
      Buffer.add_char buf '}'

  let to_string j =
    let buf = Buffer.create 256 in
    to_buffer buf j;
    Buffer.contents buf

  let rec pp_indented ppf ~indent j =
    let pad n = String.make n ' ' in
    match j with
    | Obj fields when fields <> [] ->
      Fmt.pf ppf "{";
      List.iteri
        (fun i (k, v) ->
          Fmt.pf ppf "%s@\n%s%S: %a"
            (if i > 0 then "," else "")
            (pad (indent + 2)) k
            (pp_indented ~indent:(indent + 2))
            v)
        fields;
      Fmt.pf ppf "@\n%s}" (pad indent)
    | List items when items <> [] ->
      Fmt.pf ppf "[";
      List.iteri
        (fun i v ->
          Fmt.pf ppf "%s@\n%s%a"
            (if i > 0 then "," else "")
            (pad (indent + 2))
            (pp_indented ~indent:(indent + 2))
            v)
        items;
      Fmt.pf ppf "@\n%s]" (pad indent)
    | j -> Fmt.string ppf (to_string j)

  let pp ppf j = pp_indented ppf ~indent:0 j

  exception Parse_failure of string

  (* recursive-descent parser, sufficient for trace records and the
     benchmark snapshots *)
  let parse (s : string) : (t, string) result =
    let n = String.length s in
    let pos = ref 0 in
    let fail fmt = Fmt.kstr (fun m -> raise (Parse_failure m)) fmt in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some d when d = c -> advance ()
      | Some d -> fail "expected %c at offset %d, got %c" c !pos d
      | None -> fail "expected %c at offset %d, got end of input" c !pos
    in
    let literal word value =
      if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
      then begin
        pos := !pos + String.length word;
        value
      end
      else fail "bad literal at offset %d" !pos
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string"
        else
          let c = s.[!pos] in
          advance ();
          match c with
          | '"' -> Buffer.contents buf
          | '\\' -> (
            if !pos >= n then fail "unterminated escape";
            let e = s.[!pos] in
            advance ();
            match e with
            | '"' | '\\' | '/' ->
              Buffer.add_char buf e;
              go ()
            | 'b' ->
              Buffer.add_char buf '\b';
              go ()
            | 'f' ->
              Buffer.add_char buf '\012';
              go ()
            | 'n' ->
              Buffer.add_char buf '\n';
              go ()
            | 'r' ->
              Buffer.add_char buf '\r';
              go ()
            | 't' ->
              Buffer.add_char buf '\t';
              go ()
            | 'u' ->
              if !pos + 4 > n then fail "bad \\u escape";
              let hex = String.sub s !pos 4 in
              pos := !pos + 4;
              let code =
                try int_of_string ("0x" ^ hex)
                with _ -> fail "bad \\u escape %s" hex
              in
              (match Uchar.of_int code with
              | u -> Buffer.add_utf_8_uchar buf u
              | exception Invalid_argument _ -> Buffer.add_char buf '?');
              go ()
            | e -> fail "bad escape \\%c" e)
          | c ->
            Buffer.add_char buf c;
            go ()
      in
      go ()
    in
    let parse_number () =
      let start = !pos in
      let is_num_char c =
        match c with
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while !pos < n && is_num_char s.[!pos] do
        advance ()
      done;
      let text = String.sub s start (!pos - start) in
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> fail "bad number %s at offset %d" text start)
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '"' -> Str (parse_string ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
              advance ();
              items (v :: acc)
            | Some ']' ->
              advance ();
              List (List.rev (v :: acc))
            | _ -> fail "expected , or ] at offset %d" !pos
          in
          items []
        end
      | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
              advance ();
              fields ((k, v) :: acc)
            | Some '}' ->
              advance ();
              Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected , or } at offset %d" !pos
          in
          fields []
        end
      | Some _ -> parse_number ()
    in
    match
      let v = parse_value () in
      skip_ws ();
      if !pos <> n then fail "trailing garbage at offset %d" !pos;
      v
    with
    | v -> Ok v
    | exception Parse_failure msg -> Error msg

  let member key = function
    | Obj fields -> List.assoc_opt key fields
    | _ -> None

  let to_int = function Int i -> Some i | _ -> None
  let to_float = function Float f -> Some f | Int i -> Some (float_of_int i) | _ -> None
  let to_str = function Str s -> Some s | _ -> None
end

(* -- events and sinks ---------------------------------------------------- *)

type attrs = (string * Json.t) list

type event =
  | Begin of { name : string; cat : string; ts : float; attrs : attrs }
  | End of { name : string; cat : string; ts : float; attrs : attrs }
  | Complete of { name : string; cat : string; ts : float; dur : float; attrs : attrs }
  | Instant of { name : string; cat : string; ts : float; attrs : attrs }
  | Counter of { name : string; ts : float; value : float }

let event_name = function
  | Begin e -> e.name
  | End e -> e.name
  | Complete e -> e.name
  | Instant e -> e.name
  | Counter e -> e.name

type sink = {
  emit : event -> unit;
  flush : unit -> unit;
  close : unit -> unit;  (** finalize the output (e.g. close the JSON array) *)
}

let null = { emit = ignore; flush = ignore; close = ignore }

(* monotonic-enough wall clock; replaceable for deterministic tests *)
let clock : (unit -> float) ref = ref Unix.gettimeofday
let set_clock f = clock := f
let now () = !clock ()

(* -- the global sink ----------------------------------------------------- *)

let sink_ref : sink option ref = ref None

let set_sink s =
  (match !sink_ref with
  | Some old ->
    old.flush ();
    old.close ()
  | None -> ());
  sink_ref := s

let current_sink () = !sink_ref
let enabled () = Option.is_some !sink_ref
let flush () = match !sink_ref with Some s -> s.flush () | None -> ()

let emit e = match !sink_ref with Some s -> s.emit e | None -> ()

let span_begin ?(cat = "eds") ?(attrs = []) name =
  match !sink_ref with
  | None -> ()
  | Some s -> s.emit (Begin { name; cat; ts = now (); attrs })

let span_end ?(cat = "eds") ?(attrs = []) name =
  match !sink_ref with
  | None -> ()
  | Some s -> s.emit (End { name; cat; ts = now (); attrs })

let span ?(cat = "eds") ?(attrs = []) name f =
  match !sink_ref with
  | None -> f ()
  | Some s ->
    s.emit (Begin { name; cat; ts = now (); attrs });
    Fun.protect
      ~finally:(fun () -> s.emit (End { name; cat; ts = now (); attrs = [] }))
      f

let instant ?(cat = "eds") ?(attrs = []) name =
  match !sink_ref with
  | None -> ()
  | Some s -> s.emit (Instant { name; cat; ts = now (); attrs })

let complete ?(cat = "eds") ?(attrs = []) name ~ts ~dur =
  match !sink_ref with
  | None -> ()
  | Some s -> s.emit (Complete { name; cat; ts; dur; attrs })

(* -- counters and histograms --------------------------------------------- *)

(* The aggregation store lives in {!Metrics.Summary} and is always on:
   historically these were gated on a trace sink being installed (a
   tracing concern), which silently dropped measurements whenever
   tracing was off.  [counter] still emits a Chrome counter event when a
   sink is present, so values graph over time in Perfetto. *)

let enable_metrics () = ()
let disable_metrics () = ()
(* retained for API compatibility: the store no longer needs arming *)

let reset_metrics () = Metrics.Summary.reset ()
let observe = Metrics.Summary.observe

let counter name v =
  observe name v;
  match !sink_ref with
  | Some s -> s.emit (Counter { name; ts = now (); value = v })
  | None -> ()

let histogram name v = observe name v

let metrics () =
  let entries =
    List.map
      (fun (name, s) ->
        ( name,
          Json.Obj
            [
              ("count", Json.Int s.Metrics.Summary.count);
              ("sum", Json.Float s.Metrics.Summary.sum);
              ("min", Json.Float (if s.Metrics.Summary.count = 0 then 0. else s.Metrics.Summary.min_v));
              ("max", Json.Float (if s.Metrics.Summary.count = 0 then 0. else s.Metrics.Summary.max_v));
              ( "mean",
                Json.Float
                  (if s.Metrics.Summary.count = 0 then 0.
                   else s.Metrics.Summary.sum /. float_of_int s.Metrics.Summary.count) );
            ] )
      )
      (Metrics.Summary.snapshot ())
  in
  Json.Obj entries

(* -- sink implementations ------------------------------------------------ *)

let memory_sink () =
  let events = ref [] in
  ( {
      emit = (fun e -> events := e :: !events);
      flush = ignore;
      close = ignore;
    },
    fun () -> List.rev !events )

let tee a b =
  {
    emit =
      (fun e ->
        a.emit e;
        b.emit e);
    flush =
      (fun () ->
        a.flush ();
        b.flush ());
    close =
      (fun () ->
        a.close ();
        b.close ());
  }

let pp_attrs ppf = function
  | [] -> ()
  | attrs ->
    Fmt.pf ppf " {%a}"
      (Fmt.list ~sep:(Fmt.any ", ") (fun ppf (k, v) ->
           Fmt.pf ppf "%s=%s" k (Json.to_string v)))
      attrs

let pretty_sink ppf =
  let stack = ref [] in
  let depth () = List.length !stack in
  let pad () = String.make (2 * depth ()) ' ' in
  let emit = function
    | Begin { name; ts; attrs; _ } ->
      Fmt.pf ppf "%s> %s%a@." (pad ()) name pp_attrs attrs;
      stack := (name, ts) :: !stack
    | End { name; ts; attrs; _ } ->
      let dur =
        match !stack with
        | (_, t0) :: rest ->
          stack := rest;
          ts -. t0
        | [] -> 0.
      in
      Fmt.pf ppf "%s< %s (%.3fms)%a@." (pad ()) name (dur *. 1000.) pp_attrs attrs
    | Complete { name; dur; attrs; _ } ->
      Fmt.pf ppf "%s= %s (%.3fms)%a@." (pad ()) name (dur *. 1000.) pp_attrs attrs
    | Instant { name; attrs; _ } -> Fmt.pf ppf "%s* %s%a@." (pad ()) name pp_attrs attrs
    | Counter { name; value; _ } -> Fmt.pf ppf "%s# %s = %g@." (pad ()) name value
  in
  { emit; flush = (fun () -> Format.pp_print_flush ppf ()); close = ignore }

(* Chrome trace-event format (the JSON array variant, one record per
   line, so the file doubles as JSON-Lines after stripping the array
   punctuation).  Loadable in Perfetto and chrome://tracing; the closing
   bracket is written by [close], but both viewers tolerate a truncated
   array, so a crashed run still loads. *)
let trace_event_json ?(pid = 1) ?(tid = 1) (e : event) : Json.t =
  let us t = Json.Float (t *. 1e6) in
  (* a ["tid"] attribute overrides the record's thread id — how the
     parallel evaluator attributes per-worker counter shares to distinct
     trace rows without a per-domain sink *)
  let base name cat ph ts attrs rest =
    let tid, attrs =
      match List.assoc_opt "tid" attrs with
      | Some (Json.Int t) -> (t, List.remove_assoc "tid" attrs)
      | Some _ | None -> (tid, attrs)
    in
    let args = if attrs = [] then [] else [ ("args", Json.Obj attrs) ] in
    Json.Obj
      ([
         ("name", Json.Str name);
         ("cat", Json.Str (if cat = "" then "eds" else cat));
         ("ph", Json.Str ph);
         ("ts", us ts);
         ("pid", Json.Int pid);
         ("tid", Json.Int tid);
       ]
      @ rest @ args)
  in
  match e with
  | Begin { name; cat; ts; attrs } -> base name cat "B" ts attrs []
  | End { name; cat; ts; attrs } -> base name cat "E" ts attrs []
  | Complete { name; cat; ts; dur; attrs } ->
    base name cat "X" ts attrs [ ("dur", us dur) ]
  | Instant { name; cat; ts; attrs } ->
    base name cat "i" ts attrs [ ("s", Json.Str "t") ]
  | Counter { name; ts; value } ->
    base name "metric" "C" ts [] [ ("args", Json.Obj [ ("value", Json.Float value) ]) ]

let trace_sink ?(pid = 1) ?(tid = 1) oc =
  let first = ref true in
  let emit e =
    if !first then begin
      output_string oc "[\n";
      first := false
    end
    else output_string oc ",\n";
    output_string oc (Json.to_string (trace_event_json ~pid ~tid e))
  in
  let close () =
    if !first then output_string oc "[]\n"
    else output_string oc "\n]\n";
    Stdlib.flush oc
  in
  { emit; flush = (fun () -> Stdlib.flush oc); close }

(* run [f] while also recording every event; used to attach the trace of
   one query to its plan.  Nothing is recorded when tracing is off. *)
let with_collector f =
  match !sink_ref with
  | None -> (f (), [])
  | Some s ->
    let mem, events = memory_sink () in
    sink_ref := Some (tee s mem);
    let result =
      Fun.protect ~finally:(fun () -> sink_ref := Some s) f
    in
    (result, events ())

(* -- the rule profiler --------------------------------------------------- *)

module Profile = struct
  type cell = {
    mutable attempts : int;  (** (rule, node) pairs handed to the matcher *)
    mutable fires : int;
    mutable constraint_vetoes : int;
        (** substitutions whose constraints evaluated false *)
    mutable method_vetoes : int;  (** substitutions vetoed by a method *)
    mutable budget_aborts : int;  (** attempts cut short by the block limit *)
    mutable time_s : float;  (** cumulative match + condition time *)
  }

  type t = {
    cells : (string * string, cell) Hashtbl.t;
    mutable order : (string * string) list;  (** insertion order, reversed *)
  }

  let create () = { cells = Hashtbl.create 64; order = [] }

  let cell t ~block ~rule =
    let key = (block, rule) in
    match Hashtbl.find_opt t.cells key with
    | Some c -> c
    | None ->
      let c =
        {
          attempts = 0;
          fires = 0;
          constraint_vetoes = 0;
          method_vetoes = 0;
          budget_aborts = 0;
          time_s = 0.;
        }
      in
      Hashtbl.add t.cells key c;
      t.order <- key :: t.order;
      c

  let cells t =
    List.rev_map (fun key -> (key, Hashtbl.find t.cells key)) t.order

  (* the global profile consulted by the engine; [None] = profiling off *)
  let current_ref : t option ref = ref None
  let current () = !current_ref
  let set_current p = current_ref := p

  (* Rules that never fired.  [all_rules] (block, rule) pairs extend the
     verdict to rules that were never even attempted — the dead-rule
     detection the rule_analysis layer feeds on: a rule that is
     syntactically alive but never fires on the workload is a candidate
     for removal or reordering. *)
  let never_fired ?(all_rules = []) t =
    let attempted = cells t in
    let unfired_attempted =
      List.filter_map
        (fun (key, c) -> if c.fires = 0 then Some key else None)
        attempted
    in
    let never_attempted =
      List.filter (fun key -> not (Hashtbl.mem t.cells key)) all_rules
    in
    unfired_attempted @ never_attempted

  let pp ?(all_rules = []) ppf t =
    let entries =
      List.sort
        (fun (_, a) (_, b) -> compare b.time_s a.time_s)
        (cells t)
    in
    Fmt.pf ppf "%-16s %-26s %9s %6s %8s %7s %7s %9s@." "block" "rule" "attempts"
      "fires" "c-veto" "m-veto" "budget" "time(ms)";
    List.iter
      (fun ((block, rule), c) ->
        Fmt.pf ppf "%-16s %-26s %9d %6d %8d %7d %7d %9.3f@." block rule c.attempts
          c.fires c.constraint_vetoes c.method_vetoes c.budget_aborts
          (c.time_s *. 1000.))
      entries;
    match never_fired ~all_rules t with
    | [] -> Fmt.pf ppf "every attempted rule fired at least once@."
    | dead ->
      Fmt.pf ppf "never fired: %a@."
        (Fmt.list ~sep:(Fmt.any ", ") (fun ppf (b, r) -> Fmt.pf ppf "%s/%s" b r))
        dead

  let to_json ?(all_rules = []) t =
    let rules =
      List.map
        (fun ((block, rule), c) ->
          Json.Obj
            [
              ("block", Json.Str block);
              ("rule", Json.Str rule);
              ("attempts", Json.Int c.attempts);
              ("fires", Json.Int c.fires);
              ("constraint_vetoes", Json.Int c.constraint_vetoes);
              ("method_vetoes", Json.Int c.method_vetoes);
              ("budget_aborts", Json.Int c.budget_aborts);
              ("time_ms", Json.Float (c.time_s *. 1000.));
            ])
        (cells t)
    in
    Json.Obj
      [
        ("rules", Json.List rules);
        ( "never_fired",
          Json.List
            (List.map
               (fun (b, r) -> Json.Str (b ^ "/" ^ r))
               (never_fired ~all_rules t)) );
      ]
end
